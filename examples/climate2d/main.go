// Climate2d: an ATM-like multi-variable workload. Each variable has its
// own character (dense, sparse, huge-range); the example compresses each
// at several bounds and uses the adaptive interval scheme (Section IV-B)
// to tune the quantization width per variable.
package main

import (
	"fmt"
	"log"

	sz "repro"
	"repro/internal/datagen"
	"repro/internal/quant"
)

func main() {
	rows, cols := 225, 450
	variables := []string{"GENERIC", "FREQSH", "SNOWHLND", "CDNUMC"}

	fmt.Println("variable   eb_rel   m   intervals  CF      hit%    advice")
	fmt.Println("--------   ------   --  ---------  -----   -----   ------")
	for _, name := range variables {
		a := datagen.ATMVariant(name, rows, cols, 7)
		for _, rel := range []float64{1e-3, 1e-5} {
			// Start from the default m=8 and follow the adaptive advice
			// until the scheme settles (the paper's tuning loop).
			m := sz.DefaultIntervalBits
			for iter := 0; iter < 6; iter++ {
				_, stats, err := sz.Compress(a, sz.Params{
					Mode:         sz.BoundRel,
					RelBound:     rel,
					IntervalBits: m,
					OutputType:   sz.Float32,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-10s %.0e  %-3d %-10d %-7.2f %-7.1f %s\n",
					name, rel, m, (1<<m)-1, stats.CompressionFactor,
					stats.HitRate*100, stats.Advice)
				if stats.Advice == quant.Increase && m < quant.MaxBits {
					m += 2
					continue
				}
				if stats.Advice == quant.Decrease && m > quant.MinBits {
					m--
					continue
				}
				break
			}
		}
	}
	fmt.Println("\nNote CDNUMC (range ~1e-3..1e11): SZ respects the bound exactly even")
	fmt.Println("here — the case where ZFP's exponent alignment violates it (paper §V-A).")
}
