// Quickstart: compress a 2D scientific field with a value-range-relative
// error bound, verify the bound pointwise, and print the paper's quality
// metrics.
package main

import (
	"fmt"
	"log"
	"math"

	sz "repro"
	"repro/internal/datagen"
)

func main() {
	// A 225×450 climate-like field (1/8 of the paper's ATM dims).
	a := datagen.ATM(225, 450, 42)

	// Compress with the paper's reference setting: value-range-relative
	// error bound 1e-4, Lorenzo prediction (1 layer), 255 intervals.
	stream, stats, err := sz.Compress(a, sz.Params{
		Mode:       sz.BoundRel,
		RelBound:   1e-4,
		OutputType: sz.Float32, // source data is single-precision
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d values: %d -> %d bytes\n",
		stats.N, stats.OriginalBytes, stats.CompressedBytes)
	fmt.Printf("compression factor: %.2f (%.2f bits/value)\n",
		stats.CompressionFactor, stats.BitRate)
	fmt.Printf("prediction hit rate: %.2f%%\n", stats.HitRate*100)

	// Decompress and verify the guarantee: |x - x̃| <= bound, every point.
	restored, header, err := sz.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range a.Data {
		if e := math.Abs(a.Data[i] - restored.Data[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("error bound: %g, observed max error: %g (respected: %v)\n",
		header.AbsBound, worst, worst <= header.AbsBound)

	// The paper's quality metrics (Section II).
	sum, err := sz.Evaluate(a, restored)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RMSE %.3g  NRMSE %.3g  PSNR %.1f dB  Pearson %.8f\n",
		sum.RMSE, sum.NRMSE, sum.PSNR, sum.Pearson)
}
