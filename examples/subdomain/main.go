// Subdomain: blocked compression with random access. A 3D hurricane field
// is stored as a blocked container; the analysis then extracts only the
// few altitude slabs containing the vortex core without decompressing the
// rest — the post-analysis access pattern that motivates in-situ
// compression at scale (paper Section VI).
package main

import (
	"fmt"
	"log"

	sz "repro"
	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	a := datagen.Hurricane(50, 125, 125, 13)

	stream, stats, err := sz.CompressBlocked(a, sz.BlockedParams{
		Core: core.Params{
			Mode:       sz.BoundRel,
			RelBound:   1e-4,
			OutputType: sz.Float32,
		},
		SlabRows: 5, // 10 altitude slabs
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocked container: %d slabs, CF %.2f, hit rate %.1f%%\n",
		stats.Slabs, stats.CompressionFactor, stats.HitRate*100)

	ix, err := sz.InspectBlocked(stream)
	if err != nil {
		log.Fatal(err)
	}

	// Random access: pull only the lowest two altitude slabs (where the
	// vortex is strongest) and report their wind extrema.
	for i := 0; i < 2; i++ {
		slab, err := sz.DecompressSlab(stream, i)
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := ix.SlabBounds(i)
		min, max, _ := slab.Range()
		fmt.Printf("slab %d (levels %d-%d): u-wind in [%.1f, %.1f] m/s, %d values decompressed\n",
			i, lo, hi-1, min, max, slab.Len())
	}

	// Sanity: full parallel decompression respects the bound everywhere.
	full, err := sz.DecompressBlocked(stream, sz.BlockedParams{})
	if err != nil {
		log.Fatal(err)
	}
	sum, err := sz.Evaluate(a, full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full field: max error %.3g (bound %.3g), PSNR %.1f dB\n",
		sum.MaxAbsErr, stats.EffAbsBound, sum.PSNR)
}
