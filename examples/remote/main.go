// Example remote: compress through an szd daemon instead of in-process.
//
// The example starts a daemon on a loopback port, then uses the Go
// client's NewWriter/NewReader mirrors to push a synthetic hurricane
// field through /v1/compress and /v1/decompress, verifying that the
// remote stream is byte-identical to local compression. With a real
// deployment you would skip the server setup and point client.New at
// the fleet's address.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	sz "repro"
	"repro/internal/client"
	"repro/internal/codec"
	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An szd daemon on a loopback port (production: `szd -addr :7071`).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	daemon := server.New(server.Config{})
	go http.Serve(ln, daemon.Handler()) //nolint:errcheck — demo server
	addr := ln.Addr().String()
	fmt.Printf("szd listening on %s\n", addr)

	cl, err := client.New(addr)
	if err != nil {
		return err
	}
	ctx := context.Background()

	names, err := cl.Codecs(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("remote codecs: %v\n", names)

	// A small hurricane-shaped field as raw float32 bytes.
	a := datagen.Hurricane(12, 62, 62, 1)
	var raw bytes.Buffer
	if err := a.WriteRaw(&raw, grid.Float32); err != nil {
		return err
	}
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: a.Dims}

	// Remote compression: write raw samples, the compressed blocked
	// container streams back from the daemon.
	var remote bytes.Buffer
	zw, err := cl.NewWriter(ctx, &remote, "blocked", p)
	if err != nil {
		return err
	}
	if _, err := zw.Write(raw.Bytes()); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}

	// The wire adds nothing: remote bytes match local compression.
	var local bytes.Buffer
	lw, err := sz.NewBlockedWriter(&local, a.Dims, sz.BlockedParams{Core: p.Core()})
	if err != nil {
		return err
	}
	if _, err := lw.Write(raw.Bytes()); err != nil {
		return err
	}
	if err := lw.Close(); err != nil {
		return err
	}
	fmt.Printf("compressed %d -> %d bytes (CF %.1f), remote == local: %v\n",
		raw.Len(), remote.Len(), float64(raw.Len())/float64(remote.Len()),
		bytes.Equal(remote.Bytes(), local.Bytes()))

	// Remote inspect and decompress round out the surface.
	si, err := cl.Inspect(ctx, bytes.NewReader(remote.Bytes()), int64(remote.Len()))
	if err != nil {
		return err
	}
	fmt.Printf("inspect: codec=%s dims=%v slabs=%d\n", si.Codec, si.Dims, si.Slabs)

	zr, err := cl.NewReader(ctx, bytes.NewReader(remote.Bytes()), int64(remote.Len()), "", p)
	if err != nil {
		return err
	}
	restored, err := io.ReadAll(zr)
	if err != nil {
		return err
	}
	zr.Close()
	fmt.Printf("decompressed %d raw bytes back\n", len(restored))
	return nil
}
