// Hurricane3d: 3D compression with layer selection. The example measures
// the Table II hitting rates to pick the best prediction layer count for
// the data set, then traces a small rate-distortion table (the paper's
// Fig. 8 view) at the chosen setting.
package main

import (
	"fmt"
	"log"

	sz "repro"
	"repro/internal/datagen"
)

func main() {
	a := datagen.Hurricane(25, 125, 125, 11) // 1/4 of the paper's dims

	// Layer selection via the Table II probe: compare hitting rates using
	// original vs decompressed values for n = 1..4.
	fmt.Println("layers  R_PH(orig)  R_PH(decomp)")
	best, bestRate := 1, 0.0
	for n := 1; n <= 4; n++ {
		hr, err := sz.ProbeHitRates(a, sz.Params{
			Mode:     sz.BoundRel,
			RelBound: 1e-4,
			Layers:   n,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d %-11.1f %.1f\n", n, hr.Orig*100, hr.Decomp*100)
		if hr.Decomp > bestRate {
			best, bestRate = n, hr.Decomp
		}
	}
	fmt.Printf("selected n=%d (decompressed-value rate decides, paper §III-B)\n\n", best)

	// Rate-distortion at the selected layer count.
	fmt.Println("eb_rel   bits/value  CF      PSNR(dB)  max_rel_err")
	for _, rel := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6} {
		stream, stats, err := sz.Compress(a, sz.Params{
			Mode:       sz.BoundRel,
			RelBound:   rel,
			Layers:     best,
			OutputType: sz.Float32,
		})
		if err != nil {
			log.Fatal(err)
		}
		restored, _, err := sz.Decompress(stream)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := sz.Evaluate(a, restored)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.0e   %-11.2f %-7.2f %-9.1f %.2e\n",
			rel, stats.BitRate, stats.CompressionFactor, sum.PSNR, sum.MaxRelErr)
	}
}
