// Parallelio: off-line parallel compression of many files (Section VI).
// A worker pool compresses a batch of ATM-like arrays, reports strong
// scaling on this machine, and evaluates the Fig. 10 I/O model: when does
// compress-then-write beat writing raw data on a shared file system?
package main

import (
	"fmt"
	"log"
	"runtime"

	sz "repro"
	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/parallel"
)

func main() {
	// A batch of "files" (the paper's ATM archive has 11400 of them).
	const nFiles = 24
	arrays := make([]*sz.Array, nFiles)
	var totalBytes int
	for i := range arrays {
		arrays[i] = datagen.ATM(112, 225, int64(i))
		totalBytes += arrays[i].Len() * 4
	}
	p := sz.Params{Mode: sz.BoundRel, RelBound: 1e-4, OutputType: grid.Float32}

	fmt.Printf("workers  comp GB/s  speedup  efficiency\n")
	var base float64
	var cf float64
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		streams, dur, err := parallel.CompressAll(arrays, p, w)
		if err != nil {
			log.Fatal(err)
		}
		gbs := float64(totalBytes) / dur.Seconds() / 1e9
		if base == 0 {
			base = gbs
			var compBytes int
			for _, s := range streams {
				compBytes += len(s)
			}
			cf = float64(totalBytes) / float64(compBytes)
		}
		fmt.Printf("%-8d %-10.3f %-8.2f %.1f%%\n", w, gbs, gbs/base, gbs/base/float64(w)*100)
	}

	// Fig. 10: share of time per phase for a 2.5 TB archive on a cluster
	// file system, using the measured single-worker rate and CF.
	fmt.Printf("\nFig.10 model: CF=%.1f, per-process %.3f GB/s\n", cf, base)
	fmt.Println("procs  compress  write-compressed  write-initial")
	rows := parallel.Fig10(2.5e12, cf, base, parallel.BluesIOModel(),
		[]int{1, 4, 16, 32, 64, 256, 1024})
	for _, r := range rows {
		marker := ""
		if r.WriteInitialShare > 0.5 {
			marker = "  <- compression wins"
		}
		fmt.Printf("%-6d %-9.1f%% %-17.1f%% %.1f%%%s\n", r.Processes,
			r.CompressShare*100, r.WriteCompShare*100, r.WriteInitialShare*100, marker)
	}
}
