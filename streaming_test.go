package sz_test

import (
	"bytes"
	"io"
	"testing"

	sz "repro"
	"repro/internal/datagen"
	"repro/internal/grid"
)

// TestStreamingMatchesCompress: sz.NewWriter fed raw sample bytes must
// emit the byte-identical stream to sz.Compress for the same input and
// parameters, and sz.NewReader must reproduce sz.Decompress's
// reconstruction exactly.
func TestStreamingMatchesCompress(t *testing.T) {
	for _, dt := range []sz.DType{sz.Float32, sz.Float64} {
		a := datagen.ATM(36, 48, 11)
		if dt == sz.Float32 {
			for i := range a.Data {
				a.Data[i] = float64(float32(a.Data[i]))
			}
		}
		cp := sz.Params{Mode: sz.BoundRel, RelBound: 1e-4, OutputType: dt}
		want, _, err := sz.Compress(a, cp)
		if err != nil {
			t.Fatal(err)
		}

		var raw bytes.Buffer
		if err := a.WriteRaw(&raw, dt); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		w, err := sz.NewWriter(&got, sz.CodecParams{
			Mode: sz.BoundRel, RelBound: 1e-4, DType: dt, Dims: a.Dims,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(w, &raw); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("dtype %v: NewWriter stream (%d bytes) differs from Compress (%d bytes)",
				dt, got.Len(), len(want))
		}

		r, err := sz.NewReader(bytes.NewReader(want))
		if err != nil {
			t.Fatal(err)
		}
		back, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := sz.Decompress(want)
		if err != nil {
			t.Fatal(err)
		}
		var wantRaw bytes.Buffer
		if err := recon.WriteRaw(&wantRaw, dt); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, wantRaw.Bytes()) {
			t.Fatalf("dtype %v: NewReader output differs from Decompress", dt)
		}
	}
}

// TestBlockedStreamingMatchesOneShot: the public blocked streaming pair
// must agree bit-for-bit with CompressBlocked/DecompressBlocked.
func TestBlockedStreamingMatchesOneShot(t *testing.T) {
	a := datagen.Hurricane(20, 24, 24, 12)
	p := sz.BlockedParams{SlabRows: 6}
	p.Core.Mode = sz.BoundAbs
	p.Core.AbsBound = 1e-3
	p.Core.OutputType = sz.Float32
	want, _, err := sz.CompressBlocked(a, p)
	if err != nil {
		t.Fatal(err)
	}

	var raw bytes.Buffer
	if err := a.WriteRaw(&raw, sz.Float32); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	w, err := sz.NewBlockedWriter(&got, a.Dims, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(w, &raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("blocked streaming container differs from CompressBlocked")
	}

	full, err := sz.DecompressBlocked(want, sz.BlockedParams{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sz.NewBlockedReader(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	var wantRaw bytes.Buffer
	if err := full.WriteRaw(&wantRaw, grid.Float32); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, wantRaw.Bytes()) {
		t.Fatal("blocked streaming reconstruction differs from DecompressBlocked")
	}
}

// TestCodecRegistrySurface: the facade exposes the registry.
func TestCodecRegistrySurface(t *testing.T) {
	names := sz.Codecs()
	if len(names) != 8 {
		t.Fatalf("Codecs() = %v, want 8 entries", names)
	}
	a := datagen.APS(24, 24, 13)
	var buf bytes.Buffer
	w, err := sz.NewCodecWriter("pwrel", &buf, sz.CodecParams{
		RelBound: 1e-3, DType: sz.Float64, Dims: a.Dims,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRaw(w, sz.Float64); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, eps, err := sz.DecompressPointwiseRel(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if eps != 1e-3 || out.Len() != a.Len() {
		t.Fatalf("pwrel roundtrip: eps %v, %d values", eps, out.Len())
	}
}

// TestNewReaderHostilePrefixes: the facade's streaming decompressor must
// return errors — never panic — on empty input, truncations of the
// stream magic, and a valid magic followed by a truncated payload.
func TestNewReaderHostilePrefixes(t *testing.T) {
	a := datagen.ATM(24, 32, 7)
	stream, _, err := sz.Compress(a, sz.Params{Mode: sz.BoundAbs, AbsBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, 2, 3, 4, 5, 6, 7, len(stream) / 2, len(stream) - 1}
	for _, cut := range cuts {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("NewReader panicked on %d-byte truncation: %v", cut, r)
				}
			}()
			zr, err := sz.NewReader(bytes.NewReader(stream[:cut]))
			if err != nil {
				return // rejected at construction: correct
			}
			if _, err := io.ReadAll(zr); err == nil {
				t.Errorf("reading a %d-of-%d-byte truncation succeeded", cut, len(stream))
			}
		}()
	}
}
