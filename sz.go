// Package sz is a pure-Go implementation of the SZ-1.4 error-bounded lossy
// compressor for multidimensional scientific floating-point data, from
//
//	Tao, Di, Chen, Cappello: "Significantly Improving Lossy Compression for
//	Scientific Data Sets Based on Multidimensional Prediction and
//	Error-Controlled Quantization", IPDPS 2017.
//
// The compressor predicts every value from its already-reconstructed
// neighbours with an n-layer multidimensional predictor, quantizes the
// residual into 2^m−1 uniform intervals of width twice the error bound,
// Huffman-codes the quantization codes, and stores the rare unpredictable
// values via error-bounded IEEE truncation. The reconstruction error of
// every point is guaranteed within the user's bound.
//
// Basic use:
//
//	a, _ := sz.FromFloat32s(values, 1800, 3600)
//	stream, stats, err := sz.Compress(a, sz.Params{
//		Mode:     sz.BoundRel,
//		RelBound: 1e-4,
//	})
//	...
//	restored, header, err := sz.Decompress(stream)
//
// The internal packages additionally provide the baseline compressors the
// paper evaluates against (GZIP, FPZIP, ZFP, SZ-1.1, ISABELA), the metric
// suite, synthetic data generators, and the experiment harness that
// regenerates every table and figure of the paper (see cmd/szexp).
package sz

import (
	"io"

	"repro/internal/blocked"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/pwrel"
)

// Re-exported core types. Array is the row-major multidimensional
// container; Params/Stats/Header configure and describe compression runs.
type (
	// Array is a dense row-major d-dimensional float64 array.
	Array = grid.Array
	// DType identifies the source element precision.
	DType = grid.DType
	// Params configures compression (bound mode, layers, intervals).
	Params = core.Params
	// Stats reports what a compression run did.
	Stats = core.Stats
	// Header describes a compressed stream.
	Header = core.Header
	// BoundMode selects absolute/relative/combined error bounding.
	BoundMode = core.BoundMode
	// HitRates carries the Table II prediction-hitting-rate pair.
	HitRates = core.HitRates
	// Summary aggregates the paper's quality metrics for a data pair.
	Summary = metrics.Summary
)

// Bound modes.
const (
	// BoundAbs bounds the pointwise absolute error by Params.AbsBound.
	BoundAbs = core.BoundAbs
	// BoundRel bounds the pointwise error by Params.RelBound × value range.
	BoundRel = core.BoundRel
	// BoundAbsAndRel enforces the tighter of the two bounds.
	BoundAbsAndRel = core.BoundAbsAndRel
)

// Element types.
const (
	// Float32 marks single-precision source data.
	Float32 = grid.Float32
	// Float64 marks double-precision source data.
	Float64 = grid.Float64
)

// Defaults.
const (
	// DefaultLayers is the default predictor layer count (n = 1, Lorenzo).
	DefaultLayers = core.DefaultLayers
	// DefaultIntervalBits is the default quantization width (m = 8,
	// 255 intervals).
	DefaultIntervalBits = core.DefaultIntervalBits
)

// NewArray allocates a zero-filled array with the given dimensions
// (slowest-varying first, at most 4).
func NewArray(dims ...int) *Array { return grid.New(dims...) }

// FromData wraps an existing row-major float64 slice without copying.
func FromData(data []float64, dims ...int) (*Array, error) {
	return grid.FromData(data, dims...)
}

// FromFloat32s widens a float32 slice into a new Array. Pair it with
// Params.OutputType = Float32 so reconstructions stay single-precision.
func FromFloat32s(data []float32, dims ...int) (*Array, error) {
	return grid.FromFloat32s(data, dims...)
}

// Compress applies the SZ-1.4 pipeline to a and returns the compressed
// stream and run statistics. Every reconstructed value is guaranteed
// within the effective error bound (Stats.EffAbsBound).
func Compress(a *Array, p Params) ([]byte, *Stats, error) {
	return core.Compress(a, p)
}

// Decompress reconstructs the array from a stream produced by Compress.
func Decompress(stream []byte) (*Array, *Header, error) {
	return core.Decompress(stream)
}

// Inspect parses a stream header without decompressing the payload.
func Inspect(stream []byte) (*Header, error) {
	return core.Inspect(stream)
}

// ProbeHitRates measures the prediction hitting rate on original versus
// reconstructed values for the given parameters (the paper's Table II
// analysis, used to choose the best layer count for a data set).
func ProbeHitRates(a *Array, p Params) (HitRates, error) {
	return core.ProbeHitRates(a, p)
}

// Evaluate computes the paper's quality metrics (max error, RMSE, NRMSE,
// PSNR, Pearson correlation) between an original and its reconstruction.
func Evaluate(original, reconstructed *Array) (Summary, error) {
	if err := grid.SameShape(original, reconstructed); err != nil {
		return Summary{}, err
	}
	return metrics.Compare(original.Data, reconstructed.Data)
}

// Blocked-container API: the array is split into slabs along the slowest
// dimension, each compressed independently — parallel compression and
// decompression plus random access to individual slabs (the paper's
// Section VI in-situ pattern). See internal/blocked for format details.
type (
	// BlockedParams configures blocked compression.
	BlockedParams = blocked.Params
	// BlockedStats aggregates per-slab outcomes.
	BlockedStats = blocked.Stats
	// BlockedIndex describes a blocked container.
	BlockedIndex = blocked.Index
)

// CompressBlocked encodes a as a blocked container with per-slab streams.
func CompressBlocked(a *Array, p BlockedParams) ([]byte, *BlockedStats, error) {
	return blocked.Compress(a, p)
}

// DecompressBlocked reconstructs the full array from a blocked container;
// p.Workers bounds parallelism (0 = NumCPU).
func DecompressBlocked(stream []byte, p BlockedParams) (*Array, error) {
	return blocked.Decompress(stream, p)
}

// DecompressSlab decompresses only slab i of a blocked container.
func DecompressSlab(stream []byte, i int) (*Array, error) {
	return blocked.DecompressSlab(stream, i)
}

// InspectBlocked parses a blocked container's index without decompressing.
func InspectBlocked(stream []byte) (*BlockedIndex, error) {
	return blocked.Inspect(stream)
}

// Pointwise-relative mode (the PW_REL bound later SZ releases ship as an
// extension of this paper's compressor): every point satisfies
// |x − x̃| ≤ ε·|x|, with zeros and non-finite values exact. Implemented as
// a log-domain transform over the core pipeline; see internal/pwrel.
type (
	// PointwiseParams configures pointwise-relative compression.
	PointwiseParams = pwrel.Params
	// PointwiseStats reports pointwise-relative outcomes.
	PointwiseStats = pwrel.Stats
)

// CompressPointwiseRel encodes a with a per-point relative bound.
func CompressPointwiseRel(a *Array, p PointwiseParams) ([]byte, *PointwiseStats, error) {
	return pwrel.Compress(a, p)
}

// DecompressPointwiseRel inverts CompressPointwiseRel, returning the array
// and the bound ε recorded in the stream.
func DecompressPointwiseRel(stream []byte) (*Array, float64, error) {
	return pwrel.Decompress(stream)
}

// Streaming codec API: every compressor in the repository — sz14
// single-stream, the blocked container, pwrel, and the five baselines —
// is registered under a name in internal/codec and can speak
// io.Reader/io.Writer over raw little-endian sample bytes. The blocked
// container streams with memory bounded by O(slab); buffer-bound codecs
// fall back to an internal buffer but emit bytes identical to their
// one-shot form. See cmd/sz for the file-to-file CLI.
//
// The same registry is also served over the network: cmd/szd runs it as
// a daemon with streaming endpoints and admission control, and
// internal/client mirrors NewWriter/NewReader against a daemon (the CLI
// exposes this as `sz -remote`). Remote streams are byte-identical to
// local ones.
type (
	// CodecParams configures a registry codec (bounds, layout, knobs).
	CodecParams = codec.Params
	// BlockedWriter streams a blocked container out as rows arrive.
	BlockedWriter = blocked.Writer
	// BlockedReader decompresses a blocked container slab-at-a-time.
	BlockedReader = blocked.Reader
)

// Codecs lists the registered codec names.
func Codecs() []string { return codec.Names() }

// NewWriter returns a streaming single-stream SZ-1.4 compressor: raw
// little-endian p.DType samples written to it come out of w as exactly
// the stream Compress would produce for the same data and parameters
// (the stream is complete after Close). p.Dims is required.
func NewWriter(w io.Writer, p CodecParams) (io.WriteCloser, error) {
	return NewCodecWriter("sz14", w, p)
}

// NewReader returns a streaming single-stream SZ-1.4 decompressor
// producing raw little-endian sample bytes in the stream's element type.
func NewReader(r io.Reader) (io.ReadCloser, error) {
	return NewCodecReader("sz14", r, CodecParams{})
}

// NewCodecWriter opens a streaming compressor for any registered codec.
func NewCodecWriter(name string, w io.Writer, p CodecParams) (io.WriteCloser, error) {
	c, err := codec.Lookup(name)
	if err != nil {
		return nil, err
	}
	return c.NewWriter(w, p)
}

// NewCodecReader opens a streaming decompressor for any registered
// codec. Params are only consulted by codecs whose streams are not
// self-describing (gzip needs DType; Dims only for one-shot decode).
func NewCodecReader(name string, r io.Reader, p CodecParams) (io.ReadCloser, error) {
	c, err := codec.Lookup(name)
	if err != nil {
		return nil, err
	}
	return c.NewReader(r, p)
}

// NewBlockedWriter streams a blocked container to w for an array with
// the given dimensions; see blocked.NewWriter for the contract (the
// bound must be absolute — resolve relative bounds first).
func NewBlockedWriter(w io.Writer, dims []int, p BlockedParams) (*BlockedWriter, error) {
	return blocked.NewWriter(w, dims, p)
}

// NewBlockedReader streams a blocked container from r, decompressing
// slab-at-a-time with peak memory O(slab), not O(stream).
func NewBlockedReader(r io.Reader) (*BlockedReader, error) {
	return blocked.NewReader(r)
}
