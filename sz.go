// Package sz is a pure-Go implementation of the SZ-1.4 error-bounded lossy
// compressor for multidimensional scientific floating-point data, from
//
//	Tao, Di, Chen, Cappello: "Significantly Improving Lossy Compression for
//	Scientific Data Sets Based on Multidimensional Prediction and
//	Error-Controlled Quantization", IPDPS 2017.
//
// The compressor predicts every value from its already-reconstructed
// neighbours with an n-layer multidimensional predictor, quantizes the
// residual into 2^m−1 uniform intervals of width twice the error bound,
// Huffman-codes the quantization codes, and stores the rare unpredictable
// values via error-bounded IEEE truncation. The reconstruction error of
// every point is guaranteed within the user's bound.
//
// Basic use:
//
//	a, _ := sz.FromFloat32s(values, 1800, 3600)
//	stream, stats, err := sz.Compress(a, sz.Params{
//		Mode:     sz.BoundRel,
//		RelBound: 1e-4,
//	})
//	...
//	restored, header, err := sz.Decompress(stream)
//
// The internal packages additionally provide the baseline compressors the
// paper evaluates against (GZIP, FPZIP, ZFP, SZ-1.1, ISABELA), the metric
// suite, synthetic data generators, and the experiment harness that
// regenerates every table and figure of the paper (see cmd/szexp).
package sz

import (
	"repro/internal/blocked"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/pwrel"
)

// Re-exported core types. Array is the row-major multidimensional
// container; Params/Stats/Header configure and describe compression runs.
type (
	// Array is a dense row-major d-dimensional float64 array.
	Array = grid.Array
	// DType identifies the source element precision.
	DType = grid.DType
	// Params configures compression (bound mode, layers, intervals).
	Params = core.Params
	// Stats reports what a compression run did.
	Stats = core.Stats
	// Header describes a compressed stream.
	Header = core.Header
	// BoundMode selects absolute/relative/combined error bounding.
	BoundMode = core.BoundMode
	// HitRates carries the Table II prediction-hitting-rate pair.
	HitRates = core.HitRates
	// Summary aggregates the paper's quality metrics for a data pair.
	Summary = metrics.Summary
)

// Bound modes.
const (
	// BoundAbs bounds the pointwise absolute error by Params.AbsBound.
	BoundAbs = core.BoundAbs
	// BoundRel bounds the pointwise error by Params.RelBound × value range.
	BoundRel = core.BoundRel
	// BoundAbsAndRel enforces the tighter of the two bounds.
	BoundAbsAndRel = core.BoundAbsAndRel
)

// Element types.
const (
	// Float32 marks single-precision source data.
	Float32 = grid.Float32
	// Float64 marks double-precision source data.
	Float64 = grid.Float64
)

// Defaults.
const (
	// DefaultLayers is the default predictor layer count (n = 1, Lorenzo).
	DefaultLayers = core.DefaultLayers
	// DefaultIntervalBits is the default quantization width (m = 8,
	// 255 intervals).
	DefaultIntervalBits = core.DefaultIntervalBits
)

// NewArray allocates a zero-filled array with the given dimensions
// (slowest-varying first, at most 4).
func NewArray(dims ...int) *Array { return grid.New(dims...) }

// FromData wraps an existing row-major float64 slice without copying.
func FromData(data []float64, dims ...int) (*Array, error) {
	return grid.FromData(data, dims...)
}

// FromFloat32s widens a float32 slice into a new Array. Pair it with
// Params.OutputType = Float32 so reconstructions stay single-precision.
func FromFloat32s(data []float32, dims ...int) (*Array, error) {
	return grid.FromFloat32s(data, dims...)
}

// Compress applies the SZ-1.4 pipeline to a and returns the compressed
// stream and run statistics. Every reconstructed value is guaranteed
// within the effective error bound (Stats.EffAbsBound).
func Compress(a *Array, p Params) ([]byte, *Stats, error) {
	return core.Compress(a, p)
}

// Decompress reconstructs the array from a stream produced by Compress.
func Decompress(stream []byte) (*Array, *Header, error) {
	return core.Decompress(stream)
}

// Inspect parses a stream header without decompressing the payload.
func Inspect(stream []byte) (*Header, error) {
	return core.Inspect(stream)
}

// ProbeHitRates measures the prediction hitting rate on original versus
// reconstructed values for the given parameters (the paper's Table II
// analysis, used to choose the best layer count for a data set).
func ProbeHitRates(a *Array, p Params) (HitRates, error) {
	return core.ProbeHitRates(a, p)
}

// Evaluate computes the paper's quality metrics (max error, RMSE, NRMSE,
// PSNR, Pearson correlation) between an original and its reconstruction.
func Evaluate(original, reconstructed *Array) (Summary, error) {
	if err := grid.SameShape(original, reconstructed); err != nil {
		return Summary{}, err
	}
	return metrics.Compare(original.Data, reconstructed.Data)
}

// Blocked-container API: the array is split into slabs along the slowest
// dimension, each compressed independently — parallel compression and
// decompression plus random access to individual slabs (the paper's
// Section VI in-situ pattern). See internal/blocked for format details.
type (
	// BlockedParams configures blocked compression.
	BlockedParams = blocked.Params
	// BlockedStats aggregates per-slab outcomes.
	BlockedStats = blocked.Stats
	// BlockedIndex describes a blocked container.
	BlockedIndex = blocked.Index
)

// CompressBlocked encodes a as a blocked container with per-slab streams.
func CompressBlocked(a *Array, p BlockedParams) ([]byte, *BlockedStats, error) {
	return blocked.Compress(a, p)
}

// DecompressBlocked reconstructs the full array from a blocked container,
// using `workers` goroutines (0 = NumCPU).
func DecompressBlocked(stream []byte, workers int) (*Array, error) {
	return blocked.Decompress(stream, workers)
}

// DecompressSlab decompresses only slab i of a blocked container.
func DecompressSlab(stream []byte, i int) (*Array, error) {
	return blocked.DecompressSlab(stream, i)
}

// InspectBlocked parses a blocked container's index without decompressing.
func InspectBlocked(stream []byte) (*BlockedIndex, error) {
	return blocked.Inspect(stream)
}

// Pointwise-relative mode (the PW_REL bound later SZ releases ship as an
// extension of this paper's compressor): every point satisfies
// |x − x̃| ≤ ε·|x|, with zeros and non-finite values exact. Implemented as
// a log-domain transform over the core pipeline; see internal/pwrel.
type (
	// PointwiseParams configures pointwise-relative compression.
	PointwiseParams = pwrel.Params
	// PointwiseStats reports pointwise-relative outcomes.
	PointwiseStats = pwrel.Stats
)

// CompressPointwiseRel encodes a with a per-point relative bound.
func CompressPointwiseRel(a *Array, p PointwiseParams) ([]byte, *PointwiseStats, error) {
	return pwrel.Compress(a, p)
}

// DecompressPointwiseRel inverts CompressPointwiseRel, returning the array
// and the bound ε recorded in the stream.
func DecompressPointwiseRel(stream []byte) (*Array, float64, error) {
	return pwrel.Decompress(stream)
}
