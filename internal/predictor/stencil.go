package predictor

import (
	"fmt"
)

// Term is one weighted neighbour reference of a prediction stencil.
type Term struct {
	// Delta is the flat row-major index offset of the neighbour,
	// always negative (neighbours precede the predicted point).
	Delta int
	// Offsets holds the per-dimension offsets k (neighbour = x − k).
	Offsets []int
	// Coef is the stencil weight.
	Coef float64
}

// FlatStencil is a stencil in structure-of-arrays form for fused kernels:
// Coefs[i] weights the value at flat offset Deltas[i] from the predicted
// point. Terms appear in the exact order Predict accumulates them, so a
// kernel summing Coefs[i]·data[idx+Deltas[i]] left to right reproduces
// Predict bit for bit.
type FlatStencil struct {
	Deltas []int
	Coefs  []float64
}

// Flat returns the interior stencil in flat form. The returned slices
// are the predictor's own (predictors are shared and cached): callers
// must treat them as read-only.
func (p *Predictor) Flat() FlatStencil {
	return p.flat
}

func flatten(terms []Term) FlatStencil {
	fs := FlatStencil{
		Deltas: make([]int, len(terms)),
		Coefs:  make([]float64, len(terms)),
	}
	for i, t := range terms {
		fs.Deltas[i] = t.Delta
		fs.Coefs[i] = t.Coef
	}
	return fs
}

// buildStencil enumerates offsets 0 ≤ kj ≤ layers[j] (k ≠ 0) and computes
// the coefficient −∏ (−1)^{kj} C(layers[j], kj). Dimensions with layers[j]
// == 0 contribute only kj = 0 (C(0,0)·(−1)^0 = 1), i.e. they drop out.
func buildStencil(layers, strides []int) []Term {
	d := len(layers)
	size := 1
	for _, l := range layers {
		size *= l + 1
	}
	terms := make([]Term, 0, size-1)
	k := make([]int, d)
	for {
		// advance odometer
		j := d - 1
		for j >= 0 {
			k[j]++
			if k[j] <= layers[j] {
				break
			}
			k[j] = 0
			j--
		}
		if j < 0 {
			break
		}
		coef := -1.0
		delta := 0
		for m := 0; m < d; m++ {
			c := binomial(layers[m], k[m])
			if k[m]%2 == 1 {
				c = -c
			}
			coef *= c
			delta -= k[m] * strides[m]
		}
		terms = append(terms, Term{
			Delta:   delta,
			Offsets: append([]int(nil), k...),
			Coef:    coef,
		})
	}
	return terms
}

// binomial returns C(n, k) as a float64 (exact for n ≤ MaxLayers).
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	// The loop result is exact for small n but may carry float division
	// artifacts; round to nearest integer.
	if r >= 0 {
		return float64(int64(r + 0.5))
	}
	return float64(int64(r - 0.5))
}

// Coefficients returns the interior stencil for an n-layer, d-dimensional
// predictor as a map from offset vector (as a string key "k1,k2,…") to
// coefficient. Intended for inspection and tests against the paper's
// Table I.
func Coefficients(n, d int) (map[string]float64, error) {
	if n < 1 || n > MaxLayers {
		return nil, fmt.Errorf("predictor: layers %d out of range", n)
	}
	if d < 1 || d > 8 {
		return nil, fmt.Errorf("predictor: dims %d out of range", d)
	}
	layers := make([]int, d)
	strides := make([]int, d)
	for i := range layers {
		layers[i] = n
		strides[i] = 0 // unused for the map form
	}
	terms := buildStencil(layers, strides)
	out := make(map[string]float64, len(terms))
	for _, t := range terms {
		key := ""
		for i, k := range t.Offsets {
			if i > 0 {
				key += ","
			}
			key += fmt.Sprint(k)
		}
		out[key] = t.Coef
	}
	return out, nil
}
