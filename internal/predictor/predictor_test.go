package predictor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Table I of the paper: the 2D 1-layer (Lorenzo) and 2-layer formulas.
func TestTable1Layer1Coefficients(t *testing.T) {
	c, err := Coefficients(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"0,1": 1, // V(i0, j0-1)
		"1,0": 1, // V(i0-1, j0)
		"1,1": -1,
	}
	if len(c) != len(want) {
		t.Fatalf("got %d terms, want %d: %v", len(c), len(want), c)
	}
	for k, v := range want {
		if c[k] != v {
			t.Fatalf("coef[%s] = %v, want %v", k, c[k], v)
		}
	}
}

func TestTable1Layer2Coefficients(t *testing.T) {
	c, err := Coefficients(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"1,0": 2, "0,1": 2,
		"1,1": -4, "2,0": -1, "0,2": -1,
		"2,1": 2, "1,2": 2, "2,2": -1,
	}
	if len(c) != len(want) {
		t.Fatalf("got %d terms, want %d: %v", len(c), len(want), c)
	}
	for k, v := range want {
		if c[k] != v {
			t.Fatalf("coef[%s] = %v, want %v", k, c[k], v)
		}
	}
}

func TestTable1Layer3Coefficients(t *testing.T) {
	c, err := Coefficients(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"1,0": 3, "0,1": 3,
		"1,1": -9, "2,0": -3, "0,2": -3,
		"2,1": 9, "1,2": 9, "2,2": -9,
		"3,0": 1, "0,3": 1,
		"3,1": -3, "1,3": -3,
		"3,2": 3, "2,3": 3, "3,3": -1,
	}
	if len(c) != len(want) {
		t.Fatalf("got %d terms, want %d", len(c), len(want))
	}
	for k, v := range want {
		if c[k] != v {
			t.Fatalf("coef[%s] = %v, want %v", k, c[k], v)
		}
	}
}

func TestTable1Layer4Coefficients(t *testing.T) {
	c, err := Coefficients(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"1,0": 4, "0,1": 4, "1,1": -16,
		"2,0": -6, "0,2": -6,
		"2,1": 24, "1,2": 24, "2,2": -36,
		"3,0": 4, "0,3": 4,
		"3,1": -16, "1,3": -16,
		"3,2": 24, "2,3": 24, "3,3": -16,
		"4,0": -1, "0,4": -1,
		"4,1": 4, "1,4": 4,
		"4,2": -6, "2,4": -6,
		"4,3": 4, "3,4": 4, "4,4": -1,
	}
	if len(c) != len(want) {
		t.Fatalf("got %d terms, want %d", len(c), len(want))
	}
	for k, v := range want {
		if c[k] != v {
			t.Fatalf("coef[%s] = %v, want %v", k, c[k], v)
		}
	}
}

func TestStencilSize(t *testing.T) {
	// Interior stencil has (n+1)^d - 1 terms (paper: n(n+2) for d=2).
	for _, tc := range []struct{ n, d, want int }{
		{1, 2, 3}, {2, 2, 8}, {3, 2, 15}, {4, 2, 24},
		{1, 3, 7}, {2, 3, 26}, {1, 1, 1}, {3, 1, 3},
	} {
		dims := make([]int, tc.d)
		for i := range dims {
			dims[i] = 50
		}
		p, err := New(dims, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumTerms() != tc.want {
			t.Fatalf("n=%d d=%d: NumTerms=%d want %d", tc.n, tc.d, p.NumTerms(), tc.want)
		}
		// Paper's d=2 expression n(n+2):
		if tc.d == 2 && p.NumTerms() != tc.n*(tc.n+2) {
			t.Fatalf("n=%d: d=2 stencil should have n(n+2)=%d terms", tc.n, tc.n*(tc.n+2))
		}
	}
}

// polyEval evaluates a 2D polynomial with coefficient grid coefs[i][j] on x^i y^j.
func polyEval2(coefs [][]float64, x, y float64) float64 {
	var v float64
	for i := range coefs {
		for j := range coefs[i] {
			v += coefs[i][j] * math.Pow(x, float64(i)) * math.Pow(y, float64(j))
		}
	}
	return v
}

// TestPolynomialExactness2D verifies Theorem 1: the n-layer predictor is
// exact on polynomial data of total degree <= 2n-1.
func TestPolynomialExactness2D(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	M, N := 16, 16
	for n := 1; n <= 4; n++ {
		maxDeg := 2*n - 1
		coefs := make([][]float64, maxDeg+1)
		for i := range coefs {
			coefs[i] = make([]float64, maxDeg+1)
			for j := range coefs[i] {
				if i+j <= maxDeg {
					coefs[i][j] = rng.Float64()*2 - 1
				}
			}
		}
		data := make([]float64, M*N)
		for i := 0; i < M; i++ {
			for j := 0; j < N; j++ {
				data[i*N+j] = polyEval2(coefs, float64(i), float64(j))
			}
		}
		p, err := New([]int{M, N}, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := n; i < M; i++ {
			for j := n; j < N; j++ {
				idx := i*N + j
				pred := p.Predict(data, idx, []int{i, j})
				if math.Abs(pred-data[idx]) > 1e-6*math.Max(1, math.Abs(data[idx])) {
					t.Fatalf("n=%d at (%d,%d): pred %v != %v", n, i, j, pred, data[idx])
				}
			}
		}
	}
}

// TestPolynomialExactness3D checks the generic formula in 3D, n=1 and 2.
func TestPolynomialExactness3D(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	D0, D1, D2 := 8, 9, 10
	for n := 1; n <= 2; n++ {
		maxDeg := 2*n - 1
		// random polynomial in x,y,z of total degree <= maxDeg
		type mono struct {
			i, j, k int
			c       float64
		}
		var monos []mono
		for i := 0; i <= maxDeg; i++ {
			for j := 0; i+j <= maxDeg; j++ {
				for k := 0; i+j+k <= maxDeg; k++ {
					monos = append(monos, mono{i, j, k, rng.Float64()*2 - 1})
				}
			}
		}
		eval := func(x, y, z float64) float64 {
			var v float64
			for _, m := range monos {
				v += m.c * math.Pow(x, float64(m.i)) * math.Pow(y, float64(m.j)) * math.Pow(z, float64(m.k))
			}
			return v
		}
		data := make([]float64, D0*D1*D2)
		for x := 0; x < D0; x++ {
			for y := 0; y < D1; y++ {
				for z := 0; z < D2; z++ {
					data[(x*D1+y)*D2+z] = eval(float64(x), float64(y), float64(z))
				}
			}
		}
		p, err := New([]int{D0, D1, D2}, n)
		if err != nil {
			t.Fatal(err)
		}
		for x := n; x < D0; x++ {
			for y := n; y < D1; y++ {
				for z := n; z < D2; z++ {
					idx := (x*D1+y)*D2 + z
					pred := p.Predict(data, idx, []int{x, y, z})
					if math.Abs(pred-data[idx]) > 1e-6*math.Max(1, math.Abs(data[idx])) {
						t.Fatalf("n=%d at (%d,%d,%d): pred %v != %v", n, x, y, z, pred, data[idx])
					}
				}
			}
		}
	}
}

// TestPolynomialExactness1D: in 1D the n-layer predictor is exact for
// polynomials of degree <= n-1.
func TestPolynomialExactness1D(t *testing.T) {
	for n := 1; n <= 4; n++ {
		N := 32
		data := make([]float64, N)
		for i := range data {
			// degree n-1 polynomial
			v := 0.0
			for d := 0; d < n; d++ {
				v += float64(d+1) * math.Pow(float64(i), float64(d))
			}
			data[i] = v
		}
		p, err := New([]int{N}, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := n; i < N; i++ {
			pred := p.Predict(data, i, []int{i})
			if math.Abs(pred-data[i]) > 1e-6*math.Max(1, math.Abs(data[i])) {
				t.Fatalf("n=%d at %d: pred %v != %v", n, i, pred, data[i])
			}
		}
	}
}

func TestLorenzoEquals1Layer(t *testing.T) {
	// n=1 must match the explicit Lorenzo formula V(i,j-1)+V(i-1,j)-V(i-1,j-1).
	rng := rand.New(rand.NewSource(4))
	M, N := 10, 12
	data := make([]float64, M*N)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	p, err := New([]int{M, N}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < M; i++ {
		for j := 1; j < N; j++ {
			idx := i*N + j
			want := data[idx-1] + data[idx-N] - data[idx-N-1]
			got := p.Predict(data, idx, []int{i, j})
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("(%d,%d): got %v want %v", i, j, got, want)
			}
		}
	}
}

func TestBorderFirstPointIsZero(t *testing.T) {
	p, err := New([]int{5, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 25)
	for i := range data {
		data[i] = 7
	}
	if got := p.Predict(data, 0, []int{0, 0}); got != 0 {
		t.Fatalf("first point prediction = %v, want 0", got)
	}
}

func TestBorderReducesToAvailableLayers(t *testing.T) {
	// On the first row (i=0), prediction must use only the j dimension:
	// with n=2 and j>=2 it behaves as a 1D 2-layer (linear) extrapolation
	// 2V(j-1) - V(j-2).
	p, err := New([]int{4, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 40)
	for j := 0; j < 10; j++ {
		data[j] = 3*float64(j) + 1 // linear in j
	}
	for j := 2; j < 10; j++ {
		got := p.Predict(data, j, []int{0, j})
		if math.Abs(got-data[j]) > 1e-9 {
			t.Fatalf("border j=%d: got %v want %v", j, got, data[j])
		}
	}
	// At j=1 only one layer fits: constant extrapolation V(j-1).
	got := p.Predict(data, 1, []int{0, 1})
	if got != data[0] {
		t.Fatalf("border j=1: got %v want %v", got, data[0])
	}
}

func TestBorderStencilMemoization(t *testing.T) {
	p, err := New([]int{20, 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 400)
	coord := []int{1, 5}
	idx := 25
	a := p.Predict(data, idx, coord)
	b := p.Predict(data, idx, coord) // hits cache
	if a != b {
		t.Fatalf("memoized prediction differs: %v vs %v", a, b)
	}
	if len(p.borderCache) == 0 {
		t.Fatal("border cache unused")
	}
}

func TestCoefficientSumIsOne(t *testing.T) {
	// Stencil must reproduce constants: coefficients sum to 1.
	for d := 1; d <= 4; d++ {
		for n := 1; n <= 4; n++ {
			c, err := Coefficients(n, d)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, v := range c {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("d=%d n=%d: coefficient sum %v != 1", d, n, sum)
			}
		}
	}
}

func TestConstantsPredictedExactlyQuick(t *testing.T) {
	f := func(seed int64, nSel, dSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSel%4) + 1
		d := int(dSel%3) + 1
		dims := make([]int, d)
		size := 1
		for i := range dims {
			dims[i] = n + 2 + rng.Intn(4)
			size *= dims[i]
		}
		c := rng.NormFloat64() * 100
		data := make([]float64, size)
		for i := range data {
			data[i] = c
		}
		p, err := New(dims, n)
		if err != nil {
			return false
		}
		// check an interior point
		coord := make([]int, d)
		idx := 0
		stride := 1
		for i := d - 1; i >= 0; i-- {
			coord[i] = n
			idx += n * stride
			stride *= dims[i]
		}
		pred := p.Predict(data, idx, coord)
		return math.Abs(pred-c) < 1e-9*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{10}, 0); err == nil {
		t.Fatal("layers 0 should fail")
	}
	if _, err := New([]int{10}, MaxLayers+1); err == nil {
		t.Fatal("too many layers should fail")
	}
	if _, err := New(nil, 1); err == nil {
		t.Fatal("no dims should fail")
	}
	if _, err := New([]int{0}, 1); err == nil {
		t.Fatal("zero dim should fail")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{4, 0, 1}, {4, 1, 4}, {4, 2, 6}, {4, 3, 4}, {4, 4, 1},
		{8, 4, 70}, {5, 6, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Fatalf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestInteriorStencilIsCopy(t *testing.T) {
	p, _ := New([]int{10, 10}, 2)
	s := p.InteriorStencil()
	s[0].Coef = 999
	s[0].Offsets[0] = 999
	s2 := p.InteriorStencil()
	if s2[0].Coef == 999 || s2[0].Offsets[0] == 999 {
		t.Fatal("InteriorStencil leaks internal state")
	}
}

func BenchmarkPredictInterior2D(b *testing.B) {
	for _, n := range []int{1, 2, 3, 4} {
		b.Run(map[int]string{1: "layer1", 2: "layer2", 3: "layer3", 4: "layer4"}[n], func(b *testing.B) {
			M, N := 256, 256
			rng := rand.New(rand.NewSource(1))
			data := make([]float64, M*N)
			for i := range data {
				data[i] = rng.NormFloat64()
			}
			p, _ := New([]int{M, N}, n)
			coord := []int{M / 2, N / 2}
			idx := coord[0]*N + coord[1]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.Predict(data, idx, coord)
			}
		})
	}
}
