package predictor

import (
	"math/rand"
	"testing"
)

// TestFlatMatchesInterior asserts Flat() mirrors the interior stencil term
// for term, in the same order — the property the fused kernels rely on to
// stay bit-identical with Predict.
func TestFlatMatchesInterior(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		n    int
	}{
		{[]int{64}, 1},
		{[]int{16, 16}, 1},
		{[]int{16, 16}, 2},
		{[]int{8, 8, 8}, 1},
		{[]int{8, 8, 8}, 2},
		{[]int{6, 6, 6}, 3},
	} {
		p, err := New(tc.dims, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		fs := p.Flat()
		terms := p.InteriorStencil()
		if len(fs.Deltas) != len(terms) || len(fs.Coefs) != len(terms) {
			t.Fatalf("dims=%v n=%d: flat size %d/%d, want %d",
				tc.dims, tc.n, len(fs.Deltas), len(fs.Coefs), len(terms))
		}
		for i, term := range terms {
			if fs.Deltas[i] != term.Delta || fs.Coefs[i] != term.Coef {
				t.Fatalf("dims=%v n=%d: flat term %d = (%d, %g), want (%d, %g)",
					tc.dims, tc.n, i, fs.Deltas[i], fs.Coefs[i], term.Delta, term.Coef)
			}
		}
	}
}

// TestFlatSumMatchesPredict walks a random field and checks that the
// left-to-right flat accumulation reproduces Predict bit for bit on
// interior points.
func TestFlatSumMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := []int{7, 9, 11}
	p, err := New(dims, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 7*9*11)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
	}
	fs := p.Flat()
	for i := 2; i < 7; i++ {
		for j := 2; j < 9; j++ {
			for k := 2; k < 11; k++ {
				idx := (i*9+j)*11 + k
				coord := []int{i, j, k}
				var f float64
				for t := range fs.Deltas {
					f += fs.Coefs[t] * data[idx+fs.Deltas[t]]
				}
				if want := p.Predict(data, idx, coord); f != want {
					t.Fatalf("point %v: flat sum %g != Predict %g", coord, f, want)
				}
			}
		}
	}
}
