// Package predictor implements the multilayer multidimensional prediction
// model of the SZ-1.4 paper (Section III).
//
// For a d-dimensional data set and a chosen layer count n, the value at
// point x is predicted from the n-layer data subset S^n_x of already
// processed neighbours (Eq. 11):
//
//	f(x1,…,xd) = Σ_{0≤k1,…,kd≤n, k≠0}  −∏_{j=1}^{d} (−1)^{kj} C(n,kj) · V(x1−k1, …, xd−kd)
//
// Theorem 1 of the paper shows this is the value at x of the unique
// polynomial surface of total degree ≤ 2n−1 through the data subset T^n_x;
// consequently the predictor is exact on polynomial data of total degree
// ≤ 2n−1 (degree ≤ n−1 in the one-dimensional case). The n=1 case is the
// Lorenzo predictor of Ibarria et al.
//
// Border handling: the formula needs the full (n+1)^d−1 neighbourhood. For
// points near the low boundary the layer count is reduced per dimension to
// what is available (n_j = min(n, x_j)); dimensions with no processed
// neighbour drop out of the product entirely. The first point of the array
// has no neighbours and is predicted as 0. This mirrors how the original SZ
// falls back to lower-dimensional Lorenzo prediction at array borders while
// preserving the error-bound guarantee (the bound never depends on
// prediction quality, only on the quantizer).
//
// The stencil construction lives in stencil.go; fused fast-path kernels in
// internal/core consume stencils through the FlatStencil form, which
// preserves Predict's accumulation order so specialized loops stay
// bit-identical to the generic path.
package predictor

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// MaxLayers bounds the supported layer count. Beyond 8 layers the binomial
// weights exceed any practically useful setting (the paper evaluates 1–4).
const MaxLayers = 8

// Predictor evaluates the n-layer prediction for a fixed array geometry.
// Predictors are immutable after construction (the border-stencil memo is
// internally locked) and may be shared freely across goroutines — New
// returns one cached instance per (dims, layers) geometry.
type Predictor struct {
	dims    []int
	strides []int
	n       int
	// interior is the precomputed full stencil used when every dimension
	// has at least n processed layers available.
	interior []Term
	// flat is the interior stencil in kernel (structure-of-arrays) form,
	// built once so the per-slab hot path never re-flattens.
	flat FlatStencil
	// borderCache memoizes reduced stencils keyed by the per-dimension
	// effective layer vector. Guarded by borderMu: a cached Predictor is
	// shared by concurrent slab workers.
	borderMu    sync.RWMutex
	borderCache map[string][]Term
}

// predCache memoizes Predictors by geometry: a blocked container
// compresses hundreds of identically-shaped slabs, and rebuilding the
// stencil per slab was a top allocation site. The cache is cleared
// wholesale if an unusual workload accumulates too many geometries.
var predCache struct {
	sync.RWMutex
	m map[string]*Predictor
}

const maxCachedPredictors = 512

func predKey(dims []int, n int) string {
	var b [1 + MaxLayers + 4*binary.MaxVarintLen64]byte
	b[0] = byte(n)
	off := 1
	for _, d := range dims {
		off += binary.PutUvarint(b[off:], uint64(d))
	}
	return string(b[:off])
}

// New returns the Predictor for a row-major array with the given
// dimensions (slowest first) and layer count n in [1, MaxLayers].
// Instances are cached per geometry and shared.
func New(dims []int, n int) (*Predictor, error) {
	if n < 1 || n > MaxLayers {
		return nil, fmt.Errorf("predictor: layers %d out of range [1,%d]", n, MaxLayers)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("predictor: no dimensions")
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("predictor: non-positive dimension in %v", dims)
		}
	}
	key := predKey(dims, n)
	predCache.RLock()
	p := predCache.m[key]
	predCache.RUnlock()
	if p != nil {
		return p, nil
	}

	p = &Predictor{
		dims:        append([]int(nil), dims...),
		n:           n,
		borderCache: make(map[string][]Term),
	}
	p.strides = make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		p.strides[i] = s
		s *= dims[i]
	}
	layers := make([]int, len(dims))
	for i := range layers {
		layers[i] = n
	}
	p.interior = buildStencil(layers, p.strides)
	p.flat = flatten(p.interior)

	predCache.Lock()
	if predCache.m == nil || len(predCache.m) >= maxCachedPredictors {
		predCache.m = make(map[string]*Predictor)
	}
	if prev := predCache.m[key]; prev != nil {
		p = prev // lost a build race; converge on one shared instance
	} else {
		predCache.m[key] = p
	}
	predCache.Unlock()
	return p, nil
}

// Layers returns the configured layer count n.
func (p *Predictor) Layers() int { return p.n }

// NumTerms returns the interior stencil size, (n+1)^d − 1.
func (p *Predictor) NumTerms() int { return len(p.interior) }

// InteriorStencil returns a copy of the interior stencil terms.
func (p *Predictor) InteriorStencil() []Term {
	out := make([]Term, len(p.interior))
	copy(out, p.interior)
	for i := range out {
		out[i].Offsets = append([]int(nil), p.interior[i].Offsets...)
	}
	return out
}

// IsInterior reports whether the point at coord has the full n-layer
// neighbourhood available.
func (p *Predictor) IsInterior(coord []int) bool {
	for _, c := range coord {
		if c < p.n {
			return false
		}
	}
	return true
}

// Predict returns the predicted value for the point at the given coordinate
// and flat index, reading neighbours from data. data must contain the
// (already reconstructed) values of all preceding points in scan order.
func (p *Predictor) Predict(data []float64, idx int, coord []int) float64 {
	stencil := p.interior
	if !p.IsInterior(coord) {
		stencil = p.borderStencil(coord)
		if stencil == nil {
			return 0 // the very first point: no processed neighbours at all
		}
	}
	var f float64
	for i := range stencil {
		f += stencil[i].Coef * data[idx+stencil[i].Delta]
	}
	return f
}

// borderStencil returns the reduced stencil for a border point, memoized by
// the effective per-dimension layer vector.
func (p *Predictor) borderStencil(coord []int) []Term {
	layers := make([]int, len(coord))
	allZero := true
	var key [MaxLayers * 4]byte // up to 4 dims, layer fits a byte
	for j, c := range coord {
		l := p.n
		if c < l {
			l = c
		}
		layers[j] = l
		if l > 0 {
			allZero = false
		}
		key[j] = byte(l)
	}
	if allZero {
		return nil
	}
	k := string(key[:len(coord)])
	p.borderMu.RLock()
	s, ok := p.borderCache[k]
	p.borderMu.RUnlock()
	if ok {
		return s
	}
	s = buildStencil(layers, p.strides)
	p.borderMu.Lock()
	if prev, ok := p.borderCache[k]; ok {
		s = prev // lost a build race; keep one canonical stencil
	} else {
		p.borderCache[k] = s
	}
	p.borderMu.Unlock()
	return s
}
