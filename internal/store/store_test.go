package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

func digestOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the quick brown fox jumps over the lazy dog")
	d, err := s.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	if d != digestOf(payload) {
		t.Fatalf("digest %s, want %s", d, digestOf(payload))
	}
	h, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if !bytes.Equal(h.Bytes(), payload) {
		t.Fatalf("payload mismatch: %q", h.Bytes())
	}
	if h.Size() != int64(len(payload)) || h.Digest() != d {
		t.Fatalf("handle metadata wrong: size=%d digest=%s", h.Size(), h.Digest())
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != int64(len(payload)) || st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDigests(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Digests(); len(got) != 0 {
		t.Fatalf("empty store listed %v", got)
	}
	var want []string
	for _, p := range []string{"alpha", "bravo", "charlie"} {
		d, err := s.Put([]byte(p))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}
	sort.Strings(want)
	got := s.Digests()
	if len(got) != len(want) {
		t.Fatalf("listed %d digests, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("digest[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// Listing must not count as access: recency order (and hit/miss
	// counters) drive eviction, and a sweep that refreshed every entry
	// would defeat the LRU.
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("listing perturbed counters: %+v", st)
	}
}

func TestGetMiss(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(digestOf([]byte("absent"))); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err := s.Get("not-a-digest"); err == nil {
		t.Fatal("malformed digest must error")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCommitDigestMismatch(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.NewPut()
	if err != nil {
		t.Fatal(err)
	}
	p.Write([]byte("payload"))
	if _, err := p.Commit(digestOf([]byte("something else"))); err == nil {
		t.Fatal("mismatched expectation must fail")
	}
	mustBeEmptyDir(t, s.dir)
}

func TestPutDeduplicates(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("same bytes twice")
	d1, err := s.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digests differ: %s vs %s", d1, d2)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != int64(len(payload)) {
		t.Fatalf("duplicate put must not double-count: %+v", st)
	}
	mustHaveEntryCount(t, s.dir, 1)
}

// TestCrashMidWriteRecovery simulates dying between the temp-file write
// and the rename: recovery must remove the partial and keep the intact
// entries.
func TestCrashMidWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	good := []byte("survived the crash")
	d, err := s.Put(good)
	if err != nil {
		t.Fatal(err)
	}

	// An abandoned putter temp file (crash before Commit's rename).
	p, err := s.NewPut()
	if err != nil {
		t.Fatal(err)
	}
	p.Write([]byte("partial bytes never committed"))
	// ... process dies here: neither Commit nor Abort runs.

	// A renamed-but-torn file: valid name, garbage contents.
	torn := digestOf([]byte("torn"))
	if err := os.WriteFile(filepath.Join(dir, torn), []byte("not a header"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A truncated entry: valid header, missing payload tail.
	full := buildEntryFile(t, []byte("truncated payload body"))
	trunc := digestOf([]byte("truncated payload body"))
	if err := os.WriteFile(filepath.Join(dir, trunc), full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign file that is not an entry at all.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Bytes != int64(len(good)) {
		t.Fatalf("recovery kept wrong set: %+v", st)
	}
	h, err := s2.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if !bytes.Equal(h.Bytes(), good) {
		t.Fatal("surviving entry corrupted by recovery")
	}
	for _, name := range []string{torn, trunc} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("recovery left corrupt entry %s on disk", name)
		}
	}
	ents, _ := os.ReadDir(dir)
	for _, de := range ents {
		if filepath.Ext(de.Name()) == ".tmp" {
			t.Fatalf("recovery left temp file %s", de.Name())
		}
	}
}

func TestRecoveryRejectsMislabeledEntry(t *testing.T) {
	dir := t.TempDir()
	// A structurally valid entry filed under the wrong name: the header
	// digest disagrees with the filename, so trusting it would serve
	// wrong bytes for a digest. Recovery must drop it.
	body := buildEntryFile(t, []byte("content A"))
	wrongName := digestOf([]byte("content B"))
	if err := os.WriteFile(filepath.Join(dir, wrongName), body, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("mislabeled entry admitted: %+v", st)
	}
}

func TestEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	payloads := [][]byte{
		[]byte("aaaaaaaaaaaaaaaaaaaa"), // 20 bytes each
		[]byte("bbbbbbbbbbbbbbbbbbbb"),
		[]byte("cccccccccccccccccccc"),
	}
	s, err := Open(dir, 45) // room for two entries, not three
	if err != nil {
		t.Fatal(err)
	}
	var digests []string
	for _, p := range payloads[:2] {
		d, err := s.Put(p)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	// Touch the first so the second is the LRU victim.
	h, err := s.Get(digests[0])
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	d3, err := s.Put(payloads[2])
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(digests[1]) {
		t.Fatal("LRU victim survived eviction")
	}
	if !s.Contains(digests[0]) || !s.Contains(d3) {
		t.Fatal("wrong entry evicted")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestEvictionSkipsPinned: an entry being served concurrently cannot be
// unmapped out from under the reader; eviction passes over it and its
// resources go at the final Release.
func TestEvictionSkipsPinned(t *testing.T) {
	s, err := Open(t.TempDir(), 30)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 25)
	d, err := s.Put(big)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	// A second put overflows the budget while the first entry is pinned.
	if _, err := s.Put(bytes.Repeat([]byte("y"), 25)); err != nil {
		t.Fatal(err)
	}
	// The pinned bytes must still be readable even though the entry may
	// have been condemned.
	if !bytes.Equal(h.Bytes(), big) {
		t.Fatal("pinned entry unreadable after over-budget put")
	}
	h.Release()
}

func TestLRUOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	old, err := s.Put([]byte("old entry, twenty bys"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Put([]byte("fresh entry, twenty b"))
	if err != nil {
		t.Fatal(err)
	}
	// Make the on-disk recency unambiguous: "old" accessed long ago.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, old), past, past); err != nil {
		t.Fatal(err)
	}

	// Reopen with room for only one entry: the stale one must go.
	s2, err := Open(dir, 25)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Contains(old) {
		t.Fatal("stale entry survived budgeted reopen")
	}
	if !s2.Contains(fresh) {
		t.Fatal("fresh entry evicted on reopen")
	}
}

func TestConcurrentGetPutEvict(t *testing.T) {
	s, err := Open(t.TempDir(), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	payload := func(i, j int) []byte {
		return bytes.Repeat([]byte{byte(i), byte(j)}, 2048)
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var mine []string
			for j := 0; j < 40; j++ {
				p := payload(i, j%5)
				d, err := s.Put(p)
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				mine = append(mine, d)
				for _, d := range mine {
					h, err := s.Get(d)
					if err != nil {
						continue // evicted under pressure: fine
					}
					if len(h.Bytes()) != 4096 {
						t.Errorf("short read: %d", len(h.Bytes()))
					}
					_ = h.Bytes()[0]
					h.Release()
				}
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.Bytes > 64<<10 {
		t.Fatalf("budget exceeded at rest: %+v", st)
	}
}

func TestEntryHeaderRoundTrip(t *testing.T) {
	var d [sha256.Size]byte
	for i := range d {
		d[i] = byte(i * 7)
	}
	hdr := encodeEntryHeader(d, 123456789)
	got, n, err := ParseEntryHeader(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if got != d || n != 123456789 {
		t.Fatalf("round trip: %x %d", got, n)
	}
	// Each corrupted byte must be caught.
	for i := 0; i < len(hdr); i++ {
		bad := append([]byte(nil), hdr...)
		bad[i] ^= 0x5a
		if _, _, err := ParseEntryHeader(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
	if _, _, err := ParseEntryHeader(hdr[:HeaderLen-1]); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestValidDigest(t *testing.T) {
	ok := digestOf([]byte("x"))
	if !ValidDigest(ok) {
		t.Fatal("real digest rejected")
	}
	for _, bad := range []string{"", "abc", ok[:63], ok + "0",
		"../../../../etc/passwd0000000000000000000000000000000000000000000",
		"ABCDEF0000000000000000000000000000000000000000000000000000000000"} {
		if ValidDigest(bad) {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// buildEntryFile assembles a well-formed entry file image for payload.
func buildEntryFile(t *testing.T, payload []byte) []byte {
	t.Helper()
	sum := sha256.Sum256(payload)
	return append(encodeEntryHeader(sum, int64(len(payload))), payload...)
}

func mustBeEmptyDir(t *testing.T, dir string) {
	t.Helper()
	mustHaveEntryCount(t, dir, 0)
}

func mustHaveEntryCount(t *testing.T, dir string, n int) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("dir has %d entries, want %d: %v", len(ents), n, names)
	}
}

func BenchmarkGet(b *testing.B) {
	s, err := Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 1<<16) // 1 MiB
	d, err := s.Put(payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.Get(d)
		if err != nil {
			b.Fatal(err)
		}
		if len(h.Bytes()) != len(payload) {
			b.Fatal("short")
		}
		h.Release()
	}
}
