// Package store is szd's bounded on-disk content-addressed container
// store: finished compressed streams persisted under their payload
// SHA-256 so repeat readers become a read-mostly path. One entry is one
// file named by the digest, written crash-safely (tmp file in the same
// directory, fsync, rename) and served back as a zero-copy mmap — a
// stored container costs the daemon page cache, not heap, and an
// admission budget of ~nothing.
//
// # Entry layout
//
//	magic   "SZS1"            4 bytes
//	digest  SHA-256           32 bytes (of the payload)
//	length  uint64le          8 bytes (payload bytes)
//	crc     uint32le          4 bytes (IEEE, over the 44 bytes above)
//	payload                   length bytes
//
// The header is what the startup recovery scan trusts: a file whose
// name, header digest, and size disagree is removed as a torn write.
// Payload integrity is established once at Put time (the putter hashes
// what it writes and refuses to commit under the wrong digest), so Get
// never re-hashes.
//
// Eviction is LRU by access time against a byte budget. Hits touch the
// file's timestamps, so the recency order survives a restart; entries
// pinned by in-flight readers are skipped and reaped when released.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	magic = "SZS1"
	// HeaderLen is the fixed per-entry header length.
	HeaderLen = 4 + sha256.Size + 8 + 4
)

// ErrNotFound is returned by Get for a digest the store does not hold.
var ErrNotFound = errors.New("store: not found")

// ErrCorrupt marks an entry header that does not parse.
var ErrCorrupt = errors.New("store: corrupt entry")

// ErrDigestMismatch is returned by Putter.Commit when the payload
// hashed to something other than the digest the caller expected.
var ErrDigestMismatch = errors.New("store: payload digest mismatch")

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Bytes     int64 // payload bytes currently stored
	Entries   int64
	Hits      int64
	Misses    int64
	Puts      int64
	Evictions int64
}

// Store is the bounded content-addressed store. All methods are safe
// for concurrent use.
type Store struct {
	dir      string
	maxBytes int64 // <= 0 means unbounded

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	hits, misses, puts, evictions int64
}

// entry is one stored container. refs and dead are guarded by the
// store mutex; data is written once (under the mutex) and read-only
// afterwards.
type entry struct {
	digest string
	path   string
	size   int64 // payload bytes
	refs   int
	dead   bool   // evicted while pinned; unmap at last release
	data   []byte // whole-file mapping, nil until first Get
	mapped bool   // data came from mmap (vs heap fallback)
}

// Entry is a pinned handle on a stored payload. Bytes stays valid until
// Release; callers must Release exactly once.
type Entry struct {
	s *Store
	e *entry
}

// Bytes returns the payload as a read-only view of the mapped file.
func (h *Entry) Bytes() []byte { return h.e.data[HeaderLen : HeaderLen+int(h.e.size)] }

// Size returns the payload length.
func (h *Entry) Size() int64 { return h.e.size }

// Digest returns the payload's hex SHA-256.
func (h *Entry) Digest() string { return h.e.digest }

// Release unpins the entry; the mapping of an entry evicted while
// pinned is torn down at the last release.
func (h *Entry) Release() {
	s, e := h.s, h.e
	if s == nil {
		return
	}
	h.s, h.e = nil, nil
	s.mu.Lock()
	e.refs--
	reap := e.dead && e.refs == 0
	s.mu.Unlock()
	if reap {
		unmapEntry(e)
	}
}

// ValidDigest reports whether s is a well-formed entry name: 64
// lowercase hex characters.
func ValidDigest(s string) bool {
	if len(s) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseEntryHeader validates an entry header prefix and returns the
// payload digest and length. It is the recovery scan's trust anchor:
// anything that fails here is a torn or foreign file, not an entry.
func ParseEntryHeader(b []byte) (digest [sha256.Size]byte, length int64, err error) {
	if len(b) < HeaderLen {
		return digest, 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if string(b[:4]) != magic {
		return digest, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(b[:HeaderLen-4]) != binary.LittleEndian.Uint32(b[HeaderLen-4:HeaderLen]) {
		return digest, 0, fmt.Errorf("%w: header CRC mismatch", ErrCorrupt)
	}
	copy(digest[:], b[4:4+sha256.Size])
	n := binary.LittleEndian.Uint64(b[4+sha256.Size : HeaderLen-4])
	if n > 1<<62 {
		return digest, 0, fmt.Errorf("%w: absurd payload length", ErrCorrupt)
	}
	return digest, int64(n), nil
}

func encodeEntryHeader(digest [sha256.Size]byte, length int64) []byte {
	b := make([]byte, HeaderLen)
	copy(b, magic)
	copy(b[4:], digest[:])
	binary.LittleEndian.PutUint64(b[4+sha256.Size:], uint64(length))
	binary.LittleEndian.PutUint32(b[HeaderLen-4:], crc32.ChecksumIEEE(b[:HeaderLen-4]))
	return b
}

// Open loads (or creates) the store rooted at dir with the given byte
// budget (<= 0 means unbounded). Leftover temp files and entries whose
// header, name, or size disagree — the residue of a crash mid-write —
// are removed; surviving entries are ordered for eviction by their
// recorded access times.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[string]*list.Element{},
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type found struct {
		e     *entry
		atime time.Time
	}
	var scan []found
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		path := filepath.Join(dir, name)
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(path) // a write the crash interrupted before rename
			continue
		}
		e, atime, err := loadEntry(path, name)
		if err != nil {
			os.Remove(path)
			continue
		}
		scan = append(scan, found{e, atime})
	}
	// Oldest first, so pushing to the front leaves the most recently
	// used entry at the head and eviction starts with the stalest.
	sort.Slice(scan, func(i, j int) bool { return scan[i].atime.Before(scan[j].atime) })
	for _, f := range scan {
		s.items[f.e.digest] = s.ll.PushFront(f.e)
		s.bytes += f.e.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// loadEntry validates one directory entry during the recovery scan.
func loadEntry(path, name string) (*entry, time.Time, error) {
	if !ValidDigest(name) {
		return nil, time.Time{}, fmt.Errorf("%w: bad name", ErrCorrupt)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, time.Time{}, err
	}
	defer f.Close()
	// Stat before reading: our own header read refreshes the atime, and
	// capturing it afterwards would replace the real recency order with
	// the directory scan order.
	fi, err := f.Stat()
	if err != nil {
		return nil, time.Time{}, err
	}
	atime := atimeOf(fi)
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, time.Time{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	digest, length, err := ParseEntryHeader(hdr[:])
	if err != nil {
		return nil, time.Time{}, err
	}
	if hex.EncodeToString(digest[:]) != name {
		return nil, time.Time{}, fmt.Errorf("%w: name does not match header digest", ErrCorrupt)
	}
	if fi.Size() != HeaderLen+length {
		return nil, time.Time{}, fmt.Errorf("%w: size %d, header claims %d", ErrCorrupt, fi.Size(), HeaderLen+length)
	}
	return &entry{digest: name, path: path, size: length}, atime, nil
}

// Get pins and returns the entry for digest, mapping it on first use.
// The handle must be Released. A hit refreshes the entry's recency in
// memory and on disk (so LRU order survives restarts).
func (s *Store) Get(digest string) (*Entry, error) {
	if !ValidDigest(digest) {
		return nil, fmt.Errorf("store: bad digest %q", digest)
	}
	s.mu.Lock()
	el, ok := s.items[digest]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	e := el.Value.(*entry)
	if e.data == nil {
		if err := mapEntry(e); err != nil {
			// The file vanished or cannot map: drop the entry so the
			// index stays truthful.
			s.removeLocked(el, e)
			s.misses++
			s.mu.Unlock()
			return nil, fmt.Errorf("store: mapping %s: %w", digest, err)
		}
	}
	s.hits++
	s.ll.MoveToFront(el)
	e.refs++
	s.mu.Unlock()
	now := time.Now()
	os.Chtimes(e.path, now, now) // best-effort durable recency
	return &Entry{s: s, e: e}, nil
}

// Contains reports whether digest is resident without pinning it or
// counting a hit/miss.
func (s *Store) Contains(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[digest]
	return ok
}

// Digests returns the digests of every stored entry, sorted, without
// touching recency. It exists for anti-entropy sweeps: a repairer
// lists each node's inventory and re-replicates what is missing, so
// the listing must not perturb the LRU order the way Get does.
func (s *Store) Digests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.items))
	for d := range s.items {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Put stores payload under its own SHA-256 and returns the hex digest.
func (s *Store) Put(payload []byte) (string, error) {
	p, err := s.NewPut()
	if err != nil {
		return "", err
	}
	if _, err := p.Write(payload); err != nil {
		p.Abort()
		return "", err
	}
	return p.Commit("")
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Bytes:     s.bytes,
		Entries:   int64(s.ll.Len()),
		Hits:      s.hits,
		Misses:    s.misses,
		Puts:      s.puts,
		Evictions: s.evictions,
	}
}

// removeLocked drops an entry from the index and disk. Pinned entries
// are marked dead and unmapped at their last Release.
func (s *Store) removeLocked(el *list.Element, e *entry) {
	s.ll.Remove(el)
	delete(s.items, e.digest)
	s.bytes -= e.size
	os.Remove(e.path)
	if e.refs == 0 {
		unmapEntry(e)
	} else {
		e.dead = true
	}
}

// evictLocked trims least-recently-used entries until the byte budget
// holds. Entries pinned by in-flight readers cannot free memory now, so
// they are passed over rather than blocked on.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for el := s.ll.Back(); el != nil && s.bytes > s.maxBytes; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.refs == 0 {
			s.removeLocked(el, e)
			s.evictions++
		}
		el = prev
	}
}

// Putter streams one payload into the store. Writes go to a temp file
// in the store directory while a running SHA-256 accumulates; Commit
// fsyncs, stamps the header, and atomically renames the file into
// place. Either Commit or Abort must be called.
type Putter struct {
	s    *Store
	f    *os.File
	h    hash.Hash
	n    int64
	done bool
}

// NewPut opens a streaming put.
func (s *Store) NewPut() (*Putter, error) {
	f, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Reserve the header slot; it is rewritten with real contents at
	// Commit, and a crash before then leaves a .tmp the recovery scan
	// removes.
	if _, err := f.Write(make([]byte, HeaderLen)); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Putter{s: s, f: f, h: sha256.New()}, nil
}

func (p *Putter) Write(b []byte) (int, error) {
	if p.done {
		return 0, errors.New("store: write after Commit/Abort")
	}
	n, err := p.f.Write(b)
	p.h.Write(b[:n])
	p.n += int64(n)
	return n, err
}

// Abort discards the put and its temp file. Safe after Commit (no-op).
func (p *Putter) Abort() {
	if p.done {
		return
	}
	p.done = true
	p.f.Close()
	os.Remove(p.f.Name())
}

// Commit finalizes the entry and returns its hex digest. A non-empty
// expect pins the digest the payload must hash to (ErrDigestMismatch
// aborts the put otherwise) — callers receiving a digest over the wire
// use it so a corrupted body can never be filed under a clean name.
// Committing a digest that is already resident is a cheap no-op.
func (p *Putter) Commit(expect string) (string, error) {
	if p.done {
		return "", errors.New("store: commit after Commit/Abort")
	}
	p.done = true
	var sum [sha256.Size]byte
	p.h.Sum(sum[:0])
	digest := hex.EncodeToString(sum[:])
	if expect != "" && expect != digest {
		p.f.Close()
		os.Remove(p.f.Name())
		return "", fmt.Errorf("%w: payload is %s, expected %s", ErrDigestMismatch, digest, expect)
	}
	commit := func() error {
		if _, err := p.f.WriteAt(encodeEntryHeader(sum, p.n), 0); err != nil {
			return err
		}
		if err := p.f.Sync(); err != nil {
			return err
		}
		if err := p.f.Close(); err != nil {
			return err
		}
		path := filepath.Join(p.s.dir, digest)
		if err := os.Rename(p.f.Name(), path); err != nil {
			return err
		}
		syncDir(p.s.dir)
		return nil
	}

	s := p.s
	s.mu.Lock()
	if el, ok := s.items[digest]; ok {
		// Already stored: identical content by construction. Refresh
		// recency and drop the duplicate bytes.
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		p.f.Close()
		os.Remove(p.f.Name())
		return digest, nil
	}
	s.mu.Unlock()

	if err := commit(); err != nil {
		p.f.Close()
		os.Remove(p.f.Name())
		return "", fmt.Errorf("store: %w", err)
	}

	e := &entry{digest: digest, path: filepath.Join(s.dir, digest), size: p.n}
	s.mu.Lock()
	if el, ok := s.items[digest]; ok {
		// A concurrent put of the same content won the rename race; both
		// files were identical, so just adopt the resident entry.
		s.ll.MoveToFront(el)
	} else {
		s.items[digest] = s.ll.PushFront(e)
		s.bytes += e.size
		s.puts++
		s.evictLocked()
	}
	s.mu.Unlock()
	return digest, nil
}

// Size reports the put's payload bytes written so far.
func (p *Putter) Size() int64 { return p.n }

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
