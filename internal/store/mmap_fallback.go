//go:build !unix

package store

import (
	"fmt"
	"io"
	"os"
)

// mapEntry reads the whole entry file into heap on platforms without a
// usable mmap. The store still works; only the zero-copy win is lost.
func mapEntry(e *entry) error {
	f, err := os.Open(e.path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() != HeaderLen+e.size {
		return fmt.Errorf("%w: size changed under us", ErrCorrupt)
	}
	buf := make([]byte, fi.Size())
	if _, err := io.ReadFull(f, buf); err != nil {
		return err
	}
	e.data = buf
	return nil
}

func unmapEntry(e *entry) {
	e.data = nil
	e.mapped = false
}
