//go:build !linux

package store

import (
	"os"
	"time"
)

// atimeOf falls back to mtime where the platform's stat does not expose
// an access time through the portable interface. Get touches both, so
// eviction order is still recency order.
func atimeOf(fi os.FileInfo) time.Time {
	return fi.ModTime()
}
