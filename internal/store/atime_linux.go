//go:build linux

package store

import (
	"os"
	"syscall"
	"time"
)

// atimeOf extracts the access time Linux records, so Get's Chtimes
// touches feed eviction order across restarts.
func atimeOf(fi os.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Unix())
	}
	return fi.ModTime()
}
