package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseEntryHeader throws arbitrary bytes at the entry-header
// parser — the single routine the recovery scan trusts — and checks the
// invariant that anything it accepts is internally consistent (CRC and
// magic verified, length sane), and that acceptance is stable under
// re-encoding.
func FuzzParseEntryHeader(f *testing.F) {
	var d [sha256.Size]byte
	f.Add(encodeEntryHeader(d, 0))
	f.Add(encodeEntryHeader(d, 1<<40))
	f.Add([]byte(magic))
	f.Add(bytes.Repeat([]byte{0xff}, HeaderLen))
	short := encodeEntryHeader(d, 99)
	f.Add(short[:HeaderLen-1])
	f.Fuzz(func(t *testing.T, b []byte) {
		digest, length, err := ParseEntryHeader(b)
		if err != nil {
			return
		}
		if len(b) < HeaderLen {
			t.Fatal("accepted short header")
		}
		if string(b[:4]) != magic {
			t.Fatal("accepted wrong magic")
		}
		if crc32.ChecksumIEEE(b[:HeaderLen-4]) != binary.LittleEndian.Uint32(b[HeaderLen-4:HeaderLen]) {
			t.Fatal("accepted bad CRC")
		}
		if length < 0 || length > 1<<62 {
			t.Fatalf("accepted absurd length %d", length)
		}
		// Re-encoding what we parsed must reproduce the header bytes.
		if !bytes.Equal(encodeEntryHeader(digest, length), b[:HeaderLen]) {
			t.Fatal("parse/encode not inverse")
		}
	})
}

// FuzzRecoveryScan drops arbitrary bytes into a store directory under a
// valid entry name and asserts Open neither fails nor admits an entry
// whose contents do not check out.
func FuzzRecoveryScan(f *testing.F) {
	payload := []byte("fuzz recovery payload")
	sum := sha256.Sum256(payload)
	good := append(encodeEntryHeader(sum, int64(len(payload))), payload...)
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(good[:HeaderLen])
	f.Add([]byte{})
	f.Add([]byte("garbage that is not an entry at all"))
	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		// File the bytes under the digest they claim (or a fixed name if
		// they do not even parse) — both must be handled.
		name := "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
		if d, _, err := ParseEntryHeader(b); err == nil {
			name = hexDigest(d)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, 0)
		if err != nil {
			t.Fatalf("recovery scan must not fail on corrupt input: %v", err)
		}
		st := s.Stats()
		if st.Entries > 1 {
			t.Fatalf("phantom entries: %+v", st)
		}
		if st.Entries == 1 {
			// Whatever survived must serve exactly its payload bytes.
			h, err := s.Get(name)
			if err != nil {
				t.Fatalf("admitted entry unreadable: %v", err)
			}
			want := b[HeaderLen:]
			if !bytes.Equal(h.Bytes(), want) {
				t.Fatal("admitted entry serves wrong bytes")
			}
			h.Release()
		}
	})
}

func hexDigest(d [sha256.Size]byte) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 2*len(d))
	for i, b := range d {
		out[2*i] = hexdigits[b>>4]
		out[2*i+1] = hexdigits[b&0xf]
	}
	return string(out)
}
