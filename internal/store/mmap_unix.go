//go:build unix

package store

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// mapEntry maps the whole entry file read-only. The mapping is the
// serving path's only copy of the payload: responses slice straight
// into it, so a store hit pins page cache rather than heap.
func mapEntry(e *entry) error {
	f, err := os.Open(e.path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() != HeaderLen+e.size {
		return fmt.Errorf("%w: size changed under us", ErrCorrupt)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems cannot mmap; fall back to reading into heap
		// so the store still works, just without the zero-copy win.
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			return serr
		}
		buf := make([]byte, fi.Size())
		if _, rerr := io.ReadFull(f, buf); rerr != nil {
			return rerr
		}
		e.data = buf
		return nil
	}
	e.data = data
	e.mapped = true
	return nil
}

func unmapEntry(e *entry) {
	if e.mapped && e.data != nil {
		syscall.Munmap(e.data)
	}
	e.data = nil
	e.mapped = false
}
