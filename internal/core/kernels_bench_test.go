package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// BenchmarkCoreKernels compares each fused kernel against the generic scan
// on the same geometry, for both compression and decompression. The
// "generic" variants force the reference path, so the ratio is the kernel
// speedup in isolation (Huffman coding and stream assembly included).
func BenchmarkCoreKernels(b *testing.B) {
	cases := []struct {
		name   string
		dims   []int
		layers int
	}{
		{"1D-L1", []int{1 << 16}, 1},
		{"2D-L1", []int{256, 256}, 1},
		{"3D-L1", []int{40, 40, 40}, 1},
		{"2D-L2", []int{256, 256}, 2},
		{"3D-L2", []int{40, 40, 40}, 2},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(1))
		a := randArray(rng, tc.dims, true)
		p := Params{Mode: BoundRel, RelBound: 1e-4, Layers: tc.layers, OutputType: grid.Float32}
		stream, _, err := Compress(a, p)
		if err != nil {
			b.Fatal(err)
		}
		for _, variant := range []struct {
			name    string
			kernels bool
		}{{"kernel", true}, {"generic", false}} {
			b.Run(fmt.Sprintf("compress/%s/%s", tc.name, variant.name), func(b *testing.B) {
				b.SetBytes(int64(a.Len() * 4))
				for i := 0; i < b.N; i++ {
					if _, _, err := compress(nil, a, p, variant.kernels); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("decompress/%s/%s", tc.name, variant.name), func(b *testing.B) {
				b.SetBytes(int64(a.Len() * 4))
				for i := 0; i < b.N; i++ {
					if _, _, err := decompress(stream, variant.kernels, nil, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
