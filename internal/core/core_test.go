package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/quant"
)

// smooth2D builds a smooth 2D field with a few sharp features, the data
// character the paper targets.
func smooth2D(m, n int, seed int64) *grid.Array {
	rng := rand.New(rand.NewSource(seed))
	a := grid.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			x := float64(i) / float64(m)
			y := float64(j) / float64(n)
			v := math.Sin(4*math.Pi*x)*math.Cos(6*math.Pi*y) + 0.3*math.Sin(20*math.Pi*x*y)
			if rng.Float64() < 0.001 {
				v += rng.NormFloat64() * 5 // spikes
			}
			a.Set(v, i, j)
		}
	}
	return a
}

func smooth3D(d0, d1, d2 int) *grid.Array {
	a := grid.New(d0, d1, d2)
	for i := 0; i < d0; i++ {
		for j := 0; j < d1; j++ {
			for k := 0; k < d2; k++ {
				v := math.Sin(2*math.Pi*float64(i)/float64(d0)) *
					math.Cos(3*math.Pi*float64(j)/float64(d1)) *
					math.Sin(5*math.Pi*float64(k)/float64(d2))
				a.Set(v, i, j, k)
			}
		}
	}
	return a
}

func compressDecompress(t *testing.T, a *grid.Array, p Params) (*grid.Array, *Stats, *Header) {
	t.Helper()
	stream, st, err := Compress(a, p)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	out, h, err := Decompress(stream)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if err := grid.SameShape(a, out); err != nil {
		t.Fatalf("shape: %v", err)
	}
	return out, st, h
}

func assertBound(t *testing.T, a, out *grid.Array, eb float64) {
	t.Helper()
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > eb {
			t.Fatalf("bound violated at %d: |%g - %g| = %g > %g",
				i, a.Data[i], out.Data[i], math.Abs(a.Data[i]-out.Data[i]), eb)
		}
	}
}

func TestRoundTrip2DAbsBound(t *testing.T) {
	a := smooth2D(64, 80, 1)
	p := Params{Mode: BoundAbs, AbsBound: 1e-3}
	out, st, h := compressDecompress(t, a, p)
	assertBound(t, a, out, h.AbsBound)
	if st.HitRate < 0.5 {
		t.Fatalf("hit rate %v unexpectedly low for smooth data", st.HitRate)
	}
	if st.CompressionFactor < 2 {
		t.Fatalf("CF %v < 2 on smooth data at eb=1e-3", st.CompressionFactor)
	}
}

func TestRoundTrip2DRelBound(t *testing.T) {
	a := smooth2D(64, 80, 2)
	_, _, rng := a.Range()
	p := Params{Mode: BoundRel, RelBound: 1e-4}
	out, _, h := compressDecompress(t, a, p)
	wantEb := 1e-4 * rng
	if math.Abs(h.AbsBound-wantEb) > 1e-15*rng {
		t.Fatalf("effective bound %v, want %v", h.AbsBound, wantEb)
	}
	assertBound(t, a, out, h.AbsBound)
}

func TestRoundTrip3D(t *testing.T) {
	a := smooth3D(20, 24, 28)
	p := Params{Mode: BoundRel, RelBound: 1e-4, Layers: 1}
	out, st, h := compressDecompress(t, a, p)
	assertBound(t, a, out, h.AbsBound)
	if st.CompressionFactor < 4 {
		t.Fatalf("3D smooth data should compress well, CF=%v", st.CompressionFactor)
	}
}

func TestRoundTrip1D(t *testing.T) {
	n := 2000
	a := grid.New(n)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.01)
	}
	p := Params{Mode: BoundAbs, AbsBound: 1e-5}
	out, _, h := compressDecompress(t, a, p)
	assertBound(t, a, out, h.AbsBound)
}

func TestLayers2Through4(t *testing.T) {
	a := smooth2D(48, 48, 3)
	for n := 2; n <= 4; n++ {
		p := Params{Mode: BoundAbs, AbsBound: 1e-4, Layers: n}
		out, _, h := compressDecompress(t, a, p)
		assertBound(t, a, out, h.AbsBound)
		if h.Layers != n {
			t.Fatalf("header layers %d, want %d", h.Layers, n)
		}
	}
}

func TestIntervalBitsSweep(t *testing.T) {
	a := smooth2D(32, 32, 4)
	for _, m := range []int{2, 4, 8, 12, 16} {
		p := Params{Mode: BoundAbs, AbsBound: 1e-4, IntervalBits: m}
		out, st, h := compressDecompress(t, a, p)
		assertBound(t, a, out, h.AbsBound)
		if len(st.Histogram) != 1<<m {
			t.Fatalf("m=%d: histogram len %d", m, len(st.Histogram))
		}
	}
}

func TestFloat32Mode(t *testing.T) {
	a := smooth2D(40, 40, 5)
	// Make the data genuinely float32.
	for i := range a.Data {
		a.Data[i] = float64(float32(a.Data[i]))
	}
	p := Params{Mode: BoundAbs, AbsBound: 1e-4, OutputType: grid.Float32}
	out, st, h := compressDecompress(t, a, p)
	assertBound(t, a, out, h.AbsBound)
	// Every reconstruction must be exactly float32-representable.
	for i, v := range out.Data {
		if v != float64(float32(v)) {
			t.Fatalf("value %d not float32-representable: %v", i, v)
		}
	}
	if st.OriginalBytes != a.Len()*4 {
		t.Fatalf("float32 OriginalBytes = %d", st.OriginalBytes)
	}
}

func TestFloat32ModeWithFloat64Input(t *testing.T) {
	// Float64 data mislabelled as float32: the escape path must still hold
	// the bound relative to the original float64 values.
	rng := rand.New(rand.NewSource(6))
	a := grid.New(500)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64() * 1e10 // large magnitudes stress ulp
	}
	p := Params{Mode: BoundAbs, AbsBound: 1e-8, OutputType: grid.Float32}
	out, _, h := compressDecompress(t, a, p)
	assertBound(t, a, out, h.AbsBound)
}

func TestConstantData(t *testing.T) {
	a := grid.New(10, 10)
	for i := range a.Data {
		a.Data[i] = 42.5
	}
	p := Params{Mode: BoundRel, RelBound: 1e-4} // range 0 -> degenerate bound
	out, st, _ := compressDecompress(t, a, p)
	for i := range out.Data {
		if out.Data[i] != 42.5 {
			t.Fatalf("constant data must round-trip exactly, got %v", out.Data[i])
		}
	}
	if st.CompressionFactor < 10 {
		t.Fatalf("constant data CF = %v, want large", st.CompressionFactor)
	}
}

func TestDataWithNaNAndInf(t *testing.T) {
	a := smooth2D(16, 16, 7)
	a.Data[5] = math.NaN()
	a.Data[100] = math.Inf(1)
	a.Data[200] = math.Inf(-1)
	p := Params{Mode: BoundAbs, AbsBound: 1e-3}
	out, _, _ := compressDecompress(t, a, p)
	if !math.IsNaN(out.Data[5]) {
		t.Fatalf("NaN lost: %v", out.Data[5])
	}
	if !math.IsInf(out.Data[100], 1) || !math.IsInf(out.Data[200], -1) {
		t.Fatal("Inf lost")
	}
	for i := range a.Data {
		if i == 5 || i == 100 || i == 200 {
			continue
		}
		if math.Abs(a.Data[i]-out.Data[i]) > 1e-3 {
			t.Fatalf("bound violated near specials at %d", i)
		}
	}
}

func TestHugeDynamicRange(t *testing.T) {
	// The CDNUMC scenario: values spanning 1e-3..1e11. SZ must respect the
	// bound exactly (this is where ZFP fails, per the paper).
	rng := rand.New(rand.NewSource(8))
	a := grid.New(50, 50)
	for i := range a.Data {
		a.Data[i] = math.Pow(10, rng.Float64()*14-3) // 1e-3 .. 1e11
	}
	p := Params{Mode: BoundRel, RelBound: 1e-7}
	out, _, h := compressDecompress(t, a, p)
	assertBound(t, a, out, h.AbsBound)
}

func TestRandomNoiseStaysBounded(t *testing.T) {
	// Unpredictable white noise: poor compression but the bound must hold.
	rng := rand.New(rand.NewSource(9))
	a := grid.New(40, 40)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	p := Params{Mode: BoundAbs, AbsBound: 1e-9}
	out, st, h := compressDecompress(t, a, p)
	assertBound(t, a, out, h.AbsBound)
	if st.HitRate > 0.9 {
		t.Fatalf("white noise at tight bound should not hit 90%%: %v", st.HitRate)
	}
}

func TestErrorBoundPropertyQuick(t *testing.T) {
	// The paper's core guarantee under random shapes, bounds, layers, and m.
	f := func(seed int64, layerSel, mSel, dimSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := int(layerSel%4) + 1
		m := []int{2, 4, 8, 12}[int(mSel)%4]
		var a *grid.Array
		switch dimSel % 3 {
		case 0:
			a = grid.New(rng.Intn(200) + 2)
		case 1:
			a = grid.New(rng.Intn(20)+2, rng.Intn(20)+2)
		default:
			a = grid.New(rng.Intn(8)+2, rng.Intn(8)+2, rng.Intn(8)+2)
		}
		for i := range a.Data {
			// Mix of smooth and noisy.
			a.Data[i] = math.Sin(float64(i)*0.1) + rng.NormFloat64()*0.1
		}
		eb := math.Pow(10, -float64(rng.Intn(6)+1))
		p := Params{Mode: BoundAbs, AbsBound: eb, Layers: layers, IntervalBits: m}
		stream, _, err := Compress(a, p)
		if err != nil {
			return false
		}
		out, h, err := Decompress(stream)
		if err != nil {
			return false
		}
		for i := range a.Data {
			if math.Abs(a.Data[i]-out.Data[i]) > h.AbsBound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicStreams(t *testing.T) {
	a := smooth2D(32, 32, 10)
	p := Params{Mode: BoundAbs, AbsBound: 1e-4}
	s1, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if string(s1) != string(s2) {
		t.Fatal("compression is not deterministic")
	}
}

func TestIdempotentRecompression(t *testing.T) {
	// Compressing the decompressed output again with the same bound must
	// keep total error within 2×eb of the original (triangle inequality),
	// and the second round-trip should be near-lossless relative to the
	// first (every point already sits on an interval centre).
	a := smooth2D(32, 32, 11)
	p := Params{Mode: BoundAbs, AbsBound: 1e-4}
	out1, _, _ := compressDecompress(t, a, p)
	out2, _, _ := compressDecompress(t, out1, p)
	for i := range a.Data {
		if math.Abs(out2.Data[i]-out1.Data[i]) > 1e-4 {
			t.Fatalf("second pass bound violated at %d", i)
		}
	}
}

func TestInspect(t *testing.T) {
	a := smooth2D(16, 24, 12)
	p := Params{Mode: BoundAbs, AbsBound: 1e-3, Layers: 2, IntervalBits: 10}
	stream, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dims[0] != 16 || h.Dims[1] != 24 || h.Layers != 2 || h.IntervalBits != 10 {
		t.Fatalf("Inspect header: %+v", h)
	}
	if h.N() != 16*24 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestCorruptionDetected(t *testing.T) {
	a := smooth2D(16, 16, 13)
	stream, _, err := Compress(a, Params{Mode: BoundAbs, AbsBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit.
	bad := append([]byte(nil), stream...)
	bad[len(bad)/2] ^= 0x40
	if _, _, err := Decompress(bad); err == nil {
		t.Fatal("corrupted stream decompressed without error")
	}
	// Truncate.
	if _, _, err := Decompress(stream[:len(stream)-10]); err == nil {
		t.Fatal("truncated stream decompressed without error")
	}
	// Bad magic.
	bad = append([]byte(nil), stream...)
	bad[0] = 'X'
	if _, _, err := Decompress(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Empty.
	if _, _, err := Decompress(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestParamValidation(t *testing.T) {
	a := grid.New(4, 4)
	bad := []Params{
		{Mode: BoundAbs, AbsBound: 0},
		{Mode: BoundAbs, AbsBound: -1},
		{Mode: BoundAbs, AbsBound: math.Inf(1)},
		{Mode: BoundRel, RelBound: 0},
		{Mode: BoundRel, RelBound: 1.5},
		{Mode: BoundAbs, AbsBound: 1, Layers: 9},
		{Mode: BoundAbs, AbsBound: 1, IntervalBits: 1},
		{Mode: BoundAbs, AbsBound: 1, IntervalBits: 20},
		{Mode: BoundAbs, AbsBound: 1, HitRateThreshold: 2},
		{Mode: BoundAbsAndRel, AbsBound: 1},
		{Mode: BoundMode(9), AbsBound: 1},
		{Mode: BoundAbs, AbsBound: 1, OutputType: grid.DType(7)},
	}
	for i, p := range bad {
		if _, _, err := Compress(a, p); err == nil {
			t.Fatalf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestAbsAndRelTakesMin(t *testing.T) {
	a := smooth2D(16, 16, 14) // range ~2.6
	p := Params{Mode: BoundAbsAndRel, AbsBound: 1e-2, RelBound: 1e-6}
	_, _, h := compressDecompress(t, a, p)
	_, _, rng := a.Range()
	want := math.Min(1e-2, 1e-6*rng)
	if h.AbsBound != want {
		t.Fatalf("bound %v, want min %v", h.AbsBound, want)
	}
}

func TestStatsConsistency(t *testing.T) {
	a := smooth2D(32, 32, 15)
	stream, st, err := Compress(a, Params{Mode: BoundAbs, AbsBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressedBytes != len(stream) {
		t.Fatalf("CompressedBytes %d != len %d", st.CompressedBytes, len(stream))
	}
	var histTotal uint64
	for _, f := range st.Histogram {
		histTotal += f
	}
	if histTotal != uint64(st.N) {
		t.Fatalf("histogram total %d != N %d", histTotal, st.N)
	}
	if st.Predictable+int(st.Histogram[quant.UnpredictableCode]) != st.N {
		t.Fatal("Predictable + escapes != N")
	}
	wantCF := float64(st.OriginalBytes) / float64(st.CompressedBytes)
	if math.Abs(st.CompressionFactor-wantCF) > 1e-12 {
		t.Fatal("CF inconsistent")
	}
	if math.Abs(st.BitRate*st.CompressionFactor-64) > 1e-9 {
		t.Fatalf("BR*CF = %v, want 64 for float64", st.BitRate*st.CompressionFactor)
	}
}

func TestTighterBoundLowerCF(t *testing.T) {
	a := smooth2D(64, 64, 16)
	var prevCF = math.Inf(1)
	for _, eb := range []float64{1e-2, 1e-4, 1e-6, 1e-8} {
		_, st, err := Compress(a, Params{Mode: BoundAbs, AbsBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		if st.CompressionFactor > prevCF*1.05 {
			t.Fatalf("CF should not grow as the bound tightens: eb=%g CF=%v prev=%v",
				eb, st.CompressionFactor, prevCF)
		}
		prevCF = st.CompressionFactor
	}
}

func TestPSNRImprovesWithTighterBound(t *testing.T) {
	a := smooth2D(64, 64, 17)
	var prevPSNR float64
	for _, eb := range []float64{1e-2, 1e-3, 1e-4} {
		out, _, _ := compressDecompress(t, a, Params{Mode: BoundAbs, AbsBound: eb})
		psnr := metrics.PSNR(a.Data, out.Data)
		if psnr < prevPSNR {
			t.Fatalf("PSNR decreased with tighter bound: %v -> %v", prevPSNR, psnr)
		}
		prevPSNR = psnr
	}
}

func TestProbeHitRates(t *testing.T) {
	a := smooth2D(64, 64, 18)
	hr, err := ProbeHitRates(a, Params{Mode: BoundRel, RelBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if hr.Orig <= 0 || hr.Orig > 1 || hr.Decomp <= 0 || hr.Decomp > 1 {
		t.Fatalf("rates out of range: %+v", hr)
	}
}

func TestProbeHitRatesDecompDegradation(t *testing.T) {
	// Table II's key phenomenon: with many layers, the decomp rate falls
	// well below the orig rate because quantization noise feeds back.
	a := smooth2D(96, 96, 19)
	p := Params{Mode: BoundRel, RelBound: 1e-4, Layers: 4}
	hr, err := ProbeHitRates(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Decomp > hr.Orig {
		t.Fatalf("decomp rate %v should not exceed orig rate %v at 4 layers", hr.Decomp, hr.Orig)
	}
}

func TestProbeValidation(t *testing.T) {
	a := grid.New(4)
	if _, err := ProbeHitRates(a, Params{Mode: BoundAbs, AbsBound: -1}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestBoundModeString(t *testing.T) {
	for _, m := range []BoundMode{BoundAbs, BoundRel, BoundAbsAndRel, BoundMode(9)} {
		if m.String() == "" {
			t.Fatal("empty BoundMode string")
		}
	}
}

func TestSingleElement(t *testing.T) {
	a := grid.New(1)
	a.Data[0] = 3.14159
	out, _, h := compressDecompress(t, a, Params{Mode: BoundAbs, AbsBound: 1e-6})
	if math.Abs(out.Data[0]-a.Data[0]) > h.AbsBound {
		t.Fatal("single element bound violated")
	}
}

func TestTinyArrays(t *testing.T) {
	for _, dims := range [][]int{{1, 1}, {2, 1}, {1, 5}, {2, 2, 2}, {1, 1, 1}} {
		a := grid.New(dims...)
		for i := range a.Data {
			a.Data[i] = float64(i) * 1.1
		}
		out, _, h := compressDecompress(t, a, Params{Mode: BoundAbs, AbsBound: 1e-4})
		assertBound(t, a, out, h.AbsBound)
	}
}

func TestStatsStreamComposition(t *testing.T) {
	a := smooth2D(48, 48, 21)
	stream, st, err := Compress(a, Params{Mode: BoundAbs, AbsBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	payloadBits := st.TableBits + st.CodeBits + st.OutlierBits
	h, err := Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	if payloadBits != h.PayloadBits {
		t.Fatalf("component bits %d != payload bits %d", payloadBits, h.PayloadBits)
	}
	if st.FixedWidthCodeBits != uint64(st.N)*8 {
		t.Fatalf("FixedWidthCodeBits = %d", st.FixedWidthCodeBits)
	}
	// Variable-length encoding must beat fixed-width on peaked
	// distributions (the AEQVE claim).
	if st.CodeBits >= st.FixedWidthCodeBits {
		t.Fatalf("VLE (%d bits) did not beat fixed-width (%d bits)",
			st.CodeBits, st.FixedWidthCodeBits)
	}
}
