package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/binrep"
	"repro/internal/bitstream"
	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/predictor"
	"repro/internal/quant"
	"repro/internal/scratch"
)

// Compress applies the SZ-1.4 pipeline (Algorithm 1 of the paper) to a and
// returns the compressed stream plus per-run statistics.
//
// The per-point predict+quantize scan runs through a fused kernel
// specialized for the array geometry when one exists (see kernels.go);
// kernels are byte-for-byte equivalent to the generic scan. All working
// memory (code array, reconstruction, histogram, Huffman arenas,
// bitstream buffers) is drawn from and returned to the scratch pools, so
// steady-state compression allocates only the returned stream and Stats.
func Compress(a *grid.Array, p Params) ([]byte, *Stats, error) {
	return compress(nil, a, p, true)
}

// CompressAppend is Compress appending the stream to dst (which may be a
// recycled buffer); the returned slice reuses dst's storage when it fits.
func CompressAppend(dst []byte, a *grid.Array, p Params) ([]byte, *Stats, error) {
	return compress(dst, a, p, true)
}

// compress is the implementation behind Compress; kernels=false forces the
// generic reference scan (used by the equivalence tests and benchmarks).
func compress(dst []byte, a *grid.Array, p Params, kernels bool) ([]byte, *Stats, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	_, _, valueRange := a.Range()
	eb := p.effectiveBound(valueRange)

	q, err := quant.New(eb, p.IntervalBits)
	if err != nil {
		return nil, nil, err
	}
	pred, err := predictor.New(a.Dims, p.Layers)
	if err != nil {
		return nil, nil, err
	}

	n := a.Len()
	codes := scratch.Ints(n)     // every entry assigned by the scan
	recon := scratch.Float64s(n) // every entry assigned by the scan
	hist := scratch.Uint64sZeroed(q.NumCodes())
	defer func() {
		scratch.PutInts(codes)
		scratch.PutFloat64s(recon)
		scratch.PutUint64s(hist)
	}()

	// Outlier values are discovered during the scan but serialized after
	// the Huffman-coded symbols, so they collect in a side stream. The
	// hint covers a few percent of outliers at 33 bits each; heavier
	// escape traffic grows the buffer, which recycles under its grown
	// size class.
	outW := bitstream.NewWriterBytes(scratch.Bytes(n/8 + 64))
	outEnc := binrep.NewEncoder(outW, eb)

	scan := &compressState{
		qparams: newQParams(q, p.OutputType),
		data:    a.Data,
		recon:   recon,
		codes:   codes,
		hist:    hist,
		outW:    outW,
		outEnc:  outEnc,
	}
	scan.scan(a.Dims, p.Layers, pred, kernels)
	numOutliers := scan.numOutliers

	// Variable-length encoding of the quantization codes (Section IV-A).
	freqs := hist
	cb, err := huffman.New(freqs)
	if err != nil {
		return nil, nil, fmt.Errorf("core: building codebook: %w", err)
	}
	defer cb.Release()
	// One byte per element covers compression factors down to 4x for
	// float32 (8x for float64) without growing; the scratch class
	// rounding gives the buffer further headroom on top.
	payload := bitstream.NewWriterBytes(scratch.Bytes(n + 64))
	defer func() {
		scratch.PutBytes(payload.Bytes())
		scratch.PutBytes(outW.Bytes())
	}()
	cb.Serialize(payload)
	tableBits := payload.Len()
	if err := cb.Encode(payload, codes); err != nil {
		return nil, nil, fmt.Errorf("core: encoding codes: %w", err)
	}
	codeBits := payload.Len() - tableBits
	payload.AppendStream(outW.Bytes(), outW.Len())

	h := &Header{
		Version:      Version,
		DType:        p.OutputType,
		Dims:         a.Dims,
		AbsBound:     eb,
		Layers:       p.Layers,
		IntervalBits: p.IntervalBits,
		NumOutliers:  numOutliers,
		PayloadBits:  payload.Len(),
	}
	stream := appendHeader(dst, h)
	stream = append(stream, payload.Bytes()...)
	crc := crc32.ChecksumIEEE(stream[len(dst):])
	stream = binary.LittleEndian.AppendUint32(stream, crc)

	st := &Stats{
		N:               n,
		Predictable:     n - numOutliers,
		HitRate:         float64(n-numOutliers) / float64(n),
		EffAbsBound:     eb,
		CompressedBytes: len(stream) - len(dst),
		OriginalBytes:   n * p.OutputType.Size(),
		Histogram:       append([]uint64(nil), hist...),

		TableBits:          tableBits,
		CodeBits:           codeBits,
		OutlierBits:        outW.Len(),
		FixedWidthCodeBits: uint64(n) * uint64(p.IntervalBits),
	}
	st.CompressionFactor = float64(st.OriginalBytes) / float64(st.CompressedBytes)
	st.BitRate = float64(st.CompressedBytes) * 8 / float64(n)
	if advice, _, err := quant.Adapt(hist, p.IntervalBits, p.HitRateThreshold); err == nil {
		st.Advice = advice
	}
	return stream, st, nil
}

// encodeOutlier stores an unpredictable value and returns the exact value
// the decompressor will reconstruct for it.
//
// float64 sources use error-bounded IEEE truncation (binrep). float32
// sources store the raw 32-bit pattern — lossless for genuinely
// single-precision inputs — with a 64-bit escape for float64 inputs
// mislabelled as float32 whose narrowing would exceed the bound.
func encodeOutlier(enc *binrep.Encoder, w *bitstream.Writer, x, eb float64, t grid.DType) float64 {
	if t != grid.Float32 {
		return enc.Encode(x)
	}
	x32 := float64(float32(x))
	if math.Abs(x32-x) <= eb || math.IsNaN(x) {
		// One 33-bit write: the 0 escape flag followed by the raw pattern
		// (identical bits to writing them separately).
		w.WriteBits(uint64(math.Float32bits(float32(x))), 33)
		return x32
	}
	w.WriteBits(1, 1)
	w.WriteBits(math.Float64bits(x), 64)
	return x
}

// decodeOutlier mirrors encodeOutlier.
func decodeOutlier(dec *binrep.Decoder, r *bitstream.Reader, t grid.DType) (float64, error) {
	if t != grid.Float32 {
		return dec.Decode()
	}
	esc, err := r.ReadBits(1)
	if err != nil {
		return 0, err
	}
	if esc == 0 {
		bits, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return float64(math.Float32frombits(uint32(bits))), nil
	}
	bits, err := r.ReadBits(64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// advanceCoord increments a row-major coordinate odometer (last dimension
// fastest).
func advanceCoord(coord, dims []int) {
	for j := len(coord) - 1; j >= 0; j-- {
		coord[j]++
		if coord[j] < dims[j] {
			return
		}
		coord[j] = 0
	}
}

// appendHeader serializes h.
func appendHeader(b []byte, h *Header) []byte {
	b = append(b, Magic...)
	b = append(b, h.Version, byte(h.DType), byte(len(h.Dims)))
	for _, d := range h.Dims {
		b = binary.AppendUvarint(b, uint64(d))
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(h.AbsBound))
	b = append(b, byte(h.Layers), byte(h.IntervalBits))
	b = binary.AppendUvarint(b, uint64(h.NumOutliers))
	b = binary.AppendUvarint(b, h.PayloadBits)
	return b
}
