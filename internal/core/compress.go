package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"repro/internal/binrep"
	"repro/internal/bitstream"
	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/predictor"
	"repro/internal/quant"
	"repro/internal/scratch"
)

// Compress applies the SZ-1.4 pipeline (Algorithm 1 of the paper) to a and
// returns the compressed stream plus per-run statistics.
//
// The per-point predict+quantize scan runs through a fused kernel
// specialized for the array geometry when one exists (see kernels.go);
// kernels are byte-for-byte equivalent to the generic scan. All working
// memory (code array, reconstruction, histogram, Huffman arenas,
// bitstream buffers) is drawn from and returned to the scratch pools, so
// steady-state compression allocates only the returned stream and Stats.
func Compress(a *grid.Array, p Params) ([]byte, *Stats, error) {
	return compress(nil, a, p, true)
}

// CompressAppend is Compress appending the stream to dst (which may be a
// recycled buffer); the returned slice reuses dst's storage when it fits.
func CompressAppend(dst []byte, a *grid.Array, p Params) ([]byte, *Stats, error) {
	return compress(dst, a, p, true)
}

// compress is the implementation behind Compress; kernels=false forces the
// generic reference scan (used by the equivalence tests and benchmarks).
func compress(dst []byte, a *grid.Array, p Params, kernels bool) ([]byte, *Stats, error) {
	s, err := analyze(a, p, kernels)
	if err != nil {
		return nil, nil, err
	}
	defer s.Release()
	return s.EncodeAppend(dst, nil)
}

// Scan holds the products of the predict+quantize pass, split from
// entropy encoding so a container can run two-pass encodes: analyze
// every slab, build one shared codebook from the union histogram, then
// encode each slab against it. Working slices come from the scratch
// pools — call Release when done.
type Scan struct {
	p           Params // defaulted + validated
	dims        []int
	eb          float64
	n           int
	numOutliers int
	codes       []int
	hist        []uint64
	outW        *bitstream.Writer
}

// Analyze runs the prediction+quantization scan of a and returns its
// products (quantization codes, code histogram, outlier side stream)
// without entropy-encoding them. Follow with EncodeAppend, then Release.
func Analyze(a *grid.Array, p Params) (*Scan, error) {
	return analyze(a, p, true)
}

func analyze(a *grid.Array, p Params, kernels bool) (*Scan, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	_, _, valueRange := a.Range()
	eb := p.effectiveBound(valueRange)

	q, err := quant.New(eb, p.IntervalBits)
	if err != nil {
		return nil, err
	}
	pred, err := predictor.New(a.Dims, p.Layers)
	if err != nil {
		return nil, err
	}

	n := a.Len()
	codes := scratch.Ints(n)     // every entry assigned by the scan
	recon := scratch.Float64s(n) // every entry assigned by the scan
	hist := scratch.Uint64sZeroed(q.NumCodes())
	// The reconstruction is dead once the scan finishes (only the codes
	// and outliers reach the stream), so it recycles here rather than
	// living as long as the Scan — two-pass encodes hold one Scan per
	// slab concurrently.
	defer scratch.PutFloat64s(recon)

	// Outlier values are discovered during the scan but serialized after
	// the Huffman-coded symbols, so they collect in a side stream. The
	// hint covers a few percent of outliers at 33 bits each; heavier
	// escape traffic grows the buffer, which recycles under its grown
	// size class.
	outW := bitstream.NewWriterBytes(scratch.Bytes(n/8 + 64))
	outEnc := binrep.NewEncoder(outW, eb)

	scan := &compressState{
		qparams: newQParams(q, p.OutputType),
		data:    a.Data,
		recon:   recon,
		codes:   codes,
		hist:    hist,
		outW:    outW,
		outEnc:  outEnc,
	}
	scan.scan(a.Dims, p.Layers, pred, kernels)
	return &Scan{
		p:           p,
		dims:        a.Dims,
		eb:          eb,
		n:           n,
		numOutliers: scan.numOutliers,
		codes:       codes,
		hist:        hist,
		outW:        outW,
	}, nil
}

// Hist exposes the quantization-code histogram (length 2^m, index 0 =
// escapes) for union-codebook construction. The slice is owned by the
// Scan; do not retain it past Release.
func (s *Scan) Hist() []uint64 { return s.hist }

// Release hands the Scan's working memory back to the scratch pools.
// The Scan must not be used afterwards.
func (s *Scan) Release() {
	scratch.PutInts(s.codes)
	scratch.PutUint64s(s.hist)
	scratch.PutBytes(s.outW.Bytes())
	*s = Scan{}
}

// EncodeAppend entropy-encodes the scan's products and appends the
// complete stream to dst. With shared == nil the codebook is built from
// the scan's own histogram and serialized into the stream; a non-nil
// shared codebook (covering at least this scan's symbols — e.g. built
// from a union histogram) is used instead and omitted from the payload,
// which then decodes only via DecompressIntoShared.
//
// Streams == 1 with an internal codebook emits the serial Version-1
// layout, byte-identical to previous releases. More streams, or a
// shared codebook, switch to the VersionMulti layout: after the
// (optional) codebook the payload is byte-aligned and carries a uvarint
// sub-stream length table, the N independent Huffman sub-streams, and
// the outlier stream, each section byte-aligned.
func (s *Scan) EncodeAppend(dst []byte, shared *huffman.Codebook) ([]byte, *Stats, error) {
	cb := shared
	if cb == nil {
		// Variable-length encoding of the quantization codes (Section IV-A).
		var t0 time.Time
		if s.p.Stages != nil {
			t0 = time.Now()
		}
		own, err := huffman.New(s.hist)
		if err != nil {
			return nil, nil, fmt.Errorf("core: building codebook: %w", err)
		}
		if s.p.Stages != nil {
			s.p.Stages("huffbuild", time.Since(t0))
		}
		defer own.Release()
		cb = own
	}
	n := s.n
	k := s.p.Streams
	version := uint8(Version)
	if k > 1 || shared != nil {
		version = VersionMulti
	}
	// One byte per element covers compression factors down to 4x for
	// float32 (8x for float64) without growing; the scratch class
	// rounding gives the buffer further headroom on top.
	payload := bitstream.NewWriterBytes(scratch.Bytes(n + 64))
	defer func() { scratch.PutBytes(payload.Bytes()) }()

	var tableBits, codeBits uint64
	if version == Version {
		cb.Serialize(payload)
		tableBits = payload.Len()
		if err := cb.Encode(payload, s.codes); err != nil {
			return nil, nil, fmt.Errorf("core: encoding codes: %w", err)
		}
		codeBits = payload.Len() - tableBits
		payload.AppendStream(s.outW.Bytes(), s.outW.Len())
	} else {
		if shared == nil {
			cb.Serialize(payload)
			tableBits = payload.Len()
			payload.Align()
		}
		var subArr [maxStreams]*bitstream.Writer
		subWs := subArr[:k]
		for j := range subWs {
			subWs[j] = bitstream.NewWriterBytes(scratch.Bytes(n/k + 64))
		}
		defer func() {
			for _, w := range subWs {
				scratch.PutBytes(w.Bytes())
			}
		}()
		if err := cb.EncodeN(subWs, s.codes); err != nil {
			return nil, nil, fmt.Errorf("core: encoding codes: %w", err)
		}
		var subBytes [maxStreams][]byte
		lenBuf := scratch.Bytes(10 * k)[:0]
		defer func() { scratch.PutBytes(lenBuf) }()
		for j, w := range subWs {
			subBytes[j] = w.Bytes()
			codeBits += w.Len()
			lenBuf = binary.AppendUvarint(lenBuf, uint64(len(subBytes[j])))
		}
		payload.WriteBytes(lenBuf)
		for j := range subWs {
			payload.WriteBytes(subBytes[j])
		}
		// The outlier section starts byte-aligned; its padded byte form
		// copies directly (the decoder stops by outlier count, so the
		// pad bits inside PayloadBits are harmless).
		payload.WriteBytes(s.outW.Bytes())
	}

	h := &Header{
		Version:        version,
		DType:          s.p.OutputType,
		Dims:           s.dims,
		AbsBound:       s.eb,
		Layers:         s.p.Layers,
		IntervalBits:   s.p.IntervalBits,
		NumOutliers:    s.numOutliers,
		PayloadBits:    payload.Len(),
		Streams:        k,
		SharedCodebook: shared != nil,
	}
	stream := appendHeader(dst, h)
	stream = append(stream, payload.Bytes()...)
	crc := crc32.ChecksumIEEE(stream[len(dst):])
	stream = binary.LittleEndian.AppendUint32(stream, crc)

	st := &Stats{
		N:               n,
		Predictable:     n - s.numOutliers,
		HitRate:         float64(n-s.numOutliers) / float64(n),
		EffAbsBound:     s.eb,
		CompressedBytes: len(stream) - len(dst),
		OriginalBytes:   n * s.p.OutputType.Size(),
		Histogram:       append([]uint64(nil), s.hist...),

		TableBits:          tableBits,
		CodeBits:           codeBits,
		OutlierBits:        s.outW.Len(),
		FixedWidthCodeBits: uint64(n) * uint64(s.p.IntervalBits),
	}
	st.CompressionFactor = float64(st.OriginalBytes) / float64(st.CompressedBytes)
	st.BitRate = float64(st.CompressedBytes) * 8 / float64(n)
	if advice, _, err := quant.Adapt(s.hist, s.p.IntervalBits, s.p.HitRateThreshold); err == nil {
		st.Advice = advice
	}
	return stream, st, nil
}

// encodeOutlier stores an unpredictable value and returns the exact value
// the decompressor will reconstruct for it.
//
// float64 sources use error-bounded IEEE truncation (binrep). float32
// sources store the raw 32-bit pattern — lossless for genuinely
// single-precision inputs — with a 64-bit escape for float64 inputs
// mislabelled as float32 whose narrowing would exceed the bound.
func encodeOutlier(enc *binrep.Encoder, w *bitstream.Writer, x, eb float64, t grid.DType) float64 {
	if t != grid.Float32 {
		return enc.Encode(x)
	}
	x32 := float64(float32(x))
	if math.Abs(x32-x) <= eb || math.IsNaN(x) {
		// One 33-bit write: the 0 escape flag followed by the raw pattern
		// (identical bits to writing them separately).
		w.WriteBits(uint64(math.Float32bits(float32(x))), 33)
		return x32
	}
	w.WriteBits(1, 1)
	w.WriteBits(math.Float64bits(x), 64)
	return x
}

// decodeOutlier mirrors encodeOutlier.
func decodeOutlier(dec *binrep.Decoder, r *bitstream.Reader, t grid.DType) (float64, error) {
	if t != grid.Float32 {
		return dec.Decode()
	}
	esc, err := r.ReadBits(1)
	if err != nil {
		return 0, err
	}
	if esc == 0 {
		bits, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return float64(math.Float32frombits(uint32(bits))), nil
	}
	bits, err := r.ReadBits(64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// advanceCoord increments a row-major coordinate odometer (last dimension
// fastest).
func advanceCoord(coord, dims []int) {
	for j := len(coord) - 1; j >= 0; j-- {
		coord[j]++
		if coord[j] < dims[j] {
			return
		}
		coord[j] = 0
	}
}

// appendHeader serializes h.
func appendHeader(b []byte, h *Header) []byte {
	b = append(b, Magic...)
	b = append(b, h.Version, byte(h.DType), byte(len(h.Dims)))
	for _, d := range h.Dims {
		b = binary.AppendUvarint(b, uint64(d))
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(h.AbsBound))
	b = append(b, byte(h.Layers), byte(h.IntervalBits))
	if h.Version == VersionMulti {
		var flags byte
		if h.SharedCodebook {
			flags |= flagSharedCodebook
		}
		b = append(b, byte(h.Streams), flags)
	}
	b = binary.AppendUvarint(b, uint64(h.NumOutliers))
	b = binary.AppendUvarint(b, h.PayloadBits)
	return b
}
