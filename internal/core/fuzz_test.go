package core

import (
	"math"
	"testing"

	"repro/internal/grid"
)

// FuzzDecompress feeds arbitrary bytes to the decoder: it must never
// panic, and whatever it accepts must have a well-formed header. Seeds
// include valid streams so mutation explores deep paths.
func FuzzDecompress(f *testing.F) {
	a := grid.New(8, 9)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.2)
	}
	for _, p := range []Params{
		{Mode: BoundAbs, AbsBound: 1e-3},
		{Mode: BoundAbs, AbsBound: 1e-6, Layers: 2, IntervalBits: 4},
		{Mode: BoundAbs, AbsBound: 1e-2, OutputType: grid.Float32},
	} {
		stream, _, err := Compress(a, p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(stream)
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, h, err := Decompress(data)
		if err != nil {
			return
		}
		if out == nil || h == nil {
			t.Fatal("nil result without error")
		}
		if out.Len() != h.N() {
			t.Fatalf("decoded %d values, header says %d", out.Len(), h.N())
		}
	})
}

// FuzzRoundTrip compresses fuzz-shaped inputs and checks the bound.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(10), 3)
	f.Add(int64(2), uint8(1), uint8(30), 6)
	f.Add(int64(3), uint8(40), uint8(2), 1)
	f.Fuzz(func(t *testing.T, seed int64, d0, d1 uint8, ebExp int) {
		rows := int(d0)%40 + 1
		cols := int(d1)%40 + 1
		if ebExp < 0 {
			ebExp = -ebExp
		}
		eb := math.Pow(10, -float64(ebExp%10)-1)
		a := grid.New(rows, cols)
		s := seed
		for i := range a.Data {
			// Cheap deterministic pseudo-noise.
			s = s*6364136223846793005 + 1442695040888963407
			a.Data[i] = math.Sin(float64(i)*0.07) + float64(s%1000)/1e5
		}
		stream, _, err := Compress(a, Params{Mode: BoundAbs, AbsBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		out, h, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data {
			if math.Abs(a.Data[i]-out.Data[i]) > h.AbsBound {
				t.Fatalf("bound violated at %d", i)
			}
		}
	})
}
