package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/huffman"
)

// TestMultiStreamRoundTrip checks that every stream count reconstructs
// exactly the same samples as the serial Version-1 layout.
func TestMultiStreamRoundTrip(t *testing.T) {
	a := datagen.Hurricane(8, 20, 24, 3)
	base := Params{Mode: BoundAbs, AbsBound: 1e-3, OutputType: grid.Float32}
	ref, _, err := Compress(a, base)
	if err != nil {
		t.Fatal(err)
	}
	refOut, refH, err := Decompress(ref)
	if err != nil {
		t.Fatal(err)
	}
	if refH.Version != Version || refH.Streams != 1 {
		t.Fatalf("baseline version/streams = %d/%d, want %d/1", refH.Version, refH.Streams, Version)
	}
	for _, k := range []int{1, 2, 3, 4, 7, 16} {
		t.Run(fmt.Sprintf("streams=%d", k), func(t *testing.T) {
			p := base
			p.Streams = k
			stream, _, err := Compress(a, p)
			if err != nil {
				t.Fatal(err)
			}
			if k == 1 && !bytes.Equal(stream, ref) {
				t.Fatal("streams=1 must be byte-identical to the default layout")
			}
			out, h, err := Decompress(stream)
			if err != nil {
				t.Fatal(err)
			}
			wantVer := uint8(Version)
			if k > 1 {
				wantVer = VersionMulti
			}
			if h.Version != wantVer || h.Streams != k {
				t.Fatalf("version/streams = %d/%d, want %d/%d", h.Version, h.Streams, wantVer, k)
			}
			if !sameFloat64s(out.Data, refOut.Data) {
				t.Fatal("multi-stream reconstruction differs from serial")
			}
		})
	}
}

// TestSharedCodebookRoundTrip exercises the Analyze/EncodeAppend split
// with an external union codebook and the shared-codebook decode path.
func TestSharedCodebookRoundTrip(t *testing.T) {
	a := datagen.Hurricane(6, 16, 18, 3)
	b := datagen.Hurricane(6, 16, 18, 5)
	p := Params{Mode: BoundAbs, AbsBound: 1e-3, OutputType: grid.Float32, Streams: 4}

	sa, err := Analyze(a, p)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Release()
	sb, err := Analyze(b, p)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Release()

	union := make([]uint64, len(sa.Hist()))
	for i := range union {
		union[i] = sa.Hist()[i] + sb.Hist()[i]
	}
	cb, err := huffman.New(union)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Release()

	streamA, _, err := sa.EncodeAppend(nil, cb)
	if err != nil {
		t.Fatal(err)
	}
	streamB, _, err := sb.EncodeAppend(nil, cb)
	if err != nil {
		t.Fatal(err)
	}

	h, err := Inspect(streamA)
	if err != nil {
		t.Fatal(err)
	}
	if !h.SharedCodebook || h.Version != VersionMulti {
		t.Fatalf("header = %+v, want shared-codebook VersionMulti", h)
	}
	if _, _, err := Decompress(streamA); err != ErrNeedsCodebook {
		t.Fatalf("Decompress without codebook: err = %v, want ErrNeedsCodebook", err)
	}

	// Decode with a freshly deserialized copy of the shared codebook,
	// as the container reader would (Deserialize builds the decode table).
	w := bitstream.NewWriter(256)
	cb.Serialize(w)
	dcb, err := huffman.Deserialize(bitstream.NewReaderBits(w.Bytes(), w.Len()))
	if err != nil {
		t.Fatal(err)
	}
	defer dcb.Release()
	for i, pair := range []struct {
		stream []byte
		orig   *grid.Array
	}{{streamA, a}, {streamB, b}} {
		out, _, err := DecompressIntoShared(pair.stream, nil, dcb)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		// Compare against the self-contained encoding of the same data.
		pp := p
		pp.Streams = 1
		plain, _, err := Compress(pair.orig, pp)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := Decompress(plain)
		if err != nil {
			t.Fatal(err)
		}
		if !sameFloat64s(out.Data, want.Data) {
			t.Fatalf("stream %d: shared-codebook reconstruction differs", i)
		}
	}
}

func sameFloat64s(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
