package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/binrep"
	"repro/internal/bitstream"
	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/predictor"
	"repro/internal/quant"
	"repro/internal/scratch"
)

// Inspect parses and validates the header of a compressed stream without
// decompressing the data.
func Inspect(stream []byte) (*Header, error) {
	h, _, err := parseHeader(stream)
	return h, err
}

// Decompress reconstructs the array from a stream produced by Compress.
// Every reconstructed value satisfies |x − x̃| ≤ Header.AbsBound.
//
// Like Compress, the reconstruction scan runs through a fused
// geometry-specialized kernel when one exists (see kernels.go). Working
// memory (code array, codebook tables) is recycled through the scratch
// pools; only the reconstruction itself is newly allocated.
func Decompress(stream []byte) (*grid.Array, *Header, error) {
	return decompress(stream, true, nil)
}

// DecompressInto is Decompress reconstructing into data when it is large
// enough for the stream's element count (the returned Array then aliases
// data's prefix); an undersized or nil data falls back to a fresh
// allocation. Every element of the used prefix is overwritten, so a
// recycled buffer needs no clearing.
func DecompressInto(stream []byte, data []float64) (*grid.Array, *Header, error) {
	return decompress(stream, true, data)
}

// decompress is the implementation behind Decompress; kernels=false forces
// the generic reference scan.
func decompress(stream []byte, kernels bool, data []float64) (*grid.Array, *Header, error) {
	h, off, err := parseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	payloadBytes := int((h.PayloadBits + 7) / 8)
	if len(stream) != off+payloadBytes+4 {
		return nil, nil, fmt.Errorf("%w: length %d, want %d", ErrCorrupt, len(stream), off+payloadBytes+4)
	}
	wantCRC := binary.LittleEndian.Uint32(stream[len(stream)-4:])
	if crc32.ChecksumIEEE(stream[:len(stream)-4]) != wantCRC {
		return nil, nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	payload := stream[off : off+payloadBytes]

	r := bitstream.NewReaderBits(payload, h.PayloadBits)
	cb, err := huffman.Deserialize(r)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: codebook: %v", ErrCorrupt, err)
	}
	defer cb.Release()
	n := h.N()
	codes := scratch.Ints(n) // DecodeInto assigns every entry
	defer scratch.PutInts(codes)
	if err := cb.DecodeInto(r, codes); err != nil {
		return nil, nil, fmt.Errorf("%w: codes: %v", ErrCorrupt, err)
	}

	q, err := quant.New(h.AbsBound, h.IntervalBits)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pred, err := predictor.New(h.Dims, h.Layers)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	// A well-formed codebook only emits codes < 2^m, but a corrupt stream
	// can smuggle in a larger alphabet; the generic Reconstruct rejects
	// such codes, so the kernels must too. Checking once here keeps the
	// per-point loops branch-free.
	for _, c := range codes {
		if c < 0 || c >= q.NumCodes() {
			return nil, nil, fmt.Errorf("%w: code %d out of range [0,%d)", ErrCorrupt, c, q.NumCodes())
		}
	}

	var out *grid.Array
	if len(data) >= n {
		// The scan assigns every element of the prefix, so the caller's
		// buffer contents do not matter.
		out = &grid.Array{Dims: append([]int(nil), h.Dims...), Data: data[:n]}
	} else {
		out = grid.New(h.Dims...)
	}
	scan := &decompressState{
		qparams: newQParams(q, h.DType),
		recon:   out.Data,
		codes:   codes,
		r:       r,
		dec:     binrep.NewDecoder(r),
	}
	scan.scan(h.Dims, h.Layers, pred, kernels)
	if scan.err != nil {
		return nil, nil, scan.err
	}
	if scan.outliers != h.NumOutliers {
		return nil, nil, fmt.Errorf("%w: outlier count %d, header says %d", ErrCorrupt, scan.outliers, h.NumOutliers)
	}
	return out, h, nil
}

// parseHeader reads the header and returns it plus the payload offset.
func parseHeader(stream []byte) (*Header, int, error) {
	if len(stream) < len(Magic)+3 {
		return nil, 0, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if string(stream[:len(Magic)]) != Magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(Magic)
	h := &Header{Version: stream[off]}
	if h.Version != Version {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, h.Version)
	}
	h.DType = grid.DType(stream[off+1])
	if h.DType != grid.Float32 && h.DType != grid.Float64 {
		return nil, 0, fmt.Errorf("%w: bad dtype %d", ErrCorrupt, h.DType)
	}
	ndims := int(stream[off+2])
	if ndims < 1 || ndims > grid.MaxDims {
		return nil, 0, fmt.Errorf("%w: bad ndims %d", ErrCorrupt, ndims)
	}
	off += 3
	h.Dims = make([]int, ndims)
	total := 1
	for i := 0; i < ndims; i++ {
		v, k := binary.Uvarint(stream[off:])
		if k <= 0 || v == 0 || v > 1<<40 {
			return nil, 0, fmt.Errorf("%w: bad dim", ErrCorrupt)
		}
		h.Dims[i] = int(v)
		if total > math.MaxInt/h.Dims[i] {
			return nil, 0, fmt.Errorf("%w: dims overflow", ErrCorrupt)
		}
		total *= h.Dims[i]
		off += k
	}
	if len(stream) < off+10 {
		return nil, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	h.AbsBound = math.Float64frombits(binary.LittleEndian.Uint64(stream[off:]))
	off += 8
	if !(h.AbsBound > 0) || math.IsInf(h.AbsBound, 0) {
		return nil, 0, fmt.Errorf("%w: bad error bound %v", ErrCorrupt, h.AbsBound)
	}
	h.Layers = int(stream[off])
	h.IntervalBits = int(stream[off+1])
	off += 2
	if h.Layers < 1 || h.Layers > predictor.MaxLayers {
		return nil, 0, fmt.Errorf("%w: bad layers %d", ErrCorrupt, h.Layers)
	}
	if h.IntervalBits < quant.MinBits || h.IntervalBits > quant.MaxBits {
		return nil, 0, fmt.Errorf("%w: bad interval bits %d", ErrCorrupt, h.IntervalBits)
	}
	v, k := binary.Uvarint(stream[off:])
	if k <= 0 || v > uint64(total) {
		return nil, 0, fmt.Errorf("%w: bad outlier count", ErrCorrupt)
	}
	h.NumOutliers = int(v)
	off += k
	v, k = binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	h.PayloadBits = v
	off += k
	return h, off, nil
}
