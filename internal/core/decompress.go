package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/binrep"
	"repro/internal/bitstream"
	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/predictor"
	"repro/internal/quant"
	"repro/internal/scratch"
)

// Inspect parses and validates the header of a compressed stream without
// decompressing the data.
func Inspect(stream []byte) (*Header, error) {
	h, _, err := parseHeader(stream)
	return h, err
}

// Decompress reconstructs the array from a stream produced by Compress.
// Every reconstructed value satisfies |x − x̃| ≤ Header.AbsBound.
//
// Like Compress, the reconstruction scan runs through a fused
// geometry-specialized kernel when one exists (see kernels.go). Working
// memory (code array, codebook tables) is recycled through the scratch
// pools; only the reconstruction itself is newly allocated.
func Decompress(stream []byte) (*grid.Array, *Header, error) {
	return decompress(stream, true, nil, nil)
}

// DecompressInto is Decompress reconstructing into data when it is large
// enough for the stream's element count (the returned Array then aliases
// data's prefix); an undersized or nil data falls back to a fresh
// allocation. Every element of the used prefix is overwritten, so a
// recycled buffer needs no clearing.
func DecompressInto(stream []byte, data []float64) (*grid.Array, *Header, error) {
	return decompress(stream, true, data, nil)
}

// DecompressIntoShared is DecompressInto for streams whose codebook was
// omitted in favor of a container-level shared codebook (blocked v3):
// cb must be the deserialized shared codebook. The codebook is only
// read, so concurrent slab decodes may share one. Streams that carry
// their own codebook ignore cb.
func DecompressIntoShared(stream []byte, data []float64, cb *huffman.Codebook) (*grid.Array, *Header, error) {
	return decompress(stream, true, data, cb)
}

// ErrNeedsCodebook is returned when a shared-codebook stream is decoded
// without the container-level codebook it depends on.
var ErrNeedsCodebook = errors.New("core: stream requires its container's shared codebook (use DecompressIntoShared)")

// decompress is the implementation behind Decompress; kernels=false forces
// the generic reference scan.
func decompress(stream []byte, kernels bool, data []float64, ext *huffman.Codebook) (*grid.Array, *Header, error) {
	h, off, err := parseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	payloadBytes := int((h.PayloadBits + 7) / 8)
	if len(stream) != off+payloadBytes+4 {
		return nil, nil, fmt.Errorf("%w: length %d, want %d", ErrCorrupt, len(stream), off+payloadBytes+4)
	}
	wantCRC := binary.LittleEndian.Uint32(stream[len(stream)-4:])
	if crc32.ChecksumIEEE(stream[:len(stream)-4]) != wantCRC {
		return nil, nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	payload := stream[off : off+payloadBytes]

	r := bitstream.NewReaderBits(payload, h.PayloadBits)
	var cb *huffman.Codebook
	if h.SharedCodebook {
		if ext == nil {
			return nil, nil, ErrNeedsCodebook
		}
		cb = ext
	} else {
		own, err := huffman.Deserialize(r)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: codebook: %v", ErrCorrupt, err)
		}
		defer own.Release()
		cb = own
		if h.Version == VersionMulti {
			r.Align()
		}
	}
	n := h.N()
	codes := scratch.Ints(n) // DecodeInto assigns every entry
	defer scratch.PutInts(codes)
	if h.Version == VersionMulti {
		// Byte-aligned sections: a uvarint sub-stream length table, then
		// the sub-streams themselves. Each gets an independent cursor so
		// the fused decoder can interleave them.
		k := h.Streams
		var lens [maxStreams]int
		for j := 0; j < k; j++ {
			v, err := readAlignedUvarint(r)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: sub-stream length table: %v", ErrCorrupt, err)
			}
			if v > uint64(payloadBytes) {
				return nil, nil, fmt.Errorf("%w: sub-stream %d length %d exceeds payload", ErrCorrupt, j, v)
			}
			lens[j] = int(v)
		}
		var subArr [maxStreams]*bitstream.Reader
		subs := subArr[:k]
		start := int(r.Pos() >> 3)
		for j := 0; j < k; j++ {
			if start+lens[j] > payloadBytes {
				return nil, nil, fmt.Errorf("%w: sub-stream %d overflows payload", ErrCorrupt, j)
			}
			subs[j] = bitstream.NewReaderAt(payload, start, lens[j])
			start += lens[j]
		}
		if err := cb.DecodeNInto(subs, codes); err != nil {
			return nil, nil, fmt.Errorf("%w: codes: %v", ErrCorrupt, err)
		}
		// The outlier section begins at the next byte boundary after the
		// last sub-stream; move the main cursor there for the scan.
		r.SetPos(uint64(start) * 8)
	} else if err := cb.DecodeInto(r, codes); err != nil {
		return nil, nil, fmt.Errorf("%w: codes: %v", ErrCorrupt, err)
	}

	q, err := quant.New(h.AbsBound, h.IntervalBits)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pred, err := predictor.New(h.Dims, h.Layers)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	// A well-formed codebook only emits codes < 2^m, but a corrupt stream
	// can smuggle in a larger alphabet; the generic Reconstruct rejects
	// such codes, so the kernels must too. Checking here keeps the
	// per-point loops branch-free. The decoder can only produce symbols
	// the codebook assigns codes to, so bounding the alphabet bounds every
	// decoded value — O(alphabet) instead of O(n). Version 1 predates
	// that invariant being load-bearing, so its streams keep the
	// exhaustive per-code sweep.
	if h.Version == VersionMulti {
		if m := cb.MaxSymbol(); m >= q.NumCodes() {
			return nil, nil, fmt.Errorf("%w: code %d out of range [0,%d)", ErrCorrupt, m, q.NumCodes())
		}
	} else {
		for _, c := range codes {
			if c < 0 || c >= q.NumCodes() {
				return nil, nil, fmt.Errorf("%w: code %d out of range [0,%d)", ErrCorrupt, c, q.NumCodes())
			}
		}
	}

	var out *grid.Array
	if len(data) >= n {
		// The scan assigns every element of the prefix, so the caller's
		// buffer contents do not matter.
		out = &grid.Array{Dims: append([]int(nil), h.Dims...), Data: data[:n]}
	} else {
		out = grid.New(h.Dims...)
	}
	scan := &decompressState{
		qparams: newQParams(q, h.DType),
		recon:   out.Data,
		codes:   codes,
		r:       r,
		dec:     binrep.NewDecoder(r),
	}
	scan.scan(h.Dims, h.Layers, pred, kernels)
	if scan.err != nil {
		return nil, nil, scan.err
	}
	if scan.outliers != h.NumOutliers {
		return nil, nil, fmt.Errorf("%w: outlier count %d, header says %d", ErrCorrupt, scan.outliers, h.NumOutliers)
	}
	return out, h, nil
}

// readAlignedUvarint reads a standard uvarint from a byte-aligned
// bitstream reader (the VersionMulti sub-stream length table).
func readAlignedUvarint(r *bitstream.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.ReadBits(8)
		if err != nil {
			return 0, err
		}
		v |= (b & 0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("uvarint overflows 64 bits")
		}
	}
}

// parseHeader reads the header and returns it plus the payload offset.
func parseHeader(stream []byte) (*Header, int, error) {
	if len(stream) < len(Magic)+3 {
		return nil, 0, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if string(stream[:len(Magic)]) != Magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(Magic)
	h := &Header{Version: stream[off], Streams: 1}
	if h.Version != Version && h.Version != VersionMulti {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, h.Version)
	}
	h.DType = grid.DType(stream[off+1])
	if h.DType != grid.Float32 && h.DType != grid.Float64 {
		return nil, 0, fmt.Errorf("%w: bad dtype %d", ErrCorrupt, h.DType)
	}
	ndims := int(stream[off+2])
	if ndims < 1 || ndims > grid.MaxDims {
		return nil, 0, fmt.Errorf("%w: bad ndims %d", ErrCorrupt, ndims)
	}
	off += 3
	h.Dims = make([]int, ndims)
	total := 1
	for i := 0; i < ndims; i++ {
		v, k := binary.Uvarint(stream[off:])
		if k <= 0 || v == 0 || v > 1<<40 {
			return nil, 0, fmt.Errorf("%w: bad dim", ErrCorrupt)
		}
		h.Dims[i] = int(v)
		if total > math.MaxInt/h.Dims[i] {
			return nil, 0, fmt.Errorf("%w: dims overflow", ErrCorrupt)
		}
		total *= h.Dims[i]
		off += k
	}
	if len(stream) < off+10 {
		return nil, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	h.AbsBound = math.Float64frombits(binary.LittleEndian.Uint64(stream[off:]))
	off += 8
	if !(h.AbsBound > 0) || math.IsInf(h.AbsBound, 0) {
		return nil, 0, fmt.Errorf("%w: bad error bound %v", ErrCorrupt, h.AbsBound)
	}
	h.Layers = int(stream[off])
	h.IntervalBits = int(stream[off+1])
	off += 2
	if h.Layers < 1 || h.Layers > predictor.MaxLayers {
		return nil, 0, fmt.Errorf("%w: bad layers %d", ErrCorrupt, h.Layers)
	}
	if h.IntervalBits < quant.MinBits || h.IntervalBits > quant.MaxBits {
		return nil, 0, fmt.Errorf("%w: bad interval bits %d", ErrCorrupt, h.IntervalBits)
	}
	if h.Version == VersionMulti {
		if len(stream) < off+2 {
			return nil, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		h.Streams = int(stream[off])
		flags := stream[off+1]
		off += 2
		if h.Streams < 1 || h.Streams > maxStreams {
			return nil, 0, fmt.Errorf("%w: bad stream count %d", ErrCorrupt, h.Streams)
		}
		if flags&^byte(flagSharedCodebook) != 0 {
			return nil, 0, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags)
		}
		h.SharedCodebook = flags&flagSharedCodebook != 0
	}
	v, k := binary.Uvarint(stream[off:])
	if k <= 0 || v > uint64(total) {
		return nil, 0, fmt.Errorf("%w: bad outlier count", ErrCorrupt)
	}
	h.NumOutliers = int(v)
	off += k
	v, k = binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	h.PayloadBits = v
	off += k
	return h, off, nil
}
