package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/binrep"
	"repro/internal/bitstream"
	"repro/internal/grid"
	"repro/internal/predictor"
	"repro/internal/quant"
)

// randArray fills an array with smooth data plus occasional spikes so both
// the predictable path and the outlier path get exercised.
func randArray(rng *rand.Rand, dims []int, f32 bool) *grid.Array {
	a := grid.New(dims...)
	for i := range a.Data {
		v := math.Sin(float64(i)*0.05)*10 + rng.NormFloat64()*0.3
		switch rng.Intn(50) {
		case 0:
			v *= 1e6 // spike: quantizer escape
		case 1:
			v = 0
		}
		if f32 {
			v = float64(float32(v))
		}
		a.Data[i] = v
	}
	return a
}

func randDims(rng *rand.Rand, nd int) []int {
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = 1 + rng.Intn(16)
	}
	return dims
}

// TestKernelEquivalence asserts the fused kernels produce byte-identical
// streams, identical Stats, and identical reconstructions to the generic
// reference path on randomized geometries covering every kernel plus the
// generic fallbacks. Run it with -race as well; the kernels must stay
// data-race free when blocked/parallel drive them from many goroutines.
func TestKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20170529))
	cases := 0
	for _, nd := range []int{1, 2, 3, 4} {
		for _, layers := range []int{1, 2, 3} {
			for _, f32 := range []bool{false, true} {
				for rep := 0; rep < 4; rep++ {
					dims := randDims(rng, nd)
					a := randArray(rng, dims, f32)
					p := Params{Mode: BoundRel, RelBound: 1e-4, Layers: layers}
					if f32 {
						p.OutputType = grid.Float32
					}
					if rep%2 == 1 {
						p.Mode = BoundAbs
						p.AbsBound = 1e-3
					}
					checkEquivalence(t, a, p, dims, layers)
					cases++
				}
			}
		}
	}
	t.Logf("checked %d randomized cases", cases)
}

func checkEquivalence(t *testing.T, a *grid.Array, p Params, dims []int, layers int) {
	t.Helper()
	fast, fastStats, err := compress(nil, a, p, true)
	if err != nil {
		t.Fatalf("dims=%v layers=%d: kernel compress: %v", dims, layers, err)
	}
	ref, refStats, err := compress(nil, a, p, false)
	if err != nil {
		t.Fatalf("dims=%v layers=%d: generic compress: %v", dims, layers, err)
	}
	if !bytes.Equal(fast, ref) {
		t.Fatalf("dims=%v layers=%d: kernel stream differs from generic (%d vs %d bytes)",
			dims, layers, len(fast), len(ref))
	}
	if !reflect.DeepEqual(fastStats, refStats) {
		t.Fatalf("dims=%v layers=%d: kernel stats differ:\n%+v\nvs\n%+v",
			dims, layers, fastStats, refStats)
	}
	fastOut, fastH, err := decompress(fast, true, nil, nil)
	if err != nil {
		t.Fatalf("dims=%v layers=%d: kernel decompress: %v", dims, layers, err)
	}
	refOut, refH, err := decompress(ref, false, nil, nil)
	if err != nil {
		t.Fatalf("dims=%v layers=%d: generic decompress: %v", dims, layers, err)
	}
	if !fastOut.Equal(refOut) {
		t.Fatalf("dims=%v layers=%d: kernel reconstruction differs from generic", dims, layers)
	}
	if !reflect.DeepEqual(fastH, refH) {
		t.Fatalf("dims=%v layers=%d: headers differ: %+v vs %+v", dims, layers, fastH, refH)
	}
	// And the round trip must honour the bound.
	for i, x := range a.Data {
		if math.Abs(x-fastOut.Data[i]) > fastH.AbsBound {
			t.Fatalf("dims=%v layers=%d: point %d error %g exceeds bound %g",
				dims, layers, i, math.Abs(x-fastOut.Data[i]), fastH.AbsBound)
		}
	}
}

// TestKernelEquivalenceNonFinite covers NaN/Inf inputs, which must take the
// outlier path identically under both scans.
func TestKernelEquivalenceNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][]int{{40}, {9, 11}, {5, 6, 7}} {
		a := randArray(rng, dims, false)
		a.Data[0] = math.NaN()
		a.Data[len(a.Data)/2] = math.Inf(1)
		a.Data[len(a.Data)-1] = math.Inf(-1)
		p := Params{Mode: BoundAbs, AbsBound: 0.01}
		checkEquivalence(t, a, p, dims, 1)
	}
}

// TestPointMatchesQuantizer pins the fused point() quantize against the
// independent quant.Quantize + snap + bound-recheck reference on randomized
// (x, pv, eb, m, dtype). The equivalence tests compare kernels against
// scanGeneric, but scanGeneric shares point() — this test is what ties
// point() back to the quantizer's documented semantics.
func TestPointMatchesQuantizer(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200000; iter++ {
		eb := math.Pow(10, -1-8*rng.Float64())
		m := quant.MinBits + rng.Intn(quant.MaxBits-quant.MinBits+1)
		dtype := grid.Float64
		if rng.Intn(2) == 0 {
			dtype = grid.Float32
		}
		q, err := quant.New(eb, m)
		if err != nil {
			t.Fatal(err)
		}
		pv := rng.NormFloat64() * 10
		x := pv + rng.NormFloat64()*eb*math.Pow(10, 4*rng.Float64()-2)
		switch iter % 17 {
		case 13:
			x = math.NaN()
		case 14:
			x = math.Inf(1)
		case 15:
			pv = math.Inf(-1)
		case 16:
			x = pv // exact hit
		}

		// Reference: the seed's scan body.
		wantCode, wantRv, ok := q.Quantize(x, pv)
		if ok {
			wantRv = snap(wantRv, dtype)
			if !(math.Abs(x-wantRv) <= eb) {
				ok = false
			}
		}
		if !ok {
			wantCode = quant.UnpredictableCode
		}

		// Fused path, with the outlier writer stubbed out.
		outW := bitstream.NewWriter(8)
		s := &compressState{
			qparams: newQParams(q, dtype),
			data:    []float64{x},
			recon:   make([]float64, 1),
			codes:   make([]int, 1),
			hist:    make([]uint64, q.NumCodes()),
			outW:    outW,
			outEnc:  binrep.NewEncoder(outW, eb),
		}
		s.point(0, pv)

		if s.codes[0] != wantCode {
			t.Fatalf("x=%g pv=%g eb=%g m=%d %v: code %d, want %d",
				x, pv, eb, m, dtype, s.codes[0], wantCode)
		}
		if ok && math.Float64bits(s.recon[0]) != math.Float64bits(wantRv) {
			t.Fatalf("x=%g pv=%g eb=%g m=%d %v: recon %x, want %x",
				x, pv, eb, m, dtype, math.Float64bits(s.recon[0]), math.Float64bits(wantRv))
		}
		if ok != (s.numOutliers == 0) {
			t.Fatalf("x=%g pv=%g eb=%g m=%d %v: outlier mismatch (ok=%v, outliers=%d)",
				x, pv, eb, m, dtype, ok, s.numOutliers)
		}
	}
}

// TestKernelSelection pins which geometries take a fused kernel so a
// regression that silently drops everything to the generic path fails.
func TestKernelSelection(t *testing.T) {
	for _, tc := range []struct {
		dims   []int
		layers int
		want   bool
	}{
		{[]int{64}, 1, true},
		{[]int{8, 8}, 1, true},
		{[]int{4, 8, 8}, 1, true},
		{[]int{8, 8}, 2, true},
		{[]int{4, 8, 8}, 2, true},
		{[]int{64}, 2, false},
		{[]int{8, 8}, 3, false},
		{[]int{2, 2, 8, 8}, 1, false},
	} {
		a := grid.New(tc.dims...)
		p := Params{Mode: BoundAbs, AbsBound: 0.01, Layers: tc.layers}.withDefaults()
		eb := p.effectiveBound(0)
		q, err := quant.New(eb, p.IntervalBits)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := predictor.New(a.Dims, p.Layers)
		if err != nil {
			t.Fatal(err)
		}
		outW := bitstream.NewWriter(64)
		s := &compressState{
			qparams: newQParams(q, p.OutputType),
			data:    a.Data,
			recon:   make([]float64, a.Len()),
			codes:   make([]int, a.Len()),
			hist:    make([]uint64, q.NumCodes()),
			outW:    outW,
			outEnc:  binrep.NewEncoder(outW, eb),
		}
		if got := s.scan(a.Dims, p.Layers, pred, true); got != tc.want {
			t.Errorf("dims=%v layers=%d: kernel used = %v, want %v", tc.dims, tc.layers, got, tc.want)
		}
	}
}
