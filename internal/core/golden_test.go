package core

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"testing"

	"repro/internal/grid"
)

// goldenData fills dims with a fixed smooth-plus-spikes pattern. It is
// deliberately self-contained and integer-seeded so the bytes it produces
// can never drift with library changes.
func goldenData(dims []int, f32 bool) *grid.Array {
	a := grid.New(dims...)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range a.Data {
		state = state*6364136223846793005 + 1442695040888963407
		noise := float64(int64(state>>20)%2048-1024) / 65536.0
		v := math.Sin(float64(i)*0.07)*5 + math.Cos(float64(i)*0.013)*2 + noise
		if state%97 == 0 {
			v *= 1e5 // force an outlier
		}
		if f32 {
			v = float64(float32(v))
		}
		a.Data[i] = v
	}
	return a
}

// TestGoldenStreams pins the exact compressed bytes (by SHA-256 and length)
// for fixed inputs across 1D/2D/3D × float32/float64 × layer counts. A
// kernel or format refactor that changes the stream in any way fails here
// loudly; an intentional format change must bump core.Version and regenerate
// these digests (run the test with -v to see the new values).
func TestGoldenStreams(t *testing.T) {
	cases := []struct {
		name    string
		dims    []int
		f32     bool
		layers  int
		wantLen int
		wantSHA string
	}{
		{"1d/float64/L1", []int{1024}, false, 1, 2662, "490e2721641a795720d574d356ca46ac7f419f2acf323de795d7aec54fd9123f"},
		{"1d/float32/L1", []int{1024}, true, 1, 2865, "d3336cf670a836d33dc98b73b031b28123ad8ff633e577a8b4f6e0aea5e37087"},
		{"2d/float64/L1", []int{48, 64}, false, 1, 9561, "603c8dd12f42cc8e608de232208f04a21c46af2c05486a6a0aefc4be2655e971"},
		{"2d/float32/L1", []int{48, 64}, true, 1, 10398, "9641faab404db3cafb9ec7c179b4a455c9b8f560c922b16d6b2f91eb63da2812"},
		{"2d/float64/L2", []int{48, 64}, false, 2, 4077, "dffd4b28e64184e1611ee38f3cbd5db5d8fc92c0059bae06a6afc3790dc1d8f4"},
		{"3d/float64/L1", []int{12, 24, 16}, false, 1, 14733, "949c0b9b965f9da1ce0db8471554d11f826a2c17951dee1ec8e9d898b2d42894"},
		{"3d/float32/L1", []int{12, 24, 16}, true, 1, 15820, "934409967fbff85b5b52bcb2766bd6acaf29d2420755b02c37c5d575364fce8c"},
		{"3d/float32/L2", []int{12, 24, 16}, true, 2, 10269, "08fd66eccc9b5d6dc6e3f027313d3eebc7694636092298777bd89ff252ef3005"},
		{"3d/float64/L3-generic", []int{8, 12, 10}, false, 3, 2859, "311096b6ce2a744d25c681db938661e2b2fbbc0627177326bbd72c1bff1000e9"},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.name, func(t *testing.T) {
			a := goldenData(tc.dims, tc.f32)
			p := Params{Mode: BoundAbs, AbsBound: 1e-3, Layers: tc.layers}
			if tc.f32 {
				p.OutputType = grid.Float32
			}
			stream, _, err := Compress(a, p)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(stream)
			got := hex.EncodeToString(sum[:])
			t.Logf(`{%q, %#v, %v, %d, %d, %q},`,
				tc.name, tc.dims, tc.f32, tc.layers, len(stream), got)
			if tc.wantSHA == "" {
				t.Fatal("golden digest not pinned for this case")
			}
			if len(stream) != tc.wantLen || got != tc.wantSHA {
				t.Errorf("stream changed: got %d bytes sha256=%s, want %d bytes sha256=%s",
					len(stream), got, tc.wantLen, tc.wantSHA)
			}
			// The pinned stream must still round-trip within the bound.
			out, h, err := Decompress(stream)
			if err != nil {
				t.Fatal(err)
			}
			for j, x := range a.Data {
				if !(math.Abs(x-out.Data[j]) <= h.AbsBound) {
					t.Fatalf("point %d error %g exceeds bound %g", j, math.Abs(x-out.Data[j]), h.AbsBound)
				}
			}
		})
	}
}
