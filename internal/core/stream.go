package core

// Streaming-framing helpers: an SZ-Go stream is self-delimiting — its
// header records PayloadBits — so a consumer that has the header prefix
// can compute the exact byte length of the whole stream without decoding
// it. The blocked container's streaming reader uses this to consume a
// concatenation of core streams slab-at-a-time from a plain io.Reader.

// MaxHeaderLen bounds the encoded header size in bytes: magic (4),
// version/dtype/ndims (3), up to MaxDims varint dims (10 each), the
// 8-byte bound, layers/interval bits (2), the VersionMulti streams and
// flags bytes (2), and two more varints (10 each) for the outlier count
// and payload length. A prefix of MaxHeaderLen bytes (or the whole
// stream, if shorter) is always enough for ParseHeaderPrefix.
const MaxHeaderLen = 4 + 3 + 4*10 + 8 + 2 + 2 + 10 + 10

// ParseHeaderPrefix parses a stream header from a prefix of the stream
// and returns it together with the total byte length of the full stream
// (header + payload + CRC). The prefix needs at most MaxHeaderLen bytes;
// shorter prefixes work when they contain the whole header. Errors wrap
// ErrCorrupt.
func ParseHeaderPrefix(prefix []byte) (*Header, int, error) {
	h, off, err := parseHeader(prefix)
	if err != nil {
		return nil, 0, err
	}
	return h, off + int((h.PayloadBits+7)/8) + 4, nil
}
