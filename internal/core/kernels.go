package core

import (
	"fmt"
	"math"

	"repro/internal/binrep"
	"repro/internal/bitstream"
	"repro/internal/grid"
	"repro/internal/predictor"
	"repro/internal/quant"
)

// This file holds the fused fast-path kernels for the dominant geometries:
// 1D/2D/3D arrays with Layers=1 (the Lorenzo predictor) and 2D/3D arrays
// with Layers=2. Each kernel inlines predict + quantize + reconstruct +
// histogram into a single scan with hoisted strides and explicit border
// rows, instead of paying the generic per-point cost (coordinate odometer,
// interior test, []Term stencil walk, quantizer method call).
//
// The kernels are pure hot-path specializations: they MUST produce the
// exact stream bytes and Stats the generic path produces. Two properties
// make that hold:
//
//   - every hand-written prediction expression accumulates its terms in
//     the same order predictor.Predict enumerates them (the buildStencil
//     odometer order, last dimension fastest), so float additions round
//     identically; the 3D Layers=2 kernel walks the FlatStencil, which
//     preserves that order by construction;
//   - the fused quantize in (*compressState).point mirrors quant.Quantize
//     operation for operation (see the comment there).
//
// kernels_test.go asserts byte-for-byte equivalence on randomized
// geometries; the golden-stream tests pin the bytes themselves.

// qparams holds the hoisted quantizer and output-precision parameters
// shared by the compress and decompress kernels.
type qparams struct {
	eb      float64 // absolute error bound
	twoEB   float64 // interval width 2·eb
	lim     float64 // radius + 0.5: interval-index cutoff
	fradius float64 // radius as a float, for the post-round check
	radius  int     // max |interval offset|, 2^(m-1) − 1
	center  int     // code of offset 0, 2^(m-1)
	f32     bool    // snap reconstructions to float32
	dtype   grid.DType
}

func newQParams(q *quant.Quantizer, t grid.DType) qparams {
	c := q.CenterCode()
	return qparams{
		eb:      q.ErrorBound(),
		twoEB:   2 * q.ErrorBound(),
		lim:     float64(c-1) + 0.5,
		fradius: float64(c - 1),
		radius:  c - 1,
		center:  c,
		f32:     t == grid.Float32,
		dtype:   t,
	}
}

// --- compression ------------------------------------------------------------

// compressState is the per-run scan state shared by the generic path and
// the fused kernels.
type compressState struct {
	qparams
	data  []float64
	recon []float64
	codes []int
	hist  []uint64

	outW        *bitstream.Writer
	outEnc      *binrep.Encoder
	numOutliers int
}

// point quantizes the value at idx against prediction pv, mirroring the
// generic quant.Quantize + snap + bound-recheck sequence decision for
// decision: escape on non-finite residual (a NaN/Inf residual yields a
// NaN/Inf interval index, which the range compares reject — no separate
// IsNaN/IsInf tests needed), round to the nearest interval, reject rounding
// that lands outside the radius or the bound, snap to the output precision,
// and re-reject if the snap pushed the reconstruction across the bound.
// The f64 path skips the post-snap recheck: the snap is the identity there,
// so the check can never fire.
func (s *compressState) point(idx int, pv float64) {
	x := s.data[idx]
	fi := (x - pv) / s.twoEB
	if fi <= s.lim && fi >= -s.lim {
		ri := math.Round(fi)
		if ri <= s.fradius && ri >= -s.fradius {
			rv := pv + s.twoEB*ri
			if d := x - rv; d <= s.eb && d >= -s.eb {
				if s.f32 {
					rv = float64(float32(rv))
					if d := x - rv; !(d <= s.eb && d >= -s.eb) {
						s.escape(idx, x)
						return
					}
				}
				code := s.center + int(ri)
				s.codes[idx] = code
				s.recon[idx] = rv
				s.hist[code]++
				return
			}
		}
	}
	s.escape(idx, x)
}

// escape routes the value at idx through the unpredictable-point path.
func (s *compressState) escape(idx int, x float64) {
	s.codes[idx] = quant.UnpredictableCode
	s.recon[idx] = encodeOutlier(s.outEnc, s.outW, x, s.eb, s.dtype)
	s.numOutliers++
	s.hist[quant.UnpredictableCode]++
}

// scanGeneric is the reference path: per-point coordinate odometer and
// generic predictor, for geometries without a specialized kernel.
func (s *compressState) scanGeneric(dims []int, pred *predictor.Predictor) {
	coord := make([]int, len(dims))
	for idx := range s.data {
		s.point(idx, pred.Predict(s.recon, idx, coord))
		advanceCoord(coord, dims)
	}
}

// scan runs the fused kernel for the geometry if one exists (and kernels
// are enabled), else the generic path. It reports which path ran.
func (s *compressState) scan(dims []int, layers int, pred *predictor.Predictor, kernels bool) bool {
	if kernels {
		switch {
		case layers == 1 && len(dims) == 1:
			s.compress1DL1(dims[0])
			return true
		case layers == 1 && len(dims) == 2:
			s.compress2DL1(dims[0], dims[1])
			return true
		case layers == 1 && len(dims) == 3:
			s.compress3DL1(dims[0], dims[1], dims[2])
			return true
		case layers == 2 && len(dims) == 2:
			s.compress2DL2(dims[0], dims[1])
			return true
		case layers == 2 && len(dims) == 3:
			s.compress3DL2(dims[0], dims[1], dims[2], pred)
			return true
		}
	}
	s.scanGeneric(dims, pred)
	return false
}

// compress1DL1: pv = previous reconstruction (1D Lorenzo).
func (s *compressState) compress1DL1(n int) {
	recon := s.recon
	s.point(0, 0)
	for i := 1; i < n; i++ {
		s.point(i, recon[i-1])
	}
}

// compress2DL1: 2D Lorenzo with explicit first row and first column. The
// interior quantize is spelled out in the loop (same operations as point,
// see the comment there) so the whole hit path runs without a call and the
// hoisted parameters stay in registers.
func (s *compressState) compress2DL1(h, w int) {
	data, recon, codes, hist := s.data, s.recon, s.codes, s.hist
	twoEB, eb, lim, fradius := s.twoEB, s.eb, s.lim, s.fradius
	center, f32 := s.center, s.f32
	s.point(0, 0)
	for j := 1; j < w; j++ {
		s.point(j, recon[j-1])
	}
	for i := 1; i < h; i++ {
		row := i * w
		s.point(row, recon[row-w])
		for idx := row + 1; idx < row+w; idx++ {
			pv := recon[idx-1] + recon[idx-w] - recon[idx-w-1]
			x := data[idx]
			fi := (x - pv) / twoEB
			if fi <= lim && fi >= -lim {
				ri := math.Round(fi)
				if ri <= fradius && ri >= -fradius {
					rv := pv + twoEB*ri
					if d := x - rv; d <= eb && d >= -eb {
						if f32 {
							rv = float64(float32(rv))
							if d := x - rv; !(d <= eb && d >= -eb) {
								s.escape(idx, x)
								continue
							}
						}
						code := center + int(ri)
						codes[idx] = code
						recon[idx] = rv
						hist[code]++
						continue
					}
				}
			}
			s.escape(idx, x)
		}
	}
}

// compress3DL1: 3D Lorenzo with explicit first plane, first rows and first
// columns. sp is the plane stride, w the row stride.
func (s *compressState) compress3DL1(d, h, w int) {
	recon := s.recon
	sp := h * w
	// Plane 0 degenerates to the 2D Lorenzo kernel.
	s.point(0, 0)
	for k := 1; k < w; k++ {
		s.point(k, recon[k-1])
	}
	for j := 1; j < h; j++ {
		row := j * w
		s.point(row, recon[row-w])
		for idx := row + 1; idx < row+w; idx++ {
			s.point(idx, recon[idx-1]+recon[idx-w]-recon[idx-w-1])
		}
	}
	// Interior planes: the inner-row quantize is spelled out as in
	// compress2DL1 so consecutive hits run call-free.
	data, codes, hist := s.data, s.codes, s.hist
	twoEB, eb, lim, fradius := s.twoEB, s.eb, s.lim, s.fradius
	center, f32 := s.center, s.f32
	for i := 1; i < d; i++ {
		base := i * sp
		// Row (i,0,·): Lorenzo in the (i,k) plane.
		s.point(base, recon[base-sp])
		for idx := base + 1; idx < base+w; idx++ {
			s.point(idx, recon[idx-1]+recon[idx-sp]-recon[idx-sp-1])
		}
		for j := 1; j < h; j++ {
			row := base + j*w
			// Column (i,j,0): Lorenzo in the (i,j) plane.
			s.point(row, recon[row-w]+recon[row-sp]-recon[row-sp-w])
			for idx := row + 1; idx < row+w; idx++ {
				pv := recon[idx-1] + recon[idx-w] - recon[idx-w-1] +
					recon[idx-sp] - recon[idx-sp-1] - recon[idx-sp-w] + recon[idx-sp-w-1]
				x := data[idx]
				fi := (x - pv) / twoEB
				if fi <= lim && fi >= -lim {
					ri := math.Round(fi)
					if ri <= fradius && ri >= -fradius {
						rv := pv + twoEB*ri
						if d := x - rv; d <= eb && d >= -eb {
							if f32 {
								rv = float64(float32(rv))
								if d := x - rv; !(d <= eb && d >= -eb) {
									s.escape(idx, x)
									continue
								}
							}
							code := center + int(ri)
							codes[idx] = code
							recon[idx] = rv
							hist[code]++
							continue
						}
					}
				}
				s.escape(idx, x)
			}
		}
	}
}

// compress2DL2: two-layer 2D stencil (8 interior terms) with explicit
// reduced stencils for the first two rows and columns.
func (s *compressState) compress2DL2(h, w int) {
	recon := s.recon
	w2 := 2 * w
	// Row 0: pure 1D two-layer prediction along the row.
	s.point(0, 0)
	if w > 1 {
		s.point(1, recon[0])
	}
	for j := 2; j < w; j++ {
		s.point(j, 2*recon[j-1]-recon[j-2])
	}
	// Row 1: one layer available vertically.
	if h > 1 {
		s.point(w, recon[0])
		if w > 1 {
			s.point(w+1, recon[w]+recon[1]-recon[0])
		}
		for idx := w + 2; idx < w2; idx++ {
			s.point(idx, 2*recon[idx-1]-recon[idx-2]+
				recon[idx-w]-2*recon[idx-w-1]+recon[idx-w-2])
		}
	}
	for i := 2; i < h; i++ {
		row := i * w
		s.point(row, 2*recon[row-w]-recon[row-w2])
		if w > 1 {
			idx := row + 1
			s.point(idx, recon[idx-1]+2*recon[idx-w]-2*recon[idx-w-1]-
				recon[idx-w2]+recon[idx-w2-1])
		}
		for idx := row + 2; idx < row+w; idx++ {
			s.point(idx, 2*recon[idx-1]-recon[idx-2]+
				2*recon[idx-w]-4*recon[idx-w-1]+2*recon[idx-w-2]-
				recon[idx-w2]+2*recon[idx-w2-1]-recon[idx-w2-2])
		}
	}
}

// compress3DL2: the 26-term interior stencil is walked in flat form
// (hoisted deltas and coefficients, no Term structs); points within two
// layers of a low border take the generic reduced-stencil path.
func (s *compressState) compress3DL2(d, h, w int, pred *predictor.Predictor) {
	recon := s.recon
	fs := pred.Flat()
	deltas, coefs := fs.Deltas, fs.Coefs
	sp := h * w
	coord := make([]int, 3)
	for i := 0; i < d; i++ {
		coord[0] = i
		for j := 0; j < h; j++ {
			coord[1] = j
			row := i*sp + j*w
			lead := w
			if i >= 2 && j >= 2 {
				lead = 2
				if lead > w {
					lead = w
				}
			}
			for k := 0; k < lead; k++ {
				coord[2] = k
				s.point(row+k, pred.Predict(recon, row+k, coord))
			}
			for idx := row + lead; idx < row+w; idx++ {
				var f float64
				for t, dt := range deltas {
					f += coefs[t] * recon[idx+dt]
				}
				s.point(idx, f)
			}
		}
	}
}

// --- decompression ----------------------------------------------------------

// decompressState mirrors compressState for the reconstruction scan.
type decompressState struct {
	qparams
	recon []float64
	codes []int

	r        *bitstream.Reader
	dec      *binrep.Decoder
	outliers int
	err      error
}

// point reconstructs the value at idx from its quantization code and the
// prediction pv. Outlier decode errors stick in s.err; the scan keeps
// running (the bitstream reader keeps failing harmlessly) and the caller
// checks s.err once at the end.
func (s *decompressState) point(idx int, pv float64) {
	code := s.codes[idx]
	if code == quant.UnpredictableCode {
		v, err := decodeOutlier(s.dec, s.r, s.dtype)
		if err != nil && s.err == nil {
			s.err = fmt.Errorf("%w: outlier %d: %v", ErrCorrupt, s.outliers, err)
		}
		s.recon[idx] = v
		s.outliers++
		return
	}
	rv := pv + s.twoEB*float64(code-s.center)
	if s.f32 {
		rv = float64(float32(rv))
	}
	s.recon[idx] = rv
}

// scanGeneric is the reference reconstruction path.
func (s *decompressState) scanGeneric(dims []int, pred *predictor.Predictor) {
	coord := make([]int, len(dims))
	for idx := range s.recon {
		// The prediction is only needed for coded points, but computing it
		// unconditionally costs nothing extra on this path.
		s.point(idx, pred.Predict(s.recon, idx, coord))
		advanceCoord(coord, dims)
	}
}

// scan mirrors (*compressState).scan for decompression.
func (s *decompressState) scan(dims []int, layers int, pred *predictor.Predictor, kernels bool) bool {
	if kernels {
		switch {
		case layers == 1 && len(dims) == 1:
			s.decompress1DL1(dims[0])
			return true
		case layers == 1 && len(dims) == 2:
			s.decompress2DL1(dims[0], dims[1])
			return true
		case layers == 1 && len(dims) == 3:
			s.decompress3DL1(dims[0], dims[1], dims[2])
			return true
		case layers == 2 && len(dims) == 2:
			s.decompress2DL2(dims[0], dims[1])
			return true
		case layers == 2 && len(dims) == 3:
			s.decompress3DL2(dims[0], dims[1], dims[2], pred)
			return true
		}
	}
	s.scanGeneric(dims, pred)
	return false
}

func (s *decompressState) decompress1DL1(n int) {
	recon := s.recon
	s.point(0, 0)
	for i := 1; i < n; i++ {
		s.point(i, recon[i-1])
	}
}

func (s *decompressState) decompress2DL1(h, w int) {
	recon := s.recon
	s.point(0, 0)
	for j := 1; j < w; j++ {
		s.point(j, recon[j-1])
	}
	for i := 1; i < h; i++ {
		row := i * w
		s.point(row, recon[row-w])
		for idx := row + 1; idx < row+w; idx++ {
			s.point(idx, recon[idx-1]+recon[idx-w]-recon[idx-w-1])
		}
	}
}

func (s *decompressState) decompress3DL1(d, h, w int) {
	recon := s.recon
	sp := h * w
	s.point(0, 0)
	for k := 1; k < w; k++ {
		s.point(k, recon[k-1])
	}
	for j := 1; j < h; j++ {
		row := j * w
		s.point(row, recon[row-w])
		for idx := row + 1; idx < row+w; idx++ {
			s.point(idx, recon[idx-1]+recon[idx-w]-recon[idx-w-1])
		}
	}
	for i := 1; i < d; i++ {
		base := i * sp
		s.point(base, recon[base-sp])
		for idx := base + 1; idx < base+w; idx++ {
			s.point(idx, recon[idx-1]+recon[idx-sp]-recon[idx-sp-1])
		}
		for j := 1; j < h; j++ {
			row := base + j*w
			s.point(row, recon[row-w]+recon[row-sp]-recon[row-sp-w])
			for idx := row + 1; idx < row+w; idx++ {
				s.point(idx,
					recon[idx-1]+recon[idx-w]-recon[idx-w-1]+
						recon[idx-sp]-recon[idx-sp-1]-recon[idx-sp-w]+recon[idx-sp-w-1])
			}
		}
	}
}

func (s *decompressState) decompress2DL2(h, w int) {
	recon := s.recon
	w2 := 2 * w
	s.point(0, 0)
	if w > 1 {
		s.point(1, recon[0])
	}
	for j := 2; j < w; j++ {
		s.point(j, 2*recon[j-1]-recon[j-2])
	}
	if h > 1 {
		s.point(w, recon[0])
		if w > 1 {
			s.point(w+1, recon[w]+recon[1]-recon[0])
		}
		for idx := w + 2; idx < w2; idx++ {
			s.point(idx, 2*recon[idx-1]-recon[idx-2]+
				recon[idx-w]-2*recon[idx-w-1]+recon[idx-w-2])
		}
	}
	for i := 2; i < h; i++ {
		row := i * w
		s.point(row, 2*recon[row-w]-recon[row-w2])
		if w > 1 {
			idx := row + 1
			s.point(idx, recon[idx-1]+2*recon[idx-w]-2*recon[idx-w-1]-
				recon[idx-w2]+recon[idx-w2-1])
		}
		for idx := row + 2; idx < row+w; idx++ {
			s.point(idx, 2*recon[idx-1]-recon[idx-2]+
				2*recon[idx-w]-4*recon[idx-w-1]+2*recon[idx-w-2]-
				recon[idx-w2]+2*recon[idx-w2-1]-recon[idx-w2-2])
		}
	}
}

func (s *decompressState) decompress3DL2(d, h, w int, pred *predictor.Predictor) {
	recon := s.recon
	fs := pred.Flat()
	deltas, coefs := fs.Deltas, fs.Coefs
	sp := h * w
	coord := make([]int, 3)
	for i := 0; i < d; i++ {
		coord[0] = i
		for j := 0; j < h; j++ {
			coord[1] = j
			row := i*sp + j*w
			lead := w
			if i >= 2 && j >= 2 {
				lead = 2
				if lead > w {
					lead = w
				}
			}
			for k := 0; k < lead; k++ {
				coord[2] = k
				s.point(row+k, pred.Predict(recon, row+k, coord))
			}
			for idx := row + lead; idx < row+w; idx++ {
				var f float64
				for t, dt := range deltas {
					f += coefs[t] * recon[idx+dt]
				}
				s.point(idx, f)
			}
		}
	}
}
