package core

import (
	"math"

	"repro/internal/grid"
	"repro/internal/predictor"
	"repro/internal/quant"
)

// HitRates holds the two prediction-hitting-rate variants of the paper's
// Table II. A point is "predictable" here when the difference between its
// original value and its predicted value is within the error bound
// (Section III-B) — the strictest, interval-count-independent definition.
type HitRates struct {
	// Orig is R^orig_PH: prediction performed on original data values.
	Orig float64
	// Decomp is R^decomp_PH: prediction performed on preceding decompressed
	// values, i.e. under the feedback loop the real compressor must use.
	Decomp float64
}

// ProbeHitRates measures both hitting rates for the given parameters.
// It mirrors the analysis behind Table II: the Orig rate is what an
// idealized compressor could score, and the Decomp rate is what the
// error-controlled compressor actually achieves once prediction runs on
// reconstructed values.
func ProbeHitRates(a *grid.Array, p Params) (HitRates, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return HitRates{}, err
	}
	_, _, valueRange := a.Range()
	eb := p.effectiveBound(valueRange)

	pred, err := predictor.New(a.Dims, p.Layers)
	if err != nil {
		return HitRates{}, err
	}
	q, err := quant.New(eb, p.IntervalBits)
	if err != nil {
		return HitRates{}, err
	}

	n := a.Len()
	data := a.Data
	coord := make([]int, a.NDims())
	origHits := 0
	for idx := 0; idx < n; idx++ {
		pv := pred.Predict(data, idx, coord)
		if math.Abs(data[idx]-pv) <= eb {
			origHits++
		}
		advanceCoord(coord, a.Dims)
	}

	// Decomp rate: run the real reconstruction loop. A decomp "hit" is a
	// point predicted within eb of its original value (equivalently, its
	// quantization code is the centre code).
	recon := make([]float64, n)
	for i := range coord {
		coord[i] = 0
	}
	decompHits := 0
	for idx := 0; idx < n; idx++ {
		x := data[idx]
		pv := pred.Predict(recon, idx, coord)
		if math.Abs(x-pv) <= eb {
			decompHits++
		}
		code, rv, ok := q.Quantize(x, pv)
		if ok {
			rv = snap(rv, p.OutputType)
			if !(math.Abs(x-rv) <= eb) {
				ok = false
			}
		}
		if ok {
			_ = code
			recon[idx] = rv
		} else {
			// The probe does not need the outlier bitstream; reconstruct
			// the outlier the same way the compressor would bound it. The
			// worst-case representative is the original value itself (the
			// compressor's binrep reconstruction is within eb of it).
			recon[idx] = snap(x, p.OutputType)
		}
		advanceCoord(coord, a.Dims)
	}

	return HitRates{
		Orig:   float64(origHits) / float64(n),
		Decomp: float64(decompHits) / float64(n),
	}, nil
}
