// Package core implements the SZ-1.4 error-bounded lossy compressor of
// Tao, Di, Chen and Cappello (IPDPS 2017): multilayer multidimensional
// prediction (Section III), adaptive error-controlled quantization with
// variable-length encoding (Section IV / AEQVE), and binary-representation
// analysis for unpredictable points.
//
// The pipeline per data point, in scan order (lowest dimension fastest):
//
//  1. predict the value from preceding *reconstructed* values with the
//     n-layer predictor — using reconstructed (not original) values is what
//     makes the user error bound hold (paper Section III-B);
//  2. quantize the prediction residual into one of 2^m−1 uniform intervals
//     of width 2·eb, falling back to the unpredictable escape code 0;
//  3. Huffman-encode the quantization codes (alphabet 2^m, m may exceed 8)
//     and store escapes via error-bounded IEEE truncation.
//
// The guarantee |xᵢ − x̃ᵢ| ≤ eb holds for every point, every mode.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/quant"
)

// maxStreams caps Params.Streams at the entropy layer's limit.
const maxStreams = huffman.MaxStreams

// Format constants.
const (
	// Magic identifies an SZ-Go stream.
	Magic = "SZGO"
	// Version is the serial stream format version: one Huffman bit
	// stream, codebook and outliers bit-packed back to back.
	Version = 1
	// VersionMulti is the multi-stream format version: the header gains
	// a sub-stream count and a flags byte, and the payload is framed in
	// byte-aligned sections (optional codebook, sub-stream length table,
	// N independent Huffman sub-streams, outliers) so the decoder can
	// run N interleaved decode states. Streams with Streams == 1 and an
	// internal codebook are emitted as Version 1, byte-identical to
	// previous releases.
	VersionMulti = 2
)

// Header flag bits (VersionMulti streams only).
const (
	// flagSharedCodebook marks a payload that omits the codebook: the
	// stream decodes only with an externally supplied codebook (the
	// blocked v3 container's shared per-container codebook section).
	flagSharedCodebook = 1 << 0
)

// DefaultLayers is the paper's default prediction layer count (n = 1, the
// Lorenzo special case; Section III-B: "The default value in our compressor
// is n = 1").
const DefaultLayers = 1

// DefaultIntervalBits is the default quantization code width m (255
// intervals, the paper's reference configuration in Fig. 3).
const DefaultIntervalBits = 8

// BoundMode selects how the effective absolute error bound is derived.
type BoundMode uint8

const (
	// BoundAbs uses AbsBound directly.
	BoundAbs BoundMode = iota + 1
	// BoundRel multiplies RelBound by the data value range (value-range-based
	// relative error, the paper's primary mode).
	BoundRel
	// BoundAbsAndRel enforces both (effective bound = min of the two),
	// matching the paper's "one bound or both" formulation.
	BoundAbsAndRel
)

func (m BoundMode) String() string {
	switch m {
	case BoundAbs:
		return "abs"
	case BoundRel:
		return "rel"
	case BoundAbsAndRel:
		return "abs+rel"
	}
	return fmt.Sprintf("BoundMode(%d)", uint8(m))
}

// Params configures compression.
type Params struct {
	// Mode selects absolute, value-range-relative, or combined bounding.
	Mode BoundMode
	// AbsBound is the absolute error bound eb_abs (Mode Abs or AbsAndRel).
	AbsBound float64
	// RelBound is the value-range-based relative bound eb_rel (Mode Rel or
	// AbsAndRel).
	RelBound float64
	// Layers is the predictor layer count n in [1, 8]; 0 means DefaultLayers.
	Layers int
	// IntervalBits is the quantization code width m in [2, 16]; 2^m−1
	// intervals. 0 means DefaultIntervalBits.
	IntervalBits int
	// HitRateThreshold is θ for the adaptive advice; 0 means
	// quant.DefaultHitRateThreshold.
	HitRateThreshold float64
	// OutputType records the precision of the source data; reconstructions
	// are snapped to it so the bound holds in the source type. 0 means
	// grid.Float64.
	OutputType grid.DType
	// Streams is the number of interleaved Huffman sub-streams per
	// stream (1..huffman.MaxStreams; 0 means 1). One stream keeps the
	// serial Version-1 layout byte-identical to previous releases; more
	// streams switch to the VersionMulti layout, whose decoder overlaps
	// the sub-streams' decode chains for instruction-level parallelism.
	Streams int
	// Stages, when non-nil, receives named sub-stage timings from inside
	// the pipeline (currently "huffbuild" per codebook build). It must be
	// safe for concurrent use: blocked containers compress slabs from
	// many workers, each reporting through the same hook.
	Stages func(name string, d time.Duration)
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (p Params) withDefaults() Params {
	if p.Layers == 0 {
		p.Layers = DefaultLayers
	}
	if p.IntervalBits == 0 {
		p.IntervalBits = DefaultIntervalBits
	}
	if p.HitRateThreshold == 0 {
		p.HitRateThreshold = quant.DefaultHitRateThreshold
	}
	if p.OutputType == 0 {
		p.OutputType = grid.Float64
	}
	if p.Mode == 0 {
		p.Mode = BoundRel
	}
	if p.Streams == 0 {
		p.Streams = 1
	}
	return p
}

// Validate checks parameter consistency (after defaulting).
func (p Params) Validate() error {
	q := p.withDefaults()
	switch q.Mode {
	case BoundAbs:
		if !(q.AbsBound > 0) || math.IsInf(q.AbsBound, 0) {
			return fmt.Errorf("core: AbsBound %v must be positive and finite", q.AbsBound)
		}
	case BoundRel:
		if !(q.RelBound > 0) || q.RelBound >= 1 {
			return fmt.Errorf("core: RelBound %v must be in (0,1)", q.RelBound)
		}
	case BoundAbsAndRel:
		if !(q.AbsBound > 0) || math.IsInf(q.AbsBound, 0) {
			return fmt.Errorf("core: AbsBound %v must be positive and finite", q.AbsBound)
		}
		if !(q.RelBound > 0) || q.RelBound >= 1 {
			return fmt.Errorf("core: RelBound %v must be in (0,1)", q.RelBound)
		}
	default:
		return fmt.Errorf("core: unknown bound mode %v", q.Mode)
	}
	if q.Layers < 1 || q.Layers > 8 {
		return fmt.Errorf("core: Layers %d out of range [1,8]", q.Layers)
	}
	if q.IntervalBits < quant.MinBits || q.IntervalBits > quant.MaxBits {
		return fmt.Errorf("core: IntervalBits %d out of range [%d,%d]",
			q.IntervalBits, quant.MinBits, quant.MaxBits)
	}
	if q.HitRateThreshold <= 0 || q.HitRateThreshold >= 1 {
		return fmt.Errorf("core: HitRateThreshold %v out of (0,1)", q.HitRateThreshold)
	}
	if q.OutputType != grid.Float32 && q.OutputType != grid.Float64 {
		return fmt.Errorf("core: unsupported OutputType %v", q.OutputType)
	}
	if q.Streams < 1 || q.Streams > maxStreams {
		return fmt.Errorf("core: Streams %d out of range [1,%d]", q.Streams, maxStreams)
	}
	return nil
}

// effectiveBound resolves the absolute bound for a data set with the given
// value range. Constant data (range 0) in relative mode degrades to the
// smallest positive bound, which keeps the quantizer well-defined while the
// bound stays trivially satisfied.
func (p Params) effectiveBound(valueRange float64) float64 {
	var eb float64
	switch p.Mode {
	case BoundAbs:
		eb = p.AbsBound
	case BoundRel:
		eb = p.RelBound * valueRange
	case BoundAbsAndRel:
		eb = math.Min(p.AbsBound, p.RelBound*valueRange)
	}
	if eb <= 0 || math.IsNaN(eb) {
		eb = math.SmallestNonzeroFloat64
	}
	return eb
}

// Header describes a compressed stream.
type Header struct {
	Version      uint8
	DType        grid.DType // precision of the source data
	Dims         []int
	AbsBound     float64 // effective absolute bound used
	Layers       int
	IntervalBits int
	NumOutliers  int
	PayloadBits  uint64
	// Streams is the interleaved Huffman sub-stream count (1 for
	// Version-1 streams).
	Streams int
	// SharedCodebook marks a VersionMulti payload that omits its
	// codebook; decoding requires the container-level codebook.
	SharedCodebook bool
}

// N returns the element count.
func (h *Header) N() int {
	n := 1
	for _, d := range h.Dims {
		n *= d
	}
	return n
}

// Stats reports what happened during a compression.
type Stats struct {
	// N is the element count.
	N int
	// Predictable is the number of points representable by a quantization
	// code (paper: N_PH).
	Predictable int
	// HitRate is Predictable/N (paper: R_PH).
	HitRate float64
	// EffAbsBound is the absolute bound actually enforced.
	EffAbsBound float64
	// CompressedBytes is the size of the produced stream.
	CompressedBytes int
	// OriginalBytes is N × sizeof(OutputType).
	OriginalBytes int
	// CompressionFactor is OriginalBytes/CompressedBytes.
	CompressionFactor float64
	// BitRate is CompressedBytes×8/N.
	BitRate float64
	// Histogram counts quantization codes (length 2^m, index 0 = escapes).
	Histogram []uint64
	// Advice is the adaptive-interval recommendation (Section IV-B).
	Advice quant.Advice
	// Stream composition, in bits: the Huffman codebook, the
	// variable-length-coded quantization codes, and the binary-
	// representation outlier data. Their sum plus the fixed header and
	// CRC is the stream size.
	TableBits   uint64
	CodeBits    uint64
	OutlierBits uint64
	// FixedWidthCodeBits is what the code stream would cost without
	// variable-length encoding (m bits per value) — the AEQVE ablation:
	// CodeBits / FixedWidthCodeBits is the VLE gain.
	FixedWidthCodeBits uint64
}

// ErrCorrupt is returned by Decompress for malformed streams.
var ErrCorrupt = errors.New("core: corrupt stream")

// snap rounds a reconstruction to the output precision. Compressor and
// decompressor must apply the identical snap so their reconstruction arrays
// stay bit-for-bit equal (prediction determinism).
func snap(v float64, t grid.DType) float64 {
	if t == grid.Float32 {
		return float64(float32(v))
	}
	return v
}
