package obs

// Runtime gauges every daemon wants on its scrape: goroutine count,
// heap, and GC behavior. Registered once per registry; sampled live at
// scrape time so there is no background goroutine to manage.

import (
	"runtime"
)

// RegisterRuntime adds process runtime gauges to the registry under the
// given metric prefix ("szd" -> szd_goroutines, szd_heap_alloc_bytes,
// szd_gc_pause_total_seconds, szd_gc_cycles_total).
func RegisterRuntime(r *Registry, prefix string) {
	r.GaugeFunc(prefix+"_goroutines", "Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.Func(prefix+"_heap_alloc_bytes", "Bytes of allocated heap objects.",
		typeGauge, nil, func(emit func(float64, ...string)) {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			emit(float64(m.HeapAlloc))
		})
	r.Func(prefix+"_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.",
		typeCounter, nil, func(emit func(float64, ...string)) {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			emit(float64(m.PauseTotalNs) / 1e9)
		})
	r.Func(prefix+"_gc_cycles_total", "Completed GC cycles.",
		typeCounter, nil, func(emit func(float64, ...string)) {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			emit(float64(m.NumGC))
		})
}
