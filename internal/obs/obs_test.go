package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := StartTrace("compress", "", "")
	if len(tr.TraceID) != 32 || len(tr.SpanID) != 16 || len(tr.RequestID) != 16 {
		t.Fatalf("bad ID lengths: trace=%q span=%q req=%q", tr.TraceID, tr.SpanID, tr.RequestID)
	}
	if tr.Remote {
		t.Fatal("fresh trace marked remote")
	}
	hdr := tr.Traceparent()
	tid, pid, ok := ParseTraceparent(hdr)
	if !ok || tid != tr.TraceID || pid != tr.SpanID {
		t.Fatalf("round trip failed: %q -> (%q, %q, %v)", hdr, tid, pid, ok)
	}

	child := StartTrace("compress", hdr, tr.RequestID)
	if !child.Remote || child.TraceID != tr.TraceID || child.ParentID != tr.SpanID {
		t.Fatalf("continuation broken: %+v", child)
	}
	if child.RequestID != tr.RequestID {
		t.Fatalf("request ID not adopted: %q != %q", child.RequestID, tr.RequestID)
	}
	if child.SpanID == tr.SpanID {
		t.Fatal("child reused parent span ID")
	}
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"xx",
		"00-short-0011223344556677-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version ff
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero parent
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", // non-hex
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted %q", h)
		}
	}
	if _, _, ok := ParseTraceparent("00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01"); !ok {
		t.Error("rejected uppercase hex")
	}
}

func TestSpanAggregation(t *testing.T) {
	tr := StartTrace("compress", "", "")
	sp := tr.StartSpan("encode")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Observe("huffbuild", 2*time.Millisecond)
	tr.Observe("huffbuild", 3*time.Millisecond)
	tr.Finish(200)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 aggregated spans, got %v", spans)
	}
	var huff SpanData
	for _, s := range spans {
		if s.Name == "huffbuild" {
			huff = s
		}
	}
	if huff.Count != 2 || huff.Dur != 5*time.Millisecond {
		t.Fatalf("huffbuild aggregation wrong: %+v", huff)
	}
	if tr.Status() != 200 || tr.Total() <= 0 {
		t.Fatalf("finish not sealed: status=%d total=%v", tr.Status(), tr.Total())
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	sp.End()
	tr.Observe("y", time.Second)
	tr.Finish(200)
	tr.MergeServerTiming("be-", "a;dur=1")
	if tr.ServerTiming() != "" || tr.Traceparent() != "" || tr.Spans() != nil {
		t.Fatal("nil trace leaked data")
	}
	var rec *Recorder
	rec.Done(tr)
}

func TestServerTimingRendering(t *testing.T) {
	tr := StartTrace("compress", "", "")
	tr.Observe("encode", 1500*time.Microsecond)
	tr.MergeServerTiming("be-", "store_write;dur=0.25, total;dur=2")
	tr.Finish(200)
	h := tr.ServerTiming()
	if !strings.Contains(h, "encode;dur=1.5") {
		t.Fatalf("missing encode entry: %q", h)
	}
	if !strings.Contains(h, "be-store_write;dur=0.25") || !strings.Contains(h, "be-total;dur=2") {
		t.Fatalf("downstream entries not merged with prefix: %q", h)
	}
	if !strings.Contains(h, "total;dur=") {
		t.Fatalf("missing total: %q", h)
	}

	entries := ParseServerTiming(h)
	byName := map[string]time.Duration{}
	for _, e := range entries {
		byName[e.Name] = e.Dur
	}
	if byName["encode"] != 1500*time.Microsecond || byName["be-total"] != 2*time.Millisecond {
		t.Fatalf("parse mismatch: %+v", byName)
	}

	table := FormatTimingTable(entries)
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != len(entries) || !strings.Contains(lines[0], "total") {
		t.Fatalf("table should lead with total:\n%s", table)
	}
}

func TestRingAndDebugHandler(t *testing.T) {
	rg := NewRing(2)
	for i := 0; i < 3; i++ {
		tr := StartTrace("compress", "", "")
		tr.Observe("encode", time.Millisecond)
		tr.Finish(200 + i)
		rg.Add(snapshot(tr))
	}
	recs := rg.Snapshot()
	if len(recs) != 2 || recs[0].Status != 202 || recs[1].Status != 201 {
		t.Fatalf("ring eviction/order wrong: %+v", recs)
	}

	w := httptest.NewRecorder()
	rg.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces?limit=1", nil))
	var out struct {
		Traces []TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body.String())
	}
	if len(out.Traces) != 1 || len(out.Traces[0].Spans) != 1 {
		t.Fatalf("limit/spans wrong: %+v", out.Traces)
	}

	w = httptest.NewRecorder()
	rg.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces?trace_id="+recs[1].TraceID, nil))
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 || out.Traces[0].TraceID != recs[1].TraceID {
		t.Fatalf("trace_id filter wrong: %+v", out.Traces)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("szd_requests_total", "Requests.", "endpoint", "codec", "status")
	reqs.Inc("compress", "blocked", "200")
	reqs.Inc("compress", "blocked", "200")
	reqs.Inc("decompress", "v1", "200")
	bytesIn := r.Gauge("szd_inflight_bytes", "Inflight bytes.")
	bytesIn.Set(1 << 30)
	lat := r.Histogram("szd_request_seconds", "Latency.", nil, "endpoint")
	lat.Observe(0.003, "compress")
	lat.Observe(7, "compress")
	lat.Observe(1e9, "compress") // beyond last bound -> +Inf bucket only
	r.GaugeFunc("szd_live", "Live gauge.", func() float64 { return 3.5 })
	RegisterRuntime(r, "szd")

	text := r.Expose()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`szd_requests_total{endpoint="compress",codec="blocked",status="200"} 2`,
		"szd_inflight_bytes 1073741824", // integer rendering, parseLoadMetrics depends on it
		`szd_request_seconds_bucket{endpoint="compress",le="+Inf"} 3`,
		`szd_request_seconds_count{endpoint="compress"} 3`,
		"szd_live 3.5",
		"# TYPE szd_goroutines gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	exp, err := ParseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("szd_request_seconds_sum", map[string]string{"endpoint": "compress"}); !ok || v < 7 {
		t.Fatalf("sum wrong: %v %v", v, ok)
	}
}

func TestValidateCatchesBrokenHistograms(t *testing.T) {
	broken := "# TYPE h histogram\n" +
		`h_bucket{le="1"} 2` + "\n" +
		"h_sum 3\nh_count 2\n" // no +Inf
	if err := ValidateExposition(broken); err == nil {
		t.Fatal("missing +Inf bucket not caught")
	}
	inconsistent := "# TYPE h histogram\n" +
		`h_bucket{le="1"} 2` + "\n" +
		`h_bucket{le="+Inf"} 3` + "\n" +
		"h_sum 3\nh_count 2\n" // count != +Inf
	if err := ValidateExposition(inconsistent); err == nil {
		t.Fatal("_count/+Inf mismatch not caught")
	}
	undeclared := "some_metric 1\n"
	if err := ValidateExposition(undeclared); err == nil {
		t.Fatal("undeclared family not caught")
	}
}

func TestRecorderSlowLog(t *testing.T) {
	rec := NewRecorder(4, time.Nanosecond, nil)
	tr := StartTrace("compress", "", "")
	tr.Observe("encode", time.Millisecond)
	tr.Finish(200)
	rec.Done(tr) // must not panic with default logger
	if got := len(rec.Ring.Snapshot()); got != 1 {
		t.Fatalf("ring has %d records", got)
	}
}
