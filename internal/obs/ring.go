package obs

// The trace ring and the Recorder: finished traces land in a bounded
// in-memory ring served as JSON on /debug/traces, and requests slower
// than a threshold are logged structured through log/slog — the "why
// was this request slow" surface when no collector is attached.

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// DefaultRingSize is how many finished traces /debug/traces retains.
const DefaultRingSize = 256

// TraceRecord is the ring's immutable snapshot of a finished trace.
type TraceRecord struct {
	TraceID   string        `json:"trace_id"`
	SpanID    string        `json:"span_id"`
	ParentID  string        `json:"parent_id,omitempty"`
	RequestID string        `json:"request_id"`
	Endpoint  string        `json:"endpoint"`
	Status    int           `json:"status"`
	Start     time.Time     `json:"start"`
	Total     time.Duration `json:"total_ns"`
	Spans     []SpanData    `json:"spans"`
	Remote    []TimingEntry `json:"downstream,omitempty"`
}

func snapshot(t *Trace) TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := TraceRecord{
		TraceID:   t.TraceID,
		SpanID:    t.SpanID,
		ParentID:  t.ParentID,
		RequestID: t.RequestID,
		Endpoint:  t.Endpoint,
		Status:    t.status,
		Start:     t.start,
		Total:     t.total,
		Spans:     append([]SpanData(nil), t.spans...),
	}
	if len(t.remote) > 0 {
		rec.Remote = append([]TimingEntry(nil), t.remote...)
	}
	return rec
}

// Ring is a bounded buffer of recent trace records.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	full bool
}

// NewRing returns a ring holding the last n traces (n <= 0 uses
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{buf: make([]TraceRecord, n)}
}

// Add records a snapshot.
func (rg *Ring) Add(rec TraceRecord) {
	rg.mu.Lock()
	rg.buf[rg.next] = rec
	rg.next++
	if rg.next == len(rg.buf) {
		rg.next, rg.full = 0, true
	}
	rg.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (rg *Ring) Snapshot() []TraceRecord {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	n := rg.next
	if rg.full {
		n = len(rg.buf)
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rg.buf[(rg.next-1-i+len(rg.buf))%len(rg.buf)])
	}
	return out
}

// ServeHTTP serves the ring as JSON: {"traces":[...]} newest first.
// ?limit=N bounds the count; ?trace_id=<hex> filters to one trace (the
// cross-tier debugging entry point: the same ID appears on router and
// backend).
func (rg *Ring) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	recs := rg.Snapshot()
	if want := r.URL.Query().Get("trace_id"); want != "" {
		kept := recs[:0]
		for _, rec := range recs {
			if rec.TraceID == want {
				kept = append(kept, rec)
			}
		}
		recs = kept
	}
	if ls := r.URL.Query().Get("limit"); ls != "" {
		if n, err := strconv.Atoi(ls); err == nil && n >= 0 && n < len(recs) {
			recs = recs[:n]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"traces": recs})
}

// Recorder fans a finished trace out to the ring and, above the slow
// threshold, to the structured log.
type Recorder struct {
	Ring *Ring
	// SlowThreshold is the total-duration floor for slow-request logs;
	// <= 0 disables them.
	SlowThreshold time.Duration
	// Log receives slow-request records (nil uses slog.Default).
	Log *slog.Logger
}

// NewRecorder builds a Recorder with a fresh ring of ringSize.
func NewRecorder(ringSize int, slow time.Duration, log *slog.Logger) *Recorder {
	return &Recorder{Ring: NewRing(ringSize), SlowThreshold: slow, Log: log}
}

// Done seals nothing (call Trace.Finish first); it snapshots the trace
// into the ring and emits a slow-request log line when warranted.
func (rec *Recorder) Done(t *Trace) {
	if rec == nil || t == nil {
		return
	}
	snap := snapshot(t)
	if rec.Ring != nil {
		rec.Ring.Add(snap)
	}
	if rec.SlowThreshold > 0 && snap.Total >= rec.SlowThreshold {
		lg := rec.Log
		if lg == nil {
			lg = slog.Default()
		}
		attrs := []any{
			slog.String("trace_id", snap.TraceID),
			slog.String("request_id", snap.RequestID),
			slog.String("endpoint", snap.Endpoint),
			slog.Int("status", snap.Status),
			slog.Duration("total", snap.Total),
		}
		for _, sp := range snap.Spans {
			attrs = append(attrs, slog.Duration("stage."+sp.Name, sp.Dur))
		}
		for _, e := range snap.Remote {
			attrs = append(attrs, slog.Duration("stage."+e.Name, e.Dur))
		}
		lg.Warn("slow request", attrs...)
	}
}
