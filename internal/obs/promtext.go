package obs

// A small Prometheus text-exposition parser used by tests to validate
// whole scrapes: every sample line must parse, every series must belong
// to a declared family, and histograms must carry a +Inf bucket with
// _count equal to its cumulative value (satellite 3 of ISSUE 8 — the
// old hand-rolled writers could drift).

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed scrape: family types by name plus all samples.
type Exposition struct {
	Types   map[string]string // family name -> counter|gauge|histogram
	Samples []Sample
}

// ParseExposition parses Prometheus text format. It is strict about the
// subset this repo emits (HELP/TYPE comments, quoted label values, one
// value per line, no timestamps).
func ParseExposition(text string) (*Exposition, error) {
	exp := &Exposition{Types: map[string]string{}}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch fields[3] {
			case typeCounter, typeGauge, typeHistogram:
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, fields[3])
			}
			exp.Types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP and other comments
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	return exp, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for body != "" {
			eq := strings.Index(body, "=")
			if eq < 0 {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			name := body[:eq]
			if !validMetricName(name) {
				return s, fmt.Errorf("invalid label name %q", name)
			}
			val, err := strconv.QuotedPrefix(body[eq+1:])
			if err != nil {
				return s, fmt.Errorf("invalid label value in %q: %v", line, err)
			}
			q, err := strconv.Unquote(val)
			if err != nil {
				return s, fmt.Errorf("invalid label value in %q: %v", line, err)
			}
			s.Labels[name] = q
			body = strings.TrimPrefix(body[eq+1+len(val):], ",")
		}
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := parsePromValue(rest)
	if err != nil {
		return s, fmt.Errorf("invalid value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parsePromValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// baseFamily strips histogram sample suffixes to recover the family a
// series belongs to.
func (e *Exposition) baseFamily(name string) (string, bool) {
	if _, ok := e.Types[name]; ok {
		return name, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if e.Types[base] == typeHistogram {
				return base, true
			}
		}
	}
	return "", false
}

// Validate checks structural invariants over the whole scrape: every
// sample belongs to a declared family; counters and histogram buckets
// are non-negative; every histogram series has a +Inf bucket,
// monotonically non-decreasing buckets, and _count equal to its +Inf
// cumulative count; a histogram with observations has a _sum.
func (e *Exposition) Validate() error {
	type histState struct {
		inf      float64
		hasInf   bool
		count    float64
		hasCount bool
		hasSum   bool
		lastLe   float64
		lastCum  float64
	}
	hists := map[string]*histState{}
	histKey := func(s Sample, base string) string {
		var parts []string
		for k, v := range s.Labels {
			if k != "le" {
				parts = append(parts, k+"="+v)
			}
		}
		// Small label sets; insertion order of a map range is unstable, so
		// sort via a simple insertion pass.
		for i := 1; i < len(parts); i++ {
			for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
				parts[j], parts[j-1] = parts[j-1], parts[j]
			}
		}
		return base + "{" + strings.Join(parts, ",") + "}"
	}
	for _, s := range e.Samples {
		base, ok := e.baseFamily(s.Name)
		if !ok {
			return fmt.Errorf("sample %s has no TYPE declaration", s.Name)
		}
		typ := e.Types[base]
		if typ == typeCounter && s.Value < 0 {
			return fmt.Errorf("counter %s is negative (%v)", s.Name, s.Value)
		}
		if typ != typeHistogram {
			continue
		}
		h := hists[histKey(s, base)]
		if h == nil {
			h = &histState{lastLe: math.Inf(-1)}
			hists[histKey(s, base)] = h
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, err := parsePromValue(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("%s: bad le %q", s.Name, s.Labels["le"])
			}
			if s.Value < h.lastCum {
				return fmt.Errorf("%s{le=%q}: bucket count decreased (%v < %v)",
					s.Name, s.Labels["le"], s.Value, h.lastCum)
			}
			if le <= h.lastLe {
				return fmt.Errorf("%s: le %q out of order", s.Name, s.Labels["le"])
			}
			h.lastLe, h.lastCum = le, s.Value
			if math.IsInf(le, 1) {
				h.hasInf, h.inf = true, s.Value
			}
		case strings.HasSuffix(s.Name, "_sum"):
			h.hasSum = true
		case strings.HasSuffix(s.Name, "_count"):
			h.hasCount, h.count = true, s.Value
		}
	}
	for key, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if !h.hasCount {
			return fmt.Errorf("histogram %s has no _count", key)
		}
		if !h.hasSum {
			return fmt.Errorf("histogram %s has no _sum", key)
		}
		if h.count != h.inf {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", key, h.count, h.inf)
		}
	}
	return nil
}

// Value returns the value of the sample with the given name whose
// labels all match want (extra labels on the sample are allowed), and
// whether such a sample exists.
func (e *Exposition) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// ValidateExposition parses and validates a scrape in one call.
func ValidateExposition(text string) error {
	exp, err := ParseExposition(text)
	if err != nil {
		return err
	}
	return exp.Validate()
}
