package obs

// EWMA is a concurrency-safe exponentially weighted moving average —
// the datapath half of the QoS signal tap. Handlers Observe per-
// request latencies inline (one mutex'd multiply-add, no allocation);
// the off-path control loop reads Value at its own cadence. A
// fast/slow pair of these over the same stream is a cheap trend
// detector: fast >> slow means latency is climbing right now.

import "sync"

// EWMA holds an exponentially weighted moving average with smoothing
// factor alpha in (0, 1]: higher alpha tracks faster, lower remembers
// longer.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha
// outside (0, 1] is clamped to 1 (no smoothing).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample in. The first sample seeds the average
// directly so the estimate is meaningful from the start instead of
// climbing from zero.
func (e *EWMA) Observe(v float64) {
	e.mu.Lock()
	if !e.seen {
		e.value, e.seen = v, true
	} else {
		e.value += e.alpha * (v - e.value)
	}
	e.mu.Unlock()
}

// Value returns the current average, zero before any sample.
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	v := e.value
	e.mu.Unlock()
	return v
}
