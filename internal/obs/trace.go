// Package obs is the fleet's telemetry layer: request-scoped traces
// with cheap in-process spans, W3C traceparent propagation between the
// tiers (sz client -> szrouter -> szd), Server-Timing rendering, an
// in-memory ring of recent traces served as JSON on /debug/traces,
// structured slow-request logging, and a shared Prometheus-text metrics
// registry (registry.go) that replaces the per-daemon hand-rolled
// emitters.
//
// Everything here is dependency-free and allocation-light: a span is
// two time.Now calls and one mutex-guarded append, so tracing stays on
// in production and the hot-path benchmarks budget it at <2%.
package obs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// idState seeds a splitmix64 sequence from the OS entropy pool once;
// trace/span IDs only need uniqueness, not unpredictability, and a
// counter-fed hash is ~20x cheaper than a crypto/rand read per request.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hexID(bits int) string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], nextID())
	if bits > 64 {
		binary.BigEndian.PutUint64(b[8:], nextID())
	}
	return hex.EncodeToString(b[:bits/8])
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>") and returns
// the trace and parent-span IDs. ok is false for anything malformed,
// for the version ff, and for all-zero IDs — the caller then starts a
// fresh trace instead of propagating garbage.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", "", false
	}
	if parts[0] == "ff" || !isHex(parts[0]) || !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return "", "", false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false
	}
	return strings.ToLower(parts[1]), strings.ToLower(parts[2]), true
}

// FormatTraceparent renders a traceparent header value (version 00,
// flags 01 = sampled; every request here is recorded).
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// NewTraceparent mints a root traceparent for an outbound request that
// has no server-side trace of its own (the Go client, the sz CLI). The
// daemons continue it, so every tier's /debug/traces ring shares one
// trace ID for the request.
func NewTraceparent() string {
	return FormatTraceparent(hexID(128), hexID(64))
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return len(s) > 0
}

// SpanData is one recorded stage of a trace. Same-named spans aggregate:
// Dur sums and Count tells how many times the stage ran (e.g. one
// "huffbuild" entry covering every slab of a blocked container).
type SpanData struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"` // offset from the trace start
	Dur   time.Duration `json:"dur_ns"`
	Count int           `json:"count"`
}

// Trace is one request's record: identity (trace/span/request IDs),
// wall-clock start, and the stage spans bracketed along the way.
// All methods are safe on a nil *Trace (they no-op), so deep code can
// record stages unconditionally, and safe for concurrent use (blocked
// container workers record from many goroutines).
type Trace struct {
	Endpoint  string
	TraceID   string // 32 hex chars, shared across tiers via traceparent
	SpanID    string // this hop's 16-hex span ID
	ParentID  string // inbound parent span ID; "" when this hop opened the trace
	RequestID string
	Remote    bool // trace continued from an inbound traceparent

	start  time.Time
	mu     sync.Mutex
	spans  []SpanData
	byName map[string]int // span index by name (spans aggregate by name)
	remote []TimingEntry  // merged downstream timings (be-* on the router)
	total  time.Duration
	status int
	done   bool
}

// StartTrace opens the trace for one request. traceparent, when valid,
// is continued (same trace ID, its parent-id recorded); requestID, when
// non-empty, is adopted so the tiers agree on one request identity —
// otherwise a fresh 16-hex ID is minted.
func StartTrace(endpoint, traceparent, requestID string) *Trace {
	t := &Trace{
		Endpoint:  endpoint,
		SpanID:    hexID(64),
		RequestID: requestID,
		start:     time.Now(),
	}
	if tid, pid, ok := ParseTraceparent(traceparent); ok {
		t.TraceID, t.ParentID, t.Remote = tid, pid, true
	} else {
		t.TraceID = hexID(128)
	}
	if t.RequestID == "" || !isHex(t.RequestID) || len(t.RequestID) > 32 {
		t.RequestID = hexID(64)
	}
	return t
}

// Traceparent renders the header value downstream hops should receive:
// this hop's span becomes their parent.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return FormatTraceparent(t.TraceID, t.SpanID)
}

// Span is an open stage; End closes it. The zero/nil Span is inert.
type Span struct {
	t     *Trace
	name  string
	begin time.Time
}

// StartSpan opens a stage span. Spans may overlap and nest freely; the
// trace only records (name, start offset, duration).
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, begin: time.Now()}
}

// End closes the span, folding it into the trace.
func (sp *Span) End() {
	if sp == nil || sp.t == nil {
		return
	}
	sp.t.record(sp.name, sp.begin.Sub(sp.t.start), time.Since(sp.begin))
	sp.t = nil
}

// Observe records an externally-timed stage of duration d ending now.
// Same-named observations aggregate — this is the hook deep pipeline
// code (the Huffman codebook build, one per slab) reports through.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	start := time.Since(t.start) - d
	if start < 0 {
		start = 0
	}
	t.record(name, start, d)
}

func (t *Trace) record(name string, start, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byName == nil {
		t.byName = make(map[string]int, 8)
	}
	if i, ok := t.byName[name]; ok {
		t.spans[i].Dur += d
		t.spans[i].Count++
		return
	}
	t.byName[name] = len(t.spans)
	t.spans = append(t.spans, SpanData{Name: name, Start: start, Dur: d, Count: 1})
}

// MergeServerTiming folds a downstream hop's Server-Timing value into
// this trace with the given name prefix (the router merges backend
// timings under "be-"). Unparseable entries are skipped.
func (t *Trace) MergeServerTiming(prefix, header string) {
	if t == nil || header == "" {
		return
	}
	entries := ParseServerTiming(header)
	if len(entries) == 0 {
		return
	}
	t.mu.Lock()
	for _, e := range entries {
		e.Name = prefix + e.Name
		t.remote = append(t.remote, e)
	}
	t.mu.Unlock()
}

// Finish seals the trace with the response status and total duration.
// Idempotent; spans recorded after Finish are dropped from totals but
// harmless.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.status = status
		t.total = time.Since(t.start)
	}
	t.mu.Unlock()
}

// Total returns the sealed duration (0 before Finish).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Status returns the sealed response status (0 before Finish).
func (t *Trace) Status() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Spans snapshots the recorded spans in first-start order.
func (t *Trace) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// ServerTiming renders the trace as a Server-Timing header value:
// own spans in start order, then merged downstream entries, then the
// total once the trace is finished. Durations are milliseconds, as the
// header spec requires.
func (t *Trace) ServerTiming() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, sp := range t.spans {
		appendTimingEntry(&b, sp.Name, sp.Dur)
	}
	for _, e := range t.remote {
		appendTimingEntry(&b, e.Name, e.Dur)
	}
	if t.done {
		appendTimingEntry(&b, "total", t.total)
	}
	return b.String()
}

func appendTimingEntry(b *strings.Builder, name string, d time.Duration) {
	if b.Len() > 0 {
		b.WriteString(", ")
	}
	b.WriteString(name)
	b.WriteString(";dur=")
	b.WriteString(formatMillis(d))
}

// formatMillis renders a duration in milliseconds with microsecond
// precision and no trailing zero noise.
func formatMillis(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', -1, 64)
}

// TimingEntry is one parsed Server-Timing metric.
type TimingEntry struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// ParseServerTiming parses a Server-Timing header value into entries,
// tolerating parameters other than dur and entries without one (Dur 0).
func ParseServerTiming(h string) []TimingEntry {
	var out []TimingEntry
	for _, part := range strings.Split(h, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ";")
		name := strings.TrimSpace(fields[0])
		if name == "" {
			continue
		}
		e := TimingEntry{Name: name}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok || !strings.EqualFold(strings.TrimSpace(k), "dur") {
				continue
			}
			if ms, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				e.Dur = time.Duration(ms * float64(time.Millisecond))
			}
		}
		out = append(out, e)
	}
	return out
}

// FormatTimingTable renders parsed timing entries as an aligned
// two-column text block (the `sz -timing` output), longest duration
// first for the entries after "total".
func FormatTimingTable(entries []TimingEntry) string {
	if len(entries) == 0 {
		return ""
	}
	sorted := make([]TimingEntry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool {
		if (sorted[i].Name == "total") != (sorted[j].Name == "total") {
			return sorted[i].Name == "total"
		}
		return sorted[i].Dur > sorted[j].Dur
	})
	width := 0
	for _, e := range sorted {
		if len(e.Name) > width {
			width = len(e.Name)
		}
	}
	var b strings.Builder
	for _, e := range sorted {
		fmt.Fprintf(&b, "  %-*s %10.3f ms\n", width, e.Name, float64(e.Dur)/float64(time.Millisecond))
	}
	return b.String()
}
