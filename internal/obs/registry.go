package obs

// A shared, dependency-free Prometheus-text metrics registry. szd and
// szrouter previously each hand-rolled an exposition writer; both now
// register counters, gauges, and histograms here and serve one
// deterministic scrape. Metric names are free-form (the daemons keep
// their established szd_* / szrouter_* series verbatim), families
// render in registration order, and series within a family render in
// sorted label order so scrapes diff cleanly.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefBuckets are the latency histogram bounds in seconds (log-spaced
// from 1 ms to 10 s; compression requests span ~4 decades). They are
// the same bounds szd has always scraped.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// StageBuckets extend DefBuckets downward: stages like a cache lookup
// or ring walk finish in microseconds, and a histogram that lumps
// everything under 1 ms would hide exactly the spread BENCH_7 measured
// (3 µs warm hits vs 20 ms cold recomputes).
var StageBuckets = []float64{0.000005, 0.000025, 0.0001, 0.0005, 0.001,
	0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// labelSep joins label values into series keys; 0xff never appears in
// well-formed label values (they are short ASCII names and statuses).
const labelSep = "\xff"

type series struct {
	labelVals []string
	value     float64 // counter/gauge value
	buckets   []int64 // histogram bucket counts (len(bounds)+1, +Inf last)
	sum       float64
	count     int64
}

type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	bounds  []float64 // histogram upper bounds
	mu      sync.Mutex
	series  map[string]*series
	collect func(emit func(v float64, labelVals ...string)) // live families
}

// Registry holds metric families and renders the text exposition.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	idx  map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{idx: map[string]*family{}}
}

func (r *Registry) add(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.idx[f.name]; ok {
		return prev // idempotent re-registration keeps the first family
	}
	r.idx[f.name] = f
	r.fams = append(r.fams, f)
	return f
}

// Vec is a counter or gauge family handle.
type Vec struct{ f *family }

// Counter registers (or returns) a counter family with the given label
// names.
func (r *Registry) Counter(name, help string, labels ...string) *Vec {
	return &Vec{r.add(&family{name: name, help: help, typ: typeCounter,
		labels: labels, series: map[string]*series{}})}
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Vec {
	return &Vec{r.add(&family{name: name, help: help, typ: typeGauge,
		labels: labels, series: map[string]*series{}})}
}

// Func registers a live family whose samples are produced at scrape
// time by collect (governor gauges, store stats, runtime stats). typ is
// "counter" or "gauge".
func (r *Registry) Func(name, help, typ string, labels []string,
	collect func(emit func(v float64, labelVals ...string))) {
	r.add(&family{name: name, help: help, typ: typ, labels: labels, collect: collect})
}

// GaugeFunc registers a single-series live gauge.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.Func(name, help, typeGauge, nil, func(emit func(float64, ...string)) { emit(f()) })
}

func (f *family) get(labelVals []string) *series {
	key := strings.Join(labelVals, labelSep)
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: append([]string(nil), labelVals...)}
		if f.typ == typeHistogram {
			s.buckets = make([]int64, len(f.bounds)+1)
		}
		f.series[key] = s
	}
	return s
}

// Add increments the labeled series by n (counters must only go up).
func (v *Vec) Add(n float64, labelVals ...string) {
	v.f.mu.Lock()
	v.f.get(labelVals).value += n
	v.f.mu.Unlock()
}

// Inc adds one.
func (v *Vec) Inc(labelVals ...string) { v.Add(1, labelVals...) }

// Set sets the labeled gauge.
func (v *Vec) Set(n float64, labelVals ...string) {
	v.f.mu.Lock()
	v.f.get(labelVals).value = n
	v.f.mu.Unlock()
}

// HistVec is a histogram family handle.
type HistVec struct{ f *family }

// Histogram registers (or returns) a histogram family over the given
// upper bounds (nil uses DefBuckets). The rendered exposition always
// carries the +Inf bucket, and _count always equals the +Inf cumulative
// count so _sum/_count stay consistent.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *HistVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &HistVec{r.add(&family{name: name, help: help, typ: typeHistogram,
		labels: labels, bounds: bounds, series: map[string]*series{}})}
}

// Observe records v into the labeled series.
func (h *HistVec) Observe(v float64, labelVals ...string) {
	h.f.mu.Lock()
	s := h.f.get(labelVals)
	i := sort.SearchFloat64s(h.f.bounds, v)
	s.buckets[i]++
	s.sum += v
	s.count++
	h.f.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *HistVec) ObserveDuration(d time.Duration, labelVals ...string) {
	h.Observe(d.Seconds(), labelVals...)
}

// formatValue renders integral values as integers (scrape-compatible
// with the old %d emitters — a 1 GiB gauge must print 1073741824, not
// 1.073741824e+09) and everything else in shortest-float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeLabels(b *strings.Builder, names, vals []string, extra ...string) {
	if len(names) == 0 && len(extra) == 0 {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(v))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if len(names) > 0 || i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra[i])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(extra[i+1]))
	}
	b.WriteByte('}')
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)

	var rows []*series
	if f.collect != nil {
		f.collect(func(v float64, labelVals ...string) {
			rows = append(rows, &series{labelVals: labelVals, value: v})
		})
	} else {
		f.mu.Lock()
		for _, s := range f.series {
			copied := *s
			copied.buckets = append([]int64(nil), s.buckets...)
			rows = append(rows, &copied)
		}
		f.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool {
		return strings.Join(rows[i].labelVals, labelSep) < strings.Join(rows[j].labelVals, labelSep)
	})

	for _, s := range rows {
		if f.typ != typeHistogram {
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.labelVals)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			b.WriteByte('\n')
			continue
		}
		cum := int64(0)
		for i, ub := range f.bounds {
			cum += s.buckets[i]
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, s.labelVals, "le", strconv.FormatFloat(ub, 'g', -1, 64))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')
		}
		cum += s.buckets[len(f.bounds)]
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, s.labelVals, "le", "+Inf")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
		b.WriteString(f.name)
		b.WriteString("_sum")
		writeLabels(b, f.labels, s.labelVals)
		b.WriteByte(' ')
		b.WriteString(formatValue(s.sum))
		b.WriteByte('\n')
		b.WriteString(f.name)
		b.WriteString("_count")
		writeLabels(b, f.labels, s.labelVals)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
}

// Expose renders the full text exposition.
func (r *Registry) Expose() string {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	return b.String()
}

// Handler serves the exposition with the Prometheus text content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		io.WriteString(w, r.Expose())
	})
}
