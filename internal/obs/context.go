package obs

// Context plumbing: the HTTP middleware stores the request's *Trace in
// the context so handlers and anything they call can bracket spans
// without new parameters on every signature.

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — and since all
// *Trace methods are nil-safe, callers never need to check.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
