package tlsconf

import (
	"crypto/tls"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// devFleet generates a throwaway PKI and returns the parsed server and
// client configs, with mTLS on when mutual is set.
func devFleet(t *testing.T, mutual bool) (*tls.Config, *tls.Config) {
	t.Helper()
	files, err := DevCertificates(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clientCA := ""
	if mutual {
		clientCA = files.CACert
	}
	srv, err := Server(files.ServerCert, files.ServerKey, clientCA)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Client(files.CACert, files.ClientCert, files.ClientKey, "")
	if err != nil {
		t.Fatal(err)
	}
	return srv, cli
}

func startTLSServer(t *testing.T, srvCfg *tls.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	ts.TLS = srvCfg
	ts.StartTLS()
	t.Cleanup(ts.Close)
	return ts
}

func TestServerClientRoundTrip(t *testing.T) {
	srvCfg, cliCfg := devFleet(t, false)
	ts := startTLSServer(t, srvCfg)
	hc := &http.Client{Transport: &http.Transport{TLSClientConfig: cliCfg}}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("TLS round trip: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body %q", body)
	}
}

func TestMutualTLSRejectsBareClient(t *testing.T) {
	srvCfg, cliCfg := devFleet(t, true)
	ts := startTLSServer(t, srvCfg)

	// With the client certificate: accepted.
	hc := &http.Client{Transport: &http.Transport{TLSClientConfig: cliCfg}}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("mTLS round trip with client cert: %v", err)
	}
	resp.Body.Close()

	// Without one: the handshake (or the first read, depending on TLS
	// version) must fail — the listener requires a verified client cert.
	bare := cliCfg.Clone()
	bare.Certificates = nil
	hc = &http.Client{Transport: &http.Transport{TLSClientConfig: bare}}
	if resp, err := hc.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Fatal("mTLS listener accepted a certificate-less client")
	}
}

func TestClientRejectsUnknownCA(t *testing.T) {
	srvCfg, _ := devFleet(t, false)
	_, otherCli := devFleet(t, false) // a different CA
	ts := startTLSServer(t, srvCfg)
	hc := &http.Client{Transport: &http.Transport{TLSClientConfig: otherCli}}
	if resp, err := hc.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Fatal("client trusted a server signed by a foreign CA")
	}
}

func TestClientHalfKeypairRejected(t *testing.T) {
	files, err := DevCertificates(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Client(files.CACert, files.ClientCert, "", ""); err == nil ||
		!strings.Contains(err.Error(), "both") {
		t.Fatalf("half keypair: err = %v", err)
	}
}

func TestServerMissingFiles(t *testing.T) {
	if _, err := Server("/nonexistent.pem", "/nonexistent.key", ""); err == nil {
		t.Fatal("missing keypair must error")
	}
	files, err := DevCertificates(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Server(files.ServerCert, files.ServerKey, "/nonexistent-ca.pem"); err == nil {
		t.Fatal("missing client CA must error")
	}
}
