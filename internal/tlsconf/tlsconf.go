// Package tlsconf builds the TLS configurations the fleet tiers share:
// server configs for the szd/szrouter listeners (optionally requiring
// client certificates — mTLS), client configs for the router→backend
// and client→router hops, and a self-signed certificate generator so
// tests and dev fleets need no external PKI. Stdlib only.
//
// The deployment shape is deliberately simple: one CA signs every
// fleet certificate, servers present a cert/key pair, and mTLS (when
// enabled via a client CA) requires the peer to present a certificate
// from that same CA. Anything fancier — rotation, SPIFFE, per-node
// CAs — belongs in the operator's PKI, not here.
package tlsconf

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"time"
)

// Server builds the listener-side TLS config from PEM files. When
// clientCAFile is non-empty the listener requires and verifies a
// client certificate signed by that CA (mTLS); otherwise any client
// may connect and the transport is encryption-only.
func Server(certFile, keyFile, clientCAFile string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("tlsconf: load server keypair: %w", err)
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	if clientCAFile != "" {
		pool, err := loadCertPool(clientCAFile)
		if err != nil {
			return nil, err
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg, nil
}

// Client builds the dialer-side TLS config. caFile anchors server
// verification (empty = system roots); certFile/keyFile present a
// client certificate for mTLS listeners (both or neither); serverName
// overrides SNI/verification when dialing by IP.
func Client(caFile, certFile, keyFile, serverName string) (*tls.Config, error) {
	cfg := &tls.Config{
		MinVersion: tls.VersionTLS12,
		ServerName: serverName,
	}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, err
		}
		cfg.RootCAs = pool
	}
	switch {
	case certFile != "" && keyFile != "":
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return nil, fmt.Errorf("tlsconf: load client keypair: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	case certFile != "" || keyFile != "":
		return nil, fmt.Errorf("tlsconf: client cert and key must both be set or both empty")
	}
	return cfg, nil
}

func loadCertPool(caFile string) (*x509.CertPool, error) {
	pemData, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("tlsconf: read CA: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pemData) {
		return nil, fmt.Errorf("tlsconf: no certificates in %s", caFile)
	}
	return pool, nil
}

// Files names the PEM files DevCertificates writes.
type Files struct {
	CACert     string // the CA certificate, trust anchor for both sides
	ServerCert string
	ServerKey  string
	ClientCert string
	ClientKey  string
}

// DevCertificates generates a throwaway single-CA PKI under dir: a CA,
// a server certificate valid for the given hosts (names or IPs;
// localhost and the loopbacks are always included), and a client
// certificate for mTLS. For tests and dev fleets only — keys are
// written unencrypted and validity is 24 hours.
func DevCertificates(dir string, hosts ...string) (Files, error) {
	f := Files{
		CACert:     filepath.Join(dir, "ca.pem"),
		ServerCert: filepath.Join(dir, "server.pem"),
		ServerKey:  filepath.Join(dir, "server.key"),
		ClientCert: filepath.Join(dir, "client.pem"),
		ClientKey:  filepath.Join(dir, "client.key"),
	}
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return f, err
	}
	now := time.Now()
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "sz dev CA"},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(24 * time.Hour),
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &caKey.PublicKey, caKey)
	if err != nil {
		return f, err
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return f, err
	}
	if err := writePEM(f.CACert, "CERTIFICATE", caDER); err != nil {
		return f, err
	}

	leaf := func(cn string, serial int64, usage x509.ExtKeyUsage, withHosts bool) (der []byte, key *ecdsa.PrivateKey, err error) {
		key, err = ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return nil, nil, err
		}
		tmpl := &x509.Certificate{
			SerialNumber: big.NewInt(serial),
			Subject:      pkix.Name{CommonName: cn},
			NotBefore:    now.Add(-time.Hour),
			NotAfter:     now.Add(24 * time.Hour),
			KeyUsage:     x509.KeyUsageDigitalSignature,
			ExtKeyUsage:  []x509.ExtKeyUsage{usage},
		}
		if withHosts {
			tmpl.DNSNames = []string{"localhost"}
			tmpl.IPAddresses = []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback}
			for _, h := range hosts {
				if ip := net.ParseIP(h); ip != nil {
					tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
				} else {
					tmpl.DNSNames = append(tmpl.DNSNames, h)
				}
			}
		}
		der, err = x509.CreateCertificate(rand.Reader, tmpl, caCert, &key.PublicKey, caKey)
		return der, key, err
	}

	srvDER, srvKey, err := leaf("sz dev server", 2, x509.ExtKeyUsageServerAuth, true)
	if err != nil {
		return f, err
	}
	if err := writeKeyPair(f.ServerCert, f.ServerKey, srvDER, srvKey); err != nil {
		return f, err
	}
	cliDER, cliKey, err := leaf("sz dev client", 3, x509.ExtKeyUsageClientAuth, false)
	if err != nil {
		return f, err
	}
	if err := writeKeyPair(f.ClientCert, f.ClientKey, cliDER, cliKey); err != nil {
		return f, err
	}
	return f, nil
}

func writeKeyPair(certPath, keyPath string, der []byte, key *ecdsa.PrivateKey) error {
	if err := writePEM(certPath, "CERTIFICATE", der); err != nil {
		return err
	}
	kb, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return err
	}
	return writePEM(keyPath, "EC PRIVATE KEY", kb)
}

func writePEM(path, blockType string, der []byte) error {
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := pem.Encode(fh, &pem.Block{Type: blockType, Bytes: der}); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
