package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(4)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != uint64(len(pattern)) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("expected ErrOutOfBits, got %v", err)
	}
}

func TestWriteBitsAlignment(t *testing.T) {
	// Write fields of every width 1..64 and read them back.
	w := NewWriter(0)
	vals := make([]uint64, 0, 64)
	for width := uint(1); width <= 64; width++ {
		v := uint64(0xDEADBEEFCAFEBABE)
		if width < 64 {
			v &= (1 << width) - 1
		}
		vals = append(vals, v)
		w.WriteBits(v, width)
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	for width := uint(1); width <= 64; width++ {
		got, err := r.ReadBits(width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if got != vals[width-1] {
			t.Fatalf("width %d: got %#x want %#x", width, got, vals[width-1])
		}
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFF, 4) // only low 4 bits should land
	b := w.Bytes()
	if b[0] != 0xF0 {
		t.Fatalf("got %#x, want 0xF0", b[0])
	}
}

func TestZeroWidth(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(123, 0)
	if w.Len() != 0 {
		t.Fatalf("zero-width write changed length: %d", w.Len())
	}
	r := NewReader(nil)
	v, err := r.ReadBits(0)
	if err != nil || v != 0 {
		t.Fatalf("zero-width read: v=%d err=%v", v, err)
	}
}

func TestUnary(t *testing.T) {
	w := NewWriter(0)
	vals := []uint64{0, 1, 2, 7, 31, 32, 33, 100, 257}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	for _, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("ReadUnary(%d): %v", want, err)
		}
		if got != want {
			t.Fatalf("unary: got %d want %d", got, want)
		}
	}
}

func TestEliasGamma(t *testing.T) {
	w := NewWriter(0)
	vals := []uint64{0, 1, 2, 3, 4, 5, 100, 1 << 20, (1 << 40) - 1}
	for _, v := range vals {
		w.WriteEliasGamma(v)
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	for _, want := range vals {
		got, err := r.ReadEliasGamma()
		if err != nil {
			t.Fatalf("ReadEliasGamma(%d): %v", want, err)
		}
		if got != want {
			t.Fatalf("gamma: got %d want %d", got, want)
		}
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xAB, 8) // crosses a byte boundary
	buf := w.Bytes()
	r := NewReader(buf)
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	if r.Pos() != 8 {
		t.Fatalf("Align: pos = %d, want 8", r.Pos())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("after Reset Len = %d", w.Len())
	}
	w.WriteBits(0x1, 1)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0x80 {
		t.Fatalf("after Reset Bytes = %v", b)
	}
}

// TestRoundTripQuick property-tests that any sequence of (value, width)
// fields round-trips exactly.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		widths := make([]uint, count)
		vals := make([]uint64, count)
		w := NewWriter(0)
		for i := 0; i < count; i++ {
			widths[i] = uint(rng.Intn(64)) + 1
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << widths[i]) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReaderBits(w.Bytes(), w.Len())
		for i := 0; i < count; i++ {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMixedCodesQuick interleaves unary, gamma, and fixed-width codes.
func TestMixedCodesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type field struct {
			kind int
			v    uint64
			w    uint
		}
		n := rng.Intn(50) + 1
		fields := make([]field, n)
		w := NewWriter(0)
		for i := range fields {
			switch rng.Intn(3) {
			case 0:
				fields[i] = field{0, uint64(rng.Intn(200)), 0}
				w.WriteUnary(fields[i].v)
			case 1:
				fields[i] = field{1, uint64(rng.Intn(1 << 30)), 0}
				w.WriteEliasGamma(fields[i].v)
			default:
				width := uint(rng.Intn(64)) + 1
				v := rng.Uint64()
				if width < 64 {
					v &= (1 << width) - 1
				}
				fields[i] = field{2, v, width}
				w.WriteBits(v, width)
			}
		}
		r := NewReaderBits(w.Bytes(), w.Len())
		for _, f := range fields {
			var got uint64
			var err error
			switch f.kind {
			case 0:
				got, err = r.ReadUnary()
			case 1:
				got, err = r.ReadEliasGamma()
			default:
				got, err = r.ReadBits(f.w)
			}
			if err != nil || got != f.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBitsLimit(t *testing.T) {
	r := NewReaderBits([]byte{0xFF}, 3)
	if r.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", r.Remaining())
	}
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestBytesPadding(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(1, 1) // single 1 bit
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0x80 {
		t.Fatalf("Bytes = %v, want [0x80]", b)
	}
}

func BenchmarkWriteBits16(b *testing.B) {
	w := NewWriter(1 << 20)
	b.SetBytes(2)
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<23 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 16)
	}
}

func BenchmarkReadBits16(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 1<<18; i++ {
		w.WriteBits(uint64(i), 16)
	}
	buf := w.Bytes()
	b.SetBytes(2)
	b.ResetTimer()
	r := NewReader(buf)
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 16 {
			r = NewReader(buf)
		}
		if _, err := r.ReadBits(16); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAppendStream(t *testing.T) {
	src := NewWriter(0)
	src.WriteBits(0b10110, 5)
	src.WriteBits(0xABCD, 16)
	dst := NewWriter(0)
	dst.WriteBits(0b11, 2) // misalign destination
	dst.AppendStream(src.Bytes(), src.Len())
	r := NewReaderBits(dst.Bytes(), dst.Len())
	if v, _ := r.ReadBits(2); v != 0b11 {
		t.Fatalf("prefix = %b", v)
	}
	if v, _ := r.ReadBits(5); v != 0b10110 {
		t.Fatalf("appended field 1 = %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("appended field 2 = %x", v)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestAppendStreamLong(t *testing.T) {
	src := NewWriter(0)
	for i := 0; i < 300; i++ {
		src.WriteBits(uint64(i), 9)
	}
	dst := NewWriter(0)
	dst.WriteBits(1, 3)
	dst.AppendStream(src.Bytes(), src.Len())
	r := NewReaderBits(dst.Bytes(), dst.Len())
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		v, err := r.ReadBits(9)
		if err != nil || v != uint64(i) {
			t.Fatalf("element %d: v=%d err=%v", i, v, err)
		}
	}
}
