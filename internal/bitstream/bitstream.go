// Package bitstream implements MSB-first bit-level writers and readers.
//
// The compressors in this repository (Huffman coding, binary-representation
// analysis, ZFP bit-plane coding, ISABELA index packing) all need to emit
// and consume codes whose lengths are not byte multiples. Writer and Reader
// provide that with an explicit, versionable wire format: bits are packed
// most-significant-bit first into bytes, and multi-bit fields are written
// big-endian within the stream so that a field written with WriteBits(v, n)
// is read back by ReadBits(n) regardless of field alignment.
package bitstream

import (
	"errors"
	"fmt"
)

// ErrOutOfBits is returned by Reader methods once the underlying buffer is
// exhausted.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Writer accumulates bits MSB-first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bit accumulator, top 'nacc' bits pending
	nacc uint   // number of pending bits in cur (0..63)
	n    uint64 // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// NewWriterBytes returns a Writer that spills into buf (truncated to
// length 0, capacity retained). Callers recycling buffers through a pool
// hand one in here and reclaim it via Bytes after the last write; the
// Writer may still grow past cap(buf) through ordinary append.
func NewWriterBytes(buf []byte) *Writer {
	return &Writer{buf: buf[:0]}
}

// WriteBit appends a single bit (any nonzero b counts as 1).
func (w *Writer) WriteBit(b uint) {
	var v uint64
	if b != 0 {
		v = 1
	}
	w.WriteBits(v, 1)
}

// WriteBool appends a single bit, true = 1.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// WriteBits appends the low 'width' bits of v, most significant first.
// width must be in [0, 64]; width 0 is a no-op. Bits of v above 'width'
// are ignored.
func (w *Writer) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits width %d > 64", width))
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	w.n += uint64(width)
	// Fast path: fits in the accumulator.
	if w.nacc+width <= 64 {
		w.cur = (w.cur << width) | v
		w.nacc += width
		w.flushFullBytes()
		return
	}
	// Split: emit the high part first.
	hi := w.nacc + width - 64 // bits that do not fit
	w.cur = (w.cur << (width - hi)) | (v >> hi)
	w.nacc = 64
	w.flushFullBytes()
	w.cur = (w.cur << hi) | (v & ((1 << hi) - 1))
	w.nacc += hi
	w.flushFullBytes()
}

// flushFullBytes moves complete bytes from the accumulator to the buffer.
func (w *Writer) flushFullBytes() {
	if w.nacc == 64 {
		// Full accumulator (the batched-encode spill): append all eight
		// bytes at once instead of looping.
		c := w.cur
		w.buf = append(w.buf, byte(c>>56), byte(c>>48), byte(c>>40), byte(c>>32),
			byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
		w.nacc = 0
		return
	}
	for w.nacc >= 8 {
		w.nacc -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nacc))
	}
}

// WriteUnary appends v as a unary code: v one-bits followed by a zero bit.
func (w *Writer) WriteUnary(v uint64) {
	for v >= 32 {
		w.WriteBits((1<<32)-1, 32)
		v -= 32
	}
	// v ones then a zero, total v+1 bits.
	w.WriteBits((1<<(v+1))-2, uint(v)+1)
}

// WriteEliasGamma appends v+1 using the Elias gamma code (v may be 0).
// The code for x = v+1 is: floor(log2 x) zeros, then x in binary.
func (w *Writer) WriteEliasGamma(v uint64) {
	x := v + 1
	nb := bitLen64(x)
	w.WriteBits(0, nb-1)
	w.WriteBits(x, nb)
}

// Align pads the stream with zero bits up to the next byte boundary.
// Aligned positions let a reader hand byte ranges of the stream to
// independent sub-readers (NewReaderAt), which is how the multi-stream
// Huffman container frames its sub-streams.
func (w *Writer) Align() {
	if rem := w.n % 8; rem != 0 {
		w.WriteBits(0, uint(8-rem))
	}
}

// WriteBytes appends whole bytes to the stream. The writer must be
// byte-aligned (Align); this is the fast path for embedding an already
// serialized byte-aligned section (sub-stream bodies, offset tables)
// without re-shifting every bit.
func (w *Writer) WriteBytes(b []byte) {
	if w.n%8 != 0 {
		panic("bitstream: WriteBytes on unaligned writer")
	}
	// nacc is 0 whenever n is a byte multiple (flushFullBytes drains
	// every complete byte), so the bytes append directly.
	w.buf = append(w.buf, b...)
	w.n += uint64(len(b)) * 8
}

// AppendStream appends the first nbits bits of buf (a buffer produced by
// another Writer's Bytes) to this writer, preserving bit alignment.
func (w *Writer) AppendStream(buf []byte, nbits uint64) {
	r := NewReaderBits(buf, nbits)
	for r.Remaining() >= 64 {
		v, _ := r.ReadBits(64)
		w.WriteBits(v, 64)
	}
	if rem := r.Remaining(); rem > 0 {
		v, _ := r.ReadBits(uint(rem))
		w.WriteBits(v, uint(rem))
	}
}

// Len returns the total number of bits written so far.
func (w *Writer) Len() uint64 { return w.n }

// Bytes flushes any partial byte (padding with zero bits) and returns the
// underlying buffer. The Writer may continue to be used afterwards, but a
// subsequent Bytes call reflects writes made after the padding, so callers
// normally call Bytes exactly once, at the end.
func (w *Writer) Bytes() []byte {
	if w.nacc > 0 {
		pad := 8 - w.nacc%8
		if pad != 8 {
			w.cur <<= pad
			w.nacc += pad
		}
		w.flushFullBytes()
	}
	return w.buf
}

// Reset truncates the writer to empty, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.nacc = 0
	w.n = 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos uint64 // bit cursor
	end uint64 // total bits available
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf, end: uint64(len(buf)) * 8}
}

// NewReaderBits returns a Reader over buf limited to nbits bits.
func NewReaderBits(buf []byte, nbits uint64) *Reader {
	r := NewReader(buf)
	if nbits < r.end {
		r.end = nbits
	}
	return r
}

// NewReaderAt returns a Reader over the byte window [off, off+n) of buf.
// The reader shares buf (no copy, no reslice): its cursor starts at bit
// off*8 and it may consume exactly n*8 bits. Multi-stream decoders hand
// each sub-stream of a shared payload its own cursor this way, so the
// sub-readers can interleave without aliasing each other's state. Out-of
// -range windows are clamped to buf.
func NewReaderAt(buf []byte, off, n int) *Reader {
	if off < 0 {
		off = 0
	}
	if off > len(buf) {
		off = len(buf)
	}
	if n < 0 {
		n = 0
	}
	if off+n > len(buf) {
		n = len(buf) - off
	}
	return &Reader{buf: buf, pos: uint64(off) * 8, end: uint64(off+n) * 8}
}

// Window exposes the reader's backing buffer together with its absolute
// bit cursor and bit limit. Fused decoders (huffman.DecodeNInto) lift N
// reader states into locals with Window, run a branch-light interleaved
// loop, and write the cursors back with SetPos.
func (r *Reader) Window() (buf []byte, pos, end uint64) { return r.buf, r.pos, r.end }

// SetPos moves the absolute bit cursor (a value previously derived from
// Window). Positions past the limit clamp to it.
func (r *Reader) SetPos(pos uint64) {
	if pos > r.end {
		pos = r.end
	}
	r.pos = pos
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() uint64 { return r.end - r.pos }

// Pos returns the current bit offset from the start of the stream.
func (r *Reader) Pos() uint64 { return r.pos }

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// ReadBool reads a single bit as a bool.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v != 0, err
}

// ReadBits reads 'width' bits (0..64) MSB-first and returns them in the low
// bits of the result.
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width == 0 {
		return 0, nil
	}
	if width > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits width %d > 64", width))
	}
	if r.pos+uint64(width) > r.end {
		return 0, ErrOutOfBits
	}
	var v uint64
	pos := r.pos
	for width > 0 {
		byteIdx := pos >> 3
		bitOff := uint(pos & 7)
		avail := 8 - bitOff
		take := width
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[byteIdx]>>(avail-take)) & ((1 << take) - 1)
		v = (v << take) | chunk
		pos += uint64(take)
		width -= take
	}
	r.pos = pos
	return v, nil
}

// Peek returns the next width bits MSB-first without advancing the cursor.
// The caller must ensure Remaining() >= width; width must be ≤ 16.
func (r *Reader) Peek(width uint) uint64 {
	pos := r.pos
	byteIdx := pos >> 3
	n := uint(pos&7) + width
	nb := uint64((n + 7) >> 3)
	var v uint64
	for i := uint64(0); i < nb; i++ {
		v = v<<8 | uint64(r.buf[byteIdx+i])
	}
	v >>= uint(nb)*8 - n
	return v & (1<<width - 1)
}

// Skip advances the cursor by width bits. The caller must ensure
// Remaining() >= width (normally after a Peek of at least that width).
func (r *Reader) Skip(width uint) { r.pos += uint64(width) }

// ReadUnary reads a unary code written by WriteUnary.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		b, err := r.ReadBits(1)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// ReadEliasGamma reads a value written by WriteEliasGamma.
func (r *Reader) ReadEliasGamma() (uint64, error) {
	var zeros uint
	for {
		b, err := r.ReadBits(1)
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 64 {
			return 0, errors.New("bitstream: malformed Elias gamma code")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	x := (uint64(1) << zeros) | rest
	return x - 1, nil
}

// Align advances the cursor to the next byte boundary.
func (r *Reader) Align() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
		if r.pos > r.end {
			r.pos = r.end
		}
	}
}

// bitLen64 returns the number of bits needed to represent x (x > 0 → >= 1).
func bitLen64(x uint64) uint {
	var n uint
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}
