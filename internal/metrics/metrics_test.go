package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestRMSEKnown(t *testing.T) {
	xs := []float64{0, 0, 0, 0}
	ys := []float64{1, -1, 1, -1}
	if got := RMSE(xs, ys); got != 1 {
		t.Fatalf("RMSE = %v, want 1", got)
	}
}

func TestRMSEZeroForIdentical(t *testing.T) {
	xs := []float64{3.14, 2.71, -5}
	if got := RMSE(xs, xs); got != 0 {
		t.Fatalf("RMSE(identical) = %v", got)
	}
}

func TestNRMSE(t *testing.T) {
	xs := []float64{0, 10} // range 10
	ys := []float64{1, 9}  // abs errors 1,1 -> rmse 1
	if got := NRMSE(xs, ys); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("NRMSE = %v, want 0.1", got)
	}
}

func TestPSNRKnown(t *testing.T) {
	// range 100, rmse 1 -> psnr = 40 dB
	xs := []float64{0, 100, 50, 50}
	ys := []float64{1, 99, 51, 49}
	if got := PSNR(xs, ys); !almostEqual(got, 40, 1e-9) {
		t.Fatalf("PSNR = %v, want 40", got)
	}
}

func TestPSNRInfForLossless(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := PSNR(xs, xs); !math.IsInf(got, 1) {
		t.Fatalf("PSNR(identical) = %v", got)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(got) {
		t.Fatalf("Pearson with constant input = %v, want NaN", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		rho := Pearson(xs, ys)
		return math.IsNaN(rho) || (rho >= -1-1e-9 && rho <= 1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionFactorBitRateRelationship(t *testing.T) {
	// Paper: BR * CF = 32 for float32 data.
	n := 1000
	origBytes := n * 4
	compBytes := 500
	cf := CompressionFactor(origBytes, compBytes)
	br := BitRate(compBytes, n)
	if !almostEqual(cf*br, 32, 1e-9) {
		t.Fatalf("CF*BR = %v, want 32", cf*br)
	}
}

func TestCompressionFactorEdge(t *testing.T) {
	if !math.IsInf(CompressionFactor(100, 0), 1) {
		t.Fatal("CF with 0 compressed bytes should be +Inf")
	}
	if !math.IsNaN(BitRate(100, 0)) {
		t.Fatal("BitRate with 0 elements should be NaN")
	}
}

func TestMaxAbsError(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{1.5, 1.0, 3.25}
	if got := MaxAbsError(xs, ys); got != 1.0 {
		t.Fatalf("MaxAbsError = %v", got)
	}
}

func TestCompareSummary(t *testing.T) {
	xs := []float64{0, 10, 5, 5}
	ys := []float64{0.5, 9.5, 5, 5}
	s, err := Compare(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.ValueRange != 10 {
		t.Fatalf("N=%d range=%v", s.N, s.ValueRange)
	}
	if s.MaxAbsErr != 0.5 || s.MaxRelErr != 0.05 {
		t.Fatalf("MaxAbsErr=%v MaxRelErr=%v", s.MaxAbsErr, s.MaxRelErr)
	}
	wantRMSE := math.Sqrt((0.25 + 0.25) / 4)
	if !almostEqual(s.RMSE, wantRMSE, 1e-12) {
		t.Fatalf("RMSE=%v want %v", s.RMSE, wantRMSE)
	}
	if !almostEqual(s.NRMSE, wantRMSE/10, 1e-12) {
		t.Fatalf("NRMSE=%v", s.NRMSE)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Compare(nil, nil); err == nil {
		t.Fatal("expected empty-input error")
	}
}

func TestComparePSNRMatchesStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
		ys[i] = xs[i] + rng.NormFloat64()*0.01
	}
	s, err := Compare(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.PSNR, PSNR(xs, ys), 1e-9) {
		t.Fatalf("Compare PSNR %v != PSNR %v", s.PSNR, PSNR(xs, ys))
	}
	if !almostEqual(s.RMSE, RMSE(xs, ys), 1e-12) {
		t.Fatal("Compare RMSE mismatch")
	}
	if !almostEqual(s.Pearson, Pearson(xs, ys), 1e-12) {
		t.Fatal("Compare Pearson mismatch")
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	series := make([]float64, 20000)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	ac := Autocorrelation(series, 10)
	for k, v := range ac {
		if math.Abs(v) > 0.05 {
			t.Fatalf("white noise lag %d autocorr %v too large", k+1, v)
		}
	}
}

func TestAutocorrelationPeriodic(t *testing.T) {
	// Perfectly periodic series: autocorrelation at the period ~ 1.
	series := make([]float64, 1000)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 10)
	}
	ac := Autocorrelation(series, 20)
	if ac[9] < 0.95 { // lag 10 = one period
		t.Fatalf("periodic lag-10 autocorr = %v, want ~1", ac[9])
	}
	if ac[4] > -0.9 { // lag 5 = half period -> ~-1
		t.Fatalf("periodic lag-5 autocorr = %v, want ~-1", ac[4])
	}
}

func TestAutocorrelationEdge(t *testing.T) {
	if Autocorrelation(nil, 0) != nil {
		t.Fatal("maxLag 0 should return nil")
	}
	ac := Autocorrelation([]float64{5, 5, 5}, 3)
	for _, v := range ac {
		if v != 0 {
			t.Fatalf("zero-variance autocorr = %v", ac)
		}
	}
	// Series shorter than lag count: higher lags stay zero.
	ac = Autocorrelation([]float64{1, 2}, 5)
	if len(ac) != 5 {
		t.Fatalf("len = %d", len(ac))
	}
}

func TestAutocorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 10
		series := make([]float64, n)
		for i := range series {
			series[i] = rng.NormFloat64()
		}
		for _, v := range Autocorrelation(series, 10) {
			if v < -1-1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	e := Errors([]float64{3, 1}, []float64{2, 2})
	if e[0] != 1 || e[1] != -1 {
		t.Fatalf("Errors = %v", e)
	}
}

func TestNinesOfCorrelation(t *testing.T) {
	cases := []struct {
		rho  float64
		want int
	}{
		{0.5, 0},
		{0.99, 2},
		{0.99999, 5},
		{0.999999, 6},
		{1.0, 16},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := NinesOfCorrelation(c.rho); got != c.want {
			t.Fatalf("NinesOfCorrelation(%v) = %d, want %d", c.rho, got, c.want)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = xs[i] + 1e-6*rng.NormFloat64()
	}
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
