// Package metrics implements the compression-quality metrics of Section II
// of the SZ-1.4 paper: pointwise absolute and value-range-based relative
// error, RMSE / NRMSE / PSNR (Eq. 1–3), the Pearson correlation coefficient
// (Eq. 4), compression factor and bit-rate (Eq. 5–6), and the error
// autocorrelation used by the Section V-E study (Fig. 9).
package metrics

import (
	"fmt"
	"math"
)

// Summary aggregates every per-pair metric for an (original, reconstructed)
// data-set pair.
type Summary struct {
	N          int     // number of elements
	ValueRange float64 // range of the original data (R_X)
	MaxAbsErr  float64 // max_i |x_i - x̃_i|
	MaxRelErr  float64 // MaxAbsErr / ValueRange (0 when range is 0)
	MeanAbsErr float64
	RMSE       float64 // Eq. 1
	NRMSE      float64 // Eq. 2
	PSNR       float64 // Eq. 3, dB; +Inf when RMSE is 0
	Pearson    float64 // Eq. 4
}

// Compare computes a Summary for original xs and reconstruction ys.
// The slices must have equal nonzero length.
func Compare(xs, ys []float64) (Summary, error) {
	if len(xs) != len(ys) {
		return Summary{}, fmt.Errorf("metrics: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("metrics: empty input")
	}
	var s Summary
	s.N = len(xs)

	min, max := xs[0], xs[0]
	var sumAbs, sumSq float64
	for i := range xs {
		if xs[i] < min {
			min = xs[i]
		}
		if xs[i] > max {
			max = xs[i]
		}
		e := math.Abs(xs[i] - ys[i])
		if e > s.MaxAbsErr {
			s.MaxAbsErr = e
		}
		sumAbs += e
		sumSq += e * e
	}
	s.ValueRange = max - min
	s.MeanAbsErr = sumAbs / float64(s.N)
	s.RMSE = math.Sqrt(sumSq / float64(s.N))
	if s.ValueRange > 0 {
		s.MaxRelErr = s.MaxAbsErr / s.ValueRange
		s.NRMSE = s.RMSE / s.ValueRange
	}
	if s.RMSE == 0 {
		s.PSNR = math.Inf(1)
	} else if s.ValueRange > 0 {
		s.PSNR = 20 * math.Log10(s.ValueRange/s.RMSE)
	}
	s.Pearson = Pearson(xs, ys)
	return s, nil
}

// RMSE returns the root mean squared error between xs and ys (Eq. 1).
func RMSE(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	var sumSq float64
	for i := range xs {
		e := xs[i] - ys[i]
		sumSq += e * e
	}
	return math.Sqrt(sumSq / float64(len(xs)))
}

// NRMSE returns RMSE normalized by the value range of xs (Eq. 2).
func NRMSE(xs, ys []float64) float64 {
	r := valueRange(xs)
	if r == 0 {
		return math.NaN()
	}
	return RMSE(xs, ys) / r
}

// PSNR returns the peak signal-to-noise ratio in dB (Eq. 3), using the
// value range of xs as the peak. It is +Inf for identical inputs.
func PSNR(xs, ys []float64) float64 {
	rmse := RMSE(xs, ys)
	if rmse == 0 {
		return math.Inf(1)
	}
	r := valueRange(xs)
	if r == 0 {
		return math.NaN()
	}
	return 20 * math.Log10(r/rmse)
}

// MaxAbsError returns max_i |xs_i - ys_i|.
func MaxAbsError(xs, ys []float64) float64 {
	var m float64
	for i := range xs {
		if e := math.Abs(xs[i] - ys[i]); e > m {
			m = e
		}
	}
	return m
}

// Pearson returns the Pearson correlation coefficient between xs and ys
// (Eq. 4). It returns NaN if either sequence has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var cov, vx, vy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// CompressionFactor returns origBytes/compBytes (Eq. 5).
func CompressionFactor(origBytes, compBytes int) float64 {
	if compBytes <= 0 {
		return math.Inf(1)
	}
	return float64(origBytes) / float64(compBytes)
}

// BitRate returns the amortized storage cost in bits per value (Eq. 6).
func BitRate(compBytes, n int) float64 {
	if n <= 0 {
		return math.NaN()
	}
	return float64(compBytes) * 8 / float64(n)
}

// Autocorrelation returns the first maxLag autocorrelation coefficients of
// the series (lags 1..maxLag), as used in the Fig. 9 compression-error
// study. Coefficient k is
//
//	r_k = Σ_{i=0}^{N-k-1} (e_i - ē)(e_{i+k} - ē) / Σ_i (e_i - ē)².
//
// A zero-variance series yields all-zero coefficients.
func Autocorrelation(series []float64, maxLag int) []float64 {
	if maxLag < 1 {
		return nil
	}
	n := len(series)
	out := make([]float64, maxLag)
	if n < 2 {
		return out
	}
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	var denom float64
	for _, v := range series {
		d := v - mean
		denom += d * d
	}
	if denom == 0 {
		return out
	}
	for k := 1; k <= maxLag; k++ {
		if k >= n {
			break
		}
		var num float64
		for i := 0; i+k < n; i++ {
			num += (series[i] - mean) * (series[i+k] - mean)
		}
		out[k-1] = num / denom
	}
	return out
}

// Errors returns the pointwise signed errors xs_i - ys_i.
func Errors(xs, ys []float64) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = xs[i] - ys[i]
	}
	return out
}

// NinesOfCorrelation converts a Pearson coefficient to its "number of
// nines" (the APAX profiler's "five nines or better" criterion): the
// largest k such that rho >= 1 - 10^-k, capped at 16. Returns 0 for
// rho < 0.9 or NaN.
func NinesOfCorrelation(rho float64) int {
	if math.IsNaN(rho) || rho < 0.9 {
		return 0
	}
	if rho >= 1 {
		return 16
	}
	// The small epsilon absorbs float rounding: 1-0.99 = 0.010000000000000009
	// would otherwise floor to 1 nine instead of 2.
	k := int(math.Floor(-math.Log10(1-rho) + 1e-9))
	if k > 16 {
		k = 16
	}
	return k
}

func valueRange(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, v := range xs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}
