package grid

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing2D(t *testing.T) {
	a := New(3, 4)
	if a.Len() != 12 || a.NDims() != 2 {
		t.Fatalf("Len=%d NDims=%d", a.Len(), a.NDims())
	}
	v := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			a.Set(v, i, j)
			v++
		}
	}
	// Row-major: element (i,j) at i*4+j.
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if got, want := a.At(i, j), float64(i*4+j); got != want {
				t.Fatalf("At(%d,%d)=%v want %v", i, j, got, want)
			}
			if a.Index(i, j) != i*4+j {
				t.Fatalf("Index(%d,%d)=%d", i, j, a.Index(i, j))
			}
		}
	}
}

func TestStrides(t *testing.T) {
	a := New(2, 3, 5)
	s := a.Strides()
	want := []int{15, 5, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Strides=%v want %v", s, want)
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	a := New(3, 5, 7)
	for idx := 0; idx < a.Len(); idx++ {
		c := a.Coord(idx)
		if a.Index(c...) != idx {
			t.Fatalf("Coord/Index mismatch at %d: coord %v", idx, c)
		}
	}
}

func TestCoordRoundTripQuick(t *testing.T) {
	f := func(d1, d2, d3 uint8, pick uint16) bool {
		dims := []int{int(d1%7) + 1, int(d2%7) + 1, int(d3%7) + 1}
		a := New(dims...)
		idx := int(pick) % a.Len()
		return a.Index(a.Coord(idx)...) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	a := New(5)
	copy(a.Data, []float64{3, -2, 7, 0, 1})
	min, max, rng := a.Range()
	if min != -2 || max != 7 || rng != 9 {
		t.Fatalf("Range = (%v,%v,%v)", min, max, rng)
	}
}

func TestRangeIgnoresNaN(t *testing.T) {
	a := New(4)
	copy(a.Data, []float64{math.NaN(), 1, 5, math.NaN()})
	min, max, rng := a.Range()
	if min != 1 || max != 5 || rng != 4 {
		t.Fatalf("Range = (%v,%v,%v)", min, max, rng)
	}
}

func TestRangeAllNaN(t *testing.T) {
	a := New(2)
	a.Data[0] = math.NaN()
	a.Data[1] = math.NaN()
	min, max, rng := a.Range()
	if min != 0 || max != 0 || rng != 0 {
		t.Fatalf("all-NaN Range = (%v,%v,%v)", min, max, rng)
	}
}

func TestFromDataValidation(t *testing.T) {
	if _, err := FromData(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("expected length mismatch error")
	}
	a, err := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 2) != 6 {
		t.Fatalf("At(1,2)=%v", a.At(1, 2))
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	src := []float32{1.5, -2.25, 3.75, 0}
	a, err := FromFloat32s(src, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	back := a.Float32s()
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("float32 round trip: %v vs %v", back, src)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 2)
	a.Set(1, 0, 0)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("Equal(clone) = false")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("different shapes reported equal")
	}
	if New(2).Equal(New(2, 1)) {
		t.Fatal("different ndims reported equal")
	}
}

func TestWriteReadRaw(t *testing.T) {
	for _, dt := range []DType{Float32, Float64} {
		a := New(3, 4)
		rng := rand.New(rand.NewSource(42))
		for i := range a.Data {
			a.Data[i] = float64(float32(rng.NormFloat64() * 100))
		}
		var buf bytes.Buffer
		if err := a.WriteRaw(&buf, dt); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != a.Len()*dt.Size() {
			t.Fatalf("%v: wrote %d bytes, want %d", dt, buf.Len(), a.Len()*dt.Size())
		}
		b, err := ReadRaw(&buf, dt, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("%v: raw round trip mismatch", dt)
		}
	}
}

func TestReadRawShortInput(t *testing.T) {
	if _, err := ReadRaw(bytes.NewReader(make([]byte, 7)), Float64, 2); err == nil {
		t.Fatal("expected error on short input")
	}
}

func TestSameShape(t *testing.T) {
	if err := SameShape(New(2, 3), New(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := SameShape(New(2, 3), New(3, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSlab(t *testing.T) {
	a := New(4, 3)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	s, err := a.Slab(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dims[0] != 2 || s.Dims[1] != 3 {
		t.Fatalf("slab dims %v", s.Dims)
	}
	if s.At(0, 0) != 3 || s.At(1, 2) != 8 {
		t.Fatalf("slab values: %v", s.Data)
	}
	// Shares storage.
	s.Set(-1, 0, 0)
	if a.At(1, 0) != -1 {
		t.Fatal("slab does not share storage")
	}
	if _, err := a.Slab(2, 2); err == nil {
		t.Fatal("expected empty-slab error")
	}
	if _, err := a.Slab(-1, 2); err == nil {
		t.Fatal("expected range error")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero dim", func() { New(0, 3) })
	mustPanic("no dims", func() { New() })
	mustPanic("too many dims", func() { New(1, 1, 1, 1, 1) })
	a := New(2, 2)
	mustPanic("bad coord count", func() { a.At(1) })
	mustPanic("coord out of range", func() { a.At(2, 0) })
	mustPanic("flat out of range", func() { a.Coord(4) })
}

func TestDTypeString(t *testing.T) {
	if Float32.String() != "float32" || Float64.String() != "float64" {
		t.Fatal("DType String mismatch")
	}
	if DType(9).Size() != 0 {
		t.Fatal("unknown dtype should have size 0")
	}
}
