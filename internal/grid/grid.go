// Package grid provides the multidimensional array container used by every
// compressor and experiment in this repository.
//
// Scientific data in the SZ-1.4 paper is a d-dimensional floating-point
// array of size n(1) × n(2) × ... × n(d), where n(1) is the size of the
// lowest (fastest-varying) dimension. Array stores such data in row-major
// order with the last element of Dims being the fastest-varying dimension,
// matching how 2D data sets of size M×N (M rows, N columns) are laid out in
// C and in the original SZ implementation.
package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/scratch"
)

// MaxDims is the maximum number of dimensions supported by the compressors.
const MaxDims = 4

// Array is a dense row-major d-dimensional array of float64 values.
//
// The compressors internally operate on float64; float32 inputs are widened
// on load and narrowed on store (see Float32s / FromFloat32s). This mirrors
// the original SZ code paths, which are duplicated per type, while keeping
// a single well-tested Go implementation.
type Array struct {
	// Dims holds the extent of each dimension, slowest-varying first.
	// For a 2D M×N data set, Dims = [M, N].
	Dims []int
	// Data is the row-major backing store, len = product(Dims).
	Data []float64
}

// New allocates a zero-filled Array with the given dimensions.
// It panics if any dimension is non-positive or the total size overflows.
func New(dims ...int) *Array {
	n := checkDims(dims)
	d := make([]int, len(dims))
	copy(d, dims)
	return &Array{Dims: d, Data: make([]float64, n)}
}

// FromData wraps an existing row-major slice, which must have exactly
// product(dims) elements. The slice is not copied.
func FromData(data []float64, dims ...int) (*Array, error) {
	n := checkDims(dims)
	if len(data) != n {
		return nil, fmt.Errorf("grid: data length %d does not match dims %v (need %d)", len(data), dims, n)
	}
	d := make([]int, len(dims))
	copy(d, dims)
	return &Array{Dims: d, Data: data}, nil
}

// FromFloat32s widens a float32 slice into a new Array.
func FromFloat32s(data []float32, dims ...int) (*Array, error) {
	n := checkDims(dims)
	if len(data) != n {
		return nil, fmt.Errorf("grid: data length %d does not match dims %v (need %d)", len(data), dims, n)
	}
	a := New(dims...)
	for i, v := range data {
		a.Data[i] = float64(v)
	}
	return a, nil
}

func checkDims(dims []int) int {
	if len(dims) == 0 {
		panic("grid: no dimensions")
	}
	if len(dims) > MaxDims {
		panic(fmt.Sprintf("grid: %d dimensions exceed MaxDims=%d", len(dims), MaxDims))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("grid: non-positive dimension %d in %v", d, dims))
		}
		if n > math.MaxInt/d {
			panic(fmt.Sprintf("grid: dims %v overflow", dims))
		}
		n *= d
	}
	return n
}

// Len returns the total number of elements.
func (a *Array) Len() int { return len(a.Data) }

// NDims returns the number of dimensions.
func (a *Array) NDims() int { return len(a.Dims) }

// Strides returns the row-major stride of each dimension in elements.
func (a *Array) Strides() []int {
	s := make([]int, len(a.Dims))
	stride := 1
	for i := len(a.Dims) - 1; i >= 0; i-- {
		s[i] = stride
		stride *= a.Dims[i]
	}
	return s
}

// Index converts a multidimensional coordinate to a flat offset.
// It panics if the coordinate count mismatches or any index is out of range.
func (a *Array) Index(coord ...int) int {
	if len(coord) != len(a.Dims) {
		panic(fmt.Sprintf("grid: coordinate %v does not match dims %v", coord, a.Dims))
	}
	idx := 0
	for i, c := range coord {
		if c < 0 || c >= a.Dims[i] {
			panic(fmt.Sprintf("grid: coordinate %v out of range for dims %v", coord, a.Dims))
		}
		idx = idx*a.Dims[i] + c
	}
	return idx
}

// At returns the element at the given coordinate.
func (a *Array) At(coord ...int) float64 { return a.Data[a.Index(coord...)] }

// Set stores v at the given coordinate.
func (a *Array) Set(v float64, coord ...int) { a.Data[a.Index(coord...)] = v }

// Coord converts a flat offset back to a multidimensional coordinate.
func (a *Array) Coord(idx int) []int {
	if idx < 0 || idx >= len(a.Data) {
		panic(fmt.Sprintf("grid: flat index %d out of range (len %d)", idx, len(a.Data)))
	}
	c := make([]int, len(a.Dims))
	for i := len(a.Dims) - 1; i >= 0; i-- {
		c[i] = idx % a.Dims[i]
		idx /= a.Dims[i]
	}
	return c
}

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	b := New(a.Dims...)
	copy(b.Data, a.Data)
	return b
}

// Range returns the minimum, maximum, and value range (max−min) of the data.
// NaN values are ignored; if all values are NaN or the array is empty in
// effect, it returns (0, 0, 0).
func (a *Array) Range() (min, max, rng float64) {
	// Seeding with ±Inf lets the loop run without a first-element branch:
	// NaN fails both comparisons and is skipped implicitly.
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range a.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min > max { // no non-NaN values seen
		return 0, 0, 0
	}
	return min, max, max - min
}

// Float32s narrows the data to float32. Values outside the float32 range
// saturate to ±Inf per IEEE-754 conversion rules.
func (a *Array) Float32s() []float32 {
	out := make([]float32, len(a.Data))
	for i, v := range a.Data {
		out[i] = float32(v)
	}
	return out
}

// Equal reports whether b has identical dims and bitwise-equal data
// (NaN == NaN under this definition).
func (a *Array) Equal(b *Array) bool {
	if len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// String summarizes the array shape.
func (a *Array) String() string {
	return fmt.Sprintf("grid.Array%v (%d elements)", a.Dims, len(a.Data))
}

// --- binary serialization ---------------------------------------------------

// DType identifies the element width used when (de)serializing raw data.
type DType uint8

const (
	// Float32 stores each element as an IEEE-754 binary32, little-endian.
	Float32 DType = iota + 1
	// Float64 stores each element as an IEEE-754 binary64, little-endian.
	Float64
)

// Size returns the element size in bytes.
func (t DType) Size() int {
	switch t {
	case Float32:
		return 4
	case Float64:
		return 8
	}
	return 0
}

func (t DType) String() string {
	switch t {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("DType(%d)", uint8(t))
}

// WriteRaw writes the flat data to w as little-endian values of the given
// type, with no header — the format used for raw scientific data files.
func (a *Array) WriteRaw(w io.Writer, t DType) error {
	buf := scratch.Bytes(8192)
	defer scratch.PutBytes(buf)
	es := t.Size()
	if es == 0 {
		return fmt.Errorf("grid: unknown dtype %v", t)
	}
	off := 0
	flush := func() error {
		if off == 0 {
			return nil
		}
		_, err := w.Write(buf[:off])
		off = 0
		return err
	}
	for _, v := range a.Data {
		if off+es > len(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
		switch t {
		case Float32:
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
		case Float64:
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		}
		off += es
	}
	return flush()
}

// ReadRaw reads product(dims) little-endian values of type t from r.
func ReadRaw(r io.Reader, t DType, dims ...int) (*Array, error) {
	n := checkDims(dims)
	es := t.Size()
	if es == 0 {
		return nil, fmt.Errorf("grid: unknown dtype %v", t)
	}
	raw := make([]byte, n*es)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("grid: reading %d elements: %w", n, err)
	}
	a := New(dims...)
	for i := 0; i < n; i++ {
		switch t {
		case Float32:
			a.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		case Float64:
			a.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return a, nil
}

// ErrShape is returned when two arrays that must agree in shape do not.
var ErrShape = errors.New("grid: shape mismatch")

// SameShape returns nil when a and b have identical dimensions.
func SameShape(a, b *Array) error {
	if a.NDims() != b.NDims() {
		return fmt.Errorf("%w: %v vs %v", ErrShape, a.Dims, b.Dims)
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return fmt.Errorf("%w: %v vs %v", ErrShape, a.Dims, b.Dims)
		}
	}
	return nil
}

// Slab returns a view Array of the hyperslab [lo, hi) along the slowest
// dimension; the backing data is shared, not copied.
func (a *Array) Slab(lo, hi int) (*Array, error) {
	if lo < 0 || hi > a.Dims[0] || lo >= hi {
		return nil, fmt.Errorf("grid: slab [%d,%d) out of range for dim %d", lo, hi, a.Dims[0])
	}
	stride := 1
	for _, d := range a.Dims[1:] {
		stride *= d
	}
	dims := make([]int, len(a.Dims))
	copy(dims, a.Dims)
	dims[0] = hi - lo
	return &Array{Dims: dims, Data: a.Data[lo*stride : hi*stride]}, nil
}
