// Package binrep implements the binary-representation analysis that SZ
// (both 1.1 and 1.4) applies to "unpredictable" data points.
//
// A data point whose real value falls outside every quantization interval
// cannot be represented by a quantization code; SZ instead stores the IEEE
// floating-point value itself, truncated to exactly the precision the error
// bound requires (paper Section IV, line 14 of Algorithm 1, citing [9]).
//
// For a normal value v with unbiased exponent E, keeping the top k mantissa
// bits gives a truncation error < 2^(E-k). Choosing k = E - floor(log2 eb)
// therefore guarantees the absolute error bound eb, and re-centering the
// dropped tail at its midpoint halves the worst case. Values no larger than
// eb collapse to an explicit zero marker, and non-finite values or
// pathological bounds fall back to the raw 64-bit representation.
//
// Wire format per value (MSB-first bits):
//
//	'0'                 truncated: sign(1) exponent(11) k(6) mantissa(k)
//	'10'                zero: reconstructed as 0.0 (valid since |v| ≤ eb)
//	'11'                raw: full 64-bit IEEE value (lossless escape)
package binrep

import (
	"math"

	"repro/internal/bitstream"
)

const (
	tagTrunc = iota
	tagZero
	tagRaw
)

// Encoder writes error-bounded truncated floats to a bitstream.
type Encoder struct {
	W *bitstream.Writer
	// ebExp caches floor(log2(eb)) for the current bound.
	ebExp int
	eb    float64
}

// NewEncoder returns an Encoder that guarantees |decode(v) − v| ≤ eb for
// every encoded value. A non-positive or non-finite eb forces the lossless
// raw escape for all values.
func NewEncoder(w *bitstream.Writer, eb float64) *Encoder {
	e := &Encoder{W: w, eb: eb}
	if eb > 0 && !math.IsInf(eb, 0) {
		e.ebExp = math.Ilogb(eb)
	}
	return e
}

// Encode appends one value and returns the exact value the Decoder will
// reconstruct for it — the compressor feeds that back into its prediction
// array so compressor and decompressor stay bit-for-bit in sync.
func (e *Encoder) Encode(v float64) float64 {
	if e.eb <= 0 || math.IsInf(e.eb, 0) || math.IsNaN(e.eb) ||
		math.IsNaN(v) || math.IsInf(v, 0) {
		e.writeRaw(v)
		return v
	}
	if math.Abs(v) <= e.eb {
		e.W.WriteBits(0b10, 2)
		return 0
	}
	bits := math.Float64bits(v)
	exp := int((bits >> 52) & 0x7FF)
	if exp == 0 {
		// Subnormal with |v| > eb: eb is below the subnormal threshold, so
		// truncation bookkeeping gets awkward; the raw escape is rare and safe.
		e.writeRaw(v)
		return v
	}
	unbiased := exp - 1023
	k := unbiased - e.ebExp
	if k < 0 {
		k = 0
	}
	if k > 52 {
		k = 52
	}
	mant := bits & ((uint64(1) << 52) - 1)
	e.W.WriteBits(0, 1) // tagTrunc
	e.W.WriteBits(bits>>63, 1)
	e.W.WriteBits(uint64(exp), 11)
	e.W.WriteBits(uint64(k), 6)
	if k > 0 {
		e.W.WriteBits(mant>>(52-uint(k)), uint(k))
	}
	return reconstruct(bits>>63, uint64(exp), mant>>(52-uint(k))<<(52-uint(k)), uint(k))
}

// reconstruct mirrors Decoder.Decode's truncated-value path.
func reconstruct(sign, exp, mant uint64, k uint) float64 {
	if k < 52 {
		mant |= uint64(1) << (52 - k - 1)
	}
	return math.Float64frombits(sign<<63 | exp<<52 | mant)
}

func (e *Encoder) writeRaw(v float64) {
	e.W.WriteBits(0b11, 2)
	e.W.WriteBits(math.Float64bits(v), 64)
}

// BitsFor returns the number of bits Encode will use for v, without
// writing. Useful for cost models.
func (e *Encoder) BitsFor(v float64) int {
	if e.eb <= 0 || math.IsInf(e.eb, 0) || math.IsNaN(e.eb) ||
		math.IsNaN(v) || math.IsInf(v, 0) {
		return 66
	}
	if math.Abs(v) <= e.eb {
		return 2
	}
	bits := math.Float64bits(v)
	exp := int((bits >> 52) & 0x7FF)
	if exp == 0 {
		return 66
	}
	k := exp - 1023 - e.ebExp
	if k < 0 {
		k = 0
	}
	if k > 52 {
		k = 52
	}
	return 1 + 1 + 11 + 6 + k
}

// Decoder reads values written by Encoder.
type Decoder struct {
	R *bitstream.Reader
}

// NewDecoder returns a Decoder over r.
func NewDecoder(r *bitstream.Reader) *Decoder { return &Decoder{R: r} }

// Decode reads one value.
func (d *Decoder) Decode() (float64, error) {
	t, err := d.R.ReadBits(1)
	if err != nil {
		return 0, err
	}
	if t == 0 { // truncated
		sign, err := d.R.ReadBits(1)
		if err != nil {
			return 0, err
		}
		exp, err := d.R.ReadBits(11)
		if err != nil {
			return 0, err
		}
		k, err := d.R.ReadBits(6)
		if err != nil {
			return 0, err
		}
		if k > 52 {
			k = 52
		}
		var mant uint64
		if k > 0 {
			top, err := d.R.ReadBits(uint(k))
			if err != nil {
				return 0, err
			}
			mant = top << (52 - uint(k))
		}
		if k < 52 {
			// Midpoint of the dropped tail: halves the worst-case error.
			mant |= uint64(1) << (52 - uint(k) - 1)
		}
		bits := sign<<63 | exp<<52 | mant
		return math.Float64frombits(bits), nil
	}
	t2, err := d.R.ReadBits(1)
	if err != nil {
		return 0, err
	}
	if t2 == 0 { // zero
		return 0, nil
	}
	raw, err := d.R.ReadBits(64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(raw), nil
}
