package binrep

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
)

func encodeDecode(t *testing.T, vals []float64, eb float64) []float64 {
	t.Helper()
	w := bitstream.NewWriter(0)
	enc := NewEncoder(w, eb)
	for _, v := range vals {
		enc.Encode(v)
	}
	r := bitstream.NewReaderBits(w.Bytes(), w.Len())
	dec := NewDecoder(r)
	out := make([]float64, len(vals))
	for i := range vals {
		v, err := dec.Decode()
		if err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
		out[i] = v
	}
	return out
}

func TestBoundRespected(t *testing.T) {
	vals := []float64{1.0, -1.0, 3.14159, 1e10, -1e-5, 123456.789, 0.001}
	for _, eb := range []float64{1e-2, 1e-4, 1e-8, 1.5e-3, 1} {
		out := encodeDecode(t, vals, eb)
		for i, v := range vals {
			if math.Abs(out[i]-v) > eb {
				t.Fatalf("eb=%g: |%g - %g| = %g > eb", eb, out[i], v, math.Abs(out[i]-v))
			}
		}
	}
}

func TestZeroAndSmallValues(t *testing.T) {
	eb := 0.01
	out := encodeDecode(t, []float64{0, 0.005, -0.0099, 1e-300}, eb)
	for _, v := range out {
		if v != 0 {
			t.Fatalf("small values should decode to exactly 0, got %v", v)
		}
	}
}

func TestNonFiniteValues(t *testing.T) {
	vals := []float64{math.Inf(1), math.Inf(-1), math.NaN()}
	out := encodeDecode(t, vals, 1e-3)
	if !math.IsInf(out[0], 1) || !math.IsInf(out[1], -1) || !math.IsNaN(out[2]) {
		t.Fatalf("non-finite values must round-trip exactly: %v", out)
	}
}

func TestNonPositiveBoundIsLossless(t *testing.T) {
	vals := []float64{1.23456789012345, -9.87654321e-12, 1e15}
	for _, eb := range []float64{0, -1, math.Inf(1), math.NaN()} {
		out := encodeDecode(t, vals, eb)
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("eb=%v should be lossless: got %v want %v", eb, out[i], vals[i])
			}
		}
	}
}

func TestSubnormalAboveBound(t *testing.T) {
	// eb smaller than a subnormal value: forces the raw escape.
	eb := 1e-320
	v := 5e-320 // subnormal
	out := encodeDecode(t, []float64{v}, eb)
	if math.Abs(out[0]-v) > eb {
		t.Fatalf("subnormal: error %g > %g", math.Abs(out[0]-v), eb)
	}
}

func TestHugeDynamicRange(t *testing.T) {
	// The CDNUMC case from the paper: values spanning 1e-3..1e11 with an
	// absolute bound derived from the range. Every outlier must respect it.
	eb := 1e-7 * 1e11 // ebrel=1e-7 of range 1e11
	vals := []float64{1e-3, 6.936168, 42, 1e7, 9.99e10}
	out := encodeDecode(t, vals, eb)
	for i, v := range vals {
		if math.Abs(out[i]-v) > eb {
			t.Fatalf("value %g: error %g > bound %g", v, math.Abs(out[i]-v), eb)
		}
	}
}

func TestBitsForMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	eb := 1e-4
	for i := 0; i < 200; i++ {
		v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
		w := bitstream.NewWriter(0)
		enc := NewEncoder(w, eb)
		enc.Encode(v)
		if int(w.Len()) != enc.BitsFor(v) {
			t.Fatalf("BitsFor(%g)=%d but wrote %d bits", v, enc.BitsFor(v), w.Len())
		}
	}
}

func TestTruncationSavesBits(t *testing.T) {
	// With a loose bound, values near 1.0 should need far fewer than 64 bits.
	w := bitstream.NewWriter(0)
	enc := NewEncoder(w, 1e-3)
	enc.Encode(1.2345678)
	if w.Len() >= 45 {
		t.Fatalf("loose bound should truncate aggressively, used %d bits", w.Len())
	}
}

func TestErrorBoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eb := math.Pow(10, -float64(rng.Intn(10))) * (rng.Float64() + 0.1)
		n := rng.Intn(100) + 1
		vals := make([]float64, n)
		for i := range vals {
			scale := math.Pow(10, float64(rng.Intn(20)-10))
			vals[i] = rng.NormFloat64() * scale
		}
		w := bitstream.NewWriter(0)
		enc := NewEncoder(w, eb)
		for _, v := range vals {
			enc.Encode(v)
		}
		r := bitstream.NewReaderBits(w.Bytes(), w.Len())
		dec := NewDecoder(r)
		for _, v := range vals {
			got, err := dec.Decode()
			if err != nil {
				return false
			}
			if math.Abs(got-v) > eb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	w := bitstream.NewWriter(0)
	enc := NewEncoder(w, 1e-3)
	enc.Encode(123.456)
	// Chop the stream short.
	r := bitstream.NewReaderBits(w.Bytes(), 5)
	dec := NewDecoder(r)
	if _, err := dec.Decode(); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1000
	}
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		w := bitstream.NewWriter(len(vals) * 4)
		enc := NewEncoder(w, 1e-4)
		for _, v := range vals {
			enc.Encode(v)
		}
	}
}

func TestEncodeReturnsDecoderValue(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, eb := range []float64{1e-2, 1e-5, 1e-9, 0, -1} {
		w := bitstream.NewWriter(0)
		enc := NewEncoder(w, eb)
		vals := make([]float64, 200)
		rets := make([]float64, 200)
		for i := range vals {
			vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5))
			rets[i] = enc.Encode(vals[i])
		}
		r := bitstream.NewReaderBits(w.Bytes(), w.Len())
		dec := NewDecoder(r)
		for i := range vals {
			got, err := dec.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(rets[i]) {
				t.Fatalf("eb=%g val=%g: Encode returned %g, Decode produced %g",
					eb, vals[i], rets[i], got)
			}
		}
	}
}
