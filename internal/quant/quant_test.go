package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeCenterHit(t *testing.T) {
	q, err := New(0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	code, recon, ok := q.Quantize(5.004, 5.0)
	if !ok {
		t.Fatal("value within eb of prediction must be predictable")
	}
	if code != q.CenterCode() {
		t.Fatalf("code = %d, want center %d", code, q.CenterCode())
	}
	if recon != 5.0 {
		t.Fatalf("recon = %v, want 5.0", recon)
	}
}

func TestQuantizeOffsets(t *testing.T) {
	q, _ := New(0.5, 4) // intervals of width 1, radius 7
	pred := 10.0
	for off := -7; off <= 7; off++ {
		x := pred + float64(off) // exactly at interval centre
		code, recon, ok := q.Quantize(x, pred)
		if !ok {
			t.Fatalf("offset %d should be predictable", off)
		}
		if code != q.CenterCode()+off {
			t.Fatalf("offset %d: code %d, want %d", off, code, q.CenterCode()+off)
		}
		if math.Abs(recon-x) > q.ErrorBound() {
			t.Fatalf("offset %d: recon error %v", off, recon-x)
		}
	}
}

func TestQuantizeOutOfRange(t *testing.T) {
	q, _ := New(0.5, 4) // radius 7, reach = 7*1 + 0.5 = 7.5
	if _, _, ok := q.Quantize(18.0, 10.0); ok {
		t.Fatal("diff 8.0 > reach must be unpredictable")
	}
	if code, _, ok := q.Quantize(100, 0); ok || code != UnpredictableCode {
		t.Fatal("far value must give the unpredictable code")
	}
}

func TestQuantizeNaNInf(t *testing.T) {
	q, _ := New(0.1, 8)
	if _, _, ok := q.Quantize(math.NaN(), 0); ok {
		t.Fatal("NaN must be unpredictable")
	}
	if _, _, ok := q.Quantize(math.Inf(1), 0); ok {
		t.Fatal("Inf must be unpredictable")
	}
	if _, _, ok := q.Quantize(1, math.Inf(-1)); ok {
		t.Fatal("Inf prediction must be unpredictable")
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	q, _ := New(0.001, 8)
	pred := -3.7
	for _, x := range []float64{-3.7, -3.701, -3.58, -3.85} {
		code, recon, ok := q.Quantize(x, pred)
		if !ok {
			t.Fatalf("x=%v should be predictable", x)
		}
		got, err := q.Reconstruct(code, pred)
		if err != nil {
			t.Fatal(err)
		}
		if got != recon {
			t.Fatalf("Reconstruct(%d) = %v, want %v", code, got, recon)
		}
	}
}

func TestReconstructErrors(t *testing.T) {
	q, _ := New(0.1, 4)
	if _, err := q.Reconstruct(UnpredictableCode, 0); err == nil {
		t.Fatal("code 0 must be rejected")
	}
	if _, err := q.Reconstruct(16, 0); err == nil {
		t.Fatal("code 2^m must be rejected")
	}
	if _, err := q.Reconstruct(-1, 0); err == nil {
		t.Fatal("negative code must be rejected")
	}
}

func TestErrorBoundInvariantQuick(t *testing.T) {
	// THE core invariant of the paper: any predictable quantization honours
	// |x - recon| <= eb, for any eb, m, x, pred.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eb := math.Pow(10, -float64(rng.Intn(8))) * (rng.Float64() + 0.01)
		m := MinBits + rng.Intn(MaxBits-MinBits+1)
		q, err := New(eb, m)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			pred := rng.NormFloat64() * 100
			x := pred + rng.NormFloat64()*eb*float64(int(1)<<uint(m-1))
			code, recon, ok := q.Quantize(x, pred)
			if !ok {
				continue
			}
			if code <= 0 || code >= q.NumCodes() {
				return false
			}
			if math.Abs(x-recon) > eb {
				return false
			}
			// decoder sees same pred -> same recon
			got, err := q.Reconstruct(code, pred)
			if err != nil || got != recon {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalEdgeRounding(t *testing.T) {
	// Values exactly at interval boundaries must still respect the bound.
	q, _ := New(1.0, 4)
	pred := 0.0
	for _, x := range []float64{1.0, -1.0, 3.0, 2.9999999999, 3.0000000001} {
		_, recon, ok := q.Quantize(x, pred)
		if ok && math.Abs(x-recon) > q.ErrorBound() {
			t.Fatalf("x=%v: bound violated, recon=%v", x, recon)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Fatal("eb=0 must fail")
	}
	if _, err := New(-1, 8); err == nil {
		t.Fatal("eb<0 must fail")
	}
	if _, err := New(math.Inf(1), 8); err == nil {
		t.Fatal("eb=Inf must fail")
	}
	if _, err := New(math.NaN(), 8); err == nil {
		t.Fatal("eb=NaN must fail")
	}
	if _, err := New(0.1, 1); err == nil {
		t.Fatal("m=1 must fail")
	}
	if _, err := New(0.1, 17); err == nil {
		t.Fatal("m=17 must fail")
	}
}

func TestCounts(t *testing.T) {
	q, _ := New(0.1, 8)
	if q.NumIntervals() != 255 {
		t.Fatalf("NumIntervals = %d, want 255", q.NumIntervals())
	}
	if q.NumCodes() != 256 {
		t.Fatalf("NumCodes = %d, want 256", q.NumCodes())
	}
	if q.CenterCode() != 128 {
		t.Fatalf("CenterCode = %d, want 128", q.CenterCode())
	}
	if q.Bits() != 8 {
		t.Fatalf("Bits = %d", q.Bits())
	}
}

func TestAdaptIncrease(t *testing.T) {
	hist := make([]uint64, 256)
	hist[0] = 50 // half unpredictable
	hist[128] = 50
	advice, rate, err := Adapt(hist, 8, DefaultHitRateThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if advice != Increase {
		t.Fatalf("advice = %v, want Increase", advice)
	}
	if rate != 0.5 {
		t.Fatalf("rate = %v", rate)
	}
}

func TestAdaptKeep(t *testing.T) {
	// 95% hits spread beyond the m-1 radius: keep.
	hist := make([]uint64, 256)
	hist[0] = 5
	// Place hits outside the would-be smaller radius (m-1: radius 63).
	hist[128+100] = 50
	hist[128-100] = 45
	advice, _, err := Adapt(hist, 8, DefaultHitRateThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if advice != Keep {
		t.Fatalf("advice = %v, want Keep", advice)
	}
}

func TestAdaptDecrease(t *testing.T) {
	// All hits on the centre code: a smaller m suffices.
	hist := make([]uint64, 256)
	hist[128] = 100
	advice, rate, err := Adapt(hist, 8, DefaultHitRateThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if advice != Decrease {
		t.Fatalf("advice = %v (rate %v), want Decrease", advice, rate)
	}
}

func TestAdaptBoundaries(t *testing.T) {
	// At m=MinBits, never advise Decrease.
	hist := make([]uint64, 1<<MinBits)
	hist[1<<(MinBits-1)] = 100
	advice, _, err := Adapt(hist, MinBits, DefaultHitRateThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if advice != Keep {
		t.Fatalf("m=MinBits advice = %v, want Keep", advice)
	}
	// At m=MaxBits with bad rate, never advise Increase.
	hist = make([]uint64, 1<<MaxBits)
	hist[0] = 100
	hist[1<<(MaxBits-1)] = 1
	advice, _, err = Adapt(hist, MaxBits, DefaultHitRateThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if advice != Keep {
		t.Fatalf("m=MaxBits advice = %v, want Keep", advice)
	}
}

func TestAdaptErrors(t *testing.T) {
	if _, _, err := Adapt(make([]uint64, 10), 8, 0.9); err == nil {
		t.Fatal("wrong histogram size must fail")
	}
	if _, _, err := Adapt(make([]uint64, 256), 8, 0); err == nil {
		t.Fatal("threshold 0 must fail")
	}
	if _, _, err := Adapt(make([]uint64, 256), 8, 1); err == nil {
		t.Fatal("threshold 1 must fail")
	}
	if _, _, err := Adapt(make([]uint64, 256), 8, 0.9); err == nil {
		t.Fatal("empty histogram must fail")
	}
}

func TestHitRate(t *testing.T) {
	hist := make([]uint64, 16)
	hist[0] = 25
	hist[8] = 75
	if got := HitRate(hist); got != 0.75 {
		t.Fatalf("HitRate = %v", got)
	}
	if got := HitRate(make([]uint64, 4)); got != 0 {
		t.Fatalf("empty HitRate = %v", got)
	}
}

func TestAdviceString(t *testing.T) {
	if Keep.String() != "keep" || Increase.String() != "increase" || Decrease.String() != "decrease" {
		t.Fatal("Advice String mismatch")
	}
	if Advice(9).String() == "" {
		t.Fatal("unknown advice should still format")
	}
}

func BenchmarkQuantize(b *testing.B) {
	q, _ := New(1e-4, 8)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4096)
	preds := make([]float64, 4096)
	for i := range xs {
		preds[i] = rng.NormFloat64()
		xs[i] = preds[i] + rng.NormFloat64()*1e-3
	}
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range xs {
			q.Quantize(xs[j], preds[j])
		}
	}
}
