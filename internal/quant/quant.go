// Package quant implements the error-controlled quantization encoder of the
// SZ-1.4 paper (Section IV-A, Fig. 2) and its adaptive interval scheme
// (Section IV-B).
//
// Given a first-phase predicted value p, the real value x is assigned to
// one of 2^m−1 uniform intervals of width 2·eb centred on the second-phase
// predicted values p + 2·eb·i, i ∈ [−(2^(m−1)−1), 2^(m−1)−1]. A value in
// interval i reconstructs as p + 2·eb·i, so the compression error is always
// strictly controlled by eb. Values outside every interval are
// "unpredictable" and receive the reserved code 0.
//
// Unlike the vector quantization of NUMARCK/SSEM, intervals here are
// uniform and fixed-width — that is precisely what makes the error bound
// hold pointwise (see the paper's uniformity / error-control discussion).
package quant

import (
	"fmt"
	"math"
)

// MinBits and MaxBits bound the quantization code width m.
// m=2 gives 3 intervals; m=16 gives 65535 intervals (the largest setting
// used in the paper's Fig. 4).
const (
	MinBits = 2
	MaxBits = 16
)

// UnpredictableCode is the reserved quantization code for values that fall
// outside every interval.
const UnpredictableCode = 0

// Quantizer maps (real, predicted) pairs to quantization codes and back.
type Quantizer struct {
	eb     float64 // absolute error bound
	m      int     // code width in bits
	radius int     // 2^(m-1) - 1: max |interval offset|
	center int     // 2^(m-1): code of offset 0
}

// New returns a Quantizer with 2^m − 1 intervals and absolute bound eb.
func New(eb float64, m int) (*Quantizer, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("quant: error bound %v must be positive and finite", eb)
	}
	if m < MinBits || m > MaxBits {
		return nil, fmt.Errorf("quant: interval bits m=%d out of range [%d,%d]", m, MinBits, MaxBits)
	}
	c := 1 << (m - 1)
	return &Quantizer{eb: eb, m: m, radius: c - 1, center: c}, nil
}

// ErrorBound returns the absolute error bound.
func (q *Quantizer) ErrorBound() float64 { return q.eb }

// Bits returns the code width m.
func (q *Quantizer) Bits() int { return q.m }

// NumIntervals returns the interval count 2^m − 1.
func (q *Quantizer) NumIntervals() int { return 2*q.radius + 1 }

// NumCodes returns the alphabet size 2^m (intervals + unpredictable code).
func (q *Quantizer) NumCodes() int { return 1 << q.m }

// CenterCode returns the code assigned to a perfect prediction (offset 0).
func (q *Quantizer) CenterCode() int { return q.center }

// Quantize returns the code for real value x against prediction pred, and
// the reconstructed (decompressed) value. ok reports whether x was
// predictable; when ok is false the code is UnpredictableCode and recon is
// undefined (the caller must store x via binary-representation analysis).
func (q *Quantizer) Quantize(x, pred float64) (code int, recon float64, ok bool) {
	diff := x - pred
	if math.IsNaN(diff) || math.IsInf(diff, 0) {
		return UnpredictableCode, 0, false
	}
	// Index of the interval whose centre p + 2·eb·i is nearest to x.
	fi := diff / (2 * q.eb)
	if fi > float64(q.radius)+0.5 || fi < -(float64(q.radius)+0.5) {
		return UnpredictableCode, 0, false
	}
	i := int(math.Round(fi))
	if i > q.radius || i < -q.radius {
		return UnpredictableCode, 0, false
	}
	recon = pred + 2*q.eb*float64(i)
	// Guard against floating-point rounding at interval edges: the
	// reconstruction must honour the bound exactly, not just in theory.
	if math.Abs(x-recon) > q.eb {
		return UnpredictableCode, 0, false
	}
	return q.center + i, recon, true
}

// Reconstruct maps a predictable code back to its value given the same
// prediction the encoder used.
func (q *Quantizer) Reconstruct(code int, pred float64) (float64, error) {
	if code == UnpredictableCode {
		return 0, fmt.Errorf("quant: code 0 is the unpredictable escape, not a value code")
	}
	if code < 1 || code >= q.NumCodes() {
		return 0, fmt.Errorf("quant: code %d out of range [1,%d)", code, q.NumCodes())
	}
	return pred + 2*q.eb*float64(code-q.center), nil
}

// --- adaptive interval scheme (Section IV-B) ---------------------------------

// DefaultHitRateThreshold is θ from the paper: when the prediction hitting
// rate falls below it, the compressor suggests more intervals.
const DefaultHitRateThreshold = 0.9

// Advice is the outcome of the adaptive interval analysis.
type Advice int

const (
	// Keep means the current interval count achieves a hitting rate in the
	// sweet spot: above threshold, and the next smaller m would drop below.
	Keep Advice = iota
	// Increase means the hitting rate is below threshold; the user should
	// raise m (paper Algorithm 1 lines 23–25).
	Increase
	// Decrease means a smaller m would still meet the threshold, so codes
	// are being wasted (paper: "reduce until a further reduction results
	// in a rate smaller than θ").
	Decrease
)

func (a Advice) String() string {
	switch a {
	case Keep:
		return "keep"
	case Increase:
		return "increase"
	case Decrease:
		return "decrease"
	}
	return fmt.Sprintf("Advice(%d)", int(a))
}

// Adapt inspects a histogram of quantization codes produced with width m
// and recommends whether to change m. hist must have length 2^m; hist[0]
// counts unpredictable points.
func Adapt(hist []uint64, m int, threshold float64) (Advice, float64, error) {
	if len(hist) != 1<<m {
		return Keep, 0, fmt.Errorf("quant: histogram size %d != 2^%d", len(hist), m)
	}
	if threshold <= 0 || threshold >= 1 {
		return Keep, 0, fmt.Errorf("quant: threshold %v out of (0,1)", threshold)
	}
	var total, hit uint64
	for c, f := range hist {
		total += f
		if c != UnpredictableCode {
			hit += f
		}
	}
	if total == 0 {
		return Keep, 0, fmt.Errorf("quant: empty histogram")
	}
	rate := float64(hit) / float64(total)
	if rate < threshold {
		if m >= MaxBits {
			return Keep, rate, nil
		}
		return Increase, rate, nil
	}
	if m <= MinBits {
		return Keep, rate, nil
	}
	// Would halving the interval count (m-1) still meet the threshold?
	// Codes within the smaller radius survive; the rest become misses.
	smallRadius := 1<<(m-2) - 1
	center := 1 << (m - 1)
	var smallHit uint64
	for c, f := range hist {
		if c == UnpredictableCode {
			continue
		}
		if off := c - center; off >= -smallRadius && off <= smallRadius {
			smallHit += f
		}
	}
	if float64(smallHit)/float64(total) >= threshold {
		return Decrease, rate, nil
	}
	return Keep, rate, nil
}

// HitRate returns the fraction of predictable codes in a histogram.
func HitRate(hist []uint64) float64 {
	var total, hit uint64
	for c, f := range hist {
		total += f
		if c != UnpredictableCode {
			hit += f
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
