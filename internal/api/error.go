package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Error codes carried in the envelope's "code" field. They are the
// stable, machine-readable half of the error contract: messages may
// change, codes may not.
const (
	CodeOverloaded      = "overloaded"        // 429: admission budget exhausted
	CodeTenantOverShare = "tenant_over_share" // 429: tenant exceeded its weighted-fair share
	CodeDraining        = "draining"          // 503: daemon is shutting down
	CodeNoBackend       = "no_backend"        // 503: router found no routable backend
	CodeTooLarge        = "too_large"         // 413: request exceeds the per-request byte cap
	CodeBadRequest      = "bad_request"       // 400: malformed parameters or body
	CodeBadTenant       = "bad_tenant"        // 400: malformed or oversized API key / priority
	CodeNotFound        = "not_found"         // 404: unknown path or missing digest
	CodeNoReplica       = "no_replica"        // 404: digest found on no ring node (owner, replicas, full walk)
	CodeTLSRequired     = "tls_required"      // 400: plaintext request hit a TLS listener
	CodeInternal        = "internal"          // 5xx: unexpected server-side failure
)

// Error is the one JSON error envelope every tier emits and the
// client decodes. Status is the HTTP status it traveled under (not
// serialized; the transport already carries it).
type Error struct {
	Status       int    `json:"-"`
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	RequestID    string `json:"request_id,omitempty"`
}

func (e *Error) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("server returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// Temporary reports whether backing off and retrying can succeed.
func (e *Error) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// RetryAfter is the server's backoff hint, zero when absent.
func (e *Error) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMS) * time.Millisecond
}

// defaultCode maps a status to an envelope code for callers that
// pass a bare error with no code of its own.
func defaultCode(status int) string {
	switch status {
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusServiceUnavailable:
		return CodeDraining
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	}
	if status >= 500 {
		return CodeInternal
	}
	return CodeBadRequest
}

// Wrap lifts any error into an *Error at the given status. An err
// that already is an *Error keeps its code and hints; otherwise the
// code is derived from the status.
func Wrap(status int, err error) *Error {
	var ae *Error
	if errors.As(err, &ae) {
		cp := *ae
		cp.Status = status
		return &cp
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	return &Error{Status: status, Code: defaultCode(status), Message: msg}
}

// WriteError emits the envelope on w. It sets Retry-After (seconds,
// ceiling) alongside retry_after_ms so plain HTTP clients and
// proxies see the standard hint too. The envelope is best-effort: if
// the handler already started streaming a body, the caller must not
// call this.
func WriteError(w http.ResponseWriter, e *Error) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Del("Etag")
	if e.RetryAfterMS > 0 {
		secs := (e.RetryAfterMS + 999) / 1000
		h.Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(e)
}

// ReadError decodes a non-2xx response body into an *Error. It is
// tolerant of history: the current envelope, the legacy
// {"error": "..."} shape, and bare text all decode, so a new client
// against an old daemon still gets a useful message. The body is
// consumed but not closed.
func ReadError(resp *http.Response) *Error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
	e := &Error{Status: resp.StatusCode}
	var probe struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMS int64  `json:"retry_after_ms"`
		RequestID    string `json:"request_id"`
		Legacy       string `json:"error"`
	}
	if err := json.Unmarshal(body, &probe); err == nil && (probe.Code != "" || probe.Message != "" || probe.Legacy != "") {
		e.Code = probe.Code
		e.Message = probe.Message
		e.RetryAfterMS = probe.RetryAfterMS
		e.RequestID = probe.RequestID
		if e.Message == "" {
			e.Message = probe.Legacy
		}
	} else {
		e.Message = strings.TrimSpace(string(body))
	}
	if e.Message == "" {
		e.Message = http.StatusText(resp.StatusCode)
	}
	if e.Code == "" {
		e.Code = defaultCode(resp.StatusCode)
	}
	// A Go TLS listener answers plaintext HTTP with this fixed 400 body.
	// Surface it as its own code so callers fail fast (no retry, clear
	// remedy: configure client TLS) instead of treating it as a generic
	// bad request.
	if resp.StatusCode == http.StatusBadRequest &&
		strings.Contains(e.Message, "HTTP request to an HTTPS server") {
		e.Code = CodeTLSRequired
	}
	if e.RetryAfterMS == 0 {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				e.RetryAfterMS = int64(secs) * 1000
			}
		}
	}
	if e.RequestID == "" {
		e.RequestID = resp.Header.Get(HeaderRequestID)
	}
	return e
}
