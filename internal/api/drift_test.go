package api

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoRawWireLiterals walks every .go file in the repository outside
// internal/api and fails on any raw "X-Sz- string literal: the wire
// surface lives here, and a header that bypasses the constants table
// is exactly the drift this package exists to stop.
func TestNoRawWireLiterals(t *testing.T) {
	root := repoRoot(t)
	var offenders []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := info.Name()
			if base == ".git" || base == "testdata" {
				return filepath.SkipDir
			}
			if path == filepath.Join(root, "internal", "api") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line, `"X-Sz-`) {
				rel, _ := filepath.Rel(root, path)
				offenders = append(offenders, rel+":"+itoa(i+1)+": "+strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking tree: %v", err)
	}
	if len(offenders) > 0 {
		t.Errorf("raw \"X-Sz- literals outside internal/api (use the api package constants):\n  %s",
			strings.Join(offenders, "\n  "))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// repoRoot climbs from the test's working directory to the directory
// holding go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
