package api

// Limits is the GET /v1/limits response on a single daemon: the live
// QoS state a client can read before deciding how hard to push.
type Limits struct {
	// BudgetBytes is the current adaptive admission budget.
	BudgetBytes int64 `json:"budget_bytes"`
	// MaxRequestBytes caps one request's charge.
	MaxRequestBytes int64 `json:"max_request_bytes"`
	// Workers is the current adaptive worker clamp.
	Workers int `json:"workers"`
	// RetryAfterMS is the backoff hint currently attached to sheds.
	RetryAfterMS int64 `json:"retry_after_ms"`
	// Congested reports whether the controller currently sees
	// pressure (budget shrinking or held down).
	Congested bool `json:"congested"`
	// Priorities lists the admission classes in shed order: later
	// entries shed first.
	Priorities []string `json:"priorities"`
	// Tenants holds the per-tenant view, keyed by tenant name. Only
	// tenants with configured weights or live traffic appear.
	Tenants map[string]TenantLimits `json:"tenants,omitempty"`
}

// TenantLimits is one tenant's slice of the admission state.
type TenantLimits struct {
	// Weight is the tenant's share weight (default 1).
	Weight float64 `json:"weight"`
	// ShareBytes is the tenant's current weighted-fair byte share of
	// the budget, given the set of active tenants.
	ShareBytes int64 `json:"share_bytes"`
	// InflightBytes is the tenant's admitted-and-unreleased charge.
	InflightBytes int64 `json:"inflight_bytes"`
	// Admitted and Rejected count this tenant's admission outcomes
	// since boot.
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
}

// FleetLimits is the router's GET /v1/limits response: the per-backend
// Limits of every routable backend plus fleet-wide totals.
type FleetLimits struct {
	// BudgetBytes sums the routable backends' budgets.
	BudgetBytes int64 `json:"budget_bytes"`
	// Backends maps backend address to its live Limits. Backends that
	// failed to answer are absent.
	Backends map[string]Limits `json:"backends"`
}
