package api

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestAPIDocCoversConstants keeps API.md honest: every wire constant
// this package exports must appear in the doc's "Wire constants"
// table, by name and by value. Adding a constant without documenting
// it fails here; the drift test covers the opposite direction (code
// bypassing the constants).
func TestAPIDocCoversConstants(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join(moduleRoot(t), "API.md"))
	if err != nil {
		t.Fatalf("API.md must exist at the repository root: %v", err)
	}
	md := string(doc)

	constants := map[string]string{
		"PathCompress":        PathCompress,
		"PathDecompress":      PathDecompress,
		"PathCodecs":          PathCodecs,
		"PathInspect":         PathInspect,
		"PathSlabs":           PathSlabs,
		"PathSlabPrefix":      PathSlabPrefix,
		"PathContainerPrefix": PathContainerPrefix,
		"PathContainers":      PathContainers,
		"PathLimits":          PathLimits,
		"PathHealthz":         PathHealthz,
		"PathMetrics":         PathMetrics,
		"PathDebugTraces":     PathDebugTraces,
		"PathDebugQOS":        PathDebugQOS,
		"ParamHeaderPrefix":   ParamHeaderPrefix,
		"HeaderCodec":         HeaderCodec,
		"HeaderDims":          HeaderDims,
		"HeaderDtype":         HeaderDtype,
		"HeaderSlabs":         HeaderSlabs,
		"HeaderSlabLengths":   HeaderSlabLengths,
		"HeaderDigest":        HeaderDigest,
		"HeaderStore":         HeaderStore,
		"HeaderCache":         HeaderCache,
		"HeaderBackend":       HeaderBackend,
		"HeaderRequestID":     HeaderRequestID,
		"HeaderContentLength": HeaderContentLength,
		"HeaderAPIKey":        HeaderAPIKey,
		"HeaderPriority":      HeaderPriority,
		"HeaderTenant":        HeaderTenant,
		"QueryDigest":         QueryDigest,
		"QueryLimit":          QueryLimit,
		"QueryTrace":          QueryTrace,
		"MediaTypeSlabExtent": MediaTypeSlabExtent,
		"DefaultTenant":       DefaultTenant,
		"MaxAPIKeyLen":        strconv.Itoa(MaxAPIKeyLen),
		"Interactive":         Interactive.String(),
		"Batch":               Batch.String(),
		"CodeOverloaded":      CodeOverloaded,
		"CodeTenantOverShare": CodeTenantOverShare,
		"CodeDraining":        CodeDraining,
		"CodeNoBackend":       CodeNoBackend,
		"CodeTooLarge":        CodeTooLarge,
		"CodeBadRequest":      CodeBadRequest,
		"CodeBadTenant":       CodeBadTenant,
		"CodeNotFound":        CodeNotFound,
		"CodeNoReplica":       CodeNoReplica,
		"CodeTLSRequired":     CodeTLSRequired,
		"CodeInternal":        CodeInternal,
	}
	for name, value := range constants {
		row := fmt.Sprintf("| `%s` | `%s` |", name, value)
		if !strings.Contains(md, row) {
			t.Errorf("API.md wire-constants table missing row %s", row)
		}
	}
}

// moduleRoot walks up from the working directory to the go.mod root.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
