// Package api is the single source of truth for szd's wire surface:
// every endpoint path, X-Sz-* header, and query key the daemon, the
// router, the client, and the CLI exchange lives here as a typed
// constant, together with the tenant identity rules and the JSON
// error envelope all tiers emit and decode. The package is a leaf —
// stdlib only — so every other layer can import it without cycles. A
// drift test (drift_test.go) greps the tree for raw "X-Sz- literals
// outside this package, so new headers cannot sneak in as strings.
package api

import (
	"fmt"
	"strings"
)

// Endpoint paths. Prefix constants end in "/" and are registered as
// subtree matches; the rest are exact.
const (
	PathCompress        = "/v1/compress"
	PathDecompress      = "/v1/decompress"
	PathCodecs          = "/v1/codecs"
	PathInspect         = "/v1/inspect"
	PathSlabs           = "/v1/slabs"
	PathSlabPrefix      = "/v1/slab/"
	PathContainerPrefix = "/v1/container/"
	PathContainers      = "/v1/containers"
	PathLimits          = "/v1/limits"
	PathHealthz         = "/healthz"
	PathMetrics         = "/metrics"
	PathDebugTraces     = "/debug/traces"
	PathDebugQOS        = "/debug/qos"
)

// Wire headers. ParamHeaderPrefix is the namespace every codec query
// key can ride under (X-Sz-Codec, X-Sz-Abs, ...) when a caller prefers
// headers over the query string; the named constants below are the
// headers with fixed, non-parameter meaning.
const (
	ParamHeaderPrefix = "X-Sz-"

	HeaderCodec         = "X-Sz-Codec"
	HeaderDims          = "X-Sz-Dims"
	HeaderDtype         = "X-Sz-Dtype"
	HeaderSlabs         = "X-Sz-Slabs"
	HeaderSlabLengths   = "X-Sz-Slab-Lengths"
	HeaderDigest        = "X-Sz-Digest"
	HeaderStore         = "X-Sz-Store"
	HeaderCache         = "X-Sz-Cache"
	HeaderBackend       = "X-Sz-Backend"
	HeaderRequestID     = "X-Sz-Request-Id"
	HeaderContentLength = "X-Sz-Content-Length"

	// HeaderAPIKey carries the caller's tenant credential. The tenant
	// name is the key's prefix up to the first '.' (or the whole key);
	// absent means DefaultTenant.
	HeaderAPIKey = "X-Sz-Api-Key"
	// HeaderPriority selects the admission class: "interactive"
	// (default) or "batch".
	HeaderPriority = "X-Sz-Priority"
	// HeaderTenant is the resolved tenant name a tier attaches for the
	// next hop. It is derived, never trusted: szd and szrouter both
	// strip inbound values and re-derive from HeaderAPIKey, so a
	// client cannot spoof another tenant's share by setting it.
	HeaderTenant = "X-Sz-Tenant"
)

// Query keys with fixed meaning outside codec.Params.
const (
	QueryDigest = "digest"
	QueryLimit  = "limit"
	QueryTrace  = "trace_id"
)

// MediaTypeSlabExtent is the Accept/Content-Type for compressed slab
// extents served without a backend decode.
const MediaTypeSlabExtent = "application/x-sz-slab"

// DefaultTenant is the identity of requests that carry no API key.
const DefaultTenant = "default"

// MaxAPIKeyLen bounds HeaderAPIKey; longer keys are rejected with
// CodeBadTenant before any admission work.
const MaxAPIKeyLen = 128

// Priority is a request's admission class.
type Priority int

const (
	// Interactive requests may use the full admission budget.
	Interactive Priority = iota
	// Batch requests are admitted only while the daemon has headroom;
	// under pressure they shed first.
	Batch
)

func (p Priority) String() string {
	if p == Batch {
		return "batch"
	}
	return "interactive"
}

// ParsePriority maps a HeaderPriority value to a Priority. Empty means
// Interactive; anything else unrecognized is an error.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	}
	return Interactive, fmt.Errorf("unknown priority %q (want interactive or batch)", s)
}

// validKeyByte reports whether c may appear in an API key: the
// unreserved URL set, so keys survive logs, headers, and shells.
func validKeyByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '.' || c == '_' || c == '-':
		return true
	}
	return false
}

// TenantFromKey validates an API key and resolves its tenant name.
// The empty key is the default tenant. The tenant is the key's prefix
// up to the first '.', so "acme.k1" and "acme.k2" share one bucket
// while remaining distinct credentials.
func TenantFromKey(key string) (string, error) {
	if key == "" {
		return DefaultTenant, nil
	}
	if len(key) > MaxAPIKeyLen {
		return "", fmt.Errorf("api key exceeds %d bytes", MaxAPIKeyLen)
	}
	for i := 0; i < len(key); i++ {
		if !validKeyByte(key[i]) {
			return "", fmt.Errorf("api key contains invalid byte %q", key[i])
		}
	}
	tenant := key
	if i := strings.IndexByte(key, '.'); i > 0 {
		tenant = key[:i]
	} else if i == 0 {
		return "", fmt.Errorf("api key has empty tenant prefix")
	}
	return tenant, nil
}
