package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTenantFromKey(t *testing.T) {
	cases := []struct {
		key    string
		tenant string
		ok     bool
	}{
		{"", DefaultTenant, true},
		{"acme", "acme", true},
		{"acme.key-1", "acme", true},
		{"acme.team.key", "acme", true},
		{"A-Z_0.9", "A-Z_0", true},
		{".leading-dot", "", false},
		{"bad key", "", false},
		{"bad\x00key", "", false},
		{"bad;key", "", false},
		{"\xc3\xa9clair", "", false},
		{strings.Repeat("k", MaxAPIKeyLen), strings.Repeat("k", MaxAPIKeyLen), true},
		{strings.Repeat("k", MaxAPIKeyLen+1), "", false},
	}
	for _, c := range cases {
		tenant, err := TenantFromKey(c.key)
		if c.ok && (err != nil || tenant != c.tenant) {
			t.Errorf("TenantFromKey(%q) = %q, %v; want %q", c.key, tenant, err, c.tenant)
		}
		if !c.ok && err == nil {
			t.Errorf("TenantFromKey(%q) accepted; want error", c.key)
		}
	}
}

func TestParsePriority(t *testing.T) {
	for s, want := range map[string]Priority{
		"": Interactive, "interactive": Interactive, "Batch": Batch, " batch ": Batch,
	} {
		got, err := ParsePriority(s)
		if err != nil || got != want {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Error("ParsePriority(urgent) accepted; want error")
	}
}

// TestErrorRoundTrip writes an envelope and reads it back through the
// client-side decoder, checking both JSON fields and the standard
// Retry-After header.
func TestErrorRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, &Error{
		Status: http.StatusTooManyRequests, Code: CodeTenantOverShare,
		Message: "tenant acme over share", RetryAfterMS: 1500, RequestID: "abc123",
	})
	resp := rec.Result()
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want 2 (1500ms rounded up)", got)
	}
	e := ReadError(resp)
	if e.Status != http.StatusTooManyRequests || e.Code != CodeTenantOverShare ||
		e.Message != "tenant acme over share" || e.RetryAfterMS != 1500 || e.RequestID != "abc123" {
		t.Errorf("round-tripped envelope mismatch: %+v", e)
	}
	if !e.Temporary() {
		t.Error("429 envelope should be Temporary")
	}
	if e.RetryAfter().Milliseconds() != 1500 {
		t.Errorf("RetryAfter = %v, want 1.5s", e.RetryAfter())
	}
}

// TestReadErrorLegacy decodes the pre-envelope {"error": ...} shape
// and bare text bodies.
func TestReadErrorLegacy(t *testing.T) {
	legacy := &http.Response{
		StatusCode: http.StatusBadRequest,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader(`{"error":"unknown codec"}`)),
	}
	e := ReadError(legacy)
	if e.Message != "unknown codec" || e.Code != CodeBadRequest {
		t.Errorf("legacy decode = %+v", e)
	}

	plain := &http.Response{
		StatusCode: http.StatusServiceUnavailable,
		Header:     http.Header{"Retry-After": {"3"}},
		Body:       io.NopCloser(strings.NewReader("shutting down\n")),
	}
	e = ReadError(plain)
	if e.Message != "shutting down" || e.Code != CodeDraining || e.RetryAfterMS != 3000 {
		t.Errorf("plain decode = %+v", e)
	}

	empty := &http.Response{
		StatusCode: http.StatusNotFound,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader("")),
	}
	e = ReadError(empty)
	if e.Message != "Not Found" || e.Code != CodeNotFound {
		t.Errorf("empty decode = %+v", e)
	}
}

// TestErrorEnvelopeShape pins the serialized field names: they are
// wire contract, documented in API.md.
func TestErrorEnvelopeShape(t *testing.T) {
	b, err := json.Marshal(&Error{Status: 429, Code: CodeOverloaded, Message: "m", RetryAfterMS: 7, RequestID: "r"})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"code"`, `"message"`, `"retry_after_ms"`, `"request_id"`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("envelope %s missing field %s", b, field)
		}
	}
	if strings.Contains(string(b), `"Status"`) || strings.Contains(string(b), `"status"`) {
		t.Errorf("envelope %s must not serialize Status", b)
	}
}

func TestWrapKeepsEnvelope(t *testing.T) {
	inner := &Error{Status: 429, Code: CodeTenantOverShare, Message: "m", RetryAfterMS: 250}
	w := Wrap(http.StatusTooManyRequests, inner)
	if w.Code != CodeTenantOverShare || w.RetryAfterMS != 250 {
		t.Errorf("Wrap lost envelope fields: %+v", w)
	}
	plain := Wrap(http.StatusRequestEntityTooLarge, io.ErrUnexpectedEOF)
	if plain.Code != CodeTooLarge || plain.Message != io.ErrUnexpectedEOF.Error() {
		t.Errorf("Wrap(plain) = %+v", plain)
	}
}
