// Package pwrel adds a pointwise-relative error-bound mode on top of the
// SZ-1.4 core — the PW_REL mode that later SZ releases ship, implemented
// the way the SZ lineage does it: compress the base-2 logarithms of the
// magnitudes with an absolute bound.
//
// The paper's value-range-based relative bound (Section II, Metric 1)
// controls |x−x̃| / (max−min); many analyses instead need |x−x̃| / |x| ≤ ε
// for every point individually. Taking y = log2|x| and bounding |y−ỹ| by
// log2(1+ε) gives exactly that: the reconstruction x̃ = s·2^ỹ satisfies
//
//	|x̃−x|/|x| = |2^(ỹ−y) − 1| ≤ max(2^eb−1, 1−2^−eb) = ε.
//
// Signs travel in a one-bit-per-point side channel; zeros (and subnormals,
// whose logs would explode the value range) are exact via a third channel.
package pwrel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/grid"
)

const magic = "SZPW"

// ErrCorrupt is returned for malformed streams.
var ErrCorrupt = errors.New("pwrel: corrupt stream")

// Params configures pointwise-relative compression.
type Params struct {
	// RelBound is the per-point relative error bound ε in (0, 1).
	RelBound float64
	// Layers and IntervalBits configure the underlying core compressor
	// (0 = defaults).
	Layers       int
	IntervalBits int
}

// Stats reports compression outcomes.
type Stats struct {
	N                 int
	Exact             int // zeros/subnormals/non-finite stored exactly
	CompressedBytes   int
	OriginalBytes     int
	CompressionFactor float64
	BitRate           float64
	// Core carries the log-domain compressor's statistics.
	Core *core.Stats
}

// Compress encodes a with |x̃−x| ≤ RelBound·|x| for every finite normal
// point; zeros, subnormals, NaN and ±Inf are reconstructed exactly.
func Compress(a *grid.Array, p Params) ([]byte, *Stats, error) {
	if !(p.RelBound > 0) || p.RelBound >= 1 {
		return nil, nil, fmt.Errorf("pwrel: RelBound %v must be in (0,1)", p.RelBound)
	}
	n := a.Len()
	logs := grid.New(a.Dims...)
	signs := bitstream.NewWriter(n / 8)
	exactW := bitstream.NewWriter(64)
	exactCount := 0

	// The log of an escaped (exact) point is irrelevant for correctness
	// but feeds the predictor; a neutral fill value keeps prediction sane
	// around holes. Use the mean log of the normal points.
	var meanLog float64
	normals := 0
	for _, v := range a.Data {
		if isNormalish(v) {
			meanLog += math.Log2(math.Abs(v))
			normals++
		}
	}
	if normals > 0 {
		meanLog /= float64(normals)
	}

	for i, v := range a.Data {
		if !isNormalish(v) {
			// Exact channel: flag 1 + raw 64 bits; log slot gets the fill.
			exactW.WriteBits(1, 1)
			exactW.WriteBits(math.Float64bits(v), 64)
			exactCount++
			logs.Data[i] = meanLog
			signs.WriteBool(false)
			continue
		}
		exactW.WriteBits(0, 1)
		signs.WriteBool(math.Signbit(v))
		logs.Data[i] = math.Log2(math.Abs(v))
	}

	// Shaving a hair off the log-domain bound absorbs the Log2/Exp2
	// round-trip rounding so the relative guarantee holds strictly.
	ebLog := math.Log2(1+p.RelBound) * (1 - 1e-12)
	cp := core.Params{
		Mode:         core.BoundAbs,
		AbsBound:     ebLog,
		Layers:       p.Layers,
		IntervalBits: p.IntervalBits,
	}
	coreStream, coreStats, err := core.Compress(logs, cp)
	if err != nil {
		return nil, nil, err
	}

	signBytes := signs.Bytes()
	exactBytes := exactW.Bytes()
	head := make([]byte, 0, 64)
	head = append(head, magic...)
	head = binary.LittleEndian.AppendUint64(head, math.Float64bits(p.RelBound))
	head = binary.AppendUvarint(head, uint64(exactCount))
	head = binary.AppendUvarint(head, uint64(len(signBytes)))
	head = binary.AppendUvarint(head, uint64(len(exactBytes)))
	head = binary.AppendUvarint(head, uint64(len(coreStream)))
	out := append(head, signBytes...)
	out = append(out, exactBytes...)
	out = append(out, coreStream...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))

	st := &Stats{
		N:               n,
		Exact:           exactCount,
		CompressedBytes: len(out),
		OriginalBytes:   n * 8,
		Core:            coreStats,
	}
	st.CompressionFactor = float64(st.OriginalBytes) / float64(st.CompressedBytes)
	st.BitRate = float64(st.CompressedBytes) * 8 / float64(n)
	return out, st, nil
}

// isNormalish reports whether v is finite, nonzero, and not subnormal —
// the domain on which the log transform is well-behaved.
func isNormalish(v float64) bool {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	return math.Abs(v) >= 0x1p-1022
}

// Decompress inverts Compress.
func Decompress(stream []byte) (*grid.Array, float64, error) {
	if len(stream) < 4+8+4 {
		return nil, 0, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if string(stream[:4]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(stream[:len(stream)-4]) != binary.LittleEndian.Uint32(stream[len(stream)-4:]) {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	off := 4
	rel := math.Float64frombits(binary.LittleEndian.Uint64(stream[off:]))
	off += 8
	if !(rel > 0) || rel >= 1 {
		return nil, 0, fmt.Errorf("%w: bad bound %v", ErrCorrupt, rel)
	}
	exactCount, k := binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: bad exact count", ErrCorrupt)
	}
	off += k
	signLen, k := binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: bad sign length", ErrCorrupt)
	}
	off += k
	exactLen, k := binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: bad exact length", ErrCorrupt)
	}
	off += k
	coreLen, k := binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: bad core length", ErrCorrupt)
	}
	off += k
	if uint64(len(stream)) != uint64(off)+signLen+exactLen+coreLen+4 {
		return nil, 0, fmt.Errorf("%w: section lengths", ErrCorrupt)
	}
	signBytes := stream[off : off+int(signLen)]
	exactBytes := stream[off+int(signLen) : off+int(signLen)+int(exactLen)]
	coreStream := stream[off+int(signLen)+int(exactLen) : len(stream)-4]

	logs, _, err := core.Decompress(coreStream)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: core: %v", ErrCorrupt, err)
	}
	n := logs.Len()
	out := grid.New(logs.Dims...)
	signs := bitstream.NewReader(signBytes)
	exact := bitstream.NewReader(exactBytes)
	seenExact := 0
	for i := 0; i < n; i++ {
		isExact, err := exact.ReadBits(1)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: exact flags: %v", ErrCorrupt, err)
		}
		neg, err := signs.ReadBool()
		if err != nil {
			return nil, 0, fmt.Errorf("%w: signs: %v", ErrCorrupt, err)
		}
		if isExact == 1 {
			bits, err := exact.ReadBits(64)
			if err != nil {
				return nil, 0, fmt.Errorf("%w: exact value: %v", ErrCorrupt, err)
			}
			out.Data[i] = math.Float64frombits(bits)
			seenExact++
			continue
		}
		v := math.Exp2(logs.Data[i])
		if neg {
			v = -v
		}
		out.Data[i] = v
	}
	if seenExact != int(exactCount) {
		return nil, 0, fmt.Errorf("%w: exact count %d, header says %d", ErrCorrupt, seenExact, exactCount)
	}
	return out, rel, nil
}
