package pwrel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func roundTrip(t *testing.T, a *grid.Array, rel float64) *grid.Array {
	t.Helper()
	stream, st, err := Compress(a, Params{RelBound: rel})
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressedBytes != len(stream) {
		t.Fatalf("stats bytes %d != %d", st.CompressedBytes, len(stream))
	}
	out, gotRel, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if gotRel != rel {
		t.Fatalf("bound %v, want %v", gotRel, rel)
	}
	if err := grid.SameShape(a, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func assertPointwise(t *testing.T, a, out *grid.Array, rel float64) {
	t.Helper()
	for i, x := range a.Data {
		got := out.Data[i]
		if !isNormalish(x) {
			if math.Float64bits(got) != math.Float64bits(x) {
				t.Fatalf("special value at %d not exact: %v vs %v", i, got, x)
			}
			continue
		}
		if e := math.Abs(got-x) / math.Abs(x); e > rel {
			t.Fatalf("pointwise bound violated at %d: x=%g x̃=%g rel err %g > %g", i, x, got, e, rel)
		}
	}
}

func TestPointwiseBoundSmooth(t *testing.T) {
	a := grid.New(60, 80)
	for i := 0; i < 60; i++ {
		for j := 0; j < 80; j++ {
			a.Set(100*math.Exp(math.Sin(float64(i)*0.1)+math.Cos(float64(j)*0.07)), i, j)
		}
	}
	for _, rel := range []float64{1e-2, 1e-4, 1e-6} {
		out := roundTrip(t, a, rel)
		assertPointwise(t, a, out, rel)
	}
}

func TestPointwiseBeatsRangeRelativeOnWideData(t *testing.T) {
	// The motivating case: values spanning many decades. A range-relative
	// bound lets small values be destroyed; the pointwise mode preserves
	// every value's leading digits.
	rng := rand.New(rand.NewSource(3))
	a := grid.New(2000)
	for i := range a.Data {
		a.Data[i] = math.Pow(10, rng.Float64()*12-6) // 1e-6 .. 1e6
	}
	rel := 1e-3
	out := roundTrip(t, a, rel)
	assertPointwise(t, a, out, rel)
	// Even the smallest values keep ~3 significant digits.
	for i, x := range a.Data {
		if x < 1e-5 && math.Abs(out.Data[i]-x)/x > rel {
			t.Fatalf("small value %g lost precision", x)
		}
	}
}

func TestNegativeValuesAndSigns(t *testing.T) {
	a := grid.New(500)
	for i := range a.Data {
		v := math.Exp(math.Sin(float64(i) * 0.05))
		if i%3 == 0 {
			v = -v
		}
		a.Data[i] = v
	}
	out := roundTrip(t, a, 1e-4)
	assertPointwise(t, a, out, 1e-4)
	for i := range a.Data {
		if math.Signbit(a.Data[i]) != math.Signbit(out.Data[i]) {
			t.Fatalf("sign lost at %d", i)
		}
	}
}

func TestSpecialsExact(t *testing.T) {
	a := grid.New(10)
	copy(a.Data, []float64{0, -0.0, math.NaN(), math.Inf(1), math.Inf(-1), 1e-310, 1.5, -2.5, 1e300, -1e-300})
	out := roundTrip(t, a, 1e-3)
	assertPointwise(t, a, out, 1e-3)
}

func TestCompressesSmoothLogData(t *testing.T) {
	// Exponentially varying data is log-linear: the log-domain pipeline
	// should predict it extremely well.
	a := grid.New(4000)
	for i := range a.Data {
		a.Data[i] = math.Pow(1.01, float64(i))
	}
	stream, st, err := Compress(a, Params{RelBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressionFactor < 8 {
		t.Fatalf("log-linear data CF %.2f too low", st.CompressionFactor)
	}
	out, rel, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	assertPointwise(t, a, out, rel)
}

func TestValidation(t *testing.T) {
	a := grid.New(4)
	for _, rel := range []float64{0, -1, 1, 2, math.NaN()} {
		if _, _, err := Compress(a, Params{RelBound: rel}); err == nil {
			t.Fatalf("RelBound %v accepted", rel)
		}
	}
}

func TestCorruption(t *testing.T) {
	a := grid.New(100)
	for i := range a.Data {
		a.Data[i] = float64(i + 1)
	}
	stream, _, err := Compress(a, Params{RelBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), stream...)
	bad[len(bad)/2] ^= 0x02
	if _, _, err := Decompress(bad); err == nil {
		t.Fatal("corruption undetected")
	}
	if _, _, err := Decompress(stream[:10]); err == nil {
		t.Fatal("truncation undetected")
	}
}

func TestPointwiseBoundQuick(t *testing.T) {
	f := func(seed int64, relSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5}[int(relSel)%5]
		n := rng.Intn(400) + 1
		a := grid.New(n)
		for i := range a.Data {
			switch rng.Intn(10) {
			case 0:
				a.Data[i] = 0
			case 1:
				a.Data[i] = -math.Pow(10, rng.Float64()*20-10)
			default:
				a.Data[i] = math.Pow(10, rng.Float64()*20-10)
			}
		}
		stream, _, err := Compress(a, Params{RelBound: rel})
		if err != nil {
			return false
		}
		out, _, err := Decompress(stream)
		if err != nil {
			return false
		}
		for i, x := range a.Data {
			if !isNormalish(x) {
				if math.Float64bits(out.Data[i]) != math.Float64bits(x) {
					return false
				}
				continue
			}
			if math.Abs(out.Data[i]-x)/math.Abs(x) > rel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
