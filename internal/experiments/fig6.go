package experiments

import (
	"fmt"
	"strings"

	"repro/internal/datagen"
)

// Table3Result reproduces Table III: the data-set inventory.
type Table3Result struct {
	Lines []string
	Scale int
}

// Table3 describes the generated data sets.
func Table3(cfg Config) (*Table3Result, error) {
	cfg = cfg.withDefaults()
	res := &Table3Result{Scale: cfg.Scale}
	for _, s := range cfg.sets() {
		res.Lines = append(res.Lines, datagen.Describe(s))
	}
	return res, nil
}

func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — data sets (synthetic stand-ins at 1/%d of paper dims)\n", r.Scale)
	for _, l := range r.Lines {
		b.WriteString("  " + l + "\n")
	}
	b.WriteString("paper: ATM 1800×3600 (2.6 TB), APS 2560×2560 (40 GB), Hurricane 100×500×500 (1.2 GB)\n")
	return b.String()
}

// Fig6Result reproduces Fig. 6: compression factors of all six compressors
// on the three data sets across the relative-bound sweep.
type Fig6Result struct {
	Bounds []float64
	// CF[set][compressor][boundIdx]; NaN-like zero means the run failed
	// (ISABELA at tight bounds, plotted "until it fails" in the paper).
	CF map[string]map[string][]float64
	// Failed[set][compressor][boundIdx] marks failed cells.
	Failed map[string]map[string][]bool
}

// paperFig6AvgCF holds the paper's average CFs at eb_rel = 1e-4 for the
// side-by-side printout.
var paperFig6AvgCF = map[string]map[string]float64{
	"ATM":       {SZ14: 6.3, ZFP: 3.0, SZ11: 3.8, ISABELA: 1.4, FPZIP: 1.9, GZIP: 1.3},
	"APS":       {SZ14: 5.2, ZFP: 2.9, SZ11: 3.0, ISABELA: 1.2, FPZIP: 1.3, GZIP: 1.1},
	"Hurricane": {SZ14: 21.3, ZFP: 8.0, SZ11: 8.9, ISABELA: 1.2, FPZIP: 2.4, GZIP: 1.3},
}

// Fig6 runs the full compressor × data set × bound sweep.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig6Result{
		Bounds: cfg.RelBounds,
		CF:     map[string]map[string][]float64{},
		Failed: map[string]map[string][]bool{},
	}
	for _, set := range cfg.sets() {
		a := set.Gen()
		res.CF[set.Name] = map[string][]float64{}
		res.Failed[set.Name] = map[string][]bool{}
		for _, comp := range AllCompressors {
			cfs := make([]float64, len(cfg.RelBounds))
			fails := make([]bool, len(cfg.RelBounds))
			for bi, rel := range cfg.RelBounds {
				rr := runCompressor(comp, a, absBoundFor(a, rel), set.DType)
				if rr.Failed {
					fails[bi] = true
					continue
				}
				cfs[bi] = rr.CF
			}
			res.CF[set.Name][comp] = cfs
			res.Failed[set.Name][comp] = fails
		}
	}
	return res, nil
}

func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 6 — compression factor by compressor, data set, and error bound\n")
	for _, set := range sortedKeys(r.CF) {
		fmt.Fprintf(&b, "\n[%s]\n", set)
		header := []string{"compressor"}
		for _, eb := range r.Bounds {
			header = append(header, fmt.Sprintf("eb=%.0e", eb))
		}
		header = append(header, "paper CF@1e-4")
		var rows [][]string
		for _, comp := range AllCompressors {
			row := []string{comp}
			for bi := range r.Bounds {
				if r.Failed[set][comp][bi] {
					row = append(row, "fail")
				} else {
					row = append(row, f2(r.CF[set][comp][bi]))
				}
			}
			row = append(row, f1(paperFig6AvgCF[set][comp]))
			rows = append(rows, row)
		}
		b.WriteString(table(header, rows))
	}
	b.WriteString("\npaper shape: SZ-1.4 best in class on every set and bound; ~2x the\n")
	b.WriteString("second best (ZFP or SZ-1.1); ISABELA/GZIP/FPZIP below 2.5.\n")
	return b.String()
}

// Winner returns the compressor with the highest CF for a set and bound
// index, for assertions in tests.
func (r *Fig6Result) Winner(set string, boundIdx int) string {
	best, bestCF := "", 0.0
	for comp, cfs := range r.CF[set] {
		if r.Failed[set][comp][boundIdx] {
			continue
		}
		if cfs[boundIdx] > bestCF {
			best, bestCF = comp, cfs[boundIdx]
		}
	}
	return best
}
