package experiments

import (
	"math"
	"strings"
	"testing"
)

// testCfg keeps experiment runs small: ATM 56×112, APS 80×80, Hurricane 8×15×15.
func testCfg() Config {
	return Config{Scale: 32, Seed: 7}
}

func TestTable2Shape(t *testing.T) {
	r, err := Table2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Orig) != 4 || len(r.Decomp) != 4 {
		t.Fatalf("want 4 layers, got %d/%d", len(r.Orig), len(r.Decomp))
	}
	for n := 0; n < 4; n++ {
		if r.Orig[n] < 0 || r.Orig[n] > 1 || r.Decomp[n] < 0 || r.Decomp[n] > 1 {
			t.Fatalf("rates out of range: %+v", r)
		}
	}
	// The paper's key observations: on original values a multi-layer
	// predictor wins; on decompressed values the quantization feedback
	// degrades multi-layer prediction, so layer 1 is best.
	if r.BestOrigLayer == 1 {
		t.Fatalf("best orig layer = 1; expected a multi-layer winner (paper: 2)")
	}
	if r.BestDecompLayer != 1 {
		t.Fatalf("best decomp layer = %d, want 1 (paper's conclusion)", r.BestDecompLayer)
	}
	// Quantization feedback cannot improve prediction: decomp <= orig + eps.
	for n := 0; n < 4; n++ {
		if r.Decomp[n] > r.Orig[n]+0.02 {
			t.Fatalf("layer %d: decomp rate %v above orig rate %v", n+1, r.Decomp[n], r.Orig[n])
		}
	}
	if !strings.Contains(r.String(), "Table II") {
		t.Fatal("report missing title")
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Bounds {
		var sum float64
		for _, f := range r.Fraction[i] {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution %d sums to %v", i, sum)
		}
		// Centre code must dominate its neighbours strongly (unimodal peak).
		frac := r.Fraction[i]
		if frac[128] < frac[28] || frac[128] < frac[228] {
			t.Fatalf("distribution %d not peaked at centre", i)
		}
	}
	// Looser bound -> sharper peak (paper: (a) ~45%% vs (b) ~12%%).
	if r.PeakShare[0] <= r.PeakShare[1] {
		t.Fatalf("peak share should shrink with tighter bound: %v", r.PeakShare)
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(testCfg(), "ATM")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HitRate) != len(r.IntervalBits) {
		t.Fatal("curve count mismatch")
	}
	for mi := range r.IntervalBits {
		curve := r.HitRate[mi]
		// Rates must not grow as the bound tightens (small tolerance for
		// quantization ties).
		for bi := 1; bi < len(curve); bi++ {
			if curve[bi] > curve[bi-1]+0.02 {
				t.Fatalf("m=%d: rate rose from %v to %v as bound tightened",
					r.IntervalBits[mi], curve[bi-1], curve[bi])
			}
		}
	}
	// More intervals cover lower bounds: at the mid-sweep bound the widest
	// setting must beat the narrowest.
	mid := 3 // 1e-4
	if r.HitRate[len(r.IntervalBits)-1][mid]+1e-9 < r.HitRate[0][mid] {
		t.Fatalf("more intervals should not hit less: %v vs %v",
			r.HitRate[len(r.IntervalBits)-1][mid], r.HitRate[0][mid])
	}
}

func TestTable3(t *testing.T) {
	r, err := Table3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 3 {
		t.Fatalf("want 3 sets, got %d", len(r.Lines))
	}
	if !strings.Contains(r.String(), "ATM") {
		t.Fatal("missing ATM line")
	}
}

func TestFig6SZWins(t *testing.T) {
	r, err := Fig6(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The headline result: SZ-1.4 has the best CF on every data set at the
	// paper's reference bound 1e-4 (index 1).
	for _, set := range []string{"ATM", "APS", "Hurricane"} {
		if w := r.Winner(set, 1); w != SZ14 {
			t.Fatalf("%s at 1e-4: winner %s, want SZ-1.4 (CFs: %v)", set, w, r.CF[set])
		}
	}
	// Lossless baselines stay below 3 (paper: GZIP<=1.3, FPZIP<=2.4).
	for _, set := range []string{"ATM", "APS", "Hurricane"} {
		for _, comp := range []string{GZIP, FPZIP} {
			for bi := range r.Bounds {
				if cf := r.CF[set][comp][bi]; cf > 3.5 {
					t.Fatalf("%s/%s CF %v implausibly high for lossless", set, comp, cf)
				}
			}
		}
	}
}

func TestTable5SZTightZFPConservative(t *testing.T) {
	r, err := Table5(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"ATM", "Hurricane"} {
		for bi, rel := range r.Bounds {
			szErr := r.MaxRel[set][SZ14][bi]
			zfpErr := r.MaxRel[set][ZFP][bi]
			if szErr > rel*1.0000001 {
				t.Fatalf("%s: SZ max rel err %v exceeds bound %v", set, szErr, rel)
			}
			if szErr < rel*0.5 {
				t.Fatalf("%s: SZ max err %v far below bound %v — should sit at it", set, szErr, rel)
			}
			if zfpErr > rel {
				t.Fatalf("%s: ZFP err %v above bound %v on normal-range data", set, zfpErr, rel)
			}
			if zfpErr > szErr {
				t.Fatalf("%s: ZFP err %v above SZ's %v — ZFP should be conservative", set, zfpErr, szErr)
			}
		}
	}
}

func TestFig7SZBeatsZFPAtMatchedError(t *testing.T) {
	r, err := Fig7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"ATM", "Hurricane"} {
		var ratioSum float64
		n := 0
		for i := range r.CF[set][SZ14] {
			ratioSum += r.CF[set][SZ14][i] / r.CF[set][ZFP][i]
			n++
		}
		if avg := ratioSum / float64(n); avg < 1.0 {
			t.Fatalf("%s: average CF ratio %v, want SZ-1.4 ahead at matched error", set, avg)
		}
	}
}

func TestFig8Ordering(t *testing.T) {
	r, err := Fig8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"ATM", "APS", "Hurricane"} {
		curves := r.Curves[set]
		if len(curves[SZ14]) == 0 {
			t.Fatalf("%s: SZ-1.4 curve empty", set)
		}
		sz := PSNRAt(curves[SZ14], 8)
		sz11 := PSNRAt(curves[SZ11], 8)
		if !math.IsNaN(sz) && !math.IsNaN(sz11) && sz < sz11 {
			t.Fatalf("%s: SZ-1.4 %v dB below SZ-1.1 %v dB at 8 bits/value", set, sz, sz11)
		}
	}
}

func TestTable4CorrelationImproves(t *testing.T) {
	r, err := Table4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"ATM", "Hurricane"} {
		rows := r.Rows[set]
		if len(rows) != 5 {
			t.Fatalf("%s: %d rows", set, len(rows))
		}
		// Tighter matched error -> correlation must not degrade.
		for i := 1; i < len(rows); i++ {
			for _, comp := range []string{SZ14, ZFP, SZ11} {
				if rows[i].Rho[comp]+1e-12 < rows[i-1].Rho[comp] {
					t.Fatalf("%s/%s: rho fell from %v to %v at tighter bound",
						set, comp, rows[i-1].Rho[comp], rows[i].Rho[comp])
				}
			}
		}
		// Five nines reached by the tightest setting (paper's criterion).
		last := rows[len(rows)-1]
		for _, comp := range []string{SZ14, ZFP, SZ11} {
			if last.Nines[comp] < 5 {
				t.Fatalf("%s/%s: only %d nines at tightest bound", set, comp, last.Nines[comp])
			}
		}
	}
}

func TestTable6SpeedsPositive(t *testing.T) {
	r, err := Table6(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for set, comps := range r.Speeds {
		for comp, rows := range comps {
			for _, s := range rows {
				if s[0] <= 0 || s[1] <= 0 {
					t.Fatalf("%s/%s: non-positive speed %v", set, comp, s)
				}
			}
		}
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, variable := range []string{"FREQSH", "SNOWHLND"} {
		for _, comp := range []string{SZ14, ZFP} {
			v := r.MaxAC[variable][comp]
			if v < 0 || v > 1.000001 {
				t.Fatalf("%s/%s: max|AC| %v out of range", variable, comp, v)
			}
			if len(r.AC[variable][comp]) != 100 {
				t.Fatalf("%s/%s: %d lags", variable, comp, len(r.AC[variable][comp]))
			}
		}
	}
	// SNOWHLND compresses far better than FREQSH (paper: 48 vs 6.5).
	if r.CF["SNOWHLND"] < r.CF["FREQSH"] {
		t.Fatalf("SNOWHLND CF %v should exceed FREQSH CF %v", r.CF["SNOWHLND"], r.CF["FREQSH"])
	}
}

func TestFig9Crossover(t *testing.T) {
	// The paper's Fig. 9 conclusion: SZ-1.4's errors are far less
	// correlated than ZFP's on the low-CF variable, but more correlated
	// on the high-CF variable. Use the driver's own (clamped) scale.
	r, err := Fig9(Config{Scale: 8, Seed: 20170529})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxAC["FREQSH"][SZ14] >= r.MaxAC["FREQSH"][ZFP] {
		t.Fatalf("FREQSH: SZ autocorr %v should be below ZFP's %v",
			r.MaxAC["FREQSH"][SZ14], r.MaxAC["FREQSH"][ZFP])
	}
	if r.MaxAC["SNOWHLND"][SZ14] <= r.MaxAC["SNOWHLND"][ZFP] {
		t.Fatalf("SNOWHLND: SZ autocorr %v should be above ZFP's %v",
			r.MaxAC["SNOWHLND"][SZ14], r.MaxAC["SNOWHLND"][ZFP])
	}
}

func TestTables78(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement in -short mode")
	}
	r, err := Tables78(Config{Scale: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MeasuredComp) == 0 || len(r.ModeledComp) == 0 {
		t.Fatal("missing scaling points")
	}
	last := r.ModeledComp[len(r.ModeledComp)-1]
	if last.Processes != 1024 {
		t.Fatalf("model should extend to 1024, got %d", last.Processes)
	}
	if last.Speedup < 850 || last.Speedup > 1000 {
		t.Fatalf("1024-process modeled speedup %v, want ~930 (paper)", last.Speedup)
	}
	if !strings.Contains(r.String(), "Table VII") {
		t.Fatal("report missing title")
	}
}

func TestFig10Shares(t *testing.T) {
	r, err := Fig10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The driver feeds a *measured* compression rate into the model, so
	// absolute shares shift with host load (and the race detector slows
	// compression ~10x); assert only timing-independent shape here. The
	// paper's >50% crossover is pinned with a fixed rate in
	// internal/parallel's TestFig10CrossesHalf.
	prevInitial := 0.0
	for i, row := range r.Rows {
		sum := row.CompressShare + row.WriteCompShare + row.WriteInitialShare
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shares sum to %v", sum)
		}
		if row.WriteInitialShare+1e-9 < prevInitial {
			t.Fatalf("initial-write share fell at procs=%d: %v after %v",
				row.Processes, row.WriteInitialShare, prevInitial)
		}
		prevInitial = row.WriteInitialShare
		_ = i
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.WriteInitialShare <= first.WriteInitialShare {
		t.Fatal("I/O share should grow with scale")
	}
	if last.CompressShare >= first.CompressShare {
		t.Fatal("compression share should shrink with scale")
	}
}

func TestRegistryAllNamesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run in -short mode")
	}
	cfg := Config{Scale: 64, Seed: 3}
	for _, name := range Names {
		if name == "tables7-8" {
			continue // measured separately above; slow under -race
		}
		r, err := Run(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.String() == "" {
			t.Fatalf("%s: empty report", name)
		}
	}
	if _, err := Run("nope", cfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAblations(t *testing.T) {
	r, err := Ablations(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Variable-length encoding must beat fixed-width codes.
	if r.VLEGain <= 1 {
		t.Fatalf("VLE gain %v, want > 1", r.VLEGain)
	}
	// The best layer is data-dependent (paper §III-B); what must hold is
	// that 4 layers never beat the best of 1-2 (feedback amplification),
	// and every CF is sane.
	if len(r.LayerCF) != 4 {
		t.Fatalf("layer CFs: %v", r.LayerCF)
	}
	best12 := math.Max(r.LayerCF[0], r.LayerCF[1])
	if r.LayerCF[3] > best12 {
		t.Fatalf("4 layers (CF %v) beat 1-2 layers (CF %v) despite feedback", r.LayerCF[3], best12)
	}
	for n, cf := range r.LayerCF {
		if cf <= 0 {
			t.Fatalf("layer %d: CF %v", n+1, cf)
		}
	}
	// Hit rate must not fall as intervals grow.
	for i := 1; i < len(r.IntervalHit); i++ {
		if r.IntervalHit[i]+1e-9 < r.IntervalHit[i-1] {
			t.Fatalf("hit rate fell as m grew: %v", r.IntervalHit)
		}
	}
	// Blocked pays a bounded penalty.
	if r.BlockedCF > r.SingleCF*1.01 || r.BlockedCF < r.SingleCF*0.5 {
		t.Fatalf("blocked CF %v vs single %v out of expected band", r.BlockedCF, r.SingleCF)
	}
	// The pointwise mode wins by orders of magnitude on wide-range data.
	if r.PWModeWorstPW > 1e-3 {
		t.Fatalf("pointwise mode worst error %v exceeds its bound", r.PWModeWorstPW)
	}
	if r.RangeModeWorstPW < 10*r.PWModeWorstPW {
		t.Fatalf("range mode (%v) should be far worse pointwise than PW mode (%v)",
			r.RangeModeWorstPW, r.PWModeWorstPW)
	}
	if r.String() == "" {
		t.Fatal("empty report")
	}
}
