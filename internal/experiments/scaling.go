package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/parallel"
)

// ScalingResult reproduces Tables VII and VIII: strong scalability of
// parallel compression and decompression. Points up to the host core
// count are measured with the goroutine pool; the cluster model (Blues
// shape, calibrated on the measured single-worker rate) extends the curve
// to 1024 processes as the paper's tables do.
type ScalingResult struct {
	MeasuredComp   []parallel.ScalingPoint
	MeasuredDecomp []parallel.ScalingPoint
	ModeledComp    []parallel.ScalingPoint
	ModeledDecomp  []parallel.ScalingPoint
}

// paperTables78 holds the published speedups at 1024 processes.
const (
	paperCompSpeedup1024   = 930.7
	paperDecompSpeedup1024 = 932.7
)

// Tables78 measures and models the strong-scaling study (eb_rel = 1e-4,
// as in the paper).
func Tables78(cfg Config) (*ScalingResult, error) {
	cfg = cfg.withDefaults()
	dims := datagen.ATMDims
	rows, cols := dims[0]/cfg.Scale, dims[1]/cfg.Scale
	if rows < 8 {
		rows = 8
	}
	if cols < 8 {
		cols = 8
	}
	p := core.Params{Mode: core.BoundRel, RelBound: 1e-4, OutputType: grid.Float32}
	var workerCounts []int
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	nFiles := 4 * workerCounts[len(workerCounts)-1]
	if nFiles > 64 {
		nFiles = 64
	}
	comp, decomp, err := parallel.MeasureScaling(
		func(i int) *grid.Array { return datagen.ATM(rows, cols, cfg.Seed+int64(i)) },
		nFiles, p, workerCounts)
	if err != nil {
		return nil, err
	}
	res := &ScalingResult{MeasuredComp: comp, MeasuredDecomp: decomp}
	procs := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	if len(comp) > 0 {
		m := parallel.BluesModel(comp[0].SpeedGBs)
		res.ModeledComp = m.Scaling(procs)
	}
	if len(decomp) > 0 {
		m := parallel.BluesModel(decomp[0].SpeedGBs)
		res.ModeledDecomp = m.Scaling(procs)
	}
	return res, nil
}

func formatScaling(name string, measured, modeled []parallel.ScalingPoint, paperSpeedup float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n[%s]\n", name)
	header := []string{"processes", "speed (GB/s)", "speedup", "efficiency", "source"}
	var rows [][]string
	for _, pt := range measured {
		rows = append(rows, []string{
			fmt.Sprint(pt.Processes), fmt.Sprintf("%.3f", pt.SpeedGBs),
			f2(pt.Speedup), pct(pt.Efficiency), "measured",
		})
	}
	for _, pt := range modeled {
		rows = append(rows, []string{
			fmt.Sprint(pt.Processes), fmt.Sprintf("%.3f", pt.SpeedGBs),
			f2(pt.Speedup), pct(pt.Efficiency), "modeled",
		})
	}
	b.WriteString(table(header, rows))
	fmt.Fprintf(&b, "paper speedup at 1024 processes: %.1f (efficiency ~91%%)\n", paperSpeedup)
	return b.String()
}

func (r *ScalingResult) String() string {
	var b strings.Builder
	b.WriteString("Tables VII/VIII — strong scalability of parallel compression (eb_rel=1e-4)\n")
	b.WriteString(formatScaling("Table VII: compression", r.MeasuredComp, r.ModeledComp, paperCompSpeedup1024))
	b.WriteString(formatScaling("Table VIII: decompression", r.MeasuredDecomp, r.ModeledDecomp, paperDecompSpeedup1024))
	b.WriteString("paper shape: ~100% efficiency through 128 processes (<=2 per node),\n")
	b.WriteString("~90% beyond as node-internal contention appears.\n")
	return b.String()
}

// Fig10Result reproduces Fig. 10: the share of time spent compressing,
// writing compressed data, and writing the initial data, per process count.
type Fig10Result struct {
	Rows []parallel.Fig10Row
	// CF and PerProcGBs record the model inputs.
	CF         float64
	PerProcGBs float64
}

// Fig10 evaluates the I/O model using a measured compression factor and
// single-worker rate on ATM-like data at eb_rel = 1e-4.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	set, err := cfg.setByName("ATM")
	if err != nil {
		return nil, err
	}
	a := set.Gen()
	rr := runCompressor(SZ14, a, absBoundFor(a, 1e-4), set.DType)
	if rr.Failed {
		return nil, rr.Err
	}
	perProc := float64(rr.OriginalBytes) / rr.CompSeconds / 1e9
	procs := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// 2.5 TB: the paper's full ATM archive size.
	rows := parallel.Fig10(2.5e12, rr.CF, perProc, parallel.BluesIOModel(), procs)
	return &Fig10Result{Rows: rows, CF: rr.CF, PerProcGBs: perProc}, nil
}

func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 — time shares for 2.5 TB ATM archive (CF=%.1f, %.2f GB/s per process)\n",
		r.CF, r.PerProcGBs)
	header := []string{"processes", "compress", "write compressed", "write initial"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Processes),
			pct(row.CompressShare), pct(row.WriteCompShare), pct(row.WriteInitialShare),
		})
	}
	b.WriteString(table(header, rows))
	b.WriteString("paper shape: from 32 processes on, writing the initial data exceeds 50%\n")
	b.WriteString("of the bar — compression pays for itself at scale.\n")
	return b.String()
}
