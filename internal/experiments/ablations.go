package experiments

import (
	"fmt"
	"strings"

	"repro/internal/blocked"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/pwrel"
)

// AblationsResult quantifies the paper's individual design choices on the
// ATM-like set: the variable-length encoding stage (AEQVE's second half),
// the prediction layer count (Table II's conclusion), the quantization
// interval count (Section IV-B), the blocked-container slab penalty, and
// the pointwise-relative extension on huge-range data.
type AblationsResult struct {
	// VLE ablation: bits per value for the code stream with Huffman
	// versus fixed-width m-bit codes, and the implied gain.
	VLECodeBits, FixedCodeBits float64
	VLEGain                    float64

	// Layer ablation at eb_rel 1e-4: CF per layer count 1..4.
	LayerCF []float64

	// Interval ablation at eb_rel 1e-5: CF and hit rate per m.
	IntervalBits []int
	IntervalCF   []float64
	IntervalHit  []float64

	// Blocked ablation: single-stream CF vs blocked CF (16-row slabs).
	SingleCF, BlockedCF float64

	// Pointwise-relative ablation on CDNUMC-like data (range ~1e14): the
	// worst pointwise relative error under a range-relative bound versus
	// under the pointwise mode, at matched ε = 1e-3.
	RangeModeWorstPW float64
	PWModeWorstPW    float64
}

// Ablations runs all ablations.
func Ablations(cfg Config) (*AblationsResult, error) {
	cfg = cfg.withDefaults()
	set, err := cfg.setByName("ATM")
	if err != nil {
		return nil, err
	}
	a := set.Gen()
	res := &AblationsResult{}

	// VLE ablation.
	_, st, err := core.Compress(a, core.Params{Mode: core.BoundRel, RelBound: 1e-4, OutputType: set.DType})
	if err != nil {
		return nil, err
	}
	res.VLECodeBits = float64(st.CodeBits) / float64(st.N)
	res.FixedCodeBits = float64(st.FixedWidthCodeBits) / float64(st.N)
	res.VLEGain = res.FixedCodeBits / res.VLECodeBits

	// Layers.
	for n := 1; n <= 4; n++ {
		_, st, err := core.Compress(a, core.Params{Mode: core.BoundRel, RelBound: 1e-4, Layers: n, OutputType: set.DType})
		if err != nil {
			return nil, err
		}
		res.LayerCF = append(res.LayerCF, st.CompressionFactor)
	}

	// Intervals at a tighter bound where the count matters.
	res.IntervalBits = []int{4, 6, 8, 10, 12, 16}
	for _, m := range res.IntervalBits {
		_, st, err := core.Compress(a, core.Params{Mode: core.BoundRel, RelBound: 1e-5, IntervalBits: m, OutputType: set.DType})
		if err != nil {
			return nil, err
		}
		res.IntervalCF = append(res.IntervalCF, st.CompressionFactor)
		res.IntervalHit = append(res.IntervalHit, st.HitRate)
	}

	// Blocked penalty.
	cp := core.Params{Mode: core.BoundRel, RelBound: 1e-4, OutputType: set.DType}
	_, single, err := core.Compress(a, cp)
	if err != nil {
		return nil, err
	}
	_, blk, err := blocked.Compress(a, blocked.Params{Core: cp, SlabRows: 16})
	if err != nil {
		return nil, err
	}
	res.SingleCF = single.CompressionFactor
	res.BlockedCF = blk.CompressionFactor

	// Pointwise-relative on huge-range data.
	dims := a.Dims
	wide := datagen.ATMVariant("CDNUMC", dims[0], dims[1], cfg.Seed)
	eps := 1e-3
	stream, _, err := core.Compress(wide, core.Params{Mode: core.BoundRel, RelBound: eps, OutputType: grid.Float32})
	if err != nil {
		return nil, err
	}
	rangeOut, _, err := core.Decompress(stream)
	if err != nil {
		return nil, err
	}
	res.RangeModeWorstPW = worstPointwise(wide, rangeOut)
	pws, _, err := pwrel.Compress(wide, pwrel.Params{RelBound: eps})
	if err != nil {
		return nil, err
	}
	pwOut, _, err := pwrel.Decompress(pws)
	if err != nil {
		return nil, err
	}
	res.PWModeWorstPW = worstPointwise(wide, pwOut)
	return res, nil
}

// worstPointwise returns max_i |x̃−x|/|x| over nonzero points.
func worstPointwise(a, b *grid.Array) float64 {
	var worst float64
	for i, x := range a.Data {
		if x == 0 {
			continue
		}
		e := metrics.MaxAbsError(a.Data[i:i+1], b.Data[i:i+1]) / absf(x)
		if e > worst {
			worst = e
		}
	}
	return worst
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func (r *AblationsResult) String() string {
	var b strings.Builder
	b.WriteString("Ablations — design-choice studies on ATM-like data\n\n")
	fmt.Fprintf(&b, "[variable-length encoding, eb_rel=1e-4]\n")
	fmt.Fprintf(&b, "code stream: %.2f bits/value Huffman vs %.2f fixed-width (%.1fx gain)\n\n",
		r.VLECodeBits, r.FixedCodeBits, r.VLEGain)

	fmt.Fprintf(&b, "[prediction layers, eb_rel=1e-4] (paper: n=1 default wins under feedback)\n")
	for n, cf := range r.LayerCF {
		fmt.Fprintf(&b, "n=%d: CF %.2f\n", n+1, cf)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "[quantization intervals, eb_rel=1e-5] (paper Section IV-B)\n")
	for i, m := range r.IntervalBits {
		fmt.Fprintf(&b, "m=%-2d (%5d intervals): CF %.2f, hit %s\n",
			m, (1<<m)-1, r.IntervalCF[i], pct(r.IntervalHit[i]))
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "[blocked container, 16-row slabs]\n")
	fmt.Fprintf(&b, "single-stream CF %.2f vs blocked CF %.2f (%.1f%% penalty buys parallel + random access)\n\n",
		r.SingleCF, r.BlockedCF, (1-r.BlockedCF/r.SingleCF)*100)

	fmt.Fprintf(&b, "[pointwise-relative mode on CDNUMC-like data (range ~14 decades), ε=1e-3]\n")
	fmt.Fprintf(&b, "worst pointwise relative error: range-relative mode %.3g vs pointwise mode %.3g\n",
		r.RangeModeWorstPW, r.PWModeWorstPW)
	b.WriteString("(range mode satisfies its own metric but destroys small values;\n")
	b.WriteString("the pointwise extension preserves every value's leading digits.)\n")
	return b.String()
}
