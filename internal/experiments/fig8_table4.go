package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// RDPoint is one rate-distortion sample.
type RDPoint struct {
	BitRate float64
	PSNR    float64
}

// Fig8Result reproduces Fig. 8: rate-distortion curves (PSNR vs bit-rate)
// of the four lossy compressors on each data set, up to 16 bits/value.
type Fig8Result struct {
	// Curves[set][compressor] sorted by bit-rate ascending.
	Curves map[string]map[string][]RDPoint
}

// Fig8 sweeps bounds (error-bounded compressors) and rates (ZFP) to trace
// the curves.
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig8Result{Curves: map[string]map[string][]RDPoint{}}
	relSweep := []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7}
	zfpRates := []float64{1, 2, 4, 6, 8, 12, 16}
	for _, set := range cfg.sets() {
		a := set.Gen()
		curves := map[string][]RDPoint{}
		for _, comp := range []string{SZ14, SZ11, ISABELA} {
			for _, rel := range relSweep {
				rr := runCompressor(comp, a, absBoundFor(a, rel), set.DType)
				if rr.Failed {
					continue // ISABELA stops here; plot "until it fails"
				}
				psnr := metrics.PSNR(a.Data, rr.Recon.Data)
				if rr.BitRate <= 16 && !math.IsInf(psnr, 0) && !math.IsNaN(psnr) {
					curves[comp] = append(curves[comp], RDPoint{rr.BitRate, psnr})
				}
			}
		}
		for _, rate := range zfpRates {
			rr := runZFPFixedRate(a, rate, set.DType)
			if rr.Failed {
				continue
			}
			psnr := metrics.PSNR(a.Data, rr.Recon.Data)
			if rr.BitRate <= 16.5 && !math.IsInf(psnr, 0) && !math.IsNaN(psnr) {
				curves[ZFP] = append(curves[ZFP], RDPoint{rr.BitRate, psnr})
			}
		}
		for comp := range curves {
			sort.Slice(curves[comp], func(i, j int) bool {
				return curves[comp][i].BitRate < curves[comp][j].BitRate
			})
		}
		res.Curves[set.Name] = curves
	}
	return res, nil
}

// PSNRAt linearly interpolates a curve's PSNR at the given bit-rate,
// returning NaN when the rate is outside the sampled span.
func PSNRAt(curve []RDPoint, rate float64) float64 {
	if len(curve) == 0 {
		return math.NaN()
	}
	if rate < curve[0].BitRate || rate > curve[len(curve)-1].BitRate {
		return math.NaN()
	}
	for i := 1; i < len(curve); i++ {
		a, b := curve[i-1], curve[i]
		if rate <= b.BitRate {
			if b.BitRate == a.BitRate {
				return b.PSNR
			}
			t := (rate - a.BitRate) / (b.BitRate - a.BitRate)
			return a.PSNR + t*(b.PSNR-a.PSNR)
		}
	}
	return curve[len(curve)-1].PSNR
}

func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — rate-distortion (PSNR dB vs bits/value)\n")
	for _, set := range sortedKeys(r.Curves) {
		fmt.Fprintf(&b, "\n[%s]\n", set)
		var rows [][]string
		for _, comp := range LossyCompressors {
			curve := r.Curves[set][comp]
			if len(curve) == 0 {
				rows = append(rows, []string{comp, "(no points)"})
				continue
			}
			var pts []string
			for _, p := range curve {
				pts = append(pts, fmt.Sprintf("(%.1f, %.0f)", p.BitRate, p.PSNR))
			}
			rows = append(rows, []string{comp, strings.Join(pts, " ")})
		}
		b.WriteString(table([]string{"compressor", "(bit-rate, PSNR) points"}, rows))
		// Summary at 8 bits/value, the paper's reference rate.
		sz := PSNRAt(r.Curves[set][SZ14], 8)
		zf := PSNRAt(r.Curves[set][ZFP], 8)
		if !math.IsNaN(sz) && !math.IsNaN(zf) {
			fmt.Fprintf(&b, "at 8 bits/value: SZ-1.4 %.0f dB vs ZFP %.0f dB (Δ %.0f dB)\n", sz, zf, sz-zf)
		}
	}
	b.WriteString("\npaper shape: SZ-1.4 above ZFP above SZ-1.1 above ISABELA at almost all\n")
	b.WriteString("rates; at 8 bits/value SZ-1.4 leads ZFP by 14 dB (ATM), 9 dB (APS),\n")
	b.WriteString("11 dB (hurricane); ZFP close/above only at very low rate on 3D data.\n")
	return b.String()
}

// Table4Result reproduces Table IV: Pearson correlation of original and
// decompressed data at matched maximum error.
type Table4Result struct {
	// Rows[set] lists matched (relative max error, per-compressor nines).
	Rows map[string][]Table4Row
}

// Table4Row is one matched-error row.
type Table4Row struct {
	MatchedRelErr float64
	// Rho and Nines per compressor (SZ-1.4, ZFP, SZ-1.1).
	Rho   map[string]float64
	Nines map[string]int
}

// Table4 measures correlations at ZFP-matched bounds.
func Table4(cfg Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	res := &Table4Result{Rows: map[string][]Table4Row{}}
	userBounds := []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6}
	for _, name := range []string{"ATM", "Hurricane"} {
		set, err := cfg.setByName(name)
		if err != nil {
			return nil, err
		}
		a := set.Gen()
		_, _, rng := a.Range()
		for _, rel := range userBounds {
			zr := runCompressor(ZFP, a, rel*rng, set.DType)
			if zr.Failed {
				return nil, fmt.Errorf("table4: ZFP failed: %w", zr.Err)
			}
			matched := metrics.MaxAbsError(a.Data, zr.Recon.Data)
			if matched <= 0 {
				matched = rel * rng
			}
			row := Table4Row{
				MatchedRelErr: matched / rng,
				Rho:           map[string]float64{},
				Nines:         map[string]int{},
			}
			row.Rho[ZFP] = metrics.Pearson(a.Data, zr.Recon.Data)
			row.Nines[ZFP] = metrics.NinesOfCorrelation(row.Rho[ZFP])
			for _, comp := range []string{SZ14, SZ11} {
				rr := runCompressor(comp, a, matched, set.DType)
				if rr.Failed {
					return nil, fmt.Errorf("table4: %s failed: %w", comp, rr.Err)
				}
				row.Rho[comp] = metrics.Pearson(a.Data, rr.Recon.Data)
				row.Nines[comp] = metrics.NinesOfCorrelation(row.Rho[comp])
			}
			res.Rows[name] = append(res.Rows[name], row)
		}
	}
	return res, nil
}

func (r *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table IV — Pearson correlation at matched maximum error\n")
	for _, set := range sortedKeys(r.Rows) {
		fmt.Fprintf(&b, "\n[%s]\n", set)
		header := []string{"matched max erel", "SZ-1.4 (nines)", "ZFP (nines)", "SZ-1.1 (nines)"}
		var rows [][]string
		for _, row := range r.Rows[set] {
			cell := func(c string) string {
				return fmt.Sprintf("%.8f (%d)", row.Rho[c], row.Nines[c])
			}
			rows = append(rows, []string{sci(row.MatchedRelErr), cell(SZ14), cell(ZFP), cell(SZ11)})
		}
		b.WriteString(table(header, rows))
	}
	b.WriteString("\npaper shape: all three reach \"five nines\" (rho >= 0.99999) from matched\n")
	b.WriteString("errors of ~4e-4 (ATM) / ~2e-4 (hurricane) downwards.\n")
	return b.String()
}
