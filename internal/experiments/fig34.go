package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
)

// Fig3Result reproduces Fig. 3: the distribution of error-controlled
// quantization codes with 255 intervals (m = 8) on the ATM set, at two
// relative bounds. The distribution's peakedness is what variable-length
// encoding exploits.
type Fig3Result struct {
	// Bounds are the relative bounds evaluated (paper: 1e-3, 1e-4).
	Bounds []float64
	// Fraction[b][c] is the share of points with code c at Bounds[b]
	// (code 0 = unpredictable), len 256 each.
	Fraction [][]float64
	// PeakShare[b] is the share of the centre code.
	PeakShare []float64
	// HitRate[b] is 1 − Fraction[b][0].
	HitRate []float64
}

// Fig3 measures the quantization-code distribution.
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	set, err := cfg.setByName("ATM")
	if err != nil {
		return nil, err
	}
	a := set.Gen()
	res := &Fig3Result{Bounds: []float64{1e-3, 1e-4}}
	for _, rel := range res.Bounds {
		_, st, err := core.Compress(a, core.Params{
			Mode: core.BoundRel, RelBound: rel, IntervalBits: 8, OutputType: grid.Float32,
		})
		if err != nil {
			return nil, err
		}
		frac := make([]float64, len(st.Histogram))
		for c, f := range st.Histogram {
			frac[c] = float64(f) / float64(st.N)
		}
		res.Fraction = append(res.Fraction, frac)
		res.PeakShare = append(res.PeakShare, frac[128])
		res.HitRate = append(res.HitRate, 1-frac[0])
	}
	return res, nil
}

func (r *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 3 — quantization code distribution (ATM-like, 255 intervals)\n")
	for i, rel := range r.Bounds {
		fmt.Fprintf(&b, "eb_rel=%.0e: hit rate %s, centre-code share %s\n",
			rel, pct(r.HitRate[i]), pct(r.PeakShare[i]))
		b.WriteString(histogramArt(r.Fraction[i], 64))
	}
	b.WriteString("paper: sharply peaked unimodal distribution centred on code 128;\n")
	b.WriteString("lower bounds spread the distribution (fig (a) ~45% peak, (b) ~12% peak).\n")
	return b.String()
}

// histogramArt renders a coarse ASCII picture of the code distribution.
func histogramArt(frac []float64, buckets int) string {
	if buckets > len(frac) {
		buckets = len(frac)
	}
	agg := make([]float64, buckets)
	per := len(frac) / buckets
	max := 0.0
	for i := 0; i < buckets; i++ {
		for j := i * per; j < (i+1)*per && j < len(frac); j++ {
			agg[i] += frac[j]
		}
		if agg[i] > max {
			max = agg[i]
		}
	}
	var b strings.Builder
	const height = 8
	for h := height; h >= 1; h-- {
		for i := 0; i < buckets; i++ {
			if max > 0 && agg[i]/max*height >= float64(h) {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s%s\n", buckets/2, "code 0", fmt.Sprintf("code %d", len(frac)-1))
	return b.String()
}

// Fig4Result reproduces Fig. 4: prediction hitting rate as the bound
// tightens, for several quantization interval counts, on the 2D ATM set
// (panel a) and the 3D hurricane set (panel b).
type Fig4Result struct {
	SetName string
	// IntervalBits holds the m values evaluated (2^m − 1 intervals each).
	IntervalBits []int
	// Bounds is the relative-bound sweep (1e-1 … 1e-8).
	Bounds []float64
	// HitRate[mi][bi] is the quantization hit rate for IntervalBits[mi]
	// at Bounds[bi].
	HitRate [][]float64
}

// Fig4 measures the hit-rate-versus-bound curves for one panel
// ("ATM" or "Hurricane").
func Fig4(cfg Config, setName string) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	set, err := cfg.setByName(setName)
	if err != nil {
		return nil, err
	}
	a := set.Gen()
	res := &Fig4Result{SetName: setName}
	if setName == "ATM" {
		// Paper panel (a): 15, 63, 255, 2047, 4095 intervals.
		res.IntervalBits = []int{4, 6, 8, 11, 12}
	} else {
		// Paper panel (b): 63, 511, 4095, 16383, 65535 intervals.
		res.IntervalBits = []int{6, 9, 12, 14, 16}
	}
	res.Bounds = []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8}
	for _, m := range res.IntervalBits {
		curve := make([]float64, 0, len(res.Bounds))
		for _, rel := range res.Bounds {
			_, st, err := core.Compress(a, core.Params{
				Mode: core.BoundRel, RelBound: rel, IntervalBits: m, OutputType: grid.Float32,
			})
			if err != nil {
				return nil, err
			}
			curve = append(curve, st.HitRate)
		}
		res.HitRate = append(res.HitRate, curve)
	}
	return res, nil
}

func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — hit rate vs error bound by interval count (%s-like)\n", r.SetName)
	header := []string{"intervals \\ eb_rel"}
	for _, eb := range r.Bounds {
		header = append(header, fmt.Sprintf("%.0e", eb))
	}
	rows := make([][]string, len(r.IntervalBits))
	for i, m := range r.IntervalBits {
		row := []string{fmt.Sprintf("%d", (1<<m)-1)}
		for _, v := range r.HitRate[i] {
			row = append(row, pct(v))
		}
		rows[i] = row
	}
	b.WriteString(table(header, rows))
	b.WriteString("paper shape: rates stay >90% until a knee bound, then collapse;\n")
	b.WriteString("more intervals push the knee to tighter bounds.\n")
	return b.String()
}
