package experiments

import (
	"fmt"
	"strings"

	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/metrics"
)

// Table6Result reproduces Table VI: compression and decompression speed
// (MB/s) of SZ-1.4 and ZFP across bounds and data sets. Absolute numbers
// depend on the host; the paper's shape is ZFP ~1.5–3x faster.
type Table6Result struct {
	Bounds []float64
	// Speeds[set][compressor] -> per-bound {comp, decomp} MB/s.
	Speeds map[string]map[string][][2]float64
}

// Table6 measures single-goroutine throughput.
func Table6(cfg Config) (*Table6Result, error) {
	cfg = cfg.withDefaults()
	res := &Table6Result{
		Bounds: cfg.RelBounds,
		Speeds: map[string]map[string][][2]float64{},
	}
	for _, set := range cfg.sets() {
		a := set.Gen()
		mb := float64(a.Len()*set.DType.Size()) / 1e6
		res.Speeds[set.Name] = map[string][][2]float64{}
		for _, comp := range []string{SZ14, ZFP} {
			var rows [][2]float64
			for _, rel := range cfg.RelBounds {
				rr := runCompressor(comp, a, absBoundFor(a, rel), set.DType)
				if rr.Failed {
					return nil, fmt.Errorf("table6: %s failed: %w", comp, rr.Err)
				}
				rows = append(rows, [2]float64{mb / rr.CompSeconds, mb / rr.DecompSeconds})
			}
			res.Speeds[set.Name][comp] = rows
		}
	}
	return res, nil
}

func (r *Table6Result) String() string {
	var b strings.Builder
	b.WriteString("Table VI — compression / decompression speed (MB/s), this host\n")
	for _, set := range sortedKeys(r.Speeds) {
		fmt.Fprintf(&b, "\n[%s]\n", set)
		header := []string{"eb_rel", "SZ-1.4 comp", "SZ-1.4 decomp", "ZFP comp", "ZFP decomp"}
		var rows [][]string
		for bi, rel := range r.Bounds {
			s := r.Speeds[set][SZ14][bi]
			z := r.Speeds[set][ZFP][bi]
			rows = append(rows, []string{
				fmt.Sprintf("%.0e", rel), f1(s[0]), f1(s[1]), f1(z[0]), f1(z[1]),
			})
		}
		b.WriteString(table(header, rows))
	}
	b.WriteString("\npaper shape (iMac i7): SZ-1.4 ~46-85 MB/s comp, ~51-176 MB/s decomp;\n")
	b.WriteString("ZFP ~1.5-3x faster; both slow down as the bound tightens.\n")
	return b.String()
}

// Fig9Result reproduces Fig. 9: the first 100 autocorrelation coefficients
// of the pointwise compression error for a low-CF variable (FREQSH-like)
// and a high-CF variable (SNOWHLND-like), SZ-1.4 vs ZFP.
type Fig9Result struct {
	// MaxAC[variable][compressor] is the max |autocorrelation| over lags
	// 1..100.
	MaxAC map[string]map[string]float64
	// AC[variable][compressor] holds the first 100 coefficients.
	AC map[string]map[string][]float64
	// CF[variable] is SZ-1.4's compression factor on that variable.
	CF map[string]float64
}

// Fig9 measures error autocorrelations at eb_rel = 1e-4 (the paper's
// setting for this study).
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig9Result{
		MaxAC: map[string]map[string]float64{},
		AC:    map[string]map[string][]float64{},
		CF:    map[string]float64{},
	}
	dims := datagen.ATMDims
	rows, cols := dims[0]/cfg.Scale, dims[1]/cfg.Scale
	if rows < 8 {
		rows = 8
	}
	if cols < 8 {
		cols = 8
	}
	for _, variable := range []string{"FREQSH", "SNOWHLND"} {
		a := datagen.ATMVariant(variable, rows, cols, cfg.Seed)
		res.MaxAC[variable] = map[string]float64{}
		res.AC[variable] = map[string][]float64{}
		eb := absBoundFor(a, 1e-4)
		for _, comp := range []string{SZ14, ZFP} {
			rr := runCompressor(comp, a, eb, grid.Float32)
			if rr.Failed {
				return nil, fmt.Errorf("fig9: %s on %s failed: %w", comp, variable, rr.Err)
			}
			errs := metrics.Errors(a.Data, rr.Recon.Data)
			ac := metrics.Autocorrelation(errs, 100)
			res.AC[variable][comp] = ac
			maxAbs := 0.0
			for _, v := range ac {
				if v < 0 {
					v = -v
				}
				if v > maxAbs {
					maxAbs = v
				}
			}
			res.MaxAC[variable][comp] = maxAbs
			if comp == SZ14 {
				res.CF[variable] = rr.CF
			}
		}
	}
	return res, nil
}

func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — error autocorrelation, max |coefficient| over lags 1..100 (eb_rel=1e-4)\n")
	header := []string{"variable", "SZ-1.4 CF", "SZ-1.4 max|AC|", "ZFP max|AC|"}
	var rows [][]string
	for _, variable := range []string{"FREQSH", "SNOWHLND"} {
		rows = append(rows, []string{
			variable,
			f1(r.CF[variable]),
			fmt.Sprintf("%.3g", r.MaxAC[variable][SZ14]),
			fmt.Sprintf("%.3g", r.MaxAC[variable][ZFP]),
		})
	}
	b.WriteString(table(header, rows))
	b.WriteString("paper: FREQSH (CF 6.5): SZ-1.4 4e-3 vs ZFP 0.25 — SZ far less correlated;\n")
	b.WriteString("SNOWHLND (CF 48): SZ-1.4 ~0.5 vs ZFP 0.23 — ZFP less correlated on\n")
	b.WriteString("high-CF data. Shape to check: SZ wins on low-CF, loses on high-CF.\n")
	return b.String()
}
