package experiments

import (
	"fmt"
)

// Names lists every runnable experiment in report order.
var Names = []string{
	"table2", "fig3", "fig4a", "fig4b", "table3", "fig6",
	"table5", "fig7", "fig8", "table4", "table6", "fig9",
	"tables7-8", "fig10", "ablations",
}

// Run executes the named experiment and returns its printable result.
func Run(name string, cfg Config) (fmt.Stringer, error) {
	switch name {
	case "table2":
		return Table2(cfg)
	case "fig3":
		return Fig3(cfg)
	case "fig4a":
		return Fig4(cfg, "ATM")
	case "fig4b":
		return Fig4(cfg, "Hurricane")
	case "table3":
		return Table3(cfg)
	case "fig6":
		return Fig6(cfg)
	case "table5":
		return Table5(cfg)
	case "fig7":
		return Fig7(cfg)
	case "fig8":
		return Fig8(cfg)
	case "table4":
		return Table4(cfg)
	case "table6":
		return Table6(cfg)
	case "fig9":
		return Fig9(cfg)
	case "tables7-8":
		return Tables78(cfg)
	case "fig10":
		return Fig10(cfg)
	case "ablations":
		return Ablations(cfg)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names)
}
