package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
)

// Table2Result reproduces Table II: prediction hitting rate by layer count,
// predicting from original versus decompressed values, on the ATM set.
type Table2Result struct {
	RelBound float64
	// Orig[n-1] / Decomp[n-1] are the rates for n layers.
	Orig   []float64
	Decomp []float64
	// BestOrigLayer / BestDecompLayer are the argmax layer counts.
	BestOrigLayer   int
	BestDecompLayer int
}

// paperTable2 holds the published Table II values for side-by-side output.
var paperTable2 = struct{ orig, decomp []float64 }{
	orig:   []float64{0.215, 0.375, 0.258, 0.145},
	decomp: []float64{0.192, 0.065, 0.098, 0.059},
}

// Table2 measures hitting rates for layers 1–4 on the ATM-like set. The
// paper does not state the bound used; 1e-4 (its reference setting) is
// applied here. The layer crossover is a resolution-dependent phenomenon
// (it hinges on how per-cell curvature compares with the bound), so this
// experiment clamps the scale factor to 16 — 112×225 cells — even when
// the rest of the suite runs smaller.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Scale > 16 {
		cfg.Scale = 16
	}
	set, err := cfg.setByName("ATM")
	if err != nil {
		return nil, err
	}
	a := set.Gen()
	res := &Table2Result{RelBound: 1e-4}
	for n := 1; n <= 4; n++ {
		hr, err := core.ProbeHitRates(a, core.Params{
			Mode:       core.BoundRel,
			RelBound:   res.RelBound,
			Layers:     n,
			OutputType: grid.Float32,
		})
		if err != nil {
			return nil, err
		}
		res.Orig = append(res.Orig, hr.Orig)
		res.Decomp = append(res.Decomp, hr.Decomp)
	}
	res.BestOrigLayer = argmax(res.Orig) + 1
	res.BestDecompLayer = argmax(res.Decomp) + 1
	return res, nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — prediction hitting rate by layer (ATM-like, eb_rel=%.0e)\n", r.RelBound)
	rows := make([][]string, 4)
	for n := 0; n < 4; n++ {
		rows[n] = []string{
			fmt.Sprintf("%d-Layer", n+1),
			pct(r.Orig[n]), pct(r.Decomp[n]),
			pct(paperTable2.orig[n]), pct(paperTable2.decomp[n]),
		}
	}
	b.WriteString(table(
		[]string{"", "R_PH^orig", "R_PH^decomp", "paper orig", "paper decomp"}, rows))
	fmt.Fprintf(&b, "best layer: orig=%d decomp=%d (paper: orig=2, decomp=1)\n",
		r.BestOrigLayer, r.BestDecompLayer)
	return b.String()
}
