// Package experiments regenerates every table and figure of the SZ-1.4
// paper's evaluation (Sections V and VI) on the synthetic stand-in data
// sets from internal/datagen.
//
// Each experiment has a driver function returning a typed result whose
// String method renders a text table, including the paper's published
// numbers where applicable so the reproduction can be eyeballed
// side-by-side. cmd/szexp runs them from the command line; the root-level
// benchmarks (bench_test.go) wrap them in testing.B.
//
// Because the inputs are synthetic (the production archives are not
// shippable), absolute values differ from the paper; the comparisons to
// check are the *shapes*: which compressor wins, by roughly what factor,
// and where behaviour crosses over. EXPERIMENTS.md records both.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datagen"
	"repro/internal/grid"
)

// Config controls experiment scale and workloads.
type Config struct {
	// Scale divides the paper's data-set dimensions (1 = full size).
	// The default 8 keeps a full run in the order of a minute.
	Scale int
	// Seed feeds the data generators.
	Seed int64
	// RelBounds is the value-range-relative error-bound sweep
	// (default 1e-3, 1e-4, 1e-5, 1e-6 — the paper's Fig. 6 set).
	RelBounds []float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Scale < 1 {
		c.Scale = 8
	}
	if c.Seed == 0 {
		c.Seed = 20170529 // IPDPS 2017 conference date
	}
	if len(c.RelBounds) == 0 {
		c.RelBounds = []float64{1e-3, 1e-4, 1e-5, 1e-6}
	}
	return c
}

// sets returns the three paper data sets at the configured scale.
func (c Config) sets() []datagen.Set {
	return datagen.StandardSets(datagen.Scale{Factor: c.Scale, Seed: c.Seed})
}

// setByName fetches one data set.
func (c Config) setByName(name string) (datagen.Set, error) {
	for _, s := range c.sets() {
		if s.Name == name {
			return s, nil
		}
	}
	return datagen.Set{}, fmt.Errorf("experiments: unknown data set %q", name)
}

// --- formatting helpers ------------------------------------------------------

// table renders rows of cells with aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < width[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
func sci(v float64) string { return fmt.Sprintf("%.2e", v) }

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// absBoundFor converts a relative bound to the absolute bound for a data
// set, exactly as the paper's evaluation does ("we ran different
// compressors using the absolute error bounds computed based on the above
// listed ratios and the global data value range").
func absBoundFor(a *grid.Array, rel float64) float64 {
	_, _, rng := a.Range()
	return rel * rng
}
