package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Table5Result reproduces Table V: the maximum compression error
// (normalized to the value range) of SZ-1.4 and ZFP for each user-set
// relative bound, on ATM and Hurricane. The paper's point: SZ's max error
// sits exactly at the bound, ZFP's well below it (overconservative).
type Table5Result struct {
	Bounds []float64
	// MaxRel[set][compressor][boundIdx]
	MaxRel map[string]map[string][]float64
}

// Table5 measures normalized maximum errors.
func Table5(cfg Config) (*Table5Result, error) {
	cfg = cfg.withDefaults()
	res := &Table5Result{
		Bounds: []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6},
		MaxRel: map[string]map[string][]float64{},
	}
	for _, name := range []string{"ATM", "Hurricane"} {
		set, err := cfg.setByName(name)
		if err != nil {
			return nil, err
		}
		a := set.Gen()
		_, _, rng := a.Range()
		res.MaxRel[name] = map[string][]float64{SZ14: {}, ZFP: {}}
		for _, rel := range res.Bounds {
			eb := rel * rng
			for _, comp := range []string{SZ14, ZFP} {
				rr := runCompressor(comp, a, eb, set.DType)
				if rr.Failed {
					return nil, fmt.Errorf("table5: %s failed: %w", comp, rr.Err)
				}
				maxErr := metrics.MaxAbsError(a.Data, rr.Recon.Data)
				res.MaxRel[name][comp] = append(res.MaxRel[name][comp], maxErr/rng)
			}
		}
	}
	return res, nil
}

// paperTable5 holds the published normalized max errors.
var paperTable5 = map[string]map[string][]float64{
	"ATM":       {SZ14: {1e-2, 1e-3, 1e-4, 1e-5, 1e-6}, ZFP: {3.3e-3, 4.3e-4, 2.6e-5, 3.4e-6, 4.1e-7}},
	"Hurricane": {SZ14: {1e-2, 1e-3, 1e-4, 1e-5, 1e-6}, ZFP: {2.4e-3, 1.8e-4, 2.5e-5, 2.6e-6, 2.9e-7}},
}

func (r *Table5Result) String() string {
	var b strings.Builder
	b.WriteString("Table V — max compression error (normalized to range) vs user bound\n")
	for _, set := range sortedKeys(r.MaxRel) {
		fmt.Fprintf(&b, "\n[%s]\n", set)
		header := []string{"user eb_rel", "SZ-1.4", "ZFP", "paper SZ-1.4", "paper ZFP"}
		var rows [][]string
		for bi, rel := range r.Bounds {
			rows = append(rows, []string{
				sci(rel),
				sci(r.MaxRel[set][SZ14][bi]),
				sci(r.MaxRel[set][ZFP][bi]),
				sci(paperTable5[set][SZ14][bi]),
				sci(paperTable5[set][ZFP][bi]),
			})
		}
		b.WriteString(table(header, rows))
	}
	b.WriteString("\npaper shape: SZ-1.4's max error equals the bound; ZFP's is ~4-40x below\n")
	b.WriteString("it (overconservative), except on huge-range variables where it violates.\n")
	return b.String()
}

// Fig7Result reproduces Fig. 7: compression factors of SZ-1.4 and ZFP when
// SZ-1.4 is given ZFP's *observed* max error as its bound, making the two
// maximum errors equal.
type Fig7Result struct {
	// EqualBounds[set] lists the matched absolute bounds (ZFP's observed
	// max error at each of the Table V settings).
	EqualBounds map[string][]float64
	// CF[set][compressor][i]
	CF map[string]map[string][]float64
}

// Fig7 runs the equal-max-error comparison.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig7Result{
		EqualBounds: map[string][]float64{},
		CF:          map[string]map[string][]float64{},
	}
	zfpBounds := []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6}
	for _, name := range []string{"ATM", "Hurricane"} {
		set, err := cfg.setByName(name)
		if err != nil {
			return nil, err
		}
		a := set.Gen()
		_, _, rng := a.Range()
		res.CF[name] = map[string][]float64{SZ14: {}, ZFP: {}}
		for _, rel := range zfpBounds {
			zr := runCompressor(ZFP, a, rel*rng, set.DType)
			if zr.Failed {
				return nil, fmt.Errorf("fig7: ZFP failed: %w", zr.Err)
			}
			zfpMaxErr := metrics.MaxAbsError(a.Data, zr.Recon.Data)
			if zfpMaxErr <= 0 {
				zfpMaxErr = rel * rng // lossless corner: keep the nominal bound
			}
			res.EqualBounds[name] = append(res.EqualBounds[name], zfpMaxErr/rng)
			sr := runCompressor(SZ14, a, zfpMaxErr, set.DType)
			if sr.Failed {
				return nil, fmt.Errorf("fig7: SZ-1.4 failed: %w", sr.Err)
			}
			res.CF[name][SZ14] = append(res.CF[name][SZ14], sr.CF)
			res.CF[name][ZFP] = append(res.CF[name][ZFP], zr.CF)
		}
	}
	return res, nil
}

func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — CF at equal maximum compression error (SZ-1.4 bound := ZFP's observed max error)\n")
	for _, set := range sortedKeys(r.CF) {
		fmt.Fprintf(&b, "\n[%s]\n", set)
		header := []string{"matched max err (rel)", "SZ-1.4 CF", "ZFP CF", "ratio"}
		var rows [][]string
		for i, eb := range r.EqualBounds[set] {
			s, z := r.CF[set][SZ14][i], r.CF[set][ZFP][i]
			rows = append(rows, []string{sci(eb), f2(s), f2(z), f2(s / z)})
		}
		b.WriteString(table(header, rows))
	}
	b.WriteString("\npaper shape: SZ-1.4 ~2.6x ZFP's CF on ATM and ~1.7x on hurricane at\n")
	b.WriteString("matched error (162%/71% higher).\n")
	return b.String()
}
