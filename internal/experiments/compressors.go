package experiments

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
)

// Compressor names used across experiments, matching the paper's labels.
const (
	SZ14    = "SZ-1.4"
	SZ11    = "SZ-1.1"
	ZFP     = "ZFP-0.5"
	ISABELA = "ISABELA-0.2.1"
	FPZIP   = "FPZIP"
	GZIP    = "GZIP"
)

// AllCompressors lists every evaluated compressor in the paper's order.
var AllCompressors = []string{SZ14, ZFP, SZ11, ISABELA, FPZIP, GZIP}

// LossyCompressors lists the error-bounded subset.
var LossyCompressors = []string{SZ14, ZFP, SZ11, ISABELA}

// codecNames maps the paper's labels to codec registry names.
var codecNames = map[string]string{
	SZ14:    "sz14",
	SZ11:    "sz11",
	ZFP:     "zfp",
	ISABELA: "isabela",
	FPZIP:   "fpzip",
	GZIP:    "gzip",
}

// RunResult is the outcome of one (compressor, data set, bound) cell.
type RunResult struct {
	Compressor      string
	CompressedBytes int
	OriginalBytes   int
	CF              float64
	BitRate         float64
	Recon           *grid.Array
	CompSeconds     float64
	DecompSeconds   float64
	// Failed marks expected model failures (ISABELA at tight bounds).
	Failed bool
	Err    error
}

// runCodec executes one registry codec on a with the given parameters,
// timing compression and decompression separately.
func runCodec(label, codecName string, a *grid.Array, p codec.Params) RunResult {
	p.Dims = a.Dims
	dt := p.DType
	if dt == 0 {
		dt = grid.Float64
	}
	res := RunResult{Compressor: label, OriginalBytes: a.Len() * dt.Size()}
	fail := func(err error) RunResult {
		res.Err = err
		res.Failed = true
		return res
	}
	c, err := codec.Lookup(codecName)
	if err != nil {
		return fail(err)
	}
	start := time.Now()
	stream, err := c.Encode(a, p)
	if err != nil {
		return fail(err)
	}
	res.CompSeconds = time.Since(start).Seconds()
	res.CompressedBytes = len(stream)
	res.CF = float64(res.OriginalBytes) / float64(res.CompressedBytes)
	res.BitRate = float64(res.CompressedBytes) * 8 / float64(a.Len())

	start = time.Now()
	recon, err := c.Decode(stream, p)
	if err != nil {
		return fail(err)
	}
	res.DecompSeconds = time.Since(start).Seconds()
	res.Recon = recon
	return res
}

// runCompressor executes one compressor on a with the given absolute error
// bound (ignored by the lossless ones). dt is the source precision used
// for compression-factor accounting.
func runCompressor(name string, a *grid.Array, absBound float64, dt grid.DType) RunResult {
	cn, ok := codecNames[name]
	if !ok {
		res := RunResult{Compressor: name, OriginalBytes: a.Len() * dt.Size()}
		res.Err = fmt.Errorf("experiments: unknown compressor %q", name)
		res.Failed = true
		return res
	}
	return runCodec(name, cn, a, codec.Params{
		Mode:     core.BoundAbs,
		AbsBound: absBound,
		DType:    dt,
	})
}

// runZFPFixedRate runs ZFP in its native fixed-rate mode (Fig. 8).
func runZFPFixedRate(a *grid.Array, rate float64, dt grid.DType) RunResult {
	return runCodec(ZFP, "zfp", a, codec.Params{Rate: rate, DType: dt})
}
