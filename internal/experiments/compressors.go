package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fpzip"
	"repro/internal/grid"
	"repro/internal/gzipc"
	"repro/internal/isabela"
	"repro/internal/sz11"
	"repro/internal/zfp"
)

// Compressor names used across experiments, matching the paper's labels.
const (
	SZ14    = "SZ-1.4"
	SZ11    = "SZ-1.1"
	ZFP     = "ZFP-0.5"
	ISABELA = "ISABELA-0.2.1"
	FPZIP   = "FPZIP"
	GZIP    = "GZIP"
)

// AllCompressors lists every evaluated compressor in the paper's order.
var AllCompressors = []string{SZ14, ZFP, SZ11, ISABELA, FPZIP, GZIP}

// LossyCompressors lists the error-bounded subset.
var LossyCompressors = []string{SZ14, ZFP, SZ11, ISABELA}

// RunResult is the outcome of one (compressor, data set, bound) cell.
type RunResult struct {
	Compressor      string
	CompressedBytes int
	OriginalBytes   int
	CF              float64
	BitRate         float64
	Recon           *grid.Array
	CompSeconds     float64
	DecompSeconds   float64
	// Failed marks expected model failures (ISABELA at tight bounds).
	Failed bool
	Err    error
}

// runCompressor executes one compressor on a with the given absolute error
// bound (ignored by the lossless ones). dt is the source precision used
// for compression-factor accounting.
func runCompressor(name string, a *grid.Array, absBound float64, dt grid.DType) RunResult {
	res := RunResult{Compressor: name, OriginalBytes: a.Len() * dt.Size()}
	fail := func(err error) RunResult {
		res.Err = err
		res.Failed = true
		return res
	}
	start := time.Now()
	var stream []byte
	var err error
	switch name {
	case SZ14:
		stream, _, err = core.Compress(a, core.Params{
			Mode: core.BoundAbs, AbsBound: absBound, OutputType: dt,
		})
	case SZ11:
		stream, _, err = sz11.Compress(a, sz11.Params{AbsBound: absBound, OutputType: dt})
	case ZFP:
		stream, _, err = zfp.Compress(a, zfp.Params{
			Mode: zfp.FixedAccuracy, Tolerance: absBound, DType: dt,
		})
	case ISABELA:
		stream, _, err = isabela.Compress(a, isabela.Params{AbsBound: absBound, OutputType: dt})
		if errors.Is(err, isabela.ErrBoundTooTight) {
			return fail(err)
		}
	case FPZIP:
		stream, err = fpzip.Compress(a, dt)
	case GZIP:
		stream, err = gzipc.Compress(a, dt)
	default:
		return fail(fmt.Errorf("experiments: unknown compressor %q", name))
	}
	if err != nil {
		return fail(err)
	}
	res.CompSeconds = time.Since(start).Seconds()
	res.CompressedBytes = len(stream)
	res.CF = float64(res.OriginalBytes) / float64(res.CompressedBytes)
	res.BitRate = float64(res.CompressedBytes) * 8 / float64(a.Len())

	start = time.Now()
	var recon *grid.Array
	switch name {
	case SZ14:
		recon, _, err = core.Decompress(stream)
	case SZ11:
		recon, err = sz11.Decompress(stream)
	case ZFP:
		recon, err = zfp.Decompress(stream)
	case ISABELA:
		recon, err = isabela.Decompress(stream)
	case FPZIP:
		recon, _, err = fpzip.Decompress(stream)
	case GZIP:
		recon, err = gzipc.Decompress(stream, dt, a.Dims...)
	}
	if err != nil {
		return fail(err)
	}
	res.DecompSeconds = time.Since(start).Seconds()
	res.Recon = recon
	return res
}

// runZFPFixedRate runs ZFP in its native fixed-rate mode (Fig. 8).
func runZFPFixedRate(a *grid.Array, rate float64, dt grid.DType) RunResult {
	res := RunResult{Compressor: ZFP, OriginalBytes: a.Len() * dt.Size()}
	start := time.Now()
	stream, _, err := zfp.Compress(a, zfp.Params{Mode: zfp.FixedRate, Rate: rate, DType: dt})
	if err != nil {
		res.Err = err
		res.Failed = true
		return res
	}
	res.CompSeconds = time.Since(start).Seconds()
	res.CompressedBytes = len(stream)
	res.CF = float64(res.OriginalBytes) / float64(res.CompressedBytes)
	res.BitRate = float64(res.CompressedBytes) * 8 / float64(a.Len())
	start = time.Now()
	recon, err := zfp.Decompress(stream)
	if err != nil {
		res.Err = err
		res.Failed = true
		return res
	}
	res.DecompSeconds = time.Since(start).Seconds()
	res.Recon = recon
	return res
}
