package blocked

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
)

func testParams(slabRows int) Params {
	return Params{
		Core:     core.Params{Mode: core.BoundRel, RelBound: 1e-4, OutputType: grid.Float32},
		SlabRows: slabRows,
		Workers:  2,
	}
}

func TestRoundTrip(t *testing.T) {
	a := datagen.ATM(90, 120, 1)
	stream, st, err := Compress(a, testParams(16))
	if err != nil {
		t.Fatal(err)
	}
	if st.Slabs != (90+15)/16 {
		t.Fatalf("slabs = %d", st.Slabs)
	}
	out, err := Decompress(stream, Params{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.SameShape(a, out); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > st.EffAbsBound {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestGlobalBoundResolution(t *testing.T) {
	// The relative bound must resolve against the GLOBAL range, not the
	// per-slab ranges: a field whose slabs have very different local
	// ranges would otherwise get inconsistent bounds.
	a := grid.New(40, 20)
	for i := 0; i < 40; i++ {
		for j := 0; j < 20; j++ {
			v := 0.001 * float64(j) // small range rows
			if i >= 20 {
				v = 100 + float64(j) // large range rows
			}
			a.Set(v, i, j)
		}
	}
	_, _, rng := a.Range()
	stream, st, err := Compress(a, testParams(8))
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-4 * rng
	if math.Abs(st.EffAbsBound-want) > 1e-12*rng {
		t.Fatalf("bound %v, want global %v", st.EffAbsBound, want)
	}
	out, err := Decompress(stream, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > st.EffAbsBound {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestRandomAccessSlab(t *testing.T) {
	a := datagen.Hurricane(24, 30, 30, 2)
	stream, _, err := Compress(a, testParams(8))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(stream, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ix.NumSlabs(); i++ {
		slab, err := DecompressSlab(stream, i)
		if err != nil {
			t.Fatalf("slab %d: %v", i, err)
		}
		lo, hi := ix.SlabBounds(i)
		ref, err := full.Slab(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if !slab.Equal(ref) {
			t.Fatalf("slab %d differs from full decompression", i)
		}
	}
	if _, err := DecompressSlab(stream, ix.NumSlabs()); err == nil {
		t.Fatal("out-of-range slab accepted")
	}
	if _, err := DecompressSlab(stream, -1); err == nil {
		t.Fatal("negative slab accepted")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	a := datagen.ATM(64, 64, 3)
	p1 := testParams(16)
	p1.Workers = 1
	s1, _, err := Compress(a, p1)
	if err != nil {
		t.Fatal(err)
	}
	p4 := testParams(16)
	p4.Workers = 4
	s4, _, err := Compress(a, p4)
	if err != nil {
		t.Fatal(err)
	}
	if string(s1) != string(s4) {
		t.Fatal("container depends on worker count")
	}
}

func TestSlabRowsDefaults(t *testing.T) {
	a := datagen.ATM(64, 64, 4)
	p := testParams(0) // auto slab size
	stream, st, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Slabs < 1 {
		t.Fatalf("slabs = %d", st.Slabs)
	}
	if _, err := Decompress(stream, Params{}); err != nil {
		t.Fatal(err)
	}
	// Slab thickness larger than the array collapses to one slab.
	p = testParams(1000)
	_, st, err = Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Slabs != 1 {
		t.Fatalf("oversized slab rows should give 1 slab, got %d", st.Slabs)
	}
}

func TestAbsBoundPassthrough(t *testing.T) {
	a := datagen.ATM(32, 32, 5)
	p := Params{Core: core.Params{Mode: core.BoundAbs, AbsBound: 0.5}, SlabRows: 8}
	_, st, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.EffAbsBound != 0.5 {
		t.Fatalf("abs bound changed: %v", st.EffAbsBound)
	}
}

func TestCorruption(t *testing.T) {
	a := datagen.ATM(32, 32, 6)
	stream, _, err := Compress(a, testParams(8))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), stream...)
	bad[len(bad)/2] ^= 0x04
	if _, err := Decompress(bad, Params{}); err == nil {
		t.Fatal("corruption undetected")
	}
	if _, err := Inspect(stream[:8]); err == nil {
		t.Fatal("truncation undetected")
	}
	bad = append([]byte(nil), stream...)
	copy(bad, "XXXX")
	if _, err := Inspect(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestInvalidParams(t *testing.T) {
	a := datagen.ATM(16, 16, 7)
	p := Params{Core: core.Params{Mode: core.BoundAbs, AbsBound: -1}}
	if _, _, err := Compress(a, p); err == nil {
		t.Fatal("invalid core params accepted")
	}
}

func TestBlockedVsSingleStreamCF(t *testing.T) {
	// Blocked compression pays a small CF penalty (no cross-slab
	// prediction) but must stay in the same ballpark.
	a := datagen.ATM(112, 225, 8)
	cp := core.Params{Mode: core.BoundRel, RelBound: 1e-4, OutputType: grid.Float32}
	_, single, err := core.Compress(a, cp)
	if err != nil {
		t.Fatal(err)
	}
	_, blockedSt, err := Compress(a, Params{Core: cp, SlabRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	if blockedSt.CompressionFactor > single.CompressionFactor*1.01 {
		t.Fatalf("blocked CF %v should not beat single-stream %v",
			blockedSt.CompressionFactor, single.CompressionFactor)
	}
	if blockedSt.CompressionFactor < single.CompressionFactor*0.6 {
		t.Fatalf("blocked CF %v too far below single-stream %v",
			blockedSt.CompressionFactor, single.CompressionFactor)
	}
}
