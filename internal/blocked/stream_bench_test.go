package blocked

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
)

// Hurricane-shaped 3D float32 field (the paper's 100x500x500 layout,
// scaled to keep single-core benchmark runs in seconds).
func benchField(b *testing.B) (*grid.Array, Params, []byte) {
	b.Helper()
	a := datagen.Hurricane(50, 250, 250, 7)
	p := Params{
		Core:     core.Params{Mode: core.BoundAbs, AbsBound: 1e-3, OutputType: grid.Float32},
		SlabRows: 10,
	}
	var raw bytes.Buffer
	if err := a.WriteRaw(&raw, grid.Float32); err != nil {
		b.Fatal(err)
	}
	return a, p, raw.Bytes()
}

// BenchmarkBlockedOneShot is the in-memory Compress path (slab views,
// no raw-byte parsing).
func BenchmarkBlockedOneShot(b *testing.B) {
	a, p, raw := benchField(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress(a, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockedStreamWrite pushes raw little-endian bytes through the
// streaming Writer — the in-situ pipe scenario, including byte parsing.
func BenchmarkBlockedStreamWrite(b *testing.B) {
	a, p, raw := benchField(b)
	_ = a
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := NewWriter(io.Discard, []int{50, 250, 250}, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(w, bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockedOneShotDecompress decodes the whole container into an
// in-memory array (parallel slab decode).
func BenchmarkBlockedOneShotDecompress(b *testing.B) {
	a, p, raw := benchField(b)
	stream, _, err := Compress(a, p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(stream, Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockedOneShotDecompressV3 is the same decode over a v3
// container with four interleaved sub-streams per slab — the ILP path.
// Run both with GOMAXPROCS=1 for the honest single-core v2-vs-v3 A/B.
func BenchmarkBlockedOneShotDecompressV3(b *testing.B) {
	a, p, raw := benchField(b)
	p.Core.Streams = 4
	stream, _, err := Compress(a, p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(stream, Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockedOneShotV3 compresses with four sub-streams per slab
// (the encode side of the ILP layout).
func BenchmarkBlockedOneShotV3(b *testing.B) {
	a, p, raw := benchField(b)
	p.Core.Streams = 4
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress(a, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockedStreamRead drains the streaming Reader — O(slab)
// memory, raw bytes out.
func BenchmarkBlockedStreamRead(b *testing.B) {
	a, p, raw := benchField(b)
	stream, _, err := Compress(a, p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(stream))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}
