package blocked

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
)

// TestPooledCompressConcurrentByteIdentical runs many concurrent
// compressions over the shared scratch pools and asserts every
// container is byte-identical to a reference produced up front — the
// acceptance check that recycled buffers never leak state between
// operations. Most valuable under -race (CI runs the suite with it),
// where any cross-goroutine buffer sharing also trips the detector.
func TestPooledCompressConcurrentByteIdentical(t *testing.T) {
	fields := []*grid.Array{
		datagen.Hurricane(12, 40, 40, 1),
		datagen.Hurricane(16, 32, 32, 2),
		datagen.Hurricane(8, 24, 56, 3),
	}
	params := []Params{
		{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-3, OutputType: grid.Float32}, SlabRows: 4, Workers: 2},
		{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-4, OutputType: grid.Float64}, SlabRows: 5, Workers: 3},
		{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-2, OutputType: grid.Float32, Layers: 2}, SlabRows: 3, Workers: 2},
	}

	type ref struct {
		stream []byte
		raw    []byte
	}
	refs := make([]ref, len(fields))
	for i, a := range fields {
		stream, _, err := Compress(a, params[i])
		if err != nil {
			t.Fatal(err)
		}
		var raw bytes.Buffer
		if err := a.WriteRaw(&raw, params[i].Core.OutputType); err != nil {
			t.Fatal(err)
		}
		refs[i] = ref{stream: stream, raw: raw.Bytes()}
	}

	const goroutines = 6
	const iters = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(fields)

				// One-shot compress must reproduce the reference bytes.
				stream, _, err := Compress(fields[i], params[i])
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(stream, refs[i].stream) {
					t.Errorf("goroutine %d iter %d: pooled compress diverged", g, it)
					return
				}

				// Streaming writer over the raw-byte path too: it pools
				// the slab parse buffers as well.
				var out bytes.Buffer
				w, err := NewWriter(&out, fields[i].Dims, params[i])
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := w.Write(refs[i].raw); err != nil {
					t.Error(err)
					return
				}
				if err := w.Close(); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(out.Bytes(), refs[i].stream) {
					t.Errorf("goroutine %d iter %d: pooled streaming write diverged", g, it)
					return
				}

				// Parallel decompress decodes into pooled destinations.
				back, err := Decompress(stream, Params{Workers: 2})
				if err != nil {
					t.Error(err)
					return
				}
				if !back.Equal(mustRoundTrip(t, fields[i], params[i])) {
					t.Errorf("goroutine %d iter %d: pooled decompress diverged", g, it)
					return
				}

				// Streaming reader: pooled compressed-slab, recon and
				// serialization buffers, byte-compared raw output.
				r, err := NewReader(bytes.NewReader(stream))
				if err != nil {
					t.Error(err)
					return
				}
				got, err := io.ReadAll(r)
				if err != nil {
					t.Error(err)
					return
				}
				r.Close()
				var want bytes.Buffer
				if err := back.WriteRaw(&want, params[i].Core.OutputType); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, want.Bytes()) {
					t.Errorf("goroutine %d iter %d: pooled streaming read diverged", g, it)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// roundTripCache holds the expected reconstruction per field so the
// concurrent loop compares against a stable reference.
var (
	rtOnce  sync.Once
	rtMu    sync.Mutex
	rtCache map[*grid.Array]*grid.Array
)

func mustRoundTrip(t *testing.T, a *grid.Array, p Params) *grid.Array {
	t.Helper()
	rtOnce.Do(func() { rtCache = map[*grid.Array]*grid.Array{} })
	rtMu.Lock()
	defer rtMu.Unlock()
	if out, ok := rtCache[a]; ok {
		return out
	}
	stream, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream, Params{})
	if err != nil {
		t.Fatal(err)
	}
	rtCache[a] = out
	return out
}

// TestReaderCloseRecyclesSafely: Close returns the reader's buffers to
// the pools; a second Close must be a no-op and a post-Close Read must
// fail cleanly rather than serve a recycled buffer.
func TestReaderCloseRecyclesSafely(t *testing.T) {
	a := datagen.Hurricane(8, 16, 16, 9)
	p := Params{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-3, OutputType: grid.Float32}, SlabRows: 4}
	stream, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(buf); err == nil {
		t.Fatal("Read after Close must fail")
	}
}
