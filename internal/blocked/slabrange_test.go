package blocked

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

func TestDecompressSlabRange(t *testing.T) {
	a := grid.New(18, 6, 6) // 18 rows, 4-row slabs -> 5 slabs, ragged tail
	for i := range a.Data {
		a.Data[i] = math.Cos(float64(i) * 0.03)
	}
	p := Params{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-3}, SlabRows: 4}
	stream, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(stream, Params{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	ns := ix.NumSlabs()
	if ns != 5 {
		t.Fatalf("%d slabs, want 5", ns)
	}

	for _, c := range [][2]int{{0, 0}, {1, 2}, {0, ns - 1}, {ns - 1, ns - 1}, {3, 4}} {
		arr, dt, err := DecompressSlabRange(stream, c[0], c[1])
		if err != nil {
			t.Fatalf("range %v: %v", c, err)
		}
		if dt != grid.Float64 {
			t.Fatalf("range %v: dtype %v", c, dt)
		}
		rowLo, _ := ix.SlabBounds(c[0])
		_, rowHi := ix.SlabBounds(c[1])
		if arr.Dims[0] != rowHi-rowLo {
			t.Fatalf("range %v: %d rows, want %d", c, arr.Dims[0], rowHi-rowLo)
		}
		want, err := full.Slab(rowLo, rowHi)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range arr.Data {
			if v != want.Data[i] {
				t.Fatalf("range %v: value %d differs: %g vs %g", c, i, v, want.Data[i])
			}
		}
	}

	for _, c := range [][2]int{{-1, 0}, {2, 1}, {0, ns}, {ns, ns}} {
		if _, _, err := DecompressSlabRange(stream, c[0], c[1]); err == nil {
			t.Errorf("range %v accepted, want error", c)
		}
	}
}

// TestSlabExtent: the compressed extent for slabs lo..hi must be a
// self-contained decodable byte range equal to the concatenation of
// those slabs' core streams, and decoding the extent must reproduce the
// same samples the full decode yields.
func TestSlabExtent(t *testing.T) {
	a := grid.New(18, 6, 6)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.05)
	}
	p := Params{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-3}, SlabRows: 4}
	stream, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(stream, Params{})
	if err != nil {
		t.Fatal(err)
	}
	ns := ix.NumSlabs()
	for _, c := range [][2]int{{0, 0}, {1, 3}, {0, ns - 1}, {ns - 1, ns - 1}} {
		start, end, err := ix.SlabExtent(c[0], c[1])
		if err != nil {
			t.Fatalf("extent %v: %v", c, err)
		}
		if start < ix.HeaderLen || end > len(stream) || start > end {
			t.Fatalf("extent %v out of bounds: [%d,%d)", c, start, end)
		}
		// The extent is the exact concatenation of the range's core
		// streams; walk it slab by slab using the index lengths (what a
		// remote reader reconstructs from /v1/slabs slab_lengths).
		ext := stream[start:end]
		for i := c[0]; i <= c[1]; i++ {
			cur := ext[ix.Offsets[i]-ix.Offsets[c[0]] : ix.Offsets[i+1]-ix.Offsets[c[0]]]
			slab, h, err := core.Decompress(cur)
			if err != nil {
				t.Fatalf("extent %v slab %d: %v", c, i, err)
			}
			if h.DType != grid.Float64 {
				t.Fatalf("dtype %v", h.DType)
			}
			slo, shi := ix.SlabBounds(i)
			want, err := full.Slab(slo, shi)
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range slab.Data {
				if v != want.Data[j] {
					t.Fatalf("extent %v slab %d sample %d: %g vs %g", c, i, j, v, want.Data[j])
				}
			}
		}
		if end-start != ix.Offsets[c[1]+1]-ix.Offsets[c[0]] {
			t.Fatalf("extent %v length %d, index says %d", c, end-start, ix.Offsets[c[1]+1]-ix.Offsets[c[0]])
		}
	}
	if _, _, err := ix.SlabExtent(0, ns); err == nil {
		t.Fatal("out-of-range extent accepted")
	}
}

// TestInspectNoVerifySkipsCRC: the no-verify inspect must parse the
// same index while tolerating a flipped bit in the body (which the
// CRC-checking Inspect rejects) — that is exactly the cost it skips.
func TestInspectNoVerifySkipsCRC(t *testing.T) {
	a := grid.New(12, 5, 5)
	for i := range a.Data {
		a.Data[i] = float64(i % 17)
	}
	stream, _, err := Compress(a, Params{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-3}, SlabRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	got, err := InspectNoVerify(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSlabs() != want.NumSlabs() || got.HeaderLen != want.HeaderLen || got.Version != want.Version {
		t.Fatalf("index mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("offset %d: %d vs %d", i, got.Offsets[i], want.Offsets[i])
		}
	}

	bad := append([]byte(nil), stream...)
	bad[want.HeaderLen+3] ^= 1 // body bit flip: CRC breaks, footer intact
	if _, err := Inspect(bad); err == nil {
		t.Fatal("Inspect accepted corrupt body")
	}
	if _, err := InspectNoVerify(bad); err != nil {
		t.Fatalf("InspectNoVerify must skip the CRC: %v", err)
	}

	// Structural damage must still be rejected without the CRC.
	short := stream[:len(stream)-3]
	if _, err := InspectNoVerify(short); err == nil {
		t.Fatal("truncated container accepted")
	}
}
