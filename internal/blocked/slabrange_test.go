package blocked

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

func TestDecompressSlabRange(t *testing.T) {
	a := grid.New(18, 6, 6) // 18 rows, 4-row slabs -> 5 slabs, ragged tail
	for i := range a.Data {
		a.Data[i] = math.Cos(float64(i) * 0.03)
	}
	p := Params{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-3}, SlabRows: 4}
	stream, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(stream, Params{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	ns := ix.NumSlabs()
	if ns != 5 {
		t.Fatalf("%d slabs, want 5", ns)
	}

	for _, c := range [][2]int{{0, 0}, {1, 2}, {0, ns - 1}, {ns - 1, ns - 1}, {3, 4}} {
		arr, dt, err := DecompressSlabRange(stream, c[0], c[1])
		if err != nil {
			t.Fatalf("range %v: %v", c, err)
		}
		if dt != grid.Float64 {
			t.Fatalf("range %v: dtype %v", c, dt)
		}
		rowLo, _ := ix.SlabBounds(c[0])
		_, rowHi := ix.SlabBounds(c[1])
		if arr.Dims[0] != rowHi-rowLo {
			t.Fatalf("range %v: %d rows, want %d", c, arr.Dims[0], rowHi-rowLo)
		}
		want, err := full.Slab(rowLo, rowHi)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range arr.Data {
			if v != want.Data[i] {
				t.Fatalf("range %v: value %d differs: %g vs %g", c, i, v, want.Data[i])
			}
		}
	}

	for _, c := range [][2]int{{-1, 0}, {2, 1}, {0, ns}, {ns, ns}} {
		if _, _, err := DecompressSlabRange(stream, c[0], c[1]); err == nil {
			t.Errorf("range %v accepted, want error", c)
		}
	}
}
