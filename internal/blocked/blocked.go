// Package blocked provides a chunked container around the SZ-1.4 core:
// the array is split into slabs along its slowest dimension and each slab
// is compressed independently.
//
// This is the paper's Section VI in-situ usage pattern made concrete: the
// slabs compress and decompress in parallel with no inter-worker
// communication, and any slab can be decompressed alone (random access)
// without touching the rest of the stream — the property large-scale
// post-analysis needs when only a sub-domain is of interest.
//
// The cost is that prediction cannot cross slab boundaries, so the
// compression factor is slightly below single-stream compression; the
// error bound is unaffected. With a relative bound, the global value range
// is resolved once so every slab enforces the same absolute bound the
// single-stream compressor would.
//
// # Container format (v2, magic "SZB2")
//
//	magic   "SZB2"                       4 bytes
//	ndims   byte                         1..4
//	dims    uvarint x ndims              slowest-varying first
//	slab    uvarint                      rows per slab
//	body    nSlabs core streams          concatenated in slab order,
//	                                     nSlabs = ceil(dims[0]/slab)
//	footer  uvarint nSlabs               consistency check
//	        uvarint len(slab[i]) x n     per-slab stream lengths
//	        uint32le footerLen           bytes of the two varint runs above
//	        uint32le crc32(IEEE)         over everything before this field
//
// The slab index lives in a footer, not the header, so the container can
// be written as a stream: slabs are emitted as they are compressed and
// the index is appended last. Random access seeks to the end, reads
// footerLen + CRC (the trailing 8 bytes), and recovers every slab offset;
// sequential access needs no footer at all because each core stream is
// self-delimiting (its header states its payload length). Version 1
// ("SZBK", header-resident index, no streaming) is no longer written or
// read.
package blocked

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/huffman"
)

const (
	magicPrefix = "SZB" // all container versions share this prefix
	magicV1     = "SZBK"
	magicV2     = "SZB2"
	magicV3     = "SZB3"
)

// ErrCorrupt is returned for malformed containers.
var ErrCorrupt = errors.New("blocked: corrupt container")

// ErrUnsupportedVersion is returned for containers that are
// recognizably SZ-blocked ("SZB?" magic) but of a version this build
// cannot decode — the legacy v1 layout, or a version newer than the
// build. Distinct from ErrCorrupt so callers can surface an actionable
// "upgrade or re-encode" message instead of "bad magic".
var ErrUnsupportedVersion = errors.New("blocked: unsupported container version")

// ErrSlabRange is returned by the random-access decoders for a slab
// range outside the container's extent — distinguishable from ErrCorrupt
// so servers can answer 416 rather than 400.
var ErrSlabRange = errors.New("slab range beyond container")

// Params configures blocked compression and decompression.
type Params struct {
	// Core configures the per-slab compressor. A relative bound is
	// resolved against the whole array's range before slabbing.
	// Core.Streams > 1 selects interleaved multi-stream slabs, which
	// require the v3 container.
	Core core.Params
	// SlabRows is the slab thickness along the slowest dimension;
	// 0 picks a thickness targeting ~NumCPU slabs (at least 4 rows).
	SlabRows int
	// Workers bounds compression/decompression parallelism; 0 means
	// runtime.NumCPU().
	Workers int
	// Container selects the container format version: 0 = auto (v3
	// when Core.Streams > 1 or SharedCodebook is set, else v2 —
	// byte-identical to previous releases), or an explicit 2 or 3.
	Container int
	// SharedCodebook emits one per-container Huffman codebook built
	// from the union histogram of every slab, instead of one codebook
	// per slab — shrinking small-slab overhead at the cost of a second
	// encode pass. One-shot Compress only; the streaming Writer sees
	// each slab once and returns ErrSharedCodebookStreaming.
	SharedCodebook bool
}

// containerVersion resolves the effective container version for p.
func (p Params) containerVersion() (int, error) {
	streams := p.Core.Streams
	if streams == 0 {
		streams = 1
	}
	switch p.Container {
	case 0:
		if streams > 1 || p.SharedCodebook {
			return 3, nil
		}
		return 2, nil
	case 2:
		if streams > 1 || p.SharedCodebook {
			return 0, fmt.Errorf("blocked: multi-stream slabs and shared codebooks require the v3 container (Container=3 or 0)")
		}
		return 2, nil
	case 3:
		return 3, nil
	default:
		return 0, fmt.Errorf("blocked: unknown container version %d", p.Container)
	}
}

// Stats aggregates per-slab outcomes.
type Stats struct {
	N                 int
	Slabs             int
	Predictable       int
	HitRate           float64
	EffAbsBound       float64
	CompressedBytes   int
	OriginalBytes     int
	CompressionFactor float64
	BitRate           float64
}

// Index describes a container without decompressing it.
type Index struct {
	Dims     []int
	SlabRows int
	// HeaderLen is the byte offset where the body (the first slab
	// stream) starts — past the fixed header and, for v3, the shared
	// codebook section.
	HeaderLen int
	// Offsets[i] is the byte offset of slab i's stream within the body;
	// Offsets[len] is the body length.
	Offsets []int
	// Version is the container format version (2 or 3).
	Version int
	// Streams is the interleaved Huffman sub-stream count per slab
	// (1 for v2).
	Streams int
	// CodebookLen is the byte length of the shared codebook section
	// sitting immediately before the body (0 = per-slab codebooks).
	CodebookLen int
}

// SharedCodebook reports whether the container carries one shared
// per-container codebook instead of per-slab codebooks.
func (ix *Index) SharedCodebook() bool { return ix.CodebookLen > 0 }

// NumSlabs returns the slab count.
func (ix *Index) NumSlabs() int { return len(ix.Offsets) - 1 }

// SlabBounds returns the [lo, hi) row range of slab i.
func (ix *Index) SlabBounds(i int) (lo, hi int) {
	lo = i * ix.SlabRows
	hi = lo + ix.SlabRows
	if hi > ix.Dims[0] {
		hi = ix.Dims[0]
	}
	return lo, hi
}

// Compress encodes a as a blocked container. It is a convenience wrapper
// over the streaming Writer: slabs are fed as zero-copy views and the
// container is assembled in memory, so the produced bytes are identical
// to what the streaming path emits for the same parameters.
func Compress(a *grid.Array, p Params) ([]byte, *Stats, error) {
	if err := p.Core.Validate(); err != nil {
		return nil, nil, err
	}
	// Resolve a relative bound against the global range so every slab
	// enforces the same absolute bound.
	if p.Core.Mode != core.BoundAbs {
		_, _, rng := a.Range()
		eb := relToAbs(p.Core, rng)
		p.Core.Mode = core.BoundAbs
		p.Core.AbsBound = eb
		p.Core.RelBound = 0
	}
	if p.SharedCodebook {
		// A shared codebook needs the union histogram before any slab
		// can be encoded — a two-pass job the streaming Writer cannot
		// do. Handled here instead.
		return compressShared(a, p)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, a.Dims, p)
	if err != nil {
		return nil, nil, err
	}
	rows := a.Dims[0]
	for lo := 0; lo < rows; lo += w.slabRows {
		hi := lo + w.slabRows
		if hi > rows {
			hi = rows
		}
		slab, err := a.Slab(lo, hi)
		if err == nil {
			err = w.writeSlab(slab)
		}
		if err != nil {
			w.Close()
			return nil, nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), w.Stats(), nil
}

// compressShared is the two-pass v3 encode behind Compress when
// SharedCodebook is set: analyze every slab in parallel, build one
// codebook from the union histogram (which by construction covers every
// slab's symbols), then encode every slab against it in parallel. The
// per-slab streams omit their codebooks; the container carries the one
// shared copy between header and body.
func compressShared(a *grid.Array, p Params) ([]byte, *Stats, error) {
	if _, err := p.containerVersion(); err != nil {
		return nil, nil, err
	}
	rows := a.Dims[0]
	slabRows := slabRowsFor(rows, p.SlabRows)
	nSlabs := (rows + slabRows - 1) / slabRows
	workers := p.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > nSlabs {
		workers = nSlabs
	}
	streams := p.Core.Streams
	if streams == 0 {
		streams = 1
	}

	scans := make([]*core.Scan, nSlabs)
	errs := make([]error, nSlabs)
	defer func() {
		for _, s := range scans {
			if s != nil {
				s.Release()
			}
		}
	}()
	parallelSlabs(workers, nSlabs, func(i int) {
		lo := i * slabRows
		hi := lo + slabRows
		if hi > rows {
			hi = rows
		}
		slab, err := a.Slab(lo, hi)
		if err != nil {
			errs[i] = err
			return
		}
		scans[i], errs[i] = core.Analyze(slab, p.Core)
	})
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("blocked: slab %d: %w", i, err)
		}
	}

	union := make([]uint64, len(scans[0].Hist()))
	for _, s := range scans {
		for c, f := range s.Hist() {
			union[c] += f
		}
	}
	cb, err := huffman.New(union)
	if err != nil {
		return nil, nil, fmt.Errorf("blocked: shared codebook: %w", err)
	}
	defer cb.Release()

	slabStreams := make([][]byte, nSlabs)
	slabStats := make([]*core.Stats, nSlabs)
	parallelSlabs(workers, nSlabs, func(i int) {
		slabStreams[i], slabStats[i], errs[i] = scans[i].EncodeAppend(nil, cb)
	})
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("blocked: slab %d: %w", i, err)
		}
	}

	cbw := bitstream.NewWriter(4096)
	cb.Serialize(cbw)
	cbBytes := cbw.Bytes()

	out := make([]byte, 0, containerSize(len(cbBytes), slabStreams))
	out = append(out, magicV3...)
	out = append(out, byte(len(a.Dims)))
	for _, d := range a.Dims {
		out = binary.AppendUvarint(out, uint64(d))
	}
	out = binary.AppendUvarint(out, uint64(slabRows))
	out = append(out, byte(streams))
	out = binary.AppendUvarint(out, uint64(len(cbBytes)))
	out = append(out, cbBytes...)
	for _, s := range slabStreams {
		out = append(out, s...)
	}
	foot := binary.AppendUvarint(nil, uint64(nSlabs))
	for _, s := range slabStreams {
		foot = binary.AppendUvarint(foot, uint64(len(s)))
	}
	footLen := len(foot)
	out = append(out, foot...)
	out = binary.LittleEndian.AppendUint32(out, uint32(footLen))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))

	agg := &Stats{
		N:               a.Len(),
		Slabs:           nSlabs,
		EffAbsBound:     p.Core.AbsBound,
		CompressedBytes: len(out),
	}
	for _, st := range slabStats {
		agg.Predictable += st.Predictable
		agg.OriginalBytes += st.OriginalBytes
	}
	agg.HitRate = float64(agg.Predictable) / float64(agg.N)
	agg.CompressionFactor = float64(agg.OriginalBytes) / float64(agg.CompressedBytes)
	agg.BitRate = float64(agg.CompressedBytes) * 8 / float64(agg.N)
	return out, agg, nil
}

// containerSize estimates the assembled container length for
// preallocation.
func containerSize(cbLen int, slabStreams [][]byte) int {
	n := MaxHeaderLen + cbLen + 8 + 10
	for _, s := range slabStreams {
		n += len(s) + 5
	}
	return n
}

// parallelSlabs runs fn(i) for i in [0, n) across the given worker count.
func parallelSlabs(workers, n int, fn func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// relToAbs mirrors core's effective-bound resolution for relative modes.
func relToAbs(p core.Params, valueRange float64) float64 {
	var eb float64
	switch p.Mode {
	case core.BoundRel:
		eb = p.RelBound * valueRange
	case core.BoundAbsAndRel:
		eb = math.Min(p.AbsBound, p.RelBound*valueRange)
	default:
		eb = p.AbsBound
	}
	if eb <= 0 || math.IsNaN(eb) {
		eb = math.SmallestNonzeroFloat64
	}
	return eb
}

// Inspect parses and verifies the container index from the footer,
// including the whole-container CRC.
func Inspect(stream []byte) (*Index, error) {
	return inspect(stream, true)
}

// InspectNoVerify parses the container index without the O(container)
// CRC pass. For bytes whose integrity is already established out of
// band — a content-addressed store entry that was digest-verified at
// write time — the CRC walk is the dominant cost of a random-access
// read, and skipping it is what makes a store-hit slab serve O(slab).
// The structural footer checks (offsets, lengths, geometry) still run.
func InspectNoVerify(stream []byte) (*Index, error) {
	return inspect(stream, false)
}

func inspect(stream []byte, verify bool) (*Index, error) {
	if len(stream) < len(magicV2)+3+9 {
		if _, err := parseMagic(stream); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	ci, err := ParseContainerHeader(stream)
	if err != nil {
		return nil, err
	}
	if verify && crc32.ChecksumIEEE(stream[:len(stream)-4]) != binary.LittleEndian.Uint32(stream[len(stream)-4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	if ci.BodyStart() > len(stream)-8 {
		return nil, fmt.Errorf("%w: codebook section overflows container", ErrCorrupt)
	}
	ix := &Index{
		Dims:        ci.Dims,
		SlabRows:    ci.SlabRows,
		HeaderLen:   ci.BodyStart(),
		Version:     ci.Version,
		Streams:     ci.Streams,
		CodebookLen: ci.CodebookLen,
	}
	off := ix.HeaderLen

	footerLen := int(binary.LittleEndian.Uint32(stream[len(stream)-8:]))
	footStart := len(stream) - 8 - footerLen
	if footerLen < 1 || footStart < off {
		return nil, fmt.Errorf("%w: bad footer length", ErrCorrupt)
	}
	foot := stream[footStart : len(stream)-8]
	ns, k := binary.Uvarint(foot)
	wantSlabs := (ix.Dims[0] + ix.SlabRows - 1) / ix.SlabRows
	if k <= 0 || ns != uint64(wantSlabs) {
		return nil, fmt.Errorf("%w: bad slab count", ErrCorrupt)
	}
	foff := k
	ix.Offsets = make([]int, ns+1)
	pos := 0
	for i := 0; i < int(ns); i++ {
		l, k := binary.Uvarint(foot[foff:])
		if k <= 0 {
			return nil, fmt.Errorf("%w: bad slab length", ErrCorrupt)
		}
		foff += k
		ix.Offsets[i] = pos
		pos += int(l)
	}
	ix.Offsets[ns] = pos
	if foff != footerLen {
		return nil, fmt.Errorf("%w: footer length mismatch", ErrCorrupt)
	}
	if off+pos != footStart {
		return nil, fmt.Errorf("%w: body length mismatch", ErrCorrupt)
	}
	return ix, nil
}

// SlabExtent returns the byte range [start, end) within the container
// that holds the concatenated core streams of slabs lo..hi inclusive.
// Each core stream is self-delimiting, so the extent is decodable on its
// own given the container's geometry — unless the container uses a
// shared codebook (ix.SharedCodebook()), in which case the extent's
// streams reference a section outside the extent. This is the zero-copy
// serving primitive: a slab read becomes a byte-slice of an mmap'd
// container, no entropy decode at all.
func (ix *Index) SlabExtent(lo, hi int) (start, end int, err error) {
	if lo < 0 || hi >= ix.NumSlabs() || lo > hi {
		return 0, 0, fmt.Errorf("blocked: %w: %d-%d of [0,%d)", ErrSlabRange, lo, hi, ix.NumSlabs())
	}
	return ix.HeaderLen + ix.Offsets[lo], ix.HeaderLen + ix.Offsets[hi+1], nil
}

// body returns the container body bytes given its index.
func body(stream []byte, ix *Index) []byte {
	bodyLen := ix.Offsets[len(ix.Offsets)-1]
	footerLen := int(binary.LittleEndian.Uint32(stream[len(stream)-8:]))
	end := len(stream) - 8 - footerLen
	return stream[end-bodyLen : end]
}

// sharedCodebook deserializes the container's shared codebook section
// (nil for containers whose slabs carry their own codebooks). The
// codebook is immutable once built, so concurrent slab decodes share
// one instance; the caller releases it after the last decode.
func sharedCodebook(stream []byte, ix *Index) (*huffman.Codebook, error) {
	if ix.CodebookLen == 0 {
		return nil, nil
	}
	sec := stream[ix.HeaderLen-ix.CodebookLen : ix.HeaderLen]
	cb, err := huffman.Deserialize(bitstream.NewReader(sec))
	if err != nil {
		return nil, fmt.Errorf("%w: shared codebook: %v", ErrCorrupt, err)
	}
	return cb, nil
}

// Decompress reconstructs the full array, decoding slabs in parallel
// with p.Workers goroutines (0 = NumCPU). Only p.Workers is consulted;
// compression parameters live in the stream.
func Decompress(stream []byte, p Params) (*grid.Array, error) {
	ix, err := Inspect(stream)
	if err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	out := grid.New(ix.Dims...)
	b := body(stream, ix)
	cb, err := sharedCodebook(stream, ix)
	if err != nil {
		return nil, err
	}
	if cb != nil {
		defer cb.Release()
	}
	nSlabs := ix.NumSlabs()
	errs := make([]error, nSlabs)
	dtypes := make([]grid.DType, nSlabs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nSlabs {
					return
				}
				lo, hi := ix.SlabBounds(i)
				dst, err := out.Slab(lo, hi)
				if err != nil {
					errs[i] = err
					continue
				}
				// Decode straight into the output's slab rows: the slabs
				// tile out.Data disjointly, so the workers never overlap
				// and the decode-then-copy round trip disappears.
				dtypes[i], errs[i] = decodeSlabInto(b, ix, i, dst.Data, cb)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("blocked: slab %d: %w", i, err)
		}
	}
	for i := 1; i < nSlabs; i++ {
		if dtypes[i] != dtypes[0] {
			return nil, fmt.Errorf("%w: slab %d element type %v, container uses %v",
				ErrCorrupt, i, dtypes[i], dtypes[0])
		}
	}
	return out, nil
}

// DecompressSlab decompresses only slab i (random access).
func DecompressSlab(stream []byte, i int) (*grid.Array, error) {
	slab, _, err := DecompressSlabRange(stream, i, i)
	return slab, err
}

// DecompressSlabRange decompresses slabs lo..hi (inclusive) into one
// contiguous array covering their row span, decoding the slabs in
// parallel. It also returns the container's element type so callers can
// serialize the reconstruction in the container's own width — this is
// the random-access primitive behind szd's /v1/slab/{spec} endpoint.
func DecompressSlabRange(stream []byte, lo, hi int) (*grid.Array, grid.DType, error) {
	ix, err := Inspect(stream)
	if err != nil {
		return nil, 0, err
	}
	return DecompressSlabRangeIndexed(stream, ix, lo, hi)
}

// DecompressSlabRangeIndexed is DecompressSlabRange against an index the
// caller already parsed — via Inspect, or InspectNoVerify for bytes
// whose integrity is vouched for elsewhere (a digest-verified store
// entry). It never re-walks the container.
func DecompressSlabRangeIndexed(stream []byte, ix *Index, lo, hi int) (*grid.Array, grid.DType, error) {
	if lo < 0 || hi >= ix.NumSlabs() || lo > hi {
		return nil, 0, fmt.Errorf("blocked: %w: %d-%d of [0,%d)", ErrSlabRange, lo, hi, ix.NumSlabs())
	}
	rowLo, _ := ix.SlabBounds(lo)
	_, rowHi := ix.SlabBounds(hi)
	dims := append([]int(nil), ix.Dims...)
	dims[0] = rowHi - rowLo
	out := grid.New(dims...)
	b := body(stream, ix)
	cb, err := sharedCodebook(stream, ix)
	if err != nil {
		return nil, 0, err
	}
	if cb != nil {
		defer cb.Release()
	}
	n := hi - lo + 1
	errs := make([]error, n)
	dtypes := make([]grid.DType, n)
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				slo, shi := ix.SlabBounds(lo + k)
				dst, err := out.Slab(slo-rowLo, shi-rowLo)
				if err != nil {
					errs[k] = err
					continue
				}
				dtypes[k], errs[k] = decodeSlabInto(b, ix, lo+k, dst.Data, cb)
			}
		}()
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("blocked: slab %d: %w", lo+k, err)
		}
	}
	for k := 1; k < n; k++ {
		if dtypes[k] != dtypes[0] {
			return nil, 0, fmt.Errorf("%w: slab %d element type %v, container uses %v",
				ErrCorrupt, lo+k, dtypes[k], dtypes[0])
		}
	}
	return out, dtypes[0], nil
}

// decodeSlabInto decompresses slab i directly into dst (the output
// rows the slab covers). When the stream's geometry does not fit dst the
// core falls back to a private allocation, so a corrupt slab can at
// worst scribble on rows its caller is about to discard with the error.
func decodeSlabInto(b []byte, ix *Index, i int, dst []float64, cb *huffman.Codebook) (grid.DType, error) {
	lo, hi := ix.Offsets[i], ix.Offsets[i+1]
	if lo > hi || hi > len(b) {
		return 0, fmt.Errorf("%w: slab %d bounds", ErrCorrupt, i)
	}
	slab, h, err := core.DecompressIntoShared(b[lo:hi], dst, cb)
	if err != nil {
		return 0, err
	}
	wantLo, wantHi := ix.SlabBounds(i)
	if slab.Dims[0] != wantHi-wantLo {
		return 0, fmt.Errorf("%w: slab %d has %d rows, want %d", ErrCorrupt, i, slab.Dims[0], wantHi-wantLo)
	}
	for d := 1; d < len(ix.Dims); d++ {
		if d >= len(slab.Dims) || slab.Dims[d] != ix.Dims[d] {
			return 0, fmt.Errorf("%w: slab %d dims %v do not match container %v", ErrCorrupt, i, slab.Dims, ix.Dims)
		}
	}
	return h.DType, nil
}
