// Package blocked provides a chunked container around the SZ-1.4 core:
// the array is split into slabs along its slowest dimension and each slab
// is compressed independently.
//
// This is the paper's Section VI in-situ usage pattern made concrete: the
// slabs compress and decompress in parallel with no inter-worker
// communication, and any slab can be decompressed alone (random access)
// without touching the rest of the stream — the property large-scale
// post-analysis needs when only a sub-domain is of interest.
//
// The cost is that prediction cannot cross slab boundaries, so the
// compression factor is slightly below single-stream compression; the
// error bound is unaffected. With a relative bound, the global value range
// is resolved once so every slab enforces the same absolute bound the
// single-stream compressor would.
package blocked

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/grid"
)

const magic = "SZBK"

// ErrCorrupt is returned for malformed containers.
var ErrCorrupt = errors.New("blocked: corrupt container")

// Params configures blocked compression.
type Params struct {
	// Core configures the per-slab compressor. A relative bound is
	// resolved against the whole array's range before slabbing.
	Core core.Params
	// SlabRows is the slab thickness along the slowest dimension;
	// 0 picks a thickness targeting ~NumCPU slabs (at least 4 rows).
	SlabRows int
	// Workers bounds compression parallelism; 0 means runtime.NumCPU().
	Workers int
}

// Stats aggregates per-slab outcomes.
type Stats struct {
	N                 int
	Slabs             int
	Predictable       int
	HitRate           float64
	EffAbsBound       float64
	CompressedBytes   int
	OriginalBytes     int
	CompressionFactor float64
	BitRate           float64
}

// Index describes a container without decompressing it.
type Index struct {
	Dims     []int
	SlabRows int
	// Offsets[i] is the byte offset of slab i's stream within the body;
	// Offsets[len] is the body length.
	Offsets []int
}

// NumSlabs returns the slab count.
func (ix *Index) NumSlabs() int { return len(ix.Offsets) - 1 }

// SlabBounds returns the [lo, hi) row range of slab i.
func (ix *Index) SlabBounds(i int) (lo, hi int) {
	lo = i * ix.SlabRows
	hi = lo + ix.SlabRows
	if hi > ix.Dims[0] {
		hi = ix.Dims[0]
	}
	return lo, hi
}

// Compress encodes a as a blocked container.
func Compress(a *grid.Array, p Params) ([]byte, *Stats, error) {
	if err := p.Core.Validate(); err != nil {
		return nil, nil, err
	}
	rows := a.Dims[0]
	slabRows := p.SlabRows
	if slabRows <= 0 {
		slabRows = (rows + runtime.NumCPU() - 1) / runtime.NumCPU()
		if slabRows < 4 {
			slabRows = 4
		}
	}
	if slabRows > rows {
		slabRows = rows
	}
	workers := p.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}

	// Resolve a relative bound against the global range so every slab
	// enforces the same absolute bound.
	cp := p.Core
	if cp.Mode != core.BoundAbs {
		_, _, rng := a.Range()
		eb := relToAbs(cp, rng)
		cp.Mode = core.BoundAbs
		cp.AbsBound = eb
		cp.RelBound = 0
	}

	nSlabs := (rows + slabRows - 1) / slabRows
	streams := make([][]byte, nSlabs)
	stats := make([]*core.Stats, nSlabs)
	errs := make([]error, nSlabs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nSlabs {
					return
				}
				lo := i * slabRows
				hi := lo + slabRows
				if hi > rows {
					hi = rows
				}
				slab, err := a.Slab(lo, hi)
				if err != nil {
					errs[i] = err
					continue
				}
				streams[i], stats[i], errs[i] = core.Compress(slab, cp)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("blocked: slab %d: %w", i, err)
		}
	}

	// Container: magic, ndims, dims, slabRows, per-slab lengths, body, CRC.
	head := make([]byte, 0, 64)
	head = append(head, magic...)
	head = append(head, byte(len(a.Dims)))
	for _, d := range a.Dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	head = binary.AppendUvarint(head, uint64(slabRows))
	head = binary.AppendUvarint(head, uint64(nSlabs))
	for _, s := range streams {
		head = binary.AppendUvarint(head, uint64(len(s)))
	}
	out := head
	for _, s := range streams {
		out = append(out, s...)
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))

	agg := &Stats{
		N:               a.Len(),
		Slabs:           nSlabs,
		EffAbsBound:     cp.AbsBound,
		CompressedBytes: len(out),
	}
	for _, st := range stats {
		agg.Predictable += st.Predictable
		agg.OriginalBytes += st.OriginalBytes
	}
	agg.HitRate = float64(agg.Predictable) / float64(agg.N)
	agg.CompressionFactor = float64(agg.OriginalBytes) / float64(agg.CompressedBytes)
	agg.BitRate = float64(agg.CompressedBytes) * 8 / float64(agg.N)
	return out, agg, nil
}

// relToAbs mirrors core's effective-bound resolution for relative modes.
func relToAbs(p core.Params, valueRange float64) float64 {
	var eb float64
	switch p.Mode {
	case core.BoundRel:
		eb = p.RelBound * valueRange
	case core.BoundAbsAndRel:
		eb = math.Min(p.AbsBound, p.RelBound*valueRange)
	default:
		eb = p.AbsBound
	}
	if eb <= 0 || math.IsNaN(eb) {
		eb = math.SmallestNonzeroFloat64
	}
	return eb
}

// Inspect parses the container index.
func Inspect(stream []byte) (*Index, error) {
	if len(stream) < len(magic)+2+4 {
		return nil, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if string(stream[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(stream[:len(stream)-4]) != binary.LittleEndian.Uint32(stream[len(stream)-4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	nd := int(stream[4])
	if nd < 1 || nd > grid.MaxDims {
		return nil, fmt.Errorf("%w: bad ndims", ErrCorrupt)
	}
	off := 5
	ix := &Index{Dims: make([]int, nd)}
	for i := range ix.Dims {
		v, k := binary.Uvarint(stream[off:])
		if k <= 0 || v == 0 || v > 1<<40 {
			return nil, fmt.Errorf("%w: bad dim", ErrCorrupt)
		}
		ix.Dims[i] = int(v)
		off += k
	}
	v, k := binary.Uvarint(stream[off:])
	if k <= 0 || v == 0 || v > uint64(ix.Dims[0]) {
		return nil, fmt.Errorf("%w: bad slab rows", ErrCorrupt)
	}
	ix.SlabRows = int(v)
	off += k
	ns, k := binary.Uvarint(stream[off:])
	wantSlabs := (ix.Dims[0] + ix.SlabRows - 1) / ix.SlabRows
	if k <= 0 || ns != uint64(wantSlabs) {
		return nil, fmt.Errorf("%w: bad slab count", ErrCorrupt)
	}
	off += k
	ix.Offsets = make([]int, ns+1)
	pos := 0
	for i := 0; i < int(ns); i++ {
		l, k := binary.Uvarint(stream[off:])
		if k <= 0 {
			return nil, fmt.Errorf("%w: bad slab length", ErrCorrupt)
		}
		off += k
		ix.Offsets[i] = pos
		pos += int(l)
	}
	ix.Offsets[ns] = pos
	if off+pos+4 != len(stream) {
		return nil, fmt.Errorf("%w: body length mismatch", ErrCorrupt)
	}
	return ix, nil
}

// body returns the container body bytes given its index.
func body(stream []byte, ix *Index) []byte {
	bodyLen := ix.Offsets[len(ix.Offsets)-1]
	return stream[len(stream)-4-bodyLen : len(stream)-4]
}

// Decompress reconstructs the full array using `workers` goroutines.
func Decompress(stream []byte, workers int) (*grid.Array, error) {
	ix, err := Inspect(stream)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	out := grid.New(ix.Dims...)
	b := body(stream, ix)
	nSlabs := ix.NumSlabs()
	errs := make([]error, nSlabs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nSlabs {
					return
				}
				slab, err := decodeSlab(b, ix, i)
				if err != nil {
					errs[i] = err
					continue
				}
				lo, hi := ix.SlabBounds(i)
				dst, err := out.Slab(lo, hi)
				if err != nil {
					errs[i] = err
					continue
				}
				copy(dst.Data, slab.Data)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("blocked: slab %d: %w", i, err)
		}
	}
	return out, nil
}

// DecompressSlab decompresses only slab i (random access).
func DecompressSlab(stream []byte, i int) (*grid.Array, error) {
	ix, err := Inspect(stream)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= ix.NumSlabs() {
		return nil, fmt.Errorf("blocked: slab %d out of range [0,%d)", i, ix.NumSlabs())
	}
	return decodeSlab(body(stream, ix), ix, i)
}

func decodeSlab(b []byte, ix *Index, i int) (*grid.Array, error) {
	lo, hi := ix.Offsets[i], ix.Offsets[i+1]
	if lo > hi || hi > len(b) {
		return nil, fmt.Errorf("%w: slab %d bounds", ErrCorrupt, i)
	}
	slab, _, err := core.Decompress(b[lo:hi])
	if err != nil {
		return nil, err
	}
	wantLo, wantHi := ix.SlabBounds(i)
	if slab.Dims[0] != wantHi-wantLo {
		return nil, fmt.Errorf("%w: slab %d has %d rows, want %d", ErrCorrupt, i, slab.Dims[0], wantHi-wantLo)
	}
	for d := 1; d < len(ix.Dims); d++ {
		if d >= len(slab.Dims) || slab.Dims[d] != ix.Dims[d] {
			return nil, fmt.Errorf("%w: slab %d dims %v do not match container %v", ErrCorrupt, i, slab.Dims, ix.Dims)
		}
	}
	return slab, nil
}
