package blocked

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// goldenData mirrors internal/core's golden generator: fixed
// smooth-plus-spikes data from an integer-seeded LCG, so the bytes can
// never drift with library changes.
func goldenData(dims []int, f32 bool) *grid.Array {
	a := grid.New(dims...)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range a.Data {
		state = state*6364136223846793005 + 1442695040888963407
		noise := float64(int64(state>>20)%2048-1024) / 65536.0
		v := math.Sin(float64(i)*0.07)*5 + math.Cos(float64(i)*0.013)*2 + noise
		if state%97 == 0 {
			v *= 1e5 // force an outlier
		}
		if f32 {
			v = float64(float32(v))
		}
		a.Data[i] = v
	}
	return a
}

// TestGoldenContainers pins the exact container bytes (SHA-256 and
// length) for fixed inputs. The container is deterministic regardless of
// worker count — slabs are emitted in order — so any format change fails
// here loudly; an intentional change must update the format note in the
// package comment and regenerate these digests (run with -v).
func TestGoldenContainers(t *testing.T) {
	cases := []struct {
		name     string
		dims     []int
		f32      bool
		slabRows int
		streams  int
		shared   bool
		wantLen  int
		wantSHA  string
	}{
		{"2d/float64/slab16", []int{48, 64}, false, 16, 0, false, 9853, "39f9fd1fec0f38c5b434c96c6f1f348afdcb39523780de7958e1211698b85888"},
		{"3d/float32/slab5", []int{12, 24, 16}, true, 5, 0, false, 15821, "033929fc5088a00cb1c8df43fb87c835966e7b09717aebdaed1d43d411241928"},
		{"1d/float64/oneslab", []int{1024}, false, 1024, 0, false, 2682, "0fe00ac47d78636ab6169c9e59e9131256d16fedd802d36b131ac35f22052070"},
		{"v3/3d/float32/slab5/streams4", []int{12, 24, 16}, true, 5, 4, false, 15856, "65be25efc932a81043d9afa5b6bae5a8fa2340f7a637016cfcf7ef88ce8074f2"},
		{"v3/2d/float64/slab16/sharedcb", []int{48, 64}, false, 16, 2, true, 9601, "01404cabdca11fc78d1c30e1a325b4f5853dfc736b42f07898aaa28a179b9248"},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.name, func(t *testing.T) {
			a := goldenData(tc.dims, tc.f32)
			p := Params{
				Core:     core.Params{Mode: core.BoundAbs, AbsBound: 1e-3, Streams: tc.streams},
				SlabRows: tc.slabRows,
				Workers:  3,
			}
			p.SharedCodebook = tc.shared
			if tc.f32 {
				p.Core.OutputType = grid.Float32
			}
			stream, _, err := Compress(a, p)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(stream)
			got := hex.EncodeToString(sum[:])
			t.Logf(`{%q, %#v, %v, %d, %d, %v, %d, %q},`,
				tc.name, tc.dims, tc.f32, tc.slabRows, tc.streams, tc.shared, len(stream), got)
			if tc.wantSHA == "" {
				t.Fatal("golden digest not pinned for this case")
			}
			if len(stream) != tc.wantLen || got != tc.wantSHA {
				t.Errorf("container changed: got %d bytes sha256=%s, want %d bytes sha256=%s",
					len(stream), got, tc.wantLen, tc.wantSHA)
			}
			// The pinned container must still round-trip within bound.
			out, err := Decompress(stream, Params{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Data {
				if math.Abs(a.Data[i]-out.Data[i]) > 1e-3 {
					t.Fatalf("bound violated at %d", i)
				}
			}
		})
	}
}
