package blocked

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
)

// TestContainerV3RoundTrip: every v3 stream count must reconstruct the
// exact samples the v2 serial layout does — the interleaving changes
// the entropy-stage bytes, never the decoded values.
func TestContainerV3RoundTrip(t *testing.T) {
	a := datagen.Hurricane(18, 20, 22, 6)
	base := Params{
		Core:     core.Params{Mode: core.BoundAbs, AbsBound: 1e-3, OutputType: grid.Float32},
		SlabRows: 5,
		Workers:  3,
	}
	v2, _, err := Compress(a, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(v2, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("streams=%d", k), func(t *testing.T) {
			p := base
			p.Core.Streams = k
			p.Container = 3
			stream, _, err := Compress(a, p)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := Inspect(stream)
			if err != nil {
				t.Fatal(err)
			}
			if ix.Version != 3 || ix.Streams != k || ix.SharedCodebook() {
				t.Fatalf("index = v%d streams=%d shared=%v, want v3 streams=%d self-contained",
					ix.Version, ix.Streams, ix.SharedCodebook(), k)
			}
			out, err := Decompress(stream, Params{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rawBytes(t, out, grid.Float64), rawBytes(t, want, grid.Float64)) {
				t.Fatal("v3 reconstruction differs from v2")
			}
		})
	}
	// The auto container rule: plain params stay v2, multi-stream params
	// promote to v3 without being asked.
	auto := base
	auto.Core.Streams = 4
	stream, _, err := Compress(a, auto)
	if err != nil {
		t.Fatal(err)
	}
	if ix, err := Inspect(stream); err != nil || ix.Version != 3 {
		t.Fatalf("auto container with streams=4: v%d, %v; want v3", ix.Version, err)
	}
	// Pinning v2 while asking for multiple streams is a contradiction,
	// not a silent downgrade.
	bad := base
	bad.Core.Streams = 4
	bad.Container = 2
	if _, _, err := Compress(a, bad); err == nil {
		t.Fatal("container v2 with streams=4 accepted")
	}
}

// TestSharedCodebookContainer: a v3 container with one per-container
// codebook must agree with the self-contained encoding sample-for-sample
// across the one-shot, streaming, and slab-range decode paths.
func TestSharedCodebookContainer(t *testing.T) {
	a := datagen.ATM(30, 40, 7)
	base := Params{
		Core:     core.Params{Mode: core.BoundAbs, AbsBound: 1e-3},
		SlabRows: 6,
		Workers:  3,
	}
	want, _, err := Compress(a, base)
	if err != nil {
		t.Fatal(err)
	}
	wantOut, err := Decompress(want, Params{})
	if err != nil {
		t.Fatal(err)
	}

	p := base
	p.Core.Streams = 2
	p.SharedCodebook = true
	stream, st, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != a.Len() {
		t.Fatalf("stats N = %d, want %d", st.N, a.Len())
	}
	ix, err := Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Version != 3 || !ix.SharedCodebook() || ix.CodebookLen == 0 {
		t.Fatalf("index = v%d shared=%v cb=%dB, want v3 with a shared codebook",
			ix.Version, ix.SharedCodebook(), ix.CodebookLen)
	}

	out, err := Decompress(stream, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawBytes(t, out, grid.Float64), rawBytes(t, wantOut, grid.Float64)) {
		t.Fatal("shared-codebook reconstruction differs from self-contained")
	}

	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 3 || !r.SharedCodebook() {
		t.Fatalf("reader reports v%d shared=%v", r.Version(), r.SharedCodebook())
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rawBytes(t, wantOut, grid.Float64)) {
		t.Fatal("streaming shared-codebook reconstruction differs")
	}

	rng, _, err := DecompressSlabRange(stream, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantRng, _, err := DecompressSlabRange(want, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawBytes(t, rng, grid.Float64), rawBytes(t, wantRng, grid.Float64)) {
		t.Fatal("shared-codebook slab range differs from self-contained")
	}

	// The shared codebook is a two-pass feature; the incremental writer
	// must refuse it rather than silently buffer the world.
	if _, err := NewWriter(io.Discard, a.Dims, p); !errors.Is(err, ErrSharedCodebookStreaming) {
		t.Fatalf("streaming writer with shared codebook: %v, want ErrSharedCodebookStreaming", err)
	}
}

// TestStreamingWriterV3MatchesOneShot: the v3 incremental writer must
// emit byte-identical containers to the one-shot path, like v2 does.
func TestStreamingWriterV3MatchesOneShot(t *testing.T) {
	a := datagen.Hurricane(22, 19, 15, 2)
	p := Params{
		Core:     core.Params{Mode: core.BoundAbs, AbsBound: 1e-3, OutputType: grid.Float32, Streams: 4},
		SlabRows: 6,
		Workers:  3,
	}
	want, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	raw := rawBytes(t, a, grid.Float32)
	var got bytes.Buffer
	w, err := NewWriter(&got, a.Dims, p)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off += 997 {
		end := off + 997
		if end > len(raw) {
			end = len(raw)
		}
		if _, err := w.Write(raw[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("streamed v3 container (%d bytes) differs from one-shot (%d bytes)",
			got.Len(), len(want))
	}
}

// TestUnsupportedVersionErrors: the "SZB" family error taxonomy. A v1
// or future-version magic is a version problem with a migration hint;
// only genuinely foreign bytes are ErrCorrupt.
func TestUnsupportedVersionErrors(t *testing.T) {
	pad := bytes.Repeat([]byte{0}, 64)
	for _, tc := range []struct {
		name    string
		prefix  string
		wantErr error
	}{
		{"v1", magicV1, ErrUnsupportedVersion},
		{"future", "SZB4", ErrUnsupportedVersion},
		{"foreign", "NOPE", ErrCorrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stream := append([]byte(tc.prefix), pad...)
			if _, err := Decompress(stream, Params{}); !errors.Is(err, tc.wantErr) {
				t.Errorf("Decompress: %v, want %v", err, tc.wantErr)
			}
			if _, err := Inspect(stream); !errors.Is(err, tc.wantErr) {
				t.Errorf("Inspect: %v, want %v", err, tc.wantErr)
			}
			if _, err := NewReader(bytes.NewReader(stream)); !errors.Is(err, tc.wantErr) {
				t.Errorf("NewReader: %v, want %v", err, tc.wantErr)
			}
			// Truncated to just the magic: version errors still win over
			// "too short", so old builds reading new containers stay
			// actionable.
			if _, err := Inspect([]byte(tc.prefix)); !errors.Is(err, tc.wantErr) {
				t.Errorf("Inspect(magic only): %v, want %v", err, tc.wantErr)
			}
		})
	}
}
