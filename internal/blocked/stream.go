package blocked

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sync"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/scratch"
)

// ErrNeedsAbsBound is returned by NewWriter for relative bound modes: a
// streaming writer sees the data once and cannot resolve a value-range
// relative bound against the global range. Resolve the bound first (or
// use Compress, which does it for you).
var ErrNeedsAbsBound = errors.New(
	"blocked: streaming writer requires an absolute bound (core.BoundAbs)")

// ErrSharedCodebookStreaming is returned by NewWriter when
// Params.SharedCodebook is set: the shared codebook is built from the
// union histogram of every slab, which a one-pass streaming writer
// cannot know. Use the one-shot Compress, which runs two passes.
var ErrSharedCodebookStreaming = errors.New(
	"blocked: shared codebook requires the two-pass one-shot Compress, not the streaming writer")

// maxSlabStream bounds a slab's compressed size so a corrupt or hostile
// length field cannot make the streaming reader allocate unbounded
// memory: worst-case escape coding costs under 2x the raw bytes plus the
// Huffman table, far below this cap.
func maxSlabStream(rawSlabBytes int) int {
	return 4*rawSlabBytes + 1<<20
}

type job struct {
	slab *grid.Array
	// pooled marks slab.Data as drawn from the scratch pool (the raw-byte
	// Write path); the worker recycles it once the slab is compressed.
	// Zero-copy views handed in by writeSlab must never be recycled.
	pooled bool
	res    chan result
}

type result struct {
	// stream is a scratch-pooled buffer; the emitter recycles it after
	// writing it out.
	stream []byte
	stats  *core.Stats
	err    error
}

// Writer is a streaming blocked-container writer. Raw little-endian
// values of the configured output type arrive row-major through Write;
// every SlabRows rows the accumulated slab is handed to a worker pool
// and the compressed slab streams are emitted to the destination in
// order, pipelined — slab k compresses while slab k-1 is still being
// written out. Memory is bounded by O(workers x slab), never by the
// stream length. Close flushes the pipeline and appends the seekable
// footer (see the package format note).
type Writer struct {
	dst   io.Writer
	crc   hash.Hash32
	dims  []int
	dtype grid.DType
	cp    core.Params

	slabRows int
	nSlabs   int
	rowBytes int
	elemSize int
	version  int // container format version (2 or 3)
	streams  int // sub-streams per slab (v3; 1 for v2)

	buf      []byte // raw-byte accumulator for the current slab
	slabIdx  int    // slabs dispatched so far
	rowsDone int    // rows fully dispatched

	jobs  chan job
	order chan chan result
	done  chan struct{}
	wg    sync.WaitGroup

	mu        sync.Mutex
	err       error
	lengths   []int
	slabStats []*core.Stats
	written   int64

	closed   bool
	closeErr error
	stats    *Stats
}

// NewWriter starts a streaming container writer for an array with the
// given dimensions (slowest-varying first). p.Core.Mode must be
// core.BoundAbs (ErrNeedsAbsBound otherwise); p.SlabRows and p.Workers
// default as in Compress. The caller must deliver exactly
// product(dims) values as raw little-endian p.Core.OutputType bytes and
// then Close.
func NewWriter(w io.Writer, dims []int, p Params) (*Writer, error) {
	if len(dims) < 1 || len(dims) > grid.MaxDims {
		return nil, fmt.Errorf("blocked: %d dims out of range [1,%d]", len(dims), grid.MaxDims)
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("blocked: bad dimension %d", d)
		}
	}
	if err := p.Core.Validate(); err != nil {
		return nil, err
	}
	if p.Core.Mode != core.BoundAbs {
		return nil, ErrNeedsAbsBound
	}
	if p.SharedCodebook {
		return nil, ErrSharedCodebookStreaming
	}
	version, err := p.containerVersion()
	if err != nil {
		return nil, err
	}
	streams := p.Core.Streams
	if streams == 0 {
		streams = 1
	}
	dtype := p.Core.OutputType
	if dtype == 0 {
		dtype = grid.Float64
	}
	rows := dims[0]
	slabRows := slabRowsFor(rows, p.SlabRows)
	workers := p.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	rowElems := 1
	for _, d := range dims[1:] {
		rowElems *= d
	}

	w2 := &Writer{
		dst:      w,
		crc:      crc32.NewIEEE(),
		dims:     append([]int(nil), dims...),
		dtype:    dtype,
		cp:       p.Core,
		slabRows: slabRows,
		nSlabs:   (rows + slabRows - 1) / slabRows,
		rowBytes: rowElems * dtype.Size(),
		elemSize: dtype.Size(),
		version:  version,
		streams:  streams,
		jobs:     make(chan job, workers),
		order:    make(chan chan result, 2*workers+2),
		done:     make(chan struct{}),
	}
	if err := w2.writeHeader(); err != nil {
		return nil, err
	}
	// Seed each worker's output buffer at half the raw slab size — ample
	// for typical compression factors, and append-growth (recycled too)
	// covers incompressible slabs.
	streamHint := w2.slabRows * w2.rowBytes / 2
	for i := 0; i < workers; i++ {
		w2.wg.Add(1)
		go func() {
			defer w2.wg.Done()
			for j := range w2.jobs {
				s, st, err := core.CompressAppend(scratch.Bytes(streamHint)[:0], j.slab, w2.cp)
				if j.pooled {
					scratch.PutFloat64s(j.slab.Data)
				}
				j.res <- result{s, st, err}
			}
		}()
	}
	go w2.emit()
	return w2, nil
}

// SlabRowsFor reports the slab thickness a container with the given row
// count would use for a requested thickness (0 = auto). It exposes the
// writer's sizing heuristic so capacity planners (the szd admission
// controller) can estimate per-request streaming memory.
func SlabRowsFor(rows, requested int) int { return slabRowsFor(rows, requested) }

// MaxHeaderLen bounds the fixed container header: magic (4), ndims (1),
// up to grid.MaxDims + 1 uvarints of at most 10 bytes each, plus the v3
// streams byte (1) and codebook-length uvarint (10). A v3 shared
// codebook section follows the fixed header and is NOT included — its
// length is reported by ContainerInfo.CodebookLen.
const MaxHeaderLen = 4 + 1 + (grid.MaxDims+1)*10 + 1 + 10

// ContainerInfo is the decoded fixed container header.
type ContainerInfo struct {
	// Version is the container format version (2 or 3).
	Version int
	// Dims are the full-array dimensions, slowest-varying first.
	Dims []int
	// SlabRows is the slab thickness along the slowest dimension.
	SlabRows int
	// Streams is the interleaved Huffman sub-stream count the slabs use
	// (1 for v2 containers).
	Streams int
	// CodebookLen is the byte length of the v3 shared codebook section
	// (0 = every slab carries its own codebook).
	CodebookLen int
	// HeaderLen is the fixed header's byte length. The shared codebook
	// section (CodebookLen bytes, v3 only) follows it; the body (the
	// first slab stream) starts at BodyStart.
	HeaderLen int
}

// BodyStart returns the byte offset of the first slab stream.
func (ci *ContainerInfo) BodyStart() int { return ci.HeaderLen + ci.CodebookLen }

// parseMagic classifies the leading 4 bytes: container version 2 or 3 on
// success, ErrUnsupportedVersion for recognizably-SZB containers this
// build cannot read (v1, or versions newer than it knows), ErrCorrupt
// otherwise.
func parseMagic(b []byte) (int, error) {
	if len(b) < 4 || string(b[:3]) != magicPrefix {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	switch b[3] {
	case '2':
		return 2, nil
	case '3':
		return 3, nil
	case magicV1[3]:
		return 0, fmt.Errorf("%w: v1 container (no footer); re-encode with a current sz build", ErrUnsupportedVersion)
	default:
		return 0, fmt.Errorf("%w: container %q is newer than this build supports; upgrade sz to read it", ErrUnsupportedVersion, string(b[:4]))
	}
}

// ParseContainerHeader parses the fixed container header from the
// leading bytes of a stream without consuming it. It is the one
// container-header parser: NewReader decodes through it, and admission
// controllers (szd) can cost a decompression from a peeked
// MaxHeaderLen-byte prefix alone.
func ParseContainerHeader(b []byte) (*ContainerInfo, error) {
	version, err := parseMagic(b)
	if err != nil {
		return nil, err
	}
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	nd := int(b[4])
	if nd < 1 || nd > grid.MaxDims {
		return nil, fmt.Errorf("%w: bad ndims", ErrCorrupt)
	}
	off := 5
	ci := &ContainerInfo{Version: version, Dims: make([]int, nd), Streams: 1}
	for i := range ci.Dims {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 || v == 0 || v > 1<<40 {
			return nil, fmt.Errorf("%w: bad dim", ErrCorrupt)
		}
		ci.Dims[i] = int(v)
		off += n
	}
	v, n := binary.Uvarint(b[off:])
	if n <= 0 || v == 0 || v > uint64(ci.Dims[0]) {
		return nil, fmt.Errorf("%w: bad slab rows", ErrCorrupt)
	}
	ci.SlabRows = int(v)
	off += n
	if version >= 3 {
		if len(b) < off+1 {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		ci.Streams = int(b[off])
		off++
		if ci.Streams < 1 || ci.Streams > huffman.MaxStreams {
			return nil, fmt.Errorf("%w: bad stream count %d", ErrCorrupt, ci.Streams)
		}
		v, n := binary.Uvarint(b[off:])
		if n <= 0 || v > maxCodebookSection {
			return nil, fmt.Errorf("%w: bad codebook length", ErrCorrupt)
		}
		ci.CodebookLen = int(v)
		off += n
	}
	ci.HeaderLen = off
	return ci, nil
}

// maxCodebookSection bounds the shared codebook section so a hostile
// length field cannot force an unbounded read: a full 2^16-symbol
// codebook serializes in well under 64 KiB.
const maxCodebookSection = 1 << 20

// slabRowsFor resolves the slab thickness (0 targets ~NumCPU slabs, at
// least 4 rows, capped at the row count).
func slabRowsFor(rows, requested int) int {
	slabRows := requested
	if slabRows <= 0 {
		slabRows = (rows + runtime.NumCPU() - 1) / runtime.NumCPU()
		if slabRows < 4 {
			slabRows = 4
		}
	}
	if slabRows > rows {
		slabRows = rows
	}
	return slabRows
}

func (w *Writer) writeHeader() error {
	head := make([]byte, 0, 48)
	if w.version >= 3 {
		head = append(head, magicV3...)
	} else {
		head = append(head, magicV2...)
	}
	head = append(head, byte(len(w.dims)))
	for _, d := range w.dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	head = binary.AppendUvarint(head, uint64(w.slabRows))
	if w.version >= 3 {
		// Streams byte plus an empty shared-codebook section: the
		// one-pass writer always emits per-slab codebooks.
		head = append(head, byte(w.streams))
		head = binary.AppendUvarint(head, 0)
	}
	return w.writeHashed(head)
}

// writeHashed writes to the destination while folding the bytes into the
// running container CRC. Only NewWriter, the emitter, and Close call it,
// never concurrently.
func (w *Writer) writeHashed(b []byte) error {
	if _, err := w.dst.Write(b); err != nil {
		return err
	}
	w.crc.Write(b)
	w.mu.Lock()
	w.written += int64(len(b))
	w.mu.Unlock()
	return nil
}

// emit drains the ordered result queue, writing each compressed slab as
// soon as it and all its predecessors are done.
func (w *Writer) emit() {
	defer close(w.done)
	for rc := range w.order {
		r := <-rc
		resChanPool.Put(rc) // drained: one send, one receive
		if r.err != nil {
			w.setErr(r.err)
			continue
		}
		if w.getErr() != nil {
			scratch.PutBytes(r.stream)
			continue
		}
		err := w.writeHashed(r.stream)
		n := len(r.stream)
		scratch.PutBytes(r.stream)
		if err != nil {
			w.setErr(err)
			continue
		}
		w.mu.Lock()
		w.lengths = append(w.lengths, n)
		w.slabStats = append(w.slabStats, r.stats)
		w.mu.Unlock()
	}
}

func (w *Writer) setErr(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

func (w *Writer) getErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// curSlabRows returns the row count of the slab currently being filled.
func (w *Writer) curSlabRows() int {
	rows := w.dims[0] - w.slabIdx*w.slabRows
	if rows > w.slabRows {
		rows = w.slabRows
	}
	return rows
}

// Write accepts the next raw little-endian bytes of the row-major array.
func (w *Writer) Write(b []byte) (int, error) {
	if w.closed {
		return 0, errors.New("blocked: write after Close")
	}
	if err := w.getErr(); err != nil {
		return 0, err
	}
	n := len(b)
	for len(b) > 0 {
		if w.slabIdx >= w.nSlabs {
			err := fmt.Errorf("blocked: more than %d rows of data written", w.dims[0])
			w.setErr(err)
			return n - len(b), err
		}
		target := w.curSlabRows() * w.rowBytes
		if cap(w.buf) == 0 {
			// Lazily drawn so the writeSlab (zero-copy) path never pays
			// for an accumulator it does not use.
			w.buf = scratch.Bytes(target)[:0]
		}
		take := target - len(w.buf)
		if take > len(b) {
			take = len(b)
		}
		w.buf = append(w.buf, b[:take]...)
		b = b[take:]
		if len(w.buf) == target {
			if err := w.dispatchBuf(); err != nil {
				return n - len(b), err
			}
		}
	}
	return n, nil
}

// dispatchBuf parses the accumulated slab bytes into an array and hands
// it to the pipeline, recycling the byte buffer. The slab's float64
// backing comes from the scratch pool (every element is assigned here);
// the compressing worker recycles it.
func (w *Writer) dispatchBuf() error {
	rows := w.curSlabRows()
	dims := append([]int(nil), w.dims...)
	dims[0] = rows
	es := w.elemSize
	data := scratch.Float64s(len(w.buf) / es)
	if es == 4 {
		for i := range data {
			data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(w.buf[i*4:])))
		}
	} else {
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(w.buf[i*8:]))
		}
	}
	w.buf = w.buf[:0]
	return w.dispatch(&grid.Array{Dims: dims, Data: data}, true)
}

// writeSlab feeds a whole slab directly into the pipeline, bypassing the
// raw-byte path; Compress uses it with zero-copy slab views. Do not mix
// with partial Write calls.
func (w *Writer) writeSlab(slab *grid.Array) error {
	if w.closed {
		return errors.New("blocked: write after Close")
	}
	if err := w.getErr(); err != nil {
		return err
	}
	if len(w.buf) != 0 {
		return errors.New("blocked: writeSlab after partial Write")
	}
	if w.slabIdx >= w.nSlabs {
		return fmt.Errorf("blocked: more than %d rows of data written", w.dims[0])
	}
	if slab.Dims[0] != w.curSlabRows() {
		return fmt.Errorf("blocked: slab has %d rows, want %d", slab.Dims[0], w.curSlabRows())
	}
	return w.dispatch(slab, false)
}

// resChanPool recycles the per-slab result channels (channels are
// pointer-shaped, so pooling them allocates nothing in steady state).
var resChanPool = sync.Pool{New: func() any { return make(chan result, 1) }}

func (w *Writer) dispatch(slab *grid.Array, pooled bool) error {
	res := resChanPool.Get().(chan result)
	w.order <- res
	w.jobs <- job{slab: slab, pooled: pooled, res: res}
	w.rowsDone += slab.Dims[0]
	w.slabIdx++
	return nil
}

// Close flushes the compression pipeline, writes the footer, and
// finalizes Stats. It fails if the data delivered does not amount to
// exactly product(dims) values.
func (w *Writer) Close() error {
	if w.closed {
		return w.closeErr
	}
	w.closed = true
	if len(w.buf) != 0 && w.getErr() == nil {
		w.setErr(fmt.Errorf("blocked: %d trailing bytes do not complete a slab", len(w.buf)))
	}
	if w.rowsDone != w.dims[0] && w.getErr() == nil {
		w.setErr(fmt.Errorf("blocked: got %d of %d rows", w.rowsDone, w.dims[0]))
	}
	close(w.jobs)
	w.wg.Wait()
	close(w.order)
	<-w.done
	scratch.PutBytes(w.buf)
	w.buf = nil
	if err := w.getErr(); err != nil {
		w.closeErr = err
		return err
	}

	// Footer: slab count + lengths, their byte length, container CRC.
	foot := binary.AppendUvarint(nil, uint64(w.nSlabs))
	for _, l := range w.lengths {
		foot = binary.AppendUvarint(foot, uint64(l))
	}
	footLen := len(foot)
	foot = binary.LittleEndian.AppendUint32(foot, uint32(footLen))
	if err := w.writeHashed(foot); err != nil {
		w.closeErr = err
		return err
	}
	tail := binary.LittleEndian.AppendUint32(nil, w.crc.Sum32())
	if _, err := w.dst.Write(tail); err != nil {
		w.closeErr = err
		return err
	}
	w.mu.Lock()
	w.written += int64(len(tail))
	w.mu.Unlock()

	w.stats = w.aggregateStats()
	return nil
}

func (w *Writer) aggregateStats() *Stats {
	n := 1
	for _, d := range w.dims {
		n *= d
	}
	agg := &Stats{
		N:               n,
		Slabs:           w.nSlabs,
		EffAbsBound:     w.cp.AbsBound,
		CompressedBytes: int(w.written),
	}
	for _, st := range w.slabStats {
		agg.Predictable += st.Predictable
		agg.OriginalBytes += st.OriginalBytes
	}
	agg.HitRate = float64(agg.Predictable) / float64(agg.N)
	agg.CompressionFactor = float64(agg.OriginalBytes) / float64(agg.CompressedBytes)
	agg.BitRate = float64(agg.CompressedBytes) * 8 / float64(agg.N)
	return agg
}

// Stats returns the aggregated compression statistics; it is nil until
// Close has returned successfully.
func (w *Writer) Stats() *Stats { return w.stats }

// Reader decompresses a blocked container from a plain io.Reader,
// slab-at-a-time: each core stream is self-delimiting, so the reader
// never buffers more than one compressed slab plus its reconstruction —
// peak memory is O(slab), not O(stream). Read returns the reconstructed
// values as raw little-endian bytes of the container's element type, in
// row-major order. The footer lengths and container CRC are verified
// when the last slab has been consumed.
type Reader struct {
	br  *bufio.Reader
	crc hash.Hash32

	dims     []int
	slabRows int
	nSlabs   int
	dtype    grid.DType
	version  int
	streams  int
	cb       *huffman.Codebook // shared codebook (v3; nil = per-slab)

	slabIdx int
	cur     []byte // raw bytes of the current slab not yet served
	curOff  int
	sbuf    []byte    // scratch-pooled compressed-slab buffer
	recon   []float64 // scratch-pooled reconstruction buffer
	curBuf  []byte    // scratch-pooled slab-serialization buffer
	lengths []int
	hashed  int // bytes consumed and folded into the CRC so far
	err     error
	closed  bool
}

// NewReader parses the container header from r and prepares streaming
// decompression. The element type is read from the first slab's header
// without consuming it, so DType is valid immediately.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok || br.Size() < core.MaxHeaderLen {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	rd := &Reader{br: br, crc: crc32.NewIEEE()}

	hdr, _ := br.Peek(MaxHeaderLen) // short reads surface as parse errors
	ci, err := ParseContainerHeader(hdr)
	if err != nil {
		return nil, err
	}
	if err := rd.readFull(make([]byte, ci.HeaderLen)); err != nil {
		return nil, fmt.Errorf("%w: header: %w", ErrCorrupt, err)
	}
	rd.dims = ci.Dims
	rd.slabRows = ci.SlabRows
	rd.version = ci.Version
	rd.streams = ci.Streams
	rd.nSlabs = (rd.dims[0] + rd.slabRows - 1) / rd.slabRows
	if ci.CodebookLen > 0 {
		sec := make([]byte, ci.CodebookLen)
		if err := rd.readFull(sec); err != nil {
			return nil, fmt.Errorf("%w: shared codebook: %w", ErrCorrupt, err)
		}
		cb, err := huffman.Deserialize(bitstream.NewReader(sec))
		if err != nil {
			return nil, fmt.Errorf("%w: shared codebook: %v", ErrCorrupt, err)
		}
		rd.cb = cb
	}

	// Learn the element type from the first slab header (peek only).
	pk, _ := br.Peek(core.MaxHeaderLen)
	h, _, err := core.ParseHeaderPrefix(pk)
	if err != nil {
		return nil, fmt.Errorf("%w: first slab: %w", ErrCorrupt, err)
	}
	rd.dtype = h.DType
	return rd, nil
}

// Dims returns the full-array dimensions recorded in the container.
func (r *Reader) Dims() []int { return append([]int(nil), r.dims...) }

// DType returns the element type the raw output bytes use.
func (r *Reader) DType() grid.DType { return r.dtype }

// NumSlabs returns the container's slab count.
func (r *Reader) NumSlabs() int { return r.nSlabs }

// SlabRows returns the slab thickness along the slowest dimension.
func (r *Reader) SlabRows() int { return r.slabRows }

// Version returns the container format version (2 or 3).
func (r *Reader) Version() int { return r.version }

// Streams returns the interleaved Huffman sub-stream count per slab.
func (r *Reader) Streams() int { return r.streams }

// SharedCodebook reports whether the container carries one shared
// per-container codebook.
func (r *Reader) SharedCodebook() bool { return r.cb != nil }

func (r *Reader) readFull(b []byte) error {
	if _, err := io.ReadFull(r.br, b); err != nil {
		return err
	}
	r.crc.Write(b)
	r.hashed += len(b)
	return nil
}

func (r *Reader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		c, err := r.br.ReadByte()
		if err != nil {
			return 0, err
		}
		r.crc.Write([]byte{c})
		r.hashed++
		if c < 0x80 {
			if i == binary.MaxVarintLen64-1 && c > 1 {
				return 0, errors.New("uvarint overflow")
			}
			return x | uint64(c)<<s, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, errors.New("uvarint overflow")
}

// Read serves the next raw bytes of the reconstruction, decoding slabs
// lazily as needed.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for r.curOff == len(r.cur) {
		if r.slabIdx == r.nSlabs {
			if err := r.readFooter(); err != nil {
				r.err = err
				return 0, err
			}
			r.err = io.EOF
			return 0, io.EOF
		}
		if err := r.nextSlab(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.cur[r.curOff:])
	r.curOff += n
	return n, nil
}

// Close returns the reader's pooled working buffers to the scratch
// pools. It never fails and does not close the underlying reader; a
// closed reader serves no further data. Closing is optional — an
// unclosed reader's buffers are ordinary garbage.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	scratch.PutBytes(r.sbuf)
	scratch.PutFloat64s(r.recon)
	scratch.PutBytes(r.curBuf)
	if r.cb != nil {
		r.cb.Release()
		r.cb = nil
	}
	r.sbuf, r.recon, r.curBuf, r.cur = nil, nil, nil, nil
	if r.err == nil {
		r.err = errors.New("blocked: reader closed")
	}
	return nil
}

func (r *Reader) nextSlab() error {
	i := r.slabIdx
	pk, _ := r.br.Peek(core.MaxHeaderLen)
	_, total, err := core.ParseHeaderPrefix(pk)
	if err != nil {
		return fmt.Errorf("%w: slab %d: %w", ErrCorrupt, i, err)
	}
	wantLo := i * r.slabRows
	wantHi := wantLo + r.slabRows
	if wantHi > r.dims[0] {
		wantHi = r.dims[0]
	}
	rowElems := 1
	for _, d := range r.dims[1:] {
		rowElems *= d
	}
	rawSlab := (wantHi - wantLo) * rowElems * r.dtype.Size()
	if total > maxSlabStream(rawSlab) {
		return fmt.Errorf("%w: slab %d claims %d bytes", ErrCorrupt, i, total)
	}
	if cap(r.sbuf) < total {
		scratch.PutBytes(r.sbuf)
		r.sbuf = scratch.Bytes(total)
	}
	r.sbuf = r.sbuf[:total]
	if err := r.readFull(r.sbuf); err != nil {
		return fmt.Errorf("%w: slab %d: %w", ErrCorrupt, i, err)
	}
	// Decode into the reader's reusable reconstruction buffer: slabs of
	// a container share one geometry, so after the first slab this is
	// allocation-free.
	slabElems := (wantHi - wantLo) * rowElems
	if cap(r.recon) < slabElems {
		scratch.PutFloat64s(r.recon)
		r.recon = scratch.Float64s(slabElems)
	}
	slab, h, err := core.DecompressIntoShared(r.sbuf, r.recon[:slabElems], r.cb)
	if err != nil {
		return fmt.Errorf("blocked: slab %d: %w", i, err)
	}
	if h.DType != r.dtype {
		return fmt.Errorf("%w: slab %d element type %v, container uses %v", ErrCorrupt, i, h.DType, r.dtype)
	}
	if slab.Dims[0] != wantHi-wantLo {
		return fmt.Errorf("%w: slab %d has %d rows, want %d", ErrCorrupt, i, slab.Dims[0], wantHi-wantLo)
	}
	for d := 1; d < len(r.dims); d++ {
		if d >= len(slab.Dims) || slab.Dims[d] != r.dims[d] {
			return fmt.Errorf("%w: slab %d dims %v do not match container %v", ErrCorrupt, i, slab.Dims, r.dims)
		}
	}
	// Serialize the reconstruction into the reusable output buffer —
	// byte-identical to grid.Array.WriteRaw (same IEEE conversions in
	// the same order), without the intermediate bytes.Buffer.
	need := len(slab.Data) * r.dtype.Size()
	if cap(r.curBuf) < need {
		scratch.PutBytes(r.curBuf)
		r.curBuf = scratch.Bytes(need)
	}
	out := r.curBuf[:need]
	if r.dtype == grid.Float32 {
		for k, v := range slab.Data {
			binary.LittleEndian.PutUint32(out[k*4:], math.Float32bits(float32(v)))
		}
	} else {
		for k, v := range slab.Data {
			binary.LittleEndian.PutUint64(out[k*8:], math.Float64bits(v))
		}
	}
	r.cur = out
	r.curOff = 0
	r.lengths = append(r.lengths, total)
	r.slabIdx++
	return nil
}

// readFooter parses and verifies the footer against everything the
// reader has seen, then checks the container CRC and clean EOF.
func (r *Reader) readFooter() error {
	start := r.hashed
	ns, err := r.readUvarint()
	if err != nil || ns != uint64(r.nSlabs) {
		return fmt.Errorf("%w: footer slab count", ErrCorrupt)
	}
	for i := 0; i < r.nSlabs; i++ {
		l, err := r.readUvarint()
		if err != nil || int(l) != r.lengths[i] {
			return fmt.Errorf("%w: footer length of slab %d", ErrCorrupt, i)
		}
	}
	varintBytes := r.hashed - start
	var lenBuf [4]byte
	if err := r.readFull(lenBuf[:]); err != nil {
		return fmt.Errorf("%w: footer: %w", ErrCorrupt, err)
	}
	if int(binary.LittleEndian.Uint32(lenBuf[:])) != varintBytes {
		return fmt.Errorf("%w: footer length mismatch", ErrCorrupt)
	}
	want := r.crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.br, crcBuf[:]); err != nil {
		return fmt.Errorf("%w: CRC: %w", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != want {
		return fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	if _, err := r.br.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing data after container", ErrCorrupt)
	}
	return nil
}
