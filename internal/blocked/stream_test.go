package blocked

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
)

func absParams(slabRows int, dt grid.DType) Params {
	return Params{
		Core:     core.Params{Mode: core.BoundAbs, AbsBound: 1e-3, OutputType: dt},
		SlabRows: slabRows,
		Workers:  3,
	}
}

// rawBytes serializes an array the way the streaming writer expects it.
func rawBytes(t *testing.T, a *grid.Array, dt grid.DType) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteRaw(&buf, dt); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWriterMatchesCompress: the streaming writer fed raw bytes in
// awkward chunk sizes must produce byte-identical containers to the
// one-shot Compress path.
func TestWriterMatchesCompress(t *testing.T) {
	for _, dt := range []grid.DType{grid.Float32, grid.Float64} {
		a := datagen.Hurricane(26, 21, 17, 4)
		p := absParams(7, dt)
		want, _, err := Compress(a, p)
		if err != nil {
			t.Fatal(err)
		}

		raw := rawBytes(t, a, dt)
		var got bytes.Buffer
		w, err := NewWriter(&got, a.Dims, p)
		if err != nil {
			t.Fatal(err)
		}
		// Deliberately misaligned chunks (prime size) so slab and
		// element boundaries never line up with Write calls.
		for off := 0; off < len(raw); off += 1009 {
			end := off + 1009
			if end > len(raw) {
				end = len(raw)
			}
			if _, err := w.Write(raw[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("dtype %v: streamed container (%d bytes) differs from one-shot (%d bytes)",
				dt, got.Len(), len(want))
		}
		st := w.Stats()
		if st == nil || st.Slabs != (26+6)/7 || st.N != a.Len() {
			t.Fatalf("bad writer stats: %+v", st)
		}
	}
}

// TestReaderMatchesDecompress: streaming reconstruction must be
// bit-identical to the in-memory parallel path.
func TestReaderMatchesDecompress(t *testing.T) {
	for _, dt := range []grid.DType{grid.Float32, grid.Float64} {
		a := datagen.ATM(45, 64, 9)
		stream, _, err := Compress(a, absParams(8, dt))
		if err != nil {
			t.Fatal(err)
		}
		want, err := Decompress(stream, Params{})
		if err != nil {
			t.Fatal(err)
		}

		r, err := NewReader(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		if r.DType() != dt {
			t.Fatalf("reader dtype %v, want %v", r.DType(), dt)
		}
		if r.NumSlabs() != (45+7)/8 || r.SlabRows() != 8 {
			t.Fatalf("reader geometry: %d slabs x %d rows", r.NumSlabs(), r.SlabRows())
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, rawBytes(t, want, dt)) {
			t.Fatalf("dtype %v: streamed reconstruction differs from Decompress", dt)
		}
		gd := r.Dims()
		if len(gd) != 2 || gd[0] != 45 || gd[1] != 64 {
			t.Fatalf("reader dims %v", gd)
		}
	}
}

// TestReaderIsIncremental proves the O(slab) input bound behaviorally:
// given only the container header and the first k slab streams — the
// footer and remaining slabs do not exist — the reader must still
// deliver the first k slabs' reconstruction in full. A reader that
// buffers the whole stream (or seeks the footer) cannot do this.
func TestReaderIsIncremental(t *testing.T) {
	a := datagen.Hurricane(32, 20, 20, 5)
	p := absParams(4, grid.Float32)
	stream, _, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	footerLen := int(binary.LittleEndian.Uint32(stream[len(stream)-8:]))
	bodyStart := len(stream) - 8 - footerLen - ix.Offsets[ix.NumSlabs()]

	const k = 3
	cut := bodyStart + ix.Offsets[k]
	r, err := NewReader(bytes.NewReader(stream[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	lo := 0
	_, hi := ix.SlabBounds(k - 1)
	prefix, err := a.Slab(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := prefix.Len() * grid.Float32.Size()
	got := make([]byte, want)
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatalf("reading %d slabs from a %d-byte prefix: %v", k, cut, err)
	}
	// The prefix data must also be correct (bound-respecting).
	full, err := Decompress(stream, Params{})
	if err != nil {
		t.Fatal(err)
	}
	refSlab, _ := full.Slab(lo, hi)
	var ref bytes.Buffer
	if err := refSlab.WriteRaw(&ref, grid.Float32); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref.Bytes()) {
		t.Fatal("prefix reconstruction differs from full decompression")
	}
	// Beyond the cut there is nothing; the reader must error, not hang
	// or fabricate data.
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("reading past the available prefix succeeded")
	}
}

// TestReaderMemoryBounded: streaming decompression of a container must
// keep live heap O(slab), far below the array size, while the in-memory
// path would hold the whole reconstruction.
func TestReaderMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	// 1024x1024 float64 = 8 MiB raw; 32-row slabs = 256 KiB per slab.
	a := grid.New(1024, 1024)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 1e-3)
	}
	rawBytesTotal := a.Len() * 8
	stream, _, err := Compress(a, Params{
		Core:     core.Params{Mode: core.BoundAbs, AbsBound: 1e-4},
		SlabRows: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	a = nil // only the compressed container stays live

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	read := 0
	peak := uint64(0)
	for {
		n, err := r.Read(buf)
		read += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if read%(2<<20) < len(buf) { // sample roughly every 2 MiB of output
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > base.HeapAlloc && ms.HeapAlloc-base.HeapAlloc > peak {
				peak = ms.HeapAlloc - base.HeapAlloc
			}
		}
	}
	if read != rawBytesTotal {
		t.Fatalf("read %d raw bytes, want %d", read, rawBytesTotal)
	}
	limit := uint64(rawBytesTotal / 4)
	if peak > limit {
		t.Fatalf("streaming decompression held %d live bytes, want < %d (raw size %d)",
			peak, limit, rawBytesTotal)
	}
}

// TestWriterRejectsRelativeBound: a single pass cannot resolve a
// value-range bound.
func TestWriterRejectsRelativeBound(t *testing.T) {
	p := Params{Core: core.Params{Mode: core.BoundRel, RelBound: 1e-4}}
	if _, err := NewWriter(io.Discard, []int{16, 16}, p); err != ErrNeedsAbsBound {
		t.Fatalf("got %v, want ErrNeedsAbsBound", err)
	}
}

// TestWriterRowAccounting: short and long inputs must fail loudly.
func TestWriterRowAccounting(t *testing.T) {
	p := absParams(4, grid.Float64)
	w, err := NewWriter(io.Discard, []int{8, 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 4*4*8)); err != nil { // half the rows
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("short input accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("second Close must repeat the error")
	}

	w, err = NewWriter(io.Discard, []int{8, 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 9*4*8)); err == nil { // one row too many
		if err = w.Close(); err == nil {
			t.Fatal("overlong input accepted")
		}
	}

	w, err = NewWriter(io.Discard, []int{8, 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 8*4*8+3)); err == nil { // trailing partial element
		if err = w.Close(); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	}
}

// TestReaderRejectsCorruption covers streaming-path detection of the
// damage classes the one-shot path already catches.
func TestReaderRejectsCorruption(t *testing.T) {
	a := datagen.ATM(24, 16, 11)
	stream, _, err := Compress(a, absParams(8, grid.Float32))
	if err != nil {
		t.Fatal(err)
	}
	drain := func(b []byte) error {
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			return err
		}
		_, err = io.ReadAll(r)
		return err
	}
	if err := drain(stream); err != nil {
		t.Fatalf("pristine container rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bit flip in body", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }},
		{"truncated footer", func(b []byte) []byte { return b[:len(b)-5] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)*2/3] }},
		{"bad magic", func(b []byte) []byte { copy(b, "NOPE"); return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xAA) }},
		{"crc flip", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }},
	} {
		b := append([]byte(nil), stream...)
		if err := drain(tc.mutate(b)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
