package blocked

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// FuzzBlockedDecompress feeds arbitrary bytes to both container decode
// paths (mirroring internal/core's FuzzDecompress): neither the
// in-memory parallel decoder nor the streaming reader may panic, and
// when both accept a container they must agree bit-for-bit. Seeds
// include valid containers, truncations, and flipped footers so
// mutation explores the index machinery.
func FuzzBlockedDecompress(f *testing.F) {
	a := grid.New(20, 9)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.17)
	}
	for _, p := range []Params{
		{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-3}, SlabRows: 4},
		{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-2, OutputType: grid.Float32}, SlabRows: 7},
		{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-5, Layers: 2, IntervalBits: 4}, SlabRows: 20},
		// v3 corpora: interleaved sub-streams and a shared codebook.
		{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-3, Streams: 4}, SlabRows: 5},
		{Core: core.Params{Mode: core.BoundAbs, AbsBound: 1e-2, Streams: 2, OutputType: grid.Float32}, SlabRows: 6, SharedCodebook: true},
	} {
		stream, _, err := Compress(a, p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(stream)
		f.Add(stream[:len(stream)-6]) // footer truncation
		f.Add(stream[:len(stream)/2]) // body truncation
		flipped := append([]byte(nil), stream...)
		flipped[len(flipped)-10] ^= 0x40 // footer bit flip
		f.Add(flipped)
	}
	f.Add([]byte(magicV2))
	f.Add([]byte(magicV3))
	f.Add([]byte(magicV1))
	f.Add([]byte("SZB4")) // future version: must error, not panic
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, derr := Decompress(data, Params{Workers: 1})
		if derr == nil {
			if out == nil {
				t.Fatal("nil array without error")
			}
			ix, err := Inspect(data)
			if err != nil {
				t.Fatalf("Decompress accepted what Inspect rejects: %v", err)
			}
			n := 1
			for _, d := range ix.Dims {
				n *= d
			}
			if out.Len() != n {
				t.Fatalf("decoded %d values, index says %d", out.Len(), n)
			}
		}

		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if derr == nil {
				t.Fatalf("one-shot accepted but streaming rejected header: %v", err)
			}
			return
		}
		got, serr := io.ReadAll(r)
		if derr == nil {
			if serr != nil {
				t.Fatalf("one-shot accepted but streaming failed: %v", serr)
			}
			var want bytes.Buffer
			if err := out.WriteRaw(&want, r.DType()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatal("streaming and one-shot reconstructions differ")
			}
		}
	})
}
