package client

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/blocked"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/store"
)

func newStoreDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{Store: st}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// compressRemote compresses raw through the client and returns the
// container and the digest the writer captured.
func compressRemote(t *testing.T, cl *Client, raw []byte, p codec.Params) ([]byte, string) {
	t.Helper()
	var out bytes.Buffer
	zw, err := cl.NewWriter(context.Background(), &out, "blocked", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	d, ok := zw.(Digester)
	if !ok {
		t.Fatal("remote writer does not implement Digester")
	}
	if d.Digest() == "" {
		t.Fatal("remote writer captured no digest from a store-backed daemon")
	}
	return out.Bytes(), d.Digest()
}

// TestWriterDigestAndDigestReads: the digest captured at compress time
// must reference the container for bodyless decompress and slab reads.
func TestWriterDigestAndDigestReads(t *testing.T) {
	ts := newStoreDaemon(t)
	cl, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}, SlabRows: 4}
	stream, digest := compressRemote(t, cl, raw, p)
	ctx := context.Background()

	// Full reconstruction by digest must equal the body-path decode.
	rc, err := cl.NewReader(ctx, bytes.NewReader(stream), int64(len(stream)), "", codec.Params{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	rc, err = cl.DecompressAt(ctx, digest, "", codec.Params{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("DecompressAt differs from body-path decompress")
	}

	// Slab read by digest matches the local slab decode.
	arr, dt, err := blocked.DecompressSlabRange(stream, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wantSlab bytes.Buffer
	if err := arr.WriteRaw(&wantSlab, dt); err != nil {
		t.Fatal(err)
	}
	rc, err = cl.ReadSlabAt(ctx, digest, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotSlab, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSlab, wantSlab.Bytes()) {
		t.Fatal("ReadSlabAt differs from local slab decode")
	}
}

// TestReadSlabAtRevalidates: a repeat ReadSlabAt must send
// If-None-Match and be satisfied by a 304 — the daemon sends no body
// the second time.
func TestReadSlabAtRevalidates(t *testing.T) {
	ts := newStoreDaemon(t)

	// Count daemon responses that carried a slab body.
	var bodies, notModified atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, _ := http.NewRequest(r.Method, ts.URL+r.URL.String(), r.Body)
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		n, _ := io.Copy(w, resp.Body)
		if resp.StatusCode == http.StatusNotModified {
			notModified.Add(1)
		} else if n > 0 {
			bodies.Add(1)
		}
	}))
	t.Cleanup(proxy.Close)

	// Seed via a direct client (the counting proxy does not forward the
	// compress ETag trailer); read back through the proxy.
	direct, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}, SlabRows: 4}
	_, digest := compressRemote(t, direct, raw, p)

	cl, err := New(proxy.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	read := func() []byte {
		t.Helper()
		rc, err := cl.ReadSlabAt(ctx, digest, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := read()
	second := read()
	if !bytes.Equal(first, second) {
		t.Fatal("revalidated read differs from first read")
	}
	if got := notModified.Load(); got != 1 {
		t.Errorf("daemon sent %d 304s, want 1 (repeat read must revalidate)", got)
	}
}

// TestReadSlabExtentLocalDecode: the compressed extent decoded locally
// must match the daemon's raw slab decode.
func TestReadSlabExtentLocalDecode(t *testing.T) {
	ts := newStoreDaemon(t)
	cl, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}, SlabRows: 4}
	stream, digest := compressRemote(t, cl, raw, p)
	ctx := context.Background()

	for _, rng := range [][2]int{{0, 0}, {1, 2}, {0, 3}} {
		ext, err := cl.ReadSlabExtent(ctx, digest, rng[0], rng[1])
		if err != nil {
			t.Fatalf("range %v: %v", rng, err)
		}
		if ext.Raw {
			t.Fatalf("range %v: daemon fell back to raw for a plain container", rng)
		}
		got, err := ext.Decode()
		if err != nil {
			t.Fatalf("range %v: %v", rng, err)
		}
		arr, dt, err := blocked.DecompressSlabRange(stream, rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := arr.WriteRaw(&want, dt); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("range %v: local extent decode differs from slab decode", rng)
		}
	}
}

// TestCodecsInfoPreferredStreams: the client must surface the daemon's
// advertised stream count.
func TestCodecsInfoPreferredStreams(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{PreferredStreams: 6}).Handler())
	t.Cleanup(ts.Close)
	cl, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cl.CodecsInfo(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.PreferredStreams != 6 {
		t.Fatalf("PreferredStreams = %d, want 6", info.PreferredStreams)
	}
	if len(info.Codecs) == 0 {
		t.Fatal("codec list empty")
	}
}
