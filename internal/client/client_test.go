package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/server"
)

func makeRaw(t *testing.T, dt grid.DType, dims ...int) []byte {
	t.Helper()
	a := grid.New(dims...)
	for i := range a.Data {
		v := math.Sin(float64(i) * 0.02)
		if dt == grid.Float32 {
			v = float64(float32(v))
		}
		a.Data[i] = v
	}
	var raw bytes.Buffer
	if err := a.WriteRaw(&raw, dt); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes()
}

func localStream(t *testing.T, name string, raw []byte, p codec.Params) []byte {
	t.Helper()
	c, err := codec.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	zw, err := c.NewWriter(&out, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func newDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRemoteMirrorsLocal is the client half of the acceptance e2e: the
// remote writer's output is byte-identical to the local streaming
// writer, and the remote reader reproduces the local reconstruction,
// for sz14, blocked, and gzip — in both the buffered-replayable and the
// chunked-streaming client modes.
func TestRemoteMirrorsLocal(t *testing.T) {
	ts := newDaemon(t)
	raw := makeRaw(t, grid.Float32, 16, 20, 12)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}}

	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"buffered", nil},
		// A 1 KiB limit forces the chunked-streaming path for this
		// 15 KiB payload.
		{"streaming", []Option{WithBufferLimit(1 << 10)}},
	} {
		for _, name := range []string{"sz14", "blocked", "gzip"} {
			t.Run(mode.name+"/"+name, func(t *testing.T) {
				cl, err := New(ts.URL, mode.opts...)
				if err != nil {
					t.Fatal(err)
				}
				want := localStream(t, name, raw, p)

				var got bytes.Buffer
				zw, err := cl.NewWriter(context.Background(), &got, name, p)
				if err != nil {
					t.Fatal(err)
				}
				// Write in small chunks to exercise mid-write mode flips.
				for off := 0; off < len(raw); off += 4096 {
					end := off + 4096
					if end > len(raw) {
						end = len(raw)
					}
					if _, err := zw.Write(raw[off:end]); err != nil {
						t.Fatal(err)
					}
				}
				if err := zw.Close(); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("remote stream differs from local (%d vs %d bytes)", got.Len(), len(want))
				}

				c, _ := codec.Lookup(name)
				lr, err := c.NewReader(bytes.NewReader(want), p)
				if err != nil {
					t.Fatal(err)
				}
				wantRaw, err := io.ReadAll(lr)
				if err != nil {
					t.Fatal(err)
				}

				force := ""
				if name == "gzip" {
					force = "gzip"
				}
				zr, err := cl.NewReader(context.Background(), bytes.NewReader(want), int64(len(want)), force, p)
				if err != nil {
					t.Fatal(err)
				}
				gotRaw, err := io.ReadAll(zr)
				if err != nil {
					t.Fatal(err)
				}
				zr.Close()
				if !bytes.Equal(gotRaw, wantRaw) {
					t.Fatalf("remote reconstruction differs from local (%d vs %d bytes)", len(gotRaw), len(wantRaw))
				}
			})
		}
	}
}

// TestRemoteV3MirrorsLocal pins the wire mapping of the SZB3 knobs: a
// remote blocked compress with interleaved sub-streams (and a shared
// codebook) must emit the byte-identical v3 container the local writer
// does, and the remote decode of it must match the local reconstruction.
func TestRemoteV3MirrorsLocal(t *testing.T) {
	ts := newDaemon(t)
	raw := makeRaw(t, grid.Float32, 16, 20, 12)
	for _, tc := range []struct {
		name string
		p    codec.Params
	}{
		{"streams4", codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}, SlabRows: 5, Streams: 4}},
		{"sharedcb", codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}, SlabRows: 5, Streams: 2, SharedCodebook: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl, err := New(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			want := localStream(t, "blocked", raw, tc.p)
			if string(want[:4]) != "SZB3" {
				t.Fatalf("local stream magic %q, want SZB3", want[:4])
			}
			var got bytes.Buffer
			zw, err := cl.NewWriter(context.Background(), &got, "blocked", tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := zw.Write(raw); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("remote v3 stream differs from local (%d vs %d bytes)", got.Len(), len(want))
			}
			c, _ := codec.Lookup("blocked")
			lr, err := c.NewReader(bytes.NewReader(want), codec.Params{})
			if err != nil {
				t.Fatal(err)
			}
			wantRaw, err := io.ReadAll(lr)
			if err != nil {
				t.Fatal(err)
			}
			zr, err := cl.NewReader(context.Background(), bytes.NewReader(want), int64(len(want)), "", codec.Params{})
			if err != nil {
				t.Fatal(err)
			}
			gotRaw, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			zr.Close()
			if !bytes.Equal(gotRaw, wantRaw) {
				t.Fatalf("remote v3 reconstruction differs from local (%d vs %d bytes)", len(gotRaw), len(wantRaw))
			}
		})
	}
}

// TestRetryOn429 sheds the first two attempts and verifies the client
// backs off and lands the third.
func TestRetryOn429(t *testing.T) {
	real := server.New(server.Config{}).Handler()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"synthetic shed"}`, http.StatusTooManyRequests)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer ts.Close()

	cl, err := New(ts.URL, WithRetry(4, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	raw := makeRaw(t, grid.Float32, 8, 10)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{8, 10}}
	want := localStream(t, "sz14", raw, p)

	var got bytes.Buffer
	zw, err := cl.NewWriter(context.Background(), &got, "sz14", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("Close after shed: %v", err)
	}
	if n := attempts.Load(); n != 3 {
		t.Errorf("attempts = %d, want 3", n)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("retried stream differs from local reference")
	}
}

func TestRetryExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"always shed"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	cl, err := New(ts.URL, WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	zw, err := cl.NewWriter(context.Background(), io.Discard, "sz14",
		codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	zw.Write(make([]byte, 64))
	err = zw.Close()
	var se *api.Error
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want api.Error 429", err)
	}
	if !se.Temporary() {
		t.Error("429 should be Temporary")
	}
}

func TestCodecsAndHealth(t *testing.T) {
	ts := newDaemon(t)
	cl, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	names, err := cl.Codecs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, codec.Names()) {
		t.Errorf("remote codecs %v != local %v", names, codec.Names())
	}
	if err := cl.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestInspect(t *testing.T) {
	ts := newDaemon(t)
	cl, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw := makeRaw(t, grid.Float32, 16, 20, 12)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}}
	stream := localStream(t, "blocked", raw, p)

	want, err := codec.InspectStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Inspect(context.Background(), bytes.NewReader(stream), int64(len(stream)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote inspect %+v != local %+v", *got, *want)
	}
}

func TestBadAddress(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Error("empty address accepted")
	}
	cl, err := New("localhost:1") // nothing listens here
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Health(context.Background()); err == nil {
		t.Error("Health against a dead port succeeded")
	}
}

// TestAbortDoesNotSend: aborting a buffered writer after an upstream
// failure must drop the partial payload instead of posting it (with
// retries) to the daemon.
func TestAbortDoesNotSend(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	cl, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	zw, err := cl.NewWriter(context.Background(), io.Discard, "sz14",
		codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	aw, ok := zw.(interface{ Abort() error })
	if !ok {
		t.Fatal("remote writer does not expose Abort")
	}
	if err := aw.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil { // Close after Abort is a no-op
		t.Fatal(err)
	}
	if n := hits.Load(); n != 0 {
		t.Errorf("aborted writer still sent %d request(s)", n)
	}
}

// TestTenantOptionsAndLimits: WithTenant/WithPriority ride every
// request as wire headers, and Limits decodes the daemon's live QoS
// document — including the tenant account the keyed traffic created.
func TestTenantOptionsAndLimits(t *testing.T) {
	ts := newDaemon(t)
	cl, err := New(ts.URL, WithTenant("acme.ci-1"), WithPriority(api.Batch))
	if err != nil {
		t.Fatal(err)
	}

	raw := makeRaw(t, grid.Float32, 8, 10)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{8, 10}}
	zw, err := cl.NewWriter(context.Background(), io.Discard, "sz14", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	lim, err := cl.Limits(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lim.BudgetBytes <= 0 || lim.Workers <= 0 {
		t.Fatalf("limits = %+v, want positive budget and workers", lim)
	}
	acct, ok := lim.Tenants["acme"]
	if !ok {
		t.Fatalf("tenant acme missing from limits after keyed compress: %+v", lim.Tenants)
	}
	if acct.Admitted < 1 {
		t.Errorf("tenant acme admitted = %d, want >= 1", acct.Admitted)
	}
}

// TestRetryAfterHintHonored: a 429 carrying retry_after_ms must not be
// retried before the hinted delay — unless IgnoreRetryAfter opts out.
func TestRetryAfterHintHonored(t *testing.T) {
	var calls atomic.Int64
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			api.WriteError(w, &api.Error{
				Status: http.StatusTooManyRequests, Code: api.CodeOverloaded,
				Message: "shed", RetryAfterMS: 300,
			})
			return
		}
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
	}))
	defer shed.Close()

	cl, err := New(shed.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	get := func(cl *Client) error {
		resp, err := cl.do(context.Background(), func() (*http.Request, error) {
			return http.NewRequest(http.MethodGet, shed.URL+api.PathCodecs, nil)
		})
		if err == nil {
			resp.Body.Close()
		}
		return err
	}
	start := time.Now()
	if err := get(cl); err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(start); wait < 300*time.Millisecond {
		t.Errorf("retried after %v, server hinted 300ms", wait)
	}

	calls.Store(0)
	cl, err = New(shed.URL, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 3, Backoff: time.Millisecond, IgnoreRetryAfter: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if err := get(cl); err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(start); wait > 250*time.Millisecond {
		t.Errorf("IgnoreRetryAfter still waited %v", wait)
	}
}
