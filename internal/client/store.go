package client

// Content-addressed reads against szd's container store. Once a
// compress (or any body-carrying read) has seeded the daemon's store,
// the container's digest — returned as the response ETag — replaces
// the body entirely: slab and decompress requests travel as bodyless
// GETs, repeat reads ride If-None-Match/304 off a small client-side
// cache, and slab ranges can come back as compressed extents decoded
// locally instead of on the backend.

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"repro/internal/api"
	"repro/internal/codec"
	"repro/internal/core"
)

// CodecsInfo is the /v1/codecs response: the registered codec names
// plus the daemon's preferred interleaved stream count for blocked v3
// containers (what `sz c -streams auto` should adopt).
type CodecsInfo struct {
	Codecs           []string `json:"codecs"`
	PreferredStreams int      `json:"preferred_streams"`
}

// CodecsInfo fetches the daemon's codec listing and tuning hints.
func (c *Client) CodecsInfo(ctx context.Context) (*CodecsInfo, error) {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.url(api.PathCodecs, nil), nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	info := &CodecsInfo{}
	if err := json.NewDecoder(resp.Body).Decode(info); err != nil {
		return nil, fmt.Errorf("client: decoding codec list: %w", err)
	}
	c.reportTiming("codecs", resp)
	return info, nil
}

// Digester is implemented by the writer NewWriter returns: after a
// successful Close, Digest reports the served container's content
// address (the response ETag), or "" when the daemon has no store.
type Digester interface {
	Digest() string
}

// etagOf extracts the bare digest from a response's ETag, wherever the
// daemon put it: a trailer on streaming responses, a header on buffered
// ones (and on anything that crossed a caching router).
func etagOf(resp *http.Response) string {
	et := resp.Trailer.Get("Etag")
	if et == "" {
		et = resp.Header.Get("Etag")
	}
	return strings.Trim(et, `"`)
}

// DecompressAt opens a digest-referenced decompress: no body travels;
// the daemon serves the reconstruction off its stored container.
// forceCodec and p mirror NewReader.
func (c *Client) DecompressAt(ctx context.Context, digest, forceCodec string, p codec.Params) (io.ReadCloser, error) {
	q := p.Values()
	if forceCodec != "" {
		q.Set("codec", forceCodec)
	}
	q.Set(api.QueryDigest, digest)
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.url(api.PathDecompress, q), nil)
	})
	if err != nil {
		return nil, err
	}
	return c.wrapTiming("decompress", resp), nil
}

// ReadSlabAt reads slabs lo..hi of a stored container by digest. The
// client keeps a bounded cache of previous slab responses keyed by
// (digest, range) and revalidates with If-None-Match, so a repeat read
// of an unevicted entry costs a header round-trip (304) and no body
// bytes.
func (c *Client) ReadSlabAt(ctx context.Context, digest string, lo, hi int) (io.ReadCloser, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("client: bad slab range %d-%d", lo, hi)
	}
	spec := codec.FormatSlabSpec(lo, hi)
	key := digest + "|" + spec
	cached := c.slabCache.get(key)
	q := url.Values{api.QueryDigest: {digest}}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(api.PathSlabPrefix+spec, q), nil)
		if err != nil {
			return nil, err
		}
		if cached != nil {
			req.Header.Set("If-None-Match", cached.etag)
		}
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotModified && cached != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		c.reportTiming("slab", resp)
		return io.NopCloser(bytes.NewReader(cached.body)), nil
	}
	etag := etagOf(resp)
	if etag == "" {
		return c.wrapTiming("slab", resp), nil
	}
	// Buffer cacheable-sized bodies so the next read can revalidate.
	body, err := io.ReadAll(io.LimitReader(resp.Body, slabCacheEntryLimit+1))
	if err != nil {
		resp.Body.Close()
		return nil, err
	}
	if int64(len(body)) > slabCacheEntryLimit {
		return struct {
			io.Reader
			io.Closer
		}{io.MultiReader(bytes.NewReader(body), resp.Body), resp.Body}, nil
	}
	resp.Body.Close()
	c.reportTiming("slab", resp)
	c.slabCache.put(key, `"`+etag+`"`, body)
	return io.NopCloser(bytes.NewReader(body)), nil
}

// SlabExtent is a compressed slab range fetched by digest: Data holds
// the container's own bytes for that range — one self-delimiting core
// stream per slab, split by Lengths. Raw marks the daemon's fallback
// for containers whose extents are not self-contained (shared
// codebook): Data is already the decoded samples.
type SlabExtent struct {
	Data    []byte
	Lengths []int
	Raw     bool
}

// ReadSlabExtent fetches slabs lo..hi of a stored container as
// compressed bytes (Accept: application/x-sz-slab): the backend does
// no decode work and the wire carries compressed sizes. Decode the
// result locally with Decode.
func (c *Client) ReadSlabExtent(ctx context.Context, digest string, lo, hi int) (*SlabExtent, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("client: bad slab range %d-%d", lo, hi)
	}
	q := url.Values{api.QueryDigest: {digest}}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			c.url(api.PathSlabPrefix+codec.FormatSlabSpec(lo, hi), q), nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Accept", api.MediaTypeSlabExtent)
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	c.reportTiming("slab", resp)
	if resp.Header.Get("Content-Type") != api.MediaTypeSlabExtent {
		return &SlabExtent{Data: data, Raw: true}, nil
	}
	var lengths []int
	total := 0
	for _, f := range strings.Split(resp.Header.Get(api.HeaderSlabLengths), ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("client: bad %s %q", api.HeaderSlabLengths, resp.Header.Get(api.HeaderSlabLengths))
		}
		lengths = append(lengths, n)
		total += n
	}
	if total != len(data) {
		return nil, fmt.Errorf("client: slab lengths cover %d bytes, extent is %d", total, len(data))
	}
	return &SlabExtent{Data: data, Lengths: lengths}, nil
}

// Decode reconstructs the extent's raw little-endian samples locally,
// walking the per-slab core streams. For a Raw extent the daemon
// already decoded; Data passes through.
func (e *SlabExtent) Decode() ([]byte, error) {
	if e.Raw {
		return e.Data, nil
	}
	var out bytes.Buffer
	off := 0
	for i, n := range e.Lengths {
		arr, h, err := core.Decompress(e.Data[off : off+n])
		if err != nil {
			return nil, fmt.Errorf("client: decoding slab stream %d: %w", i, err)
		}
		if err := arr.WriteRaw(&out, h.DType); err != nil {
			return nil, err
		}
		off += n
	}
	return out.Bytes(), nil
}

const (
	// slabCacheBytes bounds the client's revalidation cache.
	slabCacheBytes = 64 << 20
	// slabCacheEntryLimit caps one cached slab response; bigger bodies
	// stream through uncached.
	slabCacheEntryLimit = int64(8 << 20)
)

// slabCacheEntry pairs a response body with the ETag that revalidates
// it.
type slabCacheEntry struct {
	key  string
	etag string
	body []byte
}

// slabCache is a small LRU of slab responses keyed by (digest, range).
type slabCache struct {
	mu    sync.Mutex
	bytes int64
	ll    *list.List
	items map[string]*list.Element
}

func newSlabCache() *slabCache {
	return &slabCache{ll: list.New(), items: map[string]*list.Element{}}
}

func (sc *slabCache) get(key string) *slabCacheEntry {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	el, ok := sc.items[key]
	if !ok {
		return nil
	}
	sc.ll.MoveToFront(el)
	return el.Value.(*slabCacheEntry)
}

func (sc *slabCache) put(key, etag string, body []byte) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if el, ok := sc.items[key]; ok {
		e := el.Value.(*slabCacheEntry)
		sc.bytes += int64(len(body)) - int64(len(e.body))
		e.etag, e.body = etag, body
		sc.ll.MoveToFront(el)
	} else {
		sc.items[key] = sc.ll.PushFront(&slabCacheEntry{key: key, etag: etag, body: body})
		sc.bytes += int64(len(body))
	}
	for sc.bytes > slabCacheBytes {
		el := sc.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*slabCacheEntry)
		sc.ll.Remove(el)
		delete(sc.items, e.key)
		sc.bytes -= int64(len(e.body))
	}
}
