package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"testing"

	"repro/internal/api"
	"repro/internal/blocked"
	"repro/internal/codec"
	"repro/internal/grid"
)

// TestSlabEndpointsViaClient: the client's random-access helpers must
// reproduce the library's local slab decode byte for byte.
func TestSlabEndpointsViaClient(t *testing.T) {
	ts := newDaemon(t)
	cl, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}, SlabRows: 4}
	stream := localStream(t, "blocked", raw, p)
	ctx := context.Background()

	si, err := cl.SlabIndex(ctx, bytes.NewReader(stream), int64(len(stream)))
	if err != nil {
		t.Fatal(err)
	}
	if si.Slabs != 4 || si.SlabRows != 4 || si.DType != "float32" {
		t.Fatalf("slab index = %+v, want 4x4 float32", si)
	}

	for _, rng := range [][2]int{{0, 0}, {1, 2}, {0, 3}} {
		rc, err := cl.ReadSlab(ctx, bytes.NewReader(stream), int64(len(stream)), rng[0], rng[1])
		if err != nil {
			t.Fatalf("range %v: %v", rng, err)
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatal(err)
		}
		arr, dt, err := blocked.DecompressSlabRange(stream, rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := arr.WriteRaw(&want, dt); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("range %v: remote decode differs from local", rng)
		}
	}

	// Out-of-range surfaces the daemon's 416 as an api.Error.
	if _, err := cl.ReadSlab(ctx, bytes.NewReader(stream), int64(len(stream)), 7, 9); err == nil {
		t.Fatal("out-of-range slab read accepted")
	} else {
		var se *api.Error
		if !errors.As(err, &se) || se.Status != http.StatusRequestedRangeNotSatisfiable {
			t.Fatalf("error = %v, want a 416 api.Error", err)
		}
	}

	// Bad range is rejected client-side before any request.
	if _, err := cl.ReadSlab(ctx, bytes.NewReader(stream), -1, 2, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
}
