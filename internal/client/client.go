// Package client is the Go client for szd, the compression daemon in
// internal/server. It mirrors the library's streaming facade — NewWriter
// and NewReader hand back io.WriteCloser/io.ReadCloser that behave like
// sz.NewWriter/sz.NewReader but run the codec on a remote daemon — plus
// wrappers for the daemon's metadata endpoints.
//
// Overload handling: szd sheds load with 429 (budget, worker pool, or
// tenant fair share exhausted) and 503 (draining). Every non-2xx
// response decodes into the shared *api.Error envelope — status, stable
// code, message, and the server's retry_after_ms hint. Requests whose
// bodies fit the client's buffer limit are replayable and are retried
// with exponential backoff that honors the server hint; larger bodies
// stream chunked in one attempt and surface the error instead, so the
// caller decides whether re-generating the stream is worth it.
package client

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/codec"
	"repro/internal/obs"
)

// Client talks to one szd daemon (or a szrouter fronting several).
type Client struct {
	base        string
	http        *http.Client
	tls         *tls.Config
	retry       RetryPolicy
	bufferLimit int
	apiKey      string
	priority    api.Priority
	slabCache   *slabCache // ReadSlabAt revalidation cache
	timing      func(endpoint string, entries []obs.TimingEntry)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (default http.DefaultClient).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithTLS dials the daemon over TLS with cfg: its RootCAs anchor server
// verification and its Certificates (when set) present a client
// certificate to an mTLS listener — internal/tlsconf builds both
// shapes. A bare host:port address upgrades to https://; an explicit
// http:// address is left alone (and will fail fast against a TLS
// listener with a tls_required error).
func WithTLS(cfg *tls.Config) Option { return func(c *Client) { c.tls = cfg } }

// RetryPolicy shapes the shed-retry loop for replayable requests.
type RetryPolicy struct {
	// MaxAttempts bounds tries per logical request (min 1).
	MaxAttempts int
	// Backoff is the first retry delay; it doubles per attempt.
	Backoff time.Duration
	// MaxBackoff caps a single wait, including server Retry-After
	// hints. 0 means no cap.
	MaxBackoff time.Duration
	// IgnoreRetryAfter disables stretching a wait to the server's
	// retry_after_ms hint. The default (false) honors the hint: the
	// QoS controller raises it under pressure precisely so clients
	// arrive after the squeeze, not during it.
	IgnoreRetryAfter bool
}

// WithRetryPolicy replaces the whole retry policy.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// WithRetry sets the attempt budget and initial backoff for replayable
// requests shed with 429/503 (defaults: 4 attempts, 100 ms doubling).
//
// Deprecated: use WithRetryPolicy, which also controls the backoff cap
// and Retry-After handling.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(c *Client) {
		c.retry.MaxAttempts = attempts
		c.retry.Backoff = backoff
	}
}

// WithTenant attaches an API key to every request. The daemon resolves
// the tenant as the key's prefix up to the first '.', and holds each
// tenant to its weighted-fair share of the admission budget under
// contention. No key means the shared "default" tenant.
func WithTenant(apiKey string) Option { return func(c *Client) { c.apiKey = apiKey } }

// WithPriority sets the admission class for every request. Batch
// requests shed first under pressure; Interactive (the default) may use
// the full budget.
func WithPriority(p api.Priority) Option { return func(c *Client) { c.priority = p } }

// WithBufferLimit sets how many body bytes the client will buffer to
// keep a request replayable for retry (default 4 MiB). Bodies beyond it
// stream chunked in a single attempt.
func WithBufferLimit(n int) Option { return func(c *Client) { c.bufferLimit = n } }

// WithTiming installs a callback receiving each response's Server-Timing
// breakdown — the daemon's stage spans, plus any backend stages a router
// merged under "be-". For streamed responses (decompress, slab reads)
// the breakdown travels as an HTTP trailer, so the callback fires when
// the caller drains or closes the body, not when it is opened.
func WithTiming(fn func(endpoint string, entries []obs.TimingEntry)) Option {
	return func(c *Client) { c.timing = fn }
}

// New returns a client for the daemon at addr ("host:port" or a full
// http:// / https:// URL).
func New(addr string, opts ...Option) (*Client, error) {
	if addr == "" {
		return nil, errors.New("client: empty daemon address")
	}
	bare := !strings.Contains(addr, "://")
	if bare {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return nil, fmt.Errorf("client: bad daemon address: %w", err)
	}
	c := &Client{
		base:        strings.TrimRight(u.String(), "/"),
		http:        http.DefaultClient,
		retry:       RetryPolicy{MaxAttempts: 4, Backoff: 100 * time.Millisecond},
		bufferLimit: 4 << 20,
		slabCache:   newSlabCache(),
	}
	for _, o := range opts {
		o(c)
	}
	if c.tls != nil {
		if bare {
			c.base = "https://" + strings.TrimPrefix(c.base, "http://")
		}
		switch {
		case c.http == http.DefaultClient:
			c.http = &http.Client{Transport: &http.Transport{TLSClientConfig: c.tls}}
		case c.http.Transport == nil:
			hc := *c.http
			hc.Transport = &http.Transport{TLSClientConfig: c.tls}
			c.http = &hc
		default:
			if tr, ok := c.http.Transport.(*http.Transport); ok {
				hc := *c.http
				tr = tr.Clone()
				tr.TLSClientConfig = c.tls
				hc.Transport = tr
				c.http = &hc
			}
			// A custom non-Transport RoundTripper is left alone: the
			// caller owns its TLS behavior.
		}
	}
	if c.retry.MaxAttempts < 1 {
		c.retry.MaxAttempts = 1
	}
	return c, nil
}

// applyHeaders stamps the tenant identity on an outbound request. Every
// request-building site calls it, so the daemon accounts streamed and
// replayable traffic to the same tenant.
func (c *Client) applyHeaders(h http.Header) {
	if c.apiKey != "" {
		h.Set(api.HeaderAPIKey, c.apiKey)
	}
	if c.priority != api.Interactive {
		h.Set(api.HeaderPriority, c.priority.String())
	}
}

func (c *Client) url(path string, q url.Values) string {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

// statusError turns a non-2xx response into an *api.Error, consuming
// and closing the body.
func statusError(resp *http.Response) error {
	defer resp.Body.Close()
	e := api.ReadError(resp)
	io.Copy(io.Discard, resp.Body)
	return e
}

// do runs build-request/execute with retry-on-shed. build is called per
// attempt so the body is fresh each time. All attempts share one minted
// traceparent: retries of a logical request belong to one trace. A wait
// stretches to the server's retry_after_ms hint unless the policy says
// otherwise — the hint tracks the daemon's live congestion state.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	backoff := c.retry.Backoff
	tp := obs.NewTraceparent()
	for attempt := 1; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		req.Header.Set("Traceparent", tp)
		c.applyHeaders(req.Header)
		resp, err := c.http.Do(req)
		if err != nil {
			return nil, err
		}
		// 304 is a successful revalidation, not a failure: the caller
		// sent If-None-Match and owns the matching bytes already.
		if resp.StatusCode < 300 || resp.StatusCode == http.StatusNotModified {
			return resp, nil
		}
		serr := statusError(resp)
		var ae *api.Error
		if attempt >= c.retry.MaxAttempts || !errors.As(serr, &ae) || !ae.Temporary() {
			return nil, serr
		}
		wait := backoff
		if !c.retry.IgnoreRetryAfter {
			if hint := ae.RetryAfter(); hint > wait {
				wait = hint
			}
		}
		if c.retry.MaxBackoff > 0 && wait > c.retry.MaxBackoff {
			wait = c.retry.MaxBackoff
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
		backoff *= 2
	}
}

// reportTiming delivers a response's Server-Timing breakdown to the
// WithTiming callback: the trailer wins (streaming responses settle it
// after the last body byte), the header covers buffered responses.
func (c *Client) reportTiming(endpoint string, resp *http.Response) {
	if c.timing == nil {
		return
	}
	st := resp.Trailer.Get("Server-Timing")
	if st == "" {
		st = resp.Header.Get("Server-Timing")
	}
	if st == "" {
		return
	}
	c.timing(endpoint, obs.ParseServerTiming(st))
}

// wrapTiming defers timing delivery until the caller drains or closes a
// streamed body — the Server-Timing trailer exists only then.
func (c *Client) wrapTiming(endpoint string, resp *http.Response) io.ReadCloser {
	if c.timing == nil {
		return resp.Body
	}
	return &timingBody{ReadCloser: resp.Body, c: c, endpoint: endpoint, resp: resp}
}

type timingBody struct {
	io.ReadCloser
	c        *Client
	endpoint string
	resp     *http.Response
	once     sync.Once
}

func (tb *timingBody) report() {
	tb.once.Do(func() { tb.c.reportTiming(tb.endpoint, tb.resp) })
}

func (tb *timingBody) Read(p []byte) (int, error) {
	n, err := tb.ReadCloser.Read(p)
	if err == io.EOF {
		tb.report()
	}
	return n, err
}

func (tb *timingBody) Close() error {
	err := tb.ReadCloser.Close()
	tb.report()
	return err
}

// Codecs lists the codec names registered on the daemon.
func (c *Client) Codecs(ctx context.Context) ([]string, error) {
	info, err := c.CodecsInfo(ctx)
	if err != nil {
		return nil, err
	}
	return info.Codecs, nil
}

// Health checks /healthz; nil means the daemon is accepting work.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.http.Do(mustRequest(ctx, http.MethodGet, c.url(api.PathHealthz, nil), nil))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.ReadError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Limits fetches the daemon's live QoS state: the adaptive admission
// budget, worker clamp, backoff hint, and the per-tenant shares. A
// batch caller can read it before deciding how hard to push.
func (c *Client) Limits(ctx context.Context) (*api.Limits, error) {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.url(api.PathLimits, nil), nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	lim := &api.Limits{}
	if err := json.NewDecoder(resp.Body).Decode(lim); err != nil {
		return nil, fmt.Errorf("client: decoding limits: %w", err)
	}
	return lim, nil
}

func mustRequest(ctx context.Context, method, url string, body io.Reader) *http.Request {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		panic(err) // static method+URL, cannot fail
	}
	return req
}

// Inspect sends a compressed stream and returns the daemon's parsed
// metadata (codec, geometry, bounds, slab layout). size is the stream
// length when known (it becomes the admission hint for streams too big
// to buffer), -1 otherwise.
func (c *Client) Inspect(ctx context.Context, stream io.Reader, size int64) (*codec.StreamInfo, error) {
	resp, err := c.bodyRequest(ctx, api.PathInspect, nil, stream, size)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	si := &codec.StreamInfo{}
	if err := json.NewDecoder(resp.Body).Decode(si); err != nil {
		return nil, fmt.Errorf("client: decoding inspect response: %w", err)
	}
	c.reportTiming("inspect", resp)
	return si, nil
}

// bodyRequest POSTs src as the body of path. Bodies within the buffer
// limit go replayable-with-retry; larger ones stream chunked once, with
// size (when >= 0) forwarded as the X-Sz-Content-Length admission hint.
func (c *Client) bodyRequest(ctx context.Context, path string, q url.Values, src io.Reader, size int64) (*http.Response, error) {
	head, err := io.ReadAll(io.LimitReader(src, int64(c.bufferLimit)+1))
	if err != nil {
		return nil, err
	}
	u := c.url(path, q)
	if len(head) <= c.bufferLimit {
		return c.do(ctx, func() (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(head))
		})
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u,
		io.MultiReader(bytes.NewReader(head), src))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Traceparent", obs.NewTraceparent())
	c.applyHeaders(req.Header)
	if size >= 0 {
		req.Header.Set(api.HeaderContentLength, fmt.Sprint(size))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, statusError(resp)
	}
	return resp, nil
}

// SlabIndex sends a blocked container and returns its footer index —
// the random-access map a caller needs to plan ReadSlab requests. size
// is the container length when known, -1 otherwise.
func (c *Client) SlabIndex(ctx context.Context, stream io.Reader, size int64) (*codec.SlabIndex, error) {
	resp, err := c.bodyRequest(ctx, api.PathSlabs, nil, stream, size)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	si := &codec.SlabIndex{}
	if err := json.NewDecoder(resp.Body).Decode(si); err != nil {
		return nil, fmt.Errorf("client: decoding slab index: %w", err)
	}
	c.reportTiming("slabs", resp)
	return si, nil
}

// ReadSlab asks the daemon to random-access decode slabs lo..hi
// (inclusive) of the blocked container supplied by src, returning the
// reconstructed raw little-endian samples of just that row span. size is
// the container length when known, -1 otherwise. lo == hi reads a
// single slab.
func (c *Client) ReadSlab(ctx context.Context, src io.Reader, size int64, lo, hi int) (io.ReadCloser, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("client: bad slab range %d-%d", lo, hi)
	}
	resp, err := c.bodyRequest(ctx, api.PathSlabPrefix+codec.FormatSlabSpec(lo, hi), nil, src, size)
	if err != nil {
		return nil, err
	}
	return c.wrapTiming("slab", resp), nil
}

// NewReader opens a remote decompressor: src supplies a compressed
// stream and the returned reader yields raw little-endian samples. The
// daemon auto-detects the codec from the stream magic unless forceCodec
// names one explicitly (required for gzip, whose streams carry no
// shape). size is the compressed size when known (improves admission
// accuracy for chunked sends), -1 otherwise.
func (c *Client) NewReader(ctx context.Context, src io.Reader, size int64, forceCodec string, p codec.Params) (io.ReadCloser, error) {
	q := p.Values()
	if forceCodec != "" {
		q.Set("codec", forceCodec)
	}
	resp, err := c.bodyRequest(ctx, api.PathDecompress, q, src, size)
	if err != nil {
		return nil, err
	}
	return c.wrapTiming("decompress", resp), nil
}

// NewWriter opens a remote compressor mirroring sz.NewWriter: raw
// little-endian p.DType samples written to it stream to the daemon, and
// the compressed stream lands in dst. The stream is complete only after
// Close returns nil. p.Dims is required for every codec but gzip.
//
// The returned writer additionally implements interface{ Abort() error }:
// a caller whose input failed mid-way should Abort instead of Close, so
// the buffered partial payload is dropped (Close would send it to the
// daemon as a real request, retries and all) and any in-flight
// streaming request is cancelled.
func (c *Client) NewWriter(ctx context.Context, dst io.Writer, codecName string, p codec.Params) (io.WriteCloser, error) {
	if codecName == "" {
		codecName = "sz14"
	}
	q := p.Values()
	q.Set("codec", codecName)
	rawSize := int64(-1)
	if len(p.Dims) > 0 {
		rawSize = 1
		for _, d := range p.Dims {
			rawSize *= int64(d)
		}
		sz := int64(8)
		if p.DType != 0 {
			sz = int64(p.DType.Size())
		}
		rawSize *= sz
	}
	return &remoteWriter{
		c:       c,
		ctx:     ctx,
		dst:     dst,
		url:     c.url(api.PathCompress, q),
		rawSize: rawSize,
		buf:     &bytes.Buffer{},
	}, nil
}

// remoteWriter buffers raw samples up to the client's buffer limit so
// small requests stay replayable (retry on 429/503); beyond the limit
// it flips into a single chunked streaming request whose response is
// copied to dst concurrently.
type remoteWriter struct {
	c       *Client
	ctx     context.Context
	dst     io.Writer
	url     string
	rawSize int64 // expected total raw bytes from dims/dtype; -1 unknown

	buf    *bytes.Buffer // buffering phase; nil once streaming
	pw     *io.PipeWriter
	done   chan error
	closed bool
	digest string // container content address from the response ETag
}

// Digest returns the content address the daemon assigned the finished
// container (the response ETag trailer), or "" before a successful
// Close or when the daemon runs without a store. Later reads can
// reference the container by this digest alone (DecompressAt,
// ReadSlabAt) instead of re-uploading it.
func (rw *remoteWriter) Digest() string { return rw.digest }

func (rw *remoteWriter) Write(b []byte) (int, error) {
	if rw.closed {
		return 0, errors.New("client: write after Close")
	}
	if rw.buf != nil {
		rw.buf.Write(b)
		if rw.buf.Len() <= rw.c.bufferLimit {
			return len(b), nil
		}
		if err := rw.startStreaming(); err != nil {
			return 0, err
		}
		return len(b), nil
	}
	return rw.pw.Write(b)
}

// startStreaming launches the chunked request, seeded with everything
// buffered so far; subsequent writes feed the pipe.
func (rw *remoteWriter) startStreaming() error {
	pr, pw := io.Pipe()
	body := io.MultiReader(bytes.NewReader(rw.buf.Bytes()), pr)
	req, err := http.NewRequestWithContext(rw.ctx, http.MethodPost, rw.url, body)
	if err != nil {
		pw.Close()
		return err
	}
	req.Header.Set("Traceparent", obs.NewTraceparent())
	rw.c.applyHeaders(req.Header)
	if rw.rawSize >= 0 {
		req.ContentLength = rw.rawSize
	}
	rw.buf = nil
	rw.pw = pw
	rw.done = make(chan error, 1)
	go func() {
		resp, err := rw.c.http.Do(req)
		if err != nil {
			pr.CloseWithError(err)
			rw.done <- err
			return
		}
		if resp.StatusCode >= 300 {
			err := statusError(resp)
			pr.CloseWithError(err)
			rw.done <- err
			return
		}
		_, err = io.Copy(rw.dst, resp.Body)
		resp.Body.Close()
		if err != nil {
			pr.CloseWithError(err)
		} else {
			rw.digest = etagOf(resp) // trailer, populated once the body drained
			rw.c.reportTiming("compress", resp)
		}
		rw.done <- err
	}()
	return nil
}

// Abort discards the writer without completing the request: buffered
// state is dropped unsent; an in-flight streaming request is cancelled
// and awaited. Idempotent, and a later Close is a no-op.
func (rw *remoteWriter) Abort() error {
	if rw.closed {
		return nil
	}
	rw.closed = true
	if rw.buf != nil {
		rw.buf = nil
		return nil
	}
	rw.pw.CloseWithError(errors.New("client: request aborted"))
	<-rw.done
	return nil
}

func (rw *remoteWriter) Close() error {
	if rw.closed {
		return nil
	}
	rw.closed = true
	if rw.buf != nil {
		// Replayable one-shot with retry.
		payload := rw.buf.Bytes()
		resp, err := rw.c.do(rw.ctx, func() (*http.Request, error) {
			return http.NewRequestWithContext(rw.ctx, http.MethodPost, rw.url, bytes.NewReader(payload))
		})
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err = io.Copy(rw.dst, resp.Body); err != nil {
			return err
		}
		rw.digest = etagOf(resp)
		rw.c.reportTiming("compress", resp)
		return nil
	}
	rw.pw.Close()
	return <-rw.done
}
