package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/grid"
	"repro/internal/metrics"
)

// The zfp lifting is intentionally not bit-exact: its >>1 steps discard
// low-order bits that the two fixed-point guard bits absorb. The inverse
// must reconstruct within a few integer units — negligible at scale 2^60.
func TestLiftRoundTripApprox(t *testing.T) {
	f := func(a, b, c, d int32) bool {
		p := []int64{int64(a) >> 2, int64(b) >> 2, int64(c) >> 2, int64(d) >> 2}
		orig := append([]int64(nil), p...)
		fwdLift(p, 0, 1)
		invLift(p, 0, 1)
		for i := range p {
			if diff := p[i] - orig[i]; diff > 8 || diff < -8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestXformRoundTripApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for d := 1; d <= 3; d++ {
		size := 1
		for i := 0; i < d; i++ {
			size *= 4
		}
		block := make([]int64, size)
		for i := range block {
			block[i] = int64(rng.Int31()) >> 2
		}
		orig := append([]int64(nil), block...)
		fwdXform(block, d)
		invXform(block, d)
		for i := range block {
			diff := block[i] - orig[i]
			if diff > 64 || diff < -64 {
				t.Fatalf("d=%d: xform error %d at %d exceeds guard bits", d, diff, i)
			}
		}
	}
}

func TestXformDecorrelatesSmooth(t *testing.T) {
	// A linear ramp should concentrate energy in low-sequency coefficients.
	block := make([]int64, 16)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			block[y*4+x] = int64((x + y) << 20)
		}
	}
	fwdXform(block, 2)
	order := sequencyOrder(2)
	var headEnergy, tailEnergy float64
	for rank, src := range order {
		e := math.Abs(float64(block[src]))
		if rank < 4 {
			headEnergy += e
		} else if rank >= 8 {
			tailEnergy += e
		}
	}
	if tailEnergy > headEnergy/10 {
		t.Fatalf("transform failed to decorrelate: head %v tail %v", headEnergy, tailEnergy)
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	for _, prec := range []int{32, 64} {
		vals := []int64{0, 1, -1, 2, -2, 1000, -1000, 1 << 28, -(1 << 28)}
		if prec == 64 {
			vals = append(vals, 1<<60, -(1 << 60))
		}
		for _, v := range vals {
			if got := nb2int(int2nb(v, prec), prec); got != v {
				t.Fatalf("prec %d: negabinary round trip %d -> %d", prec, v, got)
			}
		}
	}
}

func TestNegabinarySmallMagnitudeLowBits(t *testing.T) {
	// Small values must have only low bits set (that is the point of
	// negabinary for plane coding).
	for _, v := range []int64{0, 1, -1, 3, -3} {
		nb := int2nb(v, 64)
		if nb > 16 {
			t.Fatalf("negabinary of %d = %#x has high bits", v, nb)
		}
	}
}

func TestSequencyOrderIsPermutation(t *testing.T) {
	for d := 1; d <= 3; d++ {
		order := sequencyOrder(d)
		size := 1
		for i := 0; i < d; i++ {
			size *= 4
		}
		if len(order) != size {
			t.Fatalf("d=%d: order size %d", d, len(order))
		}
		seen := make([]bool, size)
		for _, v := range order {
			if v < 0 || v >= size || seen[v] {
				t.Fatalf("d=%d: not a permutation", d)
			}
			seen[v] = true
		}
		if order[0] != 0 {
			t.Fatalf("d=%d: DC coefficient must come first", d)
		}
	}
}

func TestPlaneCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(64) + 1
		data := make([]uint64, size)
		for i := range data {
			data[i] = rng.Uint64() >> uint(rng.Intn(60))
		}
		w := bitstream.NewWriter(0)
		used := encodePlanes(w, data, 64, 0, 1<<30)
		r := bitstream.NewReaderBits(w.Bytes(), w.Len())
		out := make([]uint64, size)
		got, err := decodePlanes(r, out, 64, 0, 1<<30)
		if err != nil || got != used {
			return false
		}
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneCodecPartialPrecision(t *testing.T) {
	// Coding only the top planes must reproduce the high bits exactly.
	data := []uint64{0xF0F0F0F0F0F0F0F0, 0x0F0F0F0F0F0F0F0F, 42, 1 << 63}
	kmin := 32
	w := bitstream.NewWriter(0)
	encodePlanes(w, data, 64, kmin, 1<<30)
	out := make([]uint64, len(data))
	r := bitstream.NewReaderBits(w.Bytes(), w.Len())
	if _, err := decodePlanes(r, out, 64, kmin, 1<<30); err != nil {
		t.Fatal(err)
	}
	mask := ^uint64(0) << uint(kmin)
	for i := range data {
		if out[i] != data[i]&mask {
			t.Fatalf("coeff %d: got %#x want %#x", i, out[i], data[i]&mask)
		}
	}
}

func smooth2D(m, n int) *grid.Array {
	a := grid.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(math.Sin(float64(i)*0.1)*math.Cos(float64(j)*0.15)+0.5*math.Sin(float64(i+j)*0.02), i, j)
		}
	}
	return a
}

func TestAccuracyModeRespectsToleranceSmooth(t *testing.T) {
	a := smooth2D(64, 64)
	for _, tol := range []float64{1e-2, 1e-4, 1e-6} {
		stream, _, err := Compress(a, Params{Mode: FixedAccuracy, Tolerance: tol})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		maxErr := metrics.MaxAbsError(a.Data, out.Data)
		if maxErr > tol {
			t.Fatalf("tol %g: max error %g exceeds tolerance", tol, maxErr)
		}
	}
}

func TestAccuracyModeIsConservative(t *testing.T) {
	// The paper's Table V: ZFP's actual max error is well below tolerance.
	a := smooth2D(64, 64)
	tol := 1e-3
	stream, _, err := Compress(a, Params{Mode: FixedAccuracy, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := metrics.MaxAbsError(a.Data, out.Data)
	if maxErr > tol/2 {
		t.Fatalf("expected conservative error ≪ tol, got %g vs tol %g", maxErr, tol)
	}
}

func TestHugeRangeViolatesBoundFloat32(t *testing.T) {
	// The paper's CDNUMC case: float32 pipeline, values spanning ~14 decades
	// in one block, tiny absolute tolerance. The 30-bit fixed point cannot
	// hold enough planes, so the bound is violated — a feature of the
	// reproduction, not a bug.
	a := grid.New(8, 8)
	rng := rand.New(rand.NewSource(11))
	for i := range a.Data {
		a.Data[i] = float64(float32(math.Pow(10, rng.Float64()*14-3)))
	}
	tol := 1e-7
	stream, _, err := Compress(a, Params{Mode: FixedAccuracy, Tolerance: tol, DType: grid.Float32})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := metrics.MaxAbsError(a.Data, out.Data)
	if maxErr <= tol {
		t.Fatalf("expected bound violation on huge-range block, max error %g <= tol %g", maxErr, tol)
	}
}

func TestFixedRateExactBudget(t *testing.T) {
	a := smooth2D(64, 64)
	for _, rate := range []float64{4, 8, 16} {
		stream, st, err := Compress(a, Params{Mode: FixedRate, Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		// Payload must be ~rate bits/value plus the small header.
		payloadBits := float64(st.CompressedBytes-32) * 8
		gotRate := payloadBits / float64(a.Len())
		if math.Abs(gotRate-rate) > 0.5 {
			t.Fatalf("rate %v: got %.2f bits/value", rate, gotRate)
		}
		out, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		if err := grid.SameShape(a, out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFixedRateHigherRateBetterPSNR(t *testing.T) {
	a := smooth2D(64, 64)
	var prev float64
	for _, rate := range []float64{2, 4, 8, 16} {
		stream, _, err := Compress(a, Params{Mode: FixedRate, Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		psnr := metrics.PSNR(a.Data, out.Data)
		if psnr < prev {
			t.Fatalf("PSNR fell from %v to %v as rate rose to %v", prev, psnr, rate)
		}
		prev = psnr
	}
	if prev < 60 {
		t.Fatalf("16 bits/value PSNR %v unexpectedly low", prev)
	}
}

func Test3D(t *testing.T) {
	a := grid.New(10, 12, 14)
	for i := 0; i < 10; i++ {
		for j := 0; j < 12; j++ {
			for k := 0; k < 14; k++ {
				a.Set(math.Sin(float64(i)*0.3)+math.Cos(float64(j)*0.2)*math.Sin(float64(k)*0.1), i, j, k)
			}
		}
	}
	tol := 1e-4
	stream, _, err := Compress(a, Params{Mode: FixedAccuracy, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MaxAbsError(a.Data, out.Data) > tol {
		t.Fatal("3D tolerance violated")
	}
}

func Test1D(t *testing.T) {
	a := grid.New(1000)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.01)
	}
	tol := 1e-5
	stream, _, err := Compress(a, Params{Mode: FixedAccuracy, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MaxAbsError(a.Data, out.Data) > tol {
		t.Fatal("1D tolerance violated")
	}
}

func TestPartialBlocks(t *testing.T) {
	// Dims not multiples of 4.
	a := grid.New(7, 9)
	for i := range a.Data {
		a.Data[i] = float64(i) * 0.01
	}
	tol := 1e-6
	stream, _, err := Compress(a, Params{Mode: FixedAccuracy, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MaxAbsError(a.Data, out.Data) > tol {
		t.Fatal("partial-block tolerance violated")
	}
}

func TestZeroBlocks(t *testing.T) {
	a := grid.New(16, 16) // all zeros
	stream, st, err := Compress(a, Params{Mode: FixedAccuracy, Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressionFactor < 50 {
		t.Fatalf("zero field CF = %v, want huge", st.CompressionFactor)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("zero block decoded to %v at %d", v, i)
		}
	}
}

func TestNonFiniteRejected(t *testing.T) {
	a := grid.New(8)
	a.Data[3] = math.NaN()
	if _, _, err := Compress(a, Params{Mode: FixedAccuracy, Tolerance: 1e-3}); err != ErrNonFinite {
		t.Fatalf("want ErrNonFinite, got %v", err)
	}
}

func TestValidation(t *testing.T) {
	a := grid.New(8)
	cases := []Params{
		{Mode: FixedAccuracy, Tolerance: -1},
		{Mode: FixedAccuracy, Tolerance: math.NaN()},
		{Mode: FixedRate, Rate: 0},
		{Mode: FixedRate, Rate: 100},
		{Mode: Mode(9)},
		{Mode: FixedAccuracy, DType: grid.DType(7)},
	}
	for i, p := range cases {
		if _, _, err := Compress(a, p); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	a4 := grid.New(2, 2, 2, 2)
	if _, _, err := Compress(a4, Params{Mode: FixedAccuracy, Tolerance: 1}); err == nil {
		t.Fatal("4D accepted")
	}
}

func TestCorruption(t *testing.T) {
	a := smooth2D(16, 16)
	stream, _, _ := Compress(a, Params{Mode: FixedAccuracy, Tolerance: 1e-4})
	bad := append([]byte(nil), stream...)
	bad[len(bad)/2] ^= 0x20
	if _, err := Decompress(bad); err == nil {
		t.Fatal("corruption undetected")
	}
	if _, err := Decompress(stream[:9]); err == nil {
		t.Fatal("truncation undetected")
	}
}

func TestModeString(t *testing.T) {
	if FixedAccuracy.String() != "accuracy" || FixedRate.String() != "rate" || Mode(5).String() == "" {
		t.Fatal("Mode String broken")
	}
}
