// Package zfp reimplements Lindstrom's ZFP 0.5 fixed-point block-transform
// compressor (TVCG 2014), the strongest lossy baseline in the SZ-1.4
// paper's evaluation.
//
// Pipeline per 4^d block: align all values to the block's largest exponent
// and convert to fixed point; apply the lifted orthogonal decorrelating
// transform along each axis; reorder coefficients by total sequency; map to
// negabinary; and emit bit planes MSB-first with group-testing run-length
// coding. Two modes are provided:
//
//   - FixedAccuracy: planes are coded down to the tolerance-derived cutoff
//     with a 2(d+1)-plane safety margin — which is why ZFP's observed
//     maximum error is typically an order of magnitude below the requested
//     tolerance (the paper's Table V), and why the bound can be *violated*
//     when the value range is so large that the needed planes exceed the
//     fixed-point precision (the paper's CDNUMC example);
//   - FixedRate: every block gets exactly the same bit budget, the mode
//     ZFP is designed around (rate-distortion studies, Fig. 8).
package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/bitstream"
	"repro/internal/grid"
)

const magic = "ZFPG"

// ErrCorrupt is returned for malformed streams.
var ErrCorrupt = errors.New("zfp: corrupt stream")

// ErrNonFinite is returned when the input contains NaN or Inf, which the
// exponent-alignment scheme cannot represent (matching the original).
var ErrNonFinite = errors.New("zfp: input contains non-finite values")

// Mode selects the rate-control policy.
type Mode uint8

const (
	// FixedAccuracy bounds the per-value error by a tolerance (zfp -a).
	FixedAccuracy Mode = iota + 1
	// FixedRate spends exactly Rate bits per value (zfp -r).
	FixedRate
)

func (m Mode) String() string {
	switch m {
	case FixedAccuracy:
		return "accuracy"
	case FixedRate:
		return "rate"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Params configures compression.
type Params struct {
	// Mode selects FixedAccuracy or FixedRate.
	Mode Mode
	// Tolerance is the absolute error tolerance (FixedAccuracy).
	Tolerance float64
	// Rate is the bit budget per value (FixedRate), e.g. 8.0.
	Rate float64
	// DType selects the fixed-point precision: Float32 uses 32-bit ints
	// (zfp's float path), Float64 uses 64-bit ints. 0 means Float64.
	DType grid.DType
}

// Stats reports compression outcomes.
type Stats struct {
	N                 int
	CompressedBytes   int
	OriginalBytes     int
	CompressionFactor float64
	BitRate           float64
}

const (
	ebits = 12   // biased exponent field width
	ebias = 2075 // covers frexp exponents of all normal and subnormal doubles
)

func (p *Params) defaults() error {
	if p.DType == 0 {
		p.DType = grid.Float64
	}
	if p.DType != grid.Float32 && p.DType != grid.Float64 {
		return fmt.Errorf("zfp: unsupported dtype %v", p.DType)
	}
	switch p.Mode {
	case FixedAccuracy:
		if p.Tolerance < 0 || math.IsNaN(p.Tolerance) || math.IsInf(p.Tolerance, 0) {
			return fmt.Errorf("zfp: tolerance %v must be finite and >= 0", p.Tolerance)
		}
	case FixedRate:
		if !(p.Rate > 0) || p.Rate > 64 {
			return fmt.Errorf("zfp: rate %v out of (0,64]", p.Rate)
		}
	default:
		return fmt.Errorf("zfp: unknown mode %v", p.Mode)
	}
	return nil
}

func (p *Params) intprec() int {
	if p.DType == grid.Float32 {
		return 32
	}
	return 64
}

// minExp returns the tolerance cutoff exponent (zfp_stream_set_accuracy).
func (p *Params) minExp() int {
	if p.Mode != FixedAccuracy || p.Tolerance <= 0 {
		return -(1 << 20) // effectively unlimited precision
	}
	_, e := math.Frexp(p.Tolerance)
	return e - 1
}

// Compress encodes a under p. Inputs with NaN/Inf are rejected.
func Compress(a *grid.Array, p Params) ([]byte, *Stats, error) {
	if err := p.defaults(); err != nil {
		return nil, nil, err
	}
	d := a.NDims()
	if d < 1 || d > 3 {
		return nil, nil, fmt.Errorf("zfp: %d dimensions unsupported (1-3)", d)
	}
	for _, v := range a.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, ErrNonFinite
		}
	}
	blockSize := 1
	for i := 0; i < d; i++ {
		blockSize *= blockSide
	}
	order := sequencyOrder(d)
	intprec := p.intprec()
	q := intprec - 2
	minexp := p.minExp()

	maxbits := 1 << 30 // accuracy mode: unbounded
	if p.Mode == FixedRate {
		maxbits = int(p.Rate * float64(blockSize))
		if maxbits < 1+ebits+1 {
			maxbits = 1 + ebits + 1
		}
	}

	w := bitstream.NewWriter(a.Len())
	block := make([]float64, blockSize)
	ints := make([]int64, blockSize)
	coeffs := make([]uint64, blockSize)

	nb := blockCounts(a.Dims)
	iterBlocks(nb, func(bc []int) {
		gather(a, bc, block)
		encodeBlock(w, block, ints, coeffs, order, d, intprec, q, minexp, maxbits, p.Mode)
	})

	head := make([]byte, 0, 64)
	head = append(head, magic...)
	head = append(head, byte(p.DType), byte(p.Mode), byte(d))
	for _, dim := range a.Dims {
		head = binary.AppendUvarint(head, uint64(dim))
	}
	param := p.Tolerance
	if p.Mode == FixedRate {
		param = p.Rate
	}
	head = binary.LittleEndian.AppendUint64(head, math.Float64bits(param))
	head = binary.AppendUvarint(head, w.Len())
	out := append(head, w.Bytes()...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))

	st := &Stats{
		N:               a.Len(),
		CompressedBytes: len(out),
		OriginalBytes:   a.Len() * p.DType.Size(),
	}
	st.CompressionFactor = float64(st.OriginalBytes) / float64(st.CompressedBytes)
	st.BitRate = float64(st.CompressedBytes) * 8 / float64(st.N)
	return out, st, nil
}

// encodeBlock writes one block.
func encodeBlock(w *bitstream.Writer, block []float64, ints []int64, coeffs []uint64,
	order []int, d, intprec, q, minexp, maxbits int, mode Mode) {
	start := w.Len()
	maxabs := 0.0
	for _, v := range block {
		if av := math.Abs(v); av > maxabs {
			maxabs = av
		}
	}
	_, emax := math.Frexp(maxabs)
	if mode == FixedAccuracy && (maxabs == 0 || emax < minexp) {
		w.WriteBits(0, 1) // negligible block
		return
	}
	w.WriteBits(1, 1)
	w.WriteBits(uint64(emax+ebias), ebits)

	// Fixed-point cast: x -> x * 2^(q - emax).
	scale := math.Ldexp(1, q-emax)
	for i, v := range block {
		ints[i] = int64(v * scale)
	}
	fwdXform(ints, d)
	for i, src := range order {
		coeffs[i] = int2nb(ints[src], intprec)
	}

	// Plane cutoff: zfp's precision() with the 2(d+1) safety margin.
	maxprec := intprec
	if mode == FixedAccuracy {
		maxprec = emax - minexp + 2*(d+1)
		if maxprec < 0 {
			maxprec = 0
		}
		if maxprec > intprec {
			maxprec = intprec
		}
	}
	kmin := intprec - maxprec
	budget := maxbits - int(w.Len()-start)
	encodePlanes(w, coeffs, intprec, kmin, budget)
	if mode == FixedRate {
		// Pad the block to exactly maxbits for random access.
		for w.Len()-start < uint64(maxbits) {
			w.WriteBits(0, 1)
		}
	}
}

// Decompress inverts Compress.
func Decompress(stream []byte) (*grid.Array, error) {
	if len(stream) < 7+8+4 {
		return nil, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if string(stream[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(stream[:len(stream)-4]) != binary.LittleEndian.Uint32(stream[len(stream)-4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	p := Params{DType: grid.DType(stream[4]), Mode: Mode(stream[5])}
	d := int(stream[6])
	if d < 1 || d > 3 {
		return nil, fmt.Errorf("%w: bad ndims", ErrCorrupt)
	}
	off := 7
	dims := make([]int, d)
	for i := range dims {
		v, k := binary.Uvarint(stream[off:])
		if k <= 0 || v == 0 || v > 1<<40 {
			return nil, fmt.Errorf("%w: bad dim", ErrCorrupt)
		}
		dims[i] = int(v)
		off += k
	}
	if len(stream) < off+8 {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	param := math.Float64frombits(binary.LittleEndian.Uint64(stream[off:]))
	off += 8
	switch p.Mode {
	case FixedAccuracy:
		p.Tolerance = param
	case FixedRate:
		p.Rate = param
	}
	if err := p.defaults(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	nbits, k := binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	off += k
	payload := stream[off : len(stream)-4]

	blockSize := 1
	for i := 0; i < d; i++ {
		blockSize *= blockSide
	}
	order := sequencyOrder(d)
	intprec := p.intprec()
	q := intprec - 2
	maxbits := 1 << 30
	if p.Mode == FixedRate {
		maxbits = int(p.Rate * float64(blockSize))
		if maxbits < 1+ebits+1 {
			maxbits = 1 + ebits + 1
		}
	}

	a := grid.New(dims...)
	r := bitstream.NewReaderBits(payload, nbits)
	block := make([]float64, blockSize)
	ints := make([]int64, blockSize)
	coeffs := make([]uint64, blockSize)
	minexp := p.minExp()

	var decodeErr error
	nb := blockCounts(dims)
	iterBlocks(nb, func(bc []int) {
		if decodeErr != nil {
			return
		}
		if err := decodeBlock(r, block, ints, coeffs, order, d, intprec, q, minexp, maxbits, p.Mode); err != nil {
			decodeErr = err
			return
		}
		scatter(a, bc, block)
	})
	if decodeErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, decodeErr)
	}
	return a, nil
}

func decodeBlock(r *bitstream.Reader, block []float64, ints []int64, coeffs []uint64,
	order []int, d, intprec, q, minexp, maxbits int, mode Mode) error {
	start := r.Pos()
	flag, err := r.ReadBits(1)
	if err != nil {
		return err
	}
	if flag == 0 {
		for i := range block {
			block[i] = 0
		}
		return nil
	}
	e, err := r.ReadBits(ebits)
	if err != nil {
		return err
	}
	emax := int(e) - ebias

	maxprec := intprec
	if mode == FixedAccuracy {
		maxprec = emax - minexp + 2*(d+1)
		if maxprec < 0 {
			maxprec = 0
		}
		if maxprec > intprec {
			maxprec = intprec
		}
	}
	kmin := intprec - maxprec
	for i := range coeffs {
		coeffs[i] = 0
	}
	budget := maxbits - int(r.Pos()-start)
	if _, err := decodePlanes(r, coeffs, intprec, kmin, budget); err != nil {
		return err
	}
	if mode == FixedRate {
		// Skip block padding.
		for r.Pos()-start < uint64(maxbits) {
			if _, err := r.ReadBits(1); err != nil {
				return err
			}
		}
	}
	for i, src := range order {
		ints[src] = nb2int(coeffs[i], intprec)
	}
	invXform(ints, d)
	scale := math.Ldexp(1, emax-q)
	for i := range block {
		block[i] = float64(ints[i]) * scale
	}
	return nil
}

// --- block iteration ---------------------------------------------------------

// blockCounts returns the number of blocks along each dimension.
func blockCounts(dims []int) []int {
	nb := make([]int, len(dims))
	for i, d := range dims {
		nb[i] = (d + blockSide - 1) / blockSide
	}
	return nb
}

// iterBlocks invokes fn with each block coordinate in row-major order.
func iterBlocks(nb []int, fn func(bc []int)) {
	bc := make([]int, len(nb))
	for {
		fn(bc)
		j := len(bc) - 1
		for j >= 0 {
			bc[j]++
			if bc[j] < nb[j] {
				break
			}
			bc[j] = 0
			j--
		}
		if j < 0 {
			return
		}
	}
}

// gather copies one block from a into dst, replicating edge values for
// partial blocks (zfp's padding policy).
func gather(a *grid.Array, bc []int, dst []float64) {
	d := len(bc)
	switch d {
	case 1:
		base := bc[0] * blockSide
		for i := 0; i < blockSide; i++ {
			dst[i] = a.Data[clampIdx(base+i, a.Dims[0])]
		}
	case 2:
		b0, b1 := bc[0]*blockSide, bc[1]*blockSide
		for y := 0; y < blockSide; y++ {
			yy := clampIdx(b0+y, a.Dims[0])
			row := yy * a.Dims[1]
			for x := 0; x < blockSide; x++ {
				dst[y*blockSide+x] = a.Data[row+clampIdx(b1+x, a.Dims[1])]
			}
		}
	case 3:
		b0, b1, b2 := bc[0]*blockSide, bc[1]*blockSide, bc[2]*blockSide
		for z := 0; z < blockSide; z++ {
			zz := clampIdx(b0+z, a.Dims[0])
			for y := 0; y < blockSide; y++ {
				yy := clampIdx(b1+y, a.Dims[1])
				row := (zz*a.Dims[1] + yy) * a.Dims[2]
				for x := 0; x < blockSide; x++ {
					dst[(z*blockSide+y)*blockSide+x] = a.Data[row+clampIdx(b2+x, a.Dims[2])]
				}
			}
		}
	}
}

// scatter writes one decoded block back, skipping padded positions.
func scatter(a *grid.Array, bc []int, src []float64) {
	d := len(bc)
	switch d {
	case 1:
		base := bc[0] * blockSide
		for i := 0; i < blockSide && base+i < a.Dims[0]; i++ {
			a.Data[base+i] = src[i]
		}
	case 2:
		b0, b1 := bc[0]*blockSide, bc[1]*blockSide
		for y := 0; y < blockSide && b0+y < a.Dims[0]; y++ {
			row := (b0 + y) * a.Dims[1]
			for x := 0; x < blockSide && b1+x < a.Dims[1]; x++ {
				a.Data[row+b1+x] = src[y*blockSide+x]
			}
		}
	case 3:
		b0, b1, b2 := bc[0]*blockSide, bc[1]*blockSide, bc[2]*blockSide
		for z := 0; z < blockSide && b0+z < a.Dims[0]; z++ {
			for y := 0; y < blockSide && b1+y < a.Dims[1]; y++ {
				row := ((b0+z)*a.Dims[1] + b1 + y) * a.Dims[2]
				for x := 0; x < blockSide && b2+x < a.Dims[2]; x++ {
					a.Data[row+b2+x] = src[(z*blockSide+y)*blockSide+x]
				}
			}
		}
	}
}

func clampIdx(i, n int) int {
	if i >= n {
		return n - 1
	}
	return i
}
