package zfp

// Block-level machinery: gather/scatter with edge replication, the lifted
// orthogonal decorrelating transform, total-sequency coefficient ordering,
// and the negabinary mapping. All mirror the zfp 0.5 reference algorithms.

// blockSide is the fixed block edge length.
const blockSide = 4

// fwdLift applies zfp's forward lifting step to four values at stride s.
// It is an integer approximation of an orthogonal transform; the shifts
// keep the dynamic range bounded.
func fwdLift(p []int64, off, s int) {
	x := p[off]
	y := p[off+s]
	z := p[off+2*s]
	w := p[off+3*s]

	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1

	p[off] = x
	p[off+s] = y
	p[off+2*s] = z
	p[off+3*s] = w
}

// invLift inverts fwdLift.
func invLift(p []int64, off, s int) {
	x := p[off]
	y := p[off+s]
	z := p[off+2*s]
	w := p[off+3*s]

	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w

	p[off] = x
	p[off+s] = y
	p[off+2*s] = z
	p[off+3*s] = w
}

// fwdXform applies the lifting along every axis of a d-dimensional block.
func fwdXform(block []int64, d int) {
	switch d {
	case 1:
		fwdLift(block, 0, 1)
	case 2:
		for y := 0; y < 4; y++ { // transform rows (x varies fastest)
			fwdLift(block, 4*y, 1)
		}
		for x := 0; x < 4; x++ { // transform columns
			fwdLift(block, x, 4)
		}
	case 3:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(block, 16*z+4*y, 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(block, 16*z+x, 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(block, 4*y+x, 16)
			}
		}
	}
}

// invXform inverts fwdXform (axes in reverse order).
func invXform(block []int64, d int) {
	switch d {
	case 1:
		invLift(block, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(block, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift(block, 4*y, 1)
		}
	case 3:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(block, 4*y+x, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(block, 16*z+x, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(block, 16*z+4*y, 1)
			}
		}
	}
}

// sequencyOrder returns the coefficient permutation for a d-dimensional
// block, ordered by total sequency (sum of per-axis frequencies, ties
// broken by squared sum then lexicographically) — low-frequency
// coefficients first, as in zfp's PERM tables.
func sequencyOrder(d int) []int {
	size := 1
	for i := 0; i < d; i++ {
		size *= blockSide
	}
	type entry struct {
		idx, sum, sq int
	}
	entries := make([]entry, size)
	for i := 0; i < size; i++ {
		sum, sq := 0, 0
		rem := i
		for ax := 0; ax < d; ax++ {
			f := rem % blockSide
			rem /= blockSide
			sum += f
			sq += f * f
		}
		entries[i] = entry{i, sum, sq}
	}
	// Insertion-stable sort by (sum, sq, idx).
	order := make([]int, size)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < size; i++ {
		j := i
		for j > 0 {
			a, b := entries[order[j-1]], entries[order[j]]
			if a.sum > b.sum || (a.sum == b.sum && (a.sq > b.sq || (a.sq == b.sq && a.idx > b.idx))) {
				order[j-1], order[j] = order[j], order[j-1]
				j--
			} else {
				break
			}
		}
	}
	return order
}

// negabinary masks (zfp's NBMASK).
const (
	nbMask64 = 0xaaaaaaaaaaaaaaaa
	nbMask32 = 0xaaaaaaaa
)

// int2nb converts two's complement to negabinary so that sign information
// spreads over bit planes (small magnitudes have only low bits set).
func int2nb(i int64, intprec int) uint64 {
	if intprec <= 32 {
		u := (uint32(int32(i)) + uint32(nbMask32)) ^ uint32(nbMask32)
		return uint64(u)
	}
	return (uint64(i) + nbMask64) ^ nbMask64
}

// nb2int inverts int2nb.
func nb2int(u uint64, intprec int) int64 {
	if intprec <= 32 {
		v := (uint32(u) ^ uint32(nbMask32)) - uint32(nbMask32)
		return int64(int32(v))
	}
	return int64((u ^ nbMask64) - nbMask64)
}
