package zfp

// Embedded bit-plane codec, a faithful port of zfp 0.5's encode_ints /
// decode_ints group-testing scheme: each plane first emits the bits of
// coefficients already known significant, then unary run-length codes the
// positions that become significant in this plane. When the bit budget
// runs out mid-plane both sides stop at the same bit, which is what makes
// the fixed-rate mode exact.
//
// The known-significant prefix of each plane moves as one bulk WriteBits /
// ReadBits call (with a bit reversal to preserve zfp's LSB-first order);
// only the data-dependent run-length tail works bit by bit.

import (
	"math/bits"

	"repro/internal/bitstream"
)

// encodePlanes encodes the negabinary coefficients (already in sequency
// order) plane by plane, high to low, down to (and excluding) plane kmin,
// spending at most maxbits bits. It returns the number of bits written.
func encodePlanes(w *bitstream.Writer, data []uint64, intprec, kmin, maxbits int) int {
	budget := maxbits
	size := len(data)
	n := 0 // number of coefficients known significant so far
	for k := intprec; budget > 0 && k > kmin; {
		k--
		// Step 1: extract bit plane #k into x (coefficient i -> bit i).
		var x uint64
		for i := 0; i < size; i++ {
			x += ((data[i] >> uint(k)) & 1) << uint(i)
		}
		// Step 2: emit the first n bits (known-significant coefficients),
		// LSB of x first; the reversal lets one WriteBits call carry all m.
		m := n
		if m > budget {
			m = budget
		}
		budget -= m
		if m > 0 {
			w.WriteBits(bits.Reverse64(x)>>(64-uint(m)), uint(m))
			x >>= uint(m)
		}
		// Step 3: unary run-length encode the remainder of the plane.
		// (Transliteration of zfp's nested comma-operator for loops.)
		for n < size && budget > 0 {
			budget--
			if x == 0 {
				w.WriteBits(0, 1) // group test: no significant bits remain
				break
			}
			w.WriteBits(1, 1)
			for n < size-1 && budget > 0 {
				budget--
				b := x & 1
				w.WriteBits(b, 1)
				if b != 0 {
					break // found the next significant coefficient
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return maxbits - budget
}

// decodePlanes mirrors encodePlanes, accumulating coefficient bits into
// data (which must be zeroed). It returns the number of bits consumed.
func decodePlanes(r *bitstream.Reader, data []uint64, intprec, kmin, maxbits int) (int, error) {
	budget := maxbits
	size := len(data)
	n := 0
	for k := intprec; budget > 0 && k > kmin; {
		k--
		var x uint64
		// Step 1: read the known-significant coefficients' bits in bulk.
		m := n
		if m > budget {
			m = budget
		}
		budget -= m
		if m > 0 {
			v, err := r.ReadBits(uint(m))
			if err != nil {
				return 0, err
			}
			x = bits.Reverse64(v << (64 - uint(m)))
		}
		// Step 2: unary run-length decode the remainder of the plane.
		for n < size && budget > 0 {
			budget--
			gb, err := r.ReadBits(1)
			if err != nil {
				return 0, err
			}
			if gb == 0 {
				break
			}
			for n < size-1 && budget > 0 {
				budget--
				b, err := r.ReadBits(1)
				if err != nil {
					return 0, err
				}
				if b != 0 {
					break
				}
				n++
			}
			x |= uint64(1) << uint(n)
			n++
		}
		// Step 3: deposit plane bits into the coefficients.
		for i := 0; x != 0; i, x = i+1, x>>1 {
			if x&1 != 0 {
				data[i] |= uint64(1) << uint(k)
			}
		}
	}
	return maxbits - budget, nil
}
