package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/store"
)

func streamDigest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// newSzdWithStore starts a daemon with a content-addressed store and
// returns its host:port address.
func newSzdWithStore(t *testing.T) string {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{Store: st}).Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestRouterRelaysEtagTrailer: the digest a backend settles on after
// streaming a compress response must survive the proxy hop as a
// trailer.
func TestRouterRelaysEtagTrailer(t *testing.T) {
	_, ts := newRouter(t, Config{Backends: []string{newSzdWithStore(t), newSzdWithStore(t)}})
	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	resp := post(t, ts.URL+"/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=16,8,8", raw)
	stream := readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d", resp.StatusCode)
	}
	etag := resp.Trailer.Get("Etag")
	if etag == "" {
		t.Fatal("routed compress response lost the ETag trailer")
	}
	digest := strings.Trim(etag, `"`)
	if !store.ValidDigest(digest) {
		t.Fatalf("relayed ETag %q is not a digest etag", etag)
	}
	_ = stream
}

// routedContainer compresses raw through the router and returns
// (container bytes, digest).
func routedContainer(t *testing.T, base string, raw []byte, query string) ([]byte, string) {
	t.Helper()
	resp := post(t, base+"/v1/compress?"+query, raw)
	stream := readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, stream)
	}
	digest := strings.Trim(resp.Trailer.Get("Etag"), `"`)
	if !store.ValidDigest(digest) {
		t.Fatalf("no digest trailer on routed compress (got %q)", resp.Trailer.Get("Etag"))
	}
	return stream, digest
}

// TestRouterDigestReadsAndCache: after one routed compress, a bodyless
// digest slab read must work through the router (peer-filling across
// the ring if the compress landed off-owner), the repeat must come from
// the router cache, and the hit must be counted in
// szrouter_cache_hit_bytes_total.
func TestRouterDigestReadsAndCache(t *testing.T) {
	backends := []string{newSzdWithStore(t), newSzdWithStore(t)}
	_, ts := newRouter(t, Config{Backends: backends})

	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	stream, digest := routedContainer(t, ts.URL, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,8,8&slab=4")

	// Reference decode via the body path.
	resp := post(t, ts.URL+"/v1/slab/1", stream)
	want := readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("body slab status %d: %s", resp.StatusCode, want)
	}

	url := ts.URL + "/v1/slab/1?digest=" + digest
	r1, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	got := readAllClose(t, r1)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("digest slab status %d: %s", r1.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("digest-referenced slab through router differs from body path")
	}

	r2, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	got2 := readAllClose(t, r2)
	if r2.Header.Get(api.HeaderCache) != "hit" {
		t.Fatalf("repeat digest read not served from cache (X-Sz-Cache=%q)", r2.Header.Get(api.HeaderCache))
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("cached response differs")
	}

	metrics := string(readAllClose(t, post(t, ts.URL+"/metrics", nil)))
	if !strings.Contains(metrics, fmt.Sprintf("szrouter_cache_hit_bytes_total %d", len(want))) {
		t.Errorf("cache hit bytes not counted (want %d):\n%s", len(want), metrics)
	}
}

// TestRouterCache304: a conditional repeat against a cached entry must
// answer 304 from tier 1 — no backend round trip, no body.
func TestRouterCache304(t *testing.T) {
	backends := []string{newSzdWithStore(t), newSzdWithStore(t)}
	_, ts := newRouter(t, Config{Backends: backends})

	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	_, digest := routedContainer(t, ts.URL, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,8,8&slab=4")

	url := ts.URL + "/v1/slab/0?digest=" + digest
	r1, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	readAllClose(t, r1)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first read status %d", r1.StatusCode)
	}
	etag := r1.Header.Get("Etag")
	if etag == "" {
		t.Fatal("first read carried no ETag")
	}

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAllClose(t, r2)
	if r2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional repeat status %d, want 304", r2.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	if r2.Header.Get(api.HeaderCache) != "hit" {
		t.Fatalf("304 not served from cache (X-Sz-Cache=%q)", r2.Header.Get(api.HeaderCache))
	}
}

// TestRouterPeerFill plants a container on the non-owning backend only,
// then asks the router for a digest read: the router must copy the
// container to the ring owner through /v1/container and serve from
// there.
func TestRouterPeerFill(t *testing.T) {
	backends := []string{newSzdWithStore(t), newSzdWithStore(t)}
	rt, ts := newRouter(t, Config{Backends: backends})

	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}, SlabRows: 4}
	stream := localStream(t, "blocked", raw, p)
	digest := streamDigest(stream)

	owner := rt.ring.Lookup(digest)
	other := backends[0]
	if other == owner {
		other = backends[1]
	}

	// Seed only the non-owner, directly (not through the router).
	req, _ := http.NewRequest(http.MethodPut, "http://"+other+"/v1/container/"+digest, bytes.NewReader(stream))
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNoContent {
		t.Fatalf("seed put status %d", presp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/slab/1?digest=" + digest)
	if err != nil {
		t.Fatal(err)
	}
	body := readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest read status %d: %s", resp.StatusCode, body)
	}
	if b := resp.Header.Get(api.HeaderBackend); b != owner {
		t.Errorf("served by %q, want ring owner %q after fill", b, owner)
	}

	// The owner must now hold the container on disk.
	oresp, err := http.Get("http://" + owner + "/v1/container/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	got := readAllClose(t, oresp)
	if oresp.StatusCode != http.StatusOK || !bytes.Equal(got, stream) {
		t.Fatalf("owner store not filled: status %d, %d bytes", oresp.StatusCode, len(got))
	}

	metrics := string(readAllClose(t, post(t, ts.URL+"/metrics", nil)))
	if !strings.Contains(metrics, fmt.Sprintf("szrouter_peer_fills_total{backend=%q} 1", owner)) {
		t.Errorf("peer fill not counted:\n%s", metrics)
	}
}

// TestRouterContainerProxy: GET /v1/container through the router fails
// over to whichever backend holds the bytes.
func TestRouterContainerProxy(t *testing.T) {
	backends := []string{newSzdWithStore(t), newSzdWithStore(t)}
	_, ts := newRouter(t, Config{Backends: backends})

	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	stream, digest := routedContainer(t, ts.URL, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,8,8")

	resp, err := http.Get(ts.URL + "/v1/container/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	got := readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("container get status %d", resp.StatusCode)
	}
	if !bytes.Equal(got, stream) {
		t.Fatal("routed container bytes differ from compress output")
	}
}
