package fleet

// Backend health tracking. The poller GETs each backend's /healthz on an
// interval and, while the node answers, scrapes /metrics for the two
// load signals admission control exposes: the reserved in-flight byte
// gauge and the cumulative 429 count. The router consults the resulting
// state to order candidates (dead and draining nodes are skipped, loaded
// nodes deprioritized) and feeds observed connect failures back so a
// SIGKILLed backend stops receiving traffic before the next poll tick.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// State is a backend's health as seen by the poller.
type State int

const (
	// StateUnknown is the pre-first-poll state; the router treats it as
	// routable so a cold router does not blackhole traffic.
	StateUnknown State = iota
	// StateHealthy backends answer /healthz with 200.
	StateHealthy
	// StateDraining backends answer 503: they finish in-flight work but
	// accept nothing new, so the router routes around them.
	StateDraining
	// StateDead backends are unreachable (connect error, timeout) or
	// answer with a non-health status.
	StateDead
	// StateWarming is a backend that has never answered /healthz and is
	// still inside its startup grace window: probably booting, not dead.
	// The router treats it like StateUnknown (routable, but a live
	// connect failure still demotes it), and membership keeps it out of
	// the ring until its first successful poll. Declared after StateDead
	// so the numeric values 0–3 stay the documented metric encoding.
	StateWarming
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	case StateWarming:
		return "warming"
	}
	return "unknown"
}

// Health is one backend's polled status and load signals.
type Health struct {
	State State
	// InflightBytes is the backend's reserved admission budget
	// (szd_inflight_bytes) at the last successful scrape.
	InflightBytes int64
	// Shed429 is the cumulative 429 count (szd_requests_total with
	// status="429") at the last successful scrape.
	Shed429 int64
	// ShedRecently reports whether the backend returned any 429s between
	// the two most recent scrapes — the signal that its budget is
	// saturated right now, not just that it shed load at some point.
	ShedRecently bool
	// LastChange is when State last transitioned.
	LastChange time.Time
	// LastPoll is when the backend was last probed.
	LastPoll time.Time

	// everHealthy records a first successful /healthz: the startup
	// grace applies only before it, so a backend that was up and died
	// goes straight to dead, never back to warming.
	everHealthy bool
	// added is when the poller started tracking this backend; the
	// warming grace window is measured from it.
	added time.Time
}

// DefaultWarmupGrace is how long a never-healthy backend reads as
// warming instead of dead when no explicit grace is configured.
const DefaultWarmupGrace = 15 * time.Second

// Poller tracks the health of a dynamic backend set.
type Poller struct {
	client   *http.Client
	interval time.Duration
	grace    time.Duration

	mu       sync.Mutex
	backends []string
	status   map[string]*Health

	// afterPoll, when set before Start, runs at the end of every
	// PollOnce — the router's membership reconciler hangs off it so
	// warm-up promotion happens on poll cadence without its own timer.
	afterPoll func()

	stop chan struct{}
	done chan struct{}
}

// NewPoller builds a poller over backends (each "host:port", http://
// assumed; full URLs pass through, so https:// backends work).
// interval <= 0 defaults to 2s; grace is the startup window during
// which an unreachable never-healthy backend reads as warming rather
// than dead (0 = DefaultWarmupGrace, < 0 disables warming); hc nil
// uses a client with a per-probe timeout of half the interval.
func NewPoller(backends []string, interval, grace time.Duration, hc *http.Client) *Poller {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if grace == 0 {
		grace = DefaultWarmupGrace
	}
	if hc == nil {
		hc = &http.Client{Timeout: interval / 2}
	}
	p := &Poller{
		backends: append([]string(nil), backends...),
		client:   hc,
		interval: interval,
		grace:    grace,
		status:   make(map[string]*Health, len(backends)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	now := time.Now()
	for _, b := range p.backends {
		p.status[b] = &Health{added: now}
	}
	return p
}

// Add starts tracking a backend (no-op if already tracked). The new
// backend begins its warming grace window now.
func (p *Poller) Add(backend string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.status[backend] != nil {
		return
	}
	p.backends = append(p.backends, backend)
	p.status[backend] = &Health{added: time.Now()}
}

// Remove stops tracking a backend and drops its status.
func (p *Poller) Remove(backend string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.status[backend] == nil {
		return
	}
	delete(p.status, backend)
	for i, b := range p.backends {
		if b == backend {
			p.backends = append(p.backends[:i], p.backends[i+1:]...)
			break
		}
	}
}

// Backends returns the tracked backend set (a copy).
func (p *Poller) Backends() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.backends...)
}

// Start runs one synchronous poll (so callers begin with real states,
// not Unknown) and then polls on the interval until Stop.
func (p *Poller) Start() {
	p.PollOnce(context.Background())
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.PollOnce(context.Background())
			}
		}
	}()
}

// Stop halts the poll loop and waits for it to exit.
func (p *Poller) Stop() {
	close(p.stop)
	<-p.done
}

// PollOnce probes every backend concurrently and updates states, then
// runs the afterPoll hook.
func (p *Poller) PollOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range p.Backends() {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			p.probe(ctx, b)
		}(b)
	}
	wg.Wait()
	if p.afterPoll != nil {
		p.afterPoll()
	}
}

// probe classifies one backend: connect failure or an unexpected status
// is dead, 503 is draining, 200 is healthy — and a healthy node also
// gets its /metrics load signals scraped.
func (p *Poller) probe(ctx context.Context, backend string) {
	state := StateDead
	var inflight, shed int64
	var scraped bool
	resp, err := p.get(ctx, backend, "/healthz")
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			state = StateHealthy
		case http.StatusServiceUnavailable:
			state = StateDraining
		}
	}
	if state == StateHealthy {
		if mresp, err := p.get(ctx, backend, "/metrics"); err == nil {
			inflight, shed, scraped = parseLoadMetrics(mresp.Body)
			mresp.Body.Close()
		}
	}
	now := time.Now()
	p.mu.Lock()
	h := p.status[backend]
	if h == nil {
		p.mu.Unlock()
		return
	}
	if state == StateHealthy {
		h.everHealthy = true
	}
	// Startup grace: an unreachable backend that has never been healthy
	// is probably still booting. Keep it warming (routable, out of the
	// ring) until the window expires — unless a live connect failure
	// already marked it dead, which is decisive evidence over a guess.
	if state == StateDead && !h.everHealthy && h.State != StateDead &&
		p.grace > 0 && now.Sub(h.added) < p.grace {
		state = StateWarming
	}
	if h.State != state {
		h.State = state
		h.LastChange = now
	}
	if scraped {
		h.ShedRecently = shed > h.Shed429
		h.InflightBytes = inflight
		h.Shed429 = shed
	}
	h.LastPoll = now
	p.mu.Unlock()
}

func (p *Poller) get(ctx context.Context, backend, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backendURL(backend)+path, nil)
	if err != nil {
		return nil, err
	}
	return p.client.Do(req)
}

// backendURL normalizes a backend address to a base URL.
func backendURL(backend string) string {
	if strings.Contains(backend, "://") {
		return strings.TrimRight(backend, "/")
	}
	return "http://" + backend
}

// Health returns the backend's current status (zero value for unknown
// backends).
func (p *Poller) Health(backend string) Health {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h := p.status[backend]; h != nil {
		return *h
	}
	return Health{}
}

// Routable reports whether the router should offer the backend traffic:
// healthy, not yet polled, or still warming up.
func (p *Poller) Routable(backend string) bool {
	s := p.Health(backend).State
	return s == StateHealthy || s == StateUnknown || s == StateWarming
}

// MarkDead records an observed failure (the router could not connect)
// without waiting for the next poll tick, so a killed backend stops
// being offered traffic immediately.
func (p *Poller) MarkDead(backend string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.status[backend]
	if h == nil || h.State == StateDead {
		return
	}
	h.State = StateDead
	h.LastChange = time.Now()
}

// parseLoadMetrics extracts szd_inflight_bytes and the summed 429 count
// from a Prometheus text exposition. ok is true only when at least the
// inflight gauge was recognized — szd always exposes it, so anything
// else (an HTML error page behind a middlebox, an empty body) is not a
// scrape, and the caller must keep its previous signals rather than
// zero them.
func parseLoadMetrics(r io.Reader) (inflight, shed429 int64, ok bool) {
	sc := bufio.NewScanner(io.LimitReader(r, 1<<20))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "szd_inflight_bytes "):
			if v, err := strconv.ParseInt(strings.TrimSpace(line[len("szd_inflight_bytes "):]), 10, 64); err == nil {
				inflight = v
				ok = true
			}
		case strings.HasPrefix(line, "szd_requests_total{") && strings.Contains(line, `status="429"`):
			if i := strings.LastIndexByte(line, ' '); i >= 0 {
				if v, err := strconv.ParseInt(line[i+1:], 10, 64); err == nil {
					shed429 += v
				}
			}
		}
	}
	return inflight, shed429, ok
}

// String renders a status line for logs.
func (h Health) String() string {
	return fmt.Sprintf("%s inflight=%d shed429=%d", h.State, h.InflightBytes, h.Shed429)
}
