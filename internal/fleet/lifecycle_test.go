package fleet

// Membership lifecycle, replication, and chaos tests: the fault-model
// contract. A fleet with R=2 must survive any single backend dying —
// abruptly, mid-traffic — with zero client-visible failures and zero
// lost digests, and live membership changes must move only the new
// node's fair share of keys.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/store"
)

// newKillableSzd is newSzdWithStore exposing the server handle so tests
// can SIGKILL-equivalently drop the backend mid-traffic.
func newKillableSzd(t *testing.T) (string, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{Store: st}).Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://"), ts
}

func putContainer(t *testing.T, backend, digest string, body []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut,
		"http://"+backend+api.PathContainerPrefix+digest, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAllClose(t, resp)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("direct PUT to %s: status %d", backend, resp.StatusCode)
	}
}

// hasContainer HEADs a backend's store directly (no router, no chaos).
func hasContainer(backend, digest string) bool {
	req, err := http.NewRequest(http.MethodHead,
		"http://"+backend+api.PathContainerPrefix+digest, nil)
	if err != nil {
		return false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusNoContent
}

// metricSum scrapes base/metrics and sums every sample of family.
func metricSum(t *testing.T, base, family string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAllClose(t, resp))
	var sum float64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, family+"{") && !strings.HasPrefix(line, family+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}

func ringHas(rt *Router, node string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.nodes[node]
}

// TestRouterSetBackendsLifecycle walks the two membership lifecycles:
// add -> warm-up -> in-ring (a node joins the ring only at its first
// healthy poll) and drain-then-remove (a removed node leaves the ring
// at once but stays polled as a repair source for the drain grace).
func TestRouterSetBackendsLifecycle(t *testing.T) {
	a, b := newSzd(t), newSzd(t)
	rt, _ := newRouter(t, Config{Backends: []string{a, b}, DrainGrace: 30 * time.Millisecond})
	ctx := context.Background()

	// Add a healthy node: pending until polled, in-ring after.
	c := newSzd(t)
	if err := rt.SetBackends([]string{a, b, c}); err != nil {
		t.Fatal(err)
	}
	if ringHas(rt, c) {
		t.Fatal("unpolled backend entered the ring immediately")
	}
	if got := rt.Backends(); len(got) != 3 {
		t.Fatalf("serving set %v, want 3 entries", got)
	}
	rt.poller.PollOnce(ctx)
	if !ringHas(rt, c) {
		t.Fatal("healthy backend not promoted into the ring")
	}

	// Add a node that never comes up: it warms, serves as a last-resort
	// candidate, but must not own keys.
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	dead := ln.Addr().String()
	ln.Close()
	if err := rt.SetBackends([]string{a, b, c, dead}); err != nil {
		t.Fatal(err)
	}
	rt.poller.PollOnce(ctx)
	if st := rt.poller.Health(dead).State; st != StateWarming {
		t.Fatalf("unreachable new backend state %v, want warming", st)
	}
	if ringHas(rt, dead) {
		t.Fatal("warming backend entered the ring")
	}

	// Remove b: out of the ring now, polled until the drain grace ends.
	if err := rt.SetBackends([]string{a, c, dead}); err != nil {
		t.Fatal(err)
	}
	if ringHas(rt, b) {
		t.Fatal("removed backend still in the ring")
	}
	tracked := func(n string) bool {
		for _, x := range rt.poller.Backends() {
			if x == n {
				return true
			}
		}
		return false
	}
	if !tracked(b) {
		t.Fatal("draining backend dropped from the poller before its grace")
	}
	time.Sleep(40 * time.Millisecond)
	rt.poller.PollOnce(ctx)
	if tracked(b) {
		t.Fatal("leaving backend not forgotten after the drain grace")
	}

	// Validation mirrors New.
	if err := rt.SetBackends(nil); err == nil {
		t.Fatal("empty membership accepted")
	}
	if err := rt.SetBackends([]string{a, a}); err == nil {
		t.Fatal("duplicate membership accepted")
	}
}

// TestRouterMembershipChurnRace hammers the router with traffic while
// membership flaps, under -race in CI: the ring, the serving set, and
// the poller set all mutate behind the router's lock while the request
// path reads them.
func TestRouterMembershipChurnRace(t *testing.T) {
	a, b, c := newSzd(t), newSzd(t), newSzd(t)
	extra := newSzd(t)
	rt, ts := newRouter(t, Config{
		Backends:     []string{a, b, c},
		PollInterval: 10 * time.Millisecond,
		DrainGrace:   20 * time.Millisecond,
	})
	rt.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + api.PathCodecs)
				if err != nil {
					t.Errorf("codecs during churn: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("codecs during churn: status %d", resp.StatusCode)
				}
			}
		}()
	}
	for i := 0; i < 15; i++ {
		if err := rt.SetBackends([]string{a, b, c, extra}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		if err := rt.SetBackends([]string{a, b, c}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	rt.Stop()
}

// TestRouterPeerFillUnderChaosReset is the fault-injection contract for
// the repair path: an owner 404 plus a connection reset from the first
// peer must degrade to the next peer, never to a client-visible error.
func TestRouterPeerFillUnderChaosReset(t *testing.T) {
	var resetHost atomic.Value
	resetHost.Store("")
	ch := chaos.NewRoundTripper(nil, chaos.Config{
		Seed:  42,
		Reset: 1,
		Match: func(r *http.Request) bool {
			h, _ := resetHost.Load().(string)
			return h != "" && r.URL.Host == h && strings.HasPrefix(r.URL.Path, api.PathContainerPrefix)
		},
	})
	backends := []string{newSzdWithStore(t), newSzdWithStore(t), newSzdWithStore(t)}
	rt, ts := newRouter(t, Config{Backends: backends, HTTPClient: &http.Client{Transport: ch}})

	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}}
	stream := localStream(t, "blocked", raw, p)
	digest := streamDigest(stream)

	// The container lives only on the two non-owners; every container
	// request to the first of them resets.
	seq := rt.ringSequence(digest, 3)
	putContainer(t, seq[1], digest, stream)
	putContainer(t, seq[2], digest, stream)
	resetHost.Store(seq[1])

	resp, err := http.Get(ts.URL + api.PathContainerPrefix + digest)
	if err != nil {
		t.Fatal(err)
	}
	got := readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest read under peer reset: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, stream) {
		t.Fatal("digest read under peer reset returned wrong bytes")
	}
	if ch.Injected().Resets == 0 {
		t.Fatal("chaos reset never fired; the test exercised nothing")
	}
	// The fill from the surviving peer repaired the owner.
	if !hasContainer(seq[0], digest) {
		t.Fatal("owner not repaired from the surviving peer")
	}
	if n := metricSum(t, ts.URL, "szrouter_peer_fills_total"); n == 0 {
		t.Fatal("peer fill not counted")
	}
}

// TestRouterReplicationFanout: with R=2 a container compressed through
// the router must land on the digest's ring owner AND its successor.
func TestRouterReplicationFanout(t *testing.T) {
	backends := []string{newSzdWithStore(t), newSzdWithStore(t), newSzdWithStore(t)}
	rt, ts := newRouter(t, Config{Backends: backends, Replication: 2})

	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	_, digest := routedContainer(t, ts.URL, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,8,8")

	targets := rt.ringSequence(digest, 2)
	if len(targets) != 2 {
		t.Fatalf("ring sequence %v, want 2 targets", targets)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if hasContainer(targets[0], digest) && hasContainer(targets[1], digest) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas not placed on %v within deadline", targets)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if n := metricSum(t, ts.URL, "szrouter_replication_writes_total"); n == 0 {
		t.Fatal("replication writes not counted")
	}
}

// TestRouterSweepRepairs: the anti-entropy sweep must find a container
// that lives only off-ring (here: on the one node outside the digest's
// R-set) and copy it to every ring target.
func TestRouterSweepRepairs(t *testing.T) {
	backends := []string{newSzdWithStore(t), newSzdWithStore(t), newSzdWithStore(t)}
	rt, ts := newRouter(t, Config{Backends: backends, Replication: 2, AntiEntropyInterval: -1})

	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}}
	stream := localStream(t, "blocked", raw, p)
	digest := streamDigest(stream)

	targets := rt.ringSequence(digest, 2)
	inTargets := map[string]bool{targets[0]: true, targets[1]: true}
	outsider := ""
	for _, b := range backends {
		if !inTargets[b] {
			outsider = b
		}
	}
	putContainer(t, outsider, digest, stream)

	rt.SweepOnce(context.Background())
	for _, tgt := range targets {
		if !hasContainer(tgt, digest) {
			t.Fatalf("sweep left %s without the container", tgt)
		}
	}
	if n := metricSum(t, ts.URL, "szrouter_replication_repairs_total"); n < 2 {
		t.Fatalf("repairs counted = %v, want >= 2", n)
	}
}

// makeRawVaried is makeRaw with a frequency knob so tests can mint
// distinct containers deterministically.
func makeRawVaried(t *testing.T, k int) []byte {
	t.Helper()
	a := grid.New(16, 8, 8)
	for i := range a.Data {
		a.Data[i] = float64(float32(math.Sin(float64(i) * 0.02 * float64(k+1))))
	}
	var raw bytes.Buffer
	if err := a.WriteRaw(&raw, grid.Float32); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes()
}

// TestFleetChaosKillAndLiveAdd is the end-to-end fault drill from the
// issue: a 3-node fleet at R=2 takes uploads, then — mid-traffic —
// suffers injected connection resets on one node, a live add of a
// fourth, and the abrupt death and removal of another. The contract:
// zero client-visible failures, zero lost digests, and the live add
// moves only the new node's fair share of keys.
func TestFleetChaosKillAndLiveAdd(t *testing.T) {
	addrA, _ := newKillableSzd(t)
	addrB, _ := newKillableSzd(t)
	addrC, srvC := newKillableSzd(t)

	var armed atomic.Value
	armed.Store("")
	ch := chaos.NewRoundTripper(nil, chaos.Config{
		Seed:  7,
		Reset: 0.5,
		Match: func(r *http.Request) bool {
			h, _ := armed.Load().(string)
			// Health probes stay clean so the poller's picture tracks
			// real liveness, not injected noise.
			return h != "" && r.URL.Host == h && strings.HasPrefix(r.URL.Path, "/v1/")
		},
	})
	rt, ts := newRouter(t, Config{
		Backends:     []string{addrA, addrB, addrC},
		Replication:  2,
		PollInterval: 25 * time.Millisecond,
		DrainGrace:   150 * time.Millisecond,
		HTTPClient:   &http.Client{Transport: ch},
	})
	rt.Start()

	// Upload containers until every backend owns at least one digest —
	// the kill below must hit an owner to prove anything.
	digests := map[string][]byte{}
	owners := map[string]bool{}
	q := "codec=blocked&abs=1e-3&dtype=f32&dims=16,8,8"
	for k := 0; len(digests) < 4 || !(owners[addrA] && owners[addrB] && owners[addrC]); k++ {
		if k > 60 {
			t.Fatalf("owner coverage not reached after %d uploads (owners %v)", k, owners)
		}
		stream, digest := routedContainer(t, ts.URL, makeRawVaried(t, k), q)
		digests[digest] = stream
		owners[rt.ringOwner(digest)] = true
	}

	// Every digest fully replicated before the faults start.
	waitReplicas := func(deadline time.Duration) {
		t.Helper()
		end := time.Now().Add(deadline)
		for {
			missing := 0
			for d := range digests {
				for _, tgt := range rt.ringSequence(d, 2) {
					if !hasContainer(tgt, d) {
						missing++
					}
				}
			}
			if missing == 0 {
				return
			}
			if time.Now().After(end) {
				t.Fatalf("%d replicas still missing", missing)
			}
			rt.SweepOnce(context.Background())
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitReplicas(10 * time.Second)

	// Background traffic for the rest of the test: every read must
	// return 200 with byte-exact content, whatever the fleet is doing.
	list := make([]string, 0, len(digests))
	for d := range digests {
		list = append(list, d)
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	var failures, reads atomic.Int64
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d := list[i%len(list)]
			resp, err := http.Get(ts.URL + api.PathContainerPrefix + d)
			if err != nil {
				failures.Add(1)
				continue
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || rerr != nil || !bytes.Equal(body, digests[d]) {
				failures.Add(1)
			}
			reads.Add(1)
		}
	}()

	// Phase 1: connection resets against one live node. Failover and
	// peer data mean no read may fail.
	armed.Store(addrB)
	for i := 0; i < 40; i++ {
		d := list[i%len(list)]
		resp, err := http.Get(ts.URL + api.PathContainerPrefix + d)
		if err != nil {
			t.Fatalf("read %d under chaos: %v", i, err)
		}
		body := readAllClose(t, resp)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, digests[d]) {
			t.Fatalf("read %d under chaos: status %d", i, resp.StatusCode)
		}
	}
	armed.Store("")
	if ch.Injected().Resets == 0 {
		t.Fatal("chaos resets never fired during the armed window")
	}

	// Phase 2: live add. Only the new node's fair share of keys may
	// move, and every moved key must move TO the new node.
	const sampleN = 1200
	before := make([]string, sampleN)
	for i := range before {
		before[i] = rt.ringOwner(fmt.Sprintf("remap-sample-%d", i))
	}
	addrD, _ := newKillableSzd(t)
	if err := rt.SetBackends([]string{addrA, addrB, addrC, addrD}); err != nil {
		t.Fatal(err)
	}
	end := time.Now().Add(5 * time.Second)
	for !ringHas(rt, addrD) {
		if time.Now().After(end) {
			t.Fatal("added backend never promoted into the ring")
		}
		time.Sleep(20 * time.Millisecond)
	}
	moved := 0
	for i := range before {
		after := rt.ringOwner(fmt.Sprintf("remap-sample-%d", i))
		if after != before[i] {
			moved++
			if after != addrD {
				t.Fatalf("key %d moved to %s, not the new node — consistent hashing broken", i, after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new node")
	}
	if limit := sampleN * 3 / (2 * 4); moved > limit { // 1.5x fair share of N=4
		t.Fatalf("live add remapped %d/%d keys, want <= %d (~1.5/N)", moved, sampleN, limit)
	}

	// Phase 3: SIGKILL-style death of an owner. Reads of its digests
	// must be served by replicas (counted as replication failovers).
	srvC.Close()
	end = time.Now().Add(5 * time.Second)
	for metricSum(t, ts.URL, "szrouter_replication_failovers_total") == 0 {
		if time.Now().After(end) {
			t.Fatal("no replica served a dead owner's digest")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Phase 4: remove the dead node; anti-entropy restores R=2 on the
	// new ring from the surviving copies.
	if err := rt.SetBackends([]string{addrA, addrB, addrD}); err != nil {
		t.Fatal(err)
	}
	waitReplicas(10 * time.Second)
	if n := metricSum(t, ts.URL, "szrouter_replication_repairs_total"); n == 0 {
		t.Fatal("anti-entropy repaired nothing after the kill")
	}

	close(stop)
	readerWG.Wait()
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d client-visible failures during chaos (of %d reads)", f, reads.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("background reader made no requests")
	}
	// Zero lost digests: every container still byte-exact.
	for d, want := range digests {
		resp, err := http.Get(ts.URL + api.PathContainerPrefix + d)
		if err != nil {
			t.Fatal(err)
		}
		got := readAllClose(t, resp)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("digest %s lost after churn (status %d)", d, resp.StatusCode)
		}
	}
	rt.Stop()
}
