package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("stream-digest-%d", i)
	}
	return keys
}

func TestRingDistribution(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(0, nodes...)
	counts := map[string]int{}
	keys := ringKeys(20000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	for _, n := range nodes {
		frac := float64(counts[n]) / float64(len(keys))
		// Perfect balance is 0.25; 128 vnodes should hold every node
		// within a factor of ~1.5 of fair share.
		if frac < 0.15 || frac > 0.40 {
			t.Errorf("node %s owns %.1f%% of keys, want ~25%%", n, 100*frac)
		}
	}
}

// TestRingStability is the consistent-hashing contract: removing one of
// N nodes relocates only that node's keys (~1/N of the space), and
// adding it back restores the exact original assignment.
func TestRingStability(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	r := NewRing(0, nodes...)
	keys := ringKeys(10000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}

	r.Remove("c:1")
	moved := 0
	for _, k := range keys {
		owner := r.Lookup(k)
		if owner == "c:1" {
			t.Fatalf("key %s still maps to the removed node", k)
		}
		if before[k] == "c:1" {
			moved++ // had to move
			continue
		}
		if owner != before[k] {
			t.Fatalf("key %s moved %s -> %s though its node stayed", k, before[k], owner)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.35 {
		t.Errorf("removal moved %.1f%% of keys, want ~20%% (1/N)", 100*frac)
	}

	r.Add("c:1")
	for _, k := range keys {
		if got := r.Lookup(k); got != before[k] {
			t.Fatalf("after re-adding, key %s maps to %s, want %s", k, got, before[k])
		}
	}
}

func TestRingSequence(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1"}
	r := NewRing(0, nodes...)
	seq := r.Sequence("some-key", 10)
	if len(seq) != len(nodes) {
		t.Fatalf("sequence has %d nodes, want %d", len(seq), len(nodes))
	}
	seen := map[string]bool{}
	for _, n := range seq {
		if seen[n] {
			t.Fatalf("sequence repeats node %s", n)
		}
		seen[n] = true
	}
	if seq[0] != r.Lookup("some-key") {
		t.Errorf("sequence head %s differs from Lookup %s", seq[0], r.Lookup("some-key"))
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("k"); got != "" {
		t.Errorf("empty ring lookup = %q, want empty", got)
	}
	if seq := r.Sequence("k", 3); len(seq) != 0 {
		t.Errorf("empty ring sequence = %v, want none", seq)
	}
}
