package fleet

// Router-side tenant QoS tests: hostile credentials rejected at the
// edge, X-Sz-Tenant spoofing replaced with the key-derived identity,
// and fleet-wide /v1/limits aggregation.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
)

// tenantBackend is a minimal szd stand-in: healthy to the poller, records
// every proxied request (headers cloned), and optionally serves a
// canned /v1/limits document.
type tenantBackend struct {
	ts     *httptest.Server
	limits *api.Limits

	mu   sync.Mutex
	hits []*http.Request
}

func newTenantBackend(t *testing.T, limits *api.Limits) *tenantBackend {
	t.Helper()
	fb := &tenantBackend{limits: limits}
	fb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case api.PathHealthz:
			io.WriteString(w, "ok\n")
		case api.PathMetrics:
			io.WriteString(w, "szd_inflight_bytes 0\n")
		case api.PathLimits:
			if fb.limits == nil {
				http.Error(w, "limits unavailable", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(fb.limits)
		default:
			fb.mu.Lock()
			fb.hits = append(fb.hits, r.Clone(r.Context()))
			fb.mu.Unlock()
			io.WriteString(w, "proxied-payload")
		}
	}))
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *tenantBackend) addr() string { return strings.TrimPrefix(fb.ts.URL, "http://") }

// proxied returns the recorded non-poll requests.
func (fb *tenantBackend) proxied() []*http.Request {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return append([]*http.Request(nil), fb.hits...)
}

// TestRouterHostileTenantKey: malformed credentials are answered at the
// router with the shared 400 bad_tenant envelope, the backend never
// sees the request, and the hostile traffic lands on the fixed
// tenant="invalid" metric label rather than minting new series.
func TestRouterHostileTenantKey(t *testing.T) {
	fb := newTenantBackend(t, nil)
	rt, ts := newRouter(t, Config{Backends: []string{fb.addr()}})

	for _, tc := range []struct {
		name, key, priority string
	}{
		{"oversized key", strings.Repeat("k", api.MaxAPIKeyLen+1), ""},
		{"key with space", "acme key", ""},
		{"empty tenant prefix", ".secret", ""},
		{"bad priority", "acme.k1", "realtime"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodPost,
				ts.URL+api.PathCompress+"?codec=gzip", strings.NewReader("data"))
			req.Header.Set(api.HeaderAPIKey, tc.key)
			if tc.priority != "" {
				req.Header.Set(api.HeaderPriority, tc.priority)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var e api.Error
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("not an envelope: %v", err)
			}
			if e.Code != api.CodeBadTenant {
				t.Fatalf("code = %q, want %q", e.Code, api.CodeBadTenant)
			}
			if e.RequestID == "" {
				t.Error("envelope missing request_id")
			}
		})
	}
	if n := len(fb.proxied()); n != 0 {
		t.Fatalf("backend saw %d proxied requests, want 0 — hostile keys must die at the edge", n)
	}
	if m := rt.met.expose(); !strings.Contains(m,
		`szrouter_tenant_requests_total{tenant="invalid",status="400"} 4`) {
		t.Error("hostile traffic not accounted under the fixed invalid tenant label")
	}
}

// TestRouterTenantSpoofReplaced: a forged inbound X-Sz-Tenant is
// stripped and the router re-attaches the key-derived tenant toward the
// backend; without any key the default tenant rides instead.
func TestRouterTenantSpoofReplaced(t *testing.T) {
	fb := newTenantBackend(t, nil)
	rt, ts := newRouter(t, Config{Backends: []string{fb.addr()}})

	req, _ := http.NewRequest(http.MethodPost,
		ts.URL+api.PathCompress+"?codec=gzip", strings.NewReader("data"))
	req.Header.Set(api.HeaderAPIKey, "acme.key-1")
	req.Header.Set(api.HeaderTenant, "victim")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}

	resp = post(t, ts.URL+api.PathCompress+"?codec=gzip", []byte("anonymous"))
	readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous status = %d, want 200", resp.StatusCode)
	}

	hits := fb.proxied()
	if len(hits) != 2 {
		t.Fatalf("backend saw %d requests, want 2", len(hits))
	}
	if got := hits[0].Header.Get(api.HeaderTenant); got != "acme" {
		t.Errorf("backend saw tenant %q, want key-derived \"acme\" (spoof must be replaced)", got)
	}
	if got := hits[0].Header.Get(api.HeaderAPIKey); got != "acme.key-1" {
		t.Errorf("API key not forwarded: %q", got)
	}
	if got := hits[1].Header.Get(api.HeaderTenant); got != api.DefaultTenant {
		t.Errorf("anonymous request carried tenant %q, want %q", got, api.DefaultTenant)
	}

	m := rt.met.expose()
	for _, want := range []string{
		`szrouter_tenant_requests_total{tenant="acme",status="200"} 1`,
		`szrouter_tenant_requests_total{tenant="default",status="200"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("router metrics missing %q", want)
		}
	}
}

// TestFleetLimitsAggregation: GET /v1/limits on the router sums the
// budget across every backend that answers and keys the per-backend
// documents by address; nodes that fail are simply absent.
func TestFleetLimitsAggregation(t *testing.T) {
	fb1 := newTenantBackend(t, &api.Limits{BudgetBytes: 100, Workers: 4})
	fb2 := newTenantBackend(t, &api.Limits{BudgetBytes: 250, Workers: 8})
	broken := newTenantBackend(t, nil) // 500s on /v1/limits
	_, ts := newRouter(t, Config{Backends: []string{fb1.addr(), fb2.addr(), broken.addr()}})

	resp, err := http.Get(ts.URL + api.PathLimits)
	if err != nil {
		t.Fatal(err)
	}
	var fl api.FleetLimits
	if err := json.NewDecoder(resp.Body).Decode(&fl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fl.BudgetBytes != 350 {
		t.Errorf("fleet budget = %d, want 350", fl.BudgetBytes)
	}
	if len(fl.Backends) != 2 {
		t.Errorf("backends answering = %d, want 2 (broken node absent, not fatal)", len(fl.Backends))
	}
	if got := fl.Backends[fb2.addr()].Workers; got != 8 {
		t.Errorf("backend %s workers = %d, want 8", fb2.addr(), got)
	}

	// Non-GET is rejected with the envelope.
	presp, err := http.Post(ts.URL+api.PathLimits, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/limits = %d, want 405", presp.StatusCode)
	}
	presp.Body.Close()
}

// TestFleetLimitsNoBackend: when no backend answers, the router reports
// 503 no_backend rather than an empty success.
func TestFleetLimitsNoBackend(t *testing.T) {
	broken := newTenantBackend(t, nil)
	_, ts := newRouter(t, Config{Backends: []string{broken.addr()}})

	resp, err := http.Get(ts.URL + api.PathLimits)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != api.CodeNoBackend {
		t.Fatalf("code = %q, want %q", e.Code, api.CodeNoBackend)
	}
}

// TestFleetLimitsEndToEnd runs the aggregation against two real szd
// daemons: every field a real backend publishes must survive the hop.
func TestFleetLimitsEndToEnd(t *testing.T) {
	backends := []string{newSzd(t), newSzd(t)}
	_, ts := newRouter(t, Config{Backends: backends})

	resp, err := http.Get(ts.URL + api.PathLimits)
	if err != nil {
		t.Fatal(err)
	}
	var fl api.FleetLimits
	if err := json.NewDecoder(resp.Body).Decode(&fl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fl.Backends) != 2 {
		t.Fatalf("backends = %d, want 2", len(fl.Backends))
	}
	for _, b := range backends {
		lim, ok := fl.Backends[b]
		if !ok {
			t.Fatalf("backend %s missing from fleet limits", b)
		}
		if lim.BudgetBytes <= 0 || lim.Workers <= 0 || len(lim.Priorities) != 2 {
			t.Errorf("backend %s limits = %+v, want live budget/workers/priorities", b, lim)
		}
	}
	if fl.BudgetBytes != fl.Backends[backends[0]].BudgetBytes+fl.Backends[backends[1]].BudgetBytes {
		t.Error("fleet budget is not the sum of backend budgets")
	}
}
