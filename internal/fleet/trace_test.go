package fleet

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/grid"
	"repro/internal/obs"
)

// fetchTraces reads a tier's /debug/traces ring.
func fetchTraces(t *testing.T, base string) []obs.TraceRecord {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(readAllClose(t, resp), &out); err != nil {
		t.Fatal(err)
	}
	return out.Traces
}

// TestTracePropagatesAcrossTiers: one routed compress is one trace. The
// router opens it, the backend continues it via traceparent, the client
// sees the router's request ID and a Server-Timing breakdown spanning
// both tiers (backend stages under "be-"), and both rings record the
// same trace ID.
func TestTracePropagatesAcrossTiers(t *testing.T) {
	backends := []string{newSzd(t), newSzd(t)}
	_, ts := newRouter(t, Config{Backends: backends})

	raw := makeRaw(t, grid.Float32, 16, 20, 12)
	resp := post(t, ts.URL+"/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	reqID := resp.Header.Get(api.HeaderRequestID)
	if reqID == "" {
		t.Fatal("router did not echo X-Sz-Request-Id")
	}
	backend := resp.Header.Get(api.HeaderBackend)
	readAllClose(t, resp) // drain: the Server-Timing trailer settles after the body
	st := resp.Trailer.Get("Server-Timing")
	if st == "" {
		st = resp.Header.Get("Server-Timing")
	}
	for _, want := range []string{"relay;dur=", "be-encode;dur=", "be-total;dur=", "total;dur="} {
		if !strings.Contains(st, want) {
			t.Errorf("merged Server-Timing missing %q: %q", want, st)
		}
	}

	var routerRec *obs.TraceRecord
	for _, rec := range fetchTraces(t, ts.URL) {
		if rec.RequestID == reqID {
			routerRec = &rec
			break
		}
	}
	if routerRec == nil {
		t.Fatalf("request %s not in the router ring", reqID)
	}
	names := map[string]bool{}
	for _, sp := range routerRec.Spans {
		names[sp.Name] = true
	}
	if !names["ring"] || !names["upstream"] || !names["relay"] {
		t.Errorf("router spans missing ring/upstream/relay: %+v", routerRec.Spans)
	}
	if len(routerRec.Remote) == 0 {
		t.Error("router trace carries no merged backend (be-) timings")
	}

	var backendRec *obs.TraceRecord
	for _, rec := range fetchTraces(t, "http://"+backend) {
		if rec.TraceID == routerRec.TraceID {
			backendRec = &rec
			break
		}
	}
	if backendRec == nil {
		t.Fatalf("trace %s not in backend %s ring", routerRec.TraceID, backend)
	}
	if backendRec.RequestID != reqID {
		t.Errorf("backend request ID %s != router %s", backendRec.RequestID, reqID)
	}
	if backendRec.ParentID != routerRec.SpanID {
		t.Errorf("backend parent %s != router span %s", backendRec.ParentID, routerRec.SpanID)
	}
	names = map[string]bool{}
	for _, sp := range backendRec.Spans {
		names[sp.Name] = true
	}
	if !names["admission"] || !names["encode"] {
		t.Errorf("backend spans missing admission/encode: %+v", backendRec.Spans)
	}
}

// TestRouterMetricsScrapeValid: the router's /metrics must parse and
// validate as a whole (histogram invariants included), keep the
// established family names, and show trace-fed stage histograms.
func TestRouterMetricsScrapeValid(t *testing.T) {
	backends := []string{newSzd(t)}
	_, ts := newRouter(t, Config{Backends: backends})

	raw := makeRaw(t, grid.Float32, 16, 20, 12)
	readAllClose(t, post(t, ts.URL+"/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12", raw))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAllClose(t, resp))
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, body)
	}
	exp, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("szrouter_forwards_total",
		map[string]string{"backend": backends[0], "endpoint": "compress"}); !ok || v != 1 {
		t.Errorf("szrouter_forwards_total = %v, %v; want 1", v, ok)
	}
	if v, ok := exp.Value("szrouter_requests_total",
		map[string]string{"endpoint": "compress", "status": "200"}); !ok || v != 1 {
		t.Errorf("szrouter_requests_total = %v, %v; want 1", v, ok)
	}
	if v, ok := exp.Value("szrouter_stage_seconds_count",
		map[string]string{"endpoint": "compress", "stage": "relay"}); !ok || v < 1 {
		t.Errorf("szrouter_stage_seconds{stage=relay} not populated (%v, %v)", v, ok)
	}
	for _, fam := range []string{
		`szrouter_forwards_total{backend=`,
		"# TYPE szrouter_backend_state gauge",
		"# TYPE szrouter_cache_hits_total counter",
		"# TYPE szrouter_goroutines gauge",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("scrape missing %q", fam)
		}
	}
}
