package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a controllable szd stand-in: its /healthz mode can be
// flipped, its /metrics report arbitrary load, and it can be killed and
// resurrected on the same address to exercise the dead -> recovered
// transition.
type fakeBackend struct {
	t        *testing.T
	addr     string
	srv      *http.Server
	draining atomic.Bool
	inflight atomic.Int64
	shed     atomic.Int64
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{t: t}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb.addr = ln.Addr().String()
	fb.serve(ln)
	t.Cleanup(func() { fb.stop() })
	return fb
}

func (fb *fakeBackend) serve(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if fb.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# TYPE szd_requests_total counter\n")
		fmt.Fprintf(w, "szd_requests_total{endpoint=\"compress\",codec=\"blocked\",status=\"429\"} %d\n", fb.shed.Load())
		fmt.Fprintf(w, "szd_requests_total{endpoint=\"decompress\",codec=\"\",status=\"200\"} 7\n")
		fmt.Fprintf(w, "# TYPE szd_inflight_bytes gauge\n")
		fmt.Fprintf(w, "szd_inflight_bytes %d\n", fb.inflight.Load())
	})
	fb.srv = &http.Server{Handler: mux}
	go fb.srv.Serve(ln)
}

// stop kills the backend: connections refuse from here on.
func (fb *fakeBackend) stop() { fb.srv.Close() }

// restart resurrects the backend on its original address.
func (fb *fakeBackend) restart() {
	fb.t.Helper()
	ln, err := net.Listen("tcp", fb.addr)
	if err != nil {
		fb.t.Fatalf("rebinding %s: %v", fb.addr, err)
	}
	fb.serve(ln)
}

// TestPollerStateTransitions walks one backend through the full
// lifecycle: healthy -> draining -> dead -> recovered (healthy again).
func TestPollerStateTransitions(t *testing.T) {
	fb := newFakeBackend(t)
	fb.inflight.Store(12345)
	fb.shed.Store(0)
	p := NewPoller([]string{fb.addr}, time.Second, 0, nil)
	ctx := context.Background()

	p.PollOnce(ctx)
	h := p.Health(fb.addr)
	if h.State != StateHealthy {
		t.Fatalf("state = %v, want healthy", h.State)
	}
	if h.InflightBytes != 12345 {
		t.Errorf("inflight = %d, want 12345 (metrics not scraped?)", h.InflightBytes)
	}
	if !p.Routable(fb.addr) {
		t.Error("healthy backend not routable")
	}

	fb.draining.Store(true)
	p.PollOnce(ctx)
	if h = p.Health(fb.addr); h.State != StateDraining {
		t.Fatalf("state = %v, want draining", h.State)
	}
	if p.Routable(fb.addr) {
		t.Error("draining backend still routable")
	}

	fb.stop()
	p.PollOnce(ctx)
	if h = p.Health(fb.addr); h.State != StateDead {
		t.Fatalf("state = %v, want dead", h.State)
	}

	fb.draining.Store(false)
	fb.restart()
	p.PollOnce(ctx)
	if h = p.Health(fb.addr); h.State != StateHealthy {
		t.Fatalf("state = %v, want healthy after recovery", h.State)
	}
	if !p.Routable(fb.addr) {
		t.Error("recovered backend not routable")
	}
}

// TestPollerShedRecently verifies the 429-rate signal: a counter
// increase between scrapes flags the backend as shedding, a flat
// counter clears it.
func TestPollerShedRecently(t *testing.T) {
	fb := newFakeBackend(t)
	p := NewPoller([]string{fb.addr}, time.Second, 0, nil)
	ctx := context.Background()

	p.PollOnce(ctx)
	fb.shed.Store(5)
	p.PollOnce(ctx)
	if h := p.Health(fb.addr); !h.ShedRecently || h.Shed429 != 5 {
		t.Fatalf("after 429 burst: ShedRecently=%v Shed429=%d, want true/5", h.ShedRecently, h.Shed429)
	}
	p.PollOnce(ctx)
	if h := p.Health(fb.addr); h.ShedRecently {
		t.Fatal("ShedRecently still set though the counter is flat")
	}
}

func TestPollerMarkDead(t *testing.T) {
	fb := newFakeBackend(t)
	p := NewPoller([]string{fb.addr}, time.Second, 0, nil)
	p.PollOnce(context.Background())
	p.MarkDead(fb.addr)
	if h := p.Health(fb.addr); h.State != StateDead {
		t.Fatalf("state = %v, want dead after MarkDead", h.State)
	}
	// The next poll sees the live backend and recovers it.
	p.PollOnce(context.Background())
	if h := p.Health(fb.addr); h.State != StateHealthy {
		t.Fatalf("state = %v, want healthy after re-poll", h.State)
	}
}

// TestPollerWarmingGrace covers the router-start race: a backend that
// has never answered /healthz reads as warming (routable) inside the
// grace window, dead after it — and once it has been healthy, a
// failure is dead immediately, never warming.
func TestPollerWarmingGrace(t *testing.T) {
	fb := newFakeBackend(t)
	fb.stop() // not yet started from the poller's point of view
	p := NewPoller([]string{fb.addr}, time.Second, 200*time.Millisecond, nil)
	ctx := context.Background()

	p.PollOnce(ctx)
	if h := p.Health(fb.addr); h.State != StateWarming {
		t.Fatalf("state = %v, want warming inside grace", h.State)
	}
	if !p.Routable(fb.addr) {
		t.Error("warming backend not routable")
	}

	// The backend comes up inside the window: healthy.
	fb.restart()
	p.PollOnce(ctx)
	if h := p.Health(fb.addr); h.State != StateHealthy {
		t.Fatalf("state = %v, want healthy", h.State)
	}

	// Once it has been healthy, death is death — no warming grace.
	fb.stop()
	p.PollOnce(ctx)
	if h := p.Health(fb.addr); h.State != StateDead {
		t.Fatalf("state = %v, want dead after prior health", h.State)
	}
}

// TestPollerWarmingDeadline: a backend that never comes up turns dead
// when the grace window expires.
func TestPollerWarmingDeadline(t *testing.T) {
	fb := newFakeBackend(t)
	fb.stop()
	p := NewPoller([]string{fb.addr}, time.Second, 50*time.Millisecond, nil)
	ctx := context.Background()
	p.PollOnce(ctx)
	if h := p.Health(fb.addr); h.State != StateWarming {
		t.Fatalf("state = %v, want warming", h.State)
	}
	time.Sleep(60 * time.Millisecond)
	p.PollOnce(ctx)
	if h := p.Health(fb.addr); h.State != StateDead {
		t.Fatalf("state = %v, want dead after deadline", h.State)
	}
}

// TestPollerMarkDeadBeatsWarming: a live connect failure is decisive —
// MarkDead during the grace window sticks through the next poll.
func TestPollerMarkDeadBeatsWarming(t *testing.T) {
	fb := newFakeBackend(t)
	fb.stop()
	p := NewPoller([]string{fb.addr}, time.Second, time.Hour, nil)
	ctx := context.Background()
	p.PollOnce(ctx)
	if h := p.Health(fb.addr); h.State != StateWarming {
		t.Fatalf("state = %v, want warming", h.State)
	}
	p.MarkDead(fb.addr)
	p.PollOnce(ctx)
	if h := p.Health(fb.addr); h.State != StateDead {
		t.Fatalf("state = %v, want dead (observed failure beats grace)", h.State)
	}
}

// TestPollerAddRemove exercises dynamic membership on the poller.
func TestPollerAddRemove(t *testing.T) {
	fb := newFakeBackend(t)
	p := NewPoller(nil, time.Second, 0, nil)
	if got := p.Backends(); len(got) != 0 {
		t.Fatalf("backends %v", got)
	}
	p.Add(fb.addr)
	p.Add(fb.addr) // idempotent
	if got := p.Backends(); len(got) != 1 || got[0] != fb.addr {
		t.Fatalf("backends %v", got)
	}
	p.PollOnce(context.Background())
	if h := p.Health(fb.addr); h.State != StateHealthy {
		t.Fatalf("state = %v, want healthy", h.State)
	}
	p.Remove(fb.addr)
	if got := p.Backends(); len(got) != 0 {
		t.Fatalf("backends after remove %v", got)
	}
	if h := p.Health(fb.addr); h.State != StateUnknown {
		t.Fatalf("removed backend state %v, want zero value", h.State)
	}
}

func TestParseLoadMetrics(t *testing.T) {
	exp := `# HELP szd_requests_total Requests.
# TYPE szd_requests_total counter
szd_requests_total{endpoint="compress",codec="blocked",status="200"} 10
szd_requests_total{endpoint="compress",codec="blocked",status="429"} 3
szd_requests_total{endpoint="decompress",codec="gzip",status="429"} 4
szd_inflight_bytes 987654
`
	inflight, shed, ok := parseLoadMetrics(strings.NewReader(exp))
	if !ok || inflight != 987654 || shed != 7 {
		t.Fatalf("parse = (%d, %d, %v), want (987654, 7, true)", inflight, shed, ok)
	}
}
