package fleet

// Transport-security integration: a fully mTLS fleet (client → router
// over TLS, router → backends with client certificates) must round-trip
// byte-identically to a plaintext fleet, and a plaintext client aimed
// at a TLS listener must fail fast with a typed tls_required error —
// not hang, not return garbage.

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/tlsconf"
)

// newTLSSzd starts a daemon behind an mTLS listener and returns its
// https:// URL.
func newTLSSzd(t *testing.T, files tlsconf.Files) string {
	t.Helper()
	cfg, err := tlsconf.Server(files.ServerCert, files.ServerKey, files.CACert)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(server.New(server.Config{}).Handler())
	ts.TLS = cfg
	ts.StartTLS()
	t.Cleanup(ts.Close)
	return ts.URL
}

// compressVia runs one compress through a client and returns the
// container bytes.
func compressVia(t *testing.T, cl *client.Client, raw []byte, p codec.Params) []byte {
	t.Helper()
	var out bytes.Buffer
	zw, err := cl.NewWriter(context.Background(), &out, "blocked", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestFleetMTLSRoundTrip(t *testing.T) {
	files, err := tlsconf.DevCertificates(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// TLS fleet: two mTLS backends behind a TLS router whose proxy
	// client presents the fleet client certificate.
	beA, beB := newTLSSzd(t, files), newTLSSzd(t, files)
	proxyCfg, err := tlsconf.Client(files.CACert, files.ClientCert, files.ClientKey, "")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Backends:     []string{beA, beB},
		PollInterval: time.Hour,
		HTTPClient:   &http.Client{Transport: &http.Transport{TLSClientConfig: proxyCfg}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The health poller shares the mTLS transport: both backends must
	// read healthy, or every probe would be dying in the handshake.
	rt.poller.PollOnce(context.Background())
	for _, b := range []string{beA, beB} {
		if st := rt.poller.Health(b).State; st != StateHealthy {
			t.Fatalf("mTLS backend %s state %v, want healthy", b, st)
		}
	}
	routerCfg, err := tlsconf.Server(files.ServerCert, files.ServerKey, "")
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewUnstartedServer(rt.Handler())
	rts.TLS = routerCfg
	rts.StartTLS()
	t.Cleanup(rts.Close)

	// Plaintext fleet with identical parameters for the byte-compare.
	_, pts := newRouter(t, Config{Backends: []string{newSzd(t), newSzd(t)}})

	clientCfg, err := tlsconf.Client(files.CACert, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	// Bare host:port plus WithTLS: the client must upgrade to https://.
	tlsClient, err := client.New(strings.TrimPrefix(rts.URL, "https://"), client.WithTLS(clientCfg))
	if err != nil {
		t.Fatal(err)
	}
	plainClient, err := client.New(pts.URL)
	if err != nil {
		t.Fatal(err)
	}

	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}}
	tlsStream := compressVia(t, tlsClient, raw, p)
	plainStream := compressVia(t, plainClient, raw, p)
	if !bytes.Equal(tlsStream, plainStream) {
		t.Fatalf("mTLS fleet container (%d bytes) differs from plaintext fleet (%d bytes)",
			len(tlsStream), len(plainStream))
	}

	// Decode through both fleets: the codec is lossy, so the reference
	// is the plaintext fleet's output, not the raw input.
	decodeVia := func(cl *client.Client, stream []byte) []byte {
		t.Helper()
		rc, err := cl.NewReader(context.Background(), bytes.NewReader(stream),
			int64(len(stream)), "", codec.Params{})
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		var back bytes.Buffer
		if _, err := back.ReadFrom(rc); err != nil {
			t.Fatal(err)
		}
		return back.Bytes()
	}
	tlsBack := decodeVia(tlsClient, tlsStream)
	plainBack := decodeVia(plainClient, plainStream)
	if !bytes.Equal(tlsBack, plainBack) {
		t.Fatal("mTLS fleet decode differs from plaintext fleet decode")
	}
	if len(tlsBack) != len(raw) {
		t.Fatalf("decoded %d bytes, want %d", len(tlsBack), len(raw))
	}
}

// TestPlaintextClientAgainstTLSListener: the failure mode must be a
// typed, immediate tls_required error — the Go TLS listener answers
// plaintext HTTP with a fixed 400, and the client maps it.
func TestPlaintextClientAgainstTLSListener(t *testing.T) {
	files, err := tlsconf.DevCertificates(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	beURL := newTLSSzd(t, files)

	// Speak plain http:// at the TLS port.
	cl, err := client.New("http://" + strings.TrimPrefix(beURL, "https://"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = cl.Codecs(ctx)
	if err == nil {
		t.Fatal("plaintext request against a TLS listener succeeded")
	}
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error not a typed *api.Error: %v", err)
	}
	if ae.Code != api.CodeTLSRequired {
		t.Fatalf("error code %q, want %q (err: %v)", ae.Code, api.CodeTLSRequired, err)
	}
}
