package fleet

// Per-node response caching and in-flight request coalescing.
//
// The router hashes replayable bodies and pins each digest to one ring
// node, so identical requests always land here with identical answers:
// decompress, slab, slabs, and inspect responses are pure functions of
// (input bytes, endpoint, parameters). That makes the router itself the
// natural cache seat — a hit answers without touching any backend, and
// the consistent-hash affinity means each router-fronted node set only
// ever caches its own key range.
//
// Coalescing closes the remaining gap: when N identical requests are in
// flight at once (a fan-out of analysis ranks asking for the same slab),
// only the first reaches a backend; the rest wait for its buffered
// response and share it. Both layers serve complete buffered responses,
// so they apply only to cacheable endpoints with replayable bodies and
// responses within the per-entry size cap.

import (
	"container/list"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/api"
)

// cacheEntry is a complete buffered response: everything needed to
// replay it to another client.
type cacheEntry struct {
	status  int
	header  http.Header
	body    []byte
	backend string
}

func (e *cacheEntry) size() int64 { return int64(len(e.body)) + 256 /* headers, bookkeeping */ }

// writeTo replays the entry. mode tags X-Sz-Cache so clients and tests
// can tell a served-from-cache response ("hit") from a shared in-flight
// one ("coalesced").
func (e *cacheEntry) writeTo(w http.ResponseWriter, mode string) {
	copyHeaders(w.Header(), e.header)
	w.Header().Set(api.HeaderBackend, e.backend)
	w.Header().Set(api.HeaderCache, mode)
	w.WriteHeader(e.status)
	w.Write(e.body)
}

// respCache is a bounded LRU over cacheEntry keyed by the request
// identity (endpoint, path, parameters, body digest).
type respCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions int64
}

type cacheItem struct {
	key   string
	entry *cacheEntry
}

func newRespCache(maxBytes int64) *respCache {
	return &respCache{maxBytes: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached entry for key, promoting it, or nil.
func (c *respCache) get(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).entry
}

// put stores an entry, evicting from the LRU tail until the byte budget
// holds. Entries larger than the whole budget are rejected.
func (c *respCache) put(key string, e *cacheEntry) {
	if e.size() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Identical identity implies identical response; keep the one
		// already resident and just promote it.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, entry: e})
	c.bytes += e.size()
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		it := el.Value.(*cacheItem)
		c.ll.Remove(el)
		delete(c.items, it.key)
		c.bytes -= it.entry.size()
		c.evictions++
	}
}

// stats snapshots the counters for /metrics.
func (c *respCache) stats() (bytes, entries, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, int64(c.ll.Len()), c.hits, c.misses, c.evictions
}

// flightGroup deduplicates concurrent identical requests: the first
// caller for a key becomes the leader and talks to a backend; followers
// block until the leader finishes and share its buffered response.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	entry   *cacheEntry  // nil when the leader's response was not shareable
	waiters atomic.Int64 // followers blocked on done (observability/tests)
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// join registers interest in key. The first caller gets leader=true and
// MUST call leave when its attempt is finished (success or not);
// followers get the existing call to wait on.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.waiters.Add(1)
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// leave publishes the leader's outcome (entry may be nil) and releases
// the followers.
func (g *flightGroup) leave(key string, c *flightCall, entry *cacheEntry) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.entry = entry
	close(c.done)
}
