package fleet

// The routing proxy. One Router fronts a set of szd backends:
//
//   - Replayable bodies (those that fit the buffer limit) are routed by
//     stream identity: the SHA-256 of the body picks the owning ring
//     node, and on 429/503/connect failure the request replays against
//     the next ring node in sequence. Identical inputs always land on
//     the same healthy backend, which keeps per-node caches hot.
//   - Unbounded streaming bodies cannot be replayed, so they skip the
//     ring: the router picks the least-loaded routable backend
//     (round-robin among ties) and forwards in a single attempt.
//   - Backend rejections that exhaust every candidate are relayed to
//     the client unchanged — status, body, and Retry-After header — so
//     client backoff works exactly as it does against a single daemon.
//
// The router adds X-Sz-Backend to every response naming the backend
// that served (or last rejected) it, and exposes szrouter_* metrics:
// per-backend forwards, failovers, and request counts by status. Every
// request is traced: the router continues an inbound W3C traceparent
// (or opens a trace), propagates it to the backend, and merges the
// backend's Server-Timing under a "be-" prefix into its own.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/store"
)

const (
	// defaultBufferLimit bounds the body bytes buffered to keep a
	// request replayable (hash-routed, retryable). Matches the szd
	// client's default.
	defaultBufferLimit = 4 << 20
	// relayErrBodyLimit bounds how much of a rejection body is stored
	// for relaying after every candidate failed.
	relayErrBodyLimit = 4 << 10
	// defaultCacheBytes is the response cache's byte budget.
	defaultCacheBytes = 64 << 20
	// defaultCacheEntryBytes caps a single cacheable response. It is
	// deliberately larger than the request buffer limit: decompress and
	// slab responses expand their input.
	defaultCacheEntryBytes = 16 << 20
	// defaultDrainGrace is how long a removed backend keeps answering
	// in-flight work and serving as an anti-entropy source before the
	// router forgets it entirely.
	defaultDrainGrace = 10 * time.Second
	// replDedupTTL suppresses repeat replication kicks for the same
	// digest: every read of a popular container re-announces its ETag,
	// and one HEAD probe per replica per TTL is plenty.
	replDedupTTL = time.Minute
	// replDedupMax bounds the dedup map; beyond it, expired entries are
	// pruned (and if none expired, the map is reset — re-probing is
	// cheap, unbounded growth is not).
	replDedupMax = 4096
	// replCopyTimeout bounds one background replica copy.
	replCopyTimeout = 60 * time.Second
)

// cacheableEndpoint marks the endpoints whose responses are pure
// functions of (input bytes, parameters) and cheap to replay: the
// decode-side family. Compression is deterministic too, but its inputs
// are raw fields — large, rarely repeated — so caching it would only
// churn the budget.
var cacheableEndpoint = map[string]bool{
	"decompress": true,
	"inspect":    true,
	"slabs":      true,
	"slab":       true,
}

// Config configures a Router.
type Config struct {
	// Backends are the szd nodes ("host:port" or full URLs). Required.
	Backends []string
	// Replicas is the ring vnode count per backend (0 = 128).
	Replicas int
	// BufferLimit is the replayable-body cap in bytes (0 = 4 MiB).
	BufferLimit int
	// PollInterval is the health-poll cadence (0 = 2s).
	PollInterval time.Duration
	// HTTPClient overrides the proxy transport (nil = no-timeout client;
	// streams may legitimately run for minutes).
	HTTPClient *http.Client
	// CacheBytes is the response-cache byte budget for the decode-side
	// endpoints (decompress, slab, slabs, inspect). 0 means the 64 MiB
	// default; negative disables the cache AND in-flight coalescing.
	CacheBytes int64
	// CacheEntryBytes caps a single cached (or coalesced) response;
	// larger responses stream through uncached. 0 means the 16 MiB
	// default.
	CacheEntryBytes int64
	// SlowThreshold is the total-duration floor above which a finished
	// request is logged structured with its stage breakdown; <= 0
	// disables slow-request logging. cmd/szrouter wires -slow-ms.
	SlowThreshold time.Duration
	// TraceRingSize is how many finished traces /debug/traces retains
	// (0 = obs.DefaultRingSize).
	TraceRingSize int
	// Replication is the slab-store replication factor R: every
	// validated container is copied to the ring owner and R-1
	// successors, so any single backend can die without losing data.
	// 0 or 1 disables replication (owner-only, the pre-R behavior).
	Replication int
	// WarmupGrace is how long a never-healthy backend reads as warming
	// instead of dead (0 = DefaultWarmupGrace, < 0 disables).
	WarmupGrace time.Duration
	// DrainGrace is how long a removed backend lingers as a drain/
	// anti-entropy source before being forgotten (0 = 10s).
	DrainGrace time.Duration
	// AntiEntropyInterval is the periodic anti-entropy sweep cadence.
	// 0 means sweeps run only when membership changes; < 0 disables
	// the sweep loop entirely (SweepOnce still works for tests).
	AntiEntropyInterval time.Duration
}

// Router is the fleet-mode HTTP proxy.
type Router struct {
	// mu guards the membership state below: the ring (not itself
	// goroutine-safe), the serving backend list, and the pending/leaving
	// lifecycle sets. Request-path readers take it shared; SetBackends
	// and the poll-driven reconciler take it exclusive.
	mu       sync.RWMutex
	ring     *Ring
	backends []string             // serving set: in-ring plus pending warm-ups
	pending  map[string]bool      // added, awaiting first healthy poll before ring entry
	leaving  map[string]time.Time // removed from ring, kept as drain/repair source until deadline

	poller      *Poller
	client      *http.Client
	bufferLimit int
	replication int
	drainGrace  time.Duration
	aeInterval  time.Duration
	rr          atomic.Uint64
	met         *routerMetrics
	rec         *obs.Recorder
	mux         *http.ServeMux

	// Background replication: replSeen dedups per-digest kicks, replWG
	// tracks in-flight copies, and the sweep goroutine re-replicates
	// under-replicated digests after membership changes.
	replMu    sync.Mutex
	replSeen  map[string]time.Time
	replWG    sync.WaitGroup
	sweepKick chan struct{}
	sweepStop chan struct{}
	sweepDone chan struct{}

	// cache and flights implement the zero-recompute path: cache serves
	// repeated identical requests without a backend round trip, flights
	// collapses concurrent identical requests onto one backend call.
	// Both are nil when caching is disabled.
	cache      *respCache
	flights    *flightGroup
	entryLimit int64
}

// New builds a Router; call Start to begin health polling.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	seen := map[string]bool{}
	for _, b := range cfg.Backends {
		if b == "" || seen[b] {
			return nil, fmt.Errorf("fleet: empty or duplicate backend %q", b)
		}
		seen[b] = true
	}
	limit := cfg.BufferLimit
	if limit <= 0 {
		limit = defaultBufferLimit
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	// The poller needs its own short-timeout client, but it must share
	// the proxy transport when one is configured — that is where the
	// mTLS client certificate lives, and probing an mTLS backend in
	// plaintext would read every node as dead.
	pi := cfg.PollInterval
	if pi <= 0 {
		pi = 2 * time.Second
	}
	var phc *http.Client
	if hc.Transport != nil {
		phc = &http.Client{Timeout: pi / 2, Transport: hc.Transport}
	}
	replication := cfg.Replication
	if replication < 1 {
		replication = 1
	}
	drainGrace := cfg.DrainGrace
	if drainGrace <= 0 {
		drainGrace = defaultDrainGrace
	}
	rt := &Router{
		ring:        NewRing(cfg.Replicas, cfg.Backends...),
		poller:      NewPoller(cfg.Backends, cfg.PollInterval, cfg.WarmupGrace, phc),
		backends:    append([]string(nil), cfg.Backends...),
		pending:     map[string]bool{},
		leaving:     map[string]time.Time{},
		client:      hc,
		bufferLimit: limit,
		replication: replication,
		drainGrace:  drainGrace,
		aeInterval:  cfg.AntiEntropyInterval,
		replSeen:    map[string]time.Time{},
		sweepKick:   make(chan struct{}, 1),
		rec:         obs.NewRecorder(cfg.TraceRingSize, cfg.SlowThreshold, nil),
		mux:         http.NewServeMux(),
	}
	rt.poller.afterPoll = rt.reconcile
	if cfg.CacheBytes >= 0 {
		cacheBytes := cfg.CacheBytes
		if cacheBytes == 0 {
			cacheBytes = defaultCacheBytes
		}
		rt.entryLimit = cfg.CacheEntryBytes
		if rt.entryLimit <= 0 {
			rt.entryLimit = defaultCacheEntryBytes
		}
		rt.cache = newRespCache(cacheBytes)
		rt.flights = newFlightGroup()
	}
	rt.met = newRouterMetrics(rt.poller, rt.cache)
	rt.mux.HandleFunc(api.PathCompress, rt.withObs("compress", rt.proxyBody("compress")))
	rt.mux.HandleFunc(api.PathDecompress, rt.withObs("decompress", rt.proxyBody("decompress")))
	rt.mux.HandleFunc(api.PathInspect, rt.withObs("inspect", rt.proxyBody("inspect")))
	rt.mux.HandleFunc(api.PathSlabs, rt.withObs("slabs", rt.proxyBody("slabs")))
	rt.mux.HandleFunc(api.PathSlabPrefix, rt.withObs("slab", rt.proxyBody("slab")))
	rt.mux.HandleFunc(api.PathContainerPrefix, rt.withObs("container", rt.proxyBody("container")))
	rt.mux.HandleFunc(api.PathCodecs, rt.withObs("codecs", rt.proxyBodyless("codecs")))
	rt.mux.HandleFunc(api.PathLimits, rt.handleLimits)
	rt.mux.HandleFunc(api.PathHealthz, rt.handleHealthz)
	rt.mux.HandleFunc(api.PathMetrics, rt.handleMetrics)
	rt.mux.Handle(api.PathDebugTraces, rt.rec.Ring)
	return rt, nil
}

// withObs is the router's tracing middleware: it continues (or opens)
// the request's trace, echoes the request ID, renders Server-Timing —
// the router's own spans plus the backend's merged under "be-" — as a
// declared trailer, feeds the stage histograms, and records the trace.
func (rt *Router) withObs(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := obs.StartTrace(endpoint, r.Header.Get("Traceparent"), r.Header.Get(api.HeaderRequestID))
		w.Header().Set(api.HeaderRequestID, t.RequestID)
		w.Header().Add("Trailer", "Server-Timing")
		// Tenant identity resolves at the edge and is never trusted from
		// the wire: any inbound X-Sz-Tenant is stripped, and a malformed
		// credential is answered here — before a backend burns admission
		// work on it. The resolved name rides to the backend as
		// X-Sz-Tenant (the backend still re-derives from the API key; the
		// header is for symmetry and logs, not trust).
		r.Header.Del(api.HeaderTenant)
		tenant, terr := api.TenantFromKey(r.Header.Get(api.HeaderAPIKey))
		if terr == nil {
			_, terr = api.ParsePriority(r.Header.Get(api.HeaderPriority))
		}
		if terr != nil {
			tenant = "invalid" // fixed label: hostile keys must not mint metric series
		}
		ow := &obsWriter{ResponseWriter: w, t: t}
		defer func() {
			status := ow.status
			if status == 0 {
				status = http.StatusOK
			}
			t.Finish(status)
			w.Header().Set("Server-Timing", t.ServerTiming())
			rt.met.tenantRequest(tenant, status)
			rt.met.recordStages(t)
			rt.rec.Done(t)
		}()
		if terr != nil {
			rt.met.request(endpoint, http.StatusBadRequest)
			rt.writeError(ow, http.StatusBadRequest,
				&api.Error{Code: api.CodeBadTenant, Message: terr.Error()})
			return
		}
		r.Header.Set(api.HeaderTenant, tenant)
		h(ow, r.WithContext(obs.NewContext(r.Context(), t)))
	}
}

// obsWriter captures the response status for the trace. Responses that
// carry a Content-Length (buffered relays) are not chunked, so the
// declared Server-Timing trailer would be dropped — for those the
// header is injected with the spans closed so far at WriteHeader time.
type obsWriter struct {
	http.ResponseWriter
	t      *obs.Trace
	status int
}

func (ow *obsWriter) WriteHeader(code int) {
	if ow.status == 0 {
		ow.status = code
		if ow.Header().Get("Content-Length") != "" {
			if v := ow.t.ServerTiming(); v != "" {
				ow.Header().Set("Server-Timing", v)
			}
		}
	}
	ow.ResponseWriter.WriteHeader(code)
}

func (ow *obsWriter) Write(b []byte) (int, error) {
	if ow.status == 0 {
		ow.WriteHeader(http.StatusOK)
	}
	return ow.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (ow *obsWriter) Unwrap() http.ResponseWriter { return ow.ResponseWriter }

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start runs an initial synchronous health poll, begins the poll loop,
// and (with replication on) the anti-entropy sweep loop.
func (rt *Router) Start() {
	rt.poller.Start()
	if rt.replication > 1 && rt.aeInterval >= 0 {
		rt.sweepStop = make(chan struct{})
		rt.sweepDone = make(chan struct{})
		go rt.sweepLoop()
	}
}

// Stop halts health polling, the sweep loop, and waits for in-flight
// background replica copies.
func (rt *Router) Stop() {
	rt.poller.Stop()
	if rt.sweepStop != nil {
		close(rt.sweepStop)
		<-rt.sweepDone
		rt.sweepStop = nil
	}
	rt.replWG.Wait()
}

// Poller exposes the health tracker (for status pages and tests).
func (rt *Router) Poller() *Poller { return rt.poller }

// Backends returns the current serving set (in-ring plus warming), a
// copy.
func (rt *Router) Backends() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.backends...)
}

// SetBackends applies a new membership set, reconciling it against the
// current one with the add → warm-up → in-ring and drain-then-remove
// lifecycles:
//
//   - A new backend starts polling immediately but joins the ring only
//     at its first healthy poll (reconcile), so ring ownership never
//     points at a node that cannot serve yet.
//   - A removed backend leaves the ring at once — new traffic stops
//     hashing to it — but stays polled and usable as an anti-entropy
//     source for the drain grace, then is forgotten.
//
// The ring change is the only synchronous part; data movement happens
// behind it via the anti-entropy sweep this call kicks.
func (rt *Router) SetBackends(nodes []string) error {
	if len(nodes) == 0 {
		return errors.New("fleet: no backends configured")
	}
	next := make(map[string]bool, len(nodes))
	for _, b := range nodes {
		if b == "" || next[b] {
			return fmt.Errorf("fleet: empty or duplicate backend %q", b)
		}
		next[b] = true
	}
	rt.mu.Lock()
	changed := false
	current := make(map[string]bool, len(rt.backends))
	for _, b := range rt.backends {
		current[b] = true
	}
	for _, b := range nodes {
		if current[b] {
			continue
		}
		changed = true
		if _, wasLeaving := rt.leaving[b]; wasLeaving {
			// Re-added while draining: it was healthy in the ring moments
			// ago, so it goes straight back in.
			delete(rt.leaving, b)
			rt.ring.Add(b)
		} else {
			rt.poller.Add(b)
			rt.pending[b] = true
		}
		rt.backends = append(rt.backends, b)
	}
	keep := rt.backends[:0]
	for _, b := range rt.backends {
		if next[b] {
			keep = append(keep, b)
			continue
		}
		changed = true
		if rt.pending[b] {
			// Never served: no drain needed.
			delete(rt.pending, b)
			rt.poller.Remove(b)
			continue
		}
		rt.ring.Remove(b)
		rt.leaving[b] = time.Now().Add(rt.drainGrace)
	}
	rt.backends = keep
	rt.mu.Unlock()
	if changed {
		rt.kickSweep()
	}
	return nil
}

// reconcile runs after every poll: pending backends that reached their
// first healthy poll enter the ring (kicking a sweep so their share of
// replicas migrates in), and leaving backends past their drain
// deadline are forgotten.
func (rt *Router) reconcile() {
	rt.mu.Lock()
	promoted := false
	for b := range rt.pending {
		if rt.poller.Health(b).State == StateHealthy {
			delete(rt.pending, b)
			rt.ring.Add(b)
			promoted = true
		}
	}
	now := time.Now()
	for b, deadline := range rt.leaving {
		if now.After(deadline) {
			delete(rt.leaving, b)
			rt.poller.Remove(b)
		}
	}
	rt.mu.Unlock()
	if promoted {
		rt.kickSweep()
	}
}

// hopByHop are the connection-scoped headers a proxy must not forward.
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
	// Trace-owned headers are re-derived per hop, never copied: the
	// router sets its own request ID and renders its own Server-Timing
	// (the backend's is merged under "be-", not relayed verbatim).
	"Server-Timing": true, api.HeaderRequestID: true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[k] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// candidates orders the ring sequence for key by health: routable nodes
// that are not actively shedding first, then routable-but-shedding, then
// everything else (draining/dead — still tried last, because poller
// state may be stale and a request in hand beats a guaranteed 503).
// Ring order is preserved within each tier so the owner stays first.
// Warming backends not yet in the ring trail the sequence: they cannot
// own keys, but when the whole ring is down a booting node is the last
// resort that may still answer.
func (rt *Router) candidates(key string) []string {
	rt.mu.RLock()
	seq := rt.ring.Sequence(key, len(rt.backends))
	if len(seq) < len(rt.backends) {
		inSeq := make(map[string]bool, len(seq))
		for _, b := range seq {
			inSeq[b] = true
		}
		for _, b := range rt.backends {
			if !inSeq[b] {
				seq = append(seq, b)
			}
		}
	}
	rt.mu.RUnlock()
	// Snapshot each backend's tier once: querying the poller inside the
	// comparator would take its lock O(n log n) times and, worse, a
	// concurrent probe could flip a state mid-sort and break the
	// comparator's consistency.
	tier := make(map[string]int, len(seq))
	for _, b := range seq {
		h := rt.poller.Health(b)
		switch {
		case routableState(h.State) && !h.ShedRecently:
			tier[b] = 0
		case routableState(h.State):
			tier[b] = 1
		default:
			tier[b] = 2
		}
	}
	sort.SliceStable(seq, func(i, j int) bool { return tier[seq[i]] < tier[seq[j]] })
	return seq
}

// routableState mirrors Poller.Routable on a snapshot: healthy, not
// yet polled, or warming.
func routableState(s State) bool {
	return s == StateHealthy || s == StateUnknown || s == StateWarming
}

// ringOwner is the in-ring owner for key ("" on an empty ring).
func (rt *Router) ringOwner(key string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Lookup(key)
}

// ringSequence is Sequence under the membership lock.
func (rt *Router) ringSequence(key string, n int) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Sequence(key, n)
}

// pickStreaming chooses the backend for a non-replayable stream: the
// least-loaded (by reserved in-flight bytes) routable backend, with a
// rotating tie-break so equally-idle nodes share the traffic.
func (rt *Router) pickStreaming() string {
	backends := rt.Backends()
	start := int(rt.rr.Add(1))
	best, bestLoad := "", int64(-1)
	for tier := 0; tier < 2 && best == ""; tier++ {
		for i := range backends {
			b := backends[(start+i)%len(backends)]
			h := rt.poller.Health(b)
			// Warming nodes are excluded here: a stream gets exactly one
			// attempt, so it goes to a node known to answer.
			routable := h.State == StateHealthy || h.State == StateUnknown
			if tier == 0 && (!routable || h.ShedRecently) {
				continue
			}
			if tier == 1 && !routable {
				continue
			}
			if best == "" || h.InflightBytes < bestLoad {
				best, bestLoad = b, h.InflightBytes
			}
		}
	}
	if best == "" {
		best = backends[start%len(backends)]
	}
	return best
}

// storedResp is a rejection kept for relaying if every candidate fails.
type storedResp struct {
	status  int
	header  http.Header
	body    []byte
	backend string
}

// storeResp drains (bounded) and closes a shed response so its
// connection is reusable and its status can be relayed later.
func storeResp(resp *http.Response, backend string) *storedResp {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, relayErrBodyLimit))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	h := make(http.Header, 4)
	copyHeaders(h, resp.Header)
	// The stored body is truncated to the relay limit; the backend's
	// Content-Length would then overstate what gets written and corrupt
	// the relayed response mid-stream.
	h.Del("Content-Length")
	return &storedResp{status: resp.StatusCode, header: h, body: body, backend: backend}
}

func (sr *storedResp) write(w http.ResponseWriter) {
	// Retry-After travels in sr.header verbatim: the backend's own
	// backoff hint must reach the client unchanged.
	copyHeaders(w.Header(), sr.header)
	w.Header().Set(api.HeaderBackend, sr.backend)
	w.WriteHeader(sr.status)
	w.Write(sr.body)
}

// retryable reports whether a backend status means "try the next node":
// the daemon shed (429) or is draining (503). Anything else — success or
// a request-shaped error like 400/413 — is the client's answer.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// requestDigestParam extracts a content-address reference from the
// request: the ?digest= query value, the X-Sz-Digest header, or (for
// the container endpoint) the path element. The backend validates the
// shape; the router only needs it as a ring key.
func requestDigestParam(r *http.Request, endpoint string) string {
	if d := r.URL.Query().Get(api.QueryDigest); d != "" {
		return d
	}
	if d := r.Header.Get(api.HeaderDigest); d != "" {
		return d
	}
	if endpoint == "container" {
		return strings.TrimPrefix(r.URL.Path, api.PathContainerPrefix)
	}
	return ""
}

// proxyBody handles the body-carrying endpoints. Bodies within the
// buffer limit are hashed and routed with failover — consulting the
// response cache and coalescing identical in-flight requests on the
// cacheable endpoints; larger bodies stream to a single picked backend.
// Digest-referenced requests (no body, content address in the query,
// header, or container path) ring-route by the digest itself, which is
// exactly where earlier body-carrying reads of the same container
// landed: the backend that stored it on disk.
func (rt *Router) proxyBody(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rd := obs.FromContext(r.Context()).StartSpan("read_body")
		head, err := io.ReadAll(io.LimitReader(r.Body, int64(rt.bufferLimit)+1))
		rd.End()
		if err != nil {
			rt.met.request(endpoint, http.StatusBadRequest)
			rt.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
			return
		}
		if len(head) > rt.bufferLimit {
			rt.forwardStream(w, r, endpoint, head)
			return
		}
		key := requestDigestParam(r, endpoint)
		digestRouted := key != "" && len(head) == 0
		if !digestRouted {
			// Body path: the body hash IS the container digest for the
			// decode-side endpoints, so both paths share ring affinity.
			sum := sha256.Sum256(head)
			key = hex.EncodeToString(sum[:])
		}
		fillDigest := ""
		if digestRouted {
			fillDigest = key
		}
		if rt.cache != nil && cacheableEndpoint[endpoint] {
			rt.serveCacheable(w, r, endpoint, key, fillDigest, head)
			return
		}
		rt.forwardReplayable(w, r, endpoint, rt.tracedCandidates(r, key), fillDigest, head)
	}
}

// tracedCandidates is candidates bracketed by a "ring" span on the
// request's trace.
func (rt *Router) tracedCandidates(r *http.Request, key string) []string {
	sp := obs.FromContext(r.Context()).StartSpan("ring")
	cands := rt.candidates(key)
	sp.End()
	return cands
}

// identityExempt marks X-Sz-* headers that do not parameterize the
// response bytes: the admission hint and the tenant identity trio.
// Including them would split the cache per caller for byte-identical
// responses (and hand a flooding tenant a cache-eviction lever).
var identityExempt = map[string]bool{
	api.HeaderContentLength: true,
	api.HeaderAPIKey:        true,
	api.HeaderPriority:      true,
	api.HeaderTenant:        true,
}

// requestIdentity builds the cache/coalescing key: the endpoint, path,
// canonicalized query, the X-Sz-* parameter headers, and the body
// digest. Two requests with equal identity are guaranteed the same
// response bytes (the decode endpoints are pure functions of input and
// parameters). identityExempt headers are skipped — they shape
// admission and accounting, never the payload.
func requestIdentity(endpoint string, r *http.Request, digest string) string {
	var b strings.Builder
	b.WriteString(endpoint)
	b.WriteByte('|')
	b.WriteString(r.URL.Path)
	b.WriteByte('|')
	b.WriteString(r.URL.Query().Encode()) // Encode sorts keys
	b.WriteByte('|')
	hkeys := make([]string, 0, 4)
	for k := range r.Header {
		if strings.HasPrefix(k, api.ParamHeaderPrefix) && !identityExempt[k] {
			hkeys = append(hkeys, k)
		}
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strings.Join(r.Header.Values(k), ","))
		b.WriteByte('&')
	}
	b.WriteByte('|')
	b.WriteString(digest)
	return b.String()
}

// notModifiedFromCache answers a conditional request whose If-None-Match
// covers the cached entry's ETag: content-addressed responses are
// immutable, so a match is always a 304 — no backend, no body bytes.
func (rt *Router) notModifiedFromCache(w http.ResponseWriter, r *http.Request, endpoint string, e *cacheEntry, mode string) bool {
	etag := e.header.Get("Etag")
	if etag == "" || !ifNoneMatchHas(r.Header.Get("If-None-Match"), etag) {
		return false
	}
	w.Header().Set("Etag", etag)
	w.Header().Set(api.HeaderBackend, e.backend)
	w.Header().Set(api.HeaderCache, mode)
	w.WriteHeader(http.StatusNotModified)
	rt.met.request(endpoint, http.StatusNotModified)
	return true
}

// ifNoneMatchHas reports whether an If-None-Match field value matches
// etag (comma list, wildcard, weak prefix tolerated).
func ifNoneMatchHas(inm, etag string) bool {
	if inm == "" {
		return false
	}
	for _, part := range strings.Split(inm, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// serveCacheable answers a replayable decode-side request from the
// response cache when possible, coalesces it onto an identical in-flight
// request otherwise, and only then forwards — capturing a shareable
// response for both layers on the way back.
func (rt *Router) serveCacheable(w http.ResponseWriter, r *http.Request, endpoint, key, fillDigest string, head []byte) {
	tr := obs.FromContext(r.Context())
	id := requestIdentity(endpoint, r, key)
	sp := tr.StartSpan("cache")
	e := rt.cache.get(id)
	sp.End()
	if e != nil {
		if rt.notModifiedFromCache(w, r, endpoint, e, "hit") {
			return
		}
		rt.met.cacheHitBytes(int64(len(e.body)))
		e.writeTo(w, "hit")
		rt.met.request(endpoint, e.status)
		return
	}
	c, leader := rt.flights.join(id)
	if leader {
		var entry *cacheEntry
		// leave runs deferred so followers are released even if the
		// forward path fails in an unexpected way.
		defer func() { rt.flights.leave(id, c, entry) }()
		entry = rt.forwardCaptured(w, r, endpoint, rt.tracedCandidates(r, key), fillDigest, head)
		if entry != nil && entry.status == http.StatusOK {
			rt.cache.put(id, entry)
		}
		return
	}
	wait := tr.StartSpan("coalesce")
	select {
	case <-c.done:
	case <-r.Context().Done():
		wait.End()
		return // client gave up while waiting on the leader
	}
	wait.End()
	if e := c.entry; e != nil {
		if rt.notModifiedFromCache(w, r, endpoint, e, "coalesced") {
			return
		}
		rt.met.coalesced(endpoint)
		e.writeTo(w, "coalesced")
		rt.met.request(endpoint, e.status)
		return
	}
	// The leader's response was not shareable (oversized or an internal
	// error); fall back to an ordinary forward of our own.
	rt.forwardReplayable(w, r, endpoint, rt.tracedCandidates(r, key), fillDigest, head)
}

// proxyBodyless handles GET endpoints with no body (the codec listing):
// any routable backend can answer, with failover through the rest.
func (rt *Router) proxyBodyless(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		backends := rt.Backends()
		start := int(rt.rr.Add(1))
		rotated := make([]string, len(backends))
		routable := make(map[string]bool, len(backends))
		for i, b := range backends {
			rotated[i] = backends[(start+i)%len(backends)]
			routable[b] = rt.poller.Routable(b)
		}
		sort.SliceStable(rotated, func(i, j int) bool {
			return routable[rotated[i]] && !routable[rotated[j]]
		})
		rt.forwardReplayable(w, r, endpoint, rotated, "", nil)
	}
}

// forwardReplayable tries candidates in order with a fresh body per
// attempt, failing over on shed statuses and transport errors; the last
// rejection is relayed when no candidate accepts.
func (rt *Router) forwardReplayable(w http.ResponseWriter, r *http.Request, endpoint string, cands []string, fillDigest string, body []byte) {
	rt.forward(w, r, endpoint, cands, fillDigest, body, false)
}

// forwardCaptured is forwardReplayable for the cacheable path: a
// successful response within the entry limit is buffered, served to the
// client, and returned for the cache and any coalesced followers. A nil
// return means the response was served but is not shareable (oversized,
// a relayed rejection, or an internal error).
func (rt *Router) forwardCaptured(w http.ResponseWriter, r *http.Request, endpoint string, cands []string, fillDigest string, body []byte) *cacheEntry {
	return rt.forward(w, r, endpoint, cands, fillDigest, body, true)
}

func (rt *Router) forward(w http.ResponseWriter, r *http.Request, endpoint string, cands []string, fillDigest string, body []byte, capture bool) *cacheEntry {
	tr := obs.FromContext(r.Context())
	var last *storedResp
	fillTried := false
	owner := ""
	if fillDigest != "" {
		owner = rt.ringOwner(fillDigest)
	}
	for _, backend := range cands {
		if r.Context().Err() != nil {
			return nil // client went away; stop burning backends
		}
		attempt := time.Now()
		req, err := rt.buildRequest(r, backend, bytes.NewReader(body), int64(len(body)))
		if err != nil {
			rt.met.request(endpoint, http.StatusInternalServerError)
			rt.writeError(w, http.StatusInternalServerError, err)
			return nil
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				return nil // the client aborted; the backend is not at fault
			}
			rt.poller.MarkDead(backend)
			rt.met.failover(backend)
			tr.Observe("failover", time.Since(attempt))
			continue
		}
		// Request send + backend time-to-first-header. The relay span picks
		// up from here, so upstream+relay brackets the whole backend call.
		tr.Observe("upstream", time.Since(attempt))
		rt.met.forward(backend, endpoint)
		if retryable(resp.StatusCode) {
			last = storeResp(resp, backend)
			rt.met.failover(backend)
			tr.Observe("failover", time.Since(attempt))
			continue
		}
		if fillDigest != "" && resp.StatusCode == http.StatusNotFound {
			// A digest-referenced read missed this backend's store: a
			// ring-affinity miss (the container was compressed or first
			// read elsewhere, or the node restarted with an empty disk).
			// Keep the 404 for relaying, then try to repair the owner by
			// copying the container over from a peer that has it, and
			// retry here. Fill runs once per request; if no peer has the
			// container either, the remaining candidates' own stores are
			// still probed directly.
			last = storeResp(resp, backend)
			if !fillTried {
				fillTried = true
				fill := tr.StartSpan("peer_fill")
				filled := rt.peerFill(r, fillDigest, backend, cands)
				fill.End()
				if filled {
					if entry, served := rt.retryAfterFill(w, r, endpoint, backend, body, capture); served {
						return entry
					}
				}
			}
			continue
		}
		if fillDigest != "" && resp.StatusCode == http.StatusOK && owner != "" && backend != owner {
			// A digest read answered by a non-owner: the replica (or ring
			// walk) covered for a dead or missing owner.
			rt.met.replicationFailover(backend)
		}
		if endpoint == "container" && r.Method == http.MethodPut &&
			resp.StatusCode == http.StatusNoContent {
			// A client-uploaded container landed: fan it out to the
			// digest's R-1 successors in the background.
			if d := strings.TrimPrefix(r.URL.Path, api.PathContainerPrefix); store.ValidDigest(d) {
				rt.noteContainer(d, backend)
			}
		}
		if capture && resp.StatusCode == http.StatusOK {
			return rt.relayCaptured(w, tr, resp, backend, endpoint)
		}
		rt.relay(w, tr, resp, backend, endpoint)
		return nil
	}
	if last != nil {
		if fillDigest != "" && last.status == http.StatusNotFound {
			// Every candidate — owner, replicas, the full ring walk — came
			// up empty: the digest is not just misplaced, it is gone.
			// no_replica tells the client re-uploading is the only remedy.
			copyHeaders(w.Header(), last.header)
			w.Header().Set(api.HeaderBackend, last.backend)
			rt.met.request(endpoint, http.StatusNotFound)
			rt.writeError(w, http.StatusNotFound, &api.Error{
				Code:    api.CodeNoReplica,
				Message: fmt.Sprintf("container %s on no ring node", fillDigest),
			})
			return nil
		}
		last.write(w)
		rt.met.request(endpoint, last.status)
		return nil
	}
	rt.met.request(endpoint, http.StatusBadGateway)
	rt.writeError(w, http.StatusBadGateway,
		&api.Error{Code: api.CodeNoBackend, Message: "no reachable backend"})
	return nil
}

// peerFill repairs a ring-affinity miss: when target's store lacks a
// container some other node holds, the router copies it over through
// the content-addressed surface. Peers that fail — unreachable, reset
// mid-transfer, or simply without the container — are skipped, never
// fatal: the caller keeps walking candidates either way.
func (rt *Router) peerFill(r *http.Request, digest, target string, cands []string) bool {
	for _, peer := range cands {
		if peer == target || r.Context().Err() != nil {
			continue
		}
		if rt.copyContainer(r.Context(), digest, peer, target) {
			rt.met.peerFill(target)
			return true
		}
	}
	return false
}

// copyContainer moves one container between backends through the
// content-addressed surface: GET /v1/container from src, PUT to dst,
// digest-verified on arrival. The copy streams through — the router
// never buffers the container. Any failure (src lacks it, either side
// unreachable, digest mismatch) is false.
func (rt *Router) copyContainer(ctx context.Context, digest, src, dst string) bool {
	greq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		backendURL(src)+api.PathContainerPrefix+digest, nil)
	if err != nil {
		return false
	}
	gresp, err := rt.client.Do(greq)
	if err != nil {
		return false
	}
	if gresp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, gresp.Body)
		gresp.Body.Close()
		return false
	}
	preq, err := http.NewRequestWithContext(ctx, http.MethodPut,
		backendURL(dst)+api.PathContainerPrefix+digest, gresp.Body)
	if err != nil {
		gresp.Body.Close()
		return false
	}
	if gresp.ContentLength >= 0 {
		preq.ContentLength = gresp.ContentLength
	}
	presp, err := rt.client.Do(preq)
	gresp.Body.Close()
	if err != nil {
		return false
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	return presp.StatusCode == http.StatusNoContent
}

// containerAt probes dst for digest with a HEAD — the cheap existence
// check replication uses to skip copies a node already holds.
func (rt *Router) containerAt(ctx context.Context, dst, digest string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead,
		backendURL(dst)+api.PathContainerPrefix+digest, nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusNoContent
}

// noteContainer records that src holds digest and, with replication
// on, kicks an async fan-out to the digest's ring owner and R-1
// successors. Calls dedup per digest for replDedupTTL: every read of a
// popular container re-announces its ETag, and one probe round per TTL
// suffices.
func (rt *Router) noteContainer(digest, src string) {
	if rt.replication <= 1 {
		return
	}
	now := time.Now()
	rt.replMu.Lock()
	if t, ok := rt.replSeen[digest]; ok && now.Sub(t) < replDedupTTL {
		rt.replMu.Unlock()
		return
	}
	if len(rt.replSeen) >= replDedupMax {
		for d, t := range rt.replSeen {
			if now.Sub(t) >= replDedupTTL {
				delete(rt.replSeen, d)
			}
		}
		if len(rt.replSeen) >= replDedupMax {
			rt.replSeen = map[string]time.Time{}
		}
	}
	rt.replSeen[digest] = now
	rt.replMu.Unlock()
	rt.replWG.Add(1)
	go func() {
		defer rt.replWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), replCopyTimeout)
		defer cancel()
		rt.replicate(ctx, digest, src, rt.met.replicationWrite)
	}()
}

// replicate copies digest from src to every one of its R ring targets
// that lacks it, counting each landed copy with record.
func (rt *Router) replicate(ctx context.Context, digest, src string, record func(backend string)) {
	for _, target := range rt.ringSequence(digest, rt.replication) {
		if target == src || ctx.Err() != nil {
			continue
		}
		if rt.containerAt(ctx, target, digest) {
			continue
		}
		if rt.copyContainer(ctx, digest, src, target) {
			record(target)
		}
	}
}

// kickSweep requests an anti-entropy sweep without blocking; a kick
// while one is pending coalesces into it.
func (rt *Router) kickSweep() {
	select {
	case rt.sweepKick <- struct{}{}:
	default:
	}
}

// sweepLoop runs anti-entropy sweeps on membership kicks and (when an
// interval is configured) on a timer.
func (rt *Router) sweepLoop() {
	defer close(rt.sweepDone)
	var tick <-chan time.Time
	if rt.aeInterval > 0 {
		t := time.NewTicker(rt.aeInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-rt.sweepStop:
			return
		case <-rt.sweepKick:
		case <-tick:
		}
		rt.SweepOnce(context.Background())
	}
}

// SweepOnce runs one anti-entropy pass: it lists every tracked
// backend's container inventory — including leaving nodes, whose drain
// grace exists exactly so their data can be pulled before they vanish —
// and copies each under-replicated digest to the ring targets that lack
// it. Safe to call directly (tests, debugging); the sweep loop calls it
// on membership changes.
func (rt *Router) SweepOnce(ctx context.Context) {
	holders := map[string][]string{}
	for _, src := range rt.poller.Backends() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			backendURL(src)+api.PathContainers, nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		var inv struct {
			Digests []string `json:"digests"`
		}
		derr := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&inv)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil {
			continue
		}
		for _, d := range inv.Digests {
			if store.ValidDigest(d) {
				holders[d] = append(holders[d], src)
			}
		}
	}
	for digest, srcs := range holders {
		if ctx.Err() != nil {
			return
		}
		has := make(map[string]bool, len(srcs))
		for _, s := range srcs {
			has[s] = true
		}
		for _, target := range rt.ringSequence(digest, rt.replication) {
			if has[target] {
				continue
			}
			for _, src := range srcs {
				if rt.copyContainer(ctx, digest, src, target) {
					rt.met.replicationRepair(target)
					break
				}
			}
		}
	}
}

// etagDigest extracts the container digest a response's ETag announces
// (header on buffered responses, trailer on streamed ones; the body is
// drained by the time callers ask). "" when absent or not a digest.
func etagDigest(resp *http.Response) string {
	etag := resp.Header.Get("Etag")
	if etag == "" {
		etag = resp.Trailer.Get("Etag")
	}
	d := strings.Trim(etag, `"`)
	if store.ValidDigest(d) {
		return d
	}
	return ""
}

// retryAfterFill re-issues the request against the just-filled backend.
// served=false means the retry still failed and the caller should keep
// failing over.
func (rt *Router) retryAfterFill(w http.ResponseWriter, r *http.Request, endpoint, backend string, body []byte, capture bool) (*cacheEntry, bool) {
	tr := obs.FromContext(r.Context())
	attempt := time.Now()
	req, err := rt.buildRequest(r, backend, bytes.NewReader(body), int64(len(body)))
	if err != nil {
		return nil, false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, false
	}
	tr.Observe("upstream", time.Since(attempt))
	rt.met.forward(backend, endpoint)
	if retryable(resp.StatusCode) || resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, false
	}
	if capture && resp.StatusCode == http.StatusOK {
		return rt.relayCaptured(w, tr, resp, backend, endpoint), true
	}
	rt.relay(w, tr, resp, backend, endpoint)
	return nil, true
}

// relayCaptured relays a successful backend response while buffering it
// for reuse. Responses within the entry limit are read fully before the
// first client byte (so a shared entry is always complete); larger ones
// fall back to pure streaming and are not shared. Because the body is
// fully read before headers go out, backend trailers (the ETag on
// streaming decompress responses) are promoted to plain headers — they
// reach the client earlier and travel with the cached entry.
func (rt *Router) relayCaptured(w http.ResponseWriter, tr *obs.Trace, resp *http.Response, backend, endpoint string) *cacheEntry {
	defer resp.Body.Close()
	tr.MergeServerTiming("be-", resp.Header.Get("Server-Timing"))
	sp := tr.StartSpan("relay")
	buf, err := io.ReadAll(io.LimitReader(resp.Body, rt.entryLimit+1))
	if err != nil {
		sp.End()
		// The backend died mid-response. The client must see a broken
		// transfer, not a silently truncated body: headers have not been
		// written yet, so answer 502 outright.
		rt.met.request(endpoint, http.StatusBadGateway)
		rt.writeError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", backend, err))
		return nil
	}
	if int64(len(buf)) > rt.entryLimit {
		// Too large to share: stream the prefix plus the rest through.
		copyHeaders(w.Header(), resp.Header)
		w.Header().Set(api.HeaderBackend, backend)
		w.WriteHeader(resp.StatusCode)
		w.Write(buf)
		io.CopyBuffer(w, resp.Body, make([]byte, 256<<10))
		sp.End()
		tr.MergeServerTiming("be-", resp.Trailer.Get("Server-Timing"))
		if d := etagDigest(resp); d != "" {
			rt.noteContainer(d, backend)
		}
		rt.met.request(endpoint, resp.StatusCode)
		return nil
	}
	// The body is fully read, so the backend's trailers — including its
	// Server-Timing — are in before the first client byte goes out.
	tr.MergeServerTiming("be-", resp.Trailer.Get("Server-Timing"))
	if d := etagDigest(resp); d != "" {
		// The backend just settled (or confirmed) a container: make sure
		// its replicas exist.
		rt.noteContainer(d, backend)
	}
	h := make(http.Header, 8)
	copyHeaders(h, resp.Header)
	copyHeaders(h, resp.Trailer)
	entry := &cacheEntry{status: resp.StatusCode, header: h, body: buf, backend: backend}
	copyHeaders(w.Header(), resp.Header)
	copyHeaders(w.Header(), resp.Trailer)
	w.Header().Set(api.HeaderBackend, backend)
	w.WriteHeader(resp.StatusCode)
	w.Write(buf)
	sp.End()
	rt.met.request(endpoint, resp.StatusCode)
	return entry
}

// forwardStream forwards a non-replayable stream in one attempt: head
// holds the already-buffered prefix, the rest of the client body is
// piped through.
func (rt *Router) forwardStream(w http.ResponseWriter, r *http.Request, endpoint string, head []byte) {
	backend := rt.pickStreaming()
	// The client may still be uploading while the backend's response
	// streams back; without full duplex Go's HTTP/1 server discards
	// still-unread request bytes at the first response flush.
	http.NewResponseController(w).EnableFullDuplex()
	req, err := rt.buildRequest(r, backend, io.MultiReader(bytes.NewReader(head), r.Body), -1)
	if err != nil {
		rt.met.request(endpoint, http.StatusInternalServerError)
		rt.writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		// Only blame the backend when the client side is still live: a
		// Do error here can equally be the client's own aborted upload,
		// and marking healthy backends dead for that lets misbehaving
		// clients knock nodes out of rotation.
		if r.Context().Err() == nil {
			rt.poller.MarkDead(backend)
			rt.met.failover(backend)
		}
		rt.met.request(endpoint, http.StatusBadGateway)
		rt.writeError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", backend, err))
		return
	}
	rt.met.forward(backend, endpoint)
	rt.relay(w, obs.FromContext(r.Context()), resp, backend, endpoint)
}

// buildRequest clones the inbound request toward a backend.
func (rt *Router) buildRequest(r *http.Request, backend string, body io.Reader, length int64) (*http.Request, error) {
	u := backendURL(backend) + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, body)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	req.Header.Del("Host")
	if t := obs.FromContext(r.Context()); t != nil {
		// Propagate the router's trace so the backend's spans join it,
		// and its logs/ring carry the same request ID.
		req.Header.Set("Traceparent", t.Traceparent())
		req.Header.Set(api.HeaderRequestID, t.RequestID)
	}
	if length >= 0 {
		req.ContentLength = length
	}
	return req, nil
}

// relay streams a backend response to the client verbatim (headers,
// status, body), tagged with the serving backend. Announced backend
// trailers — the ETag a streaming compress/decompress response settles
// on after its last body byte — are re-announced and forwarded as
// trailers once the copy finishes.
func (rt *Router) relay(w http.ResponseWriter, tr *obs.Trace, resp *http.Response, backend, endpoint string) {
	defer resp.Body.Close()
	tr.MergeServerTiming("be-", resp.Header.Get("Server-Timing"))
	copyHeaders(w.Header(), resp.Header)
	w.Header().Set(api.HeaderBackend, backend)
	tkeys := make([]string, 0, len(resp.Trailer))
	for k := range resp.Trailer {
		// Trace-owned trailers are merged into the router's own trace,
		// not relayed verbatim (see hopByHop).
		if !hopByHop[k] {
			tkeys = append(tkeys, k)
		}
	}
	if len(tkeys) > 0 {
		sort.Strings(tkeys)
		// Add, not Set: the tracing middleware already declared its own
		// Server-Timing trailer.
		w.Header().Add("Trailer", strings.Join(tkeys, ", "))
	}
	w.WriteHeader(resp.StatusCode)
	sp := tr.StartSpan("relay")
	io.CopyBuffer(w, resp.Body, make([]byte, 256<<10))
	sp.End()
	// resp.Trailer is populated now that the body is drained.
	tr.MergeServerTiming("be-", resp.Trailer.Get("Server-Timing"))
	for _, k := range tkeys {
		for _, v := range resp.Trailer.Values(k) {
			w.Header().Add(k, v)
		}
	}
	if resp.StatusCode == http.StatusOK {
		if d := etagDigest(resp); d != "" {
			// A streamed compress/decompress settled on a container digest:
			// kick its replica fan-out.
			rt.noteContainer(d, backend)
		}
	}
	rt.met.request(endpoint, resp.StatusCode)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	for _, b := range rt.Backends() {
		if rt.poller.Routable(b) {
			io.WriteString(w, "ok\n")
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	io.WriteString(w, "no routable backends\n")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, rt.met.expose())
}

// handleLimits aggregates GET /v1/limits across the fleet: every
// routable backend's live QoS state, fetched in sequence (the fleet is
// small and the endpoint cheap), plus the summed budget. Backends that
// fail to answer are simply absent — a partial view beats a 502 when
// one node is mid-restart.
func (rt *Router) handleLimits(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeError(w, http.StatusMethodNotAllowed,
			&api.Error{Code: api.CodeBadRequest, Message: "method not allowed"})
		return
	}
	fl := api.FleetLimits{Backends: map[string]api.Limits{}}
	for _, b := range rt.Backends() {
		if !rt.poller.Routable(b) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			backendURL(b)+api.PathLimits, nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		var lim api.Limits
		derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&lim)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil {
			continue
		}
		fl.Backends[b] = lim
		fl.BudgetBytes += lim.BudgetBytes
	}
	if len(fl.Backends) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable,
			&api.Error{Code: api.CodeNoBackend, Message: "no routable backend answered /v1/limits"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fl)
}

// writeError renders err as the shared JSON envelope, stamping the
// request ID the tracing middleware already placed on the response.
func (rt *Router) writeError(w http.ResponseWriter, status int, err error) {
	e := api.Wrap(status, err)
	if e.RequestID == "" {
		e.RequestID = w.Header().Get(api.HeaderRequestID)
	}
	api.WriteError(w, e)
}

// routerMetrics counts the router's own traffic on the shared obs
// registry; backend health and response-cache gauges are sampled live at
// exposition time. The szrouter_* family names and label orders predate
// the registry and are scrape-contract for CI and dashboards — only the
// emitter moved.
type routerMetrics struct {
	reg           *obs.Registry
	forwards      *obs.Vec
	failovers     *obs.Vec
	requests      *obs.Vec
	coalesces     *obs.Vec
	hitBytes      *obs.Vec
	fills         *obs.Vec
	tenants       *obs.Vec
	replWrites    *obs.Vec
	replRepairs   *obs.Vec
	replFailovers *obs.Vec
	stages        *obs.HistVec
}

func newRouterMetrics(p *Poller, cache *respCache) *routerMetrics {
	r := obs.NewRegistry()
	m := &routerMetrics{
		reg: r,
		forwards: r.Counter("szrouter_forwards_total",
			"Attempts forwarded, by backend and endpoint.", "backend", "endpoint"),
		failovers: r.Counter("szrouter_failovers_total",
			"Attempts diverted away from a backend (shed or unreachable).", "backend"),
		requests: r.Counter("szrouter_requests_total",
			"Client requests by endpoint and final status.", "endpoint", "status"),
		coalesces: r.Counter("szrouter_coalesced_total",
			"Requests served off an identical in-flight request's response.", "endpoint"),
		hitBytes: r.Counter("szrouter_cache_hit_bytes_total",
			"Body bytes served from the router response cache."),
		fills: r.Counter("szrouter_peer_fills_total",
			"Containers copied into a backend's store from a peer on a ring-affinity miss.", "backend"),
	}
	// Backend gauges read the poller's live membership at exposition
	// time, so added and removed nodes appear and vanish with the set.
	r.Func("szrouter_backend_state", "Backend health (0 unknown, 1 healthy, 2 draining, 3 dead, 4 warming).",
		"gauge", []string{"backend"}, func(emit func(float64, ...string)) {
			for _, bk := range p.Backends() {
				emit(float64(p.Health(bk).State), bk)
			}
		})
	r.Func("szrouter_backend_inflight_bytes", "Last-scraped reserved budget per backend.",
		"gauge", []string{"backend"}, func(emit func(float64, ...string)) {
			for _, bk := range p.Backends() {
				emit(float64(p.Health(bk).InflightBytes), bk)
			}
		})
	if cache != nil {
		stat := func(pick func(bytes, entries, hits, misses, evictions int64) int64) func(func(float64, ...string)) {
			return func(emit func(float64, ...string)) {
				emit(float64(pick(cache.stats())))
			}
		}
		r.Func("szrouter_cache_hits_total", "Responses served from the router cache.",
			"counter", nil, stat(func(_, _, h, _, _ int64) int64 { return h }))
		r.Func("szrouter_cache_misses_total", "Cacheable requests that missed the cache.",
			"counter", nil, stat(func(_, _, _, mi, _ int64) int64 { return mi }))
		r.Func("szrouter_cache_evictions_total", "Entries evicted to hold the byte budget.",
			"counter", nil, stat(func(_, _, _, _, ev int64) int64 { return ev }))
		r.Func("szrouter_cache_bytes", "Bytes currently held by the response cache.",
			"gauge", nil, stat(func(by, _, _, _, _ int64) int64 { return by }))
		r.Func("szrouter_cache_entries", "Entries currently held by the response cache.",
			"gauge", nil, stat(func(_, en, _, _, _ int64) int64 { return en }))
	}
	m.stages = r.Histogram("szrouter_stage_seconds",
		"Per-stage latency from request traces, by endpoint and stage.",
		obs.StageBuckets, "endpoint", "stage")
	// Registered after every pre-existing family so their exposition
	// positions hold (scrape-compat); malformed credentials count under
	// the fixed "invalid" tenant.
	m.tenants = r.Counter("szrouter_tenant_requests_total",
		"Client requests by resolved tenant and final status.", "tenant", "status")
	m.replWrites = r.Counter("szrouter_replication_writes_total",
		"Replica copies landed by the write-path fan-out, by destination backend.", "backend")
	m.replRepairs = r.Counter("szrouter_replication_repairs_total",
		"Replica copies landed by the anti-entropy sweep, by destination backend.", "backend")
	m.replFailovers = r.Counter("szrouter_replication_failovers_total",
		"Digest reads served by a non-owner replica, by serving backend.", "backend")
	obs.RegisterRuntime(r, "szrouter")
	return m
}

func (m *routerMetrics) replicationWrite(backend string) { m.replWrites.Inc(backend) }

func (m *routerMetrics) replicationRepair(backend string) { m.replRepairs.Inc(backend) }

func (m *routerMetrics) replicationFailover(backend string) { m.replFailovers.Inc(backend) }

func (m *routerMetrics) tenantRequest(tenant string, status int) {
	m.tenants.Inc(tenant, strconv.Itoa(status))
}

func (m *routerMetrics) coalesced(endpoint string) { m.coalesces.Inc(endpoint) }

func (m *routerMetrics) cacheHitBytes(n int64) { m.hitBytes.Add(float64(n)) }

func (m *routerMetrics) peerFill(backend string) { m.fills.Inc(backend) }

func (m *routerMetrics) forward(backend, endpoint string) { m.forwards.Inc(backend, endpoint) }

func (m *routerMetrics) failover(backend string) { m.failovers.Inc(backend) }

func (m *routerMetrics) request(endpoint string, status int) {
	m.requests.Inc(endpoint, strconv.Itoa(status))
}

// recordStages feeds a finished trace's spans into the per-stage
// histograms; aggregated spans observe their summed duration once.
func (m *routerMetrics) recordStages(t *obs.Trace) {
	if t == nil {
		return
	}
	for _, sp := range t.Spans() {
		m.stages.ObserveDuration(sp.Dur, t.Endpoint, sp.Name)
	}
}

func (m *routerMetrics) expose() string { return m.reg.Expose() }
