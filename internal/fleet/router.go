package fleet

// The routing proxy. One Router fronts a set of szd backends:
//
//   - Replayable bodies (those that fit the buffer limit) are routed by
//     stream identity: the SHA-256 of the body picks the owning ring
//     node, and on 429/503/connect failure the request replays against
//     the next ring node in sequence. Identical inputs always land on
//     the same healthy backend, which keeps per-node caches hot.
//   - Unbounded streaming bodies cannot be replayed, so they skip the
//     ring: the router picks the least-loaded routable backend
//     (round-robin among ties) and forwards in a single attempt.
//   - Backend rejections that exhaust every candidate are relayed to
//     the client unchanged — status, body, and Retry-After header — so
//     client backoff works exactly as it does against a single daemon.
//
// The router adds X-Sz-Backend to every response naming the backend
// that served (or last rejected) it, and exposes szrouter_* metrics:
// per-backend forwards, failovers, and request counts by status.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// defaultBufferLimit bounds the body bytes buffered to keep a
	// request replayable (hash-routed, retryable). Matches the szd
	// client's default.
	defaultBufferLimit = 4 << 20
	// relayErrBodyLimit bounds how much of a rejection body is stored
	// for relaying after every candidate failed.
	relayErrBodyLimit = 4 << 10
	// defaultCacheBytes is the response cache's byte budget.
	defaultCacheBytes = 64 << 20
	// defaultCacheEntryBytes caps a single cacheable response. It is
	// deliberately larger than the request buffer limit: decompress and
	// slab responses expand their input.
	defaultCacheEntryBytes = 16 << 20
)

// cacheableEndpoint marks the endpoints whose responses are pure
// functions of (input bytes, parameters) and cheap to replay: the
// decode-side family. Compression is deterministic too, but its inputs
// are raw fields — large, rarely repeated — so caching it would only
// churn the budget.
var cacheableEndpoint = map[string]bool{
	"decompress": true,
	"inspect":    true,
	"slabs":      true,
	"slab":       true,
}

// Config configures a Router.
type Config struct {
	// Backends are the szd nodes ("host:port" or full URLs). Required.
	Backends []string
	// Replicas is the ring vnode count per backend (0 = 128).
	Replicas int
	// BufferLimit is the replayable-body cap in bytes (0 = 4 MiB).
	BufferLimit int
	// PollInterval is the health-poll cadence (0 = 2s).
	PollInterval time.Duration
	// HTTPClient overrides the proxy transport (nil = no-timeout client;
	// streams may legitimately run for minutes).
	HTTPClient *http.Client
	// CacheBytes is the response-cache byte budget for the decode-side
	// endpoints (decompress, slab, slabs, inspect). 0 means the 64 MiB
	// default; negative disables the cache AND in-flight coalescing.
	CacheBytes int64
	// CacheEntryBytes caps a single cached (or coalesced) response;
	// larger responses stream through uncached. 0 means the 16 MiB
	// default.
	CacheEntryBytes int64
}

// Router is the fleet-mode HTTP proxy.
type Router struct {
	ring        *Ring
	poller      *Poller
	backends    []string
	client      *http.Client
	bufferLimit int
	rr          atomic.Uint64
	met         *routerMetrics
	mux         *http.ServeMux

	// cache and flights implement the zero-recompute path: cache serves
	// repeated identical requests without a backend round trip, flights
	// collapses concurrent identical requests onto one backend call.
	// Both are nil when caching is disabled.
	cache      *respCache
	flights    *flightGroup
	entryLimit int64
}

// New builds a Router; call Start to begin health polling.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	seen := map[string]bool{}
	for _, b := range cfg.Backends {
		if b == "" || seen[b] {
			return nil, fmt.Errorf("fleet: empty or duplicate backend %q", b)
		}
		seen[b] = true
	}
	limit := cfg.BufferLimit
	if limit <= 0 {
		limit = defaultBufferLimit
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	rt := &Router{
		ring:        NewRing(cfg.Replicas, cfg.Backends...),
		poller:      NewPoller(cfg.Backends, cfg.PollInterval, nil),
		backends:    append([]string(nil), cfg.Backends...),
		client:      hc,
		bufferLimit: limit,
		met:         newRouterMetrics(),
		mux:         http.NewServeMux(),
	}
	if cfg.CacheBytes >= 0 {
		cacheBytes := cfg.CacheBytes
		if cacheBytes == 0 {
			cacheBytes = defaultCacheBytes
		}
		rt.entryLimit = cfg.CacheEntryBytes
		if rt.entryLimit <= 0 {
			rt.entryLimit = defaultCacheEntryBytes
		}
		rt.cache = newRespCache(cacheBytes)
		rt.flights = newFlightGroup()
	}
	rt.mux.HandleFunc("/v1/compress", rt.proxyBody("compress"))
	rt.mux.HandleFunc("/v1/decompress", rt.proxyBody("decompress"))
	rt.mux.HandleFunc("/v1/inspect", rt.proxyBody("inspect"))
	rt.mux.HandleFunc("/v1/slabs", rt.proxyBody("slabs"))
	rt.mux.HandleFunc("/v1/slab/", rt.proxyBody("slab"))
	rt.mux.HandleFunc("/v1/container/", rt.proxyBody("container"))
	rt.mux.HandleFunc("/v1/codecs", rt.proxyBodyless("codecs"))
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start runs an initial synchronous health poll and begins the poll
// loop.
func (rt *Router) Start() { rt.poller.Start() }

// Stop halts health polling.
func (rt *Router) Stop() { rt.poller.Stop() }

// Poller exposes the health tracker (for status pages and tests).
func (rt *Router) Poller() *Poller { return rt.poller }

// hopByHop are the connection-scoped headers a proxy must not forward.
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[k] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// candidates orders the ring sequence for key by health: routable nodes
// that are not actively shedding first, then routable-but-shedding, then
// everything else (draining/dead — still tried last, because poller
// state may be stale and a request in hand beats a guaranteed 503).
// Ring order is preserved within each tier so the owner stays first.
func (rt *Router) candidates(key string) []string {
	seq := rt.ring.Sequence(key, len(rt.backends))
	// Snapshot each backend's tier once: querying the poller inside the
	// comparator would take its lock O(n log n) times and, worse, a
	// concurrent probe could flip a state mid-sort and break the
	// comparator's consistency.
	tier := make(map[string]int, len(seq))
	for _, b := range seq {
		h := rt.poller.Health(b)
		switch {
		case (h.State == StateHealthy || h.State == StateUnknown) && !h.ShedRecently:
			tier[b] = 0
		case h.State == StateHealthy || h.State == StateUnknown:
			tier[b] = 1
		default:
			tier[b] = 2
		}
	}
	sort.SliceStable(seq, func(i, j int) bool { return tier[seq[i]] < tier[seq[j]] })
	return seq
}

// pickStreaming chooses the backend for a non-replayable stream: the
// least-loaded (by reserved in-flight bytes) routable backend, with a
// rotating tie-break so equally-idle nodes share the traffic.
func (rt *Router) pickStreaming() string {
	start := int(rt.rr.Add(1))
	best, bestLoad := "", int64(-1)
	for tier := 0; tier < 2 && best == ""; tier++ {
		for i := range rt.backends {
			b := rt.backends[(start+i)%len(rt.backends)]
			h := rt.poller.Health(b)
			routable := h.State == StateHealthy || h.State == StateUnknown
			if tier == 0 && (!routable || h.ShedRecently) {
				continue
			}
			if tier == 1 && !routable {
				continue
			}
			if best == "" || h.InflightBytes < bestLoad {
				best, bestLoad = b, h.InflightBytes
			}
		}
	}
	if best == "" {
		best = rt.backends[start%len(rt.backends)]
	}
	return best
}

// storedResp is a rejection kept for relaying if every candidate fails.
type storedResp struct {
	status  int
	header  http.Header
	body    []byte
	backend string
}

// storeResp drains (bounded) and closes a shed response so its
// connection is reusable and its status can be relayed later.
func storeResp(resp *http.Response, backend string) *storedResp {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, relayErrBodyLimit))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	h := make(http.Header, 4)
	copyHeaders(h, resp.Header)
	// The stored body is truncated to the relay limit; the backend's
	// Content-Length would then overstate what gets written and corrupt
	// the relayed response mid-stream.
	h.Del("Content-Length")
	return &storedResp{status: resp.StatusCode, header: h, body: body, backend: backend}
}

func (sr *storedResp) write(w http.ResponseWriter) {
	// Retry-After travels in sr.header verbatim: the backend's own
	// backoff hint must reach the client unchanged.
	copyHeaders(w.Header(), sr.header)
	w.Header().Set("X-Sz-Backend", sr.backend)
	w.WriteHeader(sr.status)
	w.Write(sr.body)
}

// retryable reports whether a backend status means "try the next node":
// the daemon shed (429) or is draining (503). Anything else — success or
// a request-shaped error like 400/413 — is the client's answer.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// requestDigestParam extracts a content-address reference from the
// request: the ?digest= query value, the X-Sz-Digest header, or (for
// the container endpoint) the path element. The backend validates the
// shape; the router only needs it as a ring key.
func requestDigestParam(r *http.Request, endpoint string) string {
	if d := r.URL.Query().Get("digest"); d != "" {
		return d
	}
	if d := r.Header.Get("X-Sz-Digest"); d != "" {
		return d
	}
	if endpoint == "container" {
		return strings.TrimPrefix(r.URL.Path, "/v1/container/")
	}
	return ""
}

// proxyBody handles the body-carrying endpoints. Bodies within the
// buffer limit are hashed and routed with failover — consulting the
// response cache and coalescing identical in-flight requests on the
// cacheable endpoints; larger bodies stream to a single picked backend.
// Digest-referenced requests (no body, content address in the query,
// header, or container path) ring-route by the digest itself, which is
// exactly where earlier body-carrying reads of the same container
// landed: the backend that stored it on disk.
func (rt *Router) proxyBody(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		head, err := io.ReadAll(io.LimitReader(r.Body, int64(rt.bufferLimit)+1))
		if err != nil {
			rt.met.request(endpoint, http.StatusBadRequest)
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
			return
		}
		if len(head) > rt.bufferLimit {
			rt.forwardStream(w, r, endpoint, head)
			return
		}
		key := requestDigestParam(r, endpoint)
		digestRouted := key != "" && len(head) == 0
		if !digestRouted {
			// Body path: the body hash IS the container digest for the
			// decode-side endpoints, so both paths share ring affinity.
			sum := sha256.Sum256(head)
			key = hex.EncodeToString(sum[:])
		}
		fillDigest := ""
		if digestRouted {
			fillDigest = key
		}
		if rt.cache != nil && cacheableEndpoint[endpoint] {
			rt.serveCacheable(w, r, endpoint, key, fillDigest, head)
			return
		}
		rt.forwardReplayable(w, r, endpoint, rt.candidates(key), fillDigest, head)
	}
}

// requestIdentity builds the cache/coalescing key: the endpoint, path,
// canonicalized query, the X-Sz-* parameter headers, and the body
// digest. Two requests with equal identity are guaranteed the same
// response bytes (the decode endpoints are pure functions of input and
// parameters). X-Sz-Content-Length is excluded — it is an admission
// hint, not a parameter, and would only split the cache.
func requestIdentity(endpoint string, r *http.Request, digest string) string {
	var b strings.Builder
	b.WriteString(endpoint)
	b.WriteByte('|')
	b.WriteString(r.URL.Path)
	b.WriteByte('|')
	b.WriteString(r.URL.Query().Encode()) // Encode sorts keys
	b.WriteByte('|')
	hkeys := make([]string, 0, 4)
	for k := range r.Header {
		if strings.HasPrefix(k, "X-Sz-") && k != "X-Sz-Content-Length" {
			hkeys = append(hkeys, k)
		}
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strings.Join(r.Header.Values(k), ","))
		b.WriteByte('&')
	}
	b.WriteByte('|')
	b.WriteString(digest)
	return b.String()
}

// notModifiedFromCache answers a conditional request whose If-None-Match
// covers the cached entry's ETag: content-addressed responses are
// immutable, so a match is always a 304 — no backend, no body bytes.
func (rt *Router) notModifiedFromCache(w http.ResponseWriter, r *http.Request, endpoint string, e *cacheEntry, mode string) bool {
	etag := e.header.Get("Etag")
	if etag == "" || !ifNoneMatchHas(r.Header.Get("If-None-Match"), etag) {
		return false
	}
	w.Header().Set("Etag", etag)
	w.Header().Set("X-Sz-Backend", e.backend)
	w.Header().Set("X-Sz-Cache", mode)
	w.WriteHeader(http.StatusNotModified)
	rt.met.request(endpoint, http.StatusNotModified)
	return true
}

// ifNoneMatchHas reports whether an If-None-Match field value matches
// etag (comma list, wildcard, weak prefix tolerated).
func ifNoneMatchHas(inm, etag string) bool {
	if inm == "" {
		return false
	}
	for _, part := range strings.Split(inm, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// serveCacheable answers a replayable decode-side request from the
// response cache when possible, coalesces it onto an identical in-flight
// request otherwise, and only then forwards — capturing a shareable
// response for both layers on the way back.
func (rt *Router) serveCacheable(w http.ResponseWriter, r *http.Request, endpoint, key, fillDigest string, head []byte) {
	id := requestIdentity(endpoint, r, key)
	if e := rt.cache.get(id); e != nil {
		if rt.notModifiedFromCache(w, r, endpoint, e, "hit") {
			return
		}
		rt.met.cacheHitBytes(int64(len(e.body)))
		e.writeTo(w, "hit")
		rt.met.request(endpoint, e.status)
		return
	}
	c, leader := rt.flights.join(id)
	if leader {
		var entry *cacheEntry
		// leave runs deferred so followers are released even if the
		// forward path fails in an unexpected way.
		defer func() { rt.flights.leave(id, c, entry) }()
		entry = rt.forwardCaptured(w, r, endpoint, rt.candidates(key), fillDigest, head)
		if entry != nil && entry.status == http.StatusOK {
			rt.cache.put(id, entry)
		}
		return
	}
	select {
	case <-c.done:
	case <-r.Context().Done():
		return // client gave up while waiting on the leader
	}
	if e := c.entry; e != nil {
		if rt.notModifiedFromCache(w, r, endpoint, e, "coalesced") {
			return
		}
		rt.met.coalesced(endpoint)
		e.writeTo(w, "coalesced")
		rt.met.request(endpoint, e.status)
		return
	}
	// The leader's response was not shareable (oversized or an internal
	// error); fall back to an ordinary forward of our own.
	rt.forwardReplayable(w, r, endpoint, rt.candidates(key), fillDigest, head)
}

// proxyBodyless handles GET endpoints with no body (the codec listing):
// any routable backend can answer, with failover through the rest.
func (rt *Router) proxyBodyless(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := int(rt.rr.Add(1))
		rotated := make([]string, len(rt.backends))
		routable := make(map[string]bool, len(rt.backends))
		for i, b := range rt.backends {
			rotated[i] = rt.backends[(start+i)%len(rt.backends)]
			routable[b] = rt.poller.Routable(b)
		}
		sort.SliceStable(rotated, func(i, j int) bool {
			return routable[rotated[i]] && !routable[rotated[j]]
		})
		rt.forwardReplayable(w, r, endpoint, rotated, "", nil)
	}
}

// forwardReplayable tries candidates in order with a fresh body per
// attempt, failing over on shed statuses and transport errors; the last
// rejection is relayed when no candidate accepts.
func (rt *Router) forwardReplayable(w http.ResponseWriter, r *http.Request, endpoint string, cands []string, fillDigest string, body []byte) {
	rt.forward(w, r, endpoint, cands, fillDigest, body, false)
}

// forwardCaptured is forwardReplayable for the cacheable path: a
// successful response within the entry limit is buffered, served to the
// client, and returned for the cache and any coalesced followers. A nil
// return means the response was served but is not shareable (oversized,
// a relayed rejection, or an internal error).
func (rt *Router) forwardCaptured(w http.ResponseWriter, r *http.Request, endpoint string, cands []string, fillDigest string, body []byte) *cacheEntry {
	return rt.forward(w, r, endpoint, cands, fillDigest, body, true)
}

func (rt *Router) forward(w http.ResponseWriter, r *http.Request, endpoint string, cands []string, fillDigest string, body []byte, capture bool) *cacheEntry {
	var last *storedResp
	fillTried := false
	for _, backend := range cands {
		if r.Context().Err() != nil {
			return nil // client went away; stop burning backends
		}
		req, err := rt.buildRequest(r, backend, bytes.NewReader(body), int64(len(body)))
		if err != nil {
			rt.met.request(endpoint, http.StatusInternalServerError)
			writeJSONError(w, http.StatusInternalServerError, err)
			return nil
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				return nil // the client aborted; the backend is not at fault
			}
			rt.poller.MarkDead(backend)
			rt.met.failover(backend)
			continue
		}
		rt.met.forward(backend, endpoint)
		if retryable(resp.StatusCode) {
			last = storeResp(resp, backend)
			rt.met.failover(backend)
			continue
		}
		if fillDigest != "" && resp.StatusCode == http.StatusNotFound {
			// A digest-referenced read missed this backend's store: a
			// ring-affinity miss (the container was compressed or first
			// read elsewhere, or the node restarted with an empty disk).
			// Keep the 404 for relaying, then try to repair the owner by
			// copying the container over from a peer that has it, and
			// retry here. Fill runs once per request; if no peer has the
			// container either, the remaining candidates' own stores are
			// still probed directly.
			last = storeResp(resp, backend)
			if !fillTried {
				fillTried = true
				if rt.peerFill(r, fillDigest, backend, cands) {
					if entry, served := rt.retryAfterFill(w, r, endpoint, backend, body, capture); served {
						return entry
					}
				}
			}
			continue
		}
		if capture && resp.StatusCode == http.StatusOK {
			return rt.relayCaptured(w, resp, backend, endpoint)
		}
		rt.relay(w, resp, backend, endpoint)
		return nil
	}
	if last != nil {
		last.write(w)
		rt.met.request(endpoint, last.status)
		return nil
	}
	rt.met.request(endpoint, http.StatusBadGateway)
	writeJSONError(w, http.StatusBadGateway, errors.New("no reachable backend"))
	return nil
}

// peerFill repairs a ring-affinity miss: when target's store lacks a
// container some other node holds, the router copies it over through
// the content-addressed surface (GET /v1/container from a peer, PUT to
// the target, digest-verified on arrival). The copy streams through —
// the router never buffers the container.
func (rt *Router) peerFill(r *http.Request, digest, target string, cands []string) bool {
	for _, peer := range cands {
		if peer == target || r.Context().Err() != nil {
			continue
		}
		greq, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			backendURL(peer)+"/v1/container/"+digest, nil)
		if err != nil {
			return false
		}
		gresp, err := rt.client.Do(greq)
		if err != nil {
			continue
		}
		if gresp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, gresp.Body)
			gresp.Body.Close()
			continue
		}
		preq, err := http.NewRequestWithContext(r.Context(), http.MethodPut,
			backendURL(target)+"/v1/container/"+digest, gresp.Body)
		if err != nil {
			gresp.Body.Close()
			return false
		}
		if gresp.ContentLength >= 0 {
			preq.ContentLength = gresp.ContentLength
		}
		presp, err := rt.client.Do(preq)
		gresp.Body.Close()
		if err != nil {
			continue
		}
		io.Copy(io.Discard, presp.Body)
		presp.Body.Close()
		if presp.StatusCode == http.StatusNoContent {
			rt.met.peerFill(target)
			return true
		}
	}
	return false
}

// retryAfterFill re-issues the request against the just-filled backend.
// served=false means the retry still failed and the caller should keep
// failing over.
func (rt *Router) retryAfterFill(w http.ResponseWriter, r *http.Request, endpoint, backend string, body []byte, capture bool) (*cacheEntry, bool) {
	req, err := rt.buildRequest(r, backend, bytes.NewReader(body), int64(len(body)))
	if err != nil {
		return nil, false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, false
	}
	rt.met.forward(backend, endpoint)
	if retryable(resp.StatusCode) || resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, false
	}
	if capture && resp.StatusCode == http.StatusOK {
		return rt.relayCaptured(w, resp, backend, endpoint), true
	}
	rt.relay(w, resp, backend, endpoint)
	return nil, true
}

// relayCaptured relays a successful backend response while buffering it
// for reuse. Responses within the entry limit are read fully before the
// first client byte (so a shared entry is always complete); larger ones
// fall back to pure streaming and are not shared. Because the body is
// fully read before headers go out, backend trailers (the ETag on
// streaming decompress responses) are promoted to plain headers — they
// reach the client earlier and travel with the cached entry.
func (rt *Router) relayCaptured(w http.ResponseWriter, resp *http.Response, backend, endpoint string) *cacheEntry {
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, rt.entryLimit+1))
	if err != nil {
		// The backend died mid-response. The client must see a broken
		// transfer, not a silently truncated body: headers have not been
		// written yet, so answer 502 outright.
		rt.met.request(endpoint, http.StatusBadGateway)
		writeJSONError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", backend, err))
		return nil
	}
	if int64(len(buf)) > rt.entryLimit {
		// Too large to share: stream the prefix plus the rest through.
		copyHeaders(w.Header(), resp.Header)
		w.Header().Set("X-Sz-Backend", backend)
		w.WriteHeader(resp.StatusCode)
		w.Write(buf)
		io.CopyBuffer(w, resp.Body, make([]byte, 256<<10))
		rt.met.request(endpoint, resp.StatusCode)
		return nil
	}
	h := make(http.Header, 8)
	copyHeaders(h, resp.Header)
	copyHeaders(h, resp.Trailer) // body fully read; trailers are in
	entry := &cacheEntry{status: resp.StatusCode, header: h, body: buf, backend: backend}
	copyHeaders(w.Header(), resp.Header)
	copyHeaders(w.Header(), resp.Trailer)
	w.Header().Set("X-Sz-Backend", backend)
	w.WriteHeader(resp.StatusCode)
	w.Write(buf)
	rt.met.request(endpoint, resp.StatusCode)
	return entry
}

// forwardStream forwards a non-replayable stream in one attempt: head
// holds the already-buffered prefix, the rest of the client body is
// piped through.
func (rt *Router) forwardStream(w http.ResponseWriter, r *http.Request, endpoint string, head []byte) {
	backend := rt.pickStreaming()
	// The client may still be uploading while the backend's response
	// streams back; without full duplex Go's HTTP/1 server discards
	// still-unread request bytes at the first response flush.
	http.NewResponseController(w).EnableFullDuplex()
	req, err := rt.buildRequest(r, backend, io.MultiReader(bytes.NewReader(head), r.Body), -1)
	if err != nil {
		rt.met.request(endpoint, http.StatusInternalServerError)
		writeJSONError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		// Only blame the backend when the client side is still live: a
		// Do error here can equally be the client's own aborted upload,
		// and marking healthy backends dead for that lets misbehaving
		// clients knock nodes out of rotation.
		if r.Context().Err() == nil {
			rt.poller.MarkDead(backend)
			rt.met.failover(backend)
		}
		rt.met.request(endpoint, http.StatusBadGateway)
		writeJSONError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", backend, err))
		return
	}
	rt.met.forward(backend, endpoint)
	rt.relay(w, resp, backend, endpoint)
}

// buildRequest clones the inbound request toward a backend.
func (rt *Router) buildRequest(r *http.Request, backend string, body io.Reader, length int64) (*http.Request, error) {
	u := backendURL(backend) + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, body)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	req.Header.Del("Host")
	if length >= 0 {
		req.ContentLength = length
	}
	return req, nil
}

// relay streams a backend response to the client verbatim (headers,
// status, body), tagged with the serving backend. Announced backend
// trailers — the ETag a streaming compress/decompress response settles
// on after its last body byte — are re-announced and forwarded as
// trailers once the copy finishes.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, backend, endpoint string) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.Header().Set("X-Sz-Backend", backend)
	tkeys := make([]string, 0, len(resp.Trailer))
	for k := range resp.Trailer {
		tkeys = append(tkeys, k)
	}
	if len(tkeys) > 0 {
		sort.Strings(tkeys)
		w.Header().Set("Trailer", strings.Join(tkeys, ", "))
	}
	w.WriteHeader(resp.StatusCode)
	io.CopyBuffer(w, resp.Body, make([]byte, 256<<10))
	// resp.Trailer is populated now that the body is drained.
	for _, k := range tkeys {
		for _, v := range resp.Trailer.Values(k) {
			w.Header().Add(k, v)
		}
	}
	rt.met.request(endpoint, resp.StatusCode)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	for _, b := range rt.backends {
		if rt.poller.Routable(b) {
			io.WriteString(w, "ok\n")
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	io.WriteString(w, "no routable backends\n")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, rt.met.expose(rt.backends, rt.poller))
	if rt.cache != nil {
		bytes, entries, hits, misses, evictions := rt.cache.stats()
		fmt.Fprintf(w, "# HELP szrouter_cache_hits_total Responses served from the router cache.\n"+
			"# TYPE szrouter_cache_hits_total counter\n"+
			"szrouter_cache_hits_total %d\n"+
			"# HELP szrouter_cache_misses_total Cacheable requests that missed the cache.\n"+
			"# TYPE szrouter_cache_misses_total counter\n"+
			"szrouter_cache_misses_total %d\n"+
			"# HELP szrouter_cache_evictions_total Entries evicted to hold the byte budget.\n"+
			"# TYPE szrouter_cache_evictions_total counter\n"+
			"szrouter_cache_evictions_total %d\n"+
			"# HELP szrouter_cache_bytes Bytes currently held by the response cache.\n"+
			"# TYPE szrouter_cache_bytes gauge\n"+
			"szrouter_cache_bytes %d\n"+
			"# HELP szrouter_cache_entries Entries currently held by the response cache.\n"+
			"# TYPE szrouter_cache_entries gauge\n"+
			"szrouter_cache_entries %d\n",
			hits, misses, evictions, bytes, entries)
	}
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
}

// routerMetrics counts the router's own traffic; backend health gauges
// are rendered live from the poller at exposition time.
type routerMetrics struct {
	mu        sync.Mutex
	forwards  map[[2]string]int64 // {backend, endpoint} -> attempts relayed
	failovers map[string]int64    // backend -> attempts diverted away
	requests  map[string]map[int]int64
	coalesces map[string]int64 // endpoint -> requests served off an in-flight twin
	fills     map[string]int64 // backend -> containers copied in from a peer

	hitBytes atomic.Int64 // body bytes served from the response cache
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{
		forwards:  map[[2]string]int64{},
		failovers: map[string]int64{},
		requests:  map[string]map[int]int64{},
		coalesces: map[string]int64{},
		fills:     map[string]int64{},
	}
}

func (m *routerMetrics) coalesced(endpoint string) {
	m.mu.Lock()
	m.coalesces[endpoint]++
	m.mu.Unlock()
}

func (m *routerMetrics) cacheHitBytes(n int64) { m.hitBytes.Add(n) }

func (m *routerMetrics) peerFill(backend string) {
	m.mu.Lock()
	m.fills[backend]++
	m.mu.Unlock()
}

func (m *routerMetrics) forward(backend, endpoint string) {
	m.mu.Lock()
	m.forwards[[2]string{backend, endpoint}]++
	m.mu.Unlock()
}

func (m *routerMetrics) failover(backend string) {
	m.mu.Lock()
	m.failovers[backend]++
	m.mu.Unlock()
}

func (m *routerMetrics) request(endpoint string, status int) {
	m.mu.Lock()
	if m.requests[endpoint] == nil {
		m.requests[endpoint] = map[int]int64{}
	}
	m.requests[endpoint][status]++
	m.mu.Unlock()
}

func (m *routerMetrics) expose(backends []string, p *Poller) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	b.WriteString("# HELP szrouter_forwards_total Attempts forwarded, by backend and endpoint.\n")
	b.WriteString("# TYPE szrouter_forwards_total counter\n")
	fkeys := make([][2]string, 0, len(m.forwards))
	for k := range m.forwards {
		fkeys = append(fkeys, k)
	}
	sort.Slice(fkeys, func(i, j int) bool {
		if fkeys[i][0] != fkeys[j][0] {
			return fkeys[i][0] < fkeys[j][0]
		}
		return fkeys[i][1] < fkeys[j][1]
	})
	for _, k := range fkeys {
		fmt.Fprintf(&b, "szrouter_forwards_total{backend=%q,endpoint=%q} %d\n", k[0], k[1], m.forwards[k])
	}

	b.WriteString("# HELP szrouter_failovers_total Attempts diverted away from a backend (shed or unreachable).\n")
	b.WriteString("# TYPE szrouter_failovers_total counter\n")
	bkeys := make([]string, 0, len(m.failovers))
	for k := range m.failovers {
		bkeys = append(bkeys, k)
	}
	sort.Strings(bkeys)
	for _, k := range bkeys {
		fmt.Fprintf(&b, "szrouter_failovers_total{backend=%q} %d\n", k, m.failovers[k])
	}

	b.WriteString("# HELP szrouter_requests_total Client requests by endpoint and final status.\n")
	b.WriteString("# TYPE szrouter_requests_total counter\n")
	eps := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		sts := make([]int, 0, len(m.requests[ep]))
		for st := range m.requests[ep] {
			sts = append(sts, st)
		}
		sort.Ints(sts)
		for _, st := range sts {
			fmt.Fprintf(&b, "szrouter_requests_total{endpoint=%q,status=\"%d\"} %d\n", ep, st, m.requests[ep][st])
		}
	}

	b.WriteString("# HELP szrouter_coalesced_total Requests served off an identical in-flight request's response.\n")
	b.WriteString("# TYPE szrouter_coalesced_total counter\n")
	ceps := make([]string, 0, len(m.coalesces))
	for ep := range m.coalesces {
		ceps = append(ceps, ep)
	}
	sort.Strings(ceps)
	for _, ep := range ceps {
		fmt.Fprintf(&b, "szrouter_coalesced_total{endpoint=%q} %d\n", ep, m.coalesces[ep])
	}

	b.WriteString("# HELP szrouter_cache_hit_bytes_total Body bytes served from the router response cache.\n")
	b.WriteString("# TYPE szrouter_cache_hit_bytes_total counter\n")
	fmt.Fprintf(&b, "szrouter_cache_hit_bytes_total %d\n", m.hitBytes.Load())

	b.WriteString("# HELP szrouter_peer_fills_total Containers copied into a backend's store from a peer on a ring-affinity miss.\n")
	b.WriteString("# TYPE szrouter_peer_fills_total counter\n")
	pkeys := make([]string, 0, len(m.fills))
	for k := range m.fills {
		pkeys = append(pkeys, k)
	}
	sort.Strings(pkeys)
	for _, k := range pkeys {
		fmt.Fprintf(&b, "szrouter_peer_fills_total{backend=%q} %d\n", k, m.fills[k])
	}

	b.WriteString("# HELP szrouter_backend_state Backend health (0 unknown, 1 healthy, 2 draining, 3 dead).\n")
	b.WriteString("# TYPE szrouter_backend_state gauge\n")
	for _, bk := range backends {
		fmt.Fprintf(&b, "szrouter_backend_state{backend=%q} %d\n", bk, p.Health(bk).State)
	}
	b.WriteString("# HELP szrouter_backend_inflight_bytes Last-scraped reserved budget per backend.\n")
	b.WriteString("# TYPE szrouter_backend_inflight_bytes gauge\n")
	for _, bk := range backends {
		fmt.Fprintf(&b, "szrouter_backend_inflight_bytes{backend=%q} %d\n", bk, p.Health(bk).InflightBytes)
	}
	return b.String()
}
