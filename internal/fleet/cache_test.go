package fleet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

func entry(status int, body string) *cacheEntry {
	return &cacheEntry{status: status, header: http.Header{}, body: []byte(body), backend: "b"}
}

func TestRespCacheLRUEviction(t *testing.T) {
	// Budget fits two entries (each size = len(body)+256).
	c := newRespCache(2 * (256 + 100))
	body := strings.Repeat("x", 100)
	c.put("a", entry(200, body))
	c.put("b", entry(200, body))
	if c.get("a") == nil { // promotes a over b
		t.Fatal("a missing")
	}
	c.put("c", entry(200, body)) // evicts b (LRU tail)
	if c.get("b") != nil {
		t.Fatal("b should have been evicted")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Fatal("a and c should survive")
	}
	_, entries, hits, misses, evictions := c.stats()
	if entries != 2 || evictions != 1 {
		t.Fatalf("entries %d evictions %d", entries, evictions)
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("hits %d misses %d", hits, misses)
	}
}

func TestRespCacheRejectsOversized(t *testing.T) {
	c := newRespCache(512)
	c.put("big", entry(200, strings.Repeat("x", 600)))
	if c.get("big") != nil {
		t.Fatal("oversized entry must not be cached")
	}
}

// countingBackend is a stub szd that counts requests per path and
// returns a deterministic body derived from the request.
func countingBackend(t *testing.T, hits *atomic.Int64, block chan struct{}) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			io.WriteString(w, "ok\n") // health-poller traffic is not a forward
			return
		}
		hits.Add(1)
		if block != nil {
			<-block
		}
		body, _ := io.ReadAll(r.Body)
		w.Header().Set(api.HeaderCodec, "blocked")
		fmt.Fprintf(w, "decoded:%d:%s", len(body), r.URL.RawQuery)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestRouterCacheServesRepeatWithoutBackend: the second identical
// decompress request must be answered from the router cache with zero
// additional backend forwards.
func TestRouterCacheServesRepeatWithoutBackend(t *testing.T) {
	var hits atomic.Int64
	b := countingBackend(t, &hits, nil)
	_, ts := newRouter(t, Config{Backends: []string{b}})

	post := func() (*http.Response, string) {
		resp, err := http.Post(ts.URL+"/v1/decompress", "application/octet-stream", strings.NewReader("container-bytes"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	r1, b1 := post()
	if r1.StatusCode != 200 || hits.Load() != 1 {
		t.Fatalf("first: status %d, backend hits %d", r1.StatusCode, hits.Load())
	}
	if got := r1.Header.Get(api.HeaderCache); got != "" {
		t.Fatalf("first response should not be cache-tagged, got %q", got)
	}
	r2, b2 := post()
	if hits.Load() != 1 {
		t.Fatalf("repeat hit the backend: %d forwards", hits.Load())
	}
	if r2.Header.Get(api.HeaderCache) != "hit" {
		t.Fatalf("cache tag = %q, want hit", r2.Header.Get(api.HeaderCache))
	}
	if b1 != b2 {
		t.Fatalf("cached body differs: %q vs %q", b1, b2)
	}
	if r2.Header.Get(api.HeaderCodec) != "blocked" {
		t.Fatal("cached response must replay backend headers")
	}
	if r2.Header.Get(api.HeaderBackend) != b {
		t.Fatalf("backend tag = %q, want %q", r2.Header.Get(api.HeaderBackend), b)
	}
}

// TestRouterCacheKeyedByParams: same body, different query parameters
// (e.g. a different slab spec) must not share a cache entry.
func TestRouterCacheKeyedByParams(t *testing.T) {
	var hits atomic.Int64
	b := countingBackend(t, &hits, nil)
	_, ts := newRouter(t, Config{Backends: []string{b}})

	for i, path := range []string{"/v1/slab/0", "/v1/slab/1", "/v1/decompress?codec=blocked", "/v1/decompress"} {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader("same-body"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if want := int64(i + 1); hits.Load() != want {
			t.Fatalf("request %d: %d backend forwards, want %d", i, hits.Load(), want)
		}
	}
	// Each repeated verbatim now hits the cache.
	for _, path := range []string{"/v1/slab/0", "/v1/slab/1", "/v1/decompress?codec=blocked", "/v1/decompress"} {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader("same-body"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get(api.HeaderCache) != "hit" {
			t.Fatalf("%s: expected a cache hit", path)
		}
	}
	if hits.Load() != 4 {
		t.Fatalf("repeats forwarded: %d", hits.Load())
	}
}

// TestRouterCompressNotCached: the compress endpoint must never be
// answered from the cache.
func TestRouterCompressNotCached(t *testing.T) {
	var hits atomic.Int64
	b := countingBackend(t, &hits, nil)
	_, ts := newRouter(t, Config{Backends: []string{b}})
	for i := 1; i <= 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/compress?codec=gzip", "application/octet-stream", strings.NewReader("raw"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if hits.Load() != int64(i) {
			t.Fatalf("compress %d: %d forwards", i, hits.Load())
		}
	}
}

// TestRouterCacheDisabled: CacheBytes < 0 switches the cache and
// coalescing off; every request forwards.
func TestRouterCacheDisabled(t *testing.T) {
	var hits atomic.Int64
	b := countingBackend(t, &hits, nil)
	_, ts := newRouter(t, Config{Backends: []string{b}, CacheBytes: -1})
	for i := 1; i <= 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/decompress", "application/octet-stream", strings.NewReader("container"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if hits.Load() != int64(i) {
			t.Fatalf("request %d: %d forwards", i, hits.Load())
		}
	}
}

// TestRouterCoalescesConcurrentIdentical: N identical in-flight
// requests must produce exactly one backend forward; the followers
// share the leader's response.
func TestRouterCoalescesConcurrentIdentical(t *testing.T) {
	const followers = 7
	var hits atomic.Int64
	block := make(chan struct{})
	b := countingBackend(t, &hits, block)
	rt, ts := newRouter(t, Config{Backends: []string{b}})

	var wg sync.WaitGroup
	bodies := make([]string, followers+1)
	cacheTags := make([]string, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/decompress", "application/octet-stream", strings.NewReader("shared-container"))
			if err != nil {
				t.Error(err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			bodies[i] = string(body)
			cacheTags[i] = resp.Header.Get(api.HeaderCache)
		}(i)
	}

	// Hold the backend until the leader is inside it and every follower
	// is parked on the in-flight call, so nobody can miss the window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		waiting := int64(0)
		rt.flights.mu.Lock()
		for _, c := range rt.flights.calls {
			waiting = c.waiters.Load()
		}
		rt.flights.mu.Unlock()
		if hits.Load() == 1 && waiting == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coalescing never converged: %d backend hits, %d waiters", hits.Load(), waiting)
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()

	if hits.Load() != 1 {
		t.Fatalf("%d backend forwards for %d identical requests, want 1", hits.Load(), followers+1)
	}
	// Any of the 8 goroutines may have won the leader slot; the other 7
	// must all have been coalesced onto it.
	coalesced := 0
	for i := 0; i <= followers; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs: %q vs %q", i, bodies[i], bodies[0])
		}
		if cacheTags[i] == "coalesced" {
			coalesced++
		}
	}
	if coalesced != followers {
		t.Fatalf("%d responses tagged coalesced, want %d", coalesced, followers)
	}
	// And the shared response seeded the cache for later arrivals.
	resp, err := http.Post(ts.URL+"/v1/decompress", "application/octet-stream", strings.NewReader("shared-container"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 1 || resp.Header.Get(api.HeaderCache) != "hit" {
		t.Fatalf("post-coalesce request: %d forwards, tag %q", hits.Load(), resp.Header.Get(api.HeaderCache))
	}
}

// TestRouterOversizedResponseNotCached: responses beyond the entry cap
// stream through uncached, and repeats forward again.
func TestRouterOversizedResponseNotCached(t *testing.T) {
	var hits atomic.Int64
	ts0 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			io.WriteString(w, "ok\n")
			return
		}
		hits.Add(1)
		io.ReadAll(r.Body)
		w.Write(make([]byte, 4096))
	}))
	t.Cleanup(ts0.Close)
	b := strings.TrimPrefix(ts0.URL, "http://")
	_, ts := newRouter(t, Config{Backends: []string{b}, CacheEntryBytes: 1024})

	for i := 1; i <= 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/decompress", "application/octet-stream", strings.NewReader("c"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if len(body) != 4096 {
			t.Fatalf("request %d: body %d bytes", i, len(body))
		}
		if resp.Header.Get(api.HeaderCache) != "" {
			t.Fatalf("oversized response must not be cache-tagged")
		}
		if hits.Load() != int64(i) {
			t.Fatalf("request %d: %d forwards", i, hits.Load())
		}
	}
}
