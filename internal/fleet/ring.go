// Package fleet routes szd traffic across a set of daemon backends: a
// consistent-hash ring assigns replayable requests to nodes by stream
// identity (so repeated compressions of the same input land on the same
// daemon, which is what makes response caching placeable later), a
// health poller tracks each backend's /healthz and /metrics, and the
// Router proxies /v1/* with automatic failover to the next ring node
// when a backend sheds (429), drains (503), or is unreachable.
//
// The admission budget stays authoritative on each node: the router
// never queues work it cannot place, it only moves it to the next
// candidate or relays the backend's rejection (Retry-After intact) to
// the client.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the virtual-node count per backend. 128 vnodes keep
// the expected load imbalance across a handful of nodes within a few
// percent while the ring stays small enough to rebuild on every
// membership change.
const defaultReplicas = 128

// Ring is a consistent-hash ring with virtual nodes. It is not
// goroutine-safe; the Router guards every access — including the
// Add/Remove calls live membership makes mid-flight — behind its
// RWMutex, so the ring itself stays lock-free and testable on its own.
// Consistent hashing is what makes live membership cheap: adding or
// removing one of N nodes remaps only ~1/N of keys (asserted by
// TestRingStability and the router's churn tests).
type Ring struct {
	replicas int
	nodes    map[string]bool
	hashes   []uint64          // sorted vnode positions
	owner    map[uint64]string // vnode position -> node
}

// NewRing builds a ring over nodes with the given vnode count per node
// (0 = default).
func NewRing(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{replicas: replicas, nodes: map[string]bool{}}
	for _, n := range nodes {
		r.nodes[n] = true
	}
	r.rebuild()
	return r
}

// Add inserts a node (no-op if present).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	r.rebuild()
}

// Remove deletes a node (no-op if absent).
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	r.rebuild()
}

// Nodes returns the membership, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// rebuild recomputes the vnode table from the membership set. On a vnode
// hash collision the lexicographically smaller node wins, so ownership
// stays deterministic regardless of insertion order.
func (r *Ring) rebuild() {
	r.hashes = r.hashes[:0]
	r.owner = make(map[uint64]string, len(r.nodes)*r.replicas)
	for node := range r.nodes {
		for i := 0; i < r.replicas; i++ {
			h := hash64(fmt.Sprintf("%s#%d", node, i))
			if prev, ok := r.owner[h]; ok && prev < node {
				continue
			}
			if _, ok := r.owner[h]; !ok {
				r.hashes = append(r.hashes, h)
			}
			r.owner[h] = node
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Lookup returns the node owning key, "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to n distinct nodes in ring order starting at
// key's successor vnode — the failover order for a request with this
// identity: index 0 is the owner, each later entry is the next node a
// router should try when the previous one sheds or is unreachable.
func (r *Ring) Sequence(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		node := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// hash64 is FNV-1a with a murmur-style finalizer. Raw FNV avalanches
// poorly on short, similar strings (vnode labels differ only in their
// suffix), which skews node shares by 2x and more; the finalizer
// restores uniform spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
