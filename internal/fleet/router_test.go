package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/server"
)

// newSzd starts a real szd daemon and returns its host:port address.
func newSzd(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// newRouter builds a router over backends with manual polling (huge
// interval, one synchronous poll) and serves it.
func newRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.PollInterval == 0 {
		cfg.PollInterval = time.Hour
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.poller.PollOnce(context.Background())
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func makeRaw(t *testing.T, dt grid.DType, dims ...int) []byte {
	t.Helper()
	a := grid.New(dims...)
	for i := range a.Data {
		v := math.Sin(float64(i) * 0.02)
		if dt == grid.Float32 {
			v = float64(float32(v))
		}
		a.Data[i] = v
	}
	var raw bytes.Buffer
	if err := a.WriteRaw(&raw, dt); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes()
}

func localStream(t *testing.T, name string, raw []byte, p codec.Params) []byte {
	t.Helper()
	c, err := codec.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	zw, err := c.NewWriter(&out, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAllClose(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// payloadOwnedBy searches for a payload whose stream identity hashes to
// the given ring owner, so failover tests can aim traffic at a specific
// backend deterministically.
func payloadOwnedBy(t *testing.T, rt *Router, owner string) []byte {
	t.Helper()
	for i := 0; i < 10000; i++ {
		p := []byte(fmt.Sprintf("targeted-payload-%d", i))
		digest := sha256.Sum256(p)
		if rt.ring.Lookup(hex.EncodeToString(digest[:])) == owner {
			return p
		}
	}
	t.Fatalf("no payload found owned by %s", owner)
	return nil
}

// TestRouterRoundTripMatchesLocal routes compress and decompress through
// a two-backend fleet and requires byte-identical results to the local
// streaming codec.
func TestRouterRoundTripMatchesLocal(t *testing.T) {
	backends := []string{newSzd(t), newSzd(t)}
	_, ts := newRouter(t, Config{Backends: backends})

	raw := makeRaw(t, grid.Float32, 16, 20, 12)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}}
	want := localStream(t, "blocked", raw, p)

	resp := post(t, ts.URL+"/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	if b := resp.Header.Get(api.HeaderBackend); b != backends[0] && b != backends[1] {
		t.Errorf("backend tag = %q, not a configured backend", b)
	}
	stream := readAllClose(t, resp)
	if !bytes.Equal(stream, want) {
		t.Fatalf("routed stream differs from local: %d vs %d bytes", len(stream), len(want))
	}

	dresp := post(t, ts.URL+"/v1/decompress", stream)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("decompress status %d: %s", dresp.StatusCode, readAllClose(t, dresp))
	}
	c, _ := codec.Lookup("blocked")
	zr, err := c.NewReader(bytes.NewReader(want), p)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if gotRaw := readAllClose(t, dresp); !bytes.Equal(gotRaw, wantRaw) {
		t.Fatal("routed reconstruction differs from local")
	}
}

// TestRouterAffinity: identical inputs must land on the same backend.
func TestRouterAffinity(t *testing.T) {
	backends := []string{newSzd(t), newSzd(t), newSzd(t)}
	_, ts := newRouter(t, Config{Backends: backends})
	payload := []byte("the same bytes every time")
	var first string
	for i := 0; i < 5; i++ {
		resp := post(t, ts.URL+"/v1/compress?codec=gzip", payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		b := resp.Header.Get(api.HeaderBackend)
		readAllClose(t, resp)
		if first == "" {
			first = b
		} else if b != first {
			t.Fatalf("request %d routed to %s, first went to %s", i, b, first)
		}
	}
}

// shedBackend reports healthy but answers every work request with 429
// and a distinctive Retry-After — a daemon whose admission budget is
// pinned full.
func shedBackend(t *testing.T, retryAfter string) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintln(w, "ok")
		case "/metrics":
			fmt.Fprintln(w, "szd_inflight_bytes 0")
		default:
			w.Header().Set("Retry-After", retryAfter)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"budget exhausted"}`)
		}
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestRouterFailoverOn429 aims a request at a shedding owner and
// expects the ring's next node to serve it.
func TestRouterFailoverOn429(t *testing.T) {
	shed := shedBackend(t, "7")
	healthy := newSzd(t)
	rt, ts := newRouter(t, Config{Backends: []string{shed, healthy}})

	payload := payloadOwnedBy(t, rt, shed)
	resp := post(t, ts.URL+"/v1/compress?codec=gzip", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	if b := resp.Header.Get(api.HeaderBackend); b != healthy {
		t.Errorf("served by %q, want the healthy backend %q", b, healthy)
	}
	readAllClose(t, resp)

	metrics := string(readAllClose(t, post(t, ts.URL+"/metrics", nil)))
	if !strings.Contains(metrics, fmt.Sprintf("szrouter_failovers_total{backend=%q} 1", shed)) {
		t.Errorf("failover not counted:\n%s", metrics)
	}
	if !strings.Contains(metrics, fmt.Sprintf("szrouter_forwards_total{backend=%q,endpoint=\"compress\"}", healthy)) {
		t.Errorf("forward to healthy backend not counted:\n%s", metrics)
	}
}

// TestRouterRelaysRetryAfterUnchanged: when the whole fleet sheds, the
// client must see the backend's own 429 — Retry-After header intact,
// not rewritten by the router.
func TestRouterRelaysRetryAfterUnchanged(t *testing.T) {
	backends := []string{shedBackend(t, "7"), shedBackend(t, "7")}
	_, ts := newRouter(t, Config{Backends: backends})

	resp := post(t, ts.URL+"/v1/compress?codec=gzip", []byte("data"))
	body := readAllClose(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the backend's own %q", ra, "7")
	}
	if !strings.Contains(string(body), "budget exhausted") {
		t.Errorf("backend error body not relayed: %q", body)
	}
}

// TestRouterConnectFailover: a request owned by an unreachable backend
// fails over, and the observation marks the backend dead immediately.
func TestRouterConnectFailover(t *testing.T) {
	// Reserve a port, then close it: connections will be refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	healthy := newSzd(t)
	rt, ts := newRouter(t, Config{Backends: []string{dead, healthy}})

	payload := payloadOwnedBy(t, rt, dead)
	resp := post(t, ts.URL+"/v1/compress?codec=gzip", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	if b := resp.Header.Get(api.HeaderBackend); b != healthy {
		t.Errorf("served by %q, want %q", b, healthy)
	}
	readAllClose(t, resp)
	if st := rt.poller.Health(dead).State; st != StateDead {
		t.Errorf("dead backend state = %v, want dead after observed failure", st)
	}
}

// TestRouterStreamingPath pushes a body past the buffer limit so it
// takes the single-attempt streaming route.
func TestRouterStreamingPath(t *testing.T) {
	backends := []string{newSzd(t), newSzd(t)}
	_, ts := newRouter(t, Config{Backends: backends, BufferLimit: 1024})

	raw := makeRaw(t, grid.Float32, 16, 20, 12) // ~15 KiB >> 1 KiB limit
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}}
	want := localStream(t, "sz14", raw, p)

	resp := post(t, ts.URL+"/v1/compress?codec=sz14&abs=1e-3&dtype=f32&dims=16,20,12", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	if got := readAllClose(t, resp); !bytes.Equal(got, want) {
		t.Fatal("streamed routed output differs from local")
	}
}

// TestRouterSlabProxied verifies the slab range endpoints work through
// the router: the remote slab decode must equal the local one.
func TestRouterSlabProxied(t *testing.T) {
	_, ts := newRouter(t, Config{Backends: []string{newSzd(t), newSzd(t)}})

	raw := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}, SlabRows: 4}
	stream := localStream(t, "blocked", raw, p)

	var si codec.SlabIndex
	resp := post(t, ts.URL+"/v1/slabs", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slabs status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&si); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if si.Slabs != 4 || si.SlabRows != 4 {
		t.Fatalf("slab index = %d slabs x %d rows, want 4 x 4", si.Slabs, si.SlabRows)
	}

	resp = post(t, ts.URL+"/v1/slab/1", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slab status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	got := readAllClose(t, resp)
	// One slab of a 16x8x8 f32 field is 4*8*8*4 bytes.
	if len(got) != 4*8*8*4 {
		t.Fatalf("slab decode returned %d bytes, want %d", len(got), 4*8*8*4)
	}
}

// TestRouterBodylessFailover: /v1/codecs works even when the first
// backend in rotation is unreachable.
func TestRouterBodylessFailover(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	_, ts := newRouter(t, Config{Backends: []string{dead, newSzd(t)}})

	for i := 0; i < 4; i++ { // cover every rotation offset
		resp, err := http.Get(ts.URL + "/v1/codecs")
		if err != nil {
			t.Fatal(err)
		}
		body := readAllClose(t, resp)
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "blocked") {
			t.Fatalf("codecs status %d body %q", resp.StatusCode, body)
		}
	}
}

func TestRouterHealthz(t *testing.T) {
	_, ts := newRouter(t, Config{Backends: []string{newSzd(t)}})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d with a healthy backend", resp.StatusCode)
	}
	readAllClose(t, resp)

	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	dead := ln.Addr().String()
	ln.Close()
	// Warming grace off: this half checks a confirmed-unreachable fleet,
	// not the startup race the grace papers over.
	rt2, ts2 := newRouter(t, Config{Backends: []string{dead}, WarmupGrace: -1})
	rt2.poller.PollOnce(context.Background())
	resp, err = http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d with no reachable backends, want 503", resp.StatusCode)
	}
	readAllClose(t, resp)
}

func TestRouterNoBackends(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("router built with no backends")
	}
	if _, err := New(Config{Backends: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("router built with duplicate backends")
	}
}
