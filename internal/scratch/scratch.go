// Package scratch provides size-classed, sync.Pool-backed recycling of
// the working slices the hot compression path churns through.
//
// The SZ-1.4 pipeline is memory-bandwidth-bound: per slab, the core
// compressor needs a quantization-code array, a reconstruction array, a
// histogram, Huffman build arenas, and bitstream buffers — tens of
// megabytes that all die the moment the slab's stream bytes are emitted.
// Allocating them fresh per operation makes the garbage collector, not
// arithmetic, the throughput ceiling once many slabs are in flight (the
// blocked worker pool, the szd daemon). This package recycles them.
//
// Slices are pooled in power-of-two size classes, one sync.Pool per
// class, so a Get never hands back more than 2x the capacity asked for
// and slabs of similar geometry reuse each other's buffers. Get returns
// a slice of exactly the requested length with arbitrary contents (the
// zeroed variants clear it first); Put recycles any slice, filing it
// under the largest class its capacity covers. sync.Pool gives
// per-P caches, so concurrent workers reuse without contention, and the
// GC still reclaims idle buffers under memory pressure — the pools
// cannot pin memory a quiet process no longer needs.
//
// Correctness note: a recycled slice's contents are garbage. Callers
// must either overwrite every element they read (the compression scans
// do — every point is reconstructed) or request the zeroed variant
// (histograms, Huffman decode tables).
package scratch

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	// minClassBits is the smallest pooled class (64 elements): tinier
	// slices cost less to allocate than to recycle.
	minClassBits = 6
	// maxClassBits is the largest pooled class (2^27 elements — 1 GiB
	// of float64): beyond it, Get falls through to plain make and Put
	// drops the slice, so a single pathological request cannot park
	// gigabytes in the pools.
	maxClassBits = 27
)

// Per-class traffic counters, shared across all Pool instances (the
// interesting signal is "does class c recycle or allocate", not which
// element type asked). Atomics keep the hot path lock-free; a miss is
// a Get that had to fall back to make.
var (
	classHits   [maxClassBits + 1]atomic.Int64
	classMisses [maxClassBits + 1]atomic.Int64
	classPuts   [maxClassBits + 1]atomic.Int64
)

// ClassStats is one size class's cumulative traffic.
type ClassStats struct {
	// Size is the class capacity in elements (1 << class bits).
	Size int
	// Hits counts Gets served from the pool, Misses counts Gets that
	// allocated, Puts counts slices recycled into the class.
	Hits, Misses, Puts int64
}

// Stats returns cumulative per-class counters for every class that has
// seen any traffic, smallest class first.
func Stats() []ClassStats {
	var out []ClassStats
	for c := minClassBits; c <= maxClassBits; c++ {
		s := ClassStats{
			Size:   1 << c,
			Hits:   classHits[c].Load(),
			Misses: classMisses[c].Load(),
			Puts:   classPuts[c].Load(),
		}
		if s.Hits|s.Misses|s.Puts != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Pool is a size-classed recycler for []T. The zero value is not ready;
// use NewPool. Pools are safe for concurrent use.
type Pool[T any] struct {
	classes [maxClassBits + 1]sync.Pool
}

// NewPool returns an empty size-classed pool for []T.
func NewPool[T any]() *Pool[T] { return &Pool[T]{} }

// classFor returns the pool class whose capacity (1<<class) covers n,
// or -1 when n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 {
		return minClassBits
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c < minClassBits {
		return minClassBits
	}
	if c > maxClassBits {
		return -1
	}
	return c
}

// Get returns a []T of length n with arbitrary contents, recycled when
// a buffer of a suitable class is pooled, freshly allocated otherwise.
func (p *Pool[T]) Get(n int) []T {
	c := classFor(n)
	if c < 0 {
		return make([]T, n)
	}
	if v := p.classes[c].Get(); v != nil {
		// Pooled entries are stored as their backing-array pointer (a
		// pointer-shaped interface payload, so Get and Put allocate
		// nothing); the capacity is implied by the class.
		classHits[c].Add(1)
		return unsafe.Slice((*T)(v.(unsafe.Pointer)), 1<<c)[:n]
	}
	classMisses[c].Add(1)
	return make([]T, n, 1<<c)
}

// Put recycles s. The slice is filed under the largest class its
// capacity fully covers (slices that grew past their class still
// recycle, trimmed to the class size); slices too small or too large to
// pool are dropped. s must not be used after Put.
func (p *Pool[T]) Put(s []T) {
	c := bits.Len(uint(cap(s))) - 1 // floor(log2 cap)
	if c < minClassBits || c > maxClassBits {
		return
	}
	classPuts[c].Add(1)
	p.classes[c].Put(unsafe.Pointer(unsafe.SliceData(s[:cap(s)])))
}

// Shared pools for the element types the compression pipeline uses.
// Package-level so every layer (core, huffman, blocked, server) draws
// from the same warm set.
var (
	bytePool    = NewPool[byte]()
	intPool     = NewPool[int]()
	float64Pool = NewPool[float64]()
	uint64Pool  = NewPool[uint64]()
	uint32Pool  = NewPool[uint32]()
)

// Bytes returns a recycled []byte of length n with arbitrary contents.
func Bytes(n int) []byte { return bytePool.Get(n) }

// BytesZeroed returns a recycled []byte of length n, cleared.
func BytesZeroed(n int) []byte {
	s := bytePool.Get(n)
	clear(s)
	return s
}

// PutBytes recycles a byte slice.
func PutBytes(s []byte) { bytePool.Put(s) }

// Ints returns a recycled []int of length n with arbitrary contents.
func Ints(n int) []int { return intPool.Get(n) }

// IntsZeroed returns a recycled []int of length n, cleared.
func IntsZeroed(n int) []int {
	s := intPool.Get(n)
	clear(s)
	return s
}

// PutInts recycles an int slice.
func PutInts(s []int) { intPool.Put(s) }

// Float64s returns a recycled []float64 of length n with arbitrary
// contents.
func Float64s(n int) []float64 { return float64Pool.Get(n) }

// PutFloat64s recycles a float64 slice.
func PutFloat64s(s []float64) { float64Pool.Put(s) }

// Uint64s returns a recycled []uint64 of length n with arbitrary
// contents.
func Uint64s(n int) []uint64 { return uint64Pool.Get(n) }

// Uint64sZeroed returns a recycled []uint64 of length n, cleared.
func Uint64sZeroed(n int) []uint64 {
	s := uint64Pool.Get(n)
	clear(s)
	return s
}

// PutUint64s recycles a uint64 slice.
func PutUint64s(s []uint64) { uint64Pool.Put(s) }

// Uint32s returns a recycled []uint32 of length n with arbitrary
// contents.
func Uint32s(n int) []uint32 { return uint32Pool.Get(n) }

// Uint32sZeroed returns a recycled []uint32 of length n, cleared.
func Uint32sZeroed(n int) []uint32 {
	s := uint32Pool.Get(n)
	clear(s)
	return s
}

// PutUint32s recycles a uint32 slice.
func PutUint32s(s []uint32) { uint32Pool.Put(s) }
