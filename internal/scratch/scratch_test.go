package scratch

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, minClassBits},
		{1, minClassBits},
		{64, minClassBits},
		{65, 7},
		{128, 7},
		{129, 8},
		{1 << maxClassBits, maxClassBits},
		{1<<maxClassBits + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetLengthAndClassCapacity(t *testing.T) {
	p := NewPool[int]()
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096, 5000} {
		s := p.Get(n)
		if len(s) != n {
			t.Fatalf("Get(%d): len %d", n, len(s))
		}
		if n > 0 && cap(s) > 2*n && cap(s) > 1<<minClassBits {
			t.Fatalf("Get(%d): cap %d exceeds 2x request", n, cap(s))
		}
		p.Put(s)
	}
}

func TestPutGetRecycles(t *testing.T) {
	p := NewPool[byte]()
	s := p.Get(1000)
	for i := range s {
		s[i] = 0xAB
	}
	p.Put(s)
	// The recycled buffer should come back for a request of the same
	// class (sync.Pool per-P caching makes this deterministic enough on
	// a single goroutine; tolerate a miss rather than flake).
	r := p.Get(900)
	if len(r) != 900 {
		t.Fatalf("len %d", len(r))
	}
	p.Put(r)
}

func TestOversizeFallsThrough(t *testing.T) {
	p := NewPool[byte]()
	n := 1<<maxClassBits + 1
	s := p.Get(n)
	if len(s) != n || cap(s) != n {
		t.Fatalf("oversize Get: len %d cap %d", len(s), cap(s))
	}
	p.Put(s) // must not panic; silently dropped
}

func TestZeroedVariants(t *testing.T) {
	// Dirty a buffer, recycle it, and confirm the zeroed getters clear.
	h := Uint64s(256)
	for i := range h {
		h[i] = ^uint64(0)
	}
	PutUint64s(h)
	z := Uint64sZeroed(256)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("Uint64sZeroed[%d] = %d", i, v)
		}
	}
	PutUint64s(z)

	u := Uint32s(300)
	for i := range u {
		u[i] = 7
	}
	PutUint32s(u)
	z32 := Uint32sZeroed(300)
	for i, v := range z32 {
		if v != 0 {
			t.Fatalf("Uint32sZeroed[%d] = %d", i, v)
		}
	}
	PutUint32s(z32)
}

func TestGrownSliceRefilesByCapacity(t *testing.T) {
	p := NewPool[byte]()
	s := p.Get(64)
	s = append(s[:cap(s)], make([]byte, 200)...) // grow past the class
	p.Put(s)
	// A larger request should be servable without incident.
	r := p.Get(256)
	if len(r) != 256 {
		t.Fatalf("len %d", len(r))
	}
	p.Put(r)
}

// TestConcurrent exercises the pools from many goroutines (meaningful
// under -race): every Get must return a slice of the right length that
// no other goroutine concurrently holds.
func TestConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 100 + int(seed)*50 + i
				b := Bytes(n)
				for j := range b {
					b[j] = seed
				}
				for j := range b {
					if b[j] != seed {
						t.Errorf("buffer shared across goroutines")
						return
					}
				}
				PutBytes(b)
				f := Float64s(n)
				f[0], f[n-1] = 1, 2
				if f[0] != 1 || f[n-1] != 2 {
					t.Errorf("float64 buffer corrupted")
					return
				}
				PutFloat64s(f)
			}
		}(byte(g))
	}
	wg.Wait()
}

func TestStatsCountTraffic(t *testing.T) {
	const n = 5000 // class 13 (8192), unlikely to collide with other tests' classes
	before := statsFor(1 << 13)
	b := Bytes(n)
	PutBytes(b)
	b = Bytes(n) // should be a hit now that one buffer is pooled
	PutBytes(b)
	after := statsFor(1 << 13)
	if after.Puts-before.Puts != 2 {
		t.Errorf("puts delta = %d, want 2", after.Puts-before.Puts)
	}
	if d := (after.Hits + after.Misses) - (before.Hits + before.Misses); d != 2 {
		t.Errorf("gets delta = %d, want 2", d)
	}
	if after.Hits == before.Hits {
		t.Errorf("no pool hit recorded after a put: %+v -> %+v", before, after)
	}
}

func statsFor(size int) ClassStats {
	for _, s := range Stats() {
		if s.Size == size {
			return s
		}
	}
	return ClassStats{Size: size}
}
