package membership

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestParseList(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"a:1\nb:2\n", []string{"a:1", "b:2"}},
		{"a:1,b:2, c:3", []string{"a:1", "b:2", "c:3"}},
		{"# fleet\na:1 # owner\n\n  b:2  \n", []string{"a:1", "b:2"}},
		{"a:1\na:1\nb:2,a:1", []string{"a:1", "b:2"}},
		{"https://node1:7071\nhttp://node2:7071", []string{"https://node1:7071", "http://node2:7071"}},
		{"# nothing\n\n", nil},
	} {
		if got := ParseList(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func writeFile(t *testing.T, path, data string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFileWinsOverSeed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members")
	writeFile(t, path, "file-a:1\nfile-b:2\n")
	w, err := NewWatcher(Config{Path: path, Seed: []string{"seed:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Nodes(); !reflect.DeepEqual(got, []string{"file-a:1", "file-b:2"}) {
		t.Fatalf("nodes %v", got)
	}
}

func TestSeedFallbackWhenFileMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent")
	w, err := NewWatcher(Config{Path: path, Seed: []string{"seed:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Nodes(); !reflect.DeepEqual(got, []string{"seed:1"}) {
		t.Fatalf("nodes %v", got)
	}
}

func TestNoBackendsIsError(t *testing.T) {
	if _, err := NewWatcher(Config{}); err == nil {
		t.Fatal("empty seed and no path must error")
	}
	path := filepath.Join(t.TempDir(), "members")
	writeFile(t, path, "# all comments\n")
	if _, err := NewWatcher(Config{Path: path}); err == nil {
		t.Fatal("comment-only file with no seed must error")
	}
}

func TestReloadFiresOnChangeOnlyOnRealChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members")
	writeFile(t, path, "a:1\nb:2\n")
	var (
		mu    sync.Mutex
		calls [][]string
	)
	w, err := NewWatcher(Config{Path: path, Interval: -1, OnChange: func(nodes []string) {
		mu.Lock()
		calls = append(calls, nodes)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Reordering the same set: not a change.
	writeFile(t, path, "b:2\na:1\n")
	if err := w.Reload(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(calls)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("reorder fired OnChange %d times", n)
	}

	// A real change fires once with the new set.
	writeFile(t, path, "a:1\nc:3\n")
	if err := w.Reload(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || !reflect.DeepEqual(calls[0], []string{"a:1", "c:3"}) {
		t.Fatalf("calls %v", calls)
	}
	if got := w.Nodes(); !reflect.DeepEqual(got, []string{"a:1", "c:3"}) {
		t.Fatalf("nodes %v", got)
	}
}

func TestReloadRejectsEmptyFileKeepsSet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members")
	writeFile(t, path, "a:1\n")
	w, err := NewWatcher(Config{Path: path, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, path, "# oops, truncated\n")
	if err := w.Reload(); err == nil {
		t.Fatal("zero-backend reload must error")
	}
	if got := w.Nodes(); !reflect.DeepEqual(got, []string{"a:1"}) {
		t.Fatalf("set not kept: %v", got)
	}
}

func TestPollingDetectsEdit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members")
	writeFile(t, path, "a:1\n")
	changed := make(chan []string, 1)
	w, err := NewWatcher(Config{Path: path, Interval: 10 * time.Millisecond, OnChange: func(nodes []string) {
		changed <- nodes
	}})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	defer w.Stop()

	// Size changes with the edit, so coarse mtime granularity cannot
	// hide it from the poller.
	writeFile(t, path, "a:1\nb:2\n")
	select {
	case nodes := <-changed:
		if !reflect.DeepEqual(nodes, []string{"a:1", "b:2"}) {
			t.Fatalf("nodes %v", nodes)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poller missed the edit")
	}
}

func TestStaticMembershipNoPath(t *testing.T) {
	w, err := NewWatcher(Config{Seed: []string{"a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	w.Start() // no-op
	w.Stop()  // no-op
	if err := w.Reload(); err != nil {
		t.Fatalf("pathless reload must be a no-op, got %v", err)
	}
	if got := w.Nodes(); !reflect.DeepEqual(got, []string{"a:1"}) {
		t.Fatalf("nodes %v", got)
	}
}
