// Package membership drives the fleet's backend set from a watched
// config file, so topology changes (add a node, drain a node) happen
// by editing a file and HUPping the router instead of restarting it.
//
// The file format is deliberately trivial: one backend per line
// (host:port or a full URL), '#' comments, blank lines ignored;
// commas also separate entries so the same string accepted by
// `-backends` pastes into a file unchanged. The watcher polls the
// file's mtime+size (fsnotify without the dependency) and calls
// OnChange with the new set only when the parsed set actually
// differs — touching the file without editing it is a no-op. Reload
// forces a re-read regardless of mtime, which is what the SIGHUP
// handler calls.
//
// The package only detects and parses; lifecycle (warm-up before a
// new node takes ring ownership, drain before a removed one stops
// serving) belongs to the router, which owns the health state.
package membership

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"
)

// ParseList parses a backend list: one entry per line, '#' starts a
// comment, commas also separate entries. Duplicates collapse to the
// first occurrence; order is preserved.
func ParseList(data string) []string {
	var out []string
	seen := map[string]bool{}
	for _, line := range strings.Split(data, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, f := range strings.Split(line, ",") {
			if f = strings.TrimSpace(f); f != "" && !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// Config configures a Watcher.
type Config struct {
	// Path is the membership file. Empty means static membership: the
	// watcher serves Seed forever and Start is a no-op.
	Path string
	// Seed is the boot-time backend list, used when Path is empty or
	// unreadable at construction.
	Seed []string
	// Interval is the mtime poll cadence (0 = 2s, <0 = polling off;
	// Reload still works).
	Interval time.Duration
	// OnChange is called with the new backend set after each detected
	// change, from the watcher goroutine (or the Reload caller). Never
	// called concurrently with itself.
	OnChange func(nodes []string)
}

// Watcher tracks the live backend set.
type Watcher struct {
	cfg Config

	// reloadMu serializes whole reloads (poll tick vs SIGHUP), which
	// is what keeps the OnChange no-self-concurrency promise.
	reloadMu sync.Mutex

	mu    sync.Mutex
	nodes []string
	mtime time.Time
	size  int64

	stopc chan struct{}
	done  chan struct{}
}

// NewWatcher builds a watcher. When cfg.Path exists and is readable
// its contents win over cfg.Seed as the initial set; an unreadable
// path falls back to the seed (the file may simply not exist yet) —
// but a path that exists and fails to parse to at least one backend
// while the seed is also empty is an error, because a router with no
// backends can serve nothing.
func NewWatcher(cfg Config) (*Watcher, error) {
	if cfg.Interval == 0 {
		cfg.Interval = 2 * time.Second
	}
	w := &Watcher{cfg: cfg, nodes: append([]string(nil), cfg.Seed...)}
	if cfg.Path != "" {
		if data, err := os.ReadFile(cfg.Path); err == nil {
			w.nodes = ParseList(string(data))
			if fi, err := os.Stat(cfg.Path); err == nil {
				w.mtime, w.size = fi.ModTime(), fi.Size()
			}
		}
	}
	if len(w.nodes) == 0 {
		return nil, fmt.Errorf("membership: no backends (empty seed and no usable %q)", cfg.Path)
	}
	return w, nil
}

// Nodes returns the current backend set (a copy).
func (w *Watcher) Nodes() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.nodes...)
}

// Start begins mtime polling. No-op without a path or with polling
// disabled. Stop ends it.
func (w *Watcher) Start() {
	if w.cfg.Path == "" || w.cfg.Interval < 0 || w.stopc != nil {
		return
	}
	w.stopc = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		tick := time.NewTicker(w.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-w.stopc:
				return
			case <-tick.C:
				w.poll()
			}
		}
	}()
}

// Stop halts polling (idempotent; safe if Start was never called).
func (w *Watcher) Stop() {
	if w.stopc == nil {
		return
	}
	close(w.stopc)
	<-w.done
	w.stopc = nil
}

// poll re-reads the file only when its mtime or size moved.
func (w *Watcher) poll() {
	fi, err := os.Stat(w.cfg.Path)
	if err != nil {
		return // missing file: keep the current set
	}
	w.mu.Lock()
	unchanged := fi.ModTime().Equal(w.mtime) && fi.Size() == w.size
	w.mu.Unlock()
	if unchanged {
		return
	}
	w.Reload()
}

// Reload force-re-reads the membership file and fires OnChange if the
// set changed. It is the SIGHUP entry point: mtime is bypassed, so a
// HUP always takes effect even on filesystems with coarse timestamps.
// Returns an error when the file is missing or parses to zero
// backends (the current set is kept either way).
func (w *Watcher) Reload() error {
	if w.cfg.Path == "" {
		return nil
	}
	w.reloadMu.Lock()
	defer w.reloadMu.Unlock()
	data, err := os.ReadFile(w.cfg.Path)
	if err != nil {
		return fmt.Errorf("membership: %w", err)
	}
	nodes := ParseList(string(data))
	if len(nodes) == 0 {
		return fmt.Errorf("membership: %s parses to zero backends; keeping current set", w.cfg.Path)
	}
	w.mu.Lock()
	if fi, err := os.Stat(w.cfg.Path); err == nil {
		w.mtime, w.size = fi.ModTime(), fi.Size()
	}
	changed := !equal(w.nodes, nodes)
	if changed {
		w.nodes = nodes
	}
	cb := w.cfg.OnChange
	w.mu.Unlock()
	if changed && cb != nil {
		cb(nodes)
	}
	return nil
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	// Order-insensitive: reordering lines is not a topology change.
	in := make(map[string]bool, len(a))
	for _, s := range a {
		in[s] = true
	}
	for _, s := range b {
		if !in[s] {
			return false
		}
	}
	return true
}
