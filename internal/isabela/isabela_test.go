package isabela

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func TestRoundTripSmooth(t *testing.T) {
	a := grid.New(4096)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.01)
	}
	eb := 1e-2
	stream, st, err := Compress(a, Params{AbsBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > eb {
			t.Fatalf("bound violated at %d: %g vs %g", i, a.Data[i], out.Data[i])
		}
	}
	if st.CompressionFactor <= 1 {
		t.Fatalf("CF %v should exceed 1 on smooth data with loose bound", st.CompressionFactor)
	}
}

func TestBoundAlwaysHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := grid.New(2048)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i)*0.02) + rng.NormFloat64()*0.05
	}
	eb := 0.02
	stream, _, err := Compress(a, Params{AbsBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > eb {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestFailsAtTightBound(t *testing.T) {
	// White noise at a very tight bound: the spline model must give up,
	// matching the paper's "until it fails" plots.
	rng := rand.New(rand.NewSource(6))
	a := grid.New(2048)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	_, _, err := Compress(a, Params{AbsBound: 1e-9})
	if !errors.Is(err, ErrBoundTooTight) {
		t.Fatalf("expected ErrBoundTooTight, got %v", err)
	}
}

func TestIndexOverheadCapsCF(t *testing.T) {
	// Even perfectly compressible data pays the permutation index: with
	// W=1024 the rank stream alone is 10 bits/value, so CF < 6.4 for
	// float64. This is ISABELA's defining limitation.
	a := grid.New(8192)
	for i := range a.Data {
		a.Data[i] = 1.0
	}
	_, st, err := Compress(a, Params{AbsBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressionFactor > 64.0/10.0+0.5 {
		t.Fatalf("CF %v exceeds the permutation-index limit", st.CompressionFactor)
	}
}

func TestSpecialValuesPatched(t *testing.T) {
	a := grid.New(256)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	a.Data[10] = math.NaN()
	a.Data[20] = math.Inf(1)
	stream, _, err := Compress(a, Params{AbsBound: 1.0, Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.Data[10]) || !math.IsInf(out.Data[20], 1) {
		t.Fatal("special values must round-trip via patches")
	}
}

func TestPartialWindow(t *testing.T) {
	// Data length not a multiple of the window.
	a := grid.New(1000) // window 1024 > 1000
	for i := range a.Data {
		a.Data[i] = math.Cos(float64(i) * 0.03)
	}
	eb := 1e-2
	stream, _, err := Compress(a, Params{AbsBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > eb {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestMultidimensional(t *testing.T) {
	a := grid.New(40, 50)
	for i := 0; i < 40; i++ {
		for j := 0; j < 50; j++ {
			a.Set(math.Sin(float64(i)*0.2)*math.Cos(float64(j)*0.1), i, j)
		}
	}
	eb := 5e-2
	stream, _, err := Compress(a, Params{AbsBound: eb, Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.SameShape(a, out); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > eb {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestValidation(t *testing.T) {
	a := grid.New(64)
	cases := []Params{
		{AbsBound: 0},
		{AbsBound: -1},
		{AbsBound: math.Inf(1)},
		{AbsBound: 1, Window: 4},
		{AbsBound: 1, Window: 1 << 21},
		{AbsBound: 1, Knots: 2},
		{AbsBound: 1, Knots: 99999},
		{AbsBound: 1, OutputType: grid.DType(9)},
	}
	for i, p := range cases {
		if _, _, err := Compress(a, p); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
}

func TestCorruption(t *testing.T) {
	a := grid.New(512)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	stream, _, err := Compress(a, Params{AbsBound: 1, Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), stream...)
	bad[len(bad)/2] ^= 0x08
	if _, err := Decompress(bad); err == nil {
		t.Fatal("corruption undetected")
	}
	if _, err := Decompress(stream[:10]); err == nil {
		t.Fatal("truncation undetected")
	}
}

func TestMonotoneCubicPreservesMonotonicity(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 0.1, 0.2, 5, 10} // monotone with a jump
	s := newMonotoneCubic(xs, ys)
	prev := math.Inf(-1)
	for x := 0.0; x <= 4.0; x += 0.01 {
		v := s.eval(x)
		if v < prev-1e-12 {
			t.Fatalf("interpolant not monotone at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
	// Interpolation at the knots is exact.
	for i := range xs {
		if math.Abs(s.eval(xs[i])-ys[i]) > 1e-12 {
			t.Fatalf("knot %d not interpolated", i)
		}
	}
}

func TestMonotoneCubicEdge(t *testing.T) {
	s := newMonotoneCubic([]float64{5}, []float64{42})
	if s.eval(0) != 42 || s.eval(10) != 42 {
		t.Fatal("single-knot spline should be constant")
	}
	s = newMonotoneCubic([]float64{0, 1}, []float64{1, 2})
	if s.eval(-1) != 1 || s.eval(2) != 2 {
		t.Fatal("out-of-range eval should clamp")
	}
}
