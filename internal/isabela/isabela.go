// Package isabela reimplements the ISABELA in-situ lossy compressor of
// Lakshminarasimhan et al. (CC:PE 2013), the sort-and-spline baseline of
// the paper's evaluation.
//
// ISABELA's idea: within a fixed-size window, sorting the values yields a
// monotone curve that is far smoother than the original series, so a
// low-order spline with a handful of knots approximates it well. The cost
// is that the permutation ("index") must be stored explicitly — ⌈log2 W⌉
// bits per point — which caps the achievable compression factor; this is
// exactly the weakness the SZ-1.4 paper highlights (CF ≈ 1.2–1.4 on its
// data sets).
//
// This implementation sorts each window, stores the rank of every point,
// samples K knots from the sorted curve, reconstructs it with monotone
// cubic (Fritsch–Carlson) interpolation, and patches every point whose
// reconstruction misses the absolute error bound with an exact escape.
// When more than MaxPatchFraction of a window needs patching the
// compressor reports ErrBoundTooTight — reproducing the paper's
// observation that "ISABELA cannot deal with some low error bounds".
package isabela

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/bitstream"
	"repro/internal/grid"
)

const magic = "ISBG"

// Defaults mirror the ISABELA paper's recommended configuration.
const (
	// DefaultWindow is the sort window size W.
	DefaultWindow = 1024
	// DefaultKnots is the spline coefficient count per window.
	DefaultKnots = 30
	// MaxPatchFraction is the largest tolerable share of out-of-bound
	// points before compression is declared failed.
	MaxPatchFraction = 0.5
)

// ErrCorrupt is returned for malformed streams.
var ErrCorrupt = errors.New("isabela: corrupt stream")

// ErrBoundTooTight is returned when the spline model cannot meet the error
// bound on a reasonable fraction of points.
var ErrBoundTooTight = errors.New("isabela: error bound too tight for spline model")

// Params configures compression.
type Params struct {
	// AbsBound is the absolute error bound (> 0).
	AbsBound float64
	// Window is the sort window size; 0 means DefaultWindow.
	Window int
	// Knots is the spline sample count per window; 0 means DefaultKnots.
	Knots int
	// OutputType records source precision for CF accounting. 0 = Float64.
	OutputType grid.DType
}

// Stats reports compression outcomes.
type Stats struct {
	N                 int
	Patched           int // points stored via the exact escape
	CompressedBytes   int
	OriginalBytes     int
	CompressionFactor float64
	BitRate           float64
}

func (p *Params) defaults() error {
	if !(p.AbsBound > 0) || math.IsInf(p.AbsBound, 0) {
		return fmt.Errorf("isabela: bound %v must be positive and finite", p.AbsBound)
	}
	if p.Window == 0 {
		p.Window = DefaultWindow
	}
	if p.Window < 16 || p.Window > 1<<20 {
		return fmt.Errorf("isabela: window %d out of range [16, 2^20]", p.Window)
	}
	if p.Knots == 0 {
		p.Knots = DefaultKnots
	}
	if p.Knots < 4 || p.Knots > p.Window {
		return fmt.Errorf("isabela: knots %d out of range [4, window]", p.Knots)
	}
	if p.OutputType == 0 {
		p.OutputType = grid.Float64
	}
	if p.OutputType != grid.Float32 && p.OutputType != grid.Float64 {
		return fmt.Errorf("isabela: unsupported dtype %v", p.OutputType)
	}
	return nil
}

// Compress encodes a under p. It returns ErrBoundTooTight when the model
// cannot achieve the bound (the caller should fall back or report failure,
// as the paper does when plotting ISABELA "until it fails").
func Compress(a *grid.Array, p Params) ([]byte, *Stats, error) {
	if err := p.defaults(); err != nil {
		return nil, nil, err
	}
	n := a.Len()
	w := bitstream.NewWriter(n * 2)
	rankBits := uint(bitsFor(p.Window - 1))
	totalPatched := 0

	type idxVal struct {
		idx int
		v   float64
	}
	scratch := make([]idxVal, 0, p.Window)

	for start := 0; start < n; start += p.Window {
		end := start + p.Window
		if end > n {
			end = n
		}
		wsize := end - start
		scratch = scratch[:0]
		for i := start; i < end; i++ {
			scratch = append(scratch, idxVal{i - start, a.Data[i]})
		}
		sort.SliceStable(scratch, func(x, y int) bool {
			vx, vy := scratch[x].v, scratch[y].v
			if math.IsNaN(vx) {
				return !math.IsNaN(vy)
			}
			return vx < vy
		})
		ranks := make([]int, wsize)
		sorted := make([]float64, wsize)
		for r, iv := range scratch {
			ranks[iv.idx] = r
			sorted[r] = iv.v
		}

		// Knot positions: evenly spaced over [0, wsize-1], clamped count.
		knots := p.Knots
		if knots > wsize {
			knots = wsize
		}
		kx := make([]float64, knots)
		ky := make([]float64, knots)
		for i := 0; i < knots; i++ {
			pos := 0
			if knots > 1 {
				pos = i * (wsize - 1) / (knots - 1)
			}
			kx[i] = float64(pos)
			v := sorted[pos]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0 // specials are always patched below
			}
			ky[i] = v
		}
		spline := newMonotoneCubic(kx, ky)

		// Reconstruct, find patches.
		patches := make([]int, 0)
		for i := 0; i < wsize; i++ {
			rec := spline.eval(float64(ranks[i]))
			x := a.Data[start+i]
			if !(math.Abs(rec-x) <= p.AbsBound) { // NaN-safe: patches NaN too
				patches = append(patches, i)
			}
		}
		if float64(len(patches)) > MaxPatchFraction*float64(wsize) {
			return nil, nil, fmt.Errorf("%w: window at %d needs %d/%d patches",
				ErrBoundTooTight, start, len(patches), wsize)
		}
		totalPatched += len(patches)

		// Serialize window: knot count, knot values, ranks, patch list.
		w.WriteEliasGamma(uint64(knots))
		for i := 0; i < knots; i++ {
			w.WriteBits(math.Float64bits(ky[i]), 64)
		}
		for i := 0; i < wsize; i++ {
			w.WriteBits(uint64(ranks[i]), rankBits)
		}
		w.WriteEliasGamma(uint64(len(patches)))
		prev := 0
		for _, pi := range patches {
			w.WriteEliasGamma(uint64(pi - prev))
			prev = pi
			w.WriteBits(math.Float64bits(a.Data[start+pi]), 64)
		}
	}

	head := make([]byte, 0, 64)
	head = append(head, magic...)
	head = append(head, byte(p.OutputType), byte(len(a.Dims)))
	for _, d := range a.Dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	head = binary.AppendUvarint(head, uint64(p.Window))
	head = binary.LittleEndian.AppendUint64(head, math.Float64bits(p.AbsBound))
	head = binary.AppendUvarint(head, w.Len())
	out := append(head, w.Bytes()...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))

	st := &Stats{
		N:               n,
		Patched:         totalPatched,
		CompressedBytes: len(out),
		OriginalBytes:   n * p.OutputType.Size(),
	}
	st.CompressionFactor = float64(st.OriginalBytes) / float64(st.CompressedBytes)
	st.BitRate = float64(st.CompressedBytes) * 8 / float64(n)
	return out, st, nil
}

// Decompress inverts Compress.
func Decompress(stream []byte) (*grid.Array, error) {
	if len(stream) < 6+8+4 {
		return nil, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if string(stream[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(stream[:len(stream)-4]) != binary.LittleEndian.Uint32(stream[len(stream)-4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	t := grid.DType(stream[4])
	if t != grid.Float32 && t != grid.Float64 {
		return nil, fmt.Errorf("%w: bad dtype", ErrCorrupt)
	}
	nd := int(stream[5])
	if nd < 1 || nd > grid.MaxDims {
		return nil, fmt.Errorf("%w: bad ndims", ErrCorrupt)
	}
	off := 6
	dims := make([]int, nd)
	for i := range dims {
		v, k := binary.Uvarint(stream[off:])
		if k <= 0 || v == 0 || v > 1<<40 {
			return nil, fmt.Errorf("%w: bad dim", ErrCorrupt)
		}
		dims[i] = int(v)
		off += k
	}
	window, k := binary.Uvarint(stream[off:])
	if k <= 0 || window < 16 || window > 1<<20 {
		return nil, fmt.Errorf("%w: bad window", ErrCorrupt)
	}
	off += k
	if len(stream) < off+8 {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	off += 8 // bound: informational only for decode
	nbits, k := binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	off += k
	payload := stream[off : len(stream)-4]

	a := grid.New(dims...)
	n := a.Len()
	r := bitstream.NewReaderBits(payload, nbits)
	rankBits := uint(bitsFor(int(window) - 1))

	for start := 0; start < n; start += int(window) {
		end := start + int(window)
		if end > n {
			end = n
		}
		wsize := end - start
		knots64, err := r.ReadEliasGamma()
		if err != nil {
			return nil, fmt.Errorf("%w: knots: %v", ErrCorrupt, err)
		}
		knots := int(knots64)
		if knots < 1 || knots > wsize {
			return nil, fmt.Errorf("%w: knot count %d", ErrCorrupt, knots)
		}
		kx := make([]float64, knots)
		ky := make([]float64, knots)
		for i := 0; i < knots; i++ {
			pos := 0
			if knots > 1 {
				pos = i * (wsize - 1) / (knots - 1)
			}
			kx[i] = float64(pos)
			bits, err := r.ReadBits(64)
			if err != nil {
				return nil, fmt.Errorf("%w: knot value: %v", ErrCorrupt, err)
			}
			ky[i] = math.Float64frombits(bits)
		}
		spline := newMonotoneCubic(kx, ky)
		for i := 0; i < wsize; i++ {
			rank, err := r.ReadBits(rankBits)
			if err != nil {
				return nil, fmt.Errorf("%w: rank: %v", ErrCorrupt, err)
			}
			if int(rank) >= wsize {
				return nil, fmt.Errorf("%w: rank %d out of window", ErrCorrupt, rank)
			}
			a.Data[start+i] = spline.eval(float64(rank))
		}
		np, err := r.ReadEliasGamma()
		if err != nil {
			return nil, fmt.Errorf("%w: patch count: %v", ErrCorrupt, err)
		}
		if np > uint64(wsize) {
			return nil, fmt.Errorf("%w: patch count %d", ErrCorrupt, np)
		}
		pos := 0
		for j := uint64(0); j < np; j++ {
			d, err := r.ReadEliasGamma()
			if err != nil {
				return nil, fmt.Errorf("%w: patch delta: %v", ErrCorrupt, err)
			}
			pos += int(d)
			if pos >= wsize {
				return nil, fmt.Errorf("%w: patch position %d", ErrCorrupt, pos)
			}
			bits, err := r.ReadBits(64)
			if err != nil {
				return nil, fmt.Errorf("%w: patch value: %v", ErrCorrupt, err)
			}
			a.Data[start+pos] = math.Float64frombits(bits)
		}
	}
	return a, nil
}

// bitsFor returns the number of bits needed to represent x (x >= 0).
func bitsFor(x int) int {
	n := 1
	for x > 1 {
		n++
		x >>= 1
	}
	return n
}

// --- monotone cubic interpolation (Fritsch–Carlson) --------------------------

type monotoneCubic struct {
	xs, ys, ms []float64
}

// newMonotoneCubic builds a monotonicity-preserving cubic Hermite
// interpolant through (xs, ys). xs must be strictly increasing except that
// duplicate leading positions (degenerate tiny windows) collapse safely.
func newMonotoneCubic(xs, ys []float64) *monotoneCubic {
	n := len(xs)
	m := &monotoneCubic{xs: xs, ys: ys, ms: make([]float64, n)}
	if n == 1 {
		return m
	}
	// Secant slopes.
	d := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		dx := xs[i+1] - xs[i]
		if dx <= 0 {
			d[i] = 0
			continue
		}
		d[i] = (ys[i+1] - ys[i]) / dx
	}
	m.ms[0] = d[0]
	m.ms[n-1] = d[n-2]
	for i := 1; i < n-1; i++ {
		if d[i-1]*d[i] <= 0 {
			m.ms[i] = 0
		} else {
			m.ms[i] = (d[i-1] + d[i]) / 2
		}
	}
	// Fritsch–Carlson limiter.
	for i := 0; i < n-1; i++ {
		if d[i] == 0 {
			m.ms[i] = 0
			m.ms[i+1] = 0
			continue
		}
		alpha := m.ms[i] / d[i]
		beta := m.ms[i+1] / d[i]
		s := alpha*alpha + beta*beta
		if s > 9 {
			tau := 3 / math.Sqrt(s)
			m.ms[i] = tau * alpha * d[i]
			m.ms[i+1] = tau * beta * d[i]
		}
	}
	return m
}

func (m *monotoneCubic) eval(x float64) float64 {
	n := len(m.xs)
	if n == 1 {
		return m.ys[0]
	}
	if x <= m.xs[0] {
		return m.ys[0]
	}
	if x >= m.xs[n-1] {
		return m.ys[n-1]
	}
	// Binary search for the segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if m.xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	h := m.xs[hi] - m.xs[lo]
	if h <= 0 {
		return m.ys[lo]
	}
	t := (x - m.xs[lo]) / h
	t2 := t * t
	t3 := t2 * t
	h00 := 2*t3 - 3*t2 + 1
	h10 := t3 - 2*t2 + t
	h01 := -2*t3 + 3*t2
	h11 := t3 - t2
	return h00*m.ys[lo] + h10*h*m.ms[lo] + h01*m.ys[hi] + h11*h*m.ms[hi]
}
