package codec

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/blocked"
	"repro/internal/core"
	"repro/internal/grid"
)

// testArray is a smooth 2D field every codec (including ISABELA's spline
// model) can handle.
func testArray() *grid.Array {
	a := grid.New(32, 64)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i)*0.013)*3 + math.Cos(float64(i)*0.0041)
	}
	return a
}

func testParams(a *grid.Array, dt grid.DType) Params {
	return Params{
		Mode:     core.BoundAbs,
		AbsBound: 0.01,
		RelBound: 0.01, // pointwise epsilon for pwrel
		DType:    dt,
		Dims:     a.Dims,
		SlabRows: 8,
	}
}

// lossless marks codecs that must reproduce values exactly.
var lossless = map[string]bool{"gzip": true, "fpzip": true}

func TestRegistryComplete(t *testing.T) {
	want := []string{"blocked", "fpzip", "gzip", "isabela", "pwrel", "sz11", "sz14", "zfp"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
	for _, alias := range []string{"SZ-1.4", "sz", "SZ-1.1", "ZFP-0.5", "ISABELA-0.2.1", "pw"} {
		if _, err := Lookup(alias); err != nil {
			t.Errorf("alias %q: %v", alias, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown codec accepted")
	}
}

// TestFromCorePreservesValidation: every core parameter must survive the
// lift into codec form, so invalid values still fail (the contract
// parallel.CompressAll had before it was rewritten on the registry).
func TestFromCorePreservesValidation(t *testing.T) {
	a := testArray()
	cp := core.Params{Mode: core.BoundAbs, AbsBound: 1e-3, HitRateThreshold: 2}
	if err := cp.Validate(); err == nil {
		t.Fatal("core should reject threshold 2")
	}
	if _, err := Encode("sz14", a, FromCore(cp)); err == nil {
		t.Fatal("invalid HitRateThreshold survived FromCore")
	}
}

// TestDetectNamesV1Containers: the retired v1 blocked magic routes to
// the blocked codec (the whole "SZB" family is its prefix), whose decode
// then produces a migration hint — not a bare bad-magic error.
func TestDetectNamesV1Containers(t *testing.T) {
	c, err := Detect([]byte("SZBKxxxx"))
	if err != nil || c.Name() != "blocked" {
		t.Fatalf("Detect = %v, %v; want the blocked codec", c, err)
	}
	_, err = c.Decode([]byte("SZBKxxxx"), Params{})
	if err == nil || !errors.Is(err, blocked.ErrUnsupportedVersion) || !strings.Contains(err.Error(), "v1") {
		t.Fatalf("decode of a v1 container: got %v, want ErrUnsupportedVersion naming v1", err)
	}
	// A container version from the future must name the upgrade path too.
	_, err = c.Decode([]byte("SZB4xxxx"), Params{})
	if err == nil || !errors.Is(err, blocked.ErrUnsupportedVersion) {
		t.Fatalf("decode of a future container: got %v, want ErrUnsupportedVersion", err)
	}
}

// TestOneShotRoundTrip: every codec encodes and decodes through the
// registry, respecting its bound contract.
func TestOneShotRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a := testArray()
			p := testParams(a, grid.Float64)
			stream, err := Encode(name, a, p)
			if err != nil {
				t.Fatal(err)
			}
			out, err := Decode(name, stream, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := grid.SameShape(a, out); err != nil {
				t.Fatal(err)
			}
			checkBound(t, name, a, out, p)

			// The stream must identify its own codec.
			c, err := Detect(stream)
			if err != nil {
				t.Fatal(err)
			}
			if c.Name() != name {
				t.Fatalf("Detect says %s", c.Name())
			}
		})
	}
}

func checkBound(t *testing.T, name string, a, out *grid.Array, p Params) {
	t.Helper()
	for i := range a.Data {
		diff := math.Abs(a.Data[i] - out.Data[i])
		switch {
		case lossless[name]:
			if diff != 0 {
				t.Fatalf("lossless codec %s changed value %d", name, i)
			}
		case name == "pwrel":
			if diff > p.RelBound*math.Abs(a.Data[i])+1e-12 {
				t.Fatalf("%s: pointwise bound violated at %d", name, i)
			}
		default:
			if diff > p.AbsBound*(1+1e-9) {
				t.Fatalf("%s: bound violated at %d: |%g|", name, i, diff)
			}
		}
	}
}

// TestStreamingMatchesOneShot: for every codec, the writer face fed raw
// bytes must emit the identical stream, and the reader face must
// reproduce the identical raw reconstruction.
func TestStreamingMatchesOneShot(t *testing.T) {
	for _, name := range Names() {
		for _, dt := range []grid.DType{grid.Float32, grid.Float64} {
			t.Run(name+"/"+dt.String(), func(t *testing.T) {
				a := testArray()
				if dt == grid.Float32 {
					for i := range a.Data {
						a.Data[i] = float64(float32(a.Data[i]))
					}
				}
				p := testParams(a, dt)
				c, err := Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				want, err := c.Encode(a, p)
				if err != nil {
					t.Fatal(err)
				}

				var raw bytes.Buffer
				if err := a.WriteRaw(&raw, dt); err != nil {
					t.Fatal(err)
				}
				rawIn := append([]byte(nil), raw.Bytes()...)

				var got bytes.Buffer
				w, err := c.NewWriter(&got, p)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := w.Write(rawIn); err != nil {
					t.Fatal(err)
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("streamed bytes differ from one-shot (%d vs %d bytes)",
						got.Len(), len(want))
				}

				r, err := c.NewReader(bytes.NewReader(want), p)
				if err != nil {
					t.Fatal(err)
				}
				back, err := io.ReadAll(r)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
				out, err := c.Decode(want, p)
				if err != nil {
					t.Fatal(err)
				}
				var wantRaw bytes.Buffer
				if err := out.WriteRaw(&wantRaw, dt); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(back, wantRaw.Bytes()) {
					t.Fatal("streamed reconstruction differs from one-shot decode")
				}
			})
		}
	}
}

// TestReaderRecoversDType: self-describing formats record their element
// type, so streaming decode must emit bytes in that type even when the
// caller passes no Params — float32 streams must not inflate to float64.
func TestReaderRecoversDType(t *testing.T) {
	for _, name := range []string{"sz14", "blocked", "sz11", "zfp", "isabela", "fpzip"} {
		t.Run(name, func(t *testing.T) {
			a := testArray()
			for i := range a.Data {
				a.Data[i] = float64(float32(a.Data[i]))
			}
			p := testParams(a, grid.Float32)
			stream, err := Encode(name, a, p)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := Lookup(name)
			r, err := c.NewReader(bytes.NewReader(stream), Params{})
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(raw) != a.Len()*4 {
				t.Fatalf("decoded %d raw bytes, want %d (float32)", len(raw), a.Len()*4)
			}
		})
	}
}

// TestWriterRequiresDims: streaming writes without a shape must fail up
// front (gzip excepted — it is shapeless by nature).
func TestWriterRequiresDims(t *testing.T) {
	for _, name := range Names() {
		if name == "gzip" {
			continue
		}
		c, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.NewWriter(io.Discard, Params{Mode: core.BoundAbs, AbsBound: 0.1}); err == nil {
			t.Errorf("%s: writer without Dims accepted", name)
		}
	}
}

// TestBlockedStreamsWithRelativeFallback: the blocked codec accepts a
// relative bound on its streaming face by falling back to the buffered
// one-shot path (which resolves the global range), emitting identical
// bytes.
func TestBlockedStreamsWithRelativeFallback(t *testing.T) {
	a := testArray()
	p := Params{Mode: core.BoundRel, RelBound: 1e-4, Dims: a.Dims, SlabRows: 8}
	c, err := Lookup("blocked")
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Encode(a, p)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := a.WriteRaw(&raw, grid.Float64); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	w, err := c.NewWriter(&got, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(w, &raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("relative-bound streaming fallback differs from one-shot")
	}
}

// TestGzipNeedsShapeToDecode: the one lossless, non-self-describing
// format must demand a shape for one-shot decode but stream-inflate
// without one.
func TestGzipNeedsShapeToDecode(t *testing.T) {
	a := testArray()
	p := Params{DType: grid.Float32, Dims: a.Dims}
	stream, err := Encode("gzip", a, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode("gzip", stream, Params{DType: grid.Float32}); err == nil {
		t.Fatal("gzip decode without dims accepted")
	}
	c, _ := Lookup("gzip")
	r, err := c.NewReader(bytes.NewReader(stream), Params{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != a.Len()*4 {
		t.Fatalf("inflated %d bytes, want %d", len(raw), a.Len()*4)
	}
}
