package codec

// Slab range serving shared by szd's /v1/slab endpoints, the Go client,
// and `sz d -slab`: one parser for the slab-range spec that travels in
// the URL path, and one JSON shape for the container's random-access
// index.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/blocked"
	"repro/internal/core"
)

// maxSlabIndex bounds a parsed slab index. Containers cap dims[0] at
// 2^40 with at least one row per slab, so any larger request is
// malformed rather than merely out of range.
const maxSlabIndex = 1 << 40

// ParseSlabSpec parses a slab-range spec: "i" for a single slab or
// "lo-hi" for an inclusive index range. Indices are decimal, zero-based,
// unsigned, and must satisfy lo <= hi. The returned range is [lo, hi]
// inclusive; validation against a container's actual slab count is the
// caller's job.
func ParseSlabSpec(spec string) (lo, hi int, err error) {
	a, b, ranged := strings.Cut(spec, "-")
	lo, err = parseSlabIndex(a)
	if err != nil {
		return 0, 0, fmt.Errorf("bad slab spec %q: %w", spec, err)
	}
	hi = lo
	if ranged {
		hi, err = parseSlabIndex(b)
		if err != nil {
			return 0, 0, fmt.Errorf("bad slab spec %q: %w", spec, err)
		}
		if hi < lo {
			return 0, 0, fmt.Errorf("bad slab spec %q: range is inverted", spec)
		}
	}
	return lo, hi, nil
}

// parseSlabIndex accepts plain decimal digits only: no signs, spaces,
// or exotic numerals (strconv alone would admit "+3").
func parseSlabIndex(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty index")
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("index %q is not a decimal number", s)
		}
	}
	v, err := strconv.ParseUint(s, 10, 63)
	if err != nil || v >= maxSlabIndex {
		return 0, fmt.Errorf("index %q out of range", s)
	}
	return int(v), nil
}

// FormatSlabSpec renders a range in the form ParseSlabSpec accepts
// (single index when lo == hi).
func FormatSlabSpec(lo, hi int) string {
	if lo == hi {
		return strconv.Itoa(lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// SlabIndex is the /v1/slabs response: a blocked container's
// random-access map, enough for a remote reader to plan per-slab range
// requests without ever downloading the body.
type SlabIndex struct {
	Codec       string  `json:"codec"`
	Bytes       int     `json:"bytes"`
	Dims        []int   `json:"dims"`
	DType       string  `json:"dtype,omitempty"`
	AbsBound    float64 `json:"abs_bound,omitempty"`
	SlabRows    int     `json:"slab_rows"`
	Slabs       int     `json:"slabs"`
	HeaderLen   int     `json:"header_len"`
	SlabLengths []int   `json:"slab_lengths"`
	// Version/Streams/SharedCodebook describe the container flavor so a
	// remote reader can decide whether a compressed slab extent is
	// self-contained (shared-codebook containers reference a section
	// outside any one slab's extent).
	Version        int  `json:"version,omitempty"`
	Streams        int  `json:"streams,omitempty"`
	SharedCodebook bool `json:"shared_codebook,omitempty"`
}

// SlabIndexOf parses and verifies a blocked container's footer index
// into its wire shape. Non-blocked streams are an error: only the
// blocked container supports random access.
func SlabIndexOf(stream []byte) (*SlabIndex, error) {
	c, err := Detect(stream)
	if err != nil {
		return nil, err
	}
	if c.Name() != "blocked" {
		return nil, fmt.Errorf("codec %s has no slab index (random access needs a blocked container)", c.Name())
	}
	ix, err := blocked.Inspect(stream)
	if err != nil {
		return nil, err
	}
	return SlabIndexFrom(stream, ix), nil
}

// SlabIndexFrom renders an already-parsed footer index into the wire
// shape. Servers holding digest-verified store bytes pair it with
// blocked.InspectNoVerify to answer /v1/slabs without the O(container)
// CRC walk.
func SlabIndexFrom(stream []byte, ix *blocked.Index) *SlabIndex {
	ns := ix.NumSlabs()
	si := &SlabIndex{
		Codec:          "blocked",
		Bytes:          len(stream),
		Dims:           ix.Dims,
		SlabRows:       ix.SlabRows,
		Slabs:          ns,
		HeaderLen:      ix.HeaderLen,
		SlabLengths:    make([]int, ns),
		Version:        ix.Version,
		Streams:        ix.Streams,
		SharedCodebook: ix.SharedCodebook(),
	}
	for i := 0; i < ns; i++ {
		si.SlabLengths[i] = ix.Offsets[i+1] - ix.Offsets[i]
	}
	if h, _, err := core.ParseHeaderPrefix(stream[ix.HeaderLen:]); err == nil {
		si.DType = h.DType.String()
		si.AbsBound = h.AbsBound
	}
	return si
}
