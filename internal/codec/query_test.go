package codec

import (
	"net/url"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

func TestParseDims(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"100,500,500", 3, true},
		{"100x500x500", 3, true},
		{"1024", 1, true},
		{"", 0, true},
		{"0,5", 0, false},
		{"a,b", 0, false},
		{"-3", 0, false},
	} {
		dims, err := ParseDims(tc.in)
		if tc.ok != (err == nil) || (err == nil && len(dims) != tc.want) {
			t.Errorf("ParseDims(%q) = %v, %v", tc.in, dims, err)
		}
	}
}

// TestWireRoundTrip: Values -> ParamsFromValues must reproduce every
// wire-transported field, including an explicitly-set bound mode (with
// both bounds present, a dropped mode would silently re-derive
// BoundAbsAndRel on the receiver and change the compressed bytes).
func TestWireRoundTrip(t *testing.T) {
	p := Params{
		Mode:             core.BoundAbs,
		AbsBound:         1e-3,
		RelBound:         1e-4,
		Layers:           2,
		IntervalBits:     10,
		HitRateThreshold: 0.9,
		DType:            grid.Float32,
		Dims:             []int{100, 500, 500},
		SlabRows:         16,
		Workers:          4,
		Rate:             8,
		Streams:          4,
		Container:        3,
		SharedCodebook:   true,
	}
	got, err := ParamsFromValues(p.Values())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("wire roundtrip:\n got %+v\nwant %+v", got, p)
	}
}

func TestWireKeysCoverValues(t *testing.T) {
	p := Params{
		Mode:             core.BoundRel,
		AbsBound:         1,
		RelBound:         1,
		Layers:           1,
		IntervalBits:     1,
		HitRateThreshold: 0.5,
		DType:            grid.Float64,
		Dims:             []int{2},
		SlabRows:         1,
		Workers:          1,
		Rate:             1,
		Streams:          1,
		Container:        2,
		SharedCodebook:   true,
	}
	keys := map[string]bool{}
	for _, k := range WireKeys {
		keys[k] = true
	}
	for k := range p.Values() {
		if !keys[k] {
			t.Errorf("Values emits key %q missing from WireKeys (header fallback would ignore it)", k)
		}
	}
}

func TestParamsFromValuesRejectsBad(t *testing.T) {
	for _, bad := range []url.Values{
		{"mode": {"sideways"}},
		{"dims": {"0,4"}},
		{"dtype": {"f16"}},
		{"abs": {"-1"}},
		{"layers": {"x"}},
		{"streams": {"-2"}},
		{"container": {"v9"}},
		{"sharedcb": {"maybe"}},
	} {
		if _, err := ParamsFromValues(bad); err == nil {
			t.Errorf("ParamsFromValues(%v) accepted", bad)
		}
	}
}
