package codec

// Registration of every compressor in the repository. The adapters stay
// thin: parameter lowering plus, where a package has a native streaming
// form (blocked, gzip), wiring it through instead of the buffered
// fallback.

import (
	"compress/gzip"
	"fmt"
	"io"

	"repro/internal/blocked"
	"repro/internal/core"
	"repro/internal/fpzip"
	"repro/internal/grid"
	"repro/internal/gzipc"
	"repro/internal/isabela"
	"repro/internal/pwrel"
	"repro/internal/sz11"
	"repro/internal/zfp"
)

func init() {
	Register(&funcCodec{
		name: "sz14",
		encode: func(a *grid.Array, p Params) ([]byte, error) {
			stream, _, err := core.Compress(a, p.Core())
			return stream, err
		},
		decode: func(stream []byte, _ Params) (*grid.Array, grid.DType, error) {
			a, h, err := core.Decompress(stream)
			if err != nil {
				return nil, 0, err
			}
			return a, h.DType, nil
		},
	}, []byte(core.Magic), "sz", "sz-1.4")

	// The whole "SZB" family routes here; the container layer itself
	// distinguishes v2, v3, the retired v1, and versions from the future.
	Register(&blockedCodec{}, []byte("SZB"), "szbk")

	Register(&funcCodec{
		name: "pwrel",
		encode: func(a *grid.Array, p Params) ([]byte, error) {
			stream, _, err := pwrel.Compress(a, pwrel.Params{
				RelBound:     p.RelBound,
				Layers:       p.Layers,
				IntervalBits: p.IntervalBits,
			})
			return stream, err
		},
		decode: func(stream []byte, _ Params) (*grid.Array, grid.DType, error) {
			a, _, err := pwrel.Decompress(stream)
			return a, 0, err
		},
	}, []byte("SZPW"), "pw", "pointwise")

	Register(&funcCodec{
		name: "sz11",
		encode: func(a *grid.Array, p Params) ([]byte, error) {
			stream, _, err := sz11.Compress(a, sz11.Params{
				AbsBound:   p.absBound(a),
				OutputType: p.dtype(),
			})
			return stream, err
		},
		decode: func(stream []byte, _ Params) (*grid.Array, grid.DType, error) {
			a, err := sz11.Decompress(stream)
			if err != nil {
				return nil, 0, err
			}
			// The recorded element type sits at stream[4] in this
			// format (validated by Decompress above).
			return a, grid.DType(stream[4]), nil
		},
	}, []byte("SZ11"), "sz-1.1")

	Register(&funcCodec{
		name: "zfp",
		encode: func(a *grid.Array, p Params) ([]byte, error) {
			zp := zfp.Params{DType: p.dtype()}
			if p.Rate > 0 {
				zp.Mode = zfp.FixedRate
				zp.Rate = p.Rate
			} else {
				zp.Mode = zfp.FixedAccuracy
				zp.Tolerance = p.absBound(a)
			}
			stream, _, err := zfp.Compress(a, zp)
			return stream, err
		},
		decode: func(stream []byte, _ Params) (*grid.Array, grid.DType, error) {
			a, err := zfp.Decompress(stream)
			if err != nil {
				return nil, 0, err
			}
			// The recorded element type sits at stream[4] in this
			// format (validated by Decompress above).
			return a, grid.DType(stream[4]), nil
		},
	}, []byte("ZFPG"), "zfp-0.5")

	Register(&funcCodec{
		name: "isabela",
		encode: func(a *grid.Array, p Params) ([]byte, error) {
			stream, _, err := isabela.Compress(a, isabela.Params{
				AbsBound:   p.absBound(a),
				OutputType: p.dtype(),
			})
			return stream, err
		},
		decode: func(stream []byte, _ Params) (*grid.Array, grid.DType, error) {
			a, err := isabela.Decompress(stream)
			if err != nil {
				return nil, 0, err
			}
			// The recorded element type sits at stream[4] in this
			// format (validated by Decompress above).
			return a, grid.DType(stream[4]), nil
		},
	}, []byte("ISBG"), "isabela-0.2.1")

	Register(&funcCodec{
		name: "fpzip",
		encode: func(a *grid.Array, p Params) ([]byte, error) {
			return fpzip.Compress(a, p.dtype())
		},
		decode: func(stream []byte, _ Params) (*grid.Array, grid.DType, error) {
			return fpzip.Decompress(stream)
		},
	}, []byte("FPZG"))

	Register(&gzipCodec{}, []byte{0x1f, 0x8b})
}

// streamer is the optional interface a codec implements when its
// NewWriter/NewReader stream with memory independent of the payload
// (O(slab)/O(window)) instead of buffering. Admission controllers
// (szd) query it through StreamingWriter/StreamingReader, so the
// classification lives on the codec whose behavior it describes.
type streamer interface {
	streamingWriter(p Params) bool
	streamingReader() bool
}

// StreamingWriter reports whether the named codec's NewWriter streams
// with bounded memory for these params, as opposed to buffering the
// whole input. Unknown codecs report false (buffered: the conservative
// admission assumption).
func StreamingWriter(name string, p Params) bool {
	c, err := Lookup(name)
	if err != nil {
		return false
	}
	if s, ok := c.(streamer); ok {
		return s.streamingWriter(p)
	}
	return false
}

// StreamingReader reports whether the named codec's NewReader streams
// with bounded memory (vs buffering stream and reconstruction).
func StreamingReader(name string) bool {
	c, err := Lookup(name)
	if err != nil {
		return false
	}
	if s, ok := c.(streamer); ok {
		return s.streamingReader()
	}
	return false
}

// blockedCodec wires the container's native streaming forms through the
// registry. With an absolute bound the writer streams with O(slab)
// memory; relative bounds need the global value range, so the writer
// falls back to buffering and the one-shot path (which resolves the
// range first).
type blockedCodec struct{}

func (blockedCodec) Name() string { return "blocked" }

func (p Params) blocked() blocked.Params {
	return blocked.Params{
		Core:           p.Core(),
		SlabRows:       p.SlabRows,
		Workers:        p.Workers,
		Container:      p.Container,
		SharedCodebook: p.SharedCodebook,
	}
}

func (c *blockedCodec) Encode(a *grid.Array, p Params) ([]byte, error) {
	stream, _, err := blocked.Compress(a, p.blocked())
	return stream, err
}

func (c *blockedCodec) Decode(stream []byte, p Params) (*grid.Array, error) {
	return blocked.Decompress(stream, blocked.Params{Workers: p.Workers})
}

// A relative bound needs the global value range before slabbing, and a
// shared codebook needs every slab's histogram before any slab can be
// encoded, so only the absolute-bound self-contained writer can stream.
func (blockedCodec) streamingWriter(p Params) bool {
	return p.mode() == core.BoundAbs && !p.SharedCodebook
}
func (blockedCodec) streamingReader() bool { return true }

func (c *blockedCodec) NewWriter(w io.Writer, p Params) (io.WriteCloser, error) {
	if len(p.Dims) == 0 {
		return nil, fmt.Errorf("codec blocked: streaming write requires Params.Dims")
	}
	if c.streamingWriter(p) {
		return blocked.NewWriter(w, p.Dims, p.blocked())
	}
	return &bufWriter{dst: w, p: p, enc: c.Encode, name: "blocked"}, nil
}

func (c *blockedCodec) NewReader(r io.Reader, _ Params) (io.ReadCloser, error) {
	return blocked.NewReader(r)
}

// gzipCodec is the GZIP baseline: DEFLATE over the raw little-endian
// sample bytes. Both streaming faces are genuinely incremental
// (compress/gzip), with memory bounded by the DEFLATE window.
type gzipCodec struct{}

func (gzipCodec) Name() string { return "gzip" }

func (gzipCodec) streamingWriter(Params) bool { return true }
func (gzipCodec) streamingReader() bool       { return true }

func (gzipCodec) Encode(a *grid.Array, p Params) ([]byte, error) {
	return gzipc.Compress(a, p.dtype())
}

func (gzipCodec) Decode(stream []byte, p Params) (*grid.Array, error) {
	if len(p.Dims) == 0 {
		return nil, fmt.Errorf("codec gzip: decoding requires Params.Dims (gzip streams carry no shape)")
	}
	return gzipc.Decompress(stream, p.dtype(), p.Dims...)
}

func (gzipCodec) NewWriter(w io.Writer, _ Params) (io.WriteCloser, error) {
	return gzip.NewWriter(w), nil
}

func (gzipCodec) NewReader(r io.Reader, _ Params) (io.ReadCloser, error) {
	return gzip.NewReader(r)
}
