package codec

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/grid"
)

func TestParseSlabSpec(t *testing.T) {
	good := []struct {
		spec   string
		lo, hi int
	}{
		{"0", 0, 0},
		{"12", 12, 12},
		{"3-5", 3, 5},
		{"5-5", 5, 5},
		{"0-1099511627775", 0, 1<<40 - 1},
	}
	for _, c := range good {
		lo, hi, err := ParseSlabSpec(c.spec)
		if err != nil || lo != c.lo || hi != c.hi {
			t.Errorf("ParseSlabSpec(%q) = (%d, %d, %v), want (%d, %d)", c.spec, lo, hi, err, c.lo, c.hi)
		}
	}
	bad := []string{"", "-", "1-", "-2", "+3", "3-2", "0x10", " 1", "1 ", "1.5",
		"99999999999999999999", "1099511627776", "1-2-3", "a", "3-b", "−3"}
	for _, s := range bad {
		if _, _, err := ParseSlabSpec(s); err == nil {
			t.Errorf("ParseSlabSpec(%q) accepted, want error", s)
		}
	}
}

func FuzzParseSlabSpec(f *testing.F) {
	for _, seed := range []string{"0", "7", "3-5", "", "-", "1-2-3", "+9",
		"18446744073709551615", "0-0", "a-b", "12x", "007"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		lo, hi, err := ParseSlabSpec(spec)
		if err != nil {
			return
		}
		if lo < 0 || hi < lo || hi >= maxSlabIndex {
			t.Fatalf("ParseSlabSpec(%q) = (%d, %d) out of contract", spec, lo, hi)
		}
		// The canonical rendering must parse back to the same range.
		lo2, hi2, err := ParseSlabSpec(FormatSlabSpec(lo, hi))
		if err != nil || lo2 != lo || hi2 != hi {
			t.Fatalf("round trip of %q: (%d, %d, %v), want (%d, %d)", spec, lo2, hi2, err, lo, hi)
		}
	})
}

func TestSlabIndexOf(t *testing.T) {
	a := grid.New(16, 8, 8)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.02)
	}
	var raw bytes.Buffer
	if err := a.WriteRaw(&raw, grid.Float64); err != nil {
		t.Fatal(err)
	}
	p := Params{AbsBound: 1e-3, Dims: []int{16, 8, 8}, SlabRows: 4}
	c, err := Lookup("blocked")
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	zw, err := c.NewWriter(&stream, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(raw.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	si, err := SlabIndexOf(stream.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if si.Codec != "blocked" || si.Slabs != 4 || si.SlabRows != 4 {
		t.Fatalf("index = %+v, want 4 slabs x 4 rows", si)
	}
	if len(si.SlabLengths) != 4 {
		t.Fatalf("%d slab lengths, want 4", len(si.SlabLengths))
	}
	sum := 0
	for _, l := range si.SlabLengths {
		sum += l
	}
	if si.HeaderLen <= 0 || sum <= 0 || si.HeaderLen+sum >= si.Bytes {
		t.Errorf("inconsistent layout: header %d + body %d vs %d total", si.HeaderLen, sum, si.Bytes)
	}
	if si.DType != "float64" {
		t.Errorf("dtype = %q, want float64", si.DType)
	}

	// Non-blocked streams have no slab index.
	single, err := Lookup("sz14")
	if err != nil {
		t.Fatal(err)
	}
	szStream, err := single.Encode(a, Params{AbsBound: 1e-3, Dims: []int{16, 8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SlabIndexOf(szStream); err == nil {
		t.Fatal("SlabIndexOf accepted an sz14 stream")
	}
	if _, err := SlabIndexOf([]byte("garbage")); err == nil {
		t.Fatal("SlabIndexOf accepted garbage")
	}
}
