package codec

// Wire form of Params: the szd daemon and its clients exchange codec
// parameters as URL query values (also accepted as X-Sz-* headers). The
// keys deliberately match the `sz` CLI flag names.

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
)

// WireKeys is every parameter name the wire form uses, including the
// codec selector. The szd daemon accepts each as a query value or,
// prefixed X-Sz-, as a header; keep this list in sync with Values and
// ParamsFromValues below so the header fallback never drifts.
var WireKeys = []string{"codec", "mode", "dims", "dtype", "abs", "rel",
	"layers", "m", "hitrate", "slab", "workers", "zfprate",
	"streams", "container", "sharedcb"}

// ParseDims parses a dimension list, "100,500,500" or "100x500x500",
// slowest-varying first. Empty input yields nil dims.
func ParseDims(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	sep := ","
	if strings.Contains(s, "x") {
		sep = "x"
	}
	parts := strings.Split(s, sep)
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

// FormatDims renders dims in the comma form ParseDims accepts.
func FormatDims(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, ",")
}

// ParseDType parses a raw element type token (f32/float32/f64/float64).
func ParseDType(s string) (grid.DType, error) {
	switch s {
	case "f32", "float32":
		return grid.Float32, nil
	case "f64", "float64":
		return grid.Float64, nil
	}
	return 0, fmt.Errorf("bad dtype %q (f32|f64)", s)
}

// modeTokens maps the wire form of an explicit bound mode.
var modeTokens = map[core.BoundMode]string{
	core.BoundAbs:       "abs",
	core.BoundRel:       "rel",
	core.BoundAbsAndRel: "absrel",
}

// Values encodes p as the szd wire parameter set. Zero-valued knobs are
// omitted; the receiver's defaults apply.
func (p Params) Values() url.Values {
	v := url.Values{}
	set := func(key, val string) { v.Set(key, val) }
	if tok, ok := modeTokens[p.Mode]; ok {
		// An explicitly-set mode must travel: with both bounds present
		// the receiver's default would derive BoundAbsAndRel and the
		// remote stream would diverge from the local one.
		set("mode", tok)
	}
	if len(p.Dims) > 0 {
		set("dims", FormatDims(p.Dims))
	}
	switch p.DType {
	case grid.Float32:
		set("dtype", "f32")
	case grid.Float64:
		set("dtype", "f64")
	}
	if p.AbsBound > 0 {
		set("abs", strconv.FormatFloat(p.AbsBound, 'g', -1, 64))
	}
	if p.RelBound > 0 {
		set("rel", strconv.FormatFloat(p.RelBound, 'g', -1, 64))
	}
	if p.Layers > 0 {
		set("layers", strconv.Itoa(p.Layers))
	}
	if p.IntervalBits > 0 {
		set("m", strconv.Itoa(p.IntervalBits))
	}
	if p.HitRateThreshold > 0 {
		set("hitrate", strconv.FormatFloat(p.HitRateThreshold, 'g', -1, 64))
	}
	if p.SlabRows > 0 {
		set("slab", strconv.Itoa(p.SlabRows))
	}
	if p.Workers > 0 {
		set("workers", strconv.Itoa(p.Workers))
	}
	if p.Rate > 0 {
		set("zfprate", strconv.FormatFloat(p.Rate, 'g', -1, 64))
	}
	if p.Streams > 0 {
		set("streams", strconv.Itoa(p.Streams))
	}
	if p.Container > 0 {
		set("container", "v"+strconv.Itoa(p.Container))
	}
	if p.SharedCodebook {
		set("sharedcb", "1")
	}
	return v
}

// ParamsFromValues decodes the szd wire parameter set. Unknown keys are
// ignored so clients and servers can evolve independently; malformed
// values for known keys are errors. The bound mode is derived from which
// bounds are set (Params.mode), exactly as the CLI does.
func ParamsFromValues(v url.Values) (Params, error) {
	var p Params
	var err error
	getF := func(key string) (float64, error) {
		s := v.Get(key)
		if s == "" {
			return 0, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f < 0 {
			return 0, fmt.Errorf("bad %s %q", key, s)
		}
		return f, nil
	}
	getI := func(key string) (int, error) {
		s := v.Get(key)
		if s == "" {
			return 0, nil
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad %s %q", key, s)
		}
		return n, nil
	}
	if s := v.Get("mode"); s != "" {
		found := false
		for mode, tok := range modeTokens {
			if s == tok {
				p.Mode, found = mode, true
				break
			}
		}
		if !found {
			return Params{}, fmt.Errorf("bad mode %q (abs|rel|absrel)", s)
		}
	}
	if p.Dims, err = ParseDims(v.Get("dims")); err != nil {
		return Params{}, err
	}
	if s := v.Get("dtype"); s != "" {
		if p.DType, err = ParseDType(s); err != nil {
			return Params{}, err
		}
	}
	if p.AbsBound, err = getF("abs"); err != nil {
		return Params{}, err
	}
	if p.RelBound, err = getF("rel"); err != nil {
		return Params{}, err
	}
	if p.HitRateThreshold, err = getF("hitrate"); err != nil {
		return Params{}, err
	}
	if p.Rate, err = getF("zfprate"); err != nil {
		return Params{}, err
	}
	if p.Layers, err = getI("layers"); err != nil {
		return Params{}, err
	}
	if p.IntervalBits, err = getI("m"); err != nil {
		return Params{}, err
	}
	if p.SlabRows, err = getI("slab"); err != nil {
		return Params{}, err
	}
	if p.Workers, err = getI("workers"); err != nil {
		return Params{}, err
	}
	if p.Streams, err = getI("streams"); err != nil {
		return Params{}, err
	}
	if s := v.Get("container"); s != "" {
		switch s {
		case "v2", "2":
			p.Container = 2
		case "v3", "3":
			p.Container = 3
		default:
			return Params{}, fmt.Errorf("bad container %q (v2|v3)", s)
		}
	}
	if s := v.Get("sharedcb"); s != "" {
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Params{}, fmt.Errorf("bad sharedcb %q", s)
		}
		p.SharedCodebook = b
	}
	return p, nil
}
