package codec

// Hostile-prefix coverage: Detect and every registered codec's reader
// must return errors — never panic, never succeed — on empty input,
// short truncations of every magic, and valid magics followed by
// truncated payloads. A compression daemon feeds these functions bytes
// straight off the network, so this is the adversarial surface.

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/grid"
)

// encodeAll produces one valid stream per registered codec.
func encodeAll(t *testing.T) map[string][]byte {
	t.Helper()
	a := grid.New(8, 8)
	for i := range a.Data {
		a.Data[i] = float64(float32(math.Sin(float64(i) * 0.3)))
	}
	// RelBound doubles as pwrel's pointwise epsilon; every other codec
	// resolves the pair to its tighter effective absolute bound.
	p := Params{AbsBound: 1e-3, RelBound: 1e-3, DType: grid.Float32, Dims: []int{8, 8}}
	streams := map[string][]byte{}
	for _, name := range Names() {
		s, err := Encode(name, a, p)
		if err != nil {
			t.Fatalf("encoding %s: %v", name, err)
		}
		streams[name] = s
	}
	return streams
}

func TestDetectEmptyAndNil(t *testing.T) {
	for _, prefix := range [][]byte{nil, {}, {0x00}, {0xff, 0xff, 0xff, 0xff}} {
		if _, err := Detect(prefix); !errors.Is(err, ErrUnknownFormat) {
			t.Errorf("Detect(%v) err = %v, want ErrUnknownFormat", prefix, err)
		}
	}
}

// TestDetectTruncatedMagics feeds Detect every 1..7-byte truncation of
// every codec's stream. Prefixes shorter than the magic must not match
// (except where a shorter registered magic is a genuine prefix, as with
// nothing in the current registry); prefixes at or past the magic must
// identify the right codec.
func TestDetectTruncatedMagics(t *testing.T) {
	streams := encodeAll(t)
	for name, stream := range streams {
		for l := 1; l <= 7 && l <= len(stream); l++ {
			c, err := Detect(stream[:l])
			if err != nil {
				// Too short to identify: acceptable, but it must be
				// the documented sentinel, not a panic or a bogus hit.
				if !errors.Is(err, ErrUnknownFormat) {
					t.Errorf("%s: Detect on %d-byte prefix: %v", name, l, err)
				}
				continue
			}
			if c.Name() != name {
				t.Errorf("%s: %d-byte truncation detected as %s", name, l, c.Name())
			}
		}
	}
}

// TestReadersOnTruncatedStreams runs every codec's streaming reader on
// 1..7-byte truncations (magic fragments) and on a valid magic followed
// by a truncated payload. Every case must surface an error — from the
// constructor or the first reads — and must not panic.
func TestReadersOnTruncatedStreams(t *testing.T) {
	streams := encodeAll(t)
	p := Params{DType: grid.Float32, Dims: []int{8, 8}}
	for name, stream := range streams {
		c, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		cuts := []int{0, 1, 2, 3, 4, 5, 6, 7, len(stream) / 2, len(stream) - 1}
		for _, cut := range cuts {
			if cut > len(stream) {
				continue
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s: reader panicked on %d-byte truncation: %v", name, cut, r)
					}
				}()
				zr, err := c.NewReader(bytes.NewReader(stream[:cut]), p)
				if err != nil {
					return // rejected at construction: correct
				}
				_, err = io.ReadAll(zr)
				zr.Close()
				if err == nil {
					t.Errorf("%s: reading a %d-of-%d-byte truncation succeeded", name, cut, len(stream))
				}
			}()
		}
	}
}

// TestDecodeTruncatedStreams does the same through the one-shot Decode
// face.
func TestDecodeTruncatedStreams(t *testing.T) {
	streams := encodeAll(t)
	p := Params{DType: grid.Float32, Dims: []int{8, 8}}
	for name, stream := range streams {
		for _, cut := range []int{0, 1, 4, 7, len(stream) / 2, len(stream) - 1} {
			if cut > len(stream) {
				continue
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s: Decode panicked on %d-byte truncation: %v", name, cut, r)
					}
				}()
				if _, err := Decode(name, stream[:cut], p); err == nil {
					t.Errorf("%s: decoding a %d-of-%d-byte truncation succeeded", name, cut, len(stream))
				}
			}()
		}
	}
}
