// Package codec unifies every compressor in this repository — the SZ-1.4
// core, the blocked container, the pointwise-relative mode, and the five
// baselines the paper evaluates against — behind one interface and a
// name-indexed registry.
//
// Two calling conventions are supported by every codec:
//
//   - one-shot: Encode/Decode on in-memory arrays, the historical API;
//   - streaming: NewWriter/NewReader speak io.Writer/io.Reader over raw
//     little-endian sample bytes, so a field can flow file-to-file (or
//     pipe-to-pipe) through any registered codec.
//
// Codecs whose formats cannot be produced incrementally fall back to an
// internal buffer behind the streaming interface — the bytes they emit
// are identical to the one-shot path. The blocked container and gzip
// stream with memory bounded by O(slab) / O(window).
package codec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
)

// Params carries every knob a registered codec can consume. Codecs read
// the fields they understand and ignore the rest; zero values mean
// defaults. Dims and DType describe the raw sample layout and are
// mandatory for streaming writes (and for decoding formats that are not
// self-describing, like gzip).
type Params struct {
	// Mode selects absolute/relative/combined error bounding
	// (core.BoundAbs & co). 0 resolves from the bounds that are set:
	// BoundAbs for AbsBound alone, BoundAbsAndRel when both are set,
	// BoundRel otherwise.
	Mode core.BoundMode
	// AbsBound is the absolute error bound.
	AbsBound float64
	// RelBound is the value-range-relative bound — except for the
	// "pwrel" codec, where it is the pointwise-relative epsilon.
	RelBound float64
	// Layers is the SZ predictor layer count (0 = default).
	Layers int
	// IntervalBits is the SZ quantization code width (0 = default).
	IntervalBits int
	// HitRateThreshold is the SZ adaptive-advice threshold θ
	// (0 = default).
	HitRateThreshold float64
	// DType is the raw sample element type (0 = grid.Float64).
	DType grid.DType
	// Dims are the array dimensions, slowest-varying first.
	Dims []int
	// SlabRows is the blocked-container slab thickness (0 = auto).
	SlabRows int
	// Workers bounds blocked-container parallelism (0 = NumCPU).
	Workers int
	// Rate, when positive, selects ZFP's fixed-rate mode (bits/value)
	// instead of fixed-accuracy.
	Rate float64
	// Streams is the interleaved Huffman sub-stream count per slab
	// (0 = codec default of 1; >1 decodes with N independent bitstream
	// cursors for instruction-level parallelism).
	Streams int
	// Container pins the blocked container version: 0 = auto (v3 when
	// multi-stream or shared-codebook features are in play, else v2),
	// 2, or 3.
	Container int
	// SharedCodebook asks the blocked container for one per-container
	// Huffman codebook shared by every slab (v3, one-shot only).
	SharedCodebook bool
	// Stages, when non-nil, receives named sub-stage timings from deep in
	// the pipeline (see core.Params.Stages); it rides along into every
	// codec that lowers to core parameters.
	Stages func(name string, d time.Duration)
}

// FromCore lifts core compressor parameters into codec form.
func FromCore(cp core.Params) Params {
	return Params{
		Mode:             cp.Mode,
		AbsBound:         cp.AbsBound,
		RelBound:         cp.RelBound,
		Layers:           cp.Layers,
		IntervalBits:     cp.IntervalBits,
		HitRateThreshold: cp.HitRateThreshold,
		DType:            cp.OutputType,
	}
}

// mode resolves the bound mode, defaulting from which bounds are set.
func (p Params) mode() core.BoundMode {
	if p.Mode != 0 {
		return p.Mode
	}
	switch {
	case p.AbsBound > 0 && p.RelBound > 0:
		return core.BoundAbsAndRel
	case p.AbsBound > 0:
		return core.BoundAbs
	}
	return core.BoundRel
}

// Core lowers the parameters to core compressor form.
func (p Params) Core() core.Params {
	return core.Params{
		Mode:             p.mode(),
		AbsBound:         p.AbsBound,
		RelBound:         p.RelBound,
		Layers:           p.Layers,
		IntervalBits:     p.IntervalBits,
		HitRateThreshold: p.HitRateThreshold,
		OutputType:       p.dtype(),
		Streams:          p.Streams,
		Stages:           p.Stages,
	}
}

func (p Params) dtype() grid.DType {
	if p.DType == 0 {
		return grid.Float64
	}
	return p.DType
}

// absBound resolves the effective absolute bound for codecs that only
// understand absolute bounds (sz11, isabela, zfp fixed-accuracy),
// mirroring how the paper's evaluation derives per-set bounds.
func (p Params) absBound(a *grid.Array) float64 {
	var eb float64
	switch p.mode() {
	case core.BoundAbs:
		eb = p.AbsBound
	case core.BoundRel:
		_, _, rng := a.Range()
		eb = p.RelBound * rng
	case core.BoundAbsAndRel:
		_, _, rng := a.Range()
		eb = math.Min(p.AbsBound, p.RelBound*rng)
	}
	if eb <= 0 || math.IsNaN(eb) {
		eb = math.SmallestNonzeroFloat64
	}
	return eb
}

// Codec is one registered compressor.
type Codec interface {
	// Name is the registry key (e.g. "sz14", "blocked", "gzip").
	Name() string
	// Encode compresses a into a stream.
	Encode(a *grid.Array, p Params) ([]byte, error)
	// Decode reconstructs an array from a stream produced by Encode.
	// Codecs whose streams are not self-describing take Dims/DType
	// from p.
	Decode(stream []byte, p Params) (*grid.Array, error)
	// NewWriter returns a WriteCloser that consumes raw little-endian
	// p.DType samples in row-major order and emits the compressed
	// stream to w; the stream is complete after Close. p.Dims is
	// required.
	NewWriter(w io.Writer, p Params) (io.WriteCloser, error)
	// NewReader returns a ReadCloser producing the reconstruction as
	// raw little-endian sample bytes.
	NewReader(r io.Reader, p Params) (io.ReadCloser, error)
}

type entry struct {
	codec   Codec
	magic   []byte
	aliases []string
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
	aliasMap = map[string]string{}
)

// Register adds a codec under its name plus any aliases; magic, when
// non-empty, is the stream prefix Detect matches on. Duplicate names
// panic: registration happens in package init and a clash is a bug.
func Register(c Codec, magic []byte, aliases ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	name := strings.ToLower(c.Name())
	if _, dup := registry[name]; dup {
		panic("codec: duplicate registration of " + name)
	}
	registry[name] = entry{codec: c, magic: magic, aliases: aliases}
	for _, a := range aliases {
		aliasMap[strings.ToLower(a)] = name
	}
}

// Lookup resolves a codec by name or alias (case-insensitive).
func Lookup(name string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	key := strings.ToLower(name)
	if canon, ok := aliasMap[key]; ok {
		key = canon
	}
	e, ok := registry[key]
	if !ok {
		return nil, fmt.Errorf("codec: unknown codec %q (have %s)", name, strings.Join(namesLocked(), ", "))
	}
	return e.codec, nil
}

// Names lists the registered codec names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ErrUnknownFormat is returned by Detect when no registered codec claims
// the stream prefix.
var ErrUnknownFormat = errors.New("codec: unrecognized stream format")

// Detect identifies the codec that produced a stream from its leading
// bytes (4 are enough for every registered format). Version dispatch
// within a family is the codec's own job: the blocked codec claims the
// whole "SZB" prefix and reports retired (v1) or too-new container
// versions itself, with an actionable error instead of "bad magic".
func Detect(prefix []byte) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, e := range registry {
		if len(e.magic) > 0 && len(prefix) >= len(e.magic) && bytes.Equal(prefix[:len(e.magic)], e.magic) {
			return e.codec, nil
		}
	}
	return nil, ErrUnknownFormat
}

// Encode one-shot compresses a with the named codec.
func Encode(name string, a *grid.Array, p Params) ([]byte, error) {
	c, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return c.Encode(a, p)
}

// Decode one-shot decompresses a stream with the named codec.
func Decode(name string, stream []byte, p Params) (*grid.Array, error) {
	c, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return c.Decode(stream, p)
}

// funcCodec adapts one-shot Encode/Decode functions into a full Codec:
// the streaming faces buffer raw samples (writer) or the compressed
// stream (reader) and delegate, so streamed bytes match one-shot bytes
// exactly. decode returns the element type raw output should use when
// the stream records it; 0 falls back to p.DType.
type funcCodec struct {
	name   string
	encode func(a *grid.Array, p Params) ([]byte, error)
	decode func(stream []byte, p Params) (*grid.Array, grid.DType, error)
}

func (c *funcCodec) Name() string { return c.name }

func (c *funcCodec) Encode(a *grid.Array, p Params) ([]byte, error) {
	return c.encode(a, p)
}

func (c *funcCodec) Decode(stream []byte, p Params) (*grid.Array, error) {
	a, _, err := c.decode(stream, p)
	return a, err
}

func (c *funcCodec) NewWriter(w io.Writer, p Params) (io.WriteCloser, error) {
	if len(p.Dims) == 0 {
		return nil, fmt.Errorf("codec %s: streaming write requires Params.Dims", c.name)
	}
	return &bufWriter{dst: w, p: p, enc: c.encode, name: c.name}, nil
}

func (c *funcCodec) NewReader(r io.Reader, p Params) (io.ReadCloser, error) {
	stream, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	a, dt, err := c.decode(stream, p)
	if err != nil {
		return nil, err
	}
	if dt == 0 {
		dt = p.dtype()
	}
	var raw bytes.Buffer
	raw.Grow(a.Len() * dt.Size())
	if err := a.WriteRaw(&raw, dt); err != nil {
		return nil, err
	}
	return io.NopCloser(&raw), nil
}

// bufWriter accumulates raw sample bytes and runs the one-shot encoder
// at Close.
type bufWriter struct {
	dst    io.Writer
	p      Params
	enc    func(a *grid.Array, p Params) ([]byte, error)
	name   string
	buf    bytes.Buffer
	closed bool
}

func (bw *bufWriter) Write(b []byte) (int, error) {
	if bw.closed {
		return 0, fmt.Errorf("codec %s: write after Close", bw.name)
	}
	return bw.buf.Write(b)
}

func (bw *bufWriter) Close() error {
	if bw.closed {
		return nil
	}
	bw.closed = true
	dt := bw.p.dtype()
	n := 1
	for _, d := range bw.p.Dims {
		n *= d
	}
	if bw.buf.Len() != n*dt.Size() {
		return fmt.Errorf("codec %s: got %d raw bytes, want %d (%v x %v)",
			bw.name, bw.buf.Len(), n*dt.Size(), bw.p.Dims, dt)
	}
	a, err := grid.ReadRaw(&bw.buf, dt, bw.p.Dims...)
	if err != nil {
		return err
	}
	stream, err := bw.enc(a, bw.p)
	if err != nil {
		return err
	}
	_, err = bw.dst.Write(stream)
	return err
}
