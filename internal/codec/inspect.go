package codec

// Stream inspection shared by `sz inspect` and szd's /v1/inspect: one
// parse into a machine-readable StreamInfo, one canonical text rendering.

import (
	"fmt"
	"strings"

	"repro/internal/blocked"
	"repro/internal/core"
)

// StreamInfo describes a compressed stream without decompressing it.
// Fields beyond Codec and Bytes are populated only for formats whose
// headers carry them (sz14 single streams, blocked containers).
type StreamInfo struct {
	Codec        string  `json:"codec"`
	Bytes        int     `json:"bytes"`
	Dims         []int   `json:"dims,omitempty"`
	DType        string  `json:"dtype,omitempty"`
	AbsBound     float64 `json:"abs_bound,omitempty"`
	Layers       int     `json:"layers,omitempty"`
	IntervalBits int     `json:"interval_bits,omitempty"`
	Intervals    int     `json:"intervals,omitempty"`
	Points       int     `json:"points,omitempty"`
	Outliers     int     `json:"outliers,omitempty"`
	Slabs        int     `json:"slabs,omitempty"`
	SlabRows     int     `json:"slab_rows,omitempty"`
	BodyBytes    int     `json:"body_bytes,omitempty"`
	MinSlabBytes int     `json:"min_slab_bytes,omitempty"`
	MaxSlabBytes int     `json:"max_slab_bytes,omitempty"`
	// Container/entropy layout (blocked v3; Streams also set for
	// multi-stream sz14 single streams).
	ContainerVersion int  `json:"container_version,omitempty"`
	Streams          int  `json:"streams,omitempty"`
	SharedCodebook   bool `json:"shared_codebook,omitempty"`
	CodebookBytes    int  `json:"codebook_bytes,omitempty"`
}

// InspectStream detects the codec of a stream and parses the metadata
// its format exposes. The payload is never decompressed.
func InspectStream(stream []byte) (*StreamInfo, error) {
	c, err := Detect(stream)
	if err != nil {
		return nil, err
	}
	si := &StreamInfo{Codec: c.Name(), Bytes: len(stream)}
	switch c.Name() {
	case "sz14":
		h, err := core.Inspect(stream)
		if err != nil {
			return nil, err
		}
		si.Dims = h.Dims
		si.DType = h.DType.String()
		si.AbsBound = h.AbsBound
		si.Layers = h.Layers
		si.IntervalBits = h.IntervalBits
		si.Intervals = (1 << h.IntervalBits) - 1
		si.Points = h.N()
		si.Outliers = h.NumOutliers
		si.Streams = h.Streams
		si.SharedCodebook = h.SharedCodebook
	case "blocked":
		ix, err := blocked.Inspect(stream)
		if err != nil {
			return nil, err
		}
		ns := ix.NumSlabs()
		si.Dims = ix.Dims
		si.Slabs = ns
		si.SlabRows = ix.SlabRows
		si.ContainerVersion = ix.Version
		si.Streams = ix.Streams
		si.SharedCodebook = ix.SharedCodebook()
		si.CodebookBytes = ix.CodebookLen
		si.BodyBytes = ix.Offsets[ns]
		minL, maxL := -1, 0
		for i := 0; i < ns; i++ {
			l := ix.Offsets[i+1] - ix.Offsets[i]
			if minL < 0 || l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		si.MinSlabBytes, si.MaxSlabBytes = minL, maxL
		// The per-slab element type lives in each slab's own header.
		if h, _, err := core.ParseHeaderPrefix(stream[ix.HeaderLen:]); err == nil {
			si.DType = h.DType.String()
			si.AbsBound = h.AbsBound
		}
	}
	return si, nil
}

// Text renders the info in `sz inspect`'s human-readable format.
func (si *StreamInfo) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "codec:  %s\n", si.Codec)
	fmt.Fprintf(&b, "bytes:  %d\n", si.Bytes)
	switch si.Codec {
	case "sz14":
		fmt.Fprintf(&b, "dims:   %v\n", si.Dims)
		fmt.Fprintf(&b, "dtype:  %v\n", si.DType)
		fmt.Fprintf(&b, "bound:  %g (abs)\n", si.AbsBound)
		fmt.Fprintf(&b, "layers: %d\n", si.Layers)
		fmt.Fprintf(&b, "m:      %d bits (%d intervals)\n", si.IntervalBits, si.Intervals)
		fmt.Fprintf(&b, "escapes: %d of %d points\n", si.Outliers, si.Points)
		if si.Streams > 1 {
			fmt.Fprintf(&b, "streams: %d interleaved\n", si.Streams)
		}
	case "blocked":
		fmt.Fprintf(&b, "dims:   %v\n", si.Dims)
		fmt.Fprintf(&b, "format: container v%d\n", si.ContainerVersion)
		if si.Streams > 0 {
			fmt.Fprintf(&b, "streams: %d per slab", si.Streams)
			if si.SharedCodebook {
				fmt.Fprintf(&b, ", shared codebook (%d bytes)", si.CodebookBytes)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "slabs:  %d x %d rows\n", si.Slabs, si.SlabRows)
		fmt.Fprintf(&b, "body:   %d bytes (slab streams %d..%d bytes)\n",
			si.BodyBytes, si.MinSlabBytes, si.MaxSlabBytes)
		if si.DType != "" {
			fmt.Fprintf(&b, "dtype:  %v\n", si.DType)
			fmt.Fprintf(&b, "bound:  %g (abs)\n", si.AbsBound)
		}
	}
	return b.String()
}
