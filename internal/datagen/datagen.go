// Package datagen synthesizes scientific data sets with the statistical
// character of the three production collections used in the SZ-1.4 paper's
// evaluation (Table III):
//
//   - ATM: 2D climate-simulation fields (CESM ATM component) — large smooth
//     structures with fairly sharp fronts and spiky regions. Named variants
//     model specific paper variables: FREQSH (dense, low compression
//     factor), SNOWHLND (sparse, high compression factor), CDNUMC (huge
//     dynamic range ~1e-3..1e11, the ZFP bound-violation case).
//   - APS: 2D X-ray detector frames from the Advanced Photon Source —
//     diffraction rings, shot noise, hot pixels.
//   - Hurricane: 3D hurricane-simulation fields — a translating vortex in
//     a vertically stratified atmosphere with turbulence.
//
// The production archives (2.6 TB / 40 GB / 1.2 GB) are not shippable;
// these generators exercise the identical compressor code paths with
// fields that are smooth at large scale yet spiky locally, which is the
// property the paper's analysis hinges on. All values are rounded to
// float32 precision, matching the single-precision originals.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/grid"
)

// Paper dimensions (Table III). Generators accept arbitrary dims; the
// experiment harness scales these down by default for runtime.
var (
	// ATMDims is the paper's ATM field size (1800 × 3600).
	ATMDims = []int{1800, 3600}
	// APSDims is the paper's APS frame size (2560 × 2560).
	APSDims = []int{2560, 2560}
	// HurricaneDims is the paper's hurricane field size (100 × 500 × 500).
	HurricaneDims = []int{100, 500, 500}
)

// snap32 rounds every value to float32 precision in place and returns a.
func snap32(a *grid.Array) *grid.Array {
	for i, v := range a.Data {
		a.Data[i] = float64(float32(v))
	}
	return a
}

// ATM synthesizes a generic 2D climate-like field of size rows × cols.
func ATM(rows, cols int, seed int64) *grid.Array {
	return ATMVariant("GENERIC", rows, cols, seed)
}

// ATMVariant synthesizes a named ATM-like variable. Known names: GENERIC,
// FREQSH, SNOWHLND, CDNUMC. Unknown names fall back to GENERIC with the
// name hashed into the seed so distinct variables decorrelate.
func ATMVariant(name string, rows, cols int, seed int64) *grid.Array {
	switch name {
	case "FREQSH":
		return atmFreqsh(rows, cols, seed)
	case "SNOWHLND":
		return atmSnow(rows, cols, seed)
	case "CDNUMC":
		return atmCdnumc(rows, cols, seed)
	case "GENERIC":
		return atmGeneric(rows, cols, seed)
	default:
		var h int64
		for _, c := range name {
			h = h*131 + int64(c)
		}
		return atmGeneric(rows, cols, seed^h)
	}
}

// atmGeneric: zonal waves + Gaussian anomalies + a sharp front + localized
// spikes over a mostly smooth texture.
//
// The texture is deliberately curvature-dominated rather than noise-
// dominated: two smooth wave systems with wavelengths fixed in *cells*
// (so per-cell smoothness is resolution-independent) whose second
// derivatives straddle the eb_rel = 1e-4 quantization step, plus a noise
// floor far below it. This reproduces the paper's Table II structure —
// on original values a 2-layer predictor (exact to 3rd order) beats
// Lorenzo, while on decompressed values the ±eb quantization noise,
// amplified by the larger stencil weights, makes 1-layer the best choice.
func atmGeneric(rows, cols int, seed int64) *grid.Array {
	rng := rand.New(rand.NewSource(seed))
	a := grid.New(rows, cols)
	type blob struct{ cy, cx, sy, sx, amp float64 }
	blobs := make([]blob, 12)
	for i := range blobs {
		blobs[i] = blob{
			cy:  rng.Float64(),
			cx:  rng.Float64(),
			sy:  0.02 + rng.Float64()*0.1,
			sx:  0.02 + rng.Float64()*0.1,
			amp: rng.NormFloat64() * 8,
		}
	}
	frontY := 0.3 + rng.Float64()*0.4
	ph1, ph2 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
	// Wave systems with fixed per-cell wavelengths: ~60 cells (residual at
	// the Lorenzo hit/miss boundary) and ~20 cells (Lorenzo misses and
	// spreads codes; a 2-layer stencil still captures it).
	kA := 2 * math.Pi / 60
	kB := 2 * math.Pi / 20
	for i := 0; i < rows; i++ {
		y := float64(i) / float64(rows)
		fi := float64(i)
		// Meridional base profile (like temperature vs latitude).
		base := 25*math.Cos(math.Pi*(y-0.5)) - 5
		for j := 0; j < cols; j++ {
			x := float64(j) / float64(cols)
			fj := float64(j)
			v := base
			v += 1.0 * math.Sin(kA*fj+ph1) * math.Sin(kA*fi*0.7+ph2)
			v += 0.4 * math.Sin(kB*fj+ph2) * math.Cos(kB*fi*0.8+ph1)
			for _, b := range blobs {
				dy := (y - b.cy) / b.sy
				dx := (x - b.cx) / b.sx
				if dy*dy+dx*dx < 25 {
					v += b.amp * math.Exp(-0.5*(dy*dy+dx*dx))
				}
			}
			// Sharp front: tanh step across frontY.
			v += 6 * math.Tanh((y-frontY)*120)
			// Spiky small regions.
			if rng.Float64() < 0.0015 {
				v += rng.NormFloat64() * 15
			}
			v += rng.NormFloat64() * 0.0005
			a.Data[i*cols+j] = v
		}
	}
	return snap32(a)
}

// atmFreqsh: a [0,1]-valued cloud-frequency-like field: smooth patches with
// fine-grained texture everywhere — compresses modestly (the paper's
// low-CF representative, CF ≈ 6.5 at eb_rel 1e-4).
func atmFreqsh(rows, cols int, seed int64) *grid.Array {
	rng := rand.New(rand.NewSource(seed))
	a := grid.New(rows, cols)
	ph := rng.Float64() * 2 * math.Pi
	for i := 0; i < rows; i++ {
		y := float64(i) / float64(rows)
		for j := 0; j < cols; j++ {
			x := float64(j) / float64(cols)
			// Texture scaled so the residual noise sits a few quantization
			// steps wide at eb_rel = 1e-4 — that is what yields the paper's
			// moderate CF ≈ 6.5 for this variable.
			v := 0.5 + 0.3*math.Sin(6*math.Pi*x+ph)*math.Cos(4*math.Pi*y)
			v += 0.05 * math.Sin(40*math.Pi*x) * math.Sin(36*math.Pi*y)
			v += rng.NormFloat64() * 0.0006
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			a.Data[i*cols+j] = v
		}
	}
	return snap32(a)
}

// atmSnow: mostly-zero field with smooth nonzero patches (snow cover over
// land at high latitude) — the paper's high-CF representative (CF ≈ 48).
func atmSnow(rows, cols int, seed int64) *grid.Array {
	rng := rand.New(rand.NewSource(seed))
	a := grid.New(rows, cols)
	// A handful of small smooth patches: ~90% of the field is exactly
	// zero, giving the very high compression factor (paper: CF ≈ 48 at
	// eb_rel = 1e-4) that makes this the high-CF study variable.
	type patch struct{ cy, cx, r, amp float64 }
	patches := make([]patch, 4)
	for i := range patches {
		patches[i] = patch{
			cy:  rng.Float64()*0.25 + 0.7, // high "latitude"
			cx:  rng.Float64(),
			r:   0.03 + rng.Float64()*0.06,
			amp: 0.5 + rng.Float64()*2,
		}
	}
	for i := 0; i < rows; i++ {
		y := float64(i) / float64(rows)
		for j := 0; j < cols; j++ {
			x := float64(j) / float64(cols)
			v := 0.0
			for _, p := range patches {
				dy := y - p.cy
				dx := x - p.cx
				d := math.Sqrt(dy*dy+dx*dx) / p.r
				if d < 1 {
					v += p.amp * (1 - d) * (1 - d)
				}
			}
			a.Data[i*cols+j] = v
		}
	}
	return snap32(a)
}

// atmCdnumc: positive field with ~14 decades of dynamic range (cloud
// droplet number concentration): log-smooth structure, so the linear-space
// range is enormous — the case where ZFP's exponent alignment breaks the
// error bound.
func atmCdnumc(rows, cols int, seed int64) *grid.Array {
	rng := rand.New(rand.NewSource(seed))
	a := grid.New(rows, cols)
	ph := rng.Float64() * 2 * math.Pi
	for i := 0; i < rows; i++ {
		y := float64(i) / float64(rows)
		for j := 0; j < cols; j++ {
			x := float64(j) / float64(cols)
			// log10 value meanders between -3 and +11.
			lg := 4 + 7*math.Sin(2*math.Pi*x+ph)*math.Cos(math.Pi*y) + rng.NormFloat64()*0.3
			if lg < -3 {
				lg = -3
			}
			if lg > 11 {
				lg = 11
			}
			a.Data[i*cols+j] = math.Pow(10, lg)
		}
	}
	return snap32(a)
}

// APS synthesizes a 2D X-ray diffraction frame of size rows × cols:
// concentric Debye–Scherrer rings around a beam center, multiplicative
// shot noise, and occasional hot pixels.
func APS(rows, cols int, seed int64) *grid.Array {
	rng := rand.New(rand.NewSource(seed))
	a := grid.New(rows, cols)
	cy := float64(rows) * (0.45 + rng.Float64()*0.1)
	cx := float64(cols) * (0.45 + rng.Float64()*0.1)
	nRings := 8
	ringR := make([]float64, nRings)
	ringW := make([]float64, nRings)
	ringA := make([]float64, nRings)
	maxR := math.Hypot(float64(rows), float64(cols)) / 2
	for i := range ringR {
		ringR[i] = maxR * (0.1 + 0.85*float64(i)/float64(nRings)) * (0.9 + rng.Float64()*0.2)
		ringW[i] = maxR * (0.004 + rng.Float64()*0.01)
		ringA[i] = 200 + rng.Float64()*2000
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			r := math.Hypot(float64(i)-cy, float64(j)-cx)
			// Beam-stop background decays with radius.
			v := 40 + 4000*math.Exp(-r/(maxR*0.08))
			for k := 0; k < nRings; k++ {
				d := (r - ringR[k]) / ringW[k]
				if d > -6 && d < 6 {
					v += ringA[k] * math.Exp(-0.5*d*d)
				}
			}
			// Shot noise (approximately Poisson via Gaussian of sqrt mean).
			v += rng.NormFloat64() * math.Sqrt(v)
			if v < 0 {
				v = 0
			}
			if rng.Float64() < 0.0002 {
				v = 60000 + rng.Float64()*5000 // hot pixel
			}
			a.Data[i*cols+j] = v
		}
	}
	return snap32(a)
}

// Hurricane synthesizes a 3D hurricane-like field of size nz × ny × nx:
// a Rankine-style vortex whose center drifts with height, embedded in a
// stratified background with turbulent perturbations.
func Hurricane(nz, ny, nx int, seed int64) *grid.Array {
	rng := rand.New(rand.NewSource(seed))
	a := grid.New(nz, ny, nx)
	cy0 := 0.4 + rng.Float64()*0.2
	cx0 := 0.4 + rng.Float64()*0.2
	drift := (rng.Float64() - 0.5) * 0.2
	// Feature scales are resolution-aware (fixed extent in *cells*, not in
	// domain units) so per-cell smoothness — which is what prediction-based
	// compression sees — matches the production data regardless of the
	// generated size. Production hurricane fields are smooth enough for
	// SZ-1.4 to reach CF ≈ 21 at eb_rel = 1e-4 (paper Fig. 6c); a vortex
	// core a few cells wide at reduced scale would destroy that character.
	minDim := ny
	if nx < minDim {
		minDim = nx
	}
	coreR := 0.10 + rng.Float64()*0.04
	if minCore := 16.0 / float64(minDim); coreR < minCore {
		coreR = minCore
	}
	// Eddy wavelength ≈ 30 cells.
	eddyCyclesY := float64(ny) / 30
	eddyCyclesX := float64(nx) / 30
	vmax := 60 + rng.Float64()*20
	for z := 0; z < nz; z++ {
		h := float64(z) / float64(nz)
		cy := cy0 + drift*h
		cx := cx0 + drift*h*0.5
		strength := vmax * math.Exp(-2*h) // decays with altitude
		for y := 0; y < ny; y++ {
			fy := float64(y) / float64(ny)
			for x := 0; x < nx; x++ {
				fx := float64(x) / float64(nx)
				dy := fy - cy
				dx := fx - cx
				r := math.Hypot(dy, dx)
				// Rankine vortex tangential speed.
				var vt float64
				if r < coreR {
					vt = strength * r / coreR
				} else {
					vt = strength * coreR / r
				}
				// Project onto the x-direction wind component.
				var u float64
				if r > 1e-9 {
					u = -vt * dy / r
				}
				// Background shear + stratification + smooth eddies; the
				// stochastic term stays far below the 1e-5-relative scale.
				u += 10 * h
				u += 3 * math.Sin(2*math.Pi*fy) * math.Cos(2*math.Pi*fx)
				u += 0.6 * math.Sin(2*math.Pi*eddyCyclesY*fy+3*h) * math.Sin(2*math.Pi*eddyCyclesX*fx)
				u += rng.NormFloat64() * 0.0005
				a.Data[(z*ny+y)*nx+x] = u
			}
		}
	}
	return snap32(a)
}

// HACC synthesizes a 1D particle-coordinate array like the cosmology
// workload the paper's introduction motivates (HACC's 20 PB per
// trillion-particle run). Particles cluster into halos: positions are a
// mixture of dense Gaussian clumps and a uniform background, stored in
// the quasi-sorted order a space-filling-curve domain decomposition
// produces — locally correlated, which is what makes 1D prediction
// meaningful on this workload.
func HACC(n int, seed int64) *grid.Array {
	rng := rand.New(rand.NewSource(seed))
	a := grid.New(n)
	const boxSize = 256.0 // Mpc/h-style box
	nHalos := n/2048 + 4
	centers := make([]float64, nHalos)
	widths := make([]float64, nHalos)
	for i := range centers {
		centers[i] = rng.Float64() * boxSize
		widths[i] = 0.1 + rng.Float64()*1.5
	}
	pos := 0.0
	for i := 0; i < n; i++ {
		// Sweep through the box; particles near the sweep point belong to
		// the local region (quasi-sorted), drawn from halo or background.
		pos += boxSize / float64(n)
		var x float64
		if rng.Float64() < 0.7 {
			h := rng.Intn(nHalos)
			// Nearest periodic image of the halo to the sweep position.
			c := centers[h]
			if math.Abs(c-pos) > boxSize/2 {
				if c > pos {
					c -= boxSize
				} else {
					c += boxSize
				}
			}
			x = c + rng.NormFloat64()*widths[h]
		} else {
			x = pos + (rng.Float64()-0.5)*8
		}
		// Wrap into the box.
		x = math.Mod(math.Mod(x, boxSize)+boxSize, boxSize)
		a.Data[i] = x
	}
	return snap32(a)
}

// Set describes a named data set for the experiment harness.
type Set struct {
	Name string
	// Gen produces the array with the configured scale.
	Gen func() *grid.Array
	// DType is the source precision (all paper sets are float32).
	DType grid.DType
}

// Scale controls the generated size relative to the paper's dimensions.
type Scale struct {
	// Factor divides each paper dimension (1 = full size). Typical test
	// and benchmark runs use 8–16.
	Factor int
	// Seed feeds the generators.
	Seed int64
}

// StandardSets returns the three paper data sets at the given scale.
func StandardSets(sc Scale) []Set {
	if sc.Factor < 1 {
		sc.Factor = 1
	}
	div := func(dims []int) []int {
		out := make([]int, len(dims))
		for i, d := range dims {
			out[i] = d / sc.Factor
			if out[i] < 8 {
				out[i] = 8
			}
		}
		return out
	}
	atm := div(ATMDims)
	aps := div(APSDims)
	hur := div(HurricaneDims)
	return []Set{
		{Name: "ATM", DType: grid.Float32, Gen: func() *grid.Array { return ATM(atm[0], atm[1], sc.Seed) }},
		{Name: "APS", DType: grid.Float32, Gen: func() *grid.Array { return APS(aps[0], aps[1], sc.Seed+1) }},
		{Name: "Hurricane", DType: grid.Float32, Gen: func() *grid.Array { return Hurricane(hur[0], hur[1], hur[2], sc.Seed+2) }},
	}
}

// Describe returns a Table III-style description line for a generated set.
func Describe(s Set) string {
	a := s.Gen()
	dims := ""
	for i, d := range a.Dims {
		if i > 0 {
			dims += "×"
		}
		dims += fmt.Sprint(d)
	}
	return fmt.Sprintf("%-10s %-12s %d values (%s)", s.Name, dims, a.Len(), s.DType)
}
