package datagen

import (
	"math"
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestDeterminism(t *testing.T) {
	a := ATM(50, 60, 42)
	b := ATM(50, 60, 42)
	if !a.Equal(b) {
		t.Fatal("same seed must give identical data")
	}
	c := ATM(50, 60, 43)
	if a.Equal(c) {
		t.Fatal("different seeds should differ")
	}
}

func TestAllFloat32Representable(t *testing.T) {
	arrays := []*grid.Array{
		ATM(30, 40, 1),
		ATMVariant("FREQSH", 30, 40, 1),
		ATMVariant("SNOWHLND", 30, 40, 1),
		ATMVariant("CDNUMC", 30, 40, 1),
		APS(30, 40, 1),
		Hurricane(10, 20, 20, 1),
	}
	for k, a := range arrays {
		for i, v := range a.Data {
			if v != float64(float32(v)) {
				t.Fatalf("array %d value %d not float32: %v", k, i, v)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("array %d value %d non-finite", k, i)
			}
		}
	}
}

func TestDims(t *testing.T) {
	a := Hurricane(5, 7, 9, 1)
	if a.Dims[0] != 5 || a.Dims[1] != 7 || a.Dims[2] != 9 {
		t.Fatalf("dims %v", a.Dims)
	}
	b := APS(11, 13, 1)
	if b.Dims[0] != 11 || b.Dims[1] != 13 {
		t.Fatalf("dims %v", b.Dims)
	}
}

func TestFreqshBounded01(t *testing.T) {
	a := ATMVariant("FREQSH", 60, 60, 5)
	min, max, _ := a.Range()
	if min < 0 || max > 1 {
		t.Fatalf("FREQSH range [%v,%v] outside [0,1]", min, max)
	}
}

func TestSnowMostlyZero(t *testing.T) {
	a := ATMVariant("SNOWHLND", 100, 100, 6)
	zeros := 0
	for _, v := range a.Data {
		if v == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / float64(a.Len()); frac < 0.5 {
		t.Fatalf("SNOWHLND should be mostly zero, zero fraction %v", frac)
	}
}

func TestCdnumcHugeRange(t *testing.T) {
	a := ATMVariant("CDNUMC", 80, 80, 7)
	min, max, _ := a.Range()
	if min <= 0 {
		t.Fatalf("CDNUMC must be positive, min %v", min)
	}
	if max/min < 1e10 {
		t.Fatalf("CDNUMC dynamic range %v too small", max/min)
	}
}

func TestUnknownVariantFallsBack(t *testing.T) {
	a := ATMVariant("T850", 30, 30, 1)
	b := ATMVariant("PSL", 30, 30, 1)
	if a.Equal(b) {
		t.Fatal("distinct unknown variants should decorrelate")
	}
}

func TestAPSNonNegativeWithHotPixels(t *testing.T) {
	a := APS(200, 200, 8)
	min, max, _ := a.Range()
	if min < 0 {
		t.Fatalf("APS min %v < 0", min)
	}
	if max < 10000 {
		t.Fatalf("APS should contain hot pixels, max %v", max)
	}
}

func TestHurricaneVortexStructure(t *testing.T) {
	// Lower levels should carry more kinetic energy than the top (vortex
	// decays with altitude).
	a := Hurricane(20, 60, 60, 9)
	energy := func(z int) float64 {
		var e float64
		for y := 0; y < 60; y++ {
			for x := 0; x < 60; x++ {
				v := a.At(z, y, x)
				e += v * v
			}
		}
		return e
	}
	if energy(0) < energy(19) {
		t.Fatalf("vortex should decay with altitude: E(0)=%v E(top)=%v", energy(0), energy(19))
	}
}

func TestSmoothnessCharacter(t *testing.T) {
	// The mean |horizontal gradient| must be small relative to the range:
	// the fields are locally smooth (which is what makes prediction work).
	a := ATM(100, 120, 10)
	_, _, rng := a.Range()
	var grad float64
	n := 0
	for i := 0; i < 100; i++ {
		for j := 1; j < 120; j++ {
			grad += math.Abs(a.At(i, j) - a.At(i, j-1))
			n++
		}
	}
	grad /= float64(n)
	if grad > rng*0.05 {
		t.Fatalf("field too rough: mean gradient %v vs range %v", grad, rng)
	}
}

func TestStandardSets(t *testing.T) {
	sets := StandardSets(Scale{Factor: 64, Seed: 1})
	if len(sets) != 3 {
		t.Fatalf("want 3 sets, got %d", len(sets))
	}
	names := map[string]bool{}
	for _, s := range sets {
		names[s.Name] = true
		a := s.Gen()
		if a.Len() == 0 {
			t.Fatalf("%s: empty", s.Name)
		}
		if s.DType != grid.Float32 {
			t.Fatalf("%s: dtype %v", s.Name, s.DType)
		}
	}
	for _, want := range []string{"ATM", "APS", "Hurricane"} {
		if !names[want] {
			t.Fatalf("missing set %s", want)
		}
	}
}

func TestStandardSetsMinimumDims(t *testing.T) {
	sets := StandardSets(Scale{Factor: 100000, Seed: 1})
	for _, s := range sets {
		a := s.Gen()
		for _, d := range a.Dims {
			if d < 8 {
				t.Fatalf("%s: dim %d below floor", s.Name, d)
			}
		}
	}
}

func TestDescribe(t *testing.T) {
	sets := StandardSets(Scale{Factor: 128, Seed: 1})
	d := Describe(sets[0])
	if !strings.Contains(d, "ATM") || !strings.Contains(d, "float32") {
		t.Fatalf("Describe = %q", d)
	}
}

func TestHACC(t *testing.T) {
	a := HACC(10000, 3)
	if a.NDims() != 1 || a.Len() != 10000 {
		t.Fatalf("dims %v", a.Dims)
	}
	min, max, _ := a.Range()
	if min < 0 || max >= 256 {
		t.Fatalf("positions [%v,%v] outside box", min, max)
	}
	// Deterministic.
	if !a.Equal(HACC(10000, 3)) {
		t.Fatal("HACC not deterministic")
	}
	// Clustered: the position histogram must be far from uniform.
	const bins = 64
	hist := make([]int, bins)
	for _, v := range a.Data {
		hist[int(v/256*bins)]++
	}
	maxBin, minBin := 0, a.Len()
	for _, h := range hist {
		if h > maxBin {
			maxBin = h
		}
		if h < minBin {
			minBin = h
		}
	}
	if float64(maxBin) < 3*float64(a.Len())/bins {
		t.Fatalf("no halo clustering: max bin %d", maxBin)
	}
	for i, v := range a.Data {
		if v != float64(float32(v)) {
			t.Fatalf("value %d not float32", i)
		}
	}
}
