package sz11

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func roundTrip(t *testing.T, a *grid.Array, p Params) *grid.Array {
	t.Helper()
	stream, st, err := Compress(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressedBytes != len(stream) {
		t.Fatalf("stats bytes %d != stream %d", st.CompressedBytes, len(stream))
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.SameShape(a, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBoundRespectedSmooth(t *testing.T) {
	a := grid.New(100)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.05)
	}
	eb := 1e-4
	out := roundTrip(t, a, Params{AbsBound: eb})
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > eb {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestBoundRespectedNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := grid.New(40, 40)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	eb := 1e-6
	out := roundTrip(t, a, Params{AbsBound: eb})
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > eb {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestLinearDataFitsWell(t *testing.T) {
	a := grid.New(1000)
	for i := range a.Data {
		a.Data[i] = 2.5*float64(i) + 1
	}
	stream, st, err := Compress(a, Params{AbsBound: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if st.HitRate < 0.99 {
		t.Fatalf("linear data hit rate %v, want ~1", st.HitRate)
	}
	if st.CompressionFactor < 5 {
		t.Fatalf("linear data CF %v too low", st.CompressionFactor)
	}
	out, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > 1e-9 {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestFloat32Mode(t *testing.T) {
	a := grid.New(50, 50)
	for i := range a.Data {
		a.Data[i] = float64(float32(math.Sin(float64(i) * 0.01)))
	}
	eb := 1e-4
	out := roundTrip(t, a, Params{AbsBound: eb, OutputType: grid.Float32})
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > eb {
			t.Fatalf("bound violated at %d", i)
		}
		if out.Data[i] != float64(float32(out.Data[i])) {
			t.Fatalf("reconstruction %d not float32-representable", i)
		}
	}
}

func TestQuadraticFitUsed(t *testing.T) {
	// A parabola should be predictable by the quadratic model after warmup.
	a := grid.New(500)
	for i := range a.Data {
		x := float64(i)
		a.Data[i] = 0.25*x*x - 3*x + 7
	}
	_, st, err := Compress(a, Params{AbsBound: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if st.HitRate < 0.95 {
		t.Fatalf("parabola hit rate %v, want ~1", st.HitRate)
	}
}

func TestValidation(t *testing.T) {
	a := grid.New(4)
	for _, p := range []Params{{AbsBound: 0}, {AbsBound: -1}, {AbsBound: math.Inf(1)}, {AbsBound: 1, OutputType: grid.DType(9)}} {
		if _, _, err := Compress(a, p); err == nil {
			t.Fatalf("invalid params accepted: %+v", p)
		}
	}
}

func TestCorruption(t *testing.T) {
	a := grid.New(30)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	stream, _, _ := Compress(a, Params{AbsBound: 1e-3})
	bad := append([]byte(nil), stream...)
	bad[len(bad)/2] ^= 0x10
	if _, err := Decompress(bad); err == nil {
		t.Fatal("corruption undetected")
	}
	if _, err := Decompress(stream[:6]); err == nil {
		t.Fatal("truncation undetected")
	}
}

func TestBoundPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		a := grid.New(n)
		for i := range a.Data {
			a.Data[i] = math.Sin(float64(i)*0.1) + rng.NormFloat64()*0.05
		}
		eb := math.Pow(10, -float64(rng.Intn(6)+1))
		stream, _, err := Compress(a, Params{AbsBound: eb})
		if err != nil {
			return false
		}
		out, err := Decompress(stream)
		if err != nil {
			return false
		}
		for i := range a.Data {
			if math.Abs(a.Data[i]-out.Data[i]) > eb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMultidimensionalDataLinearized(t *testing.T) {
	// 2D data is processed in scan order; the bound must still hold.
	a := grid.New(20, 20)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			a.Set(math.Sin(float64(i)*0.3)+math.Cos(float64(j)*0.2), i, j)
		}
	}
	eb := 1e-3
	out := roundTrip(t, a, Params{AbsBound: eb})
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > eb {
			t.Fatalf("bound violated at %d", i)
		}
	}
}
