// Package sz11 reimplements the SZ-1.1 error-bounded lossy compressor of
// Di & Cappello (IPDPS 2016), the direct predecessor that SZ-1.4 is
// evaluated against.
//
// SZ-1.1 linearizes the data set and fits each point with three
// single-dimension curve-fitting models over the preceding *decompressed*
// values:
//
//	preceding : X̃[i−1]                         (constant)
//	linear    : 2X̃[i−1] − X̃[i−2]               (line through last two)
//	quadratic : 3X̃[i−1] − 3X̃[i−2] + X̃[i−3]     (parabola through last three)
//
// The best-fit model whose prediction lands within the error bound is
// stored as a 2-bit code; points no model can fit are "unpredictable" and
// stored via binary-representation analysis. The 2-bit code array is then
// DEFLATE-compressed. This captures SZ-1.1's defining limitation relative
// to SZ-1.4: prediction only along one dimension, and only three admissible
// reconstruction values per point (no quantization intervals).
package sz11

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/binrep"
	"repro/internal/bitstream"
	"repro/internal/grid"
)

const magic = "SZ11"

// ErrCorrupt is returned for malformed streams.
var ErrCorrupt = errors.New("sz11: corrupt stream")

// Fit codes stored per data point.
const (
	fitNone      = 0 // unpredictable
	fitPreceding = 1
	fitLinear    = 2
	fitQuadratic = 3
)

// Params configures compression.
type Params struct {
	// AbsBound is the absolute error bound (> 0). Callers wanting a
	// value-range-relative bound multiply by the range, as the paper's
	// evaluation does for every compressor.
	AbsBound float64
	// OutputType records the source precision for CF accounting and
	// reconstruction snapping. 0 means grid.Float64.
	OutputType grid.DType
}

// Stats reports compression outcomes.
type Stats struct {
	N                 int
	Predictable       int
	HitRate           float64
	CompressedBytes   int
	OriginalBytes     int
	CompressionFactor float64
	BitRate           float64
}

// Compress encodes a under p.
func Compress(a *grid.Array, p Params) ([]byte, *Stats, error) {
	if !(p.AbsBound > 0) || math.IsInf(p.AbsBound, 0) {
		return nil, nil, fmt.Errorf("sz11: bound %v must be positive and finite", p.AbsBound)
	}
	if p.OutputType == 0 {
		p.OutputType = grid.Float64
	}
	if p.OutputType != grid.Float32 && p.OutputType != grid.Float64 {
		return nil, nil, fmt.Errorf("sz11: unsupported dtype %v", p.OutputType)
	}
	eb := p.AbsBound
	n := a.Len()
	data := a.Data
	recon := make([]float64, n)
	fits := make([]byte, n)
	outW := bitstream.NewWriter(256)
	outEnc := binrep.NewEncoder(outW, eb)
	predictable := 0

	for i := 0; i < n; i++ {
		x := data[i]
		bestFit := fitNone
		var bestVal float64
		// Try models in increasing order; keep the one with smallest error,
		// mirroring SZ-1.1's best-fit selection.
		bestErr := math.Inf(1)
		if i >= 1 {
			v := snap(recon[i-1], p.OutputType)
			if e := math.Abs(x - v); e <= eb && e < bestErr {
				bestFit, bestVal, bestErr = fitPreceding, v, e
			}
		}
		if i >= 2 {
			v := snap(2*recon[i-1]-recon[i-2], p.OutputType)
			if e := math.Abs(x - v); e <= eb && e < bestErr {
				bestFit, bestVal, bestErr = fitLinear, v, e
			}
		}
		if i >= 3 {
			v := snap(3*recon[i-1]-3*recon[i-2]+recon[i-3], p.OutputType)
			if e := math.Abs(x - v); e <= eb && e < bestErr {
				bestFit, bestVal, bestErr = fitQuadratic, v, e
			}
		}
		if bestFit == fitNone {
			recon[i] = encodeOutlier(outEnc, outW, x, eb, p.OutputType)
		} else {
			recon[i] = bestVal
			predictable++
		}
		fits[i] = byte(bestFit)
	}

	// Pack fits 2 bits each, then DEFLATE (SZ-1.1 gzips its metadata).
	packed := make([]byte, (n+3)/4)
	for i, f := range fits {
		packed[i>>2] |= f << uint((i&3)*2)
	}
	var fz bytes.Buffer
	fw, err := flate.NewWriter(&fz, flate.DefaultCompression)
	if err != nil {
		return nil, nil, err
	}
	if _, err := fw.Write(packed); err != nil {
		return nil, nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, nil, err
	}

	head := make([]byte, 0, 64)
	head = append(head, magic...)
	head = append(head, byte(p.OutputType), byte(len(a.Dims)))
	for _, d := range a.Dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	head = binary.LittleEndian.AppendUint64(head, math.Float64bits(eb))
	head = binary.AppendUvarint(head, uint64(fz.Len()))
	head = binary.AppendUvarint(head, outW.Len())
	out := append(head, fz.Bytes()...)
	out = append(out, outW.Bytes()...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))

	st := &Stats{
		N:               n,
		Predictable:     predictable,
		HitRate:         float64(predictable) / float64(n),
		CompressedBytes: len(out),
		OriginalBytes:   n * p.OutputType.Size(),
	}
	st.CompressionFactor = float64(st.OriginalBytes) / float64(st.CompressedBytes)
	st.BitRate = float64(st.CompressedBytes) * 8 / float64(n)
	return out, st, nil
}

// Decompress inverts Compress. Every value satisfies |x − x̃| ≤ the stored
// bound.
func Decompress(stream []byte) (*grid.Array, error) {
	if len(stream) < 6+8+4 {
		return nil, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if string(stream[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(stream[:len(stream)-4]) != binary.LittleEndian.Uint32(stream[len(stream)-4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	t := grid.DType(stream[4])
	if t != grid.Float32 && t != grid.Float64 {
		return nil, fmt.Errorf("%w: bad dtype", ErrCorrupt)
	}
	nd := int(stream[5])
	if nd < 1 || nd > grid.MaxDims {
		return nil, fmt.Errorf("%w: bad ndims", ErrCorrupt)
	}
	off := 6
	dims := make([]int, nd)
	for i := range dims {
		v, k := binary.Uvarint(stream[off:])
		if k <= 0 || v == 0 || v > 1<<40 {
			return nil, fmt.Errorf("%w: bad dim", ErrCorrupt)
		}
		dims[i] = int(v)
		off += k
	}
	if len(stream) < off+8 {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(stream[off:]))
	off += 8
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("%w: bad bound", ErrCorrupt)
	}
	fzLen, k := binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad fit length", ErrCorrupt)
	}
	off += k
	outBits, k := binary.Uvarint(stream[off:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad outlier length", ErrCorrupt)
	}
	off += k
	if uint64(len(stream)) < uint64(off)+fzLen+4 {
		return nil, fmt.Errorf("%w: truncated body", ErrCorrupt)
	}
	fzBytes := stream[off : off+int(fzLen)]
	outBytes := stream[off+int(fzLen) : len(stream)-4]

	fr := flate.NewReader(bytes.NewReader(fzBytes))
	a := grid.New(dims...)
	n := a.Len()
	packed := make([]byte, (n+3)/4)
	if _, err := io.ReadFull(fr, packed); err != nil {
		return nil, fmt.Errorf("%w: fits: %v", ErrCorrupt, err)
	}
	fr.Close()

	r := bitstream.NewReaderBits(outBytes, outBits)
	dec := binrep.NewDecoder(r)
	recon := a.Data
	for i := 0; i < n; i++ {
		fit := (packed[i>>2] >> uint((i&3)*2)) & 3
		switch fit {
		case fitPreceding:
			if i < 1 {
				return nil, fmt.Errorf("%w: fit without history at %d", ErrCorrupt, i)
			}
			recon[i] = snap(recon[i-1], t)
		case fitLinear:
			if i < 2 {
				return nil, fmt.Errorf("%w: fit without history at %d", ErrCorrupt, i)
			}
			recon[i] = snap(2*recon[i-1]-recon[i-2], t)
		case fitQuadratic:
			if i < 3 {
				return nil, fmt.Errorf("%w: fit without history at %d", ErrCorrupt, i)
			}
			recon[i] = snap(3*recon[i-1]-3*recon[i-2]+recon[i-3], t)
		default:
			v, err := decodeOutlier(dec, r, t)
			if err != nil {
				return nil, fmt.Errorf("%w: outlier at %d: %v", ErrCorrupt, i, err)
			}
			recon[i] = v
		}
	}
	return a, nil
}

func snap(v float64, t grid.DType) float64 {
	if t == grid.Float32 {
		return float64(float32(v))
	}
	return v
}

func encodeOutlier(enc *binrep.Encoder, w *bitstream.Writer, x, eb float64, t grid.DType) float64 {
	if t != grid.Float32 {
		return enc.Encode(x)
	}
	x32 := float64(float32(x))
	if math.Abs(x32-x) <= eb || math.IsNaN(x) {
		w.WriteBits(0, 1)
		w.WriteBits(uint64(math.Float32bits(float32(x))), 32)
		return x32
	}
	w.WriteBits(1, 1)
	w.WriteBits(math.Float64bits(x), 64)
	return x
}

func decodeOutlier(dec *binrep.Decoder, r *bitstream.Reader, t grid.DType) (float64, error) {
	if t != grid.Float32 {
		return dec.Decode()
	}
	esc, err := r.ReadBits(1)
	if err != nil {
		return 0, err
	}
	if esc == 0 {
		bits, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return float64(math.Float32frombits(uint32(bits))), nil
	}
	bits, err := r.ReadBits(64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}
