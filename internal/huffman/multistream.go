package huffman

// Multi-stream (interleaved) Huffman coding. A serial Huffman stream
// decodes one symbol at a time: the bit position of code i+1 depends on
// the decoded length of code i, so the CPU pipeline stalls on a chain of
// table lookups. Splitting a slab's symbols into N independent
// sub-streams (zstd-style) and decoding them with N interleaved cursor
// states breaks that chain — while one stream's table load is in flight
// the decoder advances the next — trading a small framing overhead for
// instruction-level parallelism on a single core.
//
// The split is block-wise: stream j carries symbols
// [j·chunk, min(n, (j+1)·chunk)) with chunk = ceil(n/N), so the decoder
// writes each stream's output to a contiguous range and the concatenated
// result is in original order. Each sub-stream is an ordinary Huffman
// bit stream over the same codebook; framing (byte alignment and
// per-stream lengths) belongs to the caller's container format.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitstream"
)

// MaxStreams bounds the sub-stream count of a multi-stream payload. The
// fused decoder keeps one cursor state per stream in fixed-size locals;
// past ~8 streams the ILP win flattens while framing overhead keeps
// growing, so the cap is generous.
const MaxStreams = 16

// StreamBounds returns the half-open symbol range [lo, hi) that stream j
// of k covers in an n-symbol slab. Streams partition the slab block-wise
// in order, so decoded sub-streams concatenate to the original sequence.
func StreamBounds(n, k, j int) (lo, hi int) {
	chunk := (n + k - 1) / k
	lo = j * chunk
	if lo > n {
		lo = n
	}
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// EncodeN splits symbols block-wise across len(ws) sub-streams and
// Huffman-encodes each partition into its own writer. len(ws) must be in
// [1, MaxStreams]. The emitted bits of stream j are exactly what Encode
// would produce for the partition StreamBounds(len(symbols), len(ws), j).
func (cb *Codebook) EncodeN(ws []*bitstream.Writer, symbols []int) error {
	k := len(ws)
	if k < 1 || k > MaxStreams {
		return fmt.Errorf("huffman: stream count %d out of range [1,%d]", k, MaxStreams)
	}
	for j := 0; j < k; j++ {
		lo, hi := StreamBounds(len(symbols), k, j)
		if err := cb.Encode(ws[j], symbols[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// DecodeNInto decodes len(out) symbols from len(rs) sub-streams written
// by EncodeN, interleaving one symbol per stream per round so the N
// decode chains overlap in the CPU pipeline. Stream j fills the range
// StreamBounds(len(out), len(rs), j) of out.
//
// The fast path lifts every reader's cursor into locals (Window/SetPos)
// and resolves codes of length ≤ tableBits with a single 8-byte
// big-endian load, shift, and table lookup — no per-symbol calls. Codes
// longer than tableBits, cursors within 8 bytes of the buffer end, and
// codebooks without a decode table fall back to the generic per-symbol
// path for that symbol.
func (cb *Codebook) DecodeNInto(rs []*bitstream.Reader, out []int) error {
	k := len(rs)
	if k < 1 || k > MaxStreams {
		return fmt.Errorf("huffman: stream count %d out of range [1,%d]", k, MaxStreams)
	}
	if k == 1 {
		return cb.DecodeInto(rs[0], out)
	}
	n := len(out)
	var (
		bufs       [MaxStreams][]byte
		pos, end   [MaxStreams]uint64
		base, cnt  [MaxStreams]int
		safeByte   [MaxStreams]int // last byte index with 8 loadable bytes (may be negative)
		maxRounds  int
		haveTables = cb.table != nil
	)
	for j := 0; j < k; j++ {
		lo, hi := StreamBounds(n, k, j)
		base[j], cnt[j] = lo, hi-lo
		if cnt[j] > maxRounds {
			maxRounds = cnt[j]
		}
		bufs[j], pos[j], end[j] = rs[j].Window()
		safeByte[j] = len(bufs[j]) - 8
	}
	if !haveTables {
		// Encode-side codebooks carry no prefix table; interleaving buys
		// nothing without the table load to overlap, so decode each
		// partition with the generic path.
		for j := 0; j < k; j++ {
			if err := cb.DecodeInto(rs[j], out[base[j]:base[j]+cnt[j]]); err != nil {
				return err
			}
		}
		return nil
	}
	tb := uint(cb.tableBits)
	tb64 := uint64(tb)
	table := cb.table
	// minRounds is the round count every stream participates in; inside
	// it the grouped loop needs no per-stream count checks.
	minRounds := cnt[0]
	for j := 1; j < k; j++ {
		if cnt[j] < minRounds {
			minRounds = cnt[j]
		}
	}
	round := 0
	// Grouped fast path: one 8-byte load per stream feeds a group of
	// four table lookups. Short codes are at most tableBits ≤ 12 bits,
	// so the worst-case bit span of a group is 7 (byte misalignment) +
	// 4×12 = 55 bits — always inside the loaded word. This quarters the
	// load traffic while the per-round interleave across streams keeps
	// the four dependency chains overlapped.
	ml64 := uint64(cb.maxLen)
	for ; round+4 <= minRounds; round += 4 {
		for j := 0; j < k; j++ {
			p := pos[j]
			g := 0
			if int(p>>3) <= safeByte[j] && p+4*tb64 <= end[j] {
				v := binary.BigEndian.Uint64(bufs[j][p>>3:])
				sh := p & 7
				o := base[j] + round
				for g < 4 {
					e := table[v<<sh>>(64-tb)]
					if e == 0 {
						break
					}
					out[o+g] = int(e >> 6)
					sh += uint64(e & 63)
					g++
				}
				pos[j] = p&^7 + sh
				if g == 4 {
					continue
				}
			}
			// Long code or buffer tail mid-group: finish the group one
			// symbol at a time. A reload at the current position is
			// byte-aligned (shift ≤ 7), so even a maxLen-bit code fits
			// the loaded word and resolves without touching the reader.
			for ; g < 4; g++ {
				p = pos[j]
				if int(p>>3) <= safeByte[j] && p+ml64 <= end[j] {
					v := binary.BigEndian.Uint64(bufs[j][p>>3:])
					w := v << (p & 7)
					if e := table[w>>(64-tb)]; e != 0 {
						pos[j] = p + uint64(e&63)
						out[base[j]+round+g] = int(e >> 6)
						continue
					}
					if s, l := cb.decodeLong(w); l != 0 {
						pos[j] = p + l
						out[base[j]+round+g] = s
						continue
					}
				}
				rs[j].SetPos(pos[j])
				s, err := cb.decodeOne(rs[j])
				if err != nil {
					return fmt.Errorf("huffman: stream %d/%d symbol %d: %w", j, k, round+g, err)
				}
				pos[j] = rs[j].Pos()
				out[base[j]+round+g] = s
			}
		}
	}
	// Tail: remaining rounds (group remainder plus any count skew between
	// streams), one symbol per stream per round.
	for ; round < maxRounds; round++ {
		for j := 0; j < k; j++ {
			if round >= cnt[j] {
				continue
			}
			p := pos[j]
			if int(p>>3) <= safeByte[j] && p+tb64 <= end[j] {
				v := binary.BigEndian.Uint64(bufs[j][p>>3:])
				e := table[v<<(p&7)>>(64-tb)]
				if e != 0 {
					pos[j] = p + uint64(e&63)
					out[base[j]+round] = int(e >> 6)
					continue
				}
			}
			rs[j].SetPos(p)
			s, err := cb.decodeOne(rs[j])
			if err != nil {
				return fmt.Errorf("huffman: stream %d/%d symbol %d: %w", j, k, round, err)
			}
			pos[j] = rs[j].Pos()
			out[base[j]+round] = s
		}
	}
	for j := 0; j < k; j++ {
		rs[j].SetPos(pos[j])
	}
	return nil
}

// decodeLong resolves a code longer than tableBits from the top bits of
// w (the stream's next bits, MSB-aligned) using the canonical per-length
// tables — the same walk decodeSlow does, minus the per-bit reader
// calls. Returns the symbol and its code length, or length 0 when no
// code matches within maxLen bits.
func (cb *Codebook) decodeLong(w uint64) (int, uint64) {
	for l := cb.tableBits + 1; l <= uint(cb.maxLen); l++ {
		cnt := cb.countByLen[l]
		if cnt == 0 {
			continue
		}
		code := w >> (64 - l)
		first := cb.firstCode[l]
		if code >= first && code < first+uint64(cnt) {
			return int(cb.symByCode[cb.firstIndex[l]+int(code-first)]), uint64(l)
		}
	}
	return 0, 0
}
