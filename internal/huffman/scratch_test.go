package huffman

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/bitstream"
)

// TestDecodeTableSizedToAlphabet: the one-shot decode table must be
// sized min(maxLen, decodeTableBits) — a tiny alphabet gets a tiny
// table, not the full 2^decodeTableBits fill.
func TestDecodeTableSizedToAlphabet(t *testing.T) {
	cases := []struct {
		name  string
		freqs []uint64
	}{
		{"single", []uint64{0, 7}},
		{"two", []uint64{3, 5}},
		{"three", []uint64{10, 3, 2}},
		{"eight-uniform", []uint64{1, 1, 1, 1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		cb, err := New(tc.freqs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		w := bitstream.NewWriter(64)
		cb.Serialize(w)
		dec, err := Deserialize(bitstream.NewReaderBits(w.Bytes(), w.Len()))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wantBits := uint(dec.maxLen)
		if wantBits > decodeTableBits {
			wantBits = decodeTableBits
		}
		if dec.tableBits != wantBits || len(dec.table) != 1<<wantBits {
			t.Errorf("%s: table %d entries (tableBits %d), want %d (maxLen %d)",
				tc.name, len(dec.table), dec.tableBits, 1<<wantBits, dec.maxLen)
		}
		if len(dec.table) > 1<<decodeTableBits {
			t.Errorf("%s: table exceeds the 2^%d cap", tc.name, decodeTableBits)
		}
	}
}

// TestDecodeTableSmallAlphabetRoundTrip: a recycled (dirty) table must
// decode a small alphabet correctly — the zeroed-get path is what keeps
// stale entries from a previous, larger codebook out of the fast path.
func TestDecodeTableSmallAlphabetRoundTrip(t *testing.T) {
	// First build and release a large codebook so the pools hold big,
	// dirty tables and arrays.
	big := make([]uint64, 4096)
	for i := range big {
		big[i] = uint64(i + 1)
	}
	cbBig, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	cbBig.Release()

	// Now a 3-symbol codebook drawn from those pools.
	symbols := []int{0, 1, 2, 1, 0, 0, 2, 1, 1, 0}
	freqs, err := CountFrequencies(symbols, 3)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	w := bitstream.NewWriter(64)
	cb.Serialize(w)
	if err := cb.Encode(w, symbols); err != nil {
		t.Fatal(err)
	}
	r := bitstream.NewReaderBits(w.Bytes(), w.Len())
	dec, err := Deserialize(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(r, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if got[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], symbols[i])
		}
	}
	dec.Release()
	cb.Release()
}

// TestReleaseReuseByteIdentical: codebooks built through the recycled
// pools must serialize and encode byte-identically to the first build,
// also when many goroutines churn the pools concurrently (run under
// -race).
func TestReleaseReuseByteIdentical(t *testing.T) {
	freqs := make([]uint64, 300)
	for i := range freqs {
		freqs[i] = uint64((i*2654435761 + 17) % 97)
	}
	symbols := make([]int, 0, 1000)
	for i := 0; i < 1000; i++ {
		s := (i * 31) % len(freqs)
		if freqs[s] == 0 {
			s = 17
		}
		symbols = append(symbols, s)
	}
	ref := func() []byte {
		cb, err := New(freqs)
		if err != nil {
			t.Fatal(err)
		}
		w := bitstream.NewWriter(256)
		cb.Serialize(w)
		if err := cb.Encode(w, symbols); err != nil {
			t.Fatal(err)
		}
		cb.Release()
		return w.Bytes()
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cb, err := New(freqs)
				if err != nil {
					t.Error(err)
					return
				}
				w := bitstream.NewWriter(256)
				cb.Serialize(w)
				if err := cb.Encode(w, symbols); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(w.Bytes(), ref) {
					t.Error("pooled codebook produced different bytes")
					cb.Release()
					return
				}
				cb.Release()
			}
		}()
	}
	wg.Wait()
}
