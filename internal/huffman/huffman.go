// Package huffman implements canonical Huffman coding over alphabets of
// arbitrary size.
//
// The SZ-1.4 paper (Section IV-A) notes that off-the-shelf Huffman coders
// operate byte-by-byte (≤256 symbols), while its quantization codes need
// alphabets of 2^m symbols with m up to 16. This package builds an optimal
// prefix code for any alphabet up to MaxSymbols, encodes symbol streams to
// a bit stream, and serializes the codebook compactly as canonical code
// lengths so the decoder can rebuild identical codes.
package huffman

import (
	"errors"
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/scratch"
)

// MaxSymbols bounds the alphabet size (quantization uses up to 2^16 codes).
const MaxSymbols = 1 << 20

// maxCodeLen is the maximum admissible code length. Canonical codes from
// realistic frequency tables stay far below this; the serialization format
// stores lengths in 6 bits.
const maxCodeLen = 57

// ErrCorrupt is returned when a serialized codebook or encoded stream is
// malformed.
var ErrCorrupt = errors.New("huffman: corrupt stream")

// Codebook is an immutable canonical Huffman code for a fixed alphabet
// [0, NumSymbols). Symbols with zero frequency have code length 0 and must
// not appear in encoded streams.
type Codebook struct {
	numSymbols int
	lengths    []uint8  // code length per symbol, 0 = absent
	codes      []uint64 // canonical code per symbol (valid when length > 0)

	// Canonical decoding tables, indexed by code length 1..maxLen.
	maxLen     uint8
	firstCode  []uint64 // first canonical code of each length
	firstIndex []int    // index into symByCode of the first code of each length
	countByLen []int    // number of codes of each length
	symByCode  []uint32 // symbols sorted by (length, code)

	// One-shot decode acceleration: table[next tableBits of the stream]
	// is symbol<<6 | codeLen for codes of length ≤ tableBits, 0 otherwise.
	tableBits uint
	table     []uint32
}

// node is a Huffman tree node used during construction.
type node struct {
	freq        uint64
	symbol      int // valid for leaves
	left, right int // indices into the node arena, -1 for leaves
	depth       int // tie-break to keep the tree shallow and deterministic
}

type nodeHeap struct {
	arena []node
	idx   []int
}

// The heap is hand-rolled rather than container/heap to keep the build off
// interface calls. The comparison is a strict total order (freq, then
// depth, then arena index — all unique), so nodes pop in exactly sorted
// order and the resulting tree is independent of heap mechanics: this
// produces bit-identical codebooks to any other correct min-heap.
func (h *nodeHeap) less(i, j int) bool {
	a, b := h.arena[h.idx[i]], h.arena[h.idx[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	if a.depth != b.depth {
		return a.depth < b.depth
	}
	return h.idx[i] < h.idx[j]
}

func (h *nodeHeap) down(i int) {
	n := len(h.idx)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.idx[i], h.idx[m] = h.idx[m], h.idx[i]
		i = m
	}
}

func (h *nodeHeap) init() {
	for i := len(h.idx)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *nodeHeap) push(x int) {
	h.idx = append(h.idx, x)
	i := len(h.idx) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.idx[i], h.idx[p] = h.idx[p], h.idx[i]
		i = p
	}
}

func (h *nodeHeap) pop() int {
	x := h.idx[0]
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.idx = h.idx[:last]
	if last > 0 {
		h.down(0)
	}
	return x
}

// nodePool recycles build arenas between codebook constructions; the
// arena is dead the moment code lengths are extracted.
var nodePool = scratch.NewPool[node]()

// New builds a canonical Huffman codebook from symbol frequencies.
// freqs[i] is the count of symbol i; zero-frequency symbols get no code.
// At least one symbol must have nonzero frequency.
//
// The codebook's working slices come from the scratch pools; callers
// done with a codebook may hand them back with Release.
func New(freqs []uint64) (*Codebook, error) {
	n := len(freqs)
	if n == 0 || n > MaxSymbols {
		return nil, fmt.Errorf("huffman: alphabet size %d out of range [1,%d]", n, MaxSymbols)
	}
	lengths := scratch.BytesZeroed(n)
	nz := 0
	single := -1
	for s, f := range freqs {
		if f > 0 {
			nz++
			single = s
		}
	}
	switch nz {
	case 0:
		return nil, errors.New("huffman: all frequencies are zero")
	case 1:
		// A one-symbol alphabet still needs a 1-bit code so the stream has
		// positive length and decoding terminates by symbol count.
		lengths[single] = 1
		return fromLengths(n, lengths)
	}

	h := &nodeHeap{arena: nodePool.Get(2 * nz)[:0], idx: scratch.Ints(nz)[:0]}
	defer func() {
		nodePool.Put(h.arena)
		scratch.PutInts(h.idx)
	}()
	for s, f := range freqs {
		if f == 0 {
			continue
		}
		h.arena = append(h.arena, node{freq: f, symbol: s, left: -1, right: -1})
		h.idx = append(h.idx, len(h.arena)-1)
	}
	h.init()
	for len(h.idx) > 1 {
		a := h.pop()
		b := h.pop()
		d := h.arena[a].depth
		if h.arena[b].depth > d {
			d = h.arena[b].depth
		}
		h.arena = append(h.arena, node{
			freq:  h.arena[a].freq + h.arena[b].freq,
			left:  a,
			right: b,
			depth: d + 1,
		})
		h.push(len(h.arena) - 1)
	}
	root := h.idx[0]

	// Extract code lengths by depth-first walk (iterative to bound stack).
	// Depth is checked at internal nodes too — every internal node past
	// the limit has a leaf strictly deeper, so the same trees fail — which
	// caps the walk depth and lets the frame stack live on the goroutine
	// stack.
	type frame struct {
		node  int
		depth uint8
	}
	var stackArr [maxCodeLen + 4]frame
	stack := stackArr[:0]
	stack = append(stack, frame{root, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.arena[f.node]
		if nd.left < 0 {
			if f.depth > maxCodeLen {
				return nil, fmt.Errorf("huffman: code length %d exceeds limit %d", f.depth, maxCodeLen)
			}
			lengths[nd.symbol] = f.depth
			continue
		}
		if f.depth >= maxCodeLen {
			return nil, fmt.Errorf("huffman: code length %d exceeds limit %d", f.depth+1, maxCodeLen)
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	return fromLengths(n, lengths)
}

// fromLengths assigns canonical codes given per-symbol lengths and builds
// the decoding tables. It validates the Kraft sum. lengths must come from
// the scratch byte pool (Release hands it back there).
func fromLengths(n int, lengths []uint8) (*Codebook, error) {
	cb := &Codebook{numSymbols: n, lengths: lengths}
	for _, l := range lengths {
		if l > cb.maxLen {
			cb.maxLen = l
		}
	}
	if cb.maxLen == 0 {
		return nil, errors.New("huffman: no coded symbols")
	}
	if cb.maxLen > maxCodeLen {
		return nil, fmt.Errorf("huffman: code length %d exceeds limit %d", cb.maxLen, maxCodeLen)
	}
	cb.countByLen = scratch.IntsZeroed(int(cb.maxLen) + 1)
	nz := 0
	for _, l := range lengths {
		if l > 0 {
			cb.countByLen[l]++
			nz++
		}
	}
	// Kraft inequality check (equality not required: the degenerate
	// single-symbol codebook uses length 1 with Kraft sum 1/2).
	var kraft uint64 // scaled by 2^maxLen
	for l := uint8(1); l <= cb.maxLen; l++ {
		kraft += uint64(cb.countByLen[l]) << (cb.maxLen - l)
	}
	if kraft > 1<<cb.maxLen {
		return nil, fmt.Errorf("%w: Kraft sum exceeds 1", ErrCorrupt)
	}

	// Canonical first codes per length. Entries 1..maxLen are assigned
	// below and are the only ones ever read, so the recycled slices'
	// leftover contents elsewhere are harmless.
	cb.firstCode = scratch.Uint64s(int(cb.maxLen) + 2)
	cb.firstIndex = scratch.Ints(int(cb.maxLen) + 2)
	code := uint64(0)
	idx := 0
	for l := uint8(1); l <= cb.maxLen; l++ {
		cb.firstCode[l] = code
		cb.firstIndex[l] = idx
		code = (code + uint64(cb.countByLen[l])) << 1
		idx += cb.countByLen[l]
	}

	// Assign codes in (length, symbol) order without sorting: scanning
	// symbols in ascending order with a per-length placement counter
	// visits each length class in ascending symbol order, which is
	// exactly the canonical ordering. codes[s] is read only for symbols
	// with a nonzero length, all of which are assigned here, so it needs
	// no clearing.
	cb.codes = scratch.Uint64s(n)
	cb.symByCode = scratch.Uint32s(nz)
	next := scratch.IntsZeroed(int(cb.maxLen) + 1)
	defer scratch.PutInts(next)
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		off := next[l]
		next[l]++
		cb.codes[s] = cb.firstCode[l] + uint64(off)
		cb.symByCode[cb.firstIndex[l]+off] = uint32(s)
	}
	return cb, nil
}

// Release hands the codebook's working slices back to the scratch pools
// and zeroes the codebook. It is an optimization for per-slab codebooks
// on the hot path; a released codebook must not be used again. Releasing
// is never required — an un-released codebook is ordinary garbage.
func (cb *Codebook) Release() {
	scratch.PutBytes(cb.lengths)
	scratch.PutUint64s(cb.codes)
	scratch.PutUint64s(cb.firstCode)
	scratch.PutInts(cb.firstIndex)
	scratch.PutInts(cb.countByLen)
	scratch.PutUint32s(cb.symByCode)
	scratch.PutUint32s(cb.table)
	*cb = Codebook{}
}

// decodeTableBits caps the fast decode table at 2^12 entries (16 KiB).
const decodeTableBits = 12

// buildDecodeTable fills the one-shot prefix table: entry i (the next
// tableBits of the stream) holds symbol<<6 | codeLen for every code of
// length ≤ tableBits, replicated across all suffixes. Zero means "no short
// code with this prefix" — the bit-by-bit path handles it.
//
// Only Deserialize builds the table: codebooks built by New sit on the
// encode side (the decoder always reconstructs its own from the stream),
// so they skip the fill and fall back to decodeSlow in the rare case they
// decode anyway.
func (cb *Codebook) buildDecodeTable() {
	tb := uint(cb.maxLen)
	if tb > decodeTableBits {
		tb = decodeTableBits
	}
	cb.tableBits = tb
	// Sized to min(maxLen, decodeTableBits): a tiny alphabet gets a tiny
	// table (a 3-symbol codebook needs 4 entries, not 4096).
	cb.table = scratch.Uint32sZeroed(1 << tb)
	for s, l := range cb.lengths {
		if l == 0 || uint(l) > tb {
			continue
		}
		base := cb.codes[s] << (tb - uint(l))
		fill := uint64(1) << (tb - uint(l))
		e := uint32(s)<<6 | uint32(l)
		for p := uint64(0); p < fill; p++ {
			cb.table[base+p] = e
		}
	}
}

// NumSymbols returns the alphabet size.
func (cb *Codebook) NumSymbols() int { return cb.numSymbols }

// CodeLen returns the code length of symbol s (0 if s has no code).
func (cb *Codebook) CodeLen(s int) int { return int(cb.lengths[s]) }

// MaxCodeLen returns the longest code length in the book.
func (cb *Codebook) MaxCodeLen() int { return int(cb.maxLen) }

// MaxSymbol returns the largest symbol with a code assigned, or -1 for a
// codebook with no codes. Every decode path resolves symbols through the
// code tables, so no decoded symbol can exceed this bound.
func (cb *Codebook) MaxSymbol() int {
	for s := len(cb.lengths) - 1; s >= 0; s-- {
		if cb.lengths[s] != 0 {
			return s
		}
	}
	return -1
}

// EncodedBits returns the exact number of bits Encode will emit for the
// given frequency histogram (Σ freq[s]·len[s]).
func (cb *Codebook) EncodedBits(freqs []uint64) uint64 {
	var total uint64
	for s, f := range freqs {
		if s < len(cb.lengths) {
			total += f * uint64(cb.lengths[s])
		}
	}
	return total
}

// Encode appends the code for each symbol to w. It returns an error if a
// symbol is out of range or has no code.
//
// Codes are gathered into a local 64-bit accumulator and spilled to the
// writer in large chunks; the emitted bits are identical to writing each
// code individually (MSB-first concatenation is associative), but the
// per-symbol writer call disappears from the hot path.
func (cb *Codebook) Encode(w *bitstream.Writer, symbols []int) error {
	if cb.maxLen > 32 {
		// Rare deep codebooks fall back to the simple loop so the
		// accumulator never has to split a single code.
		for _, s := range symbols {
			if err := cb.EncodeSymbol(w, s); err != nil {
				return err
			}
		}
		return nil
	}
	lengths, codes := cb.lengths, cb.codes
	var acc uint64
	var nacc uint
	for _, s := range symbols {
		if s < 0 || s >= cb.numSymbols {
			return fmt.Errorf("huffman: symbol %d out of range [0,%d)", s, cb.numSymbols)
		}
		l := uint(lengths[s])
		if l == 0 {
			return fmt.Errorf("huffman: symbol %d has no code (zero frequency at build time)", s)
		}
		if nacc+l > 64 {
			w.WriteBits(acc, nacc)
			acc, nacc = 0, 0
		}
		acc = acc<<l | codes[s]&(1<<l-1)
		nacc += l
	}
	if nacc > 0 {
		w.WriteBits(acc, nacc)
	}
	return nil
}

// EncodeSymbol appends the code for a single symbol to w.
func (cb *Codebook) EncodeSymbol(w *bitstream.Writer, s int) error {
	if s < 0 || s >= cb.numSymbols {
		return fmt.Errorf("huffman: symbol %d out of range [0,%d)", s, cb.numSymbols)
	}
	l := cb.lengths[s]
	if l == 0 {
		return fmt.Errorf("huffman: symbol %d has no code (zero frequency at build time)", s)
	}
	w.WriteBits(cb.codes[s], uint(l))
	return nil
}

// DecodeSymbol reads a single symbol from r.
func (cb *Codebook) DecodeSymbol(r *bitstream.Reader) (int, error) {
	return cb.decodeOne(r)
}

// Decode reads exactly count symbols from r.
func (cb *Codebook) Decode(r *bitstream.Reader, count int) ([]int, error) {
	out := make([]int, count)
	if err := cb.DecodeInto(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto fills out with len(out) decoded symbols. The table fast path
// is inlined here so the per-symbol cost in the bulk decode is one peek,
// one table load and one skip.
func (cb *Codebook) DecodeInto(r *bitstream.Reader, out []int) error {
	tb, table := cb.tableBits, cb.table
	for i := range out {
		if table != nil && r.Remaining() >= uint64(tb) {
			if e := table[r.Peek(tb)]; e != 0 {
				r.Skip(uint(e & 63))
				out[i] = int(e >> 6)
				continue
			}
		}
		s, err := cb.decodeSlow(r)
		if err != nil {
			return err
		}
		out[i] = s
	}
	return nil
}

func (cb *Codebook) decodeOne(r *bitstream.Reader) (int, error) {
	// Fast path: resolve codes of length ≤ tableBits with one peek.
	if cb.table != nil && r.Remaining() >= uint64(cb.tableBits) {
		if e := cb.table[r.Peek(cb.tableBits)]; e != 0 {
			r.Skip(uint(e & 63))
			return int(e >> 6), nil
		}
	}
	return cb.decodeSlow(r)
}

// decodeSlow is the bit-by-bit canonical decode, used near the end of the
// stream and for codes longer than tableBits.
func (cb *Codebook) decodeSlow(r *bitstream.Reader) (int, error) {
	var code uint64
	for l := uint8(1); l <= cb.maxLen; l++ {
		b, err := r.ReadBits(1)
		if err != nil {
			return 0, err
		}
		code = (code << 1) | b
		cnt := cb.countByLen[l]
		if cnt == 0 {
			continue
		}
		first := cb.firstCode[l]
		if code >= first && code < first+uint64(cnt) {
			return int(cb.symByCode[cb.firstIndex[l]+int(code-first)]), nil
		}
	}
	return 0, fmt.Errorf("%w: no code matches after %d bits", ErrCorrupt, cb.maxLen)
}

// --- codebook serialization --------------------------------------------------
//
// Wire format: Elias-gamma alphabet size, then per-symbol code lengths
// run-length encoded as (gamma runLen-1, 6-bit length) pairs. Zero runs
// dominate for sparse alphabets, so this stays compact even for 2^16
// symbols.

// Serialize writes the codebook to w.
func (cb *Codebook) Serialize(w *bitstream.Writer) {
	w.WriteEliasGamma(uint64(cb.numSymbols))
	i := 0
	for i < cb.numSymbols {
		l := cb.lengths[i]
		j := i + 1
		for j < cb.numSymbols && cb.lengths[j] == l {
			j++
		}
		w.WriteEliasGamma(uint64(j - i - 1)) // run length - 1
		w.WriteBits(uint64(l), 6)
		i = j
	}
}

// Deserialize reads a codebook written by Serialize.
func Deserialize(r *bitstream.Reader) (*Codebook, error) {
	ns, err := r.ReadEliasGamma()
	if err != nil {
		return nil, err
	}
	if ns == 0 || ns > MaxSymbols {
		return nil, fmt.Errorf("%w: alphabet size %d", ErrCorrupt, ns)
	}
	n := int(ns)
	// Every position is assigned by the run decoding below (the loop only
	// terminates at i == n), so the recycled buffer needs no clearing.
	lengths := scratch.Bytes(n)
	i := 0
	for i < n {
		run, err := r.ReadEliasGamma()
		if err != nil {
			return nil, err
		}
		l, err := r.ReadBits(6)
		if err != nil {
			return nil, err
		}
		end := i + int(run) + 1
		if end > n {
			return nil, fmt.Errorf("%w: run overflows alphabet", ErrCorrupt)
		}
		for ; i < end; i++ {
			lengths[i] = uint8(l)
		}
	}
	cb, err := fromLengths(n, lengths)
	if err != nil {
		return nil, err
	}
	cb.buildDecodeTable()
	return cb, nil
}

// CountFrequencies histograms a symbol stream over alphabet [0, numSymbols).
func CountFrequencies(symbols []int, numSymbols int) ([]uint64, error) {
	freqs := make([]uint64, numSymbols)
	for _, s := range symbols {
		if s < 0 || s >= numSymbols {
			return nil, fmt.Errorf("huffman: symbol %d out of range [0,%d)", s, numSymbols)
		}
		freqs[s]++
	}
	return freqs, nil
}
