package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
)

func roundTrip(t *testing.T, symbols []int, numSymbols int) {
	t.Helper()
	freqs, err := CountFrequencies(symbols, numSymbols)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	w := bitstream.NewWriter(0)
	cb.Serialize(w)
	tableBits := w.Len()
	if err := cb.Encode(w, symbols); err != nil {
		t.Fatal(err)
	}
	if got := w.Len() - tableBits; got != cb.EncodedBits(freqs) {
		t.Fatalf("EncodedBits=%d but wrote %d", cb.EncodedBits(freqs), got)
	}
	r := bitstream.NewReaderBits(w.Bytes(), w.Len())
	cb2, err := Deserialize(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cb2.Decode(r, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if got[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], symbols[i])
		}
	}
}

func TestRoundTripSmall(t *testing.T) {
	roundTrip(t, []int{0, 1, 2, 1, 0, 1, 1, 1, 3}, 4)
}

func TestSingleSymbolAlphabet(t *testing.T) {
	roundTrip(t, []int{0, 0, 0, 0, 0}, 1)
}

func TestSingleUsedSymbolInLargeAlphabet(t *testing.T) {
	syms := make([]int, 100)
	for i := range syms {
		syms[i] = 42
	}
	roundTrip(t, syms, 512)
}

func TestTwoSymbols(t *testing.T) {
	roundTrip(t, []int{0, 1, 0, 1, 1}, 2)
}

func TestLargeAlphabet65535(t *testing.T) {
	// The paper's key requirement: alphabets beyond 256 symbols.
	rng := rand.New(rand.NewSource(5))
	n := 65535
	syms := make([]int, 20000)
	for i := range syms {
		// Geometric-ish: most mass near the center code, like quantization output.
		v := n/2 + int(rng.NormFloat64()*50)
		if v < 0 {
			v = 0
		}
		if v >= n {
			v = n - 1
		}
		syms[i] = v
	}
	roundTrip(t, syms, n)
}

func TestUniformAlphabet(t *testing.T) {
	syms := make([]int, 4096)
	for i := range syms {
		syms[i] = i % 256
	}
	roundTrip(t, syms, 256)
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// ~95% of mass on one symbol: entropy ≈ 0.4 bits/sym. Huffman should get
	// close to 1 bit/sym (its floor for a dominant symbol + escape).
	rng := rand.New(rand.NewSource(11))
	syms := make([]int, 50000)
	for i := range syms {
		if rng.Float64() < 0.95 {
			syms[i] = 128
		} else {
			syms[i] = rng.Intn(255)
		}
	}
	freqs, _ := CountFrequencies(syms, 255)
	cb, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	bits := cb.EncodedBits(freqs)
	perSym := float64(bits) / float64(len(syms))
	if perSym > 1.5 {
		t.Fatalf("skewed stream coded at %.2f bits/sym, want < 1.5", perSym)
	}
}

func TestOptimalityVsFixedWidth(t *testing.T) {
	// Huffman must never be worse than ceil(log2(n)) + 1 per symbol overall.
	rng := rand.New(rand.NewSource(3))
	syms := make([]int, 10000)
	for i := range syms {
		syms[i] = rng.Intn(100)
	}
	freqs, _ := CountFrequencies(syms, 100)
	cb, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	bits := cb.EncodedBits(freqs)
	if bits > uint64(len(syms))*8 {
		t.Fatalf("Huffman %d bits worse than 8-bit fixed coding", bits)
	}
}

func TestPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	freqs := make([]uint64, 300)
	for i := range freqs {
		freqs[i] = uint64(rng.Intn(1000))
	}
	freqs[0] = 1 // ensure some nonzero
	cb, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	// No code may be a prefix of another.
	type code struct {
		bits uint64
		len  int
	}
	var codes []code
	for s := 0; s < cb.NumSymbols(); s++ {
		if l := cb.CodeLen(s); l > 0 {
			codes = append(codes, code{cb.codes[s], l})
		}
	}
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			a, b := codes[i], codes[j]
			if a.len <= b.len && b.bits>>(uint(b.len-a.len)) == a.bits {
				t.Fatalf("code %d is a prefix of code %d", i, j)
			}
		}
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty alphabet should fail")
	}
	if _, err := New(make([]uint64, 4)); err == nil {
		t.Fatal("all-zero frequencies should fail")
	}
	if _, err := CountFrequencies([]int{5}, 4); err == nil {
		t.Fatal("out-of-range symbol should fail")
	}
	cb, err := New([]uint64{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	w := bitstream.NewWriter(0)
	if err := cb.Encode(w, []int{1}); err == nil {
		t.Fatal("encoding a zero-frequency symbol should fail")
	}
	if err := cb.Encode(w, []int{7}); err == nil {
		t.Fatal("encoding an out-of-range symbol should fail")
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	cb, err := New([]uint64{5, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	w := bitstream.NewWriter(0)
	if err := cb.Encode(w, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Ask for more symbols than were written.
	r := bitstream.NewReaderBits(w.Bytes(), w.Len())
	if _, err := cb.Decode(r, 100); err == nil {
		t.Fatal("decoding past end should fail")
	}
}

func TestDeserializeCorrupt(t *testing.T) {
	// Alphabet size 0.
	w := bitstream.NewWriter(0)
	w.WriteEliasGamma(0)
	if _, err := Deserialize(bitstream.NewReaderBits(w.Bytes(), w.Len())); err == nil {
		t.Fatal("alphabet size 0 should fail")
	}
	// Run overflowing the alphabet.
	w = bitstream.NewWriter(0)
	w.WriteEliasGamma(2)  // 2 symbols
	w.WriteEliasGamma(10) // run of 11
	w.WriteBits(1, 6)     // length 1
	if _, err := Deserialize(bitstream.NewReaderBits(w.Bytes(), w.Len())); err == nil {
		t.Fatal("overflowing run should fail")
	}
	// Kraft violation: three symbols of length 1.
	w = bitstream.NewWriter(0)
	w.WriteEliasGamma(3)
	w.WriteEliasGamma(2) // run of 3
	w.WriteBits(1, 6)
	if _, err := Deserialize(bitstream.NewReaderBits(w.Bytes(), w.Len())); err == nil {
		t.Fatal("Kraft violation should fail")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, alphaSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numSymbols := []int{2, 3, 15, 63, 255, 511, 2048}[int(alphaSel)%7]
		n := rng.Intn(2000) + 1
		syms := make([]int, n)
		for i := range syms {
			// Mix of gaussian-centered and uniform symbols.
			if rng.Float64() < 0.8 {
				v := numSymbols/2 + int(rng.NormFloat64()*float64(numSymbols)/16)
				if v < 0 {
					v = 0
				}
				if v >= numSymbols {
					v = numSymbols - 1
				}
				syms[i] = v
			} else {
				syms[i] = rng.Intn(numSymbols)
			}
		}
		freqs, err := CountFrequencies(syms, numSymbols)
		if err != nil {
			return false
		}
		cb, err := New(freqs)
		if err != nil {
			return false
		}
		w := bitstream.NewWriter(0)
		cb.Serialize(w)
		if err := cb.Encode(w, syms); err != nil {
			return false
		}
		r := bitstream.NewReaderBits(w.Bytes(), w.Len())
		cb2, err := Deserialize(r)
		if err != nil {
			return false
		}
		got, err := cb2.Decode(r, n)
		if err != nil {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 18
	syms := make([]int, n)
	for i := range syms {
		v := 128 + int(rng.NormFloat64()*10)
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		syms[i] = v
	}
	freqs, _ := CountFrequencies(syms, 256)
	cb, _ := New(freqs)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := bitstream.NewWriter(n / 2)
		if err := cb.Encode(w, syms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 18
	syms := make([]int, n)
	for i := range syms {
		v := 128 + int(rng.NormFloat64()*10)
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		syms[i] = v
	}
	freqs, _ := CountFrequencies(syms, 256)
	cb, _ := New(freqs)
	w := bitstream.NewWriter(n / 2)
	if err := cb.Encode(w, syms); err != nil {
		b.Fatal(err)
	}
	buf := w.Bytes()
	out := make([]int, n)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitstream.NewReaderBits(buf, w.Len())
		if err := cb.DecodeInto(r, out); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFibonacciFrequenciesDeepTree(t *testing.T) {
	// Fibonacci frequencies force the deepest possible Huffman tree —
	// the stress case for code-length bookkeeping and the length cap.
	freqs := make([]uint64, 40)
	a, b := uint64(1), uint64(1)
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	cb, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if cb.MaxCodeLen() < 30 {
		t.Fatalf("Fibonacci tree depth %d unexpectedly shallow", cb.MaxCodeLen())
	}
	// Round-trip a stream touching the deepest codes.
	syms := []int{0, 1, 2, 39, 38, 0, 39}
	w := bitstream.NewWriter(0)
	cb.Serialize(w)
	if err := cb.Encode(w, syms); err != nil {
		t.Fatal(err)
	}
	r := bitstream.NewReaderBits(w.Bytes(), w.Len())
	cb2, err := Deserialize(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cb2.Decode(r, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("deep-tree decode mismatch at %d", i)
		}
	}
}

func TestEncodeDecodeSymbolAgreeWithSlices(t *testing.T) {
	freqs := []uint64{7, 1, 3, 9, 2}
	cb, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	w1 := bitstream.NewWriter(0)
	w2 := bitstream.NewWriter(0)
	syms := []int{3, 0, 2, 4, 1, 3, 3}
	if err := cb.Encode(w1, syms); err != nil {
		t.Fatal(err)
	}
	for _, s := range syms {
		if err := cb.EncodeSymbol(w2, s); err != nil {
			t.Fatal(err)
		}
	}
	b1, b2 := w1.Bytes(), w2.Bytes()
	if string(b1) != string(b2) {
		t.Fatal("EncodeSymbol and Encode produce different streams")
	}
	r := bitstream.NewReaderBits(b1, w1.Len())
	for i, want := range syms {
		got, err := cb.DecodeSymbol(r)
		if err != nil || got != want {
			t.Fatalf("DecodeSymbol %d: got %d err %v", i, got, err)
		}
	}
	if err := cb.EncodeSymbol(w2, 99); err == nil {
		t.Fatal("out-of-range EncodeSymbol accepted")
	}
}
