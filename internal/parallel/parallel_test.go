package parallel

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
)

func testParams() core.Params {
	return core.Params{Mode: core.BoundRel, RelBound: 1e-4, OutputType: grid.Float32}
}

func makeArrays(n int) []*grid.Array {
	arrays := make([]*grid.Array, n)
	for i := range arrays {
		arrays[i] = datagen.ATM(40, 50, int64(i))
	}
	return arrays
}

func TestCompressAllMatchesSequential(t *testing.T) {
	arrays := makeArrays(8)
	p := testParams()
	streams, _, err := CompressAll(arrays, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arrays {
		want, _, err := core.Compress(a, p)
		if err != nil {
			t.Fatal(err)
		}
		if string(streams[i]) != string(want) {
			t.Fatalf("stream %d differs from sequential compression", i)
		}
	}
}

func TestDecompressAllRoundTrip(t *testing.T) {
	arrays := makeArrays(6)
	p := testParams()
	streams, _, err := CompressAll(arrays, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := DecompressAll(streams, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arrays {
		h, err := core.Inspect(streams[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range arrays[i].Data {
			if math.Abs(arrays[i].Data[j]-out[i].Data[j]) > h.AbsBound {
				t.Fatalf("array %d: bound violated at %d", i, j)
			}
		}
	}
}

func TestWorkerCountDefaults(t *testing.T) {
	arrays := makeArrays(2)
	if _, _, err := CompressAll(arrays, testParams(), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := CompressAll(arrays, testParams(), 1000); err != nil {
		t.Fatal(err) // more workers than tasks is fine
	}
}

func TestCompressAllPropagatesErrors(t *testing.T) {
	arrays := makeArrays(2)
	bad := core.Params{Mode: core.BoundAbs, AbsBound: -1}
	if _, _, err := CompressAll(arrays, bad, 2); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, _, err := DecompressAll([][]byte{{1, 2, 3}}, 2); err == nil {
		t.Fatal("corrupt stream accepted")
	}
}

func TestMeasureScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement in -short mode")
	}
	counts := []int{1, 2}
	if runtime.NumCPU() < 2 {
		counts = []int{1}
	}
	comp, decomp, err := MeasureScaling(
		func(i int) *grid.Array { return datagen.ATM(60, 80, int64(i)) },
		8, testParams(), counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != len(counts) || len(decomp) != len(counts) {
		t.Fatalf("points: %d/%d", len(comp), len(decomp))
	}
	for _, pt := range comp {
		if pt.SpeedGBs <= 0 || pt.Efficiency <= 0 {
			t.Fatalf("bad point %+v", pt)
		}
	}
}

func TestClusterModelShape(t *testing.T) {
	m := BluesModel(0.09) // the paper's single-process rate
	procs := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	pts := m.Scaling(procs)
	if len(pts) != len(procs) {
		t.Fatalf("points %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Processes <= 128 {
			// Paper: ~100% efficiency through 128 processes (≤2 per node).
			if pt.Efficiency < 0.99 {
				t.Fatalf("procs=%d efficiency %v, want ~1", pt.Processes, pt.Efficiency)
			}
		} else {
			// Paper: ~90% beyond 128 processes.
			if pt.Efficiency < 0.85 || pt.Efficiency > 0.95 {
				t.Fatalf("procs=%d efficiency %v, want ~0.9", pt.Processes, pt.Efficiency)
			}
		}
		if pt.Nodes > 64 {
			t.Fatalf("nodes %d exceed cluster", pt.Nodes)
		}
	}
	// 1024-process speedup should land near the paper's ~930.
	last := pts[len(pts)-1]
	if last.Speedup < 850 || last.Speedup > 1000 {
		t.Fatalf("1024-process speedup %v, want ~930", last.Speedup)
	}
}

func TestIOModelSaturates(t *testing.T) {
	io := BluesIOModel()
	t1 := io.TransferSeconds(1e12, 1)
	t4 := io.TransferSeconds(1e12, 4)
	t64 := io.TransferSeconds(1e12, 64)
	t1024 := io.TransferSeconds(1e12, 1024)
	if !(t1 > t4 && t4 > t64) {
		t.Fatalf("transfer should speed up before saturation: %v %v %v", t1, t4, t64)
	}
	if t64 != t1024 {
		t.Fatalf("aggregate bandwidth should saturate: %v vs %v", t64, t1024)
	}
}

func TestFig10CrossesHalf(t *testing.T) {
	// The paper's observation: at >= 32 processes, writing the initial data
	// takes more than half of the total bar (compression becomes a win).
	rows := Fig10(1e12, 6.3, 0.09, BluesIOModel(), []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	var at32 Fig10Row
	for _, r := range rows {
		if r.Processes == 32 {
			at32 = r
		}
		sum := r.CompressShare + r.WriteCompShare + r.WriteInitialShare
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shares must sum to 1, got %v", sum)
		}
	}
	if at32.WriteInitialShare < 0.5 {
		t.Fatalf("at 32 processes initial write share %v, want > 0.5", at32.WriteInitialShare)
	}
	// At 1 process, compression time dominates relative to its share later.
	if rows[0].CompressShare < rows[len(rows)-1].CompressShare {
		t.Fatal("compression share should shrink with scale (I/O becomes the bottleneck)")
	}
}
