// Package parallel implements the Section VI study of the SZ-1.4 paper:
// parallel (in-situ / off-line) compression of large data sets.
//
// The paper runs one MPI process per file fraction with no inter-process
// communication — an embarrassingly parallel workload. Here processes
// become goroutine workers over a shared queue of independent arrays. Real
// strong-scaling measurements (Tables VII/VIII) run up to the host's core
// count; beyond that a calibrated analytic model extends the curve, the
// same way the paper runs 2–16 processes per 8-core node at its top end
// (and sees efficiency fall to ~90% from node-internal contention).
//
// The Fig. 10 comparison of "compress + write compressed" versus "write
// initial data" uses a shared-bandwidth file-system model: per-process
// bandwidth is capped, and aggregate bandwidth saturates, which is the
// bottleneck the paper observes on Blues at ≥32 processes.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
)

// runAll executes fn over n independent tasks with `workers` goroutines
// pulling from a shared counter, returning the wall-clock duration and
// the first error (the duration is measured even when a task fails).
func runAll(n, workers int, fn func(i int) error) (time.Duration, error) {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return elapsed, err
		}
	}
	return elapsed, nil
}

// EncodeAll compresses each array with the named registry codec using
// `workers` goroutines and returns the streams in input order plus the
// wall-clock duration.
func EncodeAll(codecName string, arrays []*grid.Array, p codec.Params, workers int) ([][]byte, time.Duration, error) {
	c, err := codec.Lookup(codecName)
	if err != nil {
		return nil, 0, err
	}
	streams := make([][]byte, len(arrays))
	elapsed, err := runAll(len(arrays), workers, func(i int) error {
		s, err := c.Encode(arrays[i], p)
		if err != nil {
			return fmt.Errorf("parallel: compressing array %d: %w", i, err)
		}
		streams[i] = s
		return nil
	})
	if err != nil {
		return nil, elapsed, err
	}
	return streams, elapsed, nil
}

// DecodeAll decompresses each stream with the named registry codec.
func DecodeAll(codecName string, streams [][]byte, p codec.Params, workers int) ([]*grid.Array, time.Duration, error) {
	c, err := codec.Lookup(codecName)
	if err != nil {
		return nil, 0, err
	}
	arrays := make([]*grid.Array, len(streams))
	elapsed, err := runAll(len(streams), workers, func(i int) error {
		a, err := c.Decode(streams[i], p)
		if err != nil {
			return fmt.Errorf("parallel: decompressing stream %d: %w", i, err)
		}
		arrays[i] = a
		return nil
	})
	if err != nil {
		return nil, elapsed, err
	}
	return arrays, elapsed, nil
}

// CompressAll compresses each array with the SZ-1.4 core via the codec
// registry; see EncodeAll for arbitrary codecs.
func CompressAll(arrays []*grid.Array, p core.Params, workers int) ([][]byte, time.Duration, error) {
	return EncodeAll("sz14", arrays, codec.FromCore(p), workers)
}

// DecompressAll decompresses SZ-1.4 streams; see DecodeAll for arbitrary
// codecs.
func DecompressAll(streams [][]byte, workers int) ([]*grid.Array, time.Duration, error) {
	return DecodeAll("sz14", streams, codec.Params{}, workers)
}

// ScalingPoint is one row of a strong-scaling table (paper Tables VII/VIII).
type ScalingPoint struct {
	Processes  int
	Nodes      int
	SpeedGBs   float64 // aggregate throughput, GB/s
	Speedup    float64
	Efficiency float64
	Modeled    bool // true when extrapolated by the cluster model
}

// MeasureScaling runs real strong-scaling measurements: the fixed work set
// (count copies produced by gen) is compressed and decompressed with each
// worker count, and throughput is derived from uncompressed bytes over
// wall time. Worker counts beyond runtime.NumCPU() are skipped (use
// ClusterModel to extend the curve).
func MeasureScaling(gen func(i int) *grid.Array, count int, p core.Params, workerCounts []int) (comp, decomp []ScalingPoint, err error) {
	arrays := make([]*grid.Array, count)
	totalBytes := 0
	for i := range arrays {
		arrays[i] = gen(i)
		totalBytes += arrays[i].Len() * 8
	}
	var baseComp, baseDecomp float64
	for _, wcount := range workerCounts {
		if wcount > runtime.NumCPU() {
			continue
		}
		streams, dur, err := CompressAll(arrays, p, wcount)
		if err != nil {
			return nil, nil, err
		}
		cs := float64(totalBytes) / dur.Seconds() / 1e9
		if baseComp == 0 {
			baseComp = cs / float64(wcount)
		}
		pt := ScalingPoint{Processes: wcount, Nodes: wcount, SpeedGBs: cs}
		pt.Speedup = cs / baseComp
		pt.Efficiency = pt.Speedup / float64(wcount)
		comp = append(comp, pt)

		_, ddur, err := DecompressAll(streams, wcount)
		if err != nil {
			return nil, nil, err
		}
		ds := float64(totalBytes) / ddur.Seconds() / 1e9
		if baseDecomp == 0 {
			baseDecomp = ds / float64(wcount)
		}
		dpt := ScalingPoint{Processes: wcount, Nodes: wcount, SpeedGBs: ds}
		dpt.Speedup = ds / baseDecomp
		dpt.Efficiency = dpt.Speedup / float64(wcount)
		decomp = append(decomp, dpt)
	}
	return comp, decomp, nil
}

// ClusterModel extrapolates strong scaling to cluster size, calibrated
// against the paper's Blues configuration: one process per node scales
// linearly (no communication); beyond MaxNodes, processes share nodes and
// pay a memory-bandwidth contention penalty.
type ClusterModel struct {
	// PerProcessGBs is the single-process compression throughput.
	PerProcessGBs float64
	// MaxNodes is the node count ceiling (64 on Blues).
	MaxNodes int
	// CoresPerNode bounds processes per node (16 on Blues).
	CoresPerNode int
	// ContentionEfficiency is the per-process efficiency once more than
	// two processes share a node (the paper observes ≈ 0.90).
	ContentionEfficiency float64
}

// BluesModel returns the model with the paper's cluster shape, calibrated
// to a measured single-process rate.
func BluesModel(perProcessGBs float64) ClusterModel {
	return ClusterModel{
		PerProcessGBs:        perProcessGBs,
		MaxNodes:             64,
		CoresPerNode:         16,
		ContentionEfficiency: 0.90,
	}
}

// Scaling returns modeled strong-scaling points for the given process
// counts (paper Tables VII/VIII shape: ~100% efficiency to 128 processes,
// ~90% beyond, when more than two processes share each node).
func (m ClusterModel) Scaling(processes []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(processes))
	for _, procs := range processes {
		nodes := procs
		if nodes > m.MaxNodes {
			nodes = m.MaxNodes
		}
		perNode := (procs + nodes - 1) / nodes
		eff := 1.0
		if perNode > 2 {
			eff = m.ContentionEfficiency
		}
		speed := m.PerProcessGBs * float64(procs) * eff
		out = append(out, ScalingPoint{
			Processes:  procs,
			Nodes:      nodes,
			SpeedGBs:   speed,
			Speedup:    speed / m.PerProcessGBs,
			Efficiency: eff,
			Modeled:    true,
		})
	}
	return out
}

// IOModel is the shared-bandwidth parallel file system of Fig. 10.
type IOModel struct {
	// PerProcessGBs caps each process's I/O bandwidth.
	PerProcessGBs float64
	// AggregateGBs caps the file system's total bandwidth.
	AggregateGBs float64
}

// BluesIOModel approximates the paper's cluster file system: per-process
// streams saturate a shared store at modest process counts, which is why
// writing the initial (uncompressed) data dominates the Fig. 10 bars from
// 32 processes on. Calibrated so that with the paper's measured 0.09 GB/s
// per-process compression rate and CF ≈ 6.3, the initial-write share
// crosses 50% at ≥ 32 processes, as in the paper.
func BluesIOModel() IOModel {
	return IOModel{PerProcessGBs: 0.15, AggregateGBs: 1.0}
}

// TransferSeconds returns the wall time to move totalBytes with procs
// concurrent processes.
func (m IOModel) TransferSeconds(totalBytes float64, procs int) float64 {
	bw := m.PerProcessGBs * float64(procs)
	if bw > m.AggregateGBs {
		bw = m.AggregateGBs
	}
	return totalBytes / (bw * 1e9)
}

// Fig10Row is one bar of Fig. 10: the share of time spent in each phase
// when compressing then writing, normalized against writing raw data.
type Fig10Row struct {
	Processes int
	// Seconds per phase.
	CompressSec     float64
	WriteCompSec    float64
	WriteInitialSec float64
	// Shares normalized so the three phases sum to 1 (as plotted).
	CompressShare     float64
	WriteCompShare    float64
	WriteInitialShare float64
}

// Fig10 evaluates the model: totalBytes of raw data, compression factor
// cf, per-process compression rate compGBs, for each process count.
func Fig10(totalBytes float64, cf float64, compGBs float64, io IOModel, processes []int) []Fig10Row {
	rows := make([]Fig10Row, 0, len(processes))
	for _, procs := range processes {
		r := Fig10Row{Processes: procs}
		r.CompressSec = totalBytes / (compGBs * float64(procs) * 1e9)
		r.WriteCompSec = io.TransferSeconds(totalBytes/cf, procs)
		r.WriteInitialSec = io.TransferSeconds(totalBytes, procs)
		sum := r.CompressSec + r.WriteCompSec + r.WriteInitialSec
		r.CompressShare = r.CompressSec / sum
		r.WriteCompShare = r.WriteCompSec / sum
		r.WriteInitialShare = r.WriteInitialSec / sum
		rows = append(rows, r)
	}
	return rows
}
