package server

// Request telemetry on the shared obs registry. The szd_* series names
// and label orders predate the registry and are scrape-contract: the
// router's load poller parses szd_inflight_bytes / szd_workers_busy
// lines (fleet/health.go), and CI greps exact sample lines — only the
// emitter moved, not the exposition.

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/scratch"
	"repro/internal/store"
)

type metrics struct {
	reg      *obs.Registry
	requests *obs.Vec
	bytesIn  *obs.Vec
	bytesOut *obs.Vec
	latency  *obs.HistVec
	stages   *obs.HistVec
	// fastLat/slowLat are the QoS signal tap: two EWMAs over served-
	// request latency at different smoothing factors. The control loop
	// reads them off-path; recording is one multiply-add per request.
	fastLat *obs.EWMA
	slowLat *obs.EWMA
}

func newMetrics(g *governor, st *store.Store) *metrics {
	r := obs.NewRegistry()
	m := &metrics{
		reg: r,
		requests: r.Counter("szd_requests_total",
			"Requests by endpoint, codec, and HTTP status.",
			"endpoint", "codec", "status"),
		bytesIn: r.Counter("szd_bytes_in_total",
			"Request body bytes consumed.", "endpoint"),
		bytesOut: r.Counter("szd_bytes_out_total",
			"Response body bytes produced.", "endpoint"),
		fastLat: obs.NewEWMA(0.3),
		slowLat: obs.NewEWMA(0.02),
	}
	r.GaugeFunc("szd_inflight_requests", "Admitted requests currently being served.",
		func() float64 { return float64(g.requests.Load()) })
	r.GaugeFunc("szd_inflight_bytes", "Reserved in-flight byte budget.",
		func() float64 { return float64(g.inflight.Load()) })
	r.GaugeFunc("szd_workers_busy",
		"Worker-pool tokens handed out (pool size "+strconv.Itoa(g.poolSize)+").",
		func() float64 { return float64(g.busyWorkers()) })
	if st != nil {
		r.GaugeFunc("szd_store_bytes", "Payload bytes resident in the content-addressed store.",
			func() float64 { return float64(st.Stats().Bytes) })
		r.GaugeFunc("szd_store_entries", "Containers resident in the content-addressed store.",
			func() float64 { return float64(st.Stats().Entries) })
		r.Func("szd_store_hits_total", "Digest-referenced reads served from the store.",
			"counter", nil, func(emit func(float64, ...string)) { emit(float64(st.Stats().Hits)) })
		r.Func("szd_store_misses_total", "Digest-referenced reads the store could not answer.",
			"counter", nil, func(emit func(float64, ...string)) { emit(float64(st.Stats().Misses)) })
		r.Func("szd_store_evictions_total", "Entries evicted to hold the byte budget.",
			"counter", nil, func(emit func(float64, ...string)) { emit(float64(st.Stats().Evictions)) })
	}
	m.latency = r.Histogram("szd_request_seconds",
		"Request latency by endpoint and codec.", nil, "endpoint", "codec")
	m.stages = r.Histogram("szd_stage_seconds",
		"Per-stage latency from request traces, by endpoint and stage.",
		obs.StageBuckets, "endpoint", "stage")
	registerScratch(r)
	obs.RegisterRuntime(r, "szd")
	return m
}

// registerScratch exposes the scratch pools' per-size-class traffic as
// szd_scratch_* gauges sampled live at scrape time.
func registerScratch(r *obs.Registry) {
	each := func(pick func(scratch.ClassStats) int64) func(func(float64, ...string)) {
		return func(emit func(float64, ...string)) {
			for _, cs := range scratch.Stats() {
				emit(float64(pick(cs)), strconv.Itoa(cs.Size))
			}
		}
	}
	r.Func("szd_scratch_hits", "Scratch-pool Gets served from the pool, by size class (elements).",
		"gauge", []string{"class"}, each(func(c scratch.ClassStats) int64 { return c.Hits }))
	r.Func("szd_scratch_misses", "Scratch-pool Gets that had to allocate, by size class (elements).",
		"gauge", []string{"class"}, each(func(c scratch.ClassStats) int64 { return c.Misses }))
	r.Func("szd_scratch_puts", "Slices recycled into the scratch pools, by size class (elements).",
		"gauge", []string{"class"}, each(func(c scratch.ClassStats) int64 { return c.Puts }))
}

// record logs one finished (or rejected) request. Only served requests
// feed the QoS latency tap — rejections finish in microseconds and
// would mask real service latency climbing.
func (m *metrics) record(endpoint, codec string, status int, in, out int64, d time.Duration) {
	m.requests.Inc(endpoint, codec, strconv.Itoa(status))
	m.bytesIn.Add(float64(in), endpoint)
	m.bytesOut.Add(float64(out), endpoint)
	m.latency.ObserveDuration(d, endpoint, codec)
	if status >= 200 && status < 300 {
		m.fastLat.Observe(d.Seconds())
		m.slowLat.Observe(d.Seconds())
	}
}

// registerQoS adds the szd_qos_* families: the controller's live
// decisions and the per-tenant admission view, sampled at scrape time.
// Registered last so every pre-existing family keeps its position in
// the exposition (scrape-compat).
func (m *metrics) registerQoS(s *Server) {
	r := m.reg
	r.GaugeFunc("szd_qos_budget_bytes", "Adaptive admission byte budget currently in force.",
		func() float64 { return float64(s.gov.budget.Load()) })
	r.GaugeFunc("szd_qos_workers", "Adaptive worker clamp currently in force.",
		func() float64 { return float64(s.gov.clamp.Load()) })
	r.GaugeFunc("szd_qos_retry_after_seconds", "Backoff hint currently attached to load sheds.",
		func() float64 { return float64(s.retryAfterMS.Load()) / 1000 })
	r.GaugeFunc("szd_qos_congested", "1 while the QoS controller sees sustained pressure.",
		func() float64 {
			if s.qosState().Congested {
				return 1
			}
			return 0
		})
	r.Func("szd_qos_sheds_total", "Load-shed rejections (budget, share, or worker exhaustion).",
		"counter", nil, func(emit func(float64, ...string)) { emit(float64(s.gov.sheds.Load())) })
	r.Func("szd_qos_ticks_total", "QoS control-loop iterations.",
		"counter", nil, func(emit func(float64, ...string)) { emit(float64(s.qosState().Ticks)) })
	r.Func("szd_qos_cuts_total", "Multiplicative budget cuts taken by the controller.",
		"counter", nil, func(emit func(float64, ...string)) { emit(float64(s.qosState().Cuts)) })
	r.Func("szd_qos_grows_total", "Additive budget increases taken by the controller.",
		"counter", nil, func(emit func(float64, ...string)) { emit(float64(s.qosState().Grows)) })
	perTenant := func(pick func(tenantSnapshot) float64) func(func(float64, ...string)) {
		return func(emit func(float64, ...string)) {
			for _, t := range s.gov.snapshotTenants() {
				emit(pick(t), t.name)
			}
		}
	}
	r.Func("szd_qos_tenant_weight", "Configured admission weight by tenant.",
		"gauge", []string{"tenant"}, perTenant(func(t tenantSnapshot) float64 { return t.weight }))
	r.Func("szd_qos_tenant_share_bytes", "Current weighted-fair byte share by tenant.",
		"gauge", []string{"tenant"}, perTenant(func(t tenantSnapshot) float64 { return float64(t.share) }))
	r.Func("szd_qos_tenant_inflight_bytes", "Admitted in-flight bytes by tenant.",
		"gauge", []string{"tenant"}, perTenant(func(t tenantSnapshot) float64 { return float64(t.inflight) }))
	r.Func("szd_qos_tenant_admitted_total", "Admitted requests by tenant.",
		"counter", []string{"tenant"}, perTenant(func(t tenantSnapshot) float64 { return float64(t.admitted) }))
	r.Func("szd_qos_tenant_rejected_total", "Admission rejections by tenant.",
		"counter", []string{"tenant"}, perTenant(func(t tenantSnapshot) float64 { return float64(t.rejected) }))
}

// recordStages feeds a finished trace's spans into the per-stage
// histograms. Aggregated spans (e.g. per-slab huffbuild) observe their
// summed duration once — the histogram answers "how long did this stage
// take per request", not per invocation.
func (m *metrics) recordStages(t *obs.Trace) {
	if t == nil {
		return
	}
	for _, sp := range t.Spans() {
		m.stages.ObserveDuration(sp.Dur, t.Endpoint, sp.Name)
	}
}

func (m *metrics) expose() string { return m.reg.Expose() }
