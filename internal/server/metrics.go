package server

// Request telemetry on the shared obs registry. The szd_* series names
// and label orders predate the registry and are scrape-contract: the
// router's load poller parses szd_inflight_bytes / szd_workers_busy
// lines (fleet/health.go), and CI greps exact sample lines — only the
// emitter moved, not the exposition.

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/scratch"
	"repro/internal/store"
)

type metrics struct {
	reg      *obs.Registry
	requests *obs.Vec
	bytesIn  *obs.Vec
	bytesOut *obs.Vec
	latency  *obs.HistVec
	stages   *obs.HistVec
}

func newMetrics(g *governor, st *store.Store) *metrics {
	r := obs.NewRegistry()
	m := &metrics{
		reg: r,
		requests: r.Counter("szd_requests_total",
			"Requests by endpoint, codec, and HTTP status.",
			"endpoint", "codec", "status"),
		bytesIn: r.Counter("szd_bytes_in_total",
			"Request body bytes consumed.", "endpoint"),
		bytesOut: r.Counter("szd_bytes_out_total",
			"Response body bytes produced.", "endpoint"),
	}
	r.GaugeFunc("szd_inflight_requests", "Admitted requests currently being served.",
		func() float64 { return float64(g.requests.Load()) })
	r.GaugeFunc("szd_inflight_bytes", "Reserved in-flight byte budget.",
		func() float64 { return float64(g.inflight.Load()) })
	r.GaugeFunc("szd_workers_busy",
		"Worker-pool tokens handed out (pool size "+strconv.Itoa(g.poolSize)+").",
		func() float64 { return float64(g.busyWorkers()) })
	if st != nil {
		r.GaugeFunc("szd_store_bytes", "Payload bytes resident in the content-addressed store.",
			func() float64 { return float64(st.Stats().Bytes) })
		r.GaugeFunc("szd_store_entries", "Containers resident in the content-addressed store.",
			func() float64 { return float64(st.Stats().Entries) })
		r.Func("szd_store_hits_total", "Digest-referenced reads served from the store.",
			"counter", nil, func(emit func(float64, ...string)) { emit(float64(st.Stats().Hits)) })
		r.Func("szd_store_misses_total", "Digest-referenced reads the store could not answer.",
			"counter", nil, func(emit func(float64, ...string)) { emit(float64(st.Stats().Misses)) })
		r.Func("szd_store_evictions_total", "Entries evicted to hold the byte budget.",
			"counter", nil, func(emit func(float64, ...string)) { emit(float64(st.Stats().Evictions)) })
	}
	m.latency = r.Histogram("szd_request_seconds",
		"Request latency by endpoint and codec.", nil, "endpoint", "codec")
	m.stages = r.Histogram("szd_stage_seconds",
		"Per-stage latency from request traces, by endpoint and stage.",
		obs.StageBuckets, "endpoint", "stage")
	registerScratch(r)
	obs.RegisterRuntime(r, "szd")
	return m
}

// registerScratch exposes the scratch pools' per-size-class traffic as
// szd_scratch_* gauges sampled live at scrape time.
func registerScratch(r *obs.Registry) {
	each := func(pick func(scratch.ClassStats) int64) func(func(float64, ...string)) {
		return func(emit func(float64, ...string)) {
			for _, cs := range scratch.Stats() {
				emit(float64(pick(cs)), strconv.Itoa(cs.Size))
			}
		}
	}
	r.Func("szd_scratch_hits", "Scratch-pool Gets served from the pool, by size class (elements).",
		"gauge", []string{"class"}, each(func(c scratch.ClassStats) int64 { return c.Hits }))
	r.Func("szd_scratch_misses", "Scratch-pool Gets that had to allocate, by size class (elements).",
		"gauge", []string{"class"}, each(func(c scratch.ClassStats) int64 { return c.Misses }))
	r.Func("szd_scratch_puts", "Slices recycled into the scratch pools, by size class (elements).",
		"gauge", []string{"class"}, each(func(c scratch.ClassStats) int64 { return c.Puts }))
}

// record logs one finished (or rejected) request.
func (m *metrics) record(endpoint, codec string, status int, in, out int64, d time.Duration) {
	m.requests.Inc(endpoint, codec, strconv.Itoa(status))
	m.bytesIn.Add(float64(in), endpoint)
	m.bytesOut.Add(float64(out), endpoint)
	m.latency.ObserveDuration(d, endpoint, codec)
}

// recordStages feeds a finished trace's spans into the per-stage
// histograms. Aggregated spans (e.g. per-slab huffbuild) observe their
// summed duration once — the histogram answers "how long did this stage
// take per request", not per invocation.
func (m *metrics) recordStages(t *obs.Trace) {
	if t == nil {
		return
	}
	for _, sp := range t.Spans() {
		m.stages.ObserveDuration(sp.Dur, t.Endpoint, sp.Name)
	}
}

func (m *metrics) expose() string { return m.reg.Expose() }
