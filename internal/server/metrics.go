package server

// Request telemetry with a Prometheus-style text exposition. Kept
// dependency-free on purpose: counters, gauges, and fixed-bucket latency
// histograms cover what operating a compression fleet needs (request
// rates by status, shed rates, byte throughput, tail latency per codec).

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/store"
)

// latencyBuckets are the histogram upper bounds in seconds (log-spaced
// from 1 ms to 10 s; compression requests span ~4 decades).
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type histogram struct {
	counts []int64 // len(latencyBuckets)+1; +Inf overflow at the end
	sum    float64
	n      int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	h.counts[i]++
	h.sum += s
	h.n++
}

// reqKey labels one counter/histogram series.
type reqKey struct {
	endpoint string // compress, decompress, inspect, codecs, ...
	codec    string // "" when no codec applies
	status   int
}

type metrics struct {
	mu       sync.Mutex
	requests map[reqKey]int64
	bytesIn  map[string]int64 // by endpoint
	bytesOut map[string]int64
	latency  map[string]*histogram // by "endpoint\x00codec"
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[reqKey]int64{},
		bytesIn:  map[string]int64{},
		bytesOut: map[string]int64{},
		latency:  map[string]*histogram{},
	}
}

// record logs one finished (or rejected) request.
func (m *metrics) record(endpoint, codec string, status int, in, out int64, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, codec, status}]++
	m.bytesIn[endpoint] += in
	m.bytesOut[endpoint] += out
	hk := endpoint + "\x00" + codec
	h := m.latency[hk]
	if h == nil {
		h = newHistogram()
		m.latency[hk] = h
	}
	h.observe(d)
}

// expose renders the text exposition. The governor supplies the live
// gauges; st, when non-nil, is the content-addressed store's snapshot
// (tier 2 of the fleet cache).
func (m *metrics) expose(g *governor, st *store.Stats) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	b.WriteString("# HELP szd_requests_total Requests by endpoint, codec, and HTTP status.\n")
	b.WriteString("# TYPE szd_requests_total counter\n")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if a.endpoint != c.endpoint {
			return a.endpoint < c.endpoint
		}
		if a.codec != c.codec {
			return a.codec < c.codec
		}
		return a.status < c.status
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "szd_requests_total{endpoint=%q,codec=%q,status=\"%d\"} %d\n",
			k.endpoint, k.codec, k.status, m.requests[k])
	}

	writeByEndpoint := func(name, help string, vals map[string]int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		eps := make([]string, 0, len(vals))
		for ep := range vals {
			eps = append(eps, ep)
		}
		sort.Strings(eps)
		for _, ep := range eps {
			fmt.Fprintf(&b, "%s{endpoint=%q} %d\n", name, ep, vals[ep])
		}
	}
	writeByEndpoint("szd_bytes_in_total", "Request body bytes consumed.", m.bytesIn)
	writeByEndpoint("szd_bytes_out_total", "Response body bytes produced.", m.bytesOut)

	fmt.Fprintf(&b, "# HELP szd_inflight_requests Admitted requests currently being served.\n")
	fmt.Fprintf(&b, "# TYPE szd_inflight_requests gauge\n")
	fmt.Fprintf(&b, "szd_inflight_requests %d\n", g.requests.Load())
	fmt.Fprintf(&b, "# HELP szd_inflight_bytes Reserved in-flight byte budget.\n")
	fmt.Fprintf(&b, "# TYPE szd_inflight_bytes gauge\n")
	fmt.Fprintf(&b, "szd_inflight_bytes %d\n", g.inflight.Load())
	fmt.Fprintf(&b, "# HELP szd_workers_busy Worker-pool tokens handed out (pool size %d).\n", g.poolSize)
	fmt.Fprintf(&b, "# TYPE szd_workers_busy gauge\n")
	fmt.Fprintf(&b, "szd_workers_busy %d\n", g.busyWorkers())

	if st != nil {
		fmt.Fprintf(&b, "# HELP szd_store_bytes Payload bytes resident in the content-addressed store.\n")
		fmt.Fprintf(&b, "# TYPE szd_store_bytes gauge\n")
		fmt.Fprintf(&b, "szd_store_bytes %d\n", st.Bytes)
		fmt.Fprintf(&b, "# HELP szd_store_entries Containers resident in the content-addressed store.\n")
		fmt.Fprintf(&b, "# TYPE szd_store_entries gauge\n")
		fmt.Fprintf(&b, "szd_store_entries %d\n", st.Entries)
		fmt.Fprintf(&b, "# HELP szd_store_hits_total Digest-referenced reads served from the store.\n")
		fmt.Fprintf(&b, "# TYPE szd_store_hits_total counter\n")
		fmt.Fprintf(&b, "szd_store_hits_total %d\n", st.Hits)
		fmt.Fprintf(&b, "# HELP szd_store_misses_total Digest-referenced reads the store could not answer.\n")
		fmt.Fprintf(&b, "# TYPE szd_store_misses_total counter\n")
		fmt.Fprintf(&b, "szd_store_misses_total %d\n", st.Misses)
		fmt.Fprintf(&b, "# HELP szd_store_evictions_total Entries evicted to hold the byte budget.\n")
		fmt.Fprintf(&b, "# TYPE szd_store_evictions_total counter\n")
		fmt.Fprintf(&b, "szd_store_evictions_total %d\n", st.Evictions)
	}

	b.WriteString("# HELP szd_request_seconds Request latency by endpoint and codec.\n")
	b.WriteString("# TYPE szd_request_seconds histogram\n")
	hks := make([]string, 0, len(m.latency))
	for hk := range m.latency {
		hks = append(hks, hk)
	}
	sort.Strings(hks)
	for _, hk := range hks {
		parts := strings.SplitN(hk, "\x00", 2)
		ep, codec := parts[0], parts[1]
		h := m.latency[hk]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(&b, "szd_request_seconds_bucket{endpoint=%q,codec=%q,le=\"%g\"} %d\n",
				ep, codec, ub, cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(&b, "szd_request_seconds_bucket{endpoint=%q,codec=%q,le=\"+Inf\"} %d\n", ep, codec, cum)
		fmt.Fprintf(&b, "szd_request_seconds_sum{endpoint=%q,codec=%q} %g\n", ep, codec, h.sum)
		fmt.Fprintf(&b, "szd_request_seconds_count{endpoint=%q,codec=%q} %d\n", ep, codec, h.n)
	}
	return b.String()
}
