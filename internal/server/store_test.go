package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/store"
)

// newStoreDaemon builds a daemon with a content-addressed store.
func newStoreDaemon(t *testing.T, budget int64) (*Server, string, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestDaemon(t, Config{Store: st})
	_ = s
	return s, ts.URL, st
}

// compressRemote round-trips raw through /v1/compress and returns the
// container and the digest from the ETag trailer.
func compressRemote(t *testing.T, base string, raw []byte, query string) ([]byte, string) {
	t.Helper()
	resp := post(t, base+"/v1/compress?"+query, raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	stream := readAllClose(t, resp)
	etag := resp.Trailer.Get("Etag")
	if etag == "" {
		t.Fatal("compress response has no ETag trailer")
	}
	digest := strings.Trim(etag, `"`)
	if !store.ValidDigest(digest) {
		t.Fatalf("ETag trailer %q is not a digest etag", etag)
	}
	return stream, digest
}

// TestCompressPersistsWithETagTrailer: a compress response must carry
// the container's digest as an ETag trailer, the digest must match the
// response bytes, and the container must land in the store.
func TestCompressPersistsWithETagTrailer(t *testing.T) {
	_, base, st := newStoreDaemon(t, 0)
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	stream, digest := compressRemote(t, base, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12")

	if want := bodyDigest(stream); digest != want {
		t.Fatalf("trailer digest %s, body hashes to %s", digest, want)
	}
	ent, err := st.Get(digest)
	if err != nil {
		t.Fatalf("container not in store: %v", err)
	}
	defer ent.Release()
	if !bytes.Equal(ent.Bytes(), stream) {
		t.Fatal("stored bytes differ from response bytes")
	}
}

// TestDigestReferencedSlabRead: after one compress, a bodyless
// GET /v1/slab/{i}?digest= must serve the same samples the body path
// serves, flag the store hit, and carry the container ETag.
func TestDigestReferencedSlabRead(t *testing.T) {
	_, base, _ := newStoreDaemon(t, 0)
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	stream, digest := compressRemote(t, base, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12&slab=4")

	// Reference decode through the body path.
	resp := post(t, base+"/v1/slab/1", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("body slab status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	want := readAllClose(t, resp)

	resp, err := http.Get(base + "/v1/slab/1?digest=" + digest)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest slab status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	if got := resp.Header.Get(api.HeaderStore); got != "hit" {
		t.Errorf("store tag = %q, want hit", got)
	}
	if got := resp.Header.Get("Etag"); got != etagFor(digest) {
		t.Errorf("Etag = %q, want %q", got, etagFor(digest))
	}
	got := readAllClose(t, resp)
	if !bytes.Equal(got, want) {
		t.Fatalf("digest-referenced slab differs from body path: %d vs %d bytes", len(got), len(want))
	}

	// The header fallback must work too.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/slab/1", nil)
	req.Header.Set(api.HeaderDigest, digest)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAllClose(t, resp); !bytes.Equal(got, want) {
		t.Fatal("digest-header fallback differs")
	}
}

// TestCompressedSlabExtent: Accept: application/x-sz-slab must yield
// the exact compressed extent (a byte slice of the container), which a
// client can decode locally to the same samples.
func TestCompressedSlabExtent(t *testing.T) {
	_, base, _ := newStoreDaemon(t, 0)
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	stream, digest := compressRemote(t, base, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12&slab=4")

	si, err := codec.SlabIndexOf(stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"0", "2", "1-2", "0-3"} {
		lo, hi, _ := codec.ParseSlabSpec(spec)
		req, _ := http.NewRequest(http.MethodGet, base+"/v1/slab/"+spec+"?digest="+digest, nil)
		req.Header.Set("Accept", SlabContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("spec %s: status %d: %s", spec, resp.StatusCode, readAllClose(t, resp))
		}
		if ct := resp.Header.Get("Content-Type"); ct != SlabContentType {
			t.Fatalf("spec %s: content type %q", spec, ct)
		}
		got := readAllClose(t, resp)

		// The extent must be the container's own bytes for that range.
		start := si.HeaderLen
		for i := 0; i < lo; i++ {
			start += si.SlabLengths[i]
		}
		end := start
		for i := lo; i <= hi; i++ {
			end += si.SlabLengths[i]
		}
		if !bytes.Equal(got, stream[start:end]) {
			t.Fatalf("spec %s: extent differs from container slice", spec)
		}

		// X-Sz-Slab-Lengths must let the client split the extent.
		var lens []int
		for _, f := range strings.Split(resp.Header.Get(api.HeaderSlabLengths), ",") {
			n, err := strconv.Atoi(f)
			if err != nil {
				t.Fatalf("spec %s: bad X-Sz-Slab-Lengths: %v", spec, err)
			}
			lens = append(lens, n)
		}
		sum := 0
		for _, n := range lens {
			sum += n
		}
		if len(lens) != hi-lo+1 || sum != len(got) {
			t.Fatalf("spec %s: lengths %v do not cover %d extent bytes", spec, lens, len(got))
		}

		// Each stream decodes independently to the body-path samples.
		off := 0
		for k, n := range lens {
			arr, h, err := core.Decompress(got[off : off+n])
			if err != nil {
				t.Fatalf("spec %s slab %d: local decode: %v", spec, lo+k, err)
			}
			if h.DType != grid.Float32 {
				t.Fatalf("dtype %v", h.DType)
			}
			off += n
			_ = arr
		}
	}
}

// TestIfNoneMatch304: a conditional read with the container's ETag must
// answer 304 with no body on every endpoint — including after the
// entry is evicted (the digest alone proves the match).
func TestIfNoneMatch304(t *testing.T) {
	_, base, st := newStoreDaemon(t, 0)
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	stream, digest := compressRemote(t, base, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12")
	etag := etagFor(digest)

	check := func(name, method, url string, body []byte) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, _ := http.NewRequest(method, url, rd)
		req.Header.Set("If-None-Match", etag)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b := readAllClose(t, resp)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("%s: status %d, want 304 (%s)", name, resp.StatusCode, b)
		}
		if len(b) != 0 {
			t.Fatalf("%s: 304 carried %d body bytes", name, len(b))
		}
		if got := resp.Header.Get("Etag"); got != etag {
			t.Fatalf("%s: 304 Etag %q, want %q", name, got, etag)
		}
	}

	check("slab-digest", http.MethodGet, base+"/v1/slab/1?digest="+digest, nil)
	check("slabs-digest", http.MethodGet, base+"/v1/slabs?digest="+digest, nil)
	check("decompress-digest", http.MethodGet, base+"/v1/decompress?digest="+digest, nil)
	check("slab-body", http.MethodPost, base+"/v1/slab/1", stream)
	check("slabs-body", http.MethodPost, base+"/v1/slabs", stream)
	check("container", http.MethodGet, base+"/v1/container/"+digest, nil)

	// Evict everything: the 304s must keep working — identical digest
	// means identical bytes whether or not the store still holds them.
	if _, err := st.Put(bytes.Repeat([]byte("evict"), 10)); err != nil {
		t.Fatal(err)
	}
	check("slab-digest-evicted", http.MethodGet, base+"/v1/slab/1?digest="+digest, nil)
}

// TestDigestMissIs404 with X-Sz-Store: miss so routers can trigger
// peer fill.
func TestDigestMissIs404(t *testing.T) {
	_, base, _ := newStoreDaemon(t, 0)
	missing := bodyDigest([]byte("never stored"))
	resp, err := http.Get(base + "/v1/slab/0?digest=" + missing)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get(api.HeaderStore); got != "miss" {
		t.Fatalf("store tag = %q, want miss", got)
	}

	// Malformed digests are 400, not 404.
	resp, err = http.Get(base + "/v1/slab/0?digest=nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed digest: status %d, want 400", resp.StatusCode)
	}
}

// TestBodyPathFillsStore: a slab read that carries the container body
// must persist it, so the next reader can go bodyless.
func TestBodyPathFillsStore(t *testing.T) {
	_, base, st := newStoreDaemon(t, 0)
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}, SlabRows: 4}
	stream := localStream(t, "blocked", raw, p)
	digest := bodyDigest(stream)

	resp := post(t, base+"/v1/slab/0", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	if got := resp.Header.Get("Etag"); got != etagFor(digest) {
		t.Errorf("body-path Etag = %q, want %q", got, etagFor(digest))
	}
	readAllClose(t, resp)
	if !st.Contains(digest) {
		t.Fatal("body path did not fill the store")
	}

	// And now the bodyless read works.
	resp2, err := http.Get(base + "/v1/slab/0?digest=" + digest)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("bodyless read after fill: status %d", resp2.StatusCode)
	}
	readAllClose(t, resp2)
}

// TestContainerGetPut: the peer-fill endpoint round-trips container
// bytes and verifies the digest on PUT.
func TestContainerGetPut(t *testing.T) {
	_, base, _ := newStoreDaemon(t, 0)
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}}
	stream := localStream(t, "blocked", raw, p)
	digest := bodyDigest(stream)

	put := func(d string, body []byte) int {
		req, _ := http.NewRequest(http.MethodPut, base+"/v1/container/"+d, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(digest, stream); code != http.StatusNoContent {
		t.Fatalf("put status %d", code)
	}
	// Corrupt upload under a clean name must be rejected, not stored.
	if code := put(bodyDigest([]byte("other")), stream); code != http.StatusBadRequest {
		t.Fatalf("mismatched put status %d, want 400", code)
	}

	resp, err := http.Get(base + "/v1/container/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	if got := readAllClose(t, resp); !bytes.Equal(got, stream) {
		t.Fatal("container bytes differ after PUT/GET round trip")
	}

	resp, err = http.Get(base + "/v1/container/" + bodyDigest([]byte("absent")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing container: status %d, want 404", resp.StatusCode)
	}
}

// TestContainerHeadAndListing: HEAD /v1/container/{digest} is the
// replicator's existence probe (204 stored, 404 not), and GET
// /v1/containers lists the inventory for anti-entropy sweeps.
func TestContainerHeadAndListing(t *testing.T) {
	_, base, st := newStoreDaemon(t, 0)
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}}
	stream := localStream(t, "blocked", raw, p)
	digest, err := st.Put(stream)
	if err != nil {
		t.Fatal(err)
	}

	head := func(d string) *http.Response {
		req, _ := http.NewRequest(http.MethodHead, base+"/v1/container/"+d, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	resp := head(digest)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("stored HEAD status %d, want 204", resp.StatusCode)
	}
	if got := resp.Header.Get(api.HeaderStore); got != "hit" {
		t.Errorf("stored HEAD %s = %q, want hit", api.HeaderStore, got)
	}
	resp = head(bodyDigest([]byte("absent")))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent HEAD status %d, want 404", resp.StatusCode)
	}

	lresp, err := http.Get(base + "/v1/containers")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Digests []string `json:"digests"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(listing.Digests) != 1 || listing.Digests[0] != digest {
		t.Fatalf("listing %v, want [%s]", listing.Digests, digest)
	}

	// No store configured: the listing is a 404, same as any other
	// store-backed surface.
	_, ts := newTestDaemon(t, Config{})
	nresp, err := http.Get(ts.URL + "/v1/containers")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("storeless listing status %d, want 404", nresp.StatusCode)
	}
}

// TestDigestReferencedDecompress: GET /v1/decompress?digest= must equal
// the body-path reconstruction.
func TestDigestReferencedDecompress(t *testing.T) {
	_, base, _ := newStoreDaemon(t, 0)
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	stream, digest := compressRemote(t, base, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12")

	resp := post(t, base+"/v1/decompress", stream)
	want := readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("body decompress status %d", resp.StatusCode)
	}
	// The body-path decompress must also have announced the digest.
	if etag := resp.Trailer.Get("Etag"); etag != etagFor(digest) {
		t.Errorf("decompress trailer Etag = %q, want %q", etag, etagFor(digest))
	}

	resp2, err := http.Get(base + "/v1/decompress?digest=" + digest)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("digest decompress status %d", resp2.StatusCode)
	}
	if got := readAllClose(t, resp2); !bytes.Equal(got, want) {
		t.Fatal("digest-referenced decompress differs from body path")
	}
}

// TestCodecsAdvertisesPreferredStreams covers the SZB3 follow-on: the
// daemon tells auto-stream clients what to use.
func TestCodecsAdvertisesPreferredStreams(t *testing.T) {
	for _, cfg := range []struct {
		set  int
		want int
	}{{0, 4}, {8, 8}} {
		_, ts := newTestDaemon(t, Config{PreferredStreams: cfg.set})
		resp, err := http.Get(ts.URL + "/v1/codecs")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Codecs           []string `json:"codecs"`
			PreferredStreams int      `json:"preferred_streams"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body.PreferredStreams != cfg.want {
			t.Fatalf("preferred_streams = %d, want %d", body.PreferredStreams, cfg.want)
		}
		if len(body.Codecs) == 0 {
			t.Fatal("codecs list empty")
		}
	}
}

// TestStoreMetricsExposed: the tier-2 gauges and counters must appear
// once a store is configured.
func TestStoreMetricsExposed(t *testing.T) {
	_, base, _ := newStoreDaemon(t, 0)
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	_, digest := compressRemote(t, base, raw, "codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12")
	resp, err := http.Get(base + "/v1/slab/0?digest=" + digest)
	if err != nil {
		t.Fatal(err)
	}
	readAllClose(t, resp)

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := string(readAllClose(t, mresp))
	for _, want := range []string{
		"szd_store_entries 1",
		"szd_store_hits_total 1",
		"szd_store_evictions_total 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(m, "szd_store_bytes ") {
		t.Error("metrics missing szd_store_bytes")
	}
}

// TestStoreDisabledPaths: without a store, digest-referenced reads are
// 404s and compress carries no ETag trailer — the seeded behavior is
// otherwise untouched.
func TestStoreDisabledPaths(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	raw, _ := makeRaw(t, grid.Float32, 8, 10, 10)
	resp := post(t, ts.URL+"/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=8,10,10", raw)
	stream := readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d", resp.StatusCode)
	}
	if etag := resp.Trailer.Get("Etag"); etag != "" {
		t.Fatalf("storeless compress has ETag trailer %q", etag)
	}
	r2, err := http.Get(ts.URL + "/v1/slab/0?digest=" + bodyDigest(stream))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("digest read without store: status %d, want 404", r2.StatusCode)
	}
}
