package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
)

// discardWriter is a ResponseWriter that throws the body away, so the
// benchmark measures the handler's own allocations, not a recorder's
// body buffering.
type discardWriter struct {
	h http.Header
}

func (d *discardWriter) Header() http.Header {
	if d.h == nil {
		d.h = http.Header{}
	}
	return d.h
}
func (d *discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardWriter) WriteHeader(int)             {}

// BenchmarkServerRoundTrips measures the szd handlers' steady-state
// allocation behaviour per request: with the scratch pools warm, the
// per-request cost is the HTTP plumbing plus whatever the hot path
// still allocates.
func BenchmarkServerRoundTrips(b *testing.B) {
	s := New(Config{})
	a := datagen.Hurricane(16, 64, 64, 7)
	var rawBuf bytes.Buffer
	if err := a.WriteRaw(&rawBuf, grid.Float32); err != nil {
		b.Fatal(err)
	}
	raw := rawBuf.Bytes()

	c, err := codec.Lookup("blocked")
	if err != nil {
		b.Fatal(err)
	}
	var streamBuf bytes.Buffer
	zw, err := c.NewWriter(&streamBuf, codec.Params{
		Dims: a.Dims, DType: grid.Float32, Mode: core.BoundAbs, AbsBound: 1e-3, SlabRows: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := zw.Write(raw); err != nil {
		b.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		b.Fatal(err)
	}
	stream := streamBuf.Bytes()

	compressURL := fmt.Sprintf("/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=%d,%d,%d&slab=4",
		a.Dims[0], a.Dims[1], a.Dims[2])

	b.Run("compress/blocked", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, compressURL, bytes.NewReader(raw))
			s.handleCompress(&discardWriter{}, req)
		}
	})
	b.Run("decompress/blocked", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/decompress", bytes.NewReader(stream))
			s.handleDecompress(&discardWriter{}, req)
		}
	})
	b.Run("slab/blocked", func(b *testing.B) {
		b.SetBytes(int64(len(stream)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/slab/1", bytes.NewReader(stream))
			s.handleSlab(&discardWriter{}, req)
		}
	})
	// Sanity: the handlers must actually succeed (metrics count 200s).
	resp := httptest.NewRecorder()
	s.handleDecompress(resp, httptest.NewRequest(http.MethodPost, "/v1/decompress", bytes.NewReader(stream)))
	if resp.Code != http.StatusOK {
		b.Fatalf("decompress handler returned %d", resp.Code)
	}
	got, _ := io.ReadAll(resp.Body)
	want, err := blockedRoundTrip(stream)
	if err != nil {
		b.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		b.Fatal("handler output mismatch")
	}
}

func blockedRoundTrip(stream []byte) ([]byte, error) {
	c, err := codec.Lookup("blocked")
	if err != nil {
		return nil, err
	}
	zr, err := c.NewReader(bytes.NewReader(stream), codec.Params{})
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}
